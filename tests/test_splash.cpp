#include <gtest/gtest.h>

#include "workload/splash.hpp"

namespace delta::workload {
namespace {

TEST(Splash, FourteenProfiles) {
  EXPECT_EQ(splash_profiles().size(), 14u);
  EXPECT_EQ(splash_profile("barnes").name, "barnes");
  EXPECT_THROW(splash_profile("nosuch"), std::out_of_range);
}

TEST(Splash, GeneratorRoundRobinsThreads) {
  const SplashProfile& p = splash_profile("fft");
  SplashGen gen(p, 1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(gen.next().thread, i % p.threads);
  }
}

TEST(Splash, GeneratorDeterministic) {
  const SplashProfile& p = splash_profile("barnes");
  SplashGen a(p, 5), b(p, 5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = a.next(), y = b.next();
    EXPECT_EQ(x.block, y.block);
    EXPECT_EQ(x.is_write, y.is_write);
  }
}

TEST(Splash, WriteFractionRoughlyRespected) {
  const SplashProfile& p = splash_profile("cholesky");
  SplashGen gen(p, 2);
  int writes = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) writes += gen.next().is_write;
  EXPECT_NEAR(static_cast<double>(writes) / n, p.write_frac, 0.02);
}

// Each application's measured sharing must land near its Table V target.
class SharingMatchesTableV : public ::testing::TestWithParam<std::string> {};

TEST_P(SharingMatchesTableV, PageAndBlockPercentages) {
  const SplashProfile& p = splash_profile(GetParam());
  const SharingMeasurement m = measure_sharing(p, 800'000, 7);
  EXPECT_NEAR(m.private_pages_pct, p.target_private_pages_pct, 5.0)
      << p.name << " pages";
  EXPECT_NEAR(m.private_blocks_pct, p.target_private_blocks_pct, 6.0)
      << p.name << " blocks";
}

INSTANTIATE_TEST_SUITE_P(
    AllSplash, SharingMatchesTableV,
    ::testing::Values("barnes", "cholesky", "fft", "fmm", "lu.cont", "lu.ncont",
                      "ocean.cont", "ocean.ncont", "water.sp", "radiosity",
                      "radix", "raytrace", "volrend", "water.nsq"),
    [](const auto& inf) {
      std::string s = inf.param;
      for (auto& ch : s)
        if (ch == '.') ch = '_';
      return s;
    });

TEST(Splash, OceanHasPrivateBlocksInsideSharedPages) {
  // The halo pattern: block-private% far above page-private% (Table V's
  // ocean rows: 38% pages vs 98.6% blocks).
  const SharingMeasurement m = measure_sharing(splash_profile("ocean.cont"), 800'000, 7);
  EXPECT_GT(m.private_blocks_pct, m.private_pages_pct + 40.0);
}

TEST(Splash, FmmHasSparsePrivatePages) {
  // fmm's block-private% is *below* its page-private% (sparse private pages).
  const SharingMeasurement m = measure_sharing(splash_profile("fmm"), 800'000, 7);
  EXPECT_LT(m.private_blocks_pct, m.private_pages_pct);
}

TEST(Splash, WaterNsqAlmostFullyPrivate) {
  const SharingMeasurement m = measure_sharing(splash_profile("water.nsq"), 400'000, 7);
  EXPECT_GT(m.private_pages_pct, 97.0);
}

TEST(Splash, LuAlmostFullyShared) {
  const SharingMeasurement m = measure_sharing(splash_profile("lu.ncont"), 400'000, 7);
  EXPECT_LT(m.private_pages_pct, 3.0);
}

}  // namespace
}  // namespace delta::workload
