// Unit tests for the delta_lint rules (src/lint): each rule gets positive
// (violating) and negative (clean) synthetic snippets, plus the
// `// delta-lint: allow(<rule>)` suppression path.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace delta::lint {
namespace {

std::vector<Finding> lint(std::string_view text, FileInfo info = {}) {
  if (info.path_label.empty()) info.path_label = "src/fake/snippet.cpp";
  return lint_text(info, text);
}

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int count_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return static_cast<int>(std::count_if(
      fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- unordered-iter

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedMember) {
  const auto fs = lint(
      "#include <unordered_map>\n"
      "struct Dir {\n"
      "  std::unordered_map<int, int> dir_;\n"
      "  int sum() {\n"
      "    int s = 0;\n"
      "    for (const auto& [k, v] : dir_) s += v;\n"
      "    return s;\n"
      "  }\n"
      "};\n");
  ASSERT_TRUE(has_rule(fs, "unordered-iter"));
  EXPECT_EQ(fs.front().line, 6);
}

TEST(LintUnorderedIter, FlagsExplicitBeginEnd) {
  const auto fs = lint(
      "std::unordered_set<int> seen;\n"
      "auto it = seen.begin();\n");
  EXPECT_TRUE(has_rule(fs, "unordered-iter"));
}

TEST(LintUnorderedIter, LookupsAndOrderedContainersAreClean) {
  const auto fs = lint(
      "std::unordered_map<int, int> idx;\n"
      "std::map<int, int> ordered;\n"
      "int f() { return idx.find(3) != idx.end() ? 1 : 0; }\n"
      "int g() { int s = 0; for (auto& [k, v] : ordered) s += v; return s; }\n");
  // Lookups and the find-sentinel end() comparison never observe iteration
  // order; range-for over the *ordered* map is equally fine.
  EXPECT_FALSE(has_rule(fs, "unordered-iter"));
}

TEST(LintUnorderedIter, SuppressionComment) {
  const auto fs = lint(
      "std::unordered_map<int, int> hist;\n"
      "for (auto& [k, v] : hist) {}  // delta-lint: allow(unordered-iter)\n");
  EXPECT_FALSE(has_rule(fs, "unordered-iter"));
}

// ---------------------------------------------------------------- nondet-source

TEST(LintNondetSource, FlagsRandAndWallClock) {
  const auto fs = lint(
      "int a = rand();\n"
      "auto t = std::chrono::system_clock::now();\n"
      "std::random_device rd;\n"
      "long s = time(nullptr);\n");
  EXPECT_EQ(count_rule(fs, "nondet-source"), 4);
}

TEST(LintNondetSource, ProjectRngAndIdentifiersAreClean) {
  const auto fs = lint(
      "delta::Rng rng(seed);\n"
      "auto x = rng.below(16);\n"
      "double end_time(int c);\n"       // 'time' inside identifier: clean.
      "int operand = 3; (void)operand;\n");  // 'rand' inside identifier: clean.
  EXPECT_FALSE(has_rule(fs, "nondet-source"));
}

TEST(LintNondetSource, FlagsSteadyClockOutsideProfSubsystem) {
  const auto fs = lint(
      "auto t0 = std::chrono::steady_clock::now();\n"
      "auto t1 = std::chrono::high_resolution_clock::now();\n");
  EXPECT_EQ(count_rule(fs, "nondet-source"), 2);
}

TEST(LintNondetSource, SteadyClockAllowedInProfSubsystem) {
  FileInfo info;
  info.path_label = "src/obs/prof/prof.hpp";
  const auto fs = lint(
      "auto t0 = std::chrono::steady_clock::now();\n"
      "auto t1 = std::chrono::high_resolution_clock::now();\n"
      "auto bad = std::chrono::system_clock::now();\n",
      info);
  // The carve-out covers the monotonic clocks only; wall time that varies
  // across runs stays banned even inside the profiling subsystem.
  EXPECT_EQ(count_rule(fs, "nondet-source"), 1);
}

TEST(LintNondetSource, CommentsAndStringsAreIgnored) {
  const auto fs = lint(
      "// rand() would break determinism\n"
      "const char* msg = \"never call time() here\";\n");
  EXPECT_FALSE(has_rule(fs, "nondet-source"));
}

TEST(LintNondetSource, Suppression) {
  const auto fs = lint(
      "long s = time(nullptr);  // delta-lint: allow(nondet-source)\n");
  EXPECT_FALSE(has_rule(fs, "nondet-source"));
}

// ---------------------------------------------------------------- raw-intrinsic

TEST(LintRawIntrinsic, FlagsIntrinsicHeaders) {
  const auto fs = lint(
      "#include <emmintrin.h>\n"
      "#include <arm_neon.h>\n");
  EXPECT_EQ(count_rule(fs, "raw-intrinsic"), 2);
}

TEST(LintRawIntrinsic, FlagsMmIdentifiersAndBuiltinPrefetch) {
  const auto fs = lint(
      "void f(const void* p) {\n"
      "  __builtin_prefetch(p, 0, 3);\n"
      "  auto v = _mm_set1_epi64x(1);\n"
      "  auto w = _mm256_setzero_si256();\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "raw-intrinsic"), 3);
}

TEST(LintRawIntrinsic, DispatchLayerIsExempt) {
  FileInfo info;
  info.path_label = "src/common/simd.hpp";
  const auto fs = lint_text(info,
                            "#include <emmintrin.h>\n"
                            "auto v = _mm_set1_epi64x(1);\n");
  EXPECT_FALSE(has_rule(fs, "raw-intrinsic"));
}

TEST(LintRawIntrinsic, WrapperCallsAndMidTokenMatchesAreClean) {
  const auto fs = lint(
      "#include \"common/simd.hpp\"\n"
      "void f(const std::uint64_t* v) {\n"
      "  simd::prefetch_read(v);\n"
      "  auto m = simd::match_u64(v, 16, 3);\n"
      "  int comm_mm = 0;\n"       // `_mm` mid-identifier: not a token start.
      "}\n");
  EXPECT_FALSE(has_rule(fs, "raw-intrinsic"));
}

TEST(LintRawIntrinsic, SuppressionWaives) {
  const auto fs = lint(
      "void f(const void* p) {\n"
      "  __builtin_prefetch(p);  // delta-lint: allow(raw-intrinsic)\n"
      "}\n");
  EXPECT_FALSE(has_rule(fs, "raw-intrinsic"));
}

// ---------------------------------------------------------------- raw-affinity

TEST(LintRawAffinity, FlagsRawAffinityApiAndSchedHeader) {
  const auto fs = lint(
      "#include <sched.h>\n"
      "void pin() {\n"
      "  cpu_set_t set;\n"
      "  sched_setaffinity(0, sizeof(set), &set);\n"
      "  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);\n"
      "  int cpu = sched_getcpu();\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "raw-affinity"), 5);
}

TEST(LintRawAffinity, AffinityShimIsExempt) {
  FileInfo info;
  info.path_label = "src/common/affinity.hpp";
  const auto fs = lint_text(info,
                            "#include <sched.h>\n"
                            "cpu_set_t set;\n"
                            "sched_setaffinity(0, sizeof(set), &set);\n");
  EXPECT_FALSE(has_rule(fs, "raw-affinity"));
}

TEST(LintRawAffinity, ShimCallsAndCommentsAreClean) {
  const auto fs = lint(
      "#include \"common/affinity.hpp\"\n"
      "// pthread_setaffinity_np lives behind the shim\n"
      "bool ok = common::pin_current_thread(3);\n"
      "unsigned n = common::affinity_cpu_count();\n");
  EXPECT_FALSE(has_rule(fs, "raw-affinity"));
}

TEST(LintRawAffinity, SuppressionWaives) {
  const auto fs = lint(
      "int cpu = sched_getcpu();  // delta-lint: allow(raw-affinity)\n");
  EXPECT_FALSE(has_rule(fs, "raw-affinity"));
}

// ---------------------------------------------------------------- ptr-key

TEST(LintPtrKey, FlagsPointerKeyedMapAndSet) {
  const auto fs = lint(
      "std::map<Node*, int> by_node;\n"
      "std::set<const Tile*> tiles;\n");
  EXPECT_EQ(count_rule(fs, "ptr-key"), 2);
}

TEST(LintPtrKey, PointerValuesAndValueKeysAreClean) {
  const auto fs = lint(
      "std::map<int, Node*> owner;\n"
      "std::set<std::string> names;\n"
      "std::bitset<64> mask;\n");
  EXPECT_FALSE(has_rule(fs, "ptr-key"));
}

// ---------------------------------------------------------------- naked-new

TEST(LintNakedNew, FlagsNewAndDelete) {
  const auto fs = lint(
      "int* p = new int[4];\n"
      "delete[] p;\n");
  EXPECT_EQ(count_rule(fs, "naked-new"), 2);
}

TEST(LintNakedNew, DeletedFunctionsAndIdentifiersAreClean) {
  const auto fs = lint(
      "struct S {\n"
      "  S(const S&) = delete;\n"
      "  S& operator=(const S&) = delete;\n"
      "};\n"
      "int renew_lease(int news);\n"
      "auto q = std::make_unique<int>(3);\n");
  EXPECT_FALSE(has_rule(fs, "naked-new"));
}

TEST(LintNakedNew, Suppression) {
  const auto fs = lint(
      "auto* leak = new Registry();  // delta-lint: allow(naked-new)\n");
  EXPECT_FALSE(has_rule(fs, "naked-new"));
}

// ---------------------------------------------------------------- own-header-first

TEST(LintOwnHeaderFirst, FlagsWrongFirstInclude) {
  FileInfo info;
  info.path_label = "src/sim/chip.cpp";
  info.expected_header = "sim/chip.hpp";
  const auto fs = lint(
      "#include <vector>\n"
      "#include \"sim/chip.hpp\"\n",
      info);
  ASSERT_TRUE(has_rule(fs, "own-header-first"));
  EXPECT_EQ(fs.front().line, 1);
}

TEST(LintOwnHeaderFirst, OwnHeaderFirstIsClean) {
  FileInfo info;
  info.path_label = "src/sim/chip.cpp";
  info.expected_header = "sim/chip.hpp";
  const auto fs = lint(
      "// Comment banner.\n"
      "#include \"sim/chip.hpp\"\n"
      "#include <vector>\n",
      info);
  EXPECT_FALSE(has_rule(fs, "own-header-first"));
}

TEST(LintOwnHeaderFirst, HeadersAndHeaderlessSourcesAreExempt) {
  const auto fs = lint("#include <vector>\n");  // expected_header empty.
  EXPECT_FALSE(has_rule(fs, "own-header-first"));
}

// ---------------------------------------------------------------- machinery

TEST(LintMachinery, MultiRuleSuppressionList) {
  const auto fs = lint(
      "int* p = new int(rand());"
      "  // delta-lint: allow(naked-new, nondet-source)\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintMachinery, SuppressionIsRuleSpecific) {
  const auto fs = lint(
      "int* p = new int(rand());  // delta-lint: allow(naked-new)\n");
  EXPECT_FALSE(has_rule(fs, "naked-new"));
  EXPECT_TRUE(has_rule(fs, "nondet-source"));
}

TEST(LintMachinery, FormatIsFileLineRule) {
  Finding f{"src/x.cpp", 12, "naked-new", "naked new", {}};
  EXPECT_EQ(format(f), "src/x.cpp:12: naked-new: naked new");
}

TEST(LintMachinery, FindingsAreLineSorted) {
  const auto fs = lint(
      "long t = time(nullptr);\n"
      "int* p = new int;\n"
      "std::map<int*, int> m;\n");
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].line, 3);
}

TEST(LintMachinery, RepositorySourceTreeIsClean) {
  // The tree walk itself is exercised end-to-end by the `delta_lint` ctest;
  // here: linting an empty/missing directory yields no findings.
  EXPECT_TRUE(lint_tree("/nonexistent-delta-lint-root").empty());
}

// ---------------------------------------------------------------- tree walk

namespace fs = std::filesystem;

/// Scratch tree under the test temp dir; removed on destruction.
struct ScratchTree {
  fs::path root;
  explicit ScratchTree(const std::string& name)
      : root(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~ScratchTree() { fs::remove_all(root); }
  void put(const std::string& rel, std::string_view text) const {
    const fs::path p = root / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << text;
  }
};

TEST(LintTreeWalk, SkipsBuildAndDotDirectories) {
  ScratchTree t("delta_lint_walk_skip");
  t.put("a.cpp", "int* p = new int;\n");
  t.put("build/gen.cpp", "int* p = new int;\n");
  t.put("build-release/gen.cpp", "int* p = new int;\n");
  t.put(".cache/x.cpp", "int* p = new int;\n");
  const auto fs_found = lint_tree(t.root);
  ASSERT_EQ(fs_found.size(), 1u);
  // Only the real source is linted; generated trees never produce findings.
  EXPECT_NE(fs_found[0].file.find("a.cpp"), std::string::npos);
  EXPECT_EQ(fs_found[0].file.find("build"), std::string::npos);
}

TEST(LintTreeWalk, WalkOrderIsDeterministicAndSorted) {
  ScratchTree t("delta_lint_walk_order");
  // Names chosen so creation order differs from lexicographic order.
  t.put("zeta.cpp", "int* a = new int;\n");
  t.put("alpha.cpp", "int* b = new int;\n");
  t.put("mid/beta.cpp", "int* c = new int;\n");
  const auto first = lint_tree(t.root);
  ASSERT_EQ(first.size(), 3u);
  // Findings come back sorted by (file, line, rule) — the contract the
  // baseline format and CI diffing rely on.
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file < b.file;
                             }));
  EXPECT_NE(first[0].file.find("alpha.cpp"), std::string::npos);
  EXPECT_NE(first[1].file.find("mid/beta.cpp"), std::string::npos);
  EXPECT_NE(first[2].file.find("zeta.cpp"), std::string::npos);
  // A second walk reproduces the first byte for byte.
  const auto second = lint_tree(t.root);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].file, first[i].file);
    EXPECT_EQ(second[i].line, first[i].line);
    EXPECT_EQ(second[i].rule, first[i].rule);
  }
}

TEST(LintTreeWalk, RuleFilterSelectsSubset) {
  ScratchTree t("delta_lint_walk_filter");
  t.put("a.cpp", "int* p = new int(rand());\n");
  TreeOptions only_new;
  only_new.rules = {"naked-new"};
  const auto fs_found = lint_tree(t.root, only_new);
  ASSERT_EQ(fs_found.size(), 1u);
  EXPECT_EQ(fs_found[0].rule, "naked-new");
}

// ---------------------------------------------------------------- baseline

TEST(LintBaseline, ParsesEntriesSkippingCommentsAndBlanks) {
  ScratchTree t("delta_lint_baseline");
  t.put("base.txt",
        "# findings accepted while the refactor lands\n"
        "\n"
        "  src/sim/chip.cpp:layering  \n"
        "src/core/cbt.hpp:phase-effect\n");
  bool ok = false;
  const Baseline b = load_baseline(t.root / "base.txt", &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(b.entries[0].first, "src/sim/chip.cpp");
  EXPECT_EQ(b.entries[0].second, "layering");
  EXPECT_EQ(b.entries[1].first, "src/core/cbt.hpp");
  EXPECT_EQ(b.entries[1].second, "phase-effect");
}

TEST(LintBaseline, UnreadableFileReportsNotOk) {
  bool ok = true;
  const Baseline b = load_baseline("/nonexistent-delta-baseline", &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(b.entries.empty());
}

TEST(LintBaseline, WaivesMatchingFindingsOnly) {
  std::vector<Finding> fs_found = {
      {"src/a.cpp", 3, "layering", "d", {}},
      {"src/a.cpp", 9, "naked-new", "d", {}},
      {"src/b.cpp", 1, "layering", "d", {}},
  };
  Baseline b;
  b.entries = {{"src/a.cpp", "layering"}};
  // Matching is (file, rule) — line-agnostic, so baselines survive edits
  // elsewhere in the file; the other rule and the other file stay reported.
  EXPECT_EQ(apply_baseline(b, fs_found), 1u);
  ASSERT_EQ(fs_found.size(), 2u);
  EXPECT_EQ(fs_found[0].rule, "naked-new");
  EXPECT_EQ(fs_found[1].file, "src/b.cpp");
}

}  // namespace
}  // namespace delta::lint
