// Unit tests for the delta_lint rules (src/lint): each rule gets positive
// (violating) and negative (clean) synthetic snippets, plus the
// `// delta-lint: allow(<rule>)` suppression path.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace delta::lint {
namespace {

std::vector<Finding> lint(std::string_view text, FileInfo info = {}) {
  if (info.path_label.empty()) info.path_label = "src/fake/snippet.cpp";
  return lint_text(info, text);
}

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int count_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return static_cast<int>(std::count_if(
      fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- unordered-iter

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedMember) {
  const auto fs = lint(
      "#include <unordered_map>\n"
      "struct Dir {\n"
      "  std::unordered_map<int, int> dir_;\n"
      "  int sum() {\n"
      "    int s = 0;\n"
      "    for (const auto& [k, v] : dir_) s += v;\n"
      "    return s;\n"
      "  }\n"
      "};\n");
  ASSERT_TRUE(has_rule(fs, "unordered-iter"));
  EXPECT_EQ(fs.front().line, 6);
}

TEST(LintUnorderedIter, FlagsExplicitBeginEnd) {
  const auto fs = lint(
      "std::unordered_set<int> seen;\n"
      "auto it = seen.begin();\n");
  EXPECT_TRUE(has_rule(fs, "unordered-iter"));
}

TEST(LintUnorderedIter, LookupsAndOrderedContainersAreClean) {
  const auto fs = lint(
      "std::unordered_map<int, int> idx;\n"
      "std::map<int, int> ordered;\n"
      "int f() { return idx.find(3) != idx.end() ? 1 : 0; }\n"
      "int g() { int s = 0; for (auto& [k, v] : ordered) s += v; return s; }\n");
  // Lookups and the find-sentinel end() comparison never observe iteration
  // order; range-for over the *ordered* map is equally fine.
  EXPECT_FALSE(has_rule(fs, "unordered-iter"));
}

TEST(LintUnorderedIter, SuppressionComment) {
  const auto fs = lint(
      "std::unordered_map<int, int> hist;\n"
      "for (auto& [k, v] : hist) {}  // delta-lint: allow(unordered-iter)\n");
  EXPECT_FALSE(has_rule(fs, "unordered-iter"));
}

// ---------------------------------------------------------------- nondet-source

TEST(LintNondetSource, FlagsRandAndWallClock) {
  const auto fs = lint(
      "int a = rand();\n"
      "auto t = std::chrono::system_clock::now();\n"
      "std::random_device rd;\n"
      "long s = time(nullptr);\n");
  EXPECT_EQ(count_rule(fs, "nondet-source"), 4);
}

TEST(LintNondetSource, ProjectRngAndIdentifiersAreClean) {
  const auto fs = lint(
      "delta::Rng rng(seed);\n"
      "auto x = rng.below(16);\n"
      "double end_time(int c);\n"       // 'time' inside identifier: clean.
      "int operand = 3; (void)operand;\n");  // 'rand' inside identifier: clean.
  EXPECT_FALSE(has_rule(fs, "nondet-source"));
}

TEST(LintNondetSource, FlagsSteadyClockOutsideProfSubsystem) {
  const auto fs = lint(
      "auto t0 = std::chrono::steady_clock::now();\n"
      "auto t1 = std::chrono::high_resolution_clock::now();\n");
  EXPECT_EQ(count_rule(fs, "nondet-source"), 2);
}

TEST(LintNondetSource, SteadyClockAllowedInProfSubsystem) {
  FileInfo info;
  info.path_label = "src/obs/prof/prof.hpp";
  const auto fs = lint(
      "auto t0 = std::chrono::steady_clock::now();\n"
      "auto t1 = std::chrono::high_resolution_clock::now();\n"
      "auto bad = std::chrono::system_clock::now();\n",
      info);
  // The carve-out covers the monotonic clocks only; wall time that varies
  // across runs stays banned even inside the profiling subsystem.
  EXPECT_EQ(count_rule(fs, "nondet-source"), 1);
}

TEST(LintNondetSource, CommentsAndStringsAreIgnored) {
  const auto fs = lint(
      "// rand() would break determinism\n"
      "const char* msg = \"never call time() here\";\n");
  EXPECT_FALSE(has_rule(fs, "nondet-source"));
}

TEST(LintNondetSource, Suppression) {
  const auto fs = lint(
      "long s = time(nullptr);  // delta-lint: allow(nondet-source)\n");
  EXPECT_FALSE(has_rule(fs, "nondet-source"));
}

// ---------------------------------------------------------------- ptr-key

TEST(LintPtrKey, FlagsPointerKeyedMapAndSet) {
  const auto fs = lint(
      "std::map<Node*, int> by_node;\n"
      "std::set<const Tile*> tiles;\n");
  EXPECT_EQ(count_rule(fs, "ptr-key"), 2);
}

TEST(LintPtrKey, PointerValuesAndValueKeysAreClean) {
  const auto fs = lint(
      "std::map<int, Node*> owner;\n"
      "std::set<std::string> names;\n"
      "std::bitset<64> mask;\n");
  EXPECT_FALSE(has_rule(fs, "ptr-key"));
}

// ---------------------------------------------------------------- naked-new

TEST(LintNakedNew, FlagsNewAndDelete) {
  const auto fs = lint(
      "int* p = new int[4];\n"
      "delete[] p;\n");
  EXPECT_EQ(count_rule(fs, "naked-new"), 2);
}

TEST(LintNakedNew, DeletedFunctionsAndIdentifiersAreClean) {
  const auto fs = lint(
      "struct S {\n"
      "  S(const S&) = delete;\n"
      "  S& operator=(const S&) = delete;\n"
      "};\n"
      "int renew_lease(int news);\n"
      "auto q = std::make_unique<int>(3);\n");
  EXPECT_FALSE(has_rule(fs, "naked-new"));
}

TEST(LintNakedNew, Suppression) {
  const auto fs = lint(
      "auto* leak = new Registry();  // delta-lint: allow(naked-new)\n");
  EXPECT_FALSE(has_rule(fs, "naked-new"));
}

// ---------------------------------------------------------------- own-header-first

TEST(LintOwnHeaderFirst, FlagsWrongFirstInclude) {
  FileInfo info;
  info.path_label = "src/sim/chip.cpp";
  info.expected_header = "sim/chip.hpp";
  const auto fs = lint(
      "#include <vector>\n"
      "#include \"sim/chip.hpp\"\n",
      info);
  ASSERT_TRUE(has_rule(fs, "own-header-first"));
  EXPECT_EQ(fs.front().line, 1);
}

TEST(LintOwnHeaderFirst, OwnHeaderFirstIsClean) {
  FileInfo info;
  info.path_label = "src/sim/chip.cpp";
  info.expected_header = "sim/chip.hpp";
  const auto fs = lint(
      "// Comment banner.\n"
      "#include \"sim/chip.hpp\"\n"
      "#include <vector>\n",
      info);
  EXPECT_FALSE(has_rule(fs, "own-header-first"));
}

TEST(LintOwnHeaderFirst, HeadersAndHeaderlessSourcesAreExempt) {
  const auto fs = lint("#include <vector>\n");  // expected_header empty.
  EXPECT_FALSE(has_rule(fs, "own-header-first"));
}

// ---------------------------------------------------------------- machinery

TEST(LintMachinery, MultiRuleSuppressionList) {
  const auto fs = lint(
      "int* p = new int(rand());"
      "  // delta-lint: allow(naked-new, nondet-source)\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintMachinery, SuppressionIsRuleSpecific) {
  const auto fs = lint(
      "int* p = new int(rand());  // delta-lint: allow(naked-new)\n");
  EXPECT_FALSE(has_rule(fs, "naked-new"));
  EXPECT_TRUE(has_rule(fs, "nondet-source"));
}

TEST(LintMachinery, FormatIsFileLineRule) {
  Finding f{"src/x.cpp", 12, "naked-new", "naked new"};
  EXPECT_EQ(format(f), "src/x.cpp:12: naked-new: naked new");
}

TEST(LintMachinery, FindingsAreLineSorted) {
  const auto fs = lint(
      "long t = time(nullptr);\n"
      "int* p = new int;\n"
      "std::map<int*, int> m;\n");
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].line, 3);
}

TEST(LintMachinery, RepositorySourceTreeIsClean) {
  // The tree walk itself is exercised end-to-end by the `delta_lint` ctest;
  // here: linting an empty/missing directory yields no findings.
  EXPECT_TRUE(lint_tree("/nonexistent-delta-lint-root").empty());
}

}  // namespace
}  // namespace delta::lint
