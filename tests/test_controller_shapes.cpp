// Parameterized controller tests across machine shapes: mesh geometry and
// bank associativity must not break the protocol's invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/controller.hpp"

namespace delta::core {
namespace {

using Shape = std::tuple<int, int, int>;  // mesh_w, mesh_h, ways_per_bank.

umon::Umon hungry_umon(std::uint64_t seed) {
  umon::UmonConfig cfg;
  cfg.max_ways = 96;
  cfg.set_dilution = 4;
  umon::Umon u(cfg);
  Rng rng(seed);
  for (int i = 0; i < 120'000; ++i) u.access(rng.below(48 * 512));
  return u;
}

class ControllerShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(ControllerShapes, WaysConservedAndFloorsHeld) {
  const auto [w, h, ways] = GetParam();
  noc::Mesh mesh(w, h);
  DeltaParams params;
  params.max_ways_per_app = ways * 4;
  params.min_ways = std::min(4, ways / 2);
  params.inter_delta_ways = std::min(4, ways / 4 + 1);
  DeltaController ctrl(mesh, params, ways);

  const int n = mesh.tiles();
  std::vector<umon::Umon> umons;
  for (int i = 0; i < n; ++i) umons.push_back(hungry_umon(50 + i));
  std::vector<TileInput> in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    in[static_cast<std::size_t>(i)] =
        TileInput{&umons[static_cast<std::size_t>(i)],
                  1.0 + (i % 4), i % 3 != 2,  // A third of the tiles idle.
                  static_cast<std::uint32_t>(i + 1)};
  }

  for (std::uint64_t e = 0; e <= 120; ++e) {
    ctrl.tick(e, in);
    int total = 0;
    for (BankId b = 0; b < n; ++b) {
      int bank_total = 0;
      for (CoreId p : ctrl.wp(b).partitions()) bank_total += ctrl.wp(b).ways_of(p);
      ASSERT_EQ(bank_total, ways) << "bank " << b << " epoch " << e;
      total += bank_total;
    }
    ASSERT_EQ(total, n * ways);
    for (CoreId c = 0; c < n; ++c) {
      if (!in[static_cast<std::size_t>(c)].active) continue;
      ASSERT_LE(ctrl.total_ways(c), params.max_ways_per_app) << c;
      // Active cores keep their home floor.
      ASSERT_GE(ctrl.wp(c).ways_of(c), params.min_ways) << c;
    }
  }
}

TEST_P(ControllerShapes, CbtAlwaysCoversChunkSpace) {
  const auto [w, h, ways] = GetParam();
  noc::Mesh mesh(w, h);
  DeltaParams params;
  params.max_ways_per_app = ways * 4;
  DeltaController ctrl(mesh, params, ways);

  const int n = mesh.tiles();
  std::vector<umon::Umon> umons;
  for (int i = 0; i < n; ++i) umons.push_back(hungry_umon(90 + i));
  std::vector<TileInput> in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    in[static_cast<std::size_t>(i)] =
        TileInput{&umons[static_cast<std::size_t>(i)], 2.0, true,
                  static_cast<std::uint32_t>(i + 1)};

  for (std::uint64_t e = 0; e <= 60; ++e) ctrl.tick(e, in);
  for (CoreId c = 0; c < n; ++c) {
    for (int chunk = 0; chunk < mem::kNumChunks; ++chunk) {
      const BankId b = ctrl.cbt(c).bank_for_chunk(chunk);
      ASSERT_GE(b, 0);
      ASSERT_LT(b, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ControllerShapes,
    ::testing::Values(Shape{2, 2, 16}, Shape{4, 1, 16}, Shape{4, 4, 16},
                      Shape{2, 2, 8}, Shape{4, 4, 8}, Shape{2, 4, 32},
                      Shape{8, 8, 16}),
    [](const auto& inf) {
      // std::get (not structured bindings): commas inside the binding list
      // would split the INSTANTIATE macro's arguments.
      return "m" + std::to_string(std::get<0>(inf.param)) + "x" +
             std::to_string(std::get<1>(inf.param)) + "w" +
             std::to_string(std::get<2>(inf.param));
    });

}  // namespace
}  // namespace delta::core
