#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/parallel.hpp"

namespace delta {
namespace {

TEST(StaticPartition, TilesTheRangeExactly) {
  for (std::size_t n : {0u, 1u, 3u, 7u, 16u, 65u}) {
    for (unsigned parts : {1u, 2u, 3u, 8u, 64u}) {
      std::size_t expect_begin = 0;
      for (unsigned p = 0; p < parts; ++p) {
        const IndexRange r = static_partition(n, parts, p);
        EXPECT_EQ(r.begin, expect_begin) << "n=" << n << " parts=" << parts;
        EXPECT_LE(r.begin, r.end);
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, n) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(StaticPartition, ZeroItemsGivesEveryWorkerAnEmptyRange) {
  for (unsigned p = 0; p < 8; ++p) {
    const IndexRange r = static_partition(0, 8, p);
    EXPECT_EQ(r.size(), 0u);
  }
}

TEST(StaticPartition, FewerItemsThanWorkers) {
  // 3 items over 8 workers: the first three get one each, the rest none.
  for (unsigned p = 0; p < 8; ++p) {
    const IndexRange r = static_partition(3, 8, p);
    EXPECT_EQ(r.size(), p < 3 ? 1u : 0u) << "part " << p;
  }
}

TEST(StaticPartition, ZeroPartsIsTreatedAsOne) {
  const IndexRange r = static_partition(5, 0, 0);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 5u);
}

TEST(CyclicBarrier, ReusableAcrossManyGenerations) {
  constexpr unsigned kParties = 4;
  constexpr int kRounds = 200;
  CyclicBarrier barrier(kParties);
  std::atomic<int> counter{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // Inside generation r every thread must see all kParties arrivals
        // of this round (and none of round r+1 beyond what raced ahead
        // after release — hence a second barrier before re-checking).
        if (counter.load(std::memory_order_relaxed) < (r + 1) * static_cast<int>(kParties))
          mismatches.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kParties));
}

TEST(WorkerPool, RunsEveryPartyExactlyOncePerSection) {
  WorkerPool pool(4);
  ASSERT_EQ(pool.parties(), 4u);
  std::vector<int> hits(4, 0);
  for (int section = 0; section < 50; ++section)
    pool.run([&](unsigned w) { ++hits[w]; });
  for (int h : hits) EXPECT_EQ(h, 50);
}

TEST(WorkerPool, ExceptionsRethrowInWorkerIndexOrder) {
  WorkerPool pool(4);
  // Workers 2 and 3 throw; the pool must surface worker 2's exception (the
  // lowest-index failure), independent of completion order.
  try {
    pool.run([](unsigned w) {
      if (w >= 2) throw std::runtime_error("worker " + std::to_string(w));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 2");
  }
  // Error slots are cleared: the pool stays usable and a clean section
  // throws nothing.
  std::atomic<int> ran{0};
  pool.run([&](unsigned) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(WorkerPool, SinglePartyPropagatesInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.parties(), 1u);
  EXPECT_THROW(pool.run([](unsigned) { throw std::logic_error("solo"); }),
               std::logic_error);
}

TEST(SeqClaim, ClaimsOnlyTheExactNextUnit) {
  SeqClaim claim;
  claim.reset(0);
  EXPECT_EQ(claim.next_unit(), 0u);
  EXPECT_FALSE(claim.busy());
  EXPECT_FALSE(claim.try_claim(1));  // Cannot skip ahead.
  EXPECT_TRUE(claim.try_claim(0));
  EXPECT_TRUE(claim.busy());
  EXPECT_FALSE(claim.try_claim(0));  // Held units cannot be double-claimed.
  claim.complete(0);
  EXPECT_EQ(claim.next_unit(), 1u);
  EXPECT_FALSE(claim.busy());
  claim.reset(7);
  EXPECT_EQ(claim.next_unit(), 7u);
  EXPECT_TRUE(claim.try_claim(7));
}

TEST(SeqClaim, ChainExecutesUnitsInAscendingOrderUnderContention) {
  // Four threads race to steal from one chain; whichever thread wins each
  // claim, the execution order of units must be exactly 0, 1, 2, ...
  constexpr std::uint32_t kUnits = 500;
  SeqClaim claim;
  claim.reset(0);
  std::mutex order_mu;
  std::vector<std::uint32_t> order;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::uint32_t u = claim.next_unit();
        if (u >= kUnits) return;
        if (!claim.try_claim(u)) continue;
        {
          const std::lock_guard<std::mutex> lock(order_mu);
          order.push_back(u);
        }
        claim.complete(u);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(order.size(), kUnits);
  for (std::uint32_t u = 0; u < kUnits; ++u) EXPECT_EQ(order[u], u);
}

TEST(Affinity, CpuCountIsPositiveAndPinningDegradesGracefully) {
  EXPECT_GE(common::affinity_cpu_count(), 1u);
  const bool pinned = common::pin_current_thread(0);
  if (!common::affinity_supported()) {
    // No-op fallback platforms must report failure, not pretend to pin.
    EXPECT_FALSE(pinned);
  }
  // Out-of-range CPU ids wrap instead of failing, so oversubscribed pools
  // still pin on small hosts.
  EXPECT_EQ(common::pin_current_thread(common::affinity_cpu_count() + 3), pinned);
}

TEST(WorkerPool, PinningIsOptInAndBestEffort) {
  WorkerPool plain(2);
  EXPECT_FALSE(plain.pin_requested());
  plain.run([](unsigned) {});
  EXPECT_EQ(plain.pinned_parties(), 0u);

  WorkerPool pinned(2, WorkerPool::Options(true));
  EXPECT_TRUE(pinned.pin_requested());
  std::atomic<int> ran{0};
  pinned.run([&](unsigned) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 2);
  if (common::affinity_supported()) {
    EXPECT_EQ(pinned.pinned_parties(), 2u);
  } else {
    EXPECT_EQ(pinned.pinned_parties(), 0u);
  }
}

}  // namespace
}  // namespace delta
