// Unit tests for the layering lint (src/lint/layering.hpp): module mapping,
// declared-DAG enforcement over fabricated include edges, self-check of the
// config for cycles, and file-level include-cycle detection.
#include "lint/layering.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lint/lint.hpp"

namespace delta::lint {
namespace {

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(Layering, ModuleOfStripsSrcPrefix) {
  EXPECT_EQ(module_of("src/sim/chip.cpp"), "sim");
  EXPECT_EQ(module_of("sim/chip.hpp"), "sim");
  EXPECT_EQ(module_of("src/core/wp/unit.hpp"), "core");
  EXPECT_EQ(module_of("lonefile.cpp"), "");
}

TEST(Layering, DeclaredEdgeIsAllowed) {
  const std::vector<FileInclude> edges = {
      {"src/sim/chip.cpp", 3, "core/cbt.hpp"},
      {"src/core/cbt.cpp", 1, "core/cbt.hpp"},  // self-include: always legal
      {"src/core/cbt.cpp", 2, "common/types.hpp"},
  };
  EXPECT_TRUE(check_layering(default_layering(), edges).empty());
}

TEST(Layering, UndeclaredEdgeIsFlaggedWithAllowedList) {
  // common is the bottom layer: it may not include sim.
  const std::vector<FileInclude> edges = {
      {"src/common/types.cpp", 7, "sim/chip.hpp"},
  };
  const auto fs = check_layering(default_layering(), edges);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "layering");
  EXPECT_EQ(fs[0].file, "src/common/types.cpp");
  EXPECT_EQ(fs[0].line, 7);
  EXPECT_NE(fs[0].detail.find("'common' may not include"), std::string::npos);
  // The suggestion is a paste-ready baseline entry.
  EXPECT_NE(fs[0].suggestion.find("src/common/types.cpp:layering"),
            std::string::npos);
}

TEST(Layering, FilesOutsideDeclaredModulesAreIgnored) {
  const std::vector<FileInclude> edges = {
      {"tools/delta_lint.cpp", 4, "sim/chip.hpp"},
      {"src/sim/chip.cpp", 2, "vendor/thing.hpp"},  // unknown target module
  };
  EXPECT_TRUE(check_layering(default_layering(), edges).empty());
}

TEST(Layering, CyclicConfigIsItselfAFinding) {
  // A rule set with a cycle enforces nothing — the checker must refuse it
  // rather than silently pass the tree.
  const LayeringConfig cyclic = {
      {"a", {"b"}},
      {"b", {"c"}},
      {"c", {"a"}},
  };
  const auto fs = check_layering(cyclic, {});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, "<layering-config>");
  EXPECT_NE(fs[0].detail.find("not a DAG"), std::string::npos);
  EXPECT_NE(fs[0].detail.find("->"), std::string::npos);
}

TEST(Layering, DefaultConfigIsADag) {
  // Guards default_layering() itself: adding a cycle by mistake must fail
  // here, not silently disable enforcement.
  EXPECT_TRUE(check_layering(default_layering(), {}).empty());
}

TEST(Layering, IncludeCycleIsDetectedOnce) {
  // Fabricated three-file cycle plus an acyclic bystander; the cycle is
  // reported exactly once no matter how many roots reach it.
  const std::vector<FileInclude> edges = {
      {"src/a/x.hpp", 1, "a/y.hpp"},
      {"src/a/y.hpp", 1, "a/z.hpp"},
      {"src/a/z.hpp", 1, "a/x.hpp"},
      {"src/a/leaf.hpp", 1, "a/x.hpp"},
  };
  const auto fs = check_include_cycles(edges);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "include-cycle");
  EXPECT_NE(fs[0].detail.find("src/a/x.hpp -> src/a/y.hpp -> src/a/z.hpp -> "
                              "src/a/x.hpp"),
            std::string::npos);
}

TEST(Layering, AcyclicIncludesAreClean) {
  const std::vector<FileInclude> edges = {
      {"src/a/x.hpp", 1, "a/y.hpp"},
      {"src/a/y.hpp", 1, "a/z.hpp"},
      {"src/b/w.hpp", 1, "a/x.hpp"},
  };
  EXPECT_TRUE(check_include_cycles(edges).empty());
}

TEST(Layering, UnresolvedTargetsDoNotCreateEdges) {
  // <system> and external includes never resolve to scanned files; a
  // dangling quoted include is simply not part of the graph.
  const std::vector<FileInclude> edges = {
      {"src/a/x.hpp", 1, "nonexistent/far.hpp"},
  };
  EXPECT_TRUE(check_include_cycles(edges).empty());
}

TEST(Layering, SelfIncludeDoesNotCountAsCycle) {
  const std::vector<FileInclude> edges = {
      {"src/a/x.hpp", 1, "a/x.hpp"},
  };
  EXPECT_FALSE(has_rule(check_include_cycles(edges), "include-cycle"));
}

}  // namespace
}  // namespace delta::lint
