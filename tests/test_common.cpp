#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include <cstdarg>
#include <string>

#include "common/histogram.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace delta {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(99);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {};
  constexpr int kSamples = 80'000;
  for (int i = 0; i < kSamples; ++i) ++counts[r.below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Splitmix, StableSequence) {
  std::uint64_t s = 42;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 42;
  EXPECT_EQ(first, splitmix64(s2));
  EXPECT_NE(splitmix64(s), first);
}

TEST(Stats, MeanGeomeanStd) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  // Sample stddev of {1,2,4}: mean 7/3, squared devs (16/9, 1/9, 25/9).
  EXPECT_NEAR(stddev(xs), std::sqrt((16.0 / 9 + 1.0 / 9 + 25.0 / 9) / 2.0), 1e-12);
}

TEST(Stats, GeomeanOfEqualValues) {
  const std::vector<double> xs{3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 3.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(geomean({}), 0.0);
  EXPECT_EQ(median({}), 0.0);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, HarmonicMean) {
  EXPECT_NEAR(harmonic_mean(std::vector<double>{1.0, 2.0, 4.0}), 3.0 / 1.75, 1e-12);
}

TEST(RunningStat, MatchesBatch) {
  RunningStat rs;
  const std::vector<double> xs{1.5, 2.5, 0.5, 4.0, 3.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 0.5);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a   bbbb"), std::string::npos);
  EXPECT_NE(s.find("xx  y"), std::string::npos);
}

TEST(Histogram, BasicCountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_NEAR(h.mean(), 5.0, 1e-9);
  EXPECT_EQ(h.count(3), 1u);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
}

TEST(ParallelFor, CoversRangeOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; }, 4);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, PropagatesWorkerException) {
  // A throw on a worker thread must surface on the calling thread, not
  // std::terminate the process (regression: exceptions used to escape the
  // worker's thread entry point).
  EXPECT_THROW(
      parallel_for(
          0, 64,
          [](std::size_t i) {
            if (i == 13) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, PropagatesExceptionMessage) {
  try {
    parallel_for(
        0, 8, [](std::size_t) { throw std::runtime_error("worker died"); }, 3);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker died");
  }
}

TEST(ParallelFor, PropagatesExceptionFromSerialPath) {
  // threads <= 1 runs inline; the throw must pass through unchanged.
  EXPECT_THROW(
      parallel_for(
          0, 4, [](std::size_t) { throw std::logic_error("serial"); }, 1),
      std::logic_error);
}

TEST(ParallelFor, StopsSchedulingAfterFailure) {
  // After one worker throws, remaining iterations are skipped (best-effort
  // early stop) and every thread is still joined before the rethrow.
  std::atomic<int> ran{0};
  try {
    parallel_for(
        0, 100'000,
        [&](std::size_t i) {
          if (i == 0) throw std::runtime_error("first");
          ran.fetch_add(1, std::memory_order_relaxed);
        },
        4);
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(ran.load(), 100'000);
}

TEST(ParallelFor, NonExceptionalRunsAreUnaffectedByGuard) {
  // The failure guard must not drop iterations on the happy path.
  std::atomic<std::uint64_t> sum{0};
  parallel_for(1, 101, [&](std::size_t i) { sum.fetch_add(i); }, 4);
  EXPECT_EQ(sum.load(), 5050u);
}

TEST(Types, BlockAndPageHelpers) {
  EXPECT_EQ(block_of(0), 0u);
  EXPECT_EQ(block_of(63), 0u);
  EXPECT_EQ(block_of(64), 1u);
  EXPECT_EQ(addr_of_block(3), 192u);
  EXPECT_EQ(page_of(4095), 0u);
  EXPECT_EQ(page_of(4096), 1u);
  EXPECT_EQ(lines_in(kMiB), 16384u);
}

std::string format_record(LogLevel lvl, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::string out = Logger::vformat(lvl, fmt, ap);
  va_end(ap);
  return out;
}

TEST(Logger, VformatComposesOneCompleteRecord) {
  EXPECT_EQ(format_record(LogLevel::kWarn, "bank %d lost %d ways", 3, 2),
            "[warn] bank 3 lost 2 ways\n");
  EXPECT_EQ(format_record(LogLevel::kError, "plain"), "[error] plain\n");
}

TEST(Logger, VformatTruncatesOverlongMessages) {
  const std::string big(4096, 'x');
  const std::string rec = format_record(LogLevel::kInfo, "%s", big.c_str());
  EXPECT_LT(rec.size(), 1100u);  // Bounded by the internal 1 KiB buffer.
  EXPECT_EQ(rec.substr(rec.size() - 4), "...\n");
  EXPECT_EQ(rec.substr(0, 7), "[info] ");
}

TEST(Logger, LevelGate) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kWarn);
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  EXPECT_TRUE(Logger::enabled(LogLevel::kWarn));
  EXPECT_FALSE(Logger::enabled(LogLevel::kInfo));
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  Logger::set_level(before);
}

}  // namespace
}  // namespace delta
