// End-to-end integration tests: the qualitative results of the paper's
// evaluation must hold on small simulations (full-length reproductions live
// in bench/).
#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "sim/splash_estimator.hpp"
#include "workload/splash.hpp"

namespace delta::sim {
namespace {

MachineConfig quick16() {
  MachineConfig c = config16();
  c.warmup_epochs = 40;
  c.measure_epochs = 150;
  return c;
}

TEST(Integration, DeltaBeatsSnucaOnAHeterogeneousMix) {
  const MachineConfig cfg = quick16();
  const workload::Mix mix = mix_for_config(cfg, "w2");
  const MixResult snuca = run_mix(cfg, mix, SchemeKind::kSnuca);
  const MixResult delta = run_mix(cfg, mix, SchemeKind::kDelta);
  EXPECT_GT(speedup(delta, snuca), 1.02)
      << "DELTA should clearly beat unpartitioned S-NUCA on w2";
}

TEST(Integration, DeltaBeatsPrivateOnCapacityHeterogeneousMix) {
  const MachineConfig cfg = quick16();
  const workload::Mix mix = mix_for_config(cfg, "w1");  // LM-heavy.
  const MixResult priv = run_mix(cfg, mix, SchemeKind::kPrivate);
  const MixResult delta = run_mix(cfg, mix, SchemeKind::kDelta);
  EXPECT_GT(speedup(delta, priv), 1.0);
}

TEST(Integration, IdealCentralizedAtLeastMatchesSnuca) {
  const MachineConfig cfg = quick16();
  const workload::Mix mix = mix_for_config(cfg, "w2");
  const MixResult snuca = run_mix(cfg, mix, SchemeKind::kSnuca);
  const MixResult ideal = run_mix(cfg, mix, SchemeKind::kIdealCentralized);
  EXPECT_GT(speedup(ideal, snuca), 1.02);
}

TEST(Integration, ControlMessageOverheadIsMarginal) {
  const MachineConfig cfg = quick16();
  const workload::Mix mix = mix_for_config(cfg, "w6");
  const MixResult delta = run_mix(cfg, mix, SchemeKind::kDelta);
  const double control = static_cast<double>(delta.traffic.control_messages());
  const double demand = static_cast<double>(delta.traffic.demand_messages());
  ASSERT_GT(demand, 0.0);
  // Paper Sec. IV-E2: ~0.1% worst case; allow an order of slack.
  EXPECT_LT(control / demand, 0.01);
}

TEST(Integration, ThrashersAreContainedByDelta) {
  // w3 is thrashing-heavy; DELTA must protect the sensitive apps from
  // bwaves/libquantum pollution, so their IPC under DELTA must beat S-NUCA.
  const MachineConfig cfg = quick16();
  const workload::Mix mix = mix_for_config(cfg, "w3");
  const MixResult snuca = run_mix(cfg, mix, SchemeKind::kSnuca);
  const MixResult delta = run_mix(cfg, mix, SchemeKind::kDelta);
  // tonto on cores 0/1 is cache-sensitive-low.
  EXPECT_GT(delta.apps[0].ipc, snuca.apps[0].ipc);
}

TEST(Integration, SplashEstimatorShapesMatchPaper) {
  const MachineConfig cfg = config16();
  SplashConfig scfg;
  scfg.accesses_per_thread = 30'000;

  // water.nsq: almost fully private => DELTA ~ private > S-NUCA.
  const SplashEstimate nsq =
      estimate_splash(workload::splash_profile("water.nsq"), cfg, scfg);
  EXPECT_GT(nsq.private_pages_pct, 95.0);
  EXPECT_NEAR(nsq.delta_cycles, nsq.private_cycles,
              0.05 * nsq.private_cycles);
  EXPECT_GT(nsq.delta_speedup, 1.0);

  // lu.ncont: almost fully shared => DELTA ~ S-NUCA, private loses.
  const SplashEstimate lu =
      estimate_splash(workload::splash_profile("lu.ncont"), cfg, scfg);
  EXPECT_LT(lu.private_pages_pct, 5.0);
  EXPECT_NEAR(lu.delta_cycles, lu.snuca_cycles, 0.05 * lu.snuca_cycles);
  EXPECT_LT(lu.private_speedup, 1.0) << "private LLC must lose on heavy sharing";
}

TEST(Integration, DeltaEstimateAlwaysBetweenBaselines) {
  const MachineConfig cfg = config16();
  SplashConfig scfg;
  scfg.accesses_per_thread = 15'000;
  for (const auto& p : workload::splash_profiles()) {
    const SplashEstimate e = estimate_splash(p, cfg, scfg);
    const double lo = std::min(e.snuca_cycles, e.private_cycles);
    const double hi = std::max(e.snuca_cycles, e.private_cycles);
    EXPECT_GE(e.delta_cycles, lo * 0.999) << p.name;
    EXPECT_LE(e.delta_cycles, hi * 1.001) << p.name;
  }
}

}  // namespace
}  // namespace delta::sim
