// Tier-2 `check` tests for the chip-wide invariant checker: clean runs
// under every scheme, fault injection proving the checker actually fires,
// and the standalone MESIF directory checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "mem/directory.hpp"
#include "obs/observer.hpp"
#include "sim/chip.hpp"
#include "sim/runner.hpp"

namespace delta::check {
namespace {

sim::MachineConfig tiny() {
  sim::MachineConfig c = sim::config16();
  c.warmup_epochs = 6;
  c.measure_epochs = 24;
  return c;
}

workload::Mix mix16() {
  workload::Mix m;
  m.name = "inv";
  m.apps = {"mc", "po", "xa", "na", "ze", "hm", "ga", "gr",
            "li", "de", "om", "bw", "so", "ca", "pe", "Ge"};
  return m;
}

std::vector<std::string> apps16() { return mix16().apps; }

std::string kinds_of(const InvariantChecker& chk) {
  std::string s;
  for (const Violation& v : chk.violations()) {
    s += to_string(v);
    s += '\n';
  }
  return s;
}

class EveryScheme : public ::testing::TestWithParam<sim::SchemeKind> {};

TEST_P(EveryScheme, FullRunIsViolationFree) {
  InvariantChecker chk;
  sim::run_mix(tiny(), mix16(), GetParam(), {}, nullptr, &chk);
  EXPECT_TRUE(chk.clean()) << kinds_of(chk);
}

TEST_P(EveryScheme, RunWithIdleCoresIsViolationFree) {
  // Idle home banks get handed over under DELTA; the checker must not
  // mistake that for a home-floor breach.
  workload::Mix m = mix16();
  m.apps[1] = m.apps[5] = m.apps[10] = m.apps[15] = "idle";
  InvariantChecker chk;
  sim::run_mix(tiny(), m, GetParam(), {}, nullptr, &chk);
  EXPECT_TRUE(chk.clean()) << kinds_of(chk);
}

INSTANTIATE_TEST_SUITE_P(Schemes, EveryScheme,
                         ::testing::Values(sim::SchemeKind::kSnuca,
                                           sim::SchemeKind::kPrivate,
                                           sim::SchemeKind::kIdealCentralized,
                                           sim::SchemeKind::kDelta),
                         [](const auto& inf) {
                           std::string s(sim::to_string(inf.param));
                           for (auto& ch : s)
                             if (ch == '-') ch = '_';
                           return s;
                         });

TEST(InvariantChecker, OccupancyEnforcementRunIsViolationFree) {
  sim::MachineConfig cfg = tiny();
  cfg.delta.intra_enforcement = core::IntraEnforcement::kOccupancy;
  InvariantChecker chk;
  sim::run_mix(cfg, mix16(), sim::SchemeKind::kDelta, {}, nullptr, &chk);
  EXPECT_TRUE(chk.clean()) << kinds_of(chk);
}

TEST(InvariantChecker, CatchesInjectedWayLeakUnderDelta) {
  sim::Chip chip(tiny(), apps16(), sim::make_scheme(sim::SchemeKind::kDelta));
  chip.run_epochs(20, false);

  InvariantChecker before;
  before.on_epoch(chip, 20);
  ASSERT_TRUE(before.clean()) << kinds_of(before);

  // Silently drop one way's ownership — the bug class the conservation
  // check exists for (a transfer that loses a way instead of moving it).
  ASSERT_TRUE(chip.scheme().debug_drop_way(3, 7));
  InvariantChecker after;
  after.check_partitioning(chip, 21);
  ASSERT_FALSE(after.clean());
  bool saw_conservation = false;
  for (const Violation& v : after.violations())
    saw_conservation |= v.kind == InvariantKind::kWayConservation;
  EXPECT_TRUE(saw_conservation) << kinds_of(after);
}

TEST(InvariantChecker, CatchesInjectedWayLeakUnderIdealCentral) {
  sim::Chip chip(tiny(), apps16(),
                 sim::make_scheme(sim::SchemeKind::kIdealCentralized));
  chip.run_epochs(20, false);
  ASSERT_TRUE(chip.scheme().debug_drop_way(0, 0));
  InvariantChecker chk;
  chk.check_partitioning(chip, 20);
  EXPECT_FALSE(chk.clean());
}

TEST(InvariantChecker, StaticSchemesHaveNoWayPartitionState) {
  sim::Chip chip(tiny(), apps16(), sim::make_scheme(sim::SchemeKind::kSnuca));
  EXPECT_FALSE(chip.scheme().debug_drop_way(0, 0));
  EXPECT_EQ(chip.scheme().wp_unit(0), nullptr);
  EXPECT_EQ(chip.scheme().cbt_of(0), nullptr);
  EXPECT_EQ(chip.scheme().tracked_occupancy(0, 0), -1);
}

TEST(InvariantChecker, ThrowOnViolationFailsFast) {
  sim::Chip chip(tiny(), apps16(), sim::make_scheme(sim::SchemeKind::kDelta));
  chip.run_epochs(12, false);
  ASSERT_TRUE(chip.scheme().debug_drop_way(5, 2));
  CheckerOptions opts;
  opts.throw_on_violation = true;
  InvariantChecker chk(opts);
  EXPECT_THROW(chk.check_partitioning(chip, 12), InvariantError);
  // The violation is still recorded before the throw.
  ASSERT_EQ(chk.violations().size(), 1u);
  EXPECT_EQ(chk.violations()[0].kind, InvariantKind::kWayConservation);
}

TEST(InvariantChecker, CatchesStaleLineOutsideOwnersMapping) {
  // Under the private scheme core 0 maps everything to bank 0; a line owned
  // by core 0 sitting in bank 9 is exactly what an incomplete
  // bulk-invalidation sweep would leave behind.
  sim::Chip chip(tiny(), apps16(), sim::make_scheme(sim::SchemeKind::kPrivate));
  chip.run_epochs(5, false);
  chip.bank(9).access(/*set=*/3, /*block=*/0xDEAD, /*owner=*/0,
                      mem::full_mask(16));
  InvariantChecker chk;
  chk.check_residency(chip, 5);
  ASSERT_FALSE(chk.clean());
  bool saw = false;
  for (const Violation& v : chk.violations())
    saw |= v.kind == InvariantKind::kResidencyAgreement && v.bank == 9;
  EXPECT_TRUE(saw) << kinds_of(chk);
}

TEST(InvariantChecker, ViolationsLandInObservabilityTrace) {
  sim::Chip chip(tiny(), apps16(), sim::make_scheme(sim::SchemeKind::kDelta));
  obs::Observer obs(obs::ObsLevel::kFull);
  obs.begin_run("delta");
  chip.set_observer(&obs);
  chip.run_epochs(12, false);
  ASSERT_TRUE(chip.scheme().debug_drop_way(2, 4));
  InvariantChecker chk;
  chk.check_partitioning(chip, 12);
  ASSERT_FALSE(chk.clean());
  EXPECT_GE(obs.events().count_of(obs::EventKind::kInvariantViolation), 1u);
}

TEST(InvariantChecker, ViolationFormattingNamesTheInvariant) {
  Violation v;
  v.kind = InvariantKind::kHomeFloor;
  v.epoch = 7;
  v.core = 3;
  v.bank = 3;
  v.value = 1;
  v.expect = 4;
  v.detail = "active core below reserved home floor";
  const std::string s = to_string(v);
  EXPECT_NE(s.find("home_floor"), std::string::npos);
  EXPECT_NE(s.find("epoch 7"), std::string::npos);
  EXPECT_NE(s.find("observed 1"), std::string::npos);
  EXPECT_NE(s.find("expected 4"), std::string::npos);
}

TEST(DirectoryInvariants, CoherentHistoryIsViolationFree) {
  mem::MesifDirectory dir(4);
  dir.on_read(0, 100);
  dir.on_read(1, 100);
  dir.on_write(2, 100);
  dir.on_read(3, 200);
  dir.on_evict(3, 200);
  dir.on_write(0, 300);
  dir.on_read(1, 300);
  std::vector<Violation> out;
  check_directory(dir, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(DirectoryInvariants, AgreementHoldsWhenCachesTrackSharers) {
  mem::MesifDirectory dir(4);
  dir.on_read(0, 100);
  dir.on_read(1, 100);
  std::vector<Violation> out;
  check_directory_agreement(
      dir, [&](CoreId c, BlockAddr b) { return dir.is_sharer(c, b); }, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(DirectoryInvariants, DetectsSharerWithoutResidentCopy) {
  mem::MesifDirectory dir(4);
  dir.on_read(0, 100);
  dir.on_read(1, 100);
  std::vector<Violation> out;
  // Model a cache that silently dropped core 1's copy (no on_evict).
  check_directory_agreement(
      dir, [](CoreId c, BlockAddr) { return c == 0; }, 3, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, InvariantKind::kDirectoryAgreement);
  EXPECT_EQ(out[0].core, 1);
  EXPECT_EQ(out[0].epoch, 3u);
}

TEST(LockstepMode, PinsPerAppAccessCountsAcrossSchemes) {
  sim::MachineConfig cfg = tiny();
  cfg.lockstep_accesses = true;
  const sim::MixResult a =
      sim::run_mix(cfg, mix16(), sim::SchemeKind::kSnuca);
  const sim::MixResult b = sim::run_mix(cfg, mix16(), sim::SchemeKind::kDelta);
  for (std::size_t i = 0; i < a.apps.size(); ++i)
    EXPECT_EQ(a.apps[i].llc_accesses, b.apps[i].llc_accesses) << i;
}

}  // namespace
}  // namespace delta::check
