#include <gtest/gtest.h>

#include "sim/chip.hpp"
#include "sim/runner.hpp"
#include "umon/mlp.hpp"

namespace delta {
namespace {

TEST(MlpEstimator, DefaultsToSerialised) {
  umon::MlpEstimator e;
  EXPECT_DOUBLE_EQ(e.get(), 1.0);
  EXPECT_FALSE(e.initialised());
}

TEST(MlpEstimator, LittlesLawRatio) {
  umon::MlpEstimator e;
  // 1000 accesses, 350 cycles each, but only 87,500 stall cycles paid:
  // 4 outstanding on average.
  e.observe(1000, 350'000.0, 87'500.0);
  EXPECT_DOUBLE_EQ(e.get(), 4.0);
}

TEST(MlpEstimator, EwmaSmoothing) {
  umon::MlpEstimator e(0.5);
  e.observe(100, 400.0, 100.0);  // 4.0
  e.observe(100, 200.0, 100.0);  // 2.0 -> EWMA 3.0
  EXPECT_DOUBLE_EQ(e.get(), 3.0);
}

TEST(MlpEstimator, IgnoresDegenerateIntervals) {
  umon::MlpEstimator e;
  e.observe(0, 0.0, 0.0);
  e.observe(10, 100.0, 0.0);
  EXPECT_FALSE(e.initialised());
  e.observe(10, 50.0, 100.0);  // Ratio < 1 clamps to 1.
  EXPECT_DOUBLE_EQ(e.get(), 1.0);
}

TEST(MlpEstimator, ResetClears) {
  umon::MlpEstimator e;
  e.observe(10, 400.0, 100.0);
  e.reset();
  EXPECT_FALSE(e.initialised());
  EXPECT_DOUBLE_EQ(e.get(), 1.0);
}

TEST(MlpIntegration, EstimatorConvergesToProfileMlp) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 0;
  cfg.measure_epochs = 0;
  std::vector<std::string> apps(16, "idle");
  apps[0] = "le";  // mlp 3.5.
  sim::Chip chip(cfg, apps, sim::make_scheme(sim::SchemeKind::kPrivate));
  chip.run_epochs(30, false);
  EXPECT_NEAR(chip.slot(0).mlp_estimator.get(), 3.5, 0.2);
}

TEST(MlpIntegration, MeasuredMlpModeStaysCompetitive) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 30;
  cfg.measure_epochs = 100;
  const workload::Mix mix = sim::mix_for_config(cfg, "w9");
  const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
  const sim::MixResult oracle = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);

  sim::MachineConfig measured = cfg;
  measured.measured_mlp = true;
  const sim::MixResult counters = sim::run_mix(measured, mix, sim::SchemeKind::kDelta);

  EXPECT_GT(sim::speedup(counters, snuca), 1.0);
  EXPECT_NEAR(sim::speedup(counters, snuca) / sim::speedup(oracle, snuca), 1.0, 0.04);
}

}  // namespace
}  // namespace delta
