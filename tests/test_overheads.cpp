// Tests of the Sec. IV-E overhead accounting: storage formulas, message
// budgets and the complexity gap between Lookahead, Peekahead and DELTA.
#include <gtest/gtest.h>

#include "alloc/lookahead.hpp"
#include "alloc/peekahead.hpp"
#include "common/rng.hpp"
#include "core/cbt.hpp"
#include "core/controller.hpp"
#include "core/way_partition.hpp"
#include "umon/umon.hpp"

namespace delta {
namespace {

// Convex curves (monotonically diminishing marginal utility) make Lookahead
// award one way at a time — the regime where its O(N*W^2) scan bites.
umon::MissCurve convex_curve(Rng& rng, int ways) {
  const double base = 1000.0 + rng.uniform() * 5000.0;
  const double rate = 0.2 + rng.uniform();
  std::vector<double> m(static_cast<std::size_t>(ways) + 1);
  for (int w = 0; w <= ways; ++w)
    m[static_cast<std::size_t>(w)] = base / (1.0 + rate * w);
  return umon::MissCurve(std::move(m));
}

alloc::AllocRequest request_for(int cores, Rng& rng) {
  alloc::AllocRequest req;
  for (int a = 0; a < cores; ++a) req.curves.push_back(convex_curve(rng, cores * 16));
  req.total_ways = cores * 16;
  req.min_ways = 1;
  return req;
}

// The paper's Table VI trend: Lookahead's work grows super-quadratically in
// core count; Peekahead's roughly linearly in N*W.
TEST(Overheads, LookaheadStepsGrowSuperlinearly) {
  Rng rng(42);
  std::vector<std::uint64_t> la_steps, pa_steps;
  for (int cores : {4, 8, 16}) {
    const alloc::AllocRequest req = request_for(cores, rng);
    la_steps.push_back(alloc::lookahead(req).steps);
    pa_steps.push_back(alloc::peekahead(req).steps);
  }
  // Doubling cores (and with it W) should much-more-than-double Lookahead's
  // work but keep Peekahead's growth ~x4 (N and W both double).
  EXPECT_GT(la_steps[1], la_steps[0] * 4);
  EXPECT_GT(la_steps[2], la_steps[1] * 4);
  EXPECT_LT(pa_steps[2], pa_steps[1] * 8);
  EXPECT_LT(pa_steps[2] * 10, la_steps[2]);
}

TEST(Overheads, CbtStorageMatchesPaperFormula) {
  // Sec. II-C1: log2(N) x N bits per CBT.
  EXPECT_EQ(core::Cbt::storage_bits(16), 64u);
  EXPECT_EQ(core::Cbt::storage_bits(64), 384u);
}

TEST(Overheads, WpStorageMatchesPaperFormula) {
  // Sec. II-C2: N x W bits per WP unit.
  EXPECT_EQ(core::WpUnit::storage_bits(16, 16), 256u);
  EXPECT_EQ(core::WpUnit::storage_bits(64, 16), 1024u);
}

TEST(Overheads, UmonCoarseCountersShrinkStorage) {
  umon::UmonConfig coarse;
  coarse.max_ways = 192;
  coarse.coarse_ways = 4;
  umon::UmonConfig fine = coarse;
  fine.coarse_ways = 1;
  EXPECT_LT(umon::Umon(coarse).storage_bits(), umon::Umon(fine).storage_bits());
}

TEST(Overheads, DeltaTickAluOpsScaleLinearlyWithTiles) {
  auto ops_for = [](int side) {
    noc::Mesh mesh(side, side);
    core::DeltaParams params;
    core::DeltaController ctrl(mesh, params, 16);
    umon::Umon u(umon::UmonConfig{.max_ways = 32});
    std::vector<core::TileInput> in(static_cast<std::size_t>(side * side));
    for (auto& i : in) i = {&u, 2.0, true, 0};
    ctrl.tick(0, in);
    return ctrl.stats().alu_ops;
  };
  const auto ops4 = ops_for(2);   // 4 tiles.
  const auto ops64 = ops_for(8);  // 64 tiles.
  EXPECT_GE(ops64, ops4 * 8);
  EXPECT_LE(ops64, ops4 * 40);  // Linear-ish, far from quadratic blowup.
}

TEST(Overheads, DeltaPerTileStorageIsSmall) {
  // Sec. II-B4/II-C: the whole distributed implementation needs only a few
  // hundred bits of register state per tile.
  const std::uint64_t bits16 = core::DeltaController::storage_bits_per_tile(16, 16);
  const std::uint64_t bits64 = core::DeltaController::storage_bits_per_tile(64, 16);
  // 16 tiles: (18+17)*4 + 64 + 256 = 460 bits.
  EXPECT_EQ(bits16, 460u);
  EXPECT_LT(bits64, 16u * kKiB);  // Far below even one cache line of SRAM per way.
  EXPECT_GT(bits64, bits16);
}

TEST(Overheads, WorstCaseMessageBudgetFormula) {
  // Sec. IV-E2 on 16 cores: intra 2N + inter N*10*2 = 352 messages/interval.
  const int n = 16;
  EXPECT_EQ(2 * n + n * 10 * 2, 352);
}

}  // namespace
}  // namespace delta
