#include <gtest/gtest.h>

#include "mem/directory.hpp"

namespace delta::mem {
namespace {

TEST(Directory, FirstReadIsExclusiveFromMemory) {
  MesifDirectory d(4);
  const auto act = d.on_read(0, 42);
  EXPECT_TRUE(act.from_memory);
  EXPECT_FALSE(act.forwarded);
  EXPECT_EQ(d.state(42), CoherenceState::kExclusive);
  EXPECT_TRUE(d.is_sharer(0, 42));
}

TEST(Directory, SecondReadForwardsAndShares) {
  MesifDirectory d(4);
  d.on_read(0, 42);
  const auto act = d.on_read(1, 42);
  EXPECT_FALSE(act.from_memory);
  EXPECT_TRUE(act.forwarded);
  EXPECT_EQ(act.forwarder, 0);
  EXPECT_EQ(d.state(42), CoherenceState::kShared);
  // MESIF: the latest requester holds the F state.
  EXPECT_EQ(d.forwarder(42), 1);
}

TEST(Directory, ThirdReadForwardsFromFState) {
  MesifDirectory d(4);
  d.on_read(0, 7);
  d.on_read(1, 7);
  const auto act = d.on_read(2, 7);
  EXPECT_TRUE(act.forwarded);
  EXPECT_EQ(act.forwarder, 1);
  EXPECT_EQ(d.forwarder(7), 2);
}

TEST(Directory, WriteInvalidatesSharers) {
  MesifDirectory d(4);
  d.on_read(0, 9);
  d.on_read(1, 9);
  d.on_read(2, 9);
  const auto act = d.on_write(3, 9);
  EXPECT_EQ(act.invalidations, 3);
  EXPECT_EQ(d.state(9), CoherenceState::kModified);
  EXPECT_EQ(d.sharer_mask(9), 0b1000u);
}

TEST(Directory, WriteUpgradeInPlaceCostsNothing) {
  MesifDirectory d(4);
  d.on_read(0, 9);  // Exclusive.
  const auto act = d.on_write(0, 9);
  EXPECT_EQ(act.invalidations, 0);
  EXPECT_FALSE(act.forwarded);
  EXPECT_EQ(d.state(9), CoherenceState::kModified);
}

TEST(Directory, ReadAfterWriteForwardsDirtyData) {
  MesifDirectory d(4);
  d.on_write(0, 5);
  const auto act = d.on_read(1, 5);
  EXPECT_TRUE(act.forwarded);
  EXPECT_EQ(act.forwarder, 0);
  EXPECT_EQ(d.state(5), CoherenceState::kShared);
  EXPECT_GE(d.stats().writebacks, 1u);
}

TEST(Directory, EvictionRemovesSharerAndUntracksWhenEmpty) {
  MesifDirectory d(4);
  d.on_read(0, 11);
  d.on_read(1, 11);
  EXPECT_EQ(d.tracked_blocks(), 1u);
  d.on_evict(0, 11);
  EXPECT_FALSE(d.is_sharer(0, 11));
  EXPECT_TRUE(d.is_sharer(1, 11));
  d.on_evict(1, 11);
  EXPECT_EQ(d.tracked_blocks(), 0u);
  EXPECT_EQ(d.state(11), CoherenceState::kInvalid);
}

TEST(Directory, EvictingForwarderPassesFState) {
  MesifDirectory d(4);
  d.on_read(0, 3);
  d.on_read(1, 3);  // F = 1.
  d.on_evict(1, 3);
  EXPECT_EQ(d.forwarder(3), 0);
}

TEST(Directory, StatsAccumulate) {
  MesifDirectory d(2);
  d.on_read(0, 1);
  d.on_read(1, 1);
  d.on_write(0, 1);
  EXPECT_EQ(d.stats().reads, 2u);
  EXPECT_EQ(d.stats().writes, 1u);
  EXPECT_EQ(d.stats().memory_fetches, 1u);
  EXPECT_GE(d.stats().invalidations_sent, 1u);
}

// Invariant sweep: after a random workload, every block in Modified or
// Exclusive state has exactly one sharer.
TEST(DirectoryProperty, SingleOwnerInvariant) {
  MesifDirectory d(8);
  std::uint64_t x = 12345;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 20'000; ++i) {
    const CoreId c = static_cast<CoreId>(next() % 8);
    const BlockAddr b = next() % 64;
    switch (next() % 3) {
      case 0: d.on_read(c, b); break;
      case 1: d.on_write(c, b); break;
      default: d.on_evict(c, b); break;
    }
  }
  for (BlockAddr b = 0; b < 64; ++b) {
    const auto st = d.state(b);
    const auto mask = d.sharer_mask(b);
    if (st == CoherenceState::kModified || st == CoherenceState::kExclusive) {
      EXPECT_EQ(__builtin_popcountll(mask), 1) << "block " << b;
    }
    if (st == CoherenceState::kInvalid) {
      EXPECT_EQ(mask, 0u);
    }
    if (mask != 0) {
      EXPECT_NE(st, CoherenceState::kInvalid);
    }
  }
}

}  // namespace
}  // namespace delta::mem
