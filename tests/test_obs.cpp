#include <gtest/gtest.h>

#include <string>

#include "json_check.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "obs/recorder.hpp"
#include "sim/runner.hpp"

namespace delta::obs {
namespace {

TEST(EventKind, EveryKindHasAName) {
  for (int k = 0; k < kNumEventKinds; ++k) {
    const auto name = event_kind_name(static_cast<EventKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "kind " << k << " missing a name";
  }
}

TEST(EventRecorder, RecordsFieldsInOrder) {
  EventRecorder rec(8);
  rec.set_run(2);
  rec.record(EventKind::kChallengeSent, 7, 3, 5, 11, 2, 1.5, -0.25);
  rec.record(EventKind::kRetreat, 9, 4);
  ASSERT_EQ(rec.size(), 2u);
  const Event e = rec.events()[0];  // events() returns a snapshot by value.
  EXPECT_EQ(e.kind, EventKind::kChallengeSent);
  EXPECT_EQ(e.epoch, 7u);
  EXPECT_EQ(e.run, 2);
  EXPECT_EQ(e.core, 3);
  EXPECT_EQ(e.bank, 5);
  EXPECT_EQ(e.other, 11);
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.a, 1.5);
  EXPECT_DOUBLE_EQ(e.b, -0.25);
  EXPECT_EQ(rec.events()[1].bank, -1);  // Defaulted optional fields.
  EXPECT_EQ(rec.count_of(EventKind::kRetreat), 1u);
  EXPECT_EQ(rec.count_of(EventKind::kWayTransfer), 0u);
}

TEST(EventRecorder, OverflowDropsNewestAndCounts) {
  EventRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.record(EventKind::kWayTransfer, static_cast<std::uint64_t>(i), i);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Oldest events are the ones kept.
  EXPECT_EQ(rec.events().front().epoch, 0u);
  EXPECT_EQ(rec.events().back().epoch, 3u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(EventRecorder, DisabledRecorderIsANoOp) {
  EventRecorder rec(4);
  rec.set_enabled(false);
  for (int i = 0; i < 10; ++i) rec.record(EventKind::kChallengeWon, 1, 0);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Observer, LevelGatesCollection) {
  Observer off(ObsLevel::kOff);
  EXPECT_FALSE(off.events_enabled());
  EXPECT_FALSE(off.timeline_enabled());
  EXPECT_EQ(off.event_sink(), nullptr);

  Observer summary(ObsLevel::kSummary);
  EXPECT_FALSE(summary.timeline_enabled());
  EXPECT_EQ(summary.event_sink(), nullptr);

  Observer timeline(ObsLevel::kTimeline);
  EXPECT_TRUE(timeline.timeline_enabled());
  EXPECT_FALSE(timeline.events_enabled());

  Observer full(ObsLevel::kFull);
  EXPECT_TRUE(full.events_enabled());
  ASSERT_NE(full.event_sink(), nullptr);
  EXPECT_TRUE(full.event_sink()->enabled());
}

TEST(Observer, BeginRunStampsSubsequentRecords) {
  Observer obs(ObsLevel::kFull);
  EXPECT_EQ(obs.begin_run("first"), 0u);
  obs.events().record(EventKind::kRetreat, 1, 0);
  EXPECT_EQ(obs.begin_run("second"), 1u);
  obs.events().record(EventKind::kRetreat, 2, 0);
  ASSERT_EQ(obs.events().size(), 2u);
  EXPECT_EQ(obs.events().events()[0].run, 0);
  EXPECT_EQ(obs.events().events()[1].run, 1);
  EXPECT_EQ(obs.run_name(0), "first");
  EXPECT_EQ(obs.run_name(1), "second");
  EXPECT_EQ(obs.run_name(9), "run");  // Out of range falls back.
}

TEST(Export, JsonEscapeAndNum) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_num(0.5), "0.5");
  // Non-finite values must not leak into JSON output.
  EXPECT_EQ(json_num(0.0 / 0.0), "0");
  EXPECT_EQ(json_num(1.0 / 0.0), "0");
}

TEST(Export, EmptyObserverProducesValidTrace) {
  Observer obs(ObsLevel::kFull);
  std::string why;
  EXPECT_TRUE(test::is_valid_json(chrome_trace_json(obs), &why)) << why;
}

TEST(Export, HandBuiltTraceIsValidJsonWithExpectedEvents) {
  Observer obs(ObsLevel::kFull);
  obs.begin_run("delta");
  obs.events().record(EventKind::kChallengeSent, 3, 1, 4, 2, 0, 0.7, 0.1);
  obs.events().record(EventKind::kWayTransfer, 3, 1, 4, 2, 1, 0.7, 0.2);
  obs.events().record(EventKind::kBulkInvalidation, 5, 2, 6, -1, 37);
  obs.timeline().add_core(3, 1, "mc", 0.42, 17, 1000, 250, 80.0);
  obs.timeline().add_mcu(3, 0, 12, 0.5);
  obs.timeline().add_chip(3, 10, 2000, 1, 37);

  const std::string trace = chrome_trace_json(obs);
  std::string why;
  ASSERT_TRUE(test::is_valid_json(trace, &why)) << why << "\n" << trace;
  EXPECT_NE(trace.find("\"challenge_sent\""), std::string::npos);
  EXPECT_NE(trace.find("\"way_transfer\""), std::string::npos);
  EXPECT_NE(trace.find("\"bulk_invalidation\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // Instant events carry the Chrome phase/scope markers and µs timestamps.
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
}

TEST(Export, TimelineCsvHeaderMatchesRowArity) {
  Observer obs(ObsLevel::kTimeline);
  obs.begin_run("delta");
  obs.timeline().add_core(3, 1, "mc", 0.42, 17, 1000, 250, 80.0);
  obs.timeline().add_mcu(3, 0, 12, 0.5);
  obs.timeline().add_chip(3, 10, 2000, 1, 37);
  const std::string csv = timeline_csv(obs);

  const auto fields = [](const std::string& line) {
    std::size_t n = 1;
    for (char c : line) n += c == ',' ? 1 : 0;
    return n;
  };
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == '\n') {
      if (i > start) lines.push_back(csv.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_EQ(lines.size(), 4u);  // Header + core + mcu + chip.
  EXPECT_EQ(lines[0], timeline_csv_header());
  for (const auto& line : lines) EXPECT_EQ(fields(line), fields(lines[0])) << line;
  EXPECT_EQ(lines[1].substr(0, 5), "core,");
  EXPECT_EQ(lines[2].substr(0, 4), "mcu,");
  EXPECT_EQ(lines[3].substr(0, 5), "chip,");
}

// End-to-end: a short heterogeneous run under the delta scheme must surface
// the policy activity the trace exists to show.
TEST(ObsIntegration, ShortDeltaRunEmitsPolicyEvents) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 10;
  cfg.measure_epochs = 40;
  const workload::Mix mix = sim::mix_for_config(cfg, "w2");

  Observer obs(ObsLevel::kFull);
  const sim::MixResult r =
      sim::run_mix(cfg, mix, sim::SchemeKind::kDelta, {}, &obs);
  EXPECT_GT(r.geomean_ipc, 0.0);

  EXPECT_GT(obs.events().count_of(EventKind::kChallengeSent), 0u);
  EXPECT_GT(obs.events().count_of(EventKind::kWayTransfer), 0u);
  EXPECT_GT(obs.events().count_of(EventKind::kBulkInvalidation), 0u);
  EXPECT_GT(obs.events().count_of(EventKind::kPainGainSample), 0u);
  EXPECT_GT(obs.events().count_of(EventKind::kCbtRebuild), 0u);

  // Timeline rows: one per active core and per MCU per measured epoch.
  const auto epochs = static_cast<std::size_t>(cfg.measure_epochs);
  EXPECT_EQ(obs.timeline().cores().size(), epochs * 16u);
  EXPECT_EQ(obs.timeline().chips().size(), epochs);
  EXPECT_FALSE(obs.timeline().mcus().empty());

  // Events carry the chip's absolute epoch (warmup + measured; the final
  // end-of-epoch reconfiguration lands on the closing boundary) and valid
  // tile ids.
  const auto last_epoch =
      static_cast<std::uint64_t>(cfg.warmup_epochs + cfg.measure_epochs);
  for (const Event& e : obs.events().events()) {
    EXPECT_LE(e.epoch, last_epoch);
    EXPECT_GE(e.core, -1);
    EXPECT_LT(e.core, 16);
  }

  std::string why;
  const std::string trace = chrome_trace_json(obs);
  ASSERT_TRUE(test::is_valid_json(trace, &why)) << why;
  EXPECT_NE(trace.find("\"challenge_sent\""), std::string::npos);
  EXPECT_NE(trace.find("\"way_transfer\""), std::string::npos);
  EXPECT_NE(trace.find("\"bulk_invalidation\""), std::string::npos);
}

// The same run with an off-level observer must collect nothing.
TEST(ObsIntegration, OffLevelObserverStaysEmpty) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 5;
  cfg.measure_epochs = 10;
  const workload::Mix mix = sim::mix_for_config(cfg, "w2");

  Observer obs(ObsLevel::kOff);
  (void)sim::run_mix(cfg, mix, sim::SchemeKind::kDelta, {}, &obs);
  EXPECT_EQ(obs.events().size(), 0u);
  EXPECT_TRUE(obs.timeline().empty());
  ASSERT_EQ(obs.run_names().size(), 1u);  // Run list still tracks the run.
}

}  // namespace
}  // namespace delta::obs
