#include <gtest/gtest.h>

#include "common/args.hpp"

namespace delta {
namespace {

ArgParser parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SpaceSeparatedValue) {
  const ArgParser a = parse({"--mix", "w2"});
  EXPECT_TRUE(a.has("mix"));
  EXPECT_EQ(a.get("mix"), "w2");
}

TEST(Args, EqualsSeparatedValue) {
  const ArgParser a = parse({"--cores=64"});
  EXPECT_EQ(a.get_int("cores", 16), 64);
}

TEST(Args, BooleanSwitch) {
  const ArgParser a = parse({"--csv", "--mix", "w1"});
  EXPECT_TRUE(a.has("csv"));
  EXPECT_EQ(a.get("csv"), "");
  EXPECT_EQ(a.get("mix"), "w1");
}

TEST(Args, DefaultsWhenAbsent) {
  const ArgParser a = parse({});
  EXPECT_FALSE(a.has("mix"));
  EXPECT_EQ(a.get("mix", "w2"), "w2");
  EXPECT_EQ(a.get_int("epochs", 300), 300);
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
}

TEST(Args, IntAndDoubleParsing) {
  const ArgParser a = parse({"--epochs", "600", "--central-ms", "0.5"});
  EXPECT_EQ(a.get_int("epochs", 0), 600);
  EXPECT_DOUBLE_EQ(a.get_double("central-ms", 0.0), 0.5);
}

TEST(Args, PositionalArguments) {
  const ArgParser a = parse({"first", "--mix", "w1", "second"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "first");
  EXPECT_EQ(a.positional()[1], "second");
}

TEST(Args, UnknownFlagDetection) {
  const ArgParser a = parse({"--mix", "w1", "--bogus", "x"});
  const auto unknown = a.unknown_flags({"mix", "scheme"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bogus");
}

TEST(Args, SwitchFollowedByFlag) {
  const ArgParser a = parse({"--csv", "--list"});
  EXPECT_TRUE(a.has("csv"));
  EXPECT_TRUE(a.has("list"));
}

}  // namespace
}  // namespace delta
