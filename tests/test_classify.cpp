// Validates the synthetic SPEC profiles against the paper's Table III using
// the Sec. III-B classification procedure itself.
#include <gtest/gtest.h>

#include "workload/classify.hpp"
#include "workload/spec.hpp"

namespace delta::workload {
namespace {

class ClassifyEveryApp : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassifyEveryApp, MatchesTableIII) {
  const AppProfile& p = spec_profile(GetParam());
  ClassifyConfig cfg;
  const ClassifyResult r = classify(p, cfg);
  EXPECT_EQ(to_string(r.cls), to_string(p.cls))
      << p.name << ": ipc(128K)=" << r.ipc_128k << " ipc(512K)=" << r.ipc_512k
      << " ipc(8M)=" << r.ipc_8m << " low=" << r.improvement_low
      << " med=" << r.improvement_med << " mpki@8M=" << r.mpki_8m;
}

INSTANTIATE_TEST_SUITE_P(
    AllSpec, ClassifyEveryApp,
    ::testing::Values("po", "sj", "na", "ze", "Ge", "bw", "li", "mi", "h2", "gr",
                      "as", "ga", "lb", "to", "wr", "le", "hm", "de", "om", "xa",
                      "go", "bz", "gc", "mc", "so", "pe", "sp", "ca", "cac"),
    [](const auto& inf) { return std::string(inf.param); });

TEST(Classify, IpcImprovesWithCapacityForSensitiveApps) {
  const ClassifyResult r = classify(spec_profile("mcf"));
  EXPECT_GT(r.ipc_512k, r.ipc_128k);
  EXPECT_GT(r.ipc_8m, r.ipc_512k);
}

TEST(Classify, ThrashingAppsHaveHighMpki) {
  for (const char* name : {"bw", "li", "mi"}) {
    const ClassifyResult r = classify(spec_profile(name));
    EXPECT_GT(r.mpki_8m, 5.0) << name;
  }
}

TEST(Classify, InsensitiveAppsHaveLowMpki) {
  for (const char* name : {"po", "sj", "na", "ze", "Ge"}) {
    const ClassifyResult r = classify(spec_profile(name));
    EXPECT_LT(r.mpki_8m, 5.0) << name;
  }
}

// The irregular family must classify by MPKI alone: flat curves give <10%
// IPC improvement at both classification points, so nothing lands in L/LM.
class ClassifyIrregular : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassifyIrregular, MatchesDeclaredClass) {
  const AppProfile& p = spec_profile(GetParam());
  const ClassifyResult r = classify(p);
  EXPECT_EQ(to_string(r.cls), to_string(p.cls))
      << p.name << ": ipc(128K)=" << r.ipc_128k << " ipc(512K)=" << r.ipc_512k
      << " ipc(8M)=" << r.ipc_8m << " low=" << r.improvement_low
      << " med=" << r.improvement_med << " mpki@8M=" << r.mpki_8m;
}

INSTANTIATE_TEST_SUITE_P(AllIrregular, ClassifyIrregular,
                         ::testing::Values("sv", "hj", "bf", "pr", "gw"),
                         [](const auto& inf) { return std::string(inf.param); });

TEST(ClassifyIrregular, MissCurvesAreFlatAcrossTheClassificationWindow) {
  // The defining property of the family: capacity buys (almost) nothing
  // between 128 KB and 8 MB.  The hot frontier/accumulator rings (up to
  // 30% of accesses) become resident somewhere in the window, so allow
  // their weight; the cliff apps (xa, so) move >30 points over the same
  // span and the sensitive ladder apps keep gaining past every point.
  for (const char* name : {"sv", "hj", "bf", "pr", "gw"}) {
    const AppProfile& p = spec_profile(name);
    const double m128k = standalone_miss_rate(p, 128 * kKiB);
    const double m8m = standalone_miss_rate(p, 8 * kMiB);
    EXPECT_LT(m128k - m8m, 0.20) << name << " m128k=" << m128k << " m8m=" << m8m;
    EXPECT_GT(m8m, 0.30) << name << ": an irregular kernel misses a lot everywhere";
  }
}

TEST(Classify, CliffAppsShowLittleGainInSmallWindows) {
  // xalancbmk's loop gives almost no miss reduction between 512 KB and
  // 1 MB (the cliff sits at ~1.75 MB) — the farsighted/nearsighted wedge.
  // LRU pollution from the stream/uniform components softens the cliff a
  // little past the 1.75 MB loop size, so probe at 3 MB.
  ClassifyConfig cfg;
  const AppProfile& xa = spec_profile("xa");
  const double m512 = standalone_miss_rate(xa, 512 * kKiB, cfg);
  const double m1m = standalone_miss_rate(xa, 1 * kMiB, cfg);
  const double m3m = standalone_miss_rate(xa, 3 * kMiB, cfg);
  EXPECT_NEAR(m512, m1m, 0.10);       // Plateau: window gains are small.
  EXPECT_LT(m3m, m512 - 0.3);         // Cliff crossed by 3 MB.
}

TEST(Classify, StandaloneIpcPositive) {
  EXPECT_GT(standalone_ipc(spec_profile("po"), 128 * kKiB), 0.0);
}

}  // namespace
}  // namespace delta::workload
