// The SIMD kernels (common/simd.hpp) promise bit-identity with their scalar
// references on every input — that is what lets the cache/UMON hot paths use
// them without perturbing the oracle replays.  These tests sweep widths,
// alignments, duplicate keys, and adversarial near-miss patterns against the
// references.  They run under every backend: the regular build compiles the
// native backend (SSE2/NEON/SWAR) and the CI scalar job (-DDELTA_NO_SIMD=ON)
// re-runs the same suite over the fallback.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace delta::simd {
namespace {

// A value that differs from `key` only in one 32-bit half — SSE2 builds
// 64-bit equality from two 32-bit compares, so half-matches are the
// interesting wrong-answer candidates.
std::uint64_t flip_half(std::uint64_t key, bool high) {
  return key ^ (high ? 0xdead0000'00000000ULL : 0x0000'0000'0000beefULL);
}

TEST(MatchU64, AllWidthsSingleKeyAtEveryPosition) {
  for (int n = 0; n <= 32; ++n) {
    std::array<std::uint64_t, 32> vals{};
    const std::uint64_t key = 0x0123456789abcdefULL;
    for (int i = 0; i < n; ++i) vals[i] = 0x1111111111111111ULL * (i + 1);
    for (int pos = 0; pos < n; ++pos) {
      const std::uint64_t saved = vals[pos];
      vals[pos] = key;
      const std::uint32_t ref = match_u64_scalar(vals.data(), n, key);
      EXPECT_EQ(match_u64(vals.data(), n, key), ref)
          << "n=" << n << " pos=" << pos;
      EXPECT_EQ(ref, std::uint32_t{1} << pos);
      vals[pos] = saved;
    }
    // Absent key: no bit may be set.
    EXPECT_EQ(match_u64(vals.data(), n, key), 0u) << "n=" << n;
  }
}

TEST(MatchU64, DuplicateKeysSetEveryMatchingBit) {
  std::array<std::uint64_t, 32> vals{};
  const std::uint64_t key = 0xfeedface'cafef00dULL;
  for (int i = 0; i < 32; ++i) vals[i] = (i % 3 == 0) ? key : ~key;
  for (int n = 0; n <= 32; ++n) {
    const std::uint32_t ref = match_u64_scalar(vals.data(), n, key);
    EXPECT_EQ(match_u64(vals.data(), n, key), ref) << "n=" << n;
  }
}

TEST(MatchU64, HalfWordNearMissesDoNotMatch) {
  const std::uint64_t key = 0x0123456789abcdefULL;
  std::array<std::uint64_t, 32> vals{};
  for (int i = 0; i < 32; ++i) vals[i] = flip_half(key, i % 2 == 0);
  for (int n : {1, 2, 3, 4, 7, 8, 16, 31, 32}) {
    EXPECT_EQ(match_u64(vals.data(), n, key), 0u) << "n=" << n;
    EXPECT_EQ(match_u64_scalar(vals.data(), n, key), 0u) << "n=" << n;
  }
}

TEST(MatchU64, ExtremeValues) {
  std::array<std::uint64_t, 8> vals = {0,
                                       ~0ULL,
                                       1,
                                       0x8000000000000000ULL,
                                       0x7fffffffffffffffULL,
                                       0xffffffff00000000ULL,
                                       0x00000000ffffffffULL,
                                       0x5555555555555555ULL};
  for (std::uint64_t key : vals) {
    const std::uint32_t ref = match_u64_scalar(vals.data(), 8, key);
    EXPECT_EQ(match_u64(vals.data(), 8, key), ref) << "key=" << key;
  }
}

TEST(MatchU64, RandomizedAgainstScalar) {
  Rng rng(0x51u);
  for (int iter = 0; iter < 20000; ++iter) {
    const int n = static_cast<int>(rng.below(33));  // 0..32
    std::array<std::uint64_t, 32> vals{};
    // Draw from a tiny value pool so matches and duplicates are common.
    std::array<std::uint64_t, 4> pool = {rng(), rng(),
                                         rng() & 0xffff, 0};
    for (int i = 0; i < n; ++i) vals[i] = pool[rng.below(4)];
    const std::uint64_t key = pool[rng.below(4)];
    EXPECT_EQ(match_u64(vals.data(), n, key),
              match_u64_scalar(vals.data(), n, key))
        << "iter=" << iter << " n=" << n;
  }
}

TEST(MatchU64, UnalignedBasePointer) {
  // The cache rows are not 16 B aligned in general; every offset must work.
  std::array<std::uint64_t, 40> vals{};
  const std::uint64_t key = 0xabcdef0123456789ULL;
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i;
  vals[19] = key;
  for (std::size_t off = 0; off + 16 <= vals.size(); ++off) {
    const std::uint32_t ref = match_u64_scalar(vals.data() + off, 16, key);
    EXPECT_EQ(match_u64(vals.data() + off, 16, key), ref) << "off=" << off;
  }
}

TEST(FindU64, FirstIndexAtEveryPositionAndWidth) {
  const std::uint64_t key = 0x00c0ffee'00c0ffeeULL;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{15}, std::size_t{16},
                        std::size_t{63}, std::size_t{64}, std::size_t{192},
                        std::size_t{193}}) {
    std::vector<std::uint64_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) vals[i] = ~static_cast<std::uint64_t>(i);
    // Absent.
    EXPECT_EQ(find_u64(vals.data(), n, key), n) << "n=" << n;
    EXPECT_EQ(find_u64_scalar(vals.data(), n, key), n) << "n=" << n;
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::uint64_t saved = vals[pos];
      vals[pos] = key;
      EXPECT_EQ(find_u64(vals.data(), n, key), pos) << "n=" << n;
      vals[pos] = saved;
    }
  }
}

TEST(FindU64, ReturnsFirstOfDuplicates) {
  std::vector<std::uint64_t> vals(100, 7ULL);
  for (std::size_t first : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                            std::size_t{8}, std::size_t{42}, std::size_t{99}}) {
    for (std::size_t i = 0; i < vals.size(); ++i)
      vals[i] = i >= first ? 7ULL : 9ULL;
    EXPECT_EQ(find_u64(vals.data(), vals.size(), 7ULL), first);
  }
}

TEST(FindU64, RandomizedAgainstScalar) {
  Rng rng(0xf1u);
  for (int iter = 0; iter < 5000; ++iter) {
    const std::size_t n = rng.below(300);
    std::vector<std::uint64_t> vals(n);
    std::array<std::uint64_t, 4> pool = {rng(), rng(),
                                         rng() & 0xff, ~0ULL};
    for (std::size_t i = 0; i < n; ++i) vals[i] = pool[rng.below(4)];
    const std::uint64_t key = pool[rng.below(4)];
    EXPECT_EQ(find_u64(vals.data(), n, key), find_u64_scalar(vals.data(), n, key))
        << "iter=" << iter << " n=" << n;
  }
}

TEST(Prefetch, HintsAreSideEffectFree) {
  // Smoke: hints must accept any address, including null, without faulting
  // or touching data.
  std::uint64_t x = 41;
  prefetch_read(&x);
  prefetch_write(&x);
  prefetch_read(nullptr);
  EXPECT_EQ(x, 41u);
}

TEST(Backend, NameIsKnown) {
  const std::string b = backend_name();
  EXPECT_TRUE(b == "sse2" || b == "neon" || b == "swar" || b == "scalar") << b;
#if defined(DELTA_NO_SIMD)
  EXPECT_EQ(b, "scalar");
#endif
}

}  // namespace
}  // namespace delta::simd
