// Tests of the occupancy-based intra-bank enforcement alternative.
#include <gtest/gtest.h>

#include "core/occupancy.hpp"
#include "mem/cache.hpp"
#include "sim/chip.hpp"
#include "sim/runner.hpp"

namespace delta {
namespace {

TEST(OccupancyEnforcer, PreferredVictimIsMostOverTarget) {
  core::OccupancyEnforcer e(4, 100);
  e.set_target_ways(0, 8, 16);   // Target 50%.
  e.set_target_ways(1, 8, 16);
  e.set_occupancy(0, 70);        // 20 points over.
  e.set_occupancy(1, 30);        // 20 points under.
  EXPECT_EQ(e.preferred_victim(), 0);
}

TEST(OccupancyEnforcer, NoVictimWhenEveryoneAtOrBelowTarget) {
  core::OccupancyEnforcer e(2, 100);
  e.set_target_ways(0, 8, 16);
  e.set_target_ways(1, 8, 16);
  e.set_occupancy(0, 50);
  e.set_occupancy(1, 40);
  EXPECT_EQ(e.preferred_victim(), kInvalidCore);
}

TEST(OccupancyEnforcer, InsertEvictBookkeeping) {
  core::OccupancyEnforcer e(2, 10);
  e.on_insert(1);
  e.on_insert(1);
  e.on_evict(1);
  EXPECT_EQ(e.occupancy(1), 1u);
  e.on_evict(1);
  e.on_evict(1);  // Saturates at zero.
  EXPECT_EQ(e.occupancy(1), 0u);
}

TEST(CacheEvictPref, VictimTakenFromPreferredOwner) {
  mem::SetAssocCache c(1, 4);
  const auto all = mem::full_mask(4);
  c.access(0, 10, /*owner=*/0, all);
  c.access(0, 11, 0, all);
  c.access(0, 20, 1, all);
  c.access(0, 21, 1, all);
  // Owner 0's line 10 is globally LRU, but we prefer evicting owner 1.
  const auto res = c.access(0, 30, 2, all, /*evict_pref=*/1);
  EXPECT_TRUE(res.evicted);
  EXPECT_EQ(res.victim_owner, 1);
  EXPECT_EQ(res.victim_block, 20u);  // Owner 1's LRU line.
  EXPECT_TRUE(c.contains(0, 10));
}

TEST(CacheEvictPref, FallsBackToLruWhenPreferredAbsent) {
  mem::SetAssocCache c(1, 2);
  const auto all = mem::full_mask(2);
  c.access(0, 1, 0, all);
  c.access(0, 2, 0, all);
  const auto res = c.access(0, 3, 0, all, /*evict_pref=*/7);
  EXPECT_TRUE(res.evicted);
  EXPECT_EQ(res.victim_block, 1u);
}

TEST(CacheEvictPref, InvalidWaysStillPreferred) {
  mem::SetAssocCache c(1, 2);
  const auto all = mem::full_mask(2);
  c.access(0, 1, 0, all);
  const auto res = c.access(0, 2, 1, all, /*evict_pref=*/0);
  EXPECT_FALSE(res.evicted) << "should fill the invalid way, not evict";
}

TEST(OccupancyIntegration, DeltaRunsAndStaysCompetitive) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 30;
  cfg.measure_epochs = 100;
  const workload::Mix mix = sim::mix_for_config(cfg, "w6");
  const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
  const sim::MixResult masked = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);

  sim::MachineConfig occ = cfg;
  occ.delta.intra_enforcement = core::IntraEnforcement::kOccupancy;
  const sim::MixResult occupancy = sim::run_mix(occ, mix, sim::SchemeKind::kDelta);

  EXPECT_GT(sim::speedup(occupancy, snuca), 1.0);
  // The two enforcement flavours land in the same ballpark.
  EXPECT_NEAR(sim::speedup(occupancy, snuca) / sim::speedup(masked, snuca), 1.0, 0.06);
}

TEST(OccupancyIntegration, Deterministic) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 10;
  cfg.measure_epochs = 30;
  cfg.delta.intra_enforcement = core::IntraEnforcement::kOccupancy;
  const workload::Mix mix = sim::mix_for_config(cfg, "w9");
  const sim::MixResult a = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);
  const sim::MixResult b = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);
  for (std::size_t i = 0; i < a.apps.size(); ++i)
    EXPECT_DOUBLE_EQ(a.apps[i].ipc, b.apps[i].ipc);
}

}  // namespace
}  // namespace delta
