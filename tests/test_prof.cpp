// Self-profiling subsystem (src/obs/prof): level gating, span/site
// collection, the metrics registry's determinism contract, exporter
// formats, and — the load-bearing property — byte-identical simulation
// results with profiling off vs full at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "json_check.hpp"
#include "obs/observer.hpp"
#include "obs/prof/export.hpp"
#include "obs/prof/metrics.hpp"
#include "obs/prof/prof.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace delta {
namespace {

using obs::prof::Phase;
using obs::prof::ProfLevel;
using obs::prof::Profiler;
using obs::prof::Site;

/// The profiler and registry are process-wide; every test starts from a
/// clean span store and level kOff (registered metric names persist — the
/// registry never removes metrics — which the tests account for).
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::prof::set_level(ProfLevel::kOff);
    Profiler::instance().clear();
  }
  void TearDown() override {
    obs::prof::set_level(ProfLevel::kOff);
    Profiler::instance().clear();
  }
};

TEST_F(ProfTest, ParseLevelRoundTrip) {
  for (const ProfLevel lvl :
       {ProfLevel::kOff, ProfLevel::kPhases, ProfLevel::kFull}) {
    ProfLevel parsed = ProfLevel::kOff;
    ASSERT_TRUE(obs::prof::parse_prof_level(obs::prof::to_string(lvl), &parsed));
    EXPECT_EQ(parsed, lvl);
  }
  ProfLevel lvl;
  EXPECT_FALSE(obs::prof::parse_prof_level("verbose", &lvl));
  EXPECT_FALSE(obs::prof::parse_prof_level("", &lvl));
}

TEST_F(ProfTest, LevelOffCollectsNothing) {
  {
    const obs::prof::ScopedSpan span(Phase::kEpoch, 1);
    const obs::prof::ScopedSite site(Site::kAccessBatch);
  }
  const obs::prof::ProfSnapshot snap = Profiler::instance().snapshot();
  EXPECT_TRUE(snap.spans.empty());
  for (const obs::prof::SiteTotal& s : snap.sites) EXPECT_EQ(s.calls, 0u);
}

TEST_F(ProfTest, PhasesLevelGatesSitesButNotSpans) {
  obs::prof::set_level(ProfLevel::kPhases);
  {
    const obs::prof::ScopedSpan span(Phase::kEpoch, 7);
    const obs::prof::ScopedSite site(Site::kAccessBatch);  // kFull-gated.
  }
  const obs::prof::ProfSnapshot snap = Profiler::instance().snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].phase, Phase::kEpoch);
  EXPECT_EQ(snap.spans[0].arg, 7u);
  EXPECT_EQ(snap.sites[static_cast<std::size_t>(Site::kAccessBatch)].calls, 0u);
}

TEST_F(ProfTest, StopEndsSpanEarlyAndIsIdempotent) {
  obs::prof::set_level(ProfLevel::kPhases);
  {
    obs::prof::ScopedSpan span(Phase::kPolicy, 3);
    span.stop();
    span.stop();  // Second stop and the destructor must not re-record.
  }
  const obs::prof::ProfSnapshot snap = Profiler::instance().snapshot();
  EXPECT_EQ(snap.spans.size(), 1u);
}

TEST_F(ProfTest, SpansFromManyThreadsMergeSeqSorted) {
  obs::prof::set_level(ProfLevel::kPhases);
  constexpr int kThreads = 4, kSpansEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i)
        obs::prof::ScopedSpan span(Phase::kSweepJob, static_cast<std::uint64_t>(i));
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::prof::ProfSnapshot snap = Profiler::instance().snapshot();
  ASSERT_EQ(snap.spans.size(), static_cast<std::size_t>(kThreads * kSpansEach));
  for (std::size_t i = 1; i < snap.spans.size(); ++i)
    EXPECT_LT(snap.spans[i - 1].seq, snap.spans[i].seq);
  // Thread slots are stable ids: every span carries one of kThreads tids.
  std::vector<bool> seen(64, false);
  for (const obs::prof::Span& s : snap.spans) seen[s.tid % 64] = true;
}

TEST_F(ProfTest, SiteAggregationAccumulates) {
  obs::prof::set_level(ProfLevel::kFull);
  for (int i = 0; i < 10; ++i)
    obs::prof::ScopedSite site(Site::kStageCore);
  const obs::prof::ProfSnapshot snap = Profiler::instance().snapshot();
  const obs::prof::SiteTotal& s =
      snap.sites[static_cast<std::size_t>(Site::kStageCore)];
  EXPECT_EQ(s.calls, 10u);
  EXPECT_EQ(s.hist.total(), 10u);
  EXPECT_GE(s.ns, s.hist.sum() == 0 ? 0u : 1u);
}

TEST_F(ProfTest, PhaseNsSumsOnlyThatPhase) {
  obs::prof::set_level(ProfLevel::kPhases);
  { obs::prof::ScopedSpan a(Phase::kStage, 0); }
  { obs::prof::ScopedSpan b(Phase::kApply, 0); }
  const obs::prof::ProfSnapshot snap = Profiler::instance().snapshot();
  EXPECT_EQ(snap.phase_ns(Phase::kStage) + snap.phase_ns(Phase::kApply),
            snap.spans[0].dur_ns + snap.spans[1].dur_ns);
  EXPECT_EQ(snap.phase_ns(Phase::kReduce), 0u);
}

// ------------------------------------------------------------------ registry

TEST_F(ProfTest, RegistryHandlesAreStableAndSharedByName) {
  auto& reg = obs::prof::MetricsRegistry::global();
  obs::prof::Counter& a = reg.counter("test_prof_counter", "help a");
  obs::prof::Counter& b = reg.counter("test_prof_counter", "ignored on re-reg");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);

  obs::prof::Gauge& g = reg.gauge("test_prof_gauge", "g");
  g.set(2.5);
  obs::prof::HistogramMetric& h = reg.histogram("test_prof_hist", "h");
  h.observe(1000, 2);

  const obs::prof::RegistrySnapshot snap = reg.snapshot();
  const obs::prof::MetricSample* cs = snap.find("test_prof_counter");
  ASSERT_NE(cs, nullptr);
  EXPECT_DOUBLE_EQ(cs->value, 7.0);
  const obs::prof::MetricSample* gs = snap.find("test_prof_gauge");
  ASSERT_NE(gs, nullptr);
  EXPECT_DOUBLE_EQ(gs->value, 2.5);
  const obs::prof::MetricSample* hs = snap.find("test_prof_hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->hist.total(), 2u);

  // Export order is name order — deterministic however threads registered.
  for (std::size_t i = 1; i < snap.metrics.size(); ++i)
    EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);

  reg.reset_values();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().total(), 0u);
}

TEST_F(ProfTest, SnapshotIsIsolatedFromLaterUpdates) {
  auto& reg = obs::prof::MetricsRegistry::global();
  obs::prof::Counter& c = reg.counter("test_prof_isolation", "c");
  reg.reset_values();
  c.add(5);
  const obs::prof::RegistrySnapshot snap = reg.snapshot();
  c.add(100);
  ASSERT_NE(snap.find("test_prof_isolation"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("test_prof_isolation")->value, 5.0);
}

// ----------------------------------------------------------------- exporters

TEST_F(ProfTest, PrometheusTextFormat) {
  auto& reg = obs::prof::MetricsRegistry::global();
  reg.counter("test_prof_prom_total", "a counter").add(42);
  reg.gauge("test_prof_prom_frac", "a gauge").set(0.25);
  reg.histogram("test_prof_prom_ns", "a histogram").observe(100, 3);
  const std::string text = obs::prof::prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# HELP test_prof_prom_total a counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prof_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prof_prom_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prof_prom_frac gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prof_prom_frac 0.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prof_prom_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prof_prom_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_prof_prom_ns_sum 300"), std::string::npos);
  EXPECT_NE(text.find("test_prof_prom_ns_count 3"), std::string::npos);
  // reset_values keeps the shared registry predictable for later tests.
  reg.reset_values();
}

TEST_F(ProfTest, MetricsJsonIsValidJson) {
  obs::prof::set_level(ProfLevel::kFull);
  { obs::prof::ScopedSpan span(Phase::kEpoch, 0); }
  { obs::prof::ScopedSite site(Site::kApplyBank); }
  const std::string json = obs::prof::metrics_json(
      obs::prof::MetricsRegistry::global().snapshot(),
      Profiler::instance().snapshot());
  std::string why;
  EXPECT_TRUE(test::is_valid_json(json, &why)) << why;
  EXPECT_NE(json.find("\"schema\": \"delta-prof-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"sites\""), std::string::npos);
}

TEST_F(ProfTest, TraceJsonMergesSpansAndPolicyEvents) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 5;
  cfg.measure_epochs = 10;
  cfg.intra_jobs = 2;
  obs::prof::set_level(ProfLevel::kPhases);
  obs::Observer observer(obs::ObsLevel::kFull);
  sim::run_mix(cfg, sim::mix_for_config(cfg, "w2"), sim::SchemeKind::kDelta, {},
               &observer);
  obs::prof::set_level(ProfLevel::kOff);

  const std::string trace =
      obs::prof::prof_trace_json(Profiler::instance().snapshot(), &observer);
  std::string why;
  ASSERT_TRUE(test::is_valid_json(trace, &why)) << why;
  // One timeline: prof spans ("X" on the dedicated prof pid) next to the
  // policy instants ("i" on the run pids).
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"stage\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"apply\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"reduce\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"barrier\""), std::string::npos);

  // Without an observer the trace still stands alone as valid JSON.
  const std::string solo =
      obs::prof::prof_trace_json(Profiler::instance().snapshot());
  EXPECT_TRUE(test::is_valid_json(solo, &why)) << why;
}

// -------------------------------------------------------- engine integration

TEST_F(ProfTest, DerivedEngineMetricsAreSane) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 5;
  cfg.measure_epochs = 10;
  cfg.intra_jobs = 4;
  obs::prof::MetricsRegistry::global().reset_values();
  obs::prof::set_level(ProfLevel::kFull);
  sim::run_mix(cfg, sim::mix_for_config(cfg, "w2"), sim::SchemeKind::kDelta);
  obs::prof::set_level(ProfLevel::kOff);

  const obs::prof::RegistrySnapshot reg =
      obs::prof::MetricsRegistry::global().snapshot();
  const obs::prof::MetricSample* frac =
      reg.find("delta_intra_barrier_wait_fraction");
  ASSERT_NE(frac, nullptr);
  EXPECT_GE(frac->value, 0.0);
  EXPECT_LE(frac->value, 1.0);
  const obs::prof::MetricSample* imb =
      reg.find("delta_intra_worker_imbalance_ratio");
  ASSERT_NE(imb, nullptr);
  EXPECT_GE(imb->value, 1.0);  // max/mean busy is >= 1 by construction.
  const obs::prof::MetricSample* merge =
      reg.find("delta_intra_merge_serial_fraction");
  ASSERT_NE(merge, nullptr);
  EXPECT_GE(merge->value, 0.0);
  EXPECT_LE(merge->value, 1.0);
  const obs::prof::MetricSample* epochs = reg.find("delta_intra_epochs_total");
  ASSERT_NE(epochs, nullptr);
  EXPECT_DOUBLE_EQ(epochs->value, 15.0);  // 5 warmup + 10 measured.
  const obs::prof::MetricSample* occ =
      reg.find("delta_intra_bank_buffer_occupancy");
  ASSERT_NE(occ, nullptr);
  EXPECT_GT(occ->hist.total(), 0u);
}

TEST_F(ProfTest, ResultsAreByteIdenticalWithProfilingOnOrOff) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 5;
  cfg.measure_epochs = 10;
  const workload::Mix mix = sim::mix_for_config(cfg, "w2");
  const auto summary = [&](int intra_jobs, ProfLevel lvl) {
    sim::MachineConfig c = cfg;
    c.intra_jobs = intra_jobs;
    obs::prof::set_level(lvl);
    const sim::MixResult r = sim::run_mix(c, mix, sim::SchemeKind::kDelta);
    obs::prof::set_level(ProfLevel::kOff);
    return sim::json_summary({&r, 1});
  };
  const std::string baseline = summary(1, ProfLevel::kOff);
  EXPECT_EQ(baseline, summary(1, ProfLevel::kFull)) << "serial engine diverged";
  EXPECT_EQ(baseline, summary(2, ProfLevel::kOff)) << "intra engine diverged";
  EXPECT_EQ(baseline, summary(2, ProfLevel::kFull))
      << "profiling changed intra-engine results";
  EXPECT_EQ(baseline, summary(4, ProfLevel::kFull))
      << "profiling changed 4-way intra results";
}

// ------------------------------------------------------------- logger hooks

TEST(LoggerFlush, HooksRunOnFlushNow) {
  static std::atomic<int> calls{0};
  Logger::add_flush_hook([] { calls.fetch_add(1); });
  Logger::flush_now();
  EXPECT_GE(calls.load(), 1);
  const int before = calls.load();
  Logger::flush_now();  // Hooks stay registered and re-run on every flush.
  EXPECT_EQ(calls.load(), before + 1);
}

TEST(LoggerFlush, InstallIsIdempotent) {
  Logger::install_flush_handlers();
  Logger::install_flush_handlers();  // Second call must be a no-op.
}

}  // namespace
}  // namespace delta
