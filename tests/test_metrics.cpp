// Unit tests for the Sec. III-D metric implementations on hand-built
// results (the live-simulation checks live in test_sim/test_integration).
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace delta::sim {
namespace {

MixResult make_result(std::vector<double> ipcs) {
  MixResult r;
  for (std::size_t i = 0; i < ipcs.size(); ++i) {
    AppResult a;
    a.app = "app" + std::to_string(i);
    a.core = static_cast<int>(i);
    a.ipc = ipcs[i];
    a.cpi = ipcs[i] > 0 ? 1.0 / ipcs[i] : 0.0;
    r.apps.push_back(a);
  }
  r.geomean_ipc = workload_geomean_ipc(r);
  return r;
}

TEST(Metrics, GeomeanIpc) {
  const MixResult r = make_result({1.0, 4.0});
  EXPECT_DOUBLE_EQ(workload_geomean_ipc(r), 2.0);
}

TEST(Metrics, GeomeanSkipsIdleCores) {
  const MixResult r = make_result({1.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(workload_geomean_ipc(r), 2.0);
}

TEST(Metrics, AnttDefinition) {
  // ANTT = (1/N) sum CPI_i / CPI_i,private.  App 0 runs 2x slower than its
  // private run, app 1 at parity -> ANTT = (2 + 1) / 2 = 1.5.
  const MixResult priv = make_result({1.0, 1.0});
  const MixResult r = make_result({0.5, 1.0});
  EXPECT_DOUBLE_EQ(antt(r, priv), 1.5);
}

TEST(Metrics, StpDefinition) {
  // STP = sum CPI_i,private / CPI_i.  App 0 at half speed contributes 0.5,
  // app 1 at double speed contributes 2.0.
  const MixResult priv = make_result({1.0, 1.0});
  const MixResult r = make_result({0.5, 2.0});
  EXPECT_DOUBLE_EQ(stp(r, priv), 2.5);
}

TEST(Metrics, AnttLowerIsFairer) {
  const MixResult priv = make_result({1.0, 1.0});
  const MixResult balanced = make_result({0.9, 0.9});
  const MixResult skewed = make_result({1.3, 0.5});
  EXPECT_LT(antt(balanced, priv), antt(skewed, priv));
}

TEST(Metrics, SpeedupIsGeomeanRatio) {
  const MixResult base = make_result({1.0, 1.0, 1.0, 1.0});
  const MixResult faster = make_result({1.1, 1.1, 1.1, 1.1});
  EXPECT_NEAR(speedup(faster, base), 1.1, 1e-12);
}

TEST(Metrics, SpeedupOfZeroBaselineIsZero) {
  MixResult base = make_result({0.0});
  const MixResult r = make_result({1.0});
  EXPECT_DOUBLE_EQ(speedup(r, base), 0.0);
}

}  // namespace
}  // namespace delta::sim
