#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/observer.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace delta::sim {
namespace {

MixResult tiny_result() {
  MixResult r;
  r.mix = "w2";
  r.scheme = "delta";
  r.geomean_ipc = 0.5;
  r.measured_epochs = 40;
  r.invalidated_lines = 123;
  AppResult a;
  a.core = 0;
  a.app = "mc";
  a.ipc = 0.25;
  a.cpi = 4.0;
  a.mpki = 20.0;
  a.miss_rate = 0.75;
  a.avg_latency = 200.0;
  a.avg_hops = 0.5;
  a.avg_ways = 18.0;
  a.instructions = 100000;
  a.llc_accesses = 5000;
  a.llc_misses = 3750;
  r.apps.push_back(a);
  r.traffic.count(noc::MsgType::kChallenge, 10);
  r.traffic.count(noc::MsgType::kChallengeResponse, 10);
  r.traffic.count(noc::MsgType::kIntraFeedback, 30);
  r.traffic.count(noc::MsgType::kHandover, 2);
  r.traffic.count(noc::MsgType::kInvalidation, 4);
  r.traffic.count(noc::MsgType::kMarketBid, 6);
  r.traffic.count(noc::MsgType::kMarketGrant, 2);
  r.traffic.count(noc::MsgType::kLlcRequest, 5000);
  r.control = control_breakdown(r.traffic);
  return r;
}

std::size_t field_count(const std::string& line) {
  std::size_t n = 1;
  for (char c : line) n += c == ',' ? 1 : 0;
  return n;
}

TEST(ControlBreakdown, SplitsTrafficByPurpose) {
  const MixResult r = tiny_result();
  EXPECT_EQ(r.control.challenge, 20u);
  EXPECT_EQ(r.control.feedback, 30u);
  EXPECT_EQ(r.control.invalidation, 4u);
  EXPECT_EQ(r.control.handover, 2u);
  EXPECT_EQ(r.control.central, 0u);
  EXPECT_EQ(r.control.market, 8u);
  EXPECT_EQ(r.control.total(), 64u);
}

TEST(Report, CsvHeaderMatchesRowArity) {
  const MixResult r = tiny_result();
  const std::string header = csv_header();
  const std::string rows = csv_rows(r);
  EXPECT_EQ(header.substr(0, 11), "mix,scheme,");
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.back(), '\n');
  const std::string first = rows.substr(0, rows.find('\n'));
  EXPECT_EQ(field_count(first), field_count(header));
  EXPECT_EQ(first.substr(0, 11), "w2,delta,0,");
}

TEST(Report, TextReportShowsControlBreakdown) {
  const MixResult r = tiny_result();
  const std::string text = text_report(r, nullptr);
  EXPECT_NE(text.find("delta on w2"), std::string::npos);
  EXPECT_NE(text.find("control msgs 64"), std::string::npos);
  EXPECT_NE(text.find("challenge 20"), std::string::npos);
  EXPECT_NE(text.find("feedback 30"), std::string::npos);
  EXPECT_NE(text.find("invalidation 4"), std::string::npos);
  EXPECT_NE(text.find("handover 2"), std::string::npos);
  EXPECT_NE(text.find("market 8"), std::string::npos);
  EXPECT_NE(text.find("invalidated lines 123"), std::string::npos);
}

TEST(Report, TextReportBaselineAnnotation) {
  const MixResult r = tiny_result();
  MixResult base = tiny_result();
  base.scheme = "snuca";
  base.geomean_ipc = 0.25;
  const std::string text = text_report(r, &base);
  EXPECT_NE(text.find("vs snuca"), std::string::npos);
  // A result is never annotated against itself.
  EXPECT_EQ(text_report(r, &r).find("vs delta"), std::string::npos);
}

TEST(Report, JsonSummaryIsValidAndComplete) {
  const std::vector<MixResult> results = {tiny_result()};
  const std::string json = json_summary(results);
  std::string why;
  ASSERT_TRUE(test::is_valid_json(json, &why)) << why << "\n" << json;
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"control\":{\"challenge\":20,\"feedback\":30,"
                      "\"invalidation\":4,\"handover\":2,\"central\":0,"
                      "\"market\":8,\"total\":64}"),
            std::string::npos);
  EXPECT_NE(json.find("\"apps\":["), std::string::npos);
  EXPECT_NE(json.find("\"traffic\":{"), std::string::npos);
  // No observer attached — the observability block is absent.
  EXPECT_EQ(json.find("\"observability\""), std::string::npos);
}

TEST(Report, JsonSummaryEscapesNames) {
  MixResult r = tiny_result();
  r.mix = "w\"2\\x";
  const std::string json = json_summary(std::vector<MixResult>{r});
  std::string why;
  EXPECT_TRUE(test::is_valid_json(json, &why)) << why << "\n" << json;
}

TEST(Report, JsonSummaryIncludesObservabilityBlock) {
  obs::Observer observer(obs::ObsLevel::kFull);
  observer.begin_run("delta");
  observer.events().record(obs::EventKind::kWayTransfer, 1, 0, 2, 3, 1);
  observer.events().record(obs::EventKind::kWayTransfer, 2, 1, 2, 0, 1);
  observer.timeline().add_chip(1, 5, 100, 0, 0);

  const std::vector<MixResult> results = {tiny_result()};
  const std::string json = json_summary(results, &observer);
  std::string why;
  ASSERT_TRUE(test::is_valid_json(json, &why)) << why << "\n" << json;
  EXPECT_NE(json.find("\"observability\":{\"level\":\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"events_recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"way_transfer\":2"), std::string::npos);
  EXPECT_NE(json.find("\"runs\":[\"delta\"]"), std::string::npos);
}

TEST(Report, EmptyResultSpanStillValid) {
  const std::string json = json_summary(std::vector<MixResult>{});
  std::string why;
  EXPECT_TRUE(test::is_valid_json(json, &why)) << why;
}

}  // namespace
}  // namespace delta::sim
