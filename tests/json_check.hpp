// Minimal recursive-descent JSON validity checker for tests.  Validates
// syntax only (objects, arrays, strings with escapes, numbers, literals);
// it does not build a document tree.  Kept dependency-free so the exporter
// tests do not need a JSON library in the image.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace delta::test {

class JsonChecker {
 public:
  /// Returns true iff `text` is exactly one valid JSON value (plus optional
  /// surrounding whitespace).  On failure `error()` describes the problem.
  bool check(std::string_view text) {
    s_ = text;
    pos_ = 0;
    error_.clear();
    if (!value()) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after value");
    return true;
  }

  const std::string& error() const { return error_; }
  std::size_t error_pos() const { return pos_; }

 private:
  bool fail(const char* msg) {
    if (error_.empty())
      error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return fail("expected string");
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_++])))
              return fail("bad \\u escape");
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    if (!consume('0')) {
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return fail("bad number");
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return fail("bad fraction");
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return fail("bad exponent");
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Convenience wrapper: valid-JSON predicate with gtest-friendly semantics.
inline bool is_valid_json(std::string_view text, std::string* why = nullptr) {
  JsonChecker c;
  const bool ok = c.check(text);
  if (!ok && why != nullptr) *why = c.error();
  return ok;
}

}  // namespace delta::test
