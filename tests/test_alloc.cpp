#include <gtest/gtest.h>

#include <numeric>

#include "alloc/lookahead.hpp"
#include "alloc/peekahead.hpp"
#include "alloc/placement.hpp"
#include "common/rng.hpp"

namespace delta::alloc {
namespace {

umon::MissCurve convex(double base, double rate, int ways) {
  std::vector<double> m(static_cast<std::size_t>(ways) + 1);
  for (int w = 0; w <= ways; ++w)
    m[static_cast<std::size_t>(w)] = base / (1.0 + rate * w);
  return umon::MissCurve(std::move(m));
}

umon::MissCurve cliff(double misses, int at, int ways) {
  std::vector<double> m(static_cast<std::size_t>(ways) + 1, misses);
  for (int w = at; w <= ways; ++w) m[static_cast<std::size_t>(w)] = 0.0;
  return umon::MissCurve(std::move(m));
}

umon::MissCurve random_monotone(Rng& rng, double scale, int ways) {
  std::vector<double> m(static_cast<std::size_t>(ways) + 1);
  double cur = scale;
  for (int w = 0; w <= ways; ++w) {
    m[static_cast<std::size_t>(w)] = cur;
    cur -= rng.uniform() * scale / ways;
    if (cur < 0) cur = 0;
  }
  return umon::MissCurve(std::move(m));
}

TEST(Lookahead, GreedyFavorsHighUtility) {
  AllocRequest req;
  req.curves.push_back(convex(1000.0, 0.5, 16));  // High utility.
  req.curves.push_back(convex(100.0, 0.05, 16));  // Low utility.
  req.total_ways = 16;
  req.min_ways = 1;
  const AllocResult r = lookahead(req);
  EXPECT_EQ(r.ways[0] + r.ways[1], 16);
  EXPECT_GT(r.ways[0], r.ways[1]);
}

TEST(Lookahead, RespectsMinAndMax) {
  AllocRequest req;
  for (int i = 0; i < 4; ++i) req.curves.push_back(convex(100.0, 0.3, 32));
  req.total_ways = 40;
  req.min_ways = 4;
  req.max_ways = 12;
  const AllocResult r = lookahead(req);
  for (int w : r.ways) {
    EXPECT_GE(w, 4);
    EXPECT_LE(w, 12);
  }
  EXPECT_LE(std::accumulate(r.ways.begin(), r.ways.end(), 0), 40);
}

TEST(Lookahead, CrossesCliffsThatWindowedPoliciesMiss) {
  // A farsighted allocator jumps the xalancbmk-style plateau.
  AllocRequest req;
  req.curves.push_back(cliff(1000.0, 10, 16));
  req.curves.push_back(convex(50.0, 0.2, 16));
  req.total_ways = 16;
  req.min_ways = 1;
  const AllocResult r = lookahead(req);
  EXPECT_GE(r.ways[0], 10);  // Allocated past the cliff.
}

TEST(Lookahead, FlatCurvesGetNothingExtra) {
  AllocRequest req;
  req.curves.push_back(umon::MissCurve::flat(16, 500.0));
  req.curves.push_back(convex(400.0, 0.4, 16));
  req.total_ways = 16;
  req.min_ways = 1;
  const AllocResult r = lookahead(req);
  EXPECT_EQ(r.ways[0], 1);  // The thrasher keeps its minimum.
}

TEST(Lookahead, MatchesOptimalOnConvexCurves) {
  // On convex miss curves the greedy marginal-utility rule is optimal.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    AllocRequest req;
    for (int a = 0; a < 3; ++a)
      req.curves.push_back(convex(100.0 + rng.uniform() * 900.0,
                                  0.1 + rng.uniform(), 12));
    req.total_ways = 18;
    req.min_ways = 1;
    const AllocResult greedy = lookahead(req);
    const std::vector<int> opt = optimal_partition(req);
    EXPECT_NEAR(total_misses(req, greedy.ways), total_misses(req, opt),
                1e-6 + 0.02 * total_misses(req, opt))
        << "trial " << trial;
  }
}

TEST(Peekahead, SuffixHullNextOnStepCurve) {
  const umon::MissCurve c({10.0, 10.0, 10.0, 10.0, 0.0, 0.0});
  const auto next = suffix_hull_next(c);
  EXPECT_EQ(next[0], 4);
  EXPECT_EQ(next[1], 4);
  EXPECT_EQ(next[3], 4);
  EXPECT_EQ(next[5], 5);
}

TEST(Peekahead, SameAllocationsAsLookaheadOnRandomCurves) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    AllocRequest req;
    const int apps = 2 + static_cast<int>(rng.below(5));
    for (int a = 0; a < apps; ++a)
      req.curves.push_back(random_monotone(rng, 100.0 + rng.uniform() * 1000.0, 24));
    req.total_ways = apps * 8;
    req.min_ways = 2;
    const AllocResult la = lookahead(req);
    const AllocResult pa = peekahead(req);
    // Peekahead computes the same allocation quality as Lookahead (ties may
    // be broken differently with equal utility): compare total misses.
    EXPECT_NEAR(total_misses(req, pa.ways), total_misses(req, la.ways),
                1e-6 + 0.01 * (1.0 + total_misses(req, la.ways)))
        << "trial " << trial;
  }
}

TEST(Peekahead, CheaperThanLookahead) {
  AllocRequest req;
  Rng rng(5);
  for (int a = 0; a < 16; ++a) req.curves.push_back(random_monotone(rng, 1000.0, 64));
  req.total_ways = 16 * 16;
  req.min_ways = 4;
  const AllocResult la = lookahead(req);
  const AllocResult pa = peekahead(req);
  EXPECT_LT(pa.steps, la.steps / 4) << "peekahead should do far less work";
}

TEST(Placement, HomeReservationAlwaysHonored) {
  noc::Mesh mesh(4, 4);
  PlacementRequest req;
  req.mesh = &mesh;
  req.ways.assign(16, 16);
  req.home_tile.resize(16);
  std::iota(req.home_tile.begin(), req.home_tile.end(), 0);
  const Placement p = place_allocations(req);
  for (int a = 0; a < 16; ++a)
    EXPECT_GE(p[a][static_cast<std::size_t>(a)], req.reserved_home_ways);
}

TEST(Placement, BankCapacityNeverExceeded) {
  noc::Mesh mesh(4, 4);
  PlacementRequest req;
  req.mesh = &mesh;
  req.ways = {192, 4, 4, 4, 16, 16, 16, 4, 4, 4, 4, 4, 4, 4, 4, 4};
  req.home_tile.resize(16);
  std::iota(req.home_tile.begin(), req.home_tile.end(), 0);
  const Placement p = place_allocations(req);
  for (int b = 0; b < 16; ++b) {
    int used = 0;
    for (int a = 0; a < 16; ++a) used += p[a][static_cast<std::size_t>(b)];
    EXPECT_LE(used, 16) << "bank " << b;
  }
}

TEST(Placement, BigAllocationStaysNearHome) {
  noc::Mesh mesh(4, 4);
  PlacementRequest req;
  req.mesh = &mesh;
  req.ways.assign(16, 4);
  req.ways[5] = 64;  // Needs 4 banks' worth.
  req.home_tile.resize(16);
  std::iota(req.home_tile.begin(), req.home_tile.end(), 0);
  const Placement p = place_allocations(req);
  // All of app 5's capacity lies within 2 hops of tile 5.
  for (int b = 0; b < 16; ++b)
    if (p[5][static_cast<std::size_t>(b)] > 0) {
      EXPECT_LE(mesh.hops(5, b), 2);
    }
  EXPECT_LT(mean_placement_distance(req, p), 2.0);
}

TEST(Placement, TotalWaysConserved) {
  noc::Mesh mesh(4, 4);
  PlacementRequest req;
  req.mesh = &mesh;
  req.ways = {40, 30, 20, 10, 16, 16, 16, 16, 4, 4, 4, 4, 16, 16, 16, 16};
  req.home_tile.resize(16);
  std::iota(req.home_tile.begin(), req.home_tile.end(), 0);
  const Placement p = place_allocations(req);
  int total_requested = std::accumulate(req.ways.begin(), req.ways.end(), 0);
  int total_placed = 0;
  for (const auto& row : p) total_placed += std::accumulate(row.begin(), row.end(), 0);
  // Sum of requests < chip capacity here, so everything must be placed.
  ASSERT_LE(total_requested, 16 * 16);
  EXPECT_EQ(total_placed, total_requested);
}

}  // namespace
}  // namespace delta::alloc
