// Tests of the integrated multithreaded mode (Sec. II-E executed directly).
#include <gtest/gtest.h>

#include "sim/mt_sim.hpp"
#include "workload/splash.hpp"

namespace delta::sim {
namespace {

MtConfig fast() {
  MtConfig c;
  c.accesses_per_thread = 25'000;
  return c;
}

TEST(MtSim, Deterministic) {
  const auto& p = workload::splash_profile("fft");
  const MtResult a = run_multithreaded(config16(), p, SchemeKind::kDelta, fast());
  const MtResult b = run_multithreaded(config16(), p, SchemeKind::kDelta, fast());
  EXPECT_DOUBLE_EQ(a.roi_cycles, b.roi_cycles);
  EXPECT_EQ(a.reclassifications, b.reclassifications);
}

TEST(MtSim, ClassifierSeesSharingStructure) {
  const auto& p = workload::splash_profile("cholesky");
  const MtResult r = run_multithreaded(config16(), p, SchemeKind::kDelta, fast());
  EXPECT_GT(r.private_pages, 0u);
  EXPECT_GT(r.shared_pages, 0u);
  EXPECT_GT(r.reclassifications, 0u);
  const double priv_pct = 100.0 * static_cast<double>(r.private_pages) /
                          static_cast<double>(r.private_pages + r.shared_pages);
  EXPECT_NEAR(priv_pct, p.target_private_pages_pct, 10.0);
}

TEST(MtSim, PageFlipsTriggerInvalidations) {
  const auto& p = workload::splash_profile("barnes");
  const MtResult r = run_multithreaded(config16(), p, SchemeKind::kDelta, fast());
  EXPECT_GT(r.page_invalidation_lines, 0u);
}

TEST(MtSim, AllPrivateAppBehavesLikePrivateConfig) {
  // water.nsq is ~all-private: DELTA's mapping degenerates to home banks,
  // so its ROI cycles must track the private configuration closely and its
  // NoC distance must be near zero.
  const auto& p = workload::splash_profile("water.nsq");
  const MtResult d = run_multithreaded(config16(), p, SchemeKind::kDelta, fast());
  const MtResult pr = run_multithreaded(config16(), p, SchemeKind::kPrivate, fast());
  EXPECT_NEAR(d.roi_cycles / pr.roi_cycles, 1.0, 0.05);
  EXPECT_LT(d.mean_hops, 0.3);
}

TEST(MtSim, AllSharedAppBehavesLikeSnuca) {
  const auto& p = workload::splash_profile("lu.ncont");
  const MtResult d = run_multithreaded(config16(), p, SchemeKind::kDelta, fast());
  const MtResult s = run_multithreaded(config16(), p, SchemeKind::kSnuca, fast());
  EXPECT_NEAR(d.roi_cycles / s.roi_cycles, 1.0, 0.08);
}

TEST(MtSim, SharedLinesHaveSingleHomeUnderDelta) {
  // Coherence safety (the Sec. II-E motivation): two threads accessing the
  // same shared line must map it to the same bank.  Indirect check: with a
  // fully-shared app, DELTA's miss rate must be close to S-NUCA's (double
  // homes would double cold misses).
  const auto& p = workload::splash_profile("radiosity");
  const MtResult d = run_multithreaded(config16(), p, SchemeKind::kDelta, fast());
  const MtResult s = run_multithreaded(config16(), p, SchemeKind::kSnuca, fast());
  EXPECT_NEAR(d.miss_rate, s.miss_rate, 0.05);
}

TEST(MtSim, DeltaBetweenBaselinesAcrossSuite) {
  MtConfig c;
  c.accesses_per_thread = 12'000;
  for (const char* name : {"barnes", "fmm", "ocean.cont", "water.sp"}) {
    const auto& p = workload::splash_profile(name);
    const MtResult d = run_multithreaded(config16(), p, SchemeKind::kDelta, c);
    const MtResult s = run_multithreaded(config16(), p, SchemeKind::kSnuca, c);
    const MtResult pr = run_multithreaded(config16(), p, SchemeKind::kPrivate, c);
    const double lo = std::min(s.roi_cycles, pr.roi_cycles) * 0.93;
    const double hi = std::max(s.roi_cycles, pr.roi_cycles) * 1.07;
    EXPECT_GE(d.roi_cycles, lo) << name;
    EXPECT_LE(d.roi_cycles, hi) << name;
  }
}

}  // namespace
}  // namespace delta::sim
