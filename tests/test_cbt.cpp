#include <gtest/gtest.h>

#include "core/cbt.hpp"

namespace delta::core {
namespace {

TEST(Cbt, InitialStateMapsEverythingHome) {
  Cbt cbt(3);
  for (int c = 0; c < mem::kNumChunks; ++c) EXPECT_EQ(cbt.bank_for_chunk(c), 3);
  EXPECT_EQ(cbt.range_count(), 1);
}

TEST(Cbt, ProportionalSplit) {
  Cbt cbt(0);
  cbt.rebuild({{0, 16}, {5, 16}});
  int bank0 = 0, bank5 = 0;
  for (int c = 0; c < mem::kNumChunks; ++c) {
    if (cbt.bank_for_chunk(c) == 0) ++bank0;
    if (cbt.bank_for_chunk(c) == 5) ++bank5;
  }
  EXPECT_EQ(bank0, 128);
  EXPECT_EQ(bank5, 128);
  EXPECT_EQ(cbt.range_count(), 2);
}

TEST(Cbt, ProportionalToWayCounts) {
  Cbt cbt(0);
  cbt.rebuild({{0, 16}, {1, 4}, {2, 12}});  // 32 total: 128/32/96 chunks.
  int counts[3] = {};
  for (int c = 0; c < mem::kNumChunks; ++c) ++counts[cbt.bank_for_chunk(c)];
  EXPECT_EQ(counts[0], 128);
  EXPECT_EQ(counts[1], 32);
  EXPECT_EQ(counts[2], 96);
}

TEST(Cbt, ChunksAlwaysPartitioned) {
  // Invariant: every chunk maps to exactly one bank after any rebuild.
  Cbt cbt(0);
  cbt.rebuild({{0, 7}, {3, 5}, {9, 3}, {12, 1}});
  int mapped = 0;
  for (int c = 0; c < mem::kNumChunks; ++c)
    if (cbt.bank_for_chunk(c) != kInvalidBank) ++mapped;
  EXPECT_EQ(mapped, mem::kNumChunks);
  // Ranges are contiguous and non-overlapping.
  int cursor = 0;
  for (const auto& r : cbt.ranges()) {
    EXPECT_EQ(r.first_chunk, cursor);
    EXPECT_GE(r.last_chunk, r.first_chunk);
    cursor = r.last_chunk + 1;
  }
  EXPECT_EQ(cursor, mem::kNumChunks);
}

TEST(Cbt, EveryBankWithWaysGetsAtLeastOneChunk) {
  Cbt cbt(0);
  // 1 way out of 200: naive rounding would starve bank 7.
  cbt.rebuild({{0, 199}, {7, 1}});
  int bank7 = 0;
  for (int c = 0; c < mem::kNumChunks; ++c)
    if (cbt.bank_for_chunk(c) == 7) ++bank7;
  EXPECT_GE(bank7, 1);
}

TEST(Cbt, ChangedChunksDetectsExpansion) {
  Cbt before(0);
  Cbt after(0);
  after.rebuild({{0, 16}, {5, 16}});
  const auto changed = after.changed_chunks(before);
  EXPECT_EQ(changed.size(), 128u);
  for (int c : changed) {
    EXPECT_EQ(after.bank_for_chunk(c), 5);
    EXPECT_EQ(before.bank_for_chunk(c), 0);
  }
}

TEST(Cbt, NoChangesWhenRebuiltIdentically) {
  Cbt a(2);
  a.rebuild({{2, 16}, {3, 8}});
  Cbt b = a;
  b.rebuild({{2, 16}, {3, 8}});
  EXPECT_TRUE(b.changed_chunks(a).empty());
}

TEST(Cbt, LookupUsesBitReversedSelector) {
  Cbt cbt(0);
  cbt.rebuild({{0, 1}, {9, 1}});  // Chunks 0-127 -> bank 0, 128-255 -> bank 9.
  // Block with selector byte 0x01 has chunk reverse8(0x01) = 0x80 = 128.
  const BlockAddr block = BlockAddr{0x01} << 9;
  EXPECT_EQ(cbt.lookup(block, 9), 9);
  EXPECT_EQ(cbt.lookup(0, 9), 0);
}

TEST(Cbt, StorageBitsFormula) {
  EXPECT_EQ(Cbt::storage_bits(16), 16u * 4u);
  EXPECT_EQ(Cbt::storage_bits(64), 64u * 6u);
}

TEST(Cbt, RetreatShrinksRangeCount) {
  Cbt cbt(0);
  cbt.rebuild({{0, 16}, {1, 4}, {2, 4}});
  EXPECT_EQ(cbt.range_count(), 3);
  cbt.rebuild({{0, 16}, {2, 4}});
  EXPECT_EQ(cbt.range_count(), 2);
  for (int c = 0; c < mem::kNumChunks; ++c) EXPECT_NE(cbt.bank_for_chunk(c), 1);
}

}  // namespace
}  // namespace delta::core
