#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/cbt.hpp"

namespace delta::core {
namespace {

TEST(Cbt, InitialStateMapsEverythingHome) {
  Cbt cbt(3);
  for (int c = 0; c < mem::kNumChunks; ++c) EXPECT_EQ(cbt.bank_for_chunk(c), 3);
  EXPECT_EQ(cbt.range_count(), 1);
}

TEST(Cbt, ProportionalSplit) {
  Cbt cbt(0);
  cbt.rebuild({{0, 16}, {5, 16}});
  int bank0 = 0, bank5 = 0;
  for (int c = 0; c < mem::kNumChunks; ++c) {
    if (cbt.bank_for_chunk(c) == 0) ++bank0;
    if (cbt.bank_for_chunk(c) == 5) ++bank5;
  }
  EXPECT_EQ(bank0, 128);
  EXPECT_EQ(bank5, 128);
  EXPECT_EQ(cbt.range_count(), 2);
}

TEST(Cbt, ProportionalToWayCounts) {
  Cbt cbt(0);
  cbt.rebuild({{0, 16}, {1, 4}, {2, 12}});  // 32 total: 128/32/96 chunks.
  int counts[3] = {};
  for (int c = 0; c < mem::kNumChunks; ++c) ++counts[cbt.bank_for_chunk(c)];
  EXPECT_EQ(counts[0], 128);
  EXPECT_EQ(counts[1], 32);
  EXPECT_EQ(counts[2], 96);
}

TEST(Cbt, ChunksAlwaysPartitioned) {
  // Invariant: every chunk maps to exactly one bank after any rebuild.
  Cbt cbt(0);
  cbt.rebuild({{0, 7}, {3, 5}, {9, 3}, {12, 1}});
  int mapped = 0;
  for (int c = 0; c < mem::kNumChunks; ++c)
    if (cbt.bank_for_chunk(c) != kInvalidBank) ++mapped;
  EXPECT_EQ(mapped, mem::kNumChunks);
  // Ranges are contiguous and non-overlapping.
  int cursor = 0;
  for (const auto& r : cbt.ranges()) {
    EXPECT_EQ(r.first_chunk, cursor);
    EXPECT_GE(r.last_chunk, r.first_chunk);
    cursor = r.last_chunk + 1;
  }
  EXPECT_EQ(cursor, mem::kNumChunks);
}

TEST(Cbt, EveryBankWithWaysGetsAtLeastOneChunk) {
  Cbt cbt(0);
  // 1 way out of 200: naive rounding would starve bank 7.
  cbt.rebuild({{0, 199}, {7, 1}});
  int bank7 = 0;
  for (int c = 0; c < mem::kNumChunks; ++c)
    if (cbt.bank_for_chunk(c) == 7) ++bank7;
  EXPECT_GE(bank7, 1);
}

TEST(Cbt, ChangedChunksDetectsExpansion) {
  Cbt before(0);
  Cbt after(0);
  after.rebuild({{0, 16}, {5, 16}});
  const auto changed = after.changed_chunks(before);
  EXPECT_EQ(changed.size(), 128u);
  for (int c : changed) {
    EXPECT_EQ(after.bank_for_chunk(c), 5);
    EXPECT_EQ(before.bank_for_chunk(c), 0);
  }
}

TEST(Cbt, NoChangesWhenRebuiltIdentically) {
  Cbt a(2);
  a.rebuild({{2, 16}, {3, 8}});
  Cbt b = a;
  b.rebuild({{2, 16}, {3, 8}});
  EXPECT_TRUE(b.changed_chunks(a).empty());
}

TEST(Cbt, LookupUsesBitReversedSelector) {
  Cbt cbt(0);
  cbt.rebuild({{0, 1}, {9, 1}});  // Chunks 0-127 -> bank 0, 128-255 -> bank 9.
  // Block with selector byte 0x01 has chunk reverse8(0x01) = 0x80 = 128.
  const BlockAddr block = BlockAddr{0x01} << 9;
  EXPECT_EQ(cbt.lookup(block, 9), 9);
  EXPECT_EQ(cbt.lookup(0, 9), 0);
}

TEST(Cbt, StorageBitsFormula) {
  EXPECT_EQ(Cbt::storage_bits(16), 16u * 4u);
  EXPECT_EQ(Cbt::storage_bits(64), 64u * 6u);
}

TEST(Cbt, RetreatShrinksRangeCount) {
  Cbt cbt(0);
  cbt.rebuild({{0, 16}, {1, 4}, {2, 4}});
  EXPECT_EQ(cbt.range_count(), 3);
  cbt.rebuild({{0, 16}, {2, 4}});
  EXPECT_EQ(cbt.range_count(), 2);
  for (int c = 0; c < mem::kNumChunks; ++c) EXPECT_NE(cbt.bank_for_chunk(c), 1);
}

// --- Edge cases: single-way allocations, retreat-then-regrow remap
// sequences, and bit-reversed coverage at the 8-bit selector boundary.

int chunks_of(const Cbt& cbt, BankId bank) {
  int n = 0;
  for (int c = 0; c < mem::kNumChunks; ++c)
    if (cbt.bank_for_chunk(c) == bank) ++n;
  return n;
}

TEST(CbtEdge, AllSingleWayAllocationsSplitEvenly) {
  // 16 banks with one way each: every bank gets exactly 256/16 chunks and
  // the range list has exactly one contiguous range per bank.
  Cbt cbt(0);
  std::vector<std::pair<BankId, int>> alloc;
  for (BankId b = 0; b < 16; ++b) alloc.push_back({b, 1});
  cbt.rebuild(alloc);
  for (BankId b = 0; b < 16; ++b) EXPECT_EQ(chunks_of(cbt, b), 16) << b;
  EXPECT_EQ(cbt.range_count(), 16);
}

TEST(CbtEdge, SingleWayGuestAmongLargeHome) {
  // One-way guests must survive largest-remainder rounding even when the
  // home allocation dwarfs them (the starvation fix).
  Cbt cbt(2);
  cbt.rebuild({{2, 61}, {7, 1}, {11, 1}, {14, 1}});
  EXPECT_GE(chunks_of(cbt, 7), 1);
  EXPECT_GE(chunks_of(cbt, 11), 1);
  EXPECT_GE(chunks_of(cbt, 14), 1);
  EXPECT_EQ(chunks_of(cbt, 2) + chunks_of(cbt, 7) + chunks_of(cbt, 11) +
                chunks_of(cbt, 14),
            mem::kNumChunks);
}

TEST(CbtEdge, MinimalAllocationIsOneRangeCoveringEverything) {
  Cbt cbt(5);
  cbt.rebuild({{5, 1}});  // A single way in the home bank.
  EXPECT_EQ(cbt.range_count(), 1);
  EXPECT_EQ(chunks_of(cbt, 5), mem::kNumChunks);
}

TEST(CbtEdge, RetreatThenRegrowRemapSequence) {
  // Grow into bank 9, retreat from it, then regrow: each step's
  // changed_chunks must be exactly the chunks whose mapping moved, and the
  // retreat must surrender every chunk bank 9 held (so the controller's
  // bulk invalidation covers all stale lines).
  Cbt cbt(0);
  cbt.rebuild({{0, 16}, {9, 8}});
  Cbt grown = cbt;
  const int guest_chunks = chunks_of(cbt, 9);
  ASSERT_GT(guest_chunks, 0);

  Cbt retreated = cbt;
  retreated.rebuild({{0, 16}});
  const auto lost = retreated.changed_chunks(cbt);
  EXPECT_EQ(static_cast<int>(lost.size()), guest_chunks);
  for (int c : lost) {
    EXPECT_EQ(cbt.bank_for_chunk(c), 9);
    EXPECT_EQ(retreated.bank_for_chunk(c), 0);
  }

  Cbt regrown = retreated;
  regrown.rebuild({{0, 16}, {9, 8}});
  // Deterministic rebuild: regrowing the identical allocation restores the
  // identical map, and the diff vs the retreated state is again the guest's
  // chunk set.
  EXPECT_TRUE(regrown.changed_chunks(grown).empty());
  EXPECT_EQ(regrown.changed_chunks(retreated).size(), lost.size());
}

TEST(CbtEdge, ChangedChunksUnionCoversBothDirections) {
  // No chunk may silently change hands: a chunk differing between two
  // tables appears in changed_chunks regardless of direction.
  Cbt a(0), b(0);
  a.rebuild({{0, 8}, {3, 8}});
  b.rebuild({{0, 4}, {3, 4}, {6, 8}});
  const auto a_to_b = b.changed_chunks(a);
  std::set<int> moved(a_to_b.begin(), a_to_b.end());
  for (int c = 0; c < mem::kNumChunks; ++c) {
    const bool differs = a.bank_for_chunk(c) != b.bank_for_chunk(c);
    EXPECT_EQ(moved.count(c) == 1, differs) << "chunk " << c;
  }
  // Symmetric cardinality: the same chunk set moves in either direction.
  EXPECT_EQ(a.changed_chunks(b).size(), a_to_b.size());
}

TEST(CbtEdge, BitReversedCoverageAtEightBitBoundary) {
  // Walking the 256 consecutive selector-byte values must touch all 256
  // chunks exactly once (reverse8 is a bijection), for any sets_log2.
  for (int sets_log2 : {9, 11}) {
    std::set<int> seen;
    for (BlockAddr sel = 0; sel < 256; ++sel)
      seen.insert(mem::chunk_of(sel << sets_log2, sets_log2));
    EXPECT_EQ(seen.size(), 256u) << "sets_log2 " << sets_log2;
  }
}

TEST(CbtEdge, ChunkIgnoresBitsAboveSelectorByte) {
  // Bits above sets_log2 + 8 must not influence the chunk: addresses that
  // alias in the selector byte land in the same CBT range.
  const int sets_log2 = 9;
  for (BlockAddr sel : {BlockAddr{0}, BlockAddr{1}, BlockAddr{0x80}, BlockAddr{0xFF}}) {
    const int base = mem::chunk_of(sel << sets_log2, sets_log2);
    for (int high = 1; high <= 4; ++high) {
      const BlockAddr aliased =
          (sel << sets_log2) | (BlockAddr{static_cast<std::uint64_t>(high)} << (sets_log2 + 8));
      EXPECT_EQ(mem::chunk_of(aliased, sets_log2), base);
    }
  }
}

TEST(CbtEdge, StraightIndexingContiguousRunsSplitAcrossRanges) {
  // Ablation knob: without bit reversal a contiguous 128-chunk run maps to
  // one range; with reversal the same physical run alternates between the
  // two halves — consecutive selector values flip the reversed MSB.
  Cbt rev(0, /*reverse_bits=*/true);
  Cbt straight(0, /*reverse_bits=*/false);
  rev.rebuild({{0, 8}, {9, 8}});
  straight.rebuild({{0, 8}, {9, 8}});
  const int sets_log2 = 9;
  int rev_flips = 0, straight_flips = 0;
  BankId prev_rev = rev.lookup(0, sets_log2);
  BankId prev_str = straight.lookup(0, sets_log2);
  for (BlockAddr sel = 1; sel < 256; ++sel) {
    const BankId r = rev.lookup(sel << sets_log2, sets_log2);
    const BankId s = straight.lookup(sel << sets_log2, sets_log2);
    rev_flips += (r != prev_rev);
    straight_flips += (s != prev_str);
    prev_rev = r;
    prev_str = s;
  }
  EXPECT_EQ(straight_flips, 1);    // One boundary crossing at chunk 128.
  EXPECT_EQ(rev_flips, 255);       // Reversed MSB = selector LSB: alternates.
}

}  // namespace
}  // namespace delta::core
