#include <gtest/gtest.h>

#include "umon/miss_curve.hpp"

namespace delta::umon {
namespace {

TEST(MissCurve, AtClampsOutOfRange) {
  MissCurve c({10.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(c.at(-3), 10.0);
  EXPECT_DOUBLE_EQ(c.at(0), 10.0);
  EXPECT_DOUBLE_EQ(c.at(2), 2.0);
  EXPECT_DOUBLE_EQ(c.at(99), 2.0);
  EXPECT_EQ(c.max_ways(), 2);
}

TEST(MissCurve, SavedAndMarginalUtility) {
  MissCurve c({10.0, 6.0, 5.0, 1.0});
  EXPECT_DOUBLE_EQ(c.saved(0, 3), 9.0);
  EXPECT_DOUBLE_EQ(c.marginal_utility(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.marginal_utility(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(c.marginal_utility(2, 3), 4.0);
}

TEST(MissCurve, MakeMonotoneFixesJitter) {
  MissCurve c({10.0, 8.0, 9.0, 7.0});
  c.make_monotone();
  EXPECT_DOUBLE_EQ(c.at(2), 8.0);
  EXPECT_DOUBLE_EQ(c.at(3), 7.0);
}

TEST(MissCurve, FlatFactory) {
  const MissCurve c = MissCurve::flat(4, 3.0);
  EXPECT_EQ(c.max_ways(), 4);
  for (int w = 0; w <= 4; ++w) EXPECT_DOUBLE_EQ(c.at(w), 3.0);
}

TEST(MissCurve, ConvexHullOfConvexCurveKeepsAllPoints) {
  // Strictly convex decreasing curve: every point is a hull vertex.
  MissCurve c({16.0, 9.0, 4.0, 1.0, 0.0});
  const auto hull = c.convex_hull_points();
  EXPECT_EQ(hull.size(), 5u);
}

TEST(MissCurve, ConvexHullSkipsCliffPlateau) {
  // Step curve: plateau points before the cliff are not hull vertices.
  MissCurve c({10.0, 10.0, 10.0, 10.0, 0.0, 0.0});
  const auto hull = c.convex_hull_points();
  ASSERT_GE(hull.size(), 2u);
  EXPECT_EQ(hull.front(), 0);
  // The interior plateau (1..3) must be bypassed.
  for (int p : hull) EXPECT_TRUE(p == 0 || p >= 4);
}

}  // namespace
}  // namespace delta::umon
