#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "umon/miss_curve.hpp"
#include "umon/umon.hpp"

namespace delta::umon {
namespace {

TEST(MissCurve, AtClampsOutOfRange) {
  MissCurve c({10.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(c.at(-3), 10.0);
  EXPECT_DOUBLE_EQ(c.at(0), 10.0);
  EXPECT_DOUBLE_EQ(c.at(2), 2.0);
  EXPECT_DOUBLE_EQ(c.at(99), 2.0);
  EXPECT_EQ(c.max_ways(), 2);
}

TEST(MissCurve, SavedAndMarginalUtility) {
  MissCurve c({10.0, 6.0, 5.0, 1.0});
  EXPECT_DOUBLE_EQ(c.saved(0, 3), 9.0);
  EXPECT_DOUBLE_EQ(c.marginal_utility(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.marginal_utility(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(c.marginal_utility(2, 3), 4.0);
}

TEST(MissCurve, MakeMonotoneFixesJitter) {
  MissCurve c({10.0, 8.0, 9.0, 7.0});
  c.make_monotone();
  EXPECT_DOUBLE_EQ(c.at(2), 8.0);
  EXPECT_DOUBLE_EQ(c.at(3), 7.0);
}

TEST(MissCurve, FlatFactory) {
  const MissCurve c = MissCurve::flat(4, 3.0);
  EXPECT_EQ(c.max_ways(), 4);
  for (int w = 0; w <= 4; ++w) EXPECT_DOUBLE_EQ(c.at(w), 3.0);
}

TEST(MissCurve, ConvexHullOfConvexCurveKeepsAllPoints) {
  // Strictly convex decreasing curve: every point is a hull vertex.
  MissCurve c({16.0, 9.0, 4.0, 1.0, 0.0});
  const auto hull = c.convex_hull_points();
  EXPECT_EQ(hull.size(), 5u);
}

TEST(MissCurve, ConvexHullSkipsCliffPlateau) {
  // Step curve: plateau points before the cliff are not hull vertices.
  MissCurve c({10.0, 10.0, 10.0, 10.0, 0.0, 0.0});
  const auto hull = c.convex_hull_points();
  ASSERT_GE(hull.size(), 2u);
  EXPECT_EQ(hull.front(), 0);
  // The interior plateau (1..3) must be bypassed.
  for (int p : hull) EXPECT_TRUE(p == 0 || p >= 4);
}

// --- Property tests: curves produced by a real Umon under randomized access
// streams.  An LRU stack-distance profile always yields monotone
// non-increasing miss curves; these pin that for both granularities.

Umon random_stream_umon(std::uint64_t seed) {
  Rng rng(seed);
  UmonConfig cfg;
  cfg.max_ways = 32 + static_cast<int>(rng.below(5)) * 16;  // 32..96
  cfg.set_dilution = 1 + static_cast<int>(rng.below(4));
  Umon u(cfg);
  // Mix of uniform-random and looping phases over footprints of varying size.
  const std::uint64_t accesses = 20'000 + rng.below(30'000);
  const BlockAddr footprint = (1 + rng.below(64)) * 1024;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const BlockAddr b = rng.chance(0.5) ? rng.below(footprint)
                                        : (i % footprint);
    u.access(b);
  }
  return u;
}

void expect_monotone_non_increasing(const MissCurve& c) {
  for (int w = 1; w <= c.max_ways(); ++w)
    ASSERT_LE(c.at(w), c.at(w - 1) + 1e-9) << "ways " << w;
}

TEST(MissCurveProperty, FineCurveMonotoneOverRandomStreams) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Umon u = random_stream_umon(seed);
    const MissCurve c = u.miss_curve();
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_monotone_non_increasing(c);
    // Endpoint identities: misses(0) = all accesses, misses(max) = cold
    // misses only.
    EXPECT_NEAR(c.at(0), u.accesses(), 1e-6);
    EXPECT_NEAR(c.at(c.max_ways()), u.misses_at_max(), 1e-6);
  }
}

TEST(MissCurveProperty, CoarseCurveMonotoneOverRandomStreams) {
  for (std::uint64_t seed = 20; seed <= 28; ++seed) {
    const Umon u = random_stream_umon(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_monotone_non_increasing(u.coarse_miss_curve());
  }
}

TEST(MissCurveProperty, CoarseMatchesFineAtBucketBoundaries) {
  const Umon u = random_stream_umon(99);
  const MissCurve fine = u.miss_curve();
  const MissCurve coarse = u.coarse_miss_curve();
  const int bucket = u.config().coarse_ways;
  for (int w = 0; w <= u.max_ways(); w += bucket)
    EXPECT_NEAR(coarse.at(w), fine.at(w), 1e-6) << "ways " << w;
}

TEST(MissCurveProperty, MonotonicitySurvivesDecay) {
  Umon u = random_stream_umon(7);
  u.decay(0.5);
  expect_monotone_non_increasing(u.miss_curve());
  expect_monotone_non_increasing(u.coarse_miss_curve());
}

TEST(MissCurveProperty, SavedIsNonNegativeForGrowth) {
  const Umon u = random_stream_umon(3);
  const MissCurve c = u.miss_curve();
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const int from = static_cast<int>(rng.below(static_cast<std::uint64_t>(c.max_ways())));
    const int to = from + 1 +
                   static_cast<int>(rng.below(static_cast<std::uint64_t>(c.max_ways() - from)));
    ASSERT_GE(c.saved(from, to), -1e-9) << from << "->" << to;
    ASSERT_GE(c.marginal_utility(from, to), -1e-9);
  }
}

}  // namespace
}  // namespace delta::umon
