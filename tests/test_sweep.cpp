// Parallel-sweep determinism and SoA-cache equivalence.
//
// Two guarantees this file pins down:
//   * run_sweep / compare_schemes_sweep produce byte-identical results for
//     any job count — parallelism only changes the wall-clock (the whole
//     point of pre-sized result slots + per-run Chip isolation);
//   * the structure-of-arrays SetAssocCache makes exactly the decisions of
//     the pre-rewrite array-of-structs engine (bench/legacy_cache.hpp is
//     the frozen oracle) on randomized traces exercising way masks,
//     eviction preferences, touches and invalidations.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "legacy_cache.hpp"
#include "mem/cache.hpp"
#include "mem/replacement.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace delta {
namespace {

sim::MachineConfig quick16() {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 10;
  cfg.measure_epochs = 30;
  return cfg;
}

std::string summary_of(const std::vector<sim::SchemeComparison>& comps) {
  std::vector<sim::MixResult> flat;
  for (const auto& c : comps) {
    flat.push_back(c.snuca);
    flat.push_back(c.private_llc);
    flat.push_back(c.ideal);
    flat.push_back(c.delta);
  }
  return sim::json_summary(flat);
}

TEST(Sweep, ParallelJobsBitIdenticalToSerial) {
  const sim::MachineConfig cfg = quick16();
  const std::vector<workload::Mix> mixes = {sim::mix_for_config(cfg, "w2"),
                                            sim::mix_for_config(cfg, "w6")};
  const auto serial = sim::compare_schemes_sweep(cfg, mixes, 1);
  const auto parallel = sim::compare_schemes_sweep(cfg, mixes, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  // Byte-level comparison via the full JSON summary: every per-app metric,
  // traffic counter and control-message count must match exactly.
  EXPECT_EQ(summary_of(serial), summary_of(parallel));
}

TEST(Sweep, RunSweepMatchesRunMixInJobOrder) {
  const sim::MachineConfig cfg = quick16();
  const workload::Mix mix = sim::mix_for_config(cfg, "w3");
  std::vector<sim::SweepJob> jobs;
  for (auto kind : {sim::SchemeKind::kDelta, sim::SchemeKind::kSnuca})
    jobs.push_back({cfg, mix, kind, {}});
  const std::vector<sim::MixResult> swept = sim::run_sweep(jobs, 2);
  ASSERT_EQ(swept.size(), 2u);
  const sim::MixResult direct_delta = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);
  const sim::MixResult direct_snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
  EXPECT_EQ(sim::json_summary({&swept[0], 1}), sim::json_summary({&direct_delta, 1}));
  EXPECT_EQ(sim::json_summary({&swept[1], 1}), sim::json_summary({&direct_snuca, 1}));
}

TEST(Sweep, EmptyAndSingleJobEdgeCases) {
  EXPECT_TRUE(sim::run_sweep({}, 4).empty());
  const sim::MachineConfig cfg = quick16();
  const workload::Mix mix = sim::mix_for_config(cfg, "w1");
  const auto one = sim::run_sweep({{cfg, mix, sim::SchemeKind::kPrivate, {}}}, 8);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_GT(one[0].geomean_ipc, 0.0);
}

// ---------------------------------------------------------------------------
// SoA cache vs the frozen pre-rewrite oracle.
// ---------------------------------------------------------------------------

/// Replays a randomized trace against both engines, asserting identical
/// per-access decisions.  `footprint_ways` scales the working set relative
/// to capacity; `masked` mixes in partial insertion masks and eviction
/// preferences like the partitioned schemes do.
void replay_and_compare(std::uint64_t seed, int footprint_ways, bool masked) {
  constexpr std::uint32_t kSets = 64;
  constexpr int kWays = 8;
  mem::SetAssocCache soa(kSets, kWays);
  bench::legacy::SetAssocCache aos(kSets, kWays);
  Rng rng(seed);
  for (int i = 0; i < 200'000; ++i) {
    const BlockAddr block =
        rng.below(std::uint64_t{kSets} * static_cast<std::uint64_t>(footprint_ways));
    const std::uint32_t set = static_cast<std::uint32_t>(block) & (kSets - 1);
    const CoreId owner = static_cast<CoreId>(rng.below(4));
    mem::WayMask mask = mem::full_mask(kWays);
    CoreId pref = kInvalidCore;
    if (masked) {
      // Random (sometimes empty -> bypass) mask; occasional victim owner.
      mask = static_cast<mem::WayMask>(rng.below(1u << kWays));
      if (rng.below(4) == 0) pref = static_cast<CoreId>(rng.below(4));
    }
    const std::uint64_t op = rng.below(16);
    if (op == 14) {
      EXPECT_EQ(soa.touch(set, block), aos.touch(set, block));
      continue;
    }
    if (op == 15) {
      EXPECT_EQ(soa.invalidate(set, block), aos.invalidate(set, block));
      continue;
    }
    const mem::AccessResult a = soa.access(set, block, owner, mask, pref);
    const mem::AccessResult b = aos.access(set, block, owner, mask, pref);
    ASSERT_EQ(a.hit, b.hit) << "access " << i;
    ASSERT_EQ(a.way, b.way) << "access " << i;
    ASSERT_EQ(a.evicted, b.evicted) << "access " << i;
    if (a.evicted) {
      ASSERT_EQ(a.victim_block, b.victim_block) << "access " << i;
      ASSERT_EQ(a.victim_owner, b.victim_owner) << "access " << i;
    }
  }
  EXPECT_EQ(soa.stats().hits, aos.hits());
  EXPECT_EQ(soa.stats().misses, aos.misses());
}

TEST(CacheEquivalence, HitHeavyFullMask) { replay_and_compare(1, 6, false); }
TEST(CacheEquivalence, ThrashingFullMask) { replay_and_compare(2, 16, false); }
TEST(CacheEquivalence, MaskedAndPreferredVictims) { replay_and_compare(3, 12, true); }
TEST(CacheEquivalence, MaskedHitHeavy) { replay_and_compare(4, 5, true); }

}  // namespace
}  // namespace delta
