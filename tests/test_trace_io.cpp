#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/generator.hpp"
#include "workload/spec.hpp"
#include "workload/trace_io.hpp"

namespace delta::workload {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTrip) {
  const std::string path = temp_path("roundtrip.dlt");
  {
    TraceWriter w(path);
    for (BlockAddr b = 100; b < 200; ++b) w.append(b);
    EXPECT_EQ(w.written(), 100u);
  }
  TraceReader r(path);
  EXPECT_EQ(r.size(), 100u);
  for (BlockAddr b = 100; b < 200; ++b) EXPECT_EQ(r.next(), b);
  std::remove(path.c_str());
}

TEST(TraceIo, WrapsAround) {
  const std::string path = temp_path("wrap.dlt");
  {
    TraceWriter w(path);
    w.append(7);
    w.append(8);
  }
  TraceReader r(path);
  EXPECT_EQ(r.next(), 7u);
  EXPECT_EQ(r.next(), 8u);
  EXPECT_EQ(r.next(), 7u);
  EXPECT_EQ(r.delivered(), 3u);
  std::remove(path.c_str());
}

TEST(TraceIo, RecordGeneratorStream) {
  const std::string path = temp_path("gen.dlt");
  const AppProfile& p = spec_profile("hm");
  TraceGen gen(p, 0, 42);
  record_trace(path, [&] { return gen.next(); }, 5000);

  TraceGen gen2(p, 0, 42);
  TraceReader r(path);
  ASSERT_EQ(r.size(), 5000u);
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(r.next(), gen2.next());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(TraceReader(temp_path("nonexistent.dlt")), std::runtime_error);
}

TEST(TraceIo, RejectsCorruptHeader) {
  const std::string path = temp_path("corrupt.dlt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("NOTATRACE_______", 16, 1, f);
  std::uint64_t x = 1;
  std::fwrite(&x, sizeof x, 1, f);
  std::fclose(f);
  EXPECT_THROW(TraceReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsEmptyTrace) {
  const std::string path = temp_path("empty.dlt");
  { TraceWriter w(path); }
  EXPECT_THROW(TraceReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace delta::workload
