#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/hierarchy.hpp"

namespace delta::mem {
namespace {

TEST(Hierarchy, ColdMissGoesToLlc) {
  PrivateHierarchy h;
  EXPECT_TRUE(h.access(42));
  EXPECT_TRUE(h.in_l1(42));
  EXPECT_TRUE(h.in_l2(42));
}

TEST(Hierarchy, RepeatHitsInL1) {
  PrivateHierarchy h;
  h.access(42);
  EXPECT_FALSE(h.access(42));
  EXPECT_EQ(h.stats().l1_hits, 1u);
  EXPECT_EQ(h.stats().l2_misses, 1u);
}

TEST(Hierarchy, L1VictimStillHitsL2) {
  // Walk 9 blocks of one L1 set (64-set stride): the first falls out of
  // the 8-way L1 but stays in the bigger L2.
  PrivateHierarchy h;
  for (BlockAddr i = 0; i < 9; ++i) h.access(i * 64);
  EXPECT_FALSE(h.in_l1(0));
  EXPECT_TRUE(h.in_l2(0));
  EXPECT_FALSE(h.access(0));  // L2 hit, no LLC traffic.
  EXPECT_EQ(h.stats().l2_hits, 1u);
}

TEST(Hierarchy, L2InclusionKillsL1Copy) {
  // Overflow one L2 set (256-block stride): the L2 victim's L1 copy must
  // be back-invalidated by inclusivity.
  PrivateHierarchy h;
  for (BlockAddr i = 0; i < 9; ++i) h.access(i * 256);
  EXPECT_FALSE(h.in_l2(0));
  EXPECT_FALSE(h.in_l1(0)) << "inclusive L2 eviction left a stale L1 copy";
}

TEST(Hierarchy, WorkingSetFitsL2) {
  PrivateHierarchy h;
  Rng rng(3);
  const BlockAddr lines = lines_in(96 * kKiB);
  for (int i = 0; i < 60'000; ++i) h.access(rng.below(lines));
  h.reset_stats();
  for (int i = 0; i < 60'000; ++i) h.access(rng.below(lines));
  EXPECT_LT(h.stats().l2_miss_ratio(), 0.02);
  EXPECT_GT(h.stats().l1_hit_rate(), 0.2);
}

TEST(Hierarchy, WorkingSetBeyondL2Misses) {
  PrivateHierarchy h;
  Rng rng(4);
  const BlockAddr lines = lines_in(1 * kMiB);
  for (int i = 0; i < 60'000; ++i) h.access(rng.below(lines));
  h.reset_stats();
  for (int i = 0; i < 60'000; ++i) h.access(rng.below(lines));
  EXPECT_GT(h.stats().l2_miss_ratio(), 0.5);
}

TEST(Hierarchy, BackInvalidateRemovesBothLevels) {
  PrivateHierarchy h;
  h.access(7);
  EXPECT_EQ(h.back_invalidate(7), 2);
  EXPECT_FALSE(h.in_l1(7));
  EXPECT_FALSE(h.in_l2(7));
  EXPECT_EQ(h.back_invalidate(7), 0);
  EXPECT_EQ(h.stats().back_invalidations, 1u);
}

// The paper's minWays rationale (Sec. III-A): an inclusive LLC allocation
// at least as large as L2 produces no back-invalidations for an L2-resident
// working set; a smaller LLC share thrashes the private hierarchy.
TEST(Hierarchy, HomeFloorRationale) {
  const BlockAddr ws_lines = lines_in(96 * kKiB);  // Fits the 128 KB L2.
  Rng rng(5);

  auto run_with_llc_ways = [&](int llc_ways) {
    PrivateHierarchy h;
    SetAssocCache llc(512, 16);
    const WayMask mask = full_mask(llc_ways);
    std::uint64_t backinv = 0;
    Rng r(5);
    for (int i = 0; i < 120'000; ++i) {
      const BlockAddr b = r.below(ws_lines);
      if (!h.access(b)) continue;
      const auto res = llc.access(static_cast<std::uint32_t>(b & 511), b, 0, mask);
      if (res.evicted) backinv += h.back_invalidate(res.victim_block) > 0 ? 1 : 0;
    }
    return backinv;
  };

  const std::uint64_t with_floor = run_with_llc_ways(4);   // 128 KB = L2 size.
  const std::uint64_t below_floor = run_with_llc_ways(2);  // 64 KB < L2.
  EXPECT_GT(below_floor, 20 * std::max<std::uint64_t>(1, with_floor))
      << "an LLC allocation below the 128 KB floor must thrash the L2";
  (void)rng;
}

}  // namespace
}  // namespace delta::mem
