// Cross-scheme property tests: invariants that must hold for every
// partitioning scheme while a real workload runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include <cmath>

#include "alloc/auction.hpp"
#include "alloc/fairshare.hpp"
#include "common/rng.hpp"
#include "core/pain_gain.hpp"
#include "core/way_partition.hpp"
#include "mem/address.hpp"
#include "noc/traffic.hpp"
#include "sim/chip.hpp"
#include "sim/runner.hpp"
#include "umon/umon.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"

namespace delta::sim {
namespace {

MachineConfig tiny() {
  MachineConfig c = config16();
  c.warmup_epochs = 10;
  c.measure_epochs = 40;
  return c;
}

std::vector<std::string> apps16() {
  return {"mc", "po", "xa", "na", "ze", "hm", "ga", "gr",
          "li", "de", "om", "bw", "so", "ca", "pe", "Ge"};
}

class EveryScheme : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(EveryScheme, MapAlwaysReturnsValidBankAndSet) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(GetParam()));
  chip.run_epochs(30, false);
  Rng rng(3);
  for (int c = 0; c < 16; ++c) {
    for (int i = 0; i < 2000; ++i) {
      const BlockAddr b = rng();
      const BankTarget t = chip.scheme().map(chip, c, b);
      ASSERT_GE(t.bank, 0);
      ASSERT_LT(t.bank, 16);
      ASSERT_LT(t.set, static_cast<std::uint32_t>(cfg.sets_per_bank()));
    }
  }
}

TEST_P(EveryScheme, InsertMasksOfDistinctCoresAreDisjointUnderPartitioning) {
  // Holds for the per-core partitioned schemes; S-NUCA deliberately shares
  // all ways and LFOC shares a slice per cluster (its sharing discipline is
  // pinned by LfocSchemeProps below).
  if (GetParam() == SchemeKind::kSnuca || GetParam() == SchemeKind::kLfoc)
    GTEST_SKIP();
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(GetParam()));
  chip.run_epochs(35, false);
  for (int bank = 0; bank < 16; ++bank) {
    mem::WayMask seen = 0;
    for (int c = 0; c < 16; ++c) {
      if (GetParam() == SchemeKind::kPrivate && c != bank) continue;
      const mem::WayMask m = chip.scheme().insert_mask(chip, c, bank);
      EXPECT_EQ(seen & m, 0u) << "bank " << bank << " core " << c;
      seen |= m;
    }
  }
}

TEST_P(EveryScheme, AllocatedWaysStayWithinChipCapacity) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(GetParam()));
  for (int step = 0; step < 6; ++step) {
    chip.run_epochs(10, false);
    int total = 0;
    for (int c = 0; c < 16; ++c) {
      const int w = chip.scheme().allocated_ways(chip, c);
      EXPECT_GE(w, 0);
      total += w;
    }
    // Shared-capacity schemes (snuca, lfoc) report nominal per-bank shares
    // whose per-core sum exceeds the chip; only exclusive partitions bound it.
    if (GetParam() != SchemeKind::kSnuca && GetParam() != SchemeKind::kLfoc) {
      EXPECT_LE(total, 16 * 16);
    }
  }
}

TEST_P(EveryScheme, RunsAreDeterministic) {
  MachineConfig cfg = tiny();
  Chip a(cfg, apps16(), make_scheme(GetParam()));
  Chip b(cfg, apps16(), make_scheme(GetParam()));
  const MixResult ra = a.run("d");
  const MixResult rb = b.run("d");
  for (std::size_t i = 0; i < ra.apps.size(); ++i) {
    ASSERT_DOUBLE_EQ(ra.apps[i].ipc, rb.apps[i].ipc) << i;
    ASSERT_EQ(ra.apps[i].llc_misses, rb.apps[i].llc_misses) << i;
  }
}

TEST_P(EveryScheme, WorkloadStreamsIdenticalAcrossSchemes) {
  // Scheme choice must not perturb what the applications *access* per
  // epoch budget formulae inputs (same profiles, same seeds).  We verify
  // by checking that the warmup-epoch UMON access totals are in the same
  // ballpark across schemes (rates differ only through measured IPC).
  MachineConfig cfg = tiny();
  Chip x(cfg, apps16(), make_scheme(GetParam()));
  Chip y(cfg, apps16(), make_scheme(SchemeKind::kSnuca));
  x.run_epochs(5, false);
  y.run_epochs(5, false);
  for (int c = 0; c < 16; ++c) {
    const double ax = x.slot(c).umon->accesses();
    const double ay = y.slot(c).umon->accesses();
    if (ay > 0) {
      EXPECT_NEAR(ax / ay, 1.0, 0.5) << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, EveryScheme,
                         ::testing::ValuesIn(kAllSchemeKinds),
                         [](const auto& inf) {
                           std::string s(to_string(inf.param));
                           for (auto& ch : s)
                             if (ch == '-') ch = '_';
                           return s;
                         });

// ---------------------------------------------------------------------------
// CARMA: auction-cleared per-core partitions enforced with WP/CBT state.
// ---------------------------------------------------------------------------

TEST(CarmaSchemeProps, WaysConservedAndHomeFloorHeld) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(SchemeKind::kCarma));
  for (int step = 0; step < 6; ++step) {
    chip.run_epochs(10, false);
    for (int bank = 0; bank < 16; ++bank) {
      const core::WpUnit* wp = chip.scheme().wp_unit(bank);
      ASSERT_NE(wp, nullptr);
      // Way conservation: every way has exactly one owner, all 16 accounted.
      int owned = 0;
      mem::WayMask all = 0;
      for (int c = 0; c < 16; ++c) {
        owned += wp->ways_of(c);
        all |= chip.scheme().insert_mask(chip, c, bank);
      }
      EXPECT_EQ(owned, 16) << "bank " << bank;
      EXPECT_EQ(all, mem::full_mask(16)) << "bank " << bank << " has orphan ways";
      // Home floor: the bank's home core keeps its reserved minimum.
      EXPECT_GE(wp->ways_of(bank), cfg.delta.min_ways) << "bank " << bank;
    }
  }
}

TEST(CarmaSchemeProps, AuctionNeverOverspendsBudgets) {
  // Property fuzz over the allocator itself: whatever the curves look like,
  // spent[i] <= budgets[i], the floor/cap are honoured, and no more ways
  // are sold than exist.
  Rng rng(0xCA12A);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(15));
    alloc::AuctionRequest req;
    req.total_ways = n * 16;
    req.min_ways = 1 + static_cast<int>(rng.below(4));
    req.max_ways = rng.chance(0.3) ? 0 : 16 + static_cast<int>(rng.below(48));
    req.lot_ways = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < n; ++i) {
      std::vector<double> misses(17);
      double m = 1000.0 + static_cast<double>(rng.below(9000));
      for (auto& v : misses) {
        v = m;
        m -= static_cast<double>(rng.below(120));
        if (m < 0.0) m = 0.0;
      }
      req.curves.emplace_back(std::move(misses));
      req.budgets.push_back(static_cast<double>(rng.below(200)));
    }
    const alloc::AuctionResult res = alloc::clear_auction(req);
    int sold = 0;
    for (int i = 0; i < n; ++i) {
      EXPECT_LE(res.spent[static_cast<std::size_t>(i)],
                req.budgets[static_cast<std::size_t>(i)] + 1e-12)
          << "trial " << trial << " app " << i;
      EXPECT_GE(res.ways[static_cast<std::size_t>(i)], req.min_ways);
      if (req.max_ways > 0) {
        EXPECT_LE(res.ways[static_cast<std::size_t>(i)], req.max_ways);
      }
      sold += res.ways[static_cast<std::size_t>(i)];
    }
    EXPECT_LE(sold, req.total_ways) << "trial " << trial;
    EXPECT_LE(res.rounds, res.bids) << "a lot can only sell to a bidder";

    // The clearing process is deterministic: same request, same result.
    const alloc::AuctionResult again = alloc::clear_auction(req);
    EXPECT_EQ(res.ways, again.ways);
    EXPECT_EQ(res.spent, again.spent);
  }
}

// ---------------------------------------------------------------------------
// LFOC: cluster slices shared within a cluster, partitioned across clusters.
// ---------------------------------------------------------------------------

TEST(LfocSchemeProps, ClusterPartitionsAreDisjointAndExhaustive) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(SchemeKind::kLfoc));
  for (int step = 0; step < 6; ++step) {
    chip.run_epochs(10, false);
    // Slices are identical in every bank; any two cores' masks are either
    // the same slice (same cluster) or disjoint, and together the slices
    // cover the whole bank.
    for (int bank = 0; bank < 16; ++bank) {
      std::vector<mem::WayMask> slices;
      mem::WayMask all = 0;
      for (int c = 0; c < 16; ++c) {
        const mem::WayMask m = chip.scheme().insert_mask(chip, c, bank);
        EXPECT_NE(m, 0u) << "core " << c << " lost its insertion slice";
        all |= m;
        if (std::find(slices.begin(), slices.end(), m) == slices.end())
          slices.push_back(m);
        EXPECT_EQ(m, chip.scheme().insert_mask(chip, c, 0))
            << "slice differs across banks for core " << c;
      }
      for (std::size_t i = 0; i < slices.size(); ++i)
        for (std::size_t j = i + 1; j < slices.size(); ++j)
          EXPECT_EQ(slices[i] & slices[j], 0u)
              << "clusters " << i << "/" << j << " overlap in bank " << bank;
      EXPECT_EQ(all, mem::full_mask(16)) << "bank " << bank << " not covered";
      EXPECT_LE(slices.size(), 3u);
    }
  }
}

TEST(LfocSchemeProps, NeverInvalidatesLines) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(SchemeKind::kLfoc));
  const MixResult r = chip.run("w-lfoc");
  EXPECT_EQ(r.invalidated_lines, 0u);
  EXPECT_EQ(r.traffic.total(noc::MsgType::kInvalidation), 0u);
  EXPECT_GT(r.control.central, 0u);  // It does reconfigure...
  EXPECT_EQ(r.control.market, 0u);   // ...but never through the auction.
}

TEST(DeltaSchemeProps, BankOwnershipAlwaysPartitionsEveryBank) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(SchemeKind::kDelta));
  for (int step = 0; step < 8; ++step) {
    chip.run_epochs(10, false);
    for (int bank = 0; bank < 16; ++bank) {
      mem::WayMask all = 0;
      for (int c = 0; c < 16; ++c) all |= chip.scheme().insert_mask(chip, c, bank);
      EXPECT_EQ(all, mem::full_mask(16)) << "bank " << bank << " has orphan ways";
    }
  }
}

// ---- Flat miss-curve properties (the irregular-access family) ----
//
// A UMON watching a gather/hash-join/graph-walk kernel reports a curve
// with no cliff and almost no slope.  The allocator maths must degrade
// gracefully on such curves: Eq. 1/2 stay finite at every MLP and holding,
// the windowed gain correctly reads ~nothing (so DELTA never chases the
// kernel), and LFOC's clustering sends the application to a non-sensitive
// cluster instead of letting a near-zero CPI delta blow up a ratio.

umon::Umon umon_fed_by(const char* app, std::uint64_t accesses) {
  // The simulator's monitor geometry (umon.hpp defaults): 512-set slices,
  // 192 tracked ways, 1-in-16 set sampling — the same view DELTA's
  // controller allocates from.
  umon::Umon u{umon::UmonConfig{}};
  workload::TraceGen gen(workload::spec_profile(app), /*base_addr=*/0, /*seed=*/17);
  for (std::uint64_t i = 0; i < accesses; ++i) u.access(gen.next());
  return u;
}

TEST(FlatCurveProps, PainGainFiniteAndBelowThresholdOnIrregularKernels) {
  for (const char* app : {"sv", "hj", "bf", "pr", "gw"}) {
    const umon::Umon u = umon_fed_by(app, 400'000);
    // Sweep the risky denominators: tiny and huge MLP, every holding from
    // 4 ways up to the monitor's limit, remote holdings included.
    for (const double mlp : {0.1, 1.0, 4.0, 32.0}) {
      for (int cur = 4; cur <= 192; cur += 31) {
        const core::PainGain pg =
            core::compute_pain_gain(u, cur, cur / 2, 4, 4, mlp);
        ASSERT_TRUE(std::isfinite(pg.raw_gain)) << app << " mlp=" << mlp;
        ASSERT_TRUE(std::isfinite(pg.pain)) << app << " mlp=" << mlp;
        ASSERT_GE(pg.raw_gain, 0.0);
        ASSERT_GE(pg.pain, 0.0);
      }
    }
    // At nominal MLP the windowed gain reads the flat part of the curve as
    // not worth chasing: below the Table II gainThreshold.  The shallow
    // holdings are excluded deliberately — there the irregular traffic
    // dilutes the hot frontier/accumulator rings to deep stack positions,
    // so a small genuine gain exists; past ~2 MB (64 ways) nothing does.
    for (int cur = 72; cur <= 188; cur += 29) {
      const core::PainGain pg = core::compute_pain_gain(u, cur, 0, 4, 4, 2.0);
      EXPECT_LT(pg.raw_gain, 0.5)
          << app << ": flat curve reports a chaseable gain at " << cur << " ways";
    }
  }
}

TEST(FlatCurveProps, LfocClassifiesIrregularKernelsAsNonSensitive) {
  for (const char* app : {"sv", "hj", "bf", "pr", "gw"}) {
    const umon::Umon u = umon_fed_by(app, 400'000);
    const alloc::FairShareConfig fcfg;
    const alloc::CurveClass c = alloc::classify_curve(
        u.miss_curve(), static_cast<double>(u.sampled_accesses()), fcfg);
    EXPECT_NE(c, alloc::CurveClass::kSensitive) << app;
  }
  // The high-pressure kernels land in the thrashing cluster (they keep
  // missing at full capacity), so LFOC isolates rather than feeds them.
  const umon::Umon pr = umon_fed_by("pr", 400'000);
  EXPECT_EQ(alloc::classify_curve(pr.miss_curve(),
                                  static_cast<double>(pr.sampled_accesses()),
                                  alloc::FairShareConfig{}),
            alloc::CurveClass::kThrashing);
}

TEST(FlatCurveProps, ClassifierDegradesGracefullyOnDegenerateCurves) {
  const alloc::FairShareConfig fcfg;
  // A literally flat curve (every capacity misses equally) with modest
  // pressure: streaming cluster, no division blow-up on the zero CPI gap.
  umon::MissCurve flat(std::vector<double>(17, 100.0));
  EXPECT_EQ(alloc::classify_curve(flat, 10'000.0, fcfg),
            alloc::CurveClass::kStreaming);
  // The same shape under heavy pressure is thrashing, not sensitive.
  umon::MissCurve hot(std::vector<double>(17, 9'000.0));
  EXPECT_EQ(alloc::classify_curve(hot, 10'000.0, fcfg),
            alloc::CurveClass::kThrashing);
  // Zero sampling window: defined result (streaming), not NaN propagation.
  EXPECT_EQ(alloc::classify_curve(flat, 0.0, fcfg), alloc::CurveClass::kStreaming);
}

TEST(DeltaSchemeProps, CbtTargetsOnlyBanksWithOwnedWays) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(SchemeKind::kDelta));
  chip.run_epochs(60, false);
  Rng rng(11);
  for (int c = 0; c < 16; ++c) {
    for (int i = 0; i < 500; ++i) {
      const BankTarget t = chip.scheme().map(chip, c, rng());
      EXPECT_NE(chip.scheme().insert_mask(chip, c, t.bank), 0u)
          << "core " << c << " maps to bank " << t.bank << " without ways";
    }
  }
}

}  // namespace
}  // namespace delta::sim
