// Cross-scheme property tests: invariants that must hold for every
// partitioning scheme while a real workload runs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/address.hpp"
#include "sim/chip.hpp"
#include "sim/runner.hpp"

namespace delta::sim {
namespace {

MachineConfig tiny() {
  MachineConfig c = config16();
  c.warmup_epochs = 10;
  c.measure_epochs = 40;
  return c;
}

std::vector<std::string> apps16() {
  return {"mc", "po", "xa", "na", "ze", "hm", "ga", "gr",
          "li", "de", "om", "bw", "so", "ca", "pe", "Ge"};
}

class EveryScheme : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(EveryScheme, MapAlwaysReturnsValidBankAndSet) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(GetParam()));
  chip.run_epochs(30, false);
  Rng rng(3);
  for (int c = 0; c < 16; ++c) {
    for (int i = 0; i < 2000; ++i) {
      const BlockAddr b = rng();
      const BankTarget t = chip.scheme().map(chip, c, b);
      ASSERT_GE(t.bank, 0);
      ASSERT_LT(t.bank, 16);
      ASSERT_LT(t.set, static_cast<std::uint32_t>(cfg.sets_per_bank()));
    }
  }
}

TEST_P(EveryScheme, InsertMasksOfDistinctCoresAreDisjointUnderPartitioning) {
  // Holds for the partitioned schemes; S-NUCA deliberately shares ways.
  if (GetParam() == SchemeKind::kSnuca) GTEST_SKIP();
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(GetParam()));
  chip.run_epochs(35, false);
  for (int bank = 0; bank < 16; ++bank) {
    mem::WayMask seen = 0;
    for (int c = 0; c < 16; ++c) {
      if (GetParam() == SchemeKind::kPrivate && c != bank) continue;
      const mem::WayMask m = chip.scheme().insert_mask(chip, c, bank);
      EXPECT_EQ(seen & m, 0u) << "bank " << bank << " core " << c;
      seen |= m;
    }
  }
}

TEST_P(EveryScheme, AllocatedWaysStayWithinChipCapacity) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(GetParam()));
  for (int step = 0; step < 6; ++step) {
    chip.run_epochs(10, false);
    int total = 0;
    for (int c = 0; c < 16; ++c) {
      const int w = chip.scheme().allocated_ways(chip, c);
      EXPECT_GE(w, 0);
      total += w;
    }
    if (GetParam() != SchemeKind::kSnuca) {
      EXPECT_LE(total, 16 * 16);
    }
  }
}

TEST_P(EveryScheme, RunsAreDeterministic) {
  MachineConfig cfg = tiny();
  Chip a(cfg, apps16(), make_scheme(GetParam()));
  Chip b(cfg, apps16(), make_scheme(GetParam()));
  const MixResult ra = a.run("d");
  const MixResult rb = b.run("d");
  for (std::size_t i = 0; i < ra.apps.size(); ++i) {
    ASSERT_DOUBLE_EQ(ra.apps[i].ipc, rb.apps[i].ipc) << i;
    ASSERT_EQ(ra.apps[i].llc_misses, rb.apps[i].llc_misses) << i;
  }
}

TEST_P(EveryScheme, WorkloadStreamsIdenticalAcrossSchemes) {
  // Scheme choice must not perturb what the applications *access* per
  // epoch budget formulae inputs (same profiles, same seeds).  We verify
  // by checking that the warmup-epoch UMON access totals are in the same
  // ballpark across schemes (rates differ only through measured IPC).
  MachineConfig cfg = tiny();
  Chip x(cfg, apps16(), make_scheme(GetParam()));
  Chip y(cfg, apps16(), make_scheme(SchemeKind::kSnuca));
  x.run_epochs(5, false);
  y.run_epochs(5, false);
  for (int c = 0; c < 16; ++c) {
    const double ax = x.slot(c).umon->accesses();
    const double ay = y.slot(c).umon->accesses();
    if (ay > 0) {
      EXPECT_NEAR(ax / ay, 1.0, 0.5) << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, EveryScheme,
                         ::testing::Values(SchemeKind::kSnuca, SchemeKind::kPrivate,
                                           SchemeKind::kIdealCentralized,
                                           SchemeKind::kDelta),
                         [](const auto& inf) {
                           std::string s(to_string(inf.param));
                           for (auto& ch : s)
                             if (ch == '-') ch = '_';
                           return s;
                         });

TEST(DeltaSchemeProps, BankOwnershipAlwaysPartitionsEveryBank) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(SchemeKind::kDelta));
  for (int step = 0; step < 8; ++step) {
    chip.run_epochs(10, false);
    for (int bank = 0; bank < 16; ++bank) {
      mem::WayMask all = 0;
      for (int c = 0; c < 16; ++c) all |= chip.scheme().insert_mask(chip, c, bank);
      EXPECT_EQ(all, mem::full_mask(16)) << "bank " << bank << " has orphan ways";
    }
  }
}

TEST(DeltaSchemeProps, CbtTargetsOnlyBanksWithOwnedWays) {
  MachineConfig cfg = tiny();
  Chip chip(cfg, apps16(), make_scheme(SchemeKind::kDelta));
  chip.run_epochs(60, false);
  Rng rng(11);
  for (int c = 0; c < 16; ++c) {
    for (int i = 0; i < 500; ++i) {
      const BankTarget t = chip.scheme().map(chip, c, rng());
      EXPECT_NE(chip.scheme().insert_mask(chip, c, t.bank), 0u)
          << "core " << c << " maps to bank " << t.bank << " without ways";
    }
  }
}

}  // namespace
}  // namespace delta::sim
