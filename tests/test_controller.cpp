// Behavioural tests of the distributed DELTA controller (Alg. 1 + Alg. 2).
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "core/controller.hpp"

namespace delta::core {
namespace {

constexpr int kWays = 16;

/// UMON pre-loaded with a uniform working set of `footprint_ways`.
umon::Umon make_umon(int footprint_ways, std::uint64_t seed = 7,
                     std::uint64_t accesses = 200'000) {
  umon::UmonConfig cfg;
  cfg.max_ways = 64;
  cfg.set_dilution = 4;
  umon::Umon u(cfg);
  Rng rng(seed);
  const BlockAddr lines = static_cast<BlockAddr>(footprint_ways) * 512;
  for (std::uint64_t i = 0; i < accesses; ++i) u.access(rng.below(lines));
  return u;
}

struct Fixture {
  noc::Mesh mesh;
  DeltaParams params;
  DeltaController ctrl;
  std::vector<umon::Umon> umons;
  std::vector<TileInput> inputs;

  explicit Fixture(int w, int h, std::vector<int> footprints)
      : mesh(w, h), params{}, ctrl(mesh, make_params(), kWays) {
    for (std::size_t i = 0; i < footprints.size(); ++i) {
      if (footprints[i] > 0) {
        umons.push_back(make_umon(footprints[i], 100 + i));
      } else {
        umons.emplace_back(umon::UmonConfig{.max_ways = 64});
      }
    }
    inputs.resize(footprints.size());
    for (std::size_t i = 0; i < footprints.size(); ++i) {
      inputs[i].umon = &umons[i];
      inputs[i].mlp = 2.0;
      inputs[i].active = footprints[i] > 0;
      inputs[i].process_id = static_cast<std::uint32_t>(i) + 1;
    }
  }

  static DeltaParams make_params() {
    DeltaParams p;
    p.max_ways_per_app = 64;
    return p;
  }

  TickResult tick(std::uint64_t epoch, noc::TrafficStats* t = nullptr) {
    return ctrl.tick(epoch, inputs, t);
  }

  int total_all_ways() const {
    int total = 0;
    for (int b = 0; b < mesh.tiles(); ++b)
      for (int w = 0; w < kWays; ++w)
        if (ctrl.wp(b).owner(w) != kInvalidCore) ++total;
    return total;
  }
};

TEST(Controller, InitialEqualPartition) {
  Fixture f(2, 2, {8, 8, 8, 8});
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(f.ctrl.total_ways(c), kWays);
    EXPECT_EQ(f.ctrl.ways_outside_home(c), 0);
    EXPECT_EQ(f.ctrl.banks_of(c).size(), 1u);
  }
}

TEST(Controller, HungryAppExpandsIntoContentNeighbour) {
  // Core 0 wants 32 ways, the rest are content with 4-way footprints.
  Fixture f(2, 2, {32, 4, 4, 4});
  for (int e = 0; e <= 100; ++e) f.tick(e);
  EXPECT_GT(f.ctrl.total_ways(0), kWays);
  EXPECT_GT(f.ctrl.ways_outside_home(0), 0);
  EXPECT_GE(f.ctrl.banks_of(0).size(), 2u);
}

TEST(Controller, SymmetricHungryAppsHoldTheLine) {
  // Everyone hungry and equally so: pain defends, nobody invades much.
  Fixture f(2, 2, {32, 32, 32, 32});
  for (int e = 0; e <= 100; ++e) f.tick(e);
  for (int c = 0; c < 4; ++c)
    EXPECT_GE(f.ctrl.wp(c).ways_of(c), kWays - Fixture::make_params().inter_delta_ways)
        << "core " << c << " lost its home bank to a peer with equal pain";
}

TEST(Controller, NoChallengesBelowGainThreshold) {
  Fixture f(2, 2, {4, 4, 4, 4});  // Everyone fits comfortably.
  TickResult total{};
  for (int e = 0; e <= 50; ++e) {
    const TickResult r = f.tick(e);
    total.challenges_sent += r.challenges_sent;
  }
  EXPECT_EQ(total.challenges_sent, 0);
}

TEST(Controller, IdleBankGrabbedWholesale) {
  Fixture f(2, 2, {32, 0, 0, 0});
  int grabbed_epoch = -1;
  for (int e = 0; e <= 60 && grabbed_epoch < 0; ++e) {
    f.tick(e);
    for (int b = 1; b < 4; ++b)
      if (f.ctrl.wp(b).ways_of(0) == kWays) grabbed_epoch = e;
  }
  EXPECT_GE(grabbed_epoch, 0) << "hungry core never captured an idle bank";
  EXPECT_GT(f.ctrl.stats().idle_grabs, 0u);
}

TEST(Controller, WaysConservedUnderChurn) {
  Fixture f(2, 2, {32, 24, 16, 8});
  for (int e = 0; e <= 200; ++e) {
    f.tick(e);
    // Invariant: every way of every bank has exactly one owner and the
    // per-bank total is constant.
    EXPECT_EQ(f.total_all_ways(), 4 * kWays);
    for (int b = 0; b < 4; ++b) {
      int bank_total = 0;
      for (CoreId p : f.ctrl.wp(b).partitions()) bank_total += f.ctrl.wp(b).ways_of(p);
      EXPECT_EQ(bank_total, kWays);
    }
  }
}

TEST(Controller, HomeFloorNeverViolated) {
  Fixture f(2, 2, {48, 48, 4, 4});
  for (int e = 0; e <= 300; ++e) {
    f.tick(e);
    for (int c = 0; c < 4; ++c)
      EXPECT_GE(f.ctrl.wp(c).ways_of(c), Fixture::make_params().min_ways)
          << "core " << c << " epoch " << e;
  }
}

TEST(Controller, MaxWaysCapRespected) {
  Fixture f(2, 2, {64, 4, 4, 4});
  for (int e = 0; e <= 400; ++e) f.tick(e);
  EXPECT_LE(f.ctrl.total_ways(0), Fixture::make_params().max_ways_per_app);
}

TEST(Controller, CbtMapsOnlyHeldBanks) {
  Fixture f(2, 2, {40, 4, 4, 4});
  for (int e = 0; e <= 150; ++e) {
    f.tick(e);
    for (int c = 0; c < 4; ++c) {
      const auto& held = f.ctrl.banks_of(c);
      for (const auto& r : f.ctrl.cbt(c).ranges()) {
        EXPECT_NE(std::find(held.begin(), held.end(), r.bank), held.end())
            << "core " << c << " CBT maps un-held bank " << r.bank;
      }
    }
  }
}

TEST(Controller, RemapEventsReferencePreviousBank) {
  Fixture f(2, 2, {40, 4, 4, 4});
  bool saw_remap = false;
  for (int e = 0; e <= 100; ++e) {
    const TickResult r = f.tick(e);
    for (const RemapChunk& rc : r.remaps) {
      saw_remap = true;
      EXPECT_GE(rc.chunk, 0);
      EXPECT_LT(rc.chunk, mem::kNumChunks);
      EXPECT_GE(rc.old_bank, 0);
      // After the tick, the chunk must map somewhere else.
      EXPECT_NE(f.ctrl.cbt(rc.core).bank_for_chunk(rc.chunk), rc.old_bank);
    }
  }
  EXPECT_TRUE(saw_remap);
}

TEST(Controller, ChallengeTargetsClosestFirst) {
  // 1x4 row mesh: tile 0's first challenge must go to tile 1.
  noc::Mesh mesh(4, 1);
  DeltaParams params = Fixture::make_params();
  DeltaController ctrl(mesh, params, kWays);
  umon::Umon hungry = make_umon(32);
  umon::Umon content = make_umon(2);
  std::vector<TileInput> in(4);
  in[0] = {&hungry, 2.0, true, 1};
  for (int i = 1; i < 4; ++i) in[i] = {&content, 2.0, true, static_cast<std::uint32_t>(i + 1)};
  ctrl.tick(0, in);  // First inter tick: core 0 challenges tile 1.
  EXPECT_GT(ctrl.wp(1).ways_of(0), 0);
  EXPECT_EQ(ctrl.wp(2).ways_of(0), 0);
  EXPECT_EQ(ctrl.wp(3).ways_of(0), 0);
}

TEST(Controller, SameProcessChallengeRejected) {
  Fixture f(2, 2, {32, 4, 4, 4});
  for (auto& in : f.inputs) in.process_id = 77;  // One multithreaded process.
  TickResult total{};
  for (int e = 0; e <= 100; ++e) {
    const TickResult r = f.tick(e);
    total.challenges_won += r.challenges_won;
  }
  EXPECT_EQ(total.challenges_won, 0);
  EXPECT_EQ(f.ctrl.ways_outside_home(0), 0);
}

TEST(Controller, IntraBankShiftsWaysTowardLargerGain) {
  // Start: core 0 expands into bank 1.  Then core 0 is hungry (big
  // footprint) while core 1 is content: the intra-bank algorithm should
  // keep moving bank-1 ways from core 1 to core 0 down to the home floor.
  Fixture f(2, 2, {48, 4, 4, 4});
  for (int e = 0; e <= 300; ++e) f.tick(e);
  EXPECT_GE(f.ctrl.wp(1).ways_of(0), 8) << "intra-bank growth did not happen";
  EXPECT_GE(f.ctrl.wp(1).ways_of(1), Fixture::make_params().min_ways);
}

TEST(Controller, InterTickCadence) {
  Fixture f(2, 2, {32, 4, 4, 4});
  noc::TrafficStats t;
  // Epoch 1 is not an inter boundary (default interval 10): no challenges.
  f.ctrl.tick(1, f.inputs, &t);
  EXPECT_EQ(t.total(noc::MsgType::kChallenge), 0u);
  f.ctrl.tick(10, f.inputs, &t);
  EXPECT_GT(t.total(noc::MsgType::kChallenge), 0u);
}

TEST(Controller, MessageBudgetPerInterval) {
  // Worst case per inter interval: one challenge + one response per tile.
  Fixture f(2, 2, {32, 32, 32, 32});
  noc::TrafficStats t;
  f.ctrl.tick(0, f.inputs, &t);
  EXPECT_LE(t.total(noc::MsgType::kChallenge), 4u);
  EXPECT_EQ(t.total(noc::MsgType::kChallenge),
            t.total(noc::MsgType::kChallengeResponse));
}

TEST(Controller, StatsAccumulate) {
  Fixture f(2, 2, {32, 4, 4, 4});
  for (int e = 0; e <= 100; ++e) f.tick(e);
  EXPECT_GT(f.ctrl.stats().challenges_sent, 0u);
  EXPECT_GT(f.ctrl.stats().challenges_won, 0u);
  EXPECT_GT(f.ctrl.stats().alu_ops, 0u);
  EXPECT_GT(f.ctrl.stats().cbt_rebuilds, 0u);
}

TEST(Controller, ResetRestoresEqualPartition) {
  Fixture f(2, 2, {32, 4, 4, 4});
  for (int e = 0; e <= 100; ++e) f.tick(e);
  f.ctrl.reset();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(f.ctrl.total_ways(c), kWays);
    EXPECT_EQ(f.ctrl.banks_of(c).size(), 1u);
  }
}

}  // namespace
}  // namespace delta::core
