#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/pain_gain.hpp"

namespace delta::core {
namespace {

umon::Umon uniform_umon(int footprint_ways, std::uint64_t accesses = 300'000) {
  umon::UmonConfig cfg;
  cfg.max_ways = 64;
  cfg.set_dilution = 1;
  umon::Umon u(cfg);
  Rng rng(7);
  const BlockAddr lines = static_cast<BlockAddr>(footprint_ways) * 512;
  for (std::uint64_t i = 0; i < accesses; ++i) u.access(rng.below(lines));
  return u;
}

TEST(PainGain, GainPositiveWhenGrowthHelps) {
  // Footprint of 32 ways, currently holding 16: growing 4 ways helps.
  const umon::Umon u = uniform_umon(32);
  const PainGain pg = compute_pain_gain(u, 16, 0, 4, 4, 2.0);
  EXPECT_GT(pg.raw_gain, 0.0);
  EXPECT_GT(pg.pain, 0.0);
}

TEST(PainGain, GainZeroWhenWorkingSetFits) {
  // Footprint of 8 ways, holding 16: no benefit from more capacity.
  const umon::Umon u = uniform_umon(8);
  const PainGain pg = compute_pain_gain(u, 16, 0, 4, 4, 2.0);
  EXPECT_NEAR(pg.raw_gain, 0.0, 0.05);
  // ...and no pain either: losing 4 of 16 ways still fits the 8-way set.
  EXPECT_NEAR(pg.pain, 0.0, 0.05);
}

TEST(PainGain, PainHighWhenWorkingSetExactlyFits) {
  // Footprint of 16 ways, holding 16: losing capacity hurts.
  const umon::Umon u = uniform_umon(16);
  const PainGain pg = compute_pain_gain(u, 16, 0, 4, 4, 2.0);
  EXPECT_GT(pg.pain, pg.raw_gain);
  EXPECT_GT(pg.pain, 0.5);
}

TEST(PainGain, RemoteWaysDampGain) {
  // Eq. 1's (k+1)^-1: more capacity already held outside lowers gain.
  const umon::Umon u = uniform_umon(48);
  const PainGain inside = compute_pain_gain(u, 16, 0, 4, 4, 2.0);
  const PainGain outside = compute_pain_gain(u, 16, 8, 4, 4, 2.0);
  EXPECT_NEAR(outside.raw_gain, inside.raw_gain / 9.0, 1e-9);
  // Pain is NOT damped by remote allocation (Eq. 2).
  EXPECT_NEAR(outside.pain, inside.pain, 1e-9);
}

TEST(PainGain, MlpDividesBoth) {
  const umon::Umon u = uniform_umon(48);
  const PainGain low = compute_pain_gain(u, 16, 0, 4, 4, 1.0);
  const PainGain high = compute_pain_gain(u, 16, 0, 4, 4, 4.0);
  EXPECT_NEAR(high.raw_gain, low.raw_gain / 4.0, 1e-9);
  EXPECT_NEAR(high.pain, low.pain / 4.0, 1e-9);
}

TEST(PainGain, DistanceScaling) {
  EXPECT_DOUBLE_EQ(scale_gain(10.0, 0), 10.0);
  EXPECT_DOUBLE_EQ(scale_gain(10.0, 1), 5.0);
  EXPECT_DOUBLE_EQ(scale_gain(10.0, 4), 2.0);
}

TEST(PainGain, WindowMpkaNormalisesByAccesses) {
  const umon::Umon u = uniform_umon(32);
  const double mpka = window_mpka(u, 0, 64);
  // All hits fall below 64 ways; hits/access ~ 50% at steady state of a
  // 32-way footprint fully trackable... just sanity-bound it.
  EXPECT_GT(mpka, 100.0);
  EXPECT_LE(mpka, 1000.0);
}

TEST(PainGain, EmptyMonitorGivesZero) {
  umon::UmonConfig cfg;
  cfg.max_ways = 16;
  const umon::Umon u(cfg);
  const PainGain pg = compute_pain_gain(u, 8, 0, 4, 4, 2.0);
  EXPECT_DOUBLE_EQ(pg.raw_gain, 0.0);
  EXPECT_DOUBLE_EQ(pg.pain, 0.0);
}

TEST(PainGain, CliffInvisibleToWindow) {
  // Loop footprint of 24 ways: gain window at 16 ways sees nothing (the
  // nearsightedness the paper analyses in Fig. 7).
  umon::UmonConfig cfg;
  cfg.max_ways = 64;
  cfg.set_dilution = 1;
  umon::Umon u(cfg);
  const BlockAddr lines = 24 * 512;
  for (int pass = 0; pass < 3; ++pass)
    for (BlockAddr b = 0; b < lines; ++b) u.access(b);
  const PainGain pg = compute_pain_gain(u, 16, 0, 4, 4, 2.0);
  EXPECT_NEAR(pg.raw_gain, 0.0, 0.05);
  // But the full curve shows the cliff at 24 ways.
  const double total_benefit = u.hits_between(16, 32);
  EXPECT_GT(total_benefit, 0.5 * u.accesses());
}

// --- Property tests over randomized monitors and window parameters:
// non-negativity of both heuristics, and the exact Eq. 1 / Eq. 2 scaling
// factors ((k+1)^-1 on gain only, 1/m on both).

umon::Umon random_umon(std::uint64_t seed) {
  Rng rng(seed);
  umon::UmonConfig cfg;
  cfg.max_ways = 64;
  cfg.set_dilution = 1 + static_cast<int>(rng.below(4));
  umon::Umon u(cfg);
  const BlockAddr lines = (1 + rng.below(40)) * 512;
  const std::uint64_t accesses = 10'000 + rng.below(40'000);
  for (std::uint64_t i = 0; i < accesses; ++i)
    u.access(rng.chance(0.6) ? rng.below(lines) : (i % lines));
  return u;
}

TEST(PainGainProperty, BothHeuristicsAreNonNegative) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const umon::Umon u = random_umon(seed);
    Rng rng(seed * 977);
    for (int i = 0; i < 40; ++i) {
      const int cur = 4 + static_cast<int>(rng.below(45));
      const int outside = static_cast<int>(rng.below(static_cast<std::uint64_t>(cur)));
      const int gw = 1 + static_cast<int>(rng.below(8));
      const int pw = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(cur)));
      const double mlp = 1.0 + rng.uniform() * 7.0;
      const PainGain pg = compute_pain_gain(u, cur, outside, gw, pw, mlp);
      ASSERT_GE(pg.raw_gain, 0.0) << "seed " << seed << " case " << i;
      ASSERT_GE(pg.pain, 0.0) << "seed " << seed << " case " << i;
      ASSERT_GE(scale_gain(pg.raw_gain, static_cast<int>(rng.below(7))), 0.0);
    }
  }
}

TEST(PainGainProperty, GainScalesExactlyByRemoteWayFactor) {
  // Eq. 1: Gain ∝ (k+1)^-1.  Sweeping k with everything else fixed must
  // reproduce the factor exactly, and pain must not move at all (Eq. 2).
  const umon::Umon u = random_umon(4);
  const PainGain base = compute_pain_gain(u, 16, 0, 4, 4, 2.0);
  for (int k = 1; k <= 12; ++k) {
    const PainGain pg = compute_pain_gain(u, 16, k, 4, 4, 2.0);
    EXPECT_NEAR(pg.raw_gain, base.raw_gain / (k + 1), 1e-9) << "k=" << k;
    EXPECT_NEAR(pg.pain, base.pain, 1e-12) << "k=" << k;
  }
}

TEST(PainGainProperty, BothScaleExactlyByInverseMlp) {
  const umon::Umon u = random_umon(5);
  const PainGain base = compute_pain_gain(u, 20, 2, 4, 4, 1.0);
  for (double m : {1.5, 2.0, 3.0, 8.0}) {
    const PainGain pg = compute_pain_gain(u, 20, 2, 4, 4, m);
    EXPECT_NEAR(pg.raw_gain, base.raw_gain / m, 1e-9) << "mlp=" << m;
    EXPECT_NEAR(pg.pain, base.pain / m, 1e-9) << "mlp=" << m;
  }
}

TEST(PainGainProperty, GainBoundedByWindowMpka) {
  // raw_gain = window_mpka * (k+1)^-1 / m with k >= 0, m >= 1: the
  // undamped window MPKA is an upper bound on gain; same for pain.
  for (std::uint64_t seed = 30; seed <= 36; ++seed) {
    const umon::Umon u = random_umon(seed);
    const int cur = 16;
    const PainGain pg = compute_pain_gain(u, cur, 3, 4, 4, 1.0);
    EXPECT_LE(pg.raw_gain, window_mpka(u, cur, cur + 4) + 1e-9);
    EXPECT_LE(pg.pain, window_mpka(u, cur - 4, cur) + 1e-9);
  }
}

TEST(PainGainProperty, DistanceScalingMonotoneInHops) {
  const umon::Umon u = random_umon(6);
  const PainGain pg = compute_pain_gain(u, 12, 1, 4, 4, 2.0);
  double prev = scale_gain(pg.raw_gain, 0);
  for (int hops = 1; hops <= 6; ++hops) {
    const double g = scale_gain(pg.raw_gain, hops);
    EXPECT_LE(g, prev + 1e-12);
    EXPECT_GE(g, 0.0);
    prev = g;
  }
}

}  // namespace
}  // namespace delta::core
