#include <gtest/gtest.h>

#include "mem/address.hpp"
#include "sim/chip.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace delta::sim {
namespace {

MachineConfig tiny_config() {
  MachineConfig c = config16();
  c.warmup_epochs = 20;
  c.measure_epochs = 60;
  return c;
}

std::vector<std::string> simple_apps() {
  return {"mc", "po", "sj", "na", "ze", "hm", "ga", "gr",
          "po", "sj", "na", "ze", "hm", "ga", "gr", "po"};
}

TEST(Chip, RunsAndProducesPlausibleIpc) {
  MachineConfig cfg = tiny_config();
  Chip chip(cfg, simple_apps(), make_scheme(SchemeKind::kSnuca));
  const MixResult r = chip.run("smoke");
  ASSERT_EQ(r.apps.size(), 16u);
  for (const auto& a : r.apps) {
    EXPECT_GT(a.ipc, 0.05) << a.app;
    EXPECT_LT(a.ipc, 4.0) << a.app;
    EXPECT_GT(a.instructions, 0u);
  }
  EXPECT_GT(r.geomean_ipc, 0.0);
}

TEST(Chip, DeterministicAcrossRuns) {
  MachineConfig cfg = tiny_config();
  Chip a(cfg, simple_apps(), make_scheme(SchemeKind::kDelta));
  Chip b(cfg, simple_apps(), make_scheme(SchemeKind::kDelta));
  const MixResult ra = a.run("x");
  const MixResult rb = b.run("x");
  for (std::size_t i = 0; i < ra.apps.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.apps[i].ipc, rb.apps[i].ipc);
}

TEST(Chip, IdleCoresStayIdle) {
  MachineConfig cfg = tiny_config();
  std::vector<std::string> apps = simple_apps();
  apps[3] = "idle";
  Chip chip(cfg, apps, make_scheme(SchemeKind::kSnuca));
  const MixResult r = chip.run("idle-test");
  EXPECT_EQ(r.apps[3].instructions, 0u);
  EXPECT_EQ(r.apps[3].ipc, 0.0);
}

TEST(Chip, PrivateSchemeKeepsAccessesLocal) {
  MachineConfig cfg = tiny_config();
  Chip chip(cfg, simple_apps(), make_scheme(SchemeKind::kPrivate));
  const MixResult r = chip.run("private");
  for (const auto& a : r.apps) EXPECT_DOUBLE_EQ(a.avg_hops, 0.0);
}

TEST(Chip, SnucaSpreadsAccessesAcrossBanks) {
  MachineConfig cfg = tiny_config();
  Chip chip(cfg, simple_apps(), make_scheme(SchemeKind::kSnuca));
  const MixResult r = chip.run("snuca");
  double hops = 0.0;
  for (const auto& a : r.apps) hops += a.avg_hops;
  EXPECT_GT(hops / 16.0, 1.5);  // Mean NoC distance on a 4x4 mesh.
}

TEST(Chip, DeltaReducesDistanceVsSnuca) {
  MachineConfig cfg = tiny_config();
  Chip snuca(cfg, simple_apps(), make_scheme(SchemeKind::kSnuca));
  Chip delta(cfg, simple_apps(), make_scheme(SchemeKind::kDelta));
  const MixResult rs = snuca.run("m");
  const MixResult rd = delta.run("m");
  double hs = 0.0, hd = 0.0;
  for (const auto& a : rs.apps) hs += a.avg_hops;
  for (const auto& a : rd.apps) hd += a.avg_hops;
  EXPECT_LT(hd, hs * 0.6) << "DELTA should keep data much closer than S-NUCA";
}

TEST(Chip, CacheHungryAppGrowsUnderDelta) {
  MachineConfig cfg = tiny_config();
  cfg.measure_epochs = 120;
  Chip chip(cfg, simple_apps(), make_scheme(SchemeKind::kDelta));
  const MixResult r = chip.run("growth");
  // Core 0 runs mcf (5 MB appetite) among content apps: it must have
  // expanded well beyond its 16-way home bank.
  EXPECT_GT(r.apps[0].avg_ways, 20.0);
}

TEST(Chip, BulkInvalidationRemovesExactlyMatchingLines) {
  MachineConfig cfg = tiny_config();
  Chip chip(cfg, simple_apps(), make_scheme(SchemeKind::kPrivate));
  chip.run_epochs(5, false);
  // Invalidate all of core 2's chunks in its home bank.
  std::vector<int> all_chunks(mem::kNumChunks);
  for (int i = 0; i < mem::kNumChunks; ++i) all_chunks[i] = i;
  const std::uint64_t owned = chip.bank(2).lines_owned_by(2);
  ASSERT_GT(owned, 0u);
  const std::uint64_t dropped = chip.invalidate_core_chunks(2, 2, all_chunks);
  EXPECT_EQ(dropped, owned);
  EXPECT_EQ(chip.bank(2).lines_owned_by(2), 0u);
}

TEST(Metrics, AnttAndStpAgainstSelfAreNeutral) {
  MachineConfig cfg = tiny_config();
  Chip chip(cfg, simple_apps(), make_scheme(SchemeKind::kPrivate));
  const MixResult r = chip.run("self");
  EXPECT_NEAR(antt(r, r), 1.0, 1e-12);
  EXPECT_NEAR(stp(r, r), 16.0, 1e-9);
  EXPECT_NEAR(speedup(r, r), 1.0, 1e-12);
}

TEST(Runner, MixForConfigReplicates) {
  const workload::Mix m16 = mix_for_config(config16(), "w1");
  EXPECT_EQ(m16.apps.size(), 16u);
  const workload::Mix m64 = mix_for_config(config64(), "w1");
  EXPECT_EQ(m64.apps.size(), 64u);
}

TEST(Runner, MismatchedMixThrows) {
  workload::Mix bad;
  bad.name = "bad";
  bad.apps = {"po", "sj"};
  EXPECT_THROW(run_mix(config16(), bad, SchemeKind::kSnuca), std::invalid_argument);
}

TEST(Scheme, FactoryNames) {
  EXPECT_EQ(make_scheme(SchemeKind::kSnuca)->name(), "snuca");
  EXPECT_EQ(make_scheme(SchemeKind::kPrivate)->name(), "private");
  EXPECT_EQ(make_scheme(SchemeKind::kIdealCentralized)->name(), "ideal-central");
  EXPECT_EQ(make_scheme(SchemeKind::kDelta)->name(), "delta");
  EXPECT_EQ(to_string(SchemeKind::kDelta), "delta");
}

}  // namespace
}  // namespace delta::sim
