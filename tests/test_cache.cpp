#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "mem/replacement.hpp"

namespace delta::mem {
namespace {

TEST(Cache, MissThenHit) {
  SetAssocCache c(4, 2);
  EXPECT_FALSE(c.access(0, 100, 0, full_mask(2)).hit);
  EXPECT_TRUE(c.access(0, 100, 0, full_mask(2)).hit);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictionOrder) {
  SetAssocCache c(1, 2);
  c.access(0, 1, 0, full_mask(2));
  c.access(0, 2, 0, full_mask(2));
  c.access(0, 1, 0, full_mask(2));  // 1 is now MRU; 2 is LRU.
  c.access(0, 3, 0, full_mask(2));  // Evicts 2.
  EXPECT_TRUE(c.contains(0, 1));
  EXPECT_FALSE(c.contains(0, 2));
  EXPECT_TRUE(c.contains(0, 3));
}

TEST(Cache, LruSurvivesUint32ClockWrap) {
  // The per-set LRU clock is 64-bit precisely so a long run cannot wrap a
  // 32-bit stamp and make an old line look recent.  Park the clock just
  // below 2^32 and push accesses across the boundary: recency ordering
  // must stay correct where 32-bit stamps would have wrapped to ~0.
  SetAssocCache c(1, 2);
  c.set_clock_for_test(0, (std::uint64_t{1} << 32) - 2);
  c.access(0, 1, 0, full_mask(2));  // stamp 2^32 - 1
  c.access(0, 2, 0, full_mask(2));  // stamp 2^32 (wraps to 0 in 32 bits)
  // With a wrapped 32-bit stamp, block 2 would be "older" than block 1 and
  // get evicted here; the 64-bit clock must evict the true LRU, block 1.
  const auto res = c.access(0, 3, 0, full_mask(2));
  EXPECT_TRUE(res.evicted);
  EXPECT_EQ(res.victim_block, 1u);
  EXPECT_FALSE(c.contains(0, 1));
  EXPECT_TRUE(c.contains(0, 2));
  EXPECT_TRUE(c.contains(0, 3));
}

TEST(Cache, HitPromotesToMru) {
  SetAssocCache c(1, 3);
  c.access(0, 1, 0, full_mask(3));
  c.access(0, 2, 0, full_mask(3));
  c.access(0, 3, 0, full_mask(3));
  c.access(0, 1, 0, full_mask(3));  // Promote 1.
  c.access(0, 4, 0, full_mask(3));  // Should evict 2 (LRU), not 1.
  EXPECT_TRUE(c.contains(0, 1));
  EXPECT_FALSE(c.contains(0, 2));
}

TEST(Cache, WayMaskRestrictsInsertionButNotLookup) {
  SetAssocCache c(1, 4);
  // Core 0 owns ways {0,1}; core 1 owns ways {2,3}.
  const WayMask m0 = 0b0011, m1 = 0b1100;
  c.access(0, 10, 0, m0);
  c.access(0, 11, 0, m0);
  c.access(0, 20, 1, m1);
  c.access(0, 21, 1, m1);
  // Core 1 inserting more evicts only core 1's lines.
  c.access(0, 22, 1, m1);
  EXPECT_TRUE(c.contains(0, 10));
  EXPECT_TRUE(c.contains(0, 11));
  EXPECT_FALSE(c.contains(0, 20));
  // Lookup across partitions: core 0 hits core 1's line.
  EXPECT_TRUE(c.access(0, 21, 0, m0).hit);
}

TEST(Cache, EmptyMaskBypasses) {
  SetAssocCache c(1, 2);
  const auto res = c.access(0, 7, 0, 0);
  EXPECT_FALSE(res.hit);
  EXPECT_EQ(res.way, -1);
  EXPECT_FALSE(c.contains(0, 7));
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, VictimPrefersInvalidWays) {
  SetAssocCache c(1, 4);
  c.access(0, 1, 0, full_mask(4));
  const auto res = c.access(0, 2, 0, full_mask(4));
  EXPECT_FALSE(res.evicted);
  EXPECT_TRUE(c.contains(0, 1));
}

TEST(Cache, EvictionReportsVictim) {
  SetAssocCache c(1, 1);
  c.access(0, 5, 3, full_mask(1));
  const auto res = c.access(0, 6, 4, full_mask(1));
  EXPECT_TRUE(res.evicted);
  EXPECT_EQ(res.victim_block, 5u);
  EXPECT_EQ(res.victim_owner, 3);
}

TEST(Cache, InvalidateSingleLine) {
  SetAssocCache c(2, 2);
  c.access(1, 9, 0, full_mask(2));
  EXPECT_TRUE(c.invalidate(1, 9));
  EXPECT_FALSE(c.contains(1, 9));
  EXPECT_FALSE(c.invalidate(1, 9));
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, InvalidateIfSweepsByOwner) {
  SetAssocCache c(8, 4);
  for (BlockAddr b = 0; b < 32; ++b)
    c.access(static_cast<std::uint32_t>(b % 8), b, static_cast<CoreId>(b % 2),
             full_mask(4));
  const std::uint64_t n = c.invalidate_if(
      [](BlockAddr, CoreId owner) { return owner == 1; });
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(c.lines_owned_by(1), 0u);
  EXPECT_EQ(c.lines_owned_by(0), 16u);
}

TEST(Cache, OwnerTagTracksInserter) {
  SetAssocCache c(1, 2);
  c.access(0, 1, 7, full_mask(2));
  EXPECT_EQ(c.lines_owned_by(7), 1u);
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(Cache, TouchPromotesWithoutFill) {
  SetAssocCache c(1, 2);
  EXPECT_FALSE(c.touch(0, 3));
  c.access(0, 3, 0, full_mask(2));
  EXPECT_TRUE(c.touch(0, 3));
  EXPECT_EQ(c.stats().misses, 1u);  // touch() does not count demand stats.
}

// Property: with a single ring of blocks larger than capacity accessed
// cyclically under LRU, the hit rate is zero (the classic LRU loop pathology
// the paper's loop-profile applications rely on).
TEST(CacheProperty, SequentialLoopBiggerThanCacheNeverHits) {
  SetAssocCache c(16, 4);  // 64-line capacity.
  const int loop_lines = 80;
  for (int pass = 0; pass < 5; ++pass)
    for (int i = 0; i < loop_lines; ++i)
      c.access(static_cast<std::uint32_t>(i % 16), static_cast<BlockAddr>(i),
               0, full_mask(4));
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(CacheProperty, SequentialLoopFittingAlwaysHitsAfterWarmup) {
  SetAssocCache c(16, 4);
  const int loop_lines = 64;
  for (int i = 0; i < loop_lines; ++i)
    c.access(static_cast<std::uint32_t>(i % 16), static_cast<BlockAddr>(i), 0,
             full_mask(4));
  c.reset_stats();
  for (int pass = 0; pass < 3; ++pass)
    for (int i = 0; i < loop_lines; ++i)
      c.access(static_cast<std::uint32_t>(i % 16), static_cast<BlockAddr>(i), 0,
               full_mask(4));
  EXPECT_EQ(c.stats().misses, 0u);
}

// Parameterized property: uniform random accesses over a footprint F with
// capacity C converge to a hit rate of roughly C/F.
class UniformHitRate : public ::testing::TestWithParam<int> {};

TEST_P(UniformHitRate, MatchesCapacityRatio) {
  const int footprint_lines = GetParam();
  SetAssocCache c(64, 8);  // 512-line capacity.
  Rng rng(99);
  for (int i = 0; i < 200'000; ++i) {
    const BlockAddr b = rng.below(static_cast<std::uint64_t>(footprint_lines));
    c.access(static_cast<std::uint32_t>(b % 64), b, 0, full_mask(8));
  }
  c.reset_stats();
  for (int i = 0; i < 200'000; ++i) {
    const BlockAddr b = rng.below(static_cast<std::uint64_t>(footprint_lines));
    c.access(static_cast<std::uint32_t>(b % 64), b, 0, full_mask(8));
  }
  const double expect = std::min(1.0, 512.0 / footprint_lines);
  EXPECT_NEAR(1.0 - c.stats().miss_rate(), expect, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Footprints, UniformHitRate,
                         ::testing::Values(256, 512, 1024, 2048, 8192));

TEST(TreePlru, VictimRespectsEligibility) {
  TreePlru plru(8);
  for (int w = 0; w < 8; ++w) plru.touch(w);
  const int v = plru.victim(0b00010000);
  EXPECT_EQ(v, 4);
  EXPECT_EQ(plru.victim(0), -1);
}

TEST(TreePlru, TouchSteersVictimAway) {
  TreePlru plru(4);
  plru.touch(0);
  const int v = plru.victim(full_mask(4));
  EXPECT_NE(v, 0);
}

}  // namespace
}  // namespace delta::mem
