#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "umon/umon.hpp"

namespace delta::umon {
namespace {

UmonConfig small_cfg() {
  UmonConfig c;
  c.max_ways = 32;
  c.sets_log2 = 9;
  c.set_dilution = 1;  // Monitor everything: exact stack distances.
  return c;
}

TEST(Umon, ColdAccessesAreMisses) {
  Umon u(small_cfg());
  for (BlockAddr b = 0; b < 512; ++b) u.access(b);
  EXPECT_DOUBLE_EQ(u.misses_at_max(), 512.0);
  EXPECT_DOUBLE_EQ(u.accesses(), 512.0);
}

TEST(Umon, RepeatAccessHitsAtDistanceZero) {
  Umon u(small_cfg());
  u.access(0);
  u.access(0);
  EXPECT_DOUBLE_EQ(u.hits_between(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(u.hits_between(1, 32), 0.0);
}

TEST(Umon, StackDistanceMeasuredPerSet) {
  Umon u(small_cfg());
  // Three distinct blocks in the same set (512 apart), then re-touch the
  // first: its per-set stack distance is 2.
  u.access(0);
  u.access(512);
  u.access(1024);
  u.access(0);
  EXPECT_DOUBLE_EQ(u.hits_between(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(u.hits_between(0, 2), 0.0);
}

TEST(Umon, MissCurveMonotoneNonIncreasing) {
  Umon u(small_cfg());
  Rng rng(3);
  for (int i = 0; i < 50'000; ++i) u.access(rng.below(512 * 8));
  const MissCurve mc = u.miss_curve();
  for (int w = 1; w <= mc.max_ways(); ++w) EXPECT_LE(mc.at(w), mc.at(w - 1));
  EXPECT_DOUBLE_EQ(mc.at(0), u.accesses());
}

TEST(Umon, LoopFootprintShowsCliff) {
  // A cyclic sweep over 8 ways' worth of lines: every reuse has per-set
  // stack distance exactly 8, so the miss curve steps at 8 ways.
  Umon u(small_cfg());
  const BlockAddr lines = 512 * 8;
  for (int pass = 0; pass < 4; ++pass)
    for (BlockAddr b = 0; b < lines; ++b) u.access(b);
  const MissCurve mc = u.miss_curve();
  // A loop of 8 lines/set has stack distance exactly 7: with <= 7 ways
  // everything (beyond cold) misses; with 8+ everything hits.
  EXPECT_GT(mc.at(7), 0.7 * u.accesses());
  EXPECT_LT(mc.at(8), 0.3 * u.accesses());
}

TEST(Umon, UniformFootprintGivesLinearCurve) {
  Umon u(small_cfg());
  Rng rng(11);
  const BlockAddr lines = 512 * 16;  // 16 ways' worth.
  for (int i = 0; i < 400'000; ++i) u.access(rng.below(lines));
  const MissCurve mc = u.miss_curve();
  // Misses at w ways ~ accesses * (1 - w/16); check mid-point loosely.
  const double frac8 = mc.at(8) / u.accesses();
  EXPECT_NEAR(frac8, 0.5, 0.1);
}

TEST(Umon, DilutionScalesCountsBack) {
  UmonConfig cfg = small_cfg();
  cfg.set_dilution = 16;
  Umon diluted(cfg);
  Umon exact(small_cfg());
  Rng rng(5);
  for (int i = 0; i < 600'000; ++i) {
    const BlockAddr b = rng.below(512 * 4);
    diluted.access(b);
    exact.access(b);
  }
  // Scaled sampled counts approximate the exact counts within ~10%.
  EXPECT_NEAR(diluted.accesses() / exact.accesses(), 1.0, 0.1);
  EXPECT_NEAR(diluted.hits_between(0, 32) / exact.hits_between(0, 32), 1.0, 0.1);
}

TEST(Umon, CoarseCountersApproximateFine) {
  Umon u(small_cfg());
  Rng rng(8);
  for (int i = 0; i < 300'000; ++i) u.access(rng.below(512 * 12));
  // Windows aligned to 4-way buckets agree exactly; unaligned interpolate.
  EXPECT_NEAR(u.coarse_hits_between(0, 4), u.hits_between(0, 4),
              0.02 * u.accesses() + 1);
  EXPECT_NEAR(u.coarse_hits_between(4, 12), u.hits_between(4, 12),
              0.06 * u.accesses() + 1);
}

TEST(Umon, DecayHalvesCounters) {
  Umon u(small_cfg());
  u.access(1);
  u.access(1);
  const double before = u.hits_between(0, 1);
  u.decay(0.5);
  EXPECT_DOUBLE_EQ(u.hits_between(0, 1), before / 2.0);
}

TEST(Umon, ResetClearsEverything) {
  Umon u(small_cfg());
  u.access(1);
  u.access(1);
  u.reset();
  EXPECT_DOUBLE_EQ(u.accesses(), 0.0);
  EXPECT_DOUBLE_EQ(u.hits_between(0, 32), 0.0);
}

TEST(Umon, CoarseMissCurveMonotone) {
  Umon u(small_cfg());
  Rng rng(21);
  for (int i = 0; i < 100'000; ++i) u.access(rng.below(512 * 6));
  const MissCurve mc = u.coarse_miss_curve();
  for (int w = 1; w <= mc.max_ways(); ++w) EXPECT_LE(mc.at(w), mc.at(w - 1));
}

TEST(Umon, StorageCostReportsCoarseSavings) {
  UmonConfig fine = small_cfg();
  Umon u(fine);
  EXPECT_GT(u.storage_bits(), 0u);
}

TEST(Umon, NonDivisorSetDilutionIsSafe) {
  // Regression: dilution 3 over 512 sets monitors sets 0,3,...,510 — one
  // more stack than 512/3 truncated; the last monitored set used to write
  // out of bounds.
  UmonConfig cfg;
  cfg.max_ways = 16;
  cfg.sets_log2 = 9;
  cfg.set_dilution = 3;
  Umon u(cfg);
  for (BlockAddr b = 0; b < 4096; ++b) u.access(b);
  for (BlockAddr b = 0; b < 4096; ++b) u.access(b);
  EXPECT_GT(u.sampled_accesses(), 0u);
  EXPECT_GT(u.hits_between(0, 16), 0.0);
}

}  // namespace
}  // namespace delta::umon
