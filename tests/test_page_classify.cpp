#include <gtest/gtest.h>

#include "core/page_classify.hpp"

namespace delta::core {
namespace {

TEST(PageClassifier, FirstTouchIsPrivate) {
  PageClassifier pc;
  const PageEvent ev = pc.on_access(2, 0x1000);
  EXPECT_EQ(ev.cls, PageClass::kPrivate);
  EXPECT_FALSE(ev.reclassified);
  EXPECT_EQ(pc.owner(0x1000), 2);
  EXPECT_EQ(pc.classify(0x1000), PageClass::kPrivate);
}

TEST(PageClassifier, SameOwnerStaysPrivate) {
  PageClassifier pc;
  pc.on_access(1, 0x2000);
  const PageEvent ev = pc.on_access(1, 0x2008);  // Same page.
  EXPECT_EQ(ev.cls, PageClass::kPrivate);
  EXPECT_FALSE(ev.reclassified);
  EXPECT_EQ(pc.private_pages(), 1u);
}

TEST(PageClassifier, SecondCoreFlipsToShared) {
  PageClassifier pc;
  pc.on_access(0, 0x3000);
  const PageEvent ev = pc.on_access(1, 0x3040);
  EXPECT_EQ(ev.cls, PageClass::kShared);
  EXPECT_TRUE(ev.reclassified);
  EXPECT_EQ(pc.classify(0x3000), PageClass::kShared);
  EXPECT_EQ(pc.owner(0x3000), kInvalidCore);
  EXPECT_EQ(pc.reclassifications(), 1u);
}

TEST(PageClassifier, ReclassificationHappensAtMostOnce) {
  // Paper Sec. IV-C: "private pages are reclassified at most once, and the
  // S-NUCA mapping is never reverted".
  PageClassifier pc;
  pc.on_access(0, 0x4000);
  pc.on_access(1, 0x4000);
  const PageEvent ev1 = pc.on_access(2, 0x4000);
  const PageEvent ev2 = pc.on_access(0, 0x4000);
  EXPECT_FALSE(ev1.reclassified);
  EXPECT_FALSE(ev2.reclassified);
  EXPECT_EQ(pc.reclassifications(), 1u);
}

TEST(PageClassifier, CountsTrackState) {
  PageClassifier pc;
  pc.on_access(0, 0 * kPageBytes);
  pc.on_access(0, 1 * kPageBytes);
  pc.on_access(1, 2 * kPageBytes);
  pc.on_access(1, 1 * kPageBytes);  // Flip page 1.
  EXPECT_EQ(pc.private_pages(), 2u);
  EXPECT_EQ(pc.shared_pages(), 1u);
}

TEST(PageClassifier, PageGranularityIs4K) {
  PageClassifier pc;
  pc.on_access(0, 0x0);
  const PageEvent same = pc.on_access(1, 0xFFF);   // Same page -> flip.
  EXPECT_TRUE(same.reclassified);
  const PageEvent other = pc.on_access(1, 0x1000);  // Next page -> private.
  EXPECT_EQ(other.cls, PageClass::kPrivate);
}

TEST(PageClassifier, UntouchedQueries) {
  PageClassifier pc;
  EXPECT_EQ(pc.classify(0x9000), PageClass::kUntouched);
  EXPECT_EQ(pc.owner(0x9000), kInvalidCore);
}

TEST(PageClassifier, ResetClears) {
  PageClassifier pc;
  pc.on_access(0, 0x1000);
  pc.on_access(1, 0x1000);
  pc.reset();
  EXPECT_EQ(pc.private_pages(), 0u);
  EXPECT_EQ(pc.shared_pages(), 0u);
  EXPECT_EQ(pc.classify(0x1000), PageClass::kUntouched);
}

}  // namespace
}  // namespace delta::core
