#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generator.hpp"
#include "workload/mixes.hpp"
#include "workload/spec.hpp"

namespace delta::workload {
namespace {

TEST(SpecRegistry, Has29Profiles) {
  EXPECT_EQ(spec_profiles().size(), 29u);
}

TEST(SpecRegistry, LookupByShortAndFullName) {
  EXPECT_EQ(spec_profile("xa").name, "xalancbmk");
  EXPECT_EQ(spec_profile("xalancbmk").short_name, "xa");
  EXPECT_TRUE(has_spec_profile("mcf"));
  EXPECT_FALSE(has_spec_profile("nosuch"));
  EXPECT_THROW(spec_profile("nosuch"), std::out_of_range);
}

TEST(SpecRegistry, ShortNamesUnique) {
  std::set<std::string> names;
  for (const auto& p : spec_profiles()) names.insert(p.short_name);
  EXPECT_EQ(names.size(), spec_profiles().size());
}

TEST(SpecRegistry, RingWeightsSumToOne) {
  for (const auto& p : spec_profiles()) {
    for (const auto& ph : p.phases) {
      double w = 0.0;
      for (const auto& r : ph.rings) w += r.weight;
      EXPECT_NEAR(w, 1.0, 1e-9) << p.name;
      EXPECT_GT(ph.mlp, 0.0) << p.name;
      EXPECT_GT(ph.cpi_base, 0.0) << p.name;
      EXPECT_GT(ph.apki, 0.0) << p.name;
    }
  }
}

TEST(SpecRegistry, TableIIIClassCounts) {
  std::map<AppClass, int> counts;
  for (const auto& p : spec_profiles()) ++counts[p.cls];
  EXPECT_EQ(counts[AppClass::kInsensitive], 5);
  EXPECT_EQ(counts[AppClass::kThrashing], 3);
  EXPECT_EQ(counts[AppClass::kSensitiveLow], 9);
  EXPECT_EQ(counts[AppClass::kSensitiveLowMedium], 12);
}

TEST(TraceGen, DeterministicForEqualSeeds) {
  const AppProfile& p = spec_profile("mcf");
  TraceGen a(p, 0, 42), b(p, 0, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(TraceGen, DifferentSeedsDiverge) {
  const AppProfile& p = spec_profile("mcf");
  TraceGen a(p, 0, 1), b(p, 0, 2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 100);
}

TEST(TraceGen, RespectsBaseAddress) {
  const AppProfile& p = spec_profile("povray");
  const Addr base = Addr{7} << 34;
  TraceGen g(p, base, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(g.next(), block_of(base));
}

TEST(TraceGen, StreamRingNeverRehitsSoon) {
  // libquantum's stream component: consecutive stream addresses distinct.
  AppProfile p;
  p.name = "stream-only";
  p.short_name = "st";
  Phase ph;
  ph.rings = {Ring{0, 1.0, RingKind::kStream}};
  p.phases.push_back(ph);
  TraceGen g(p, 0, 9);
  std::set<BlockAddr> seen;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(seen.insert(g.next()).second);
}

TEST(TraceGen, LoopRingCyclesExactly) {
  AppProfile p;
  p.name = "loop-only";
  p.short_name = "lo";
  Phase ph;
  ph.rings = {Ring{64 * kLineBytes, 1.0, RingKind::kLoop}};
  p.phases.push_back(ph);
  TraceGen g(p, 0, 4);
  const BlockAddr first = g.next();
  for (int i = 1; i < 64; ++i) g.next();
  EXPECT_EQ(g.next(), first);  // Period 64 lines.
}

TEST(TraceGen, PhaseSwitchingChangesPhasePointer) {
  const AppProfile& p = spec_profile("gcc");
  ASSERT_GE(p.phases.size(), 2u);
  TraceGen g(p, 0, 5);
  std::set<const Phase*> phases_seen;
  for (std::uint64_t e = 0; e < 4 * p.phase_len_epochs; ++e) {
    g.set_epoch(e);
    phases_seen.insert(&g.phase());
  }
  EXPECT_EQ(phases_seen.size(), 2u);
}

TEST(TraceGen, SinglePhaseIgnoresEpoch) {
  const AppProfile& p = spec_profile("povray");
  TraceGen g(p, 0, 5);
  const Phase* ph = &g.phase();
  g.set_epoch(12345);
  EXPECT_EQ(&g.phase(), ph);
}

TEST(Mixes, FifteenMixesOfSixteen) {
  const auto& mixes = table4_mixes();
  ASSERT_EQ(mixes.size(), 15u);
  for (const auto& m : mixes) {
    EXPECT_EQ(m.apps.size(), 16u) << m.name;
    for (const auto& a : m.apps) EXPECT_TRUE(has_spec_profile(a)) << m.name << " " << a;
  }
}

TEST(Mixes, W2ContainsThePaperCaseStudyApps) {
  const Mix& w2 = table4_mix("w2");
  // Sec. IV-A analyses xalancbmk and soplex inside w2 (see the transcription
  // note in mixes.hpp).
  EXPECT_NE(std::find(w2.apps.begin(), w2.apps.end(), "xa"), w2.apps.end());
  EXPECT_NE(std::find(w2.apps.begin(), w2.apps.end(), "so"), w2.apps.end());
}

TEST(Mixes, W13ContainsLbmAndLibquantum) {
  const Mix& w13 = table4_mix("w13");
  EXPECT_NE(std::find(w13.apps.begin(), w13.apps.end(), "lb"), w13.apps.end());
  EXPECT_NE(std::find(w13.apps.begin(), w13.apps.end(), "li"), w13.apps.end());
}

TEST(Mixes, Replicate4Makes64) {
  const Mix big = replicate4(table4_mix("w1"));
  EXPECT_EQ(big.apps.size(), 64u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(big.apps[i], big.apps[i + 16]);
    EXPECT_EQ(big.apps[i], big.apps[i + 48]);
  }
}

TEST(Mixes, UnknownMixThrows) {
  EXPECT_THROW(table4_mix("w99"), std::out_of_range);
}

}  // namespace
}  // namespace delta::workload
