#include <gtest/gtest.h>

#include <set>

#include "mem/address.hpp"

namespace delta::mem {
namespace {

TEST(Reverse8, KnownValues) {
  EXPECT_EQ(reverse8(0x00), 0x00);
  EXPECT_EQ(reverse8(0xFF), 0xFF);
  EXPECT_EQ(reverse8(0x01), 0x80);
  EXPECT_EQ(reverse8(0x80), 0x01);
  EXPECT_EQ(reverse8(0b10010110), 0b01101001);
}

TEST(Reverse8, IsAnInvolution) {
  for (int v = 0; v < 256; ++v)
    EXPECT_EQ(reverse8(reverse8(static_cast<std::uint8_t>(v))), v);
}

TEST(Reverse8, IsABijection) {
  std::set<int> seen;
  for (int v = 0; v < 256; ++v) seen.insert(reverse8(static_cast<std::uint8_t>(v)));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Address, SetIndexUsesLowBits) {
  EXPECT_EQ(set_index(0, 9), 0u);
  EXPECT_EQ(set_index(511, 9), 511u);
  EXPECT_EQ(set_index(512, 9), 0u);
  EXPECT_EQ(set_index(513, 9), 1u);
}

TEST(Address, BankSelectByteSitsAboveSetIndex) {
  // Fig. 2: the 8 bits directly above the set index form the selector.
  const BlockAddr block = (0xABull << 9) | 0x155;
  EXPECT_EQ(bank_select_byte(block, 9), 0xAB);
  EXPECT_EQ(chunk_of(block, 9), reverse8(0xAB));
}

TEST(Address, ConsecutiveBlocksSpreadChunksWithBitReversal) {
  // Sequential blocks 512 apart differ in the low selector bits; reversal
  // turns those into high chunk bits, so chunks jump across the space --
  // the paper's uniform-footprint-distribution argument.
  const int c0 = chunk_of(0ull << 9, 9);
  const int c1 = chunk_of(1ull << 9, 9);
  EXPECT_EQ(c0, 0);
  EXPECT_EQ(c1, 128);  // bit 0 -> bit 7.
  EXPECT_EQ(chunk_of(2ull << 9, 9), 64);
  EXPECT_EQ(chunk_of(3ull << 9, 9), 192);
}

TEST(Address, SnucaInterleavesLines) {
  EXPECT_EQ(snuca_bank(0, 16), 0);
  EXPECT_EQ(snuca_bank(1, 16), 1);
  EXPECT_EQ(snuca_bank(16, 16), 0);
  EXPECT_EQ(snuca_set_index(16, 16, 9), 1u);
  EXPECT_EQ(snuca_set_index(16 * 512, 16, 9), 0u);
}

TEST(Address, ChunksPartitionUniformFootprint) {
  // A uniform footprint touches every chunk roughly equally.
  int counts[kNumChunks] = {};
  for (BlockAddr b = 0; b < 256 * 512; ++b) ++counts[chunk_of(b, 9)];
  for (int c = 0; c < kNumChunks; ++c) EXPECT_EQ(counts[c], 512);
}

}  // namespace
}  // namespace delta::mem
