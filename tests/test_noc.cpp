#include <gtest/gtest.h>

#include "noc/mcu.hpp"
#include "noc/mesh.hpp"
#include "noc/traffic.hpp"

namespace delta::noc {
namespace {

TEST(Mesh, CoordinatesRoundTrip) {
  Mesh m(4, 4);
  for (int t = 0; t < m.tiles(); ++t) EXPECT_EQ(m.tile(m.coord(t)), t);
  EXPECT_EQ(m.coord(5).x, 1);
  EXPECT_EQ(m.coord(5).y, 1);
}

TEST(Mesh, ManhattanHops) {
  Mesh m(4, 4);
  EXPECT_EQ(m.hops(0, 0), 0);
  EXPECT_EQ(m.hops(0, 3), 3);
  EXPECT_EQ(m.hops(0, 15), 6);
  EXPECT_EQ(m.hops(5, 6), 1);
  EXPECT_EQ(m.hops(5, 9), 1);
}

TEST(Mesh, LatencyIsFourCyclesPerHop) {
  Mesh m(8, 8);
  EXPECT_EQ(m.latency(0, 0), 0u);
  EXPECT_EQ(m.latency(0, 1), 4u);
  EXPECT_EQ(m.round_trip(0, 63), 2u * 14 * 4);
}

TEST(Mesh, XyRouteIsDimensionOrdered) {
  Mesh m(4, 4);
  const auto path = m.route(0, 10);  // (0,0) -> (2,2).
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 2);   // X first.
  EXPECT_EQ(path[3], 6);   // then Y.
  EXPECT_EQ(path.back(), 10);
}

TEST(Mesh, ByDistanceStartsWithNeighbours) {
  Mesh m(4, 4);
  const auto order = m.by_distance(5);
  ASSERT_EQ(order.size(), 15u);
  // Distance-1 neighbours of tile 5 are 1, 4, 6, 9.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 4);
  EXPECT_EQ(order[2], 6);
  EXPECT_EQ(order[3], 9);
  // Monotone non-decreasing distance.
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(m.hops(5, order[i - 1]), m.hops(5, order[i]));
}

TEST(Mesh, MeanHopsGrowsWithMeshSize) {
  Mesh m4(4, 4), m8(8, 8);
  const double h4 = m4.mean_hops_from(5);
  const double h8 = m8.mean_hops_from(9);
  EXPECT_GT(h8, h4);
  EXPECT_NEAR(m4.mean_hops_from(0), 3.0, 1e-9);  // (mean x) + (mean y) = 1.5+1.5.
}

TEST(Traffic, CountsPerType) {
  TrafficStats t;
  t.count(MsgType::kChallenge, 3);
  t.count(MsgType::kLlcRequest, 100);
  t.count(MsgType::kMemRequest, 10);
  t.count(MsgType::kIntraFeedback);
  EXPECT_EQ(t.total(MsgType::kChallenge), 3u);
  EXPECT_EQ(t.control_messages(), 4u);
  EXPECT_EQ(t.demand_messages(), 110u);
  t.count(MsgType::kMarketBid, 5);
  t.count(MsgType::kMarketGrant, 2);
  EXPECT_EQ(t.control_messages(), 11u);  // Auction traffic is control-plane.
  t.reset();
  EXPECT_EQ(t.control_messages(), 0u);
}

TEST(Mcu, IdleLatencyWhenUnloaded) {
  MemoryController mcu;
  EXPECT_EQ(mcu.request_latency(), 320u);
  mcu.end_epoch(400'000);
  EXPECT_EQ(mcu.queue_delay(), 0u);  // 1 request in 400K cycles ~ idle.
}

TEST(Mcu, QueueDelayGrowsWithLoad) {
  MemoryController mcu;
  // Saturating load: capacity is ~19.7K lines per 400K-cycle epoch.
  for (int i = 0; i < 15'000; ++i) mcu.request_latency();
  mcu.end_epoch(400'000);
  const Cycles moderate = mcu.queue_delay();
  EXPECT_GT(moderate, 0u);
  for (int i = 0; i < 40'000; ++i) mcu.request_latency();
  mcu.end_epoch(400'000);
  EXPECT_GT(mcu.queue_delay(), moderate);
  EXPECT_LE(mcu.queue_delay(), 2000u);  // Clamped.
}

TEST(Mcu, UtilizationReported) {
  MemoryController mcu;
  for (int i = 0; i < 10'000; ++i) mcu.request_latency();
  mcu.end_epoch(400'000);
  EXPECT_GT(mcu.utilization(), 0.4);
  EXPECT_LT(mcu.utilization(), 0.7);
}

TEST(MemorySystem, InterleavesAcrossMcus) {
  MemorySystem ms(4, 4, 4);
  EXPECT_EQ(ms.num_mcus(), 4);
  EXPECT_EQ(ms.mcu_for(0), 0);
  EXPECT_EQ(ms.mcu_for(5), 1);
  // Attachment tiles sit on the top/bottom rows.
  for (int i = 0; i < 4; ++i) {
    const int tile = ms.attach_tile(i);
    const int row = tile / 4;
    EXPECT_TRUE(row == 0 || row == 3) << tile;
  }
}

TEST(MemorySystem, EightMcusOn8x8) {
  MemorySystem ms(8, 8, 8);
  for (int i = 0; i < 8; ++i) {
    const int tile = ms.attach_tile(i);
    const int row = tile / 8;
    EXPECT_TRUE(row == 0 || row == 7);
  }
}

}  // namespace
}  // namespace delta::noc
