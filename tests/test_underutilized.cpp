// The idle-bank fast path end-to-end: DELTA must exploit idle tiles'
// capacity (paper Sec. II-B1) where the private configuration cannot.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/runner.hpp"

namespace delta::sim {
namespace {

MachineConfig quick() {
  MachineConfig c = config16();
  c.warmup_epochs = 40;
  c.measure_epochs = 120;
  return c;
}

TEST(Underutilized, DeltaGrabsIdleBanks) {
  MachineConfig cfg = quick();
  std::vector<std::string> apps(16, "idle");
  apps[0] = "mc";
  apps[8] = "om";
  workload::Mix mix;
  mix.name = "under";
  mix.apps = apps;
  const MixResult r = run_mix(cfg, mix, SchemeKind::kDelta);
  // Both hungry apps grew well beyond their 16-way home banks.
  EXPECT_GT(r.apps[0].avg_ways, 30.0);
  EXPECT_GT(r.apps[8].avg_ways, 30.0);
}

TEST(Underutilized, DeltaBeatsPrivateWithIdleTiles) {
  MachineConfig cfg = quick();
  std::vector<std::string> apps(16, "idle");
  apps[0] = "mc";
  apps[4] = "so";
  apps[8] = "om";
  apps[12] = "bz";
  workload::Mix mix;
  mix.name = "under4";
  mix.apps = apps;
  const MixResult priv = run_mix(cfg, mix, SchemeKind::kPrivate);
  const MixResult dlt = run_mix(cfg, mix, SchemeKind::kDelta);
  EXPECT_GT(speedup(dlt, priv), 1.05)
      << "DELTA should turn 12 idle banks into capacity; private cannot";
}

TEST(Underutilized, MetricsSkipIdleCores) {
  MachineConfig cfg = quick();
  cfg.measure_epochs = 40;
  std::vector<std::string> apps(16, "idle");
  apps[0] = "hm";
  workload::Mix mix;
  mix.name = "one";
  mix.apps = apps;
  const MixResult priv = run_mix(cfg, mix, SchemeKind::kPrivate);
  const MixResult dlt = run_mix(cfg, mix, SchemeKind::kDelta);
  const double a = antt(dlt, priv);
  const double s = stp(dlt, priv);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_GT(a, 0.0);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 2.0);  // One active app -> STP ~ 1.
}

}  // namespace
}  // namespace delta::sim
