// Unit tests for the phase-effect checker (src/lint/phase_check.hpp): the
// sim::Scheme thread-locality contract, verified over synthetic scheme
// snippets — good schemes pass, each contract violation is caught at the
// right line, and both annotation escapes (`// delta-phase: epoch-constant`
// and `// delta-lint: allow(phase-effect)`) are honored.
#include "lint/phase_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lint/lint.hpp"

namespace delta::lint {
namespace {

std::vector<Finding> check(std::string_view text) {
  FileInfo info;
  info.path_label = "src/fake/scheme.cpp";
  return phase_check(info, text);
}

bool mentions(const std::vector<Finding>& fs, std::string_view needle) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.detail.find(needle) != std::string::npos;
  });
}

// ---------------------------------------------------------------- clean schemes

TEST(PhaseCheck, ConstHooksReadingPlainMembersAreClean) {
  const auto fs = check(
      "class GoodScheme : public Scheme {\n"
      " public:\n"
      "  BankTarget map(const Chip& chip, CoreId core, BlockAddr b) const override {\n"
      "    return BankTarget{route(core, b), 0};\n"
      "  }\n"
      "  mem::WayMask insert_mask(const Chip&, CoreId, BankId bank) const override {\n"
      "    return masks_[bank];\n"
      "  }\n"
      " private:\n"
      "  BankId route(CoreId c, BlockAddr b) const { return table_[c]; }\n"
      "  std::vector<BankId> table_;\n"
      "  std::vector<mem::WayMask> masks_;\n"
      "};\n");
  EXPECT_TRUE(fs.empty());
}

TEST(PhaseCheck, NonSchemeClassesAreNotChecked) {
  const auto fs = check(
      "class Helper {\n"
      " public:\n"
      "  int map(int x) { count_ += 1; return count_; }\n"
      " private:\n"
      "  int count_ = 0;\n"
      "};\n");
  EXPECT_TRUE(fs.empty());
}

TEST(PhaseCheck, MutationInBeginEpochIsLegal) {
  // begin_epoch runs on the epoch barrier — it is outside the during-epoch
  // closure and may rewrite anything.
  const auto fs = check(
      "class EpochScheme : public Scheme {\n"
      " public:\n"
      "  void begin_epoch(Chip& chip, std::uint64_t e) override {\n"
      "    alloc_ = recompute(chip);\n"
      "    epoch_ = e;\n"
      "  }\n"
      "  BankTarget map(const Chip&, CoreId c, BlockAddr) const override {\n"
      "    return BankTarget{alloc_[c], 0};\n"
      "  }\n"
      " private:\n"
      "  std::vector<BankId> alloc_;\n"
      "  std::uint64_t epoch_ = 0;\n"
      "};\n");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------- violations

TEST(PhaseCheck, FieldWriteInsideInsertMaskIsRejected) {
  // The acceptance-criteria fixture: a deliberately broken scheme that
  // counts calls from inside a during-epoch hook.
  const auto fs = check(
      "class BrokenScheme : public Scheme {\n"
      " public:\n"
      "  mem::WayMask insert_mask(const Chip&, CoreId, BankId) const override {\n"
      "    calls_ += 1;\n"
      "    return mask_;\n"
      "  }\n"
      " private:\n"
      "  mutable long calls_ = 0;\n"
      "  mem::WayMask mask_;\n"
      "};\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "phase-effect");
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_TRUE(mentions(fs, "writes member field 'calls_'"));
}

TEST(PhaseCheck, NonConstHookIsFlagged) {
  const auto fs = check(
      "class Drifty : public Scheme {\n"
      " public:\n"
      "  BankTarget map(const Chip&, CoreId c, BlockAddr) override {\n"
      "    return BankTarget{0, 0};\n"
      "  }\n"
      "};\n");
  ASSERT_FALSE(fs.empty());
  EXPECT_TRUE(mentions(fs, "'Drifty::map' is not const-qualified"));
}

TEST(PhaseCheck, NonConstCallChainIsFlaggedTransitively) {
  // The hook itself is const, but it reaches a non-const helper that
  // mutates a member — the closure walk must catch both the helper's
  // missing const and the write inside it.
  const auto fs = check(
      "class ChainScheme : public Scheme {\n"
      " public:\n"
      "  BankTarget map(const Chip&, CoreId c, BlockAddr) const override {\n"
      "    return BankTarget{pick(c), 0};\n"
      "  }\n"
      " private:\n"
      "  BankId pick(CoreId c) { last_ = c; return 0; }\n"
      "  CoreId last_ = 0;\n"
      "};\n");
  EXPECT_TRUE(mentions(fs, "'ChainScheme::pick' is not const-qualified"));
  EXPECT_TRUE(mentions(fs, "writes member field 'last_'"));
}

TEST(PhaseCheck, PointerMemberCallIsFlaggedWithoutAnnotation) {
  const auto fs = check(
      "class PtrScheme : public Scheme {\n"
      " public:\n"
      "  BankTarget map(const Chip&, CoreId c, BlockAddr b) const override {\n"
      "    return BankTarget{ctrl_->bank_for(c, b), 0};\n"
      "  }\n"
      " private:\n"
      "  std::unique_ptr<Controller> ctrl_;\n"
      "};\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(mentions(fs, "call through pointer member 'ctrl_'"));
  // The suggestion names the declaration line to annotate.
  EXPECT_NE(fs[0].suggestion.find("delta-phase: epoch-constant"),
            std::string::npos);
  EXPECT_NE(fs[0].suggestion.find("scheme.cpp:7"), std::string::npos);
}

TEST(PhaseCheck, BannedCrossBankChipCallIsFlagged) {
  const auto fs = check(
      "class Invalidator : public Scheme {\n"
      " public:\n"
      "  mem::WayMask insert_mask(const Chip& chip, CoreId c, BankId) const override {\n"
      "    chip.invalidate_core_chunks(c);\n"
      "    return mem::WayMask{};\n"
      "  }\n"
      "};\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(mentions(fs, "cross-bank chip state 'invalidate_core_chunks()'"));
  EXPECT_TRUE(mentions(fs, "begin_epoch()"));
}

TEST(PhaseCheck, NonConstRefBindToMemberIsFlagged) {
  const auto fs = check(
      "class RefScheme : public Scheme {\n"
      " public:\n"
      "  void on_insertion(Chip&, CoreId o, BankId bank,\n"
      "                    const mem::AccessResult&) override {\n"
      "    auto& e = slots_[bank];\n"
      "    e.bump(o);\n"
      "  }\n"
      " private:\n"
      "  std::vector<Slot> slots_;\n"
      "};\n");
  EXPECT_TRUE(mentions(fs, "binds a non-const reference to member field"));
}

TEST(PhaseCheck, ConstRefBindIsClean) {
  const auto fs = check(
      "class ConstRefScheme : public Scheme {\n"
      " public:\n"
      "  CoreId evict_preference(const Chip&, CoreId, BankId bank) const override {\n"
      "    const auto& e = slots_[bank];\n"
      "    return e.victim();\n"
      "  }\n"
      " private:\n"
      "  std::vector<Slot> slots_;\n"
      "};\n");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------- annotations

TEST(PhaseCheck, EpochConstantAnnotationExemptsPointerCalls) {
  const auto fs = check(
      "class AnnotatedScheme : public Scheme {\n"
      " public:\n"
      "  BankTarget map(const Chip&, CoreId c, BlockAddr b) const override {\n"
      "    return BankTarget{ctrl_->bank_for(c, b), 0};\n"
      "  }\n"
      " private:\n"
      "  std::unique_ptr<Controller> ctrl_;  // delta-phase: epoch-constant\n"
      "};\n");
  EXPECT_TRUE(fs.empty());
}

TEST(PhaseCheck, EpochConstantDoesNotExemptWrites) {
  // The annotation promises the *pointee* is frozen during the epoch; a
  // direct assignment to the member is a write and stays flagged.
  const auto fs = check(
      "class Cheater : public Scheme {\n"
      " public:\n"
      "  mem::WayMask insert_mask(const Chip&, CoreId, BankId) const override {\n"
      "    cache_ = nullptr;\n"
      "    return mem::WayMask{};\n"
      "  }\n"
      " private:\n"
      "  mutable Controller* cache_;  // delta-phase: epoch-constant\n"
      "};\n");
  EXPECT_TRUE(mentions(fs, "writes member field 'cache_'"));
}

TEST(PhaseCheck, LineSuppressionIsHonored) {
  const auto fs = check(
      "class Waived : public Scheme {\n"
      " public:\n"
      "  void on_insertion(Chip&, CoreId o, BankId bank,\n"
      "                    const mem::AccessResult&) override {\n"
      "    auto& e = slots_[bank];  // delta-lint: allow(phase-effect)\n"
      "    e.bump(o);\n"
      "  }\n"
      " private:\n"
      "  std::vector<Slot> slots_;\n"
      "};\n");
  EXPECT_TRUE(fs.empty());
}

TEST(PhaseCheck, SuggestionsArePasteReady) {
  const auto fs = check(
      "class Sloppy : public Scheme {\n"
      " public:\n"
      "  mem::WayMask insert_mask(const Chip&, CoreId, BankId) const override {\n"
      "    hits_ += 1;\n"
      "    return mem::WayMask{};\n"
      "  }\n"
      " private:\n"
      "  mutable long hits_ = 0;\n"
      "};\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].suggestion.find("// delta-lint: allow(phase-effect)"),
            std::string::npos);
  EXPECT_NE(fs[0].suggestion.find("src/fake/scheme.cpp:4"), std::string::npos);
}

}  // namespace
}  // namespace delta::lint
