#include <gtest/gtest.h>

#include "core/way_partition.hpp"

namespace delta::core {
namespace {

TEST(WpUnit, InitialOwnerEverywhere) {
  WpUnit wp(16, 3);
  EXPECT_EQ(wp.ways_of(3), 16);
  EXPECT_EQ(wp.mask_of(3), 0xFFFFu);
  EXPECT_EQ(wp.mask_of(4), 0u);
  EXPECT_EQ(wp.partitions(), std::vector<CoreId>{3});
}

TEST(WpUnit, TransferMovesHighestWaysFirst) {
  WpUnit wp(16, 5);
  const int moved = wp.transfer(5, 4, 4);
  EXPECT_EQ(moved, 4);
  // Paper Fig. 3: ways 12-15 go to the challenger.
  for (int w = 12; w < 16; ++w) EXPECT_EQ(wp.owner(w), 4);
  for (int w = 0; w < 12; ++w) EXPECT_EQ(wp.owner(w), 5);
  EXPECT_EQ(wp.mask_of(4), 0xF000u);
}

TEST(WpUnit, TransferCappedByAvailability) {
  WpUnit wp(8, 0);
  wp.transfer(0, 1, 3);
  EXPECT_EQ(wp.transfer(1, 2, 10), 3);
  EXPECT_EQ(wp.ways_of(1), 0);
  EXPECT_EQ(wp.ways_of(2), 3);
}

TEST(WpUnit, TransferFromNonOwnerMovesNothing) {
  WpUnit wp(8, 0);
  EXPECT_EQ(wp.transfer(7, 1, 4), 0);
  EXPECT_EQ(wp.ways_of(0), 8);
}

TEST(WpUnit, MasksAreDisjointAndComplete) {
  WpUnit wp(16, 0);
  wp.transfer(0, 1, 5);
  wp.transfer(0, 2, 3);
  const mem::WayMask m0 = wp.mask_of(0), m1 = wp.mask_of(1), m2 = wp.mask_of(2);
  EXPECT_EQ(m0 & m1, 0u);
  EXPECT_EQ(m0 & m2, 0u);
  EXPECT_EQ(m1 & m2, 0u);
  EXPECT_EQ(m0 | m1 | m2, 0xFFFFu);
}

TEST(WpUnit, WaysConservedThroughTransfers) {
  WpUnit wp(16, 0);
  wp.transfer(0, 1, 6);
  wp.transfer(1, 2, 2);
  wp.transfer(0, 2, 1);
  EXPECT_EQ(wp.ways_of(0) + wp.ways_of(1) + wp.ways_of(2), 16);
}

TEST(WpUnit, PartitionsListsDistinctOwners) {
  WpUnit wp(16, 0);
  wp.transfer(0, 3, 4);
  wp.transfer(0, 7, 4);
  const auto parts = wp.partitions();
  EXPECT_EQ(parts.size(), 3u);
}

TEST(WpUnit, AssignAllHandsOverBank) {
  WpUnit wp(16, 2);
  wp.transfer(2, 5, 4);
  wp.assign_all(9);
  EXPECT_EQ(wp.ways_of(9), 16);
  EXPECT_EQ(wp.partitions(), std::vector<CoreId>{9});
}

TEST(WpUnit, SetOwnerDirect) {
  WpUnit wp(4, kInvalidCore);
  wp.set_owner(0, 1);
  wp.set_owner(1, 1);
  wp.set_owner(2, 2);
  EXPECT_EQ(wp.ways_of(1), 2);
  EXPECT_EQ(wp.ways_of(2), 1);
  EXPECT_EQ(wp.owner(3), kInvalidCore);
}

TEST(WpUnit, StorageBitsFormula) {
  EXPECT_EQ(WpUnit::storage_bits(16, 16), 256u);
  EXPECT_EQ(WpUnit::storage_bits(64, 16), 1024u);
}

}  // namespace
}  // namespace delta::core
