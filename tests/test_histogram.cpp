// Edge-case coverage for common/histogram.hpp: the fixed-bin Histogram
// (empty quantiles, single samples, clamping, same-layout merge) and the
// power-of-two LogHistogram the prof metrics registry aggregates with
// (bucket boundaries, the top bucket, exact merge of disjoint ranges).
#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace delta {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(Histogram, EmptyQuantileReturnsLo) {
  const Histogram h(10.0, 20.0, 5);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSample) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
  EXPECT_EQ(h.count(3), 1u);
  // All mass in bin [3, 4): every quantile reports that bin's upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, OutOfRangeValuesClampToEndBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-100.0);
  h.add(10.0);    // hi is exclusive: lands in the last bin.
  h.add(1e18);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 3u);
  // The mean still uses the true values, not the clamped bins.
  EXPECT_DOUBLE_EQ(h.mean(), (-100.0 + 10.0 + 1e18) / 3.0);
}

TEST(Histogram, MergeOfDisjointOccupiedRanges) {
  Histogram low(0.0, 100.0, 10);
  Histogram high(0.0, 100.0, 10);
  low.add(5.0, 3);
  high.add(95.0, 7);
  low.merge(high);
  EXPECT_EQ(low.total(), 10u);
  EXPECT_EQ(low.count(0), 3u);
  EXPECT_EQ(low.count(9), 7u);
  EXPECT_DOUBLE_EQ(low.mean(), (5.0 * 3 + 95.0 * 7) / 10.0);
  // 30% of mass sits in bin 0; the median falls in the high bin.
  EXPECT_DOUBLE_EQ(low.quantile(0.3), 10.0);
  EXPECT_DOUBLE_EQ(low.quantile(0.5), 100.0);
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5, 9);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 0.0);
}

// ------------------------------------------------------------- LogHistogram

TEST(LogHistogram, EmptyState) {
  const LogHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(LogHistogram, SingleSample) {
  LogHistogram h;
  h.add(1000);  // bit_width(1000) == 10: bucket [512, 1024).
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.sum(), 1000u);
  EXPECT_EQ(h.count(10), 1u);
  EXPECT_EQ(h.quantile(0.5), 1023u);
}

TEST(LogHistogram, BucketBoundaries) {
  // Bucket 0 is exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b).
  EXPECT_EQ(LogHistogram::bucket_lo(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_hi(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_lo(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_hi(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_lo(4), 8u);
  EXPECT_EQ(LogHistogram::bucket_hi(4), 15u);
  EXPECT_EQ(LogHistogram::bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(LogHistogram::bucket_hi(64), UINT64_MAX);

  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.count(0), 1u);  // {0}
  EXPECT_EQ(h.count(1), 1u);  // {1}
  EXPECT_EQ(h.count(2), 2u);  // {2, 3}
  EXPECT_EQ(h.count(3), 1u);  // {4..7}
}

TEST(LogHistogram, TopBucketHoldsMaxValues) {
  LogHistogram h;
  h.add(UINT64_MAX);
  h.add(std::uint64_t{1} << 63);
  EXPECT_EQ(h.count(64), 2u);
  EXPECT_EQ(h.quantile(1.0), UINT64_MAX);
}

TEST(LogHistogram, MergeOfDisjointRangesIsExact) {
  // The value-independent bucket boundaries make merging exact even when
  // the occupied ranges are disjoint — the property the metrics registry
  // relies on when folding per-thread duration histograms.
  LogHistogram fast, slow, direct;
  for (std::uint64_t v : {3u, 5u, 7u}) {
    fast.add(v);
    direct.add(v);
  }
  for (std::uint64_t v : {100'000u, 200'000u}) {
    slow.add(v);
    direct.add(v);
  }
  fast.merge(slow);
  EXPECT_EQ(fast.total(), direct.total());
  EXPECT_EQ(fast.sum(), direct.sum());
  for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b)
    EXPECT_EQ(fast.count(b), direct.count(b)) << "bucket " << b;
  EXPECT_EQ(fast.quantile(0.5), direct.quantile(0.5));
}

TEST(LogHistogram, WeightsAndQuantiles) {
  LogHistogram h;
  h.add(10, 90);   // bucket 4: [8, 15]
  h.add(1000, 10); // bucket 10: [512, 1023]
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.quantile(0.5), 15u);
  EXPECT_EQ(h.quantile(0.90), 15u);
  EXPECT_EQ(h.quantile(0.95), 1023u);
  EXPECT_DOUBLE_EQ(h.mean(), (10.0 * 90 + 1000.0 * 10) / 100.0);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(42, 7);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.count(6), 0u);
}

}  // namespace
}  // namespace delta
