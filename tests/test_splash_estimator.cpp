// Unit tests of the Sec. IV-C estimation pipeline (beyond the end-to-end
// shape checks in test_integration).
#include <gtest/gtest.h>

#include "sim/splash_estimator.hpp"
#include "workload/splash.hpp"

namespace delta::sim {
namespace {

SplashConfig fast() {
  SplashConfig c;
  c.accesses_per_thread = 12'000;
  return c;
}

TEST(SplashEstimator, DeterministicAcrossCalls) {
  const auto& p = workload::splash_profile("fft");
  const SplashEstimate a = estimate_splash(p, config16(), fast());
  const SplashEstimate b = estimate_splash(p, config16(), fast());
  EXPECT_DOUBLE_EQ(a.delta_cycles, b.delta_cycles);
  EXPECT_DOUBLE_EQ(a.snuca_cycles, b.snuca_cycles);
  EXPECT_DOUBLE_EQ(a.private_pages_pct, b.private_pages_pct);
}

TEST(SplashEstimator, ClassifierTracksGroundTruthSharing) {
  for (const char* name : {"barnes", "cholesky", "water.nsq", "lu.cont"}) {
    const auto& p = workload::splash_profile(name);
    const SplashEstimate e = estimate_splash(p, config16(), fast());
    EXPECT_NEAR(e.private_pages_pct, p.target_private_pages_pct, 8.0) << name;
  }
}

TEST(SplashEstimator, PiecewiseReconstructionFormula) {
  const auto& p = workload::splash_profile("fmm");
  const SplashEstimate e = estimate_splash(p, config16(), fast());
  const double f = e.private_pages_pct / 100.0;
  EXPECT_NEAR(e.delta_cycles, f * e.private_cycles + (1.0 - f) * e.snuca_cycles,
              1e-6 * e.delta_cycles);
  EXPECT_NEAR(e.delta_speedup, e.snuca_cycles / e.delta_cycles, 1e-12);
}

TEST(SplashEstimator, PositiveCyclesForAllApps) {
  for (const auto& p : workload::splash_profiles()) {
    const SplashEstimate e = estimate_splash(p, config16(), fast());
    EXPECT_GT(e.snuca_cycles, 0.0) << p.name;
    EXPECT_GT(e.private_cycles, 0.0) << p.name;
    EXPECT_GT(e.delta_cycles, 0.0) << p.name;
  }
}

TEST(SplashEstimator, HeavySharingPunishesPrivateConfig) {
  // The private configuration replicates shared lines and eats coherence
  // invalidations; with a >6 MB shared region in 512 KB banks it must lose
  // to S-NUCA's single shared copy.
  // Needs enough accesses that the 6 MB shared region is past cold misses.
  SplashConfig scfg;
  scfg.accesses_per_thread = 40'000;
  const SplashEstimate lu =
      estimate_splash(workload::splash_profile("lu.cont"), config16(), scfg);
  EXPECT_GT(lu.private_cycles, lu.snuca_cycles);
}

TEST(SplashEstimator, AllPrivateAppPrefersPrivateConfig) {
  const SplashEstimate w =
      estimate_splash(workload::splash_profile("water.nsq"), config16(), fast());
  EXPECT_LT(w.private_cycles, w.snuca_cycles);
}

}  // namespace
}  // namespace delta::sim
