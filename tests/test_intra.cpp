// Intra-run engine determinism: the bank-sharded parallel epoch engine
// (sim/intra.hpp, MtChip's staged mode) must be byte-identical to the
// serial loop at every thread count.  These tests compare full JSON
// summaries — every per-app double, traffic counter and control-message
// count — because "close" is not the contract; bit-equal is.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sim/mt_sim.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workload/splash.hpp"

namespace delta {
namespace {

sim::MachineConfig quick16(int intra_jobs) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 10;
  cfg.measure_epochs = 30;
  cfg.intra_jobs = intra_jobs;
  return cfg;
}

sim::MachineConfig quick64(int intra_jobs) {
  sim::MachineConfig cfg = sim::config64();
  cfg.warmup_epochs = 5;
  cfg.measure_epochs = 10;
  cfg.intra_jobs = intra_jobs;
  return cfg;
}

std::string run_summary(const sim::MachineConfig& cfg, const std::string& mix,
                        sim::SchemeKind kind) {
  const sim::MixResult r =
      sim::run_mix(cfg, sim::mix_for_config(cfg, mix), kind);
  return sim::json_summary({&r, 1});
}

constexpr sim::SchemeKind kAllSchemes[] = {
    sim::SchemeKind::kSnuca,  sim::SchemeKind::kPrivate,
    sim::SchemeKind::kIdealCentralized, sim::SchemeKind::kDelta,
    sim::SchemeKind::kCarma,  sim::SchemeKind::kLfoc};

TEST(Intra, ByteIdenticalAllSchemes16Core) {
  for (const sim::SchemeKind kind : kAllSchemes) {
    const std::string serial = run_summary(quick16(1), "w2", kind);
    // 2, 4, and auto (hardware threads): one shard per thread, every
    // partitioning of the cores/banks must replay the same interleaving.
    EXPECT_EQ(serial, run_summary(quick16(2), "w2", kind))
        << "intra-jobs 2 diverged for " << sim::to_string(kind);
    EXPECT_EQ(serial, run_summary(quick16(4), "w2", kind))
        << "intra-jobs 4 diverged for " << sim::to_string(kind);
    EXPECT_EQ(serial, run_summary(quick16(0), "w2", kind))
        << "intra-jobs auto diverged for " << sim::to_string(kind);
  }
}

TEST(Intra, ByteIdentical64Tile) {
  // The 64-tile machine has 4x the banks and the replicated mix; keep the
  // run short but cover the schemes with during-epoch machinery (delta's
  // distributed controller, carma's auction enforcement, lfoc's slice
  // resizing) plus the S-NUCA baseline.  8 jobs oversubscribes a small CI
  // host, which is exactly the regime where stolen schedules differ most
  // between runs — and must still not differ in results.
  for (const sim::SchemeKind kind :
       {sim::SchemeKind::kDelta, sim::SchemeKind::kSnuca,
        sim::SchemeKind::kCarma, sim::SchemeKind::kLfoc}) {
    const std::string serial = run_summary(quick64(1), "w13", kind);
    EXPECT_EQ(serial, run_summary(quick64(4), "w13", kind))
        << "64-tile intra-jobs 4 diverged for " << sim::to_string(kind);
    EXPECT_EQ(serial, run_summary(quick64(8), "w13", kind))
        << "64-tile intra-jobs 8 diverged for " << sim::to_string(kind);
  }
}

TEST(Intra, ByteIdenticalWithPinningEnabled) {
  // Opt-in CPU affinity must be invisible to the computation: pinned and
  // unpinned runs of the same config agree with the serial loop.
  sim::MachineConfig pinned = quick64(8);
  pinned.intra_pin = true;
  EXPECT_EQ(run_summary(quick64(1), "w13", sim::SchemeKind::kDelta),
            run_summary(pinned, "w13", sim::SchemeKind::kDelta));
}

TEST(Intra, ByteIdenticalUnderInterleaveBatchOverride) {
  // interleave_batch IS part of the determinism contract: a different batch
  // interleaves the per-core streams differently and legitimately changes
  // results — but serial and intra must agree at any given value.
  for (const std::uint32_t batch : {1u, 5u, 32u}) {
    sim::MachineConfig serial_cfg = quick16(1);
    serial_cfg.interleave_batch = batch;
    sim::MachineConfig par_cfg = quick16(4);
    par_cfg.interleave_batch = batch;
    EXPECT_EQ(run_summary(serial_cfg, "w2", sim::SchemeKind::kDelta),
              run_summary(par_cfg, "w2", sim::SchemeKind::kDelta))
        << "interleave_batch " << batch << " diverged";
  }
  // And the override really is an override: batch 1 and the default batch
  // are different interleavings, so their results must differ.
  sim::MachineConfig one = quick16(1);
  one.interleave_batch = 1;
  EXPECT_NE(run_summary(one, "w2", sim::SchemeKind::kDelta),
            run_summary(quick16(1), "w2", sim::SchemeKind::kDelta));
}

TEST(Intra, ByteIdenticalAcrossApplySliceSizes) {
  // The apply-task slice size is pure scheduling: any value (including the
  // degenerate one-round slices) must reproduce the serial bytes.
  const std::string serial = run_summary(quick16(1), "w2", sim::SchemeKind::kDelta);
  for (const int rounds : {1, 3, 1000}) {
    sim::MachineConfig cfg = quick16(4);
    cfg.intra_apply_rounds = rounds;
    EXPECT_EQ(serial, run_summary(cfg, "w2", sim::SchemeKind::kDelta))
        << "intra_apply_rounds " << rounds << " diverged";
  }
}

TEST(Intra, MtSimStagedEngineByteIdentical) {
  // The staged mt engine has extra coupling points (page flips, directory
  // traffic), so every scheme kind exercises a different segmentation.
  sim::MtConfig mtc;
  mtc.accesses_per_thread = 20'000;
  for (const sim::SchemeKind kind :
       {sim::SchemeKind::kDelta, sim::SchemeKind::kSnuca,
        sim::SchemeKind::kPrivate}) {
    const auto& p = workload::splash_profile("cholesky");
    sim::MachineConfig serial_cfg = sim::config16();
    serial_cfg.intra_jobs = 1;
    sim::MachineConfig par_cfg = sim::config16();
    par_cfg.intra_jobs = 4;
    const sim::MtResult a = sim::run_multithreaded(serial_cfg, p, kind, mtc);
    const sim::MtResult b = sim::run_multithreaded(par_cfg, p, kind, mtc);
    // Bit-equal doubles, not EXPECT_NEAR: the engine preserves FP order.
    EXPECT_EQ(a.roi_cycles, b.roi_cycles) << sim::to_string(kind);
    EXPECT_EQ(a.mean_ipc, b.mean_ipc) << sim::to_string(kind);
    EXPECT_EQ(a.miss_rate, b.miss_rate) << sim::to_string(kind);
    EXPECT_EQ(a.mean_hops, b.mean_hops) << sim::to_string(kind);
    EXPECT_EQ(a.private_pages, b.private_pages) << sim::to_string(kind);
    EXPECT_EQ(a.shared_pages, b.shared_pages) << sim::to_string(kind);
    EXPECT_EQ(a.reclassifications, b.reclassifications) << sim::to_string(kind);
    EXPECT_EQ(a.page_invalidation_lines, b.page_invalidation_lines)
        << sim::to_string(kind);
  }
}

TEST(Intra, FuzzBatchThroughIntraEngine) {
  // Randomized configs (both enforcement flavours, both chunk encodings,
  // idle cores, tight cadences) through the parallel engine, with the
  // chip-wide invariant checker attached and the serial run as oracle.
  check::FuzzOptions serial;
  serial.cases = 3;
  serial.intra_jobs = 1;
  check::FuzzOptions par = serial;
  par.intra_jobs = 2;
  const check::FuzzReport a = check::run_fuzz(serial);
  const check::FuzzReport b = check::run_fuzz(par);
  ASSERT_EQ(a.cases.size(), b.cases.size());
  EXPECT_EQ(b.failures, 0);
  for (std::size_t i = 0; i < a.cases.size(); ++i)
    EXPECT_EQ(a.cases[i].json, b.cases[i].json)
        << "fuzz seed " << a.cases[i].seed << " diverged under intra-jobs 2";
}

TEST(Intra, SweepBudgetSplitPreservesResults) {
  // intra_jobs = 0 inside a sweep resolves to the leftover thread budget;
  // whatever the split turns out to be, results must match the all-serial
  // sweep byte for byte.
  const std::vector<workload::Mix> mixes = {
      sim::mix_for_config(quick16(1), "w2")};
  std::vector<sim::SweepJob> auto_jobs, serial_jobs;
  for (const sim::SchemeKind kind : kAllSchemes) {
    auto_jobs.push_back({quick16(0), mixes[0], kind, {}});
    serial_jobs.push_back({quick16(1), mixes[0], kind, {}});
  }
  const auto swept_auto = sim::run_sweep(auto_jobs, 2);
  const auto swept_serial = sim::run_sweep(serial_jobs, 1);
  ASSERT_EQ(swept_auto.size(), swept_serial.size());
  EXPECT_EQ(sim::json_summary(swept_auto), sim::json_summary(swept_serial));
}

TEST(Intra, ObservedSweepMergesToSerialTrace) {
  // delta_sim's --jobs + observability path: per-job observers merged in
  // scheme order must export the same trace/timeline a serial observed
  // comparison produces.
  const sim::MachineConfig cfg = quick16(1);
  const workload::Mix mix = sim::mix_for_config(cfg, "w2");

  obs::Observer serial_obs(obs::ObsLevel::kFull);
  for (const sim::SchemeKind kind : kAllSchemes)
    (void)sim::run_mix(cfg, mix, kind, {}, &serial_obs);

  std::vector<sim::SweepJob> jobs;
  std::vector<std::unique_ptr<obs::Observer>> job_obs;
  std::vector<obs::Observer*> ptrs;
  for (const sim::SchemeKind kind : kAllSchemes) {
    jobs.push_back({cfg, mix, kind, {}});
    job_obs.push_back(std::make_unique<obs::Observer>(obs::ObsLevel::kFull));
    ptrs.push_back(job_obs.back().get());
  }
  (void)sim::run_sweep_observed(jobs, ptrs, 4);
  obs::Observer merged(obs::ObsLevel::kFull);
  for (const auto& jo : job_obs) merged.merge_from(*jo);

  EXPECT_EQ(serial_obs.run_names(), merged.run_names());
  EXPECT_EQ(obs::chrome_trace_json(serial_obs), obs::chrome_trace_json(merged));
  EXPECT_EQ(obs::timeline_csv(serial_obs), obs::timeline_csv(merged));
}

}  // namespace
}  // namespace delta
