// White-box tests of the chip's timing model: interval accounting, MCU
// feedback, interleaving and traffic bookkeeping.
#include <gtest/gtest.h>

#include "sim/chip.hpp"
#include "sim/runner.hpp"

namespace delta::sim {
namespace {

MachineConfig tiny() {
  MachineConfig c = config16();
  c.warmup_epochs = 10;
  c.measure_epochs = 40;
  return c;
}

TEST(ChipInternals, CyclesAdvanceExactlyPerEpoch) {
  MachineConfig cfg = tiny();
  std::vector<std::string> apps(16, "po");
  Chip chip(cfg, apps, make_scheme(SchemeKind::kPrivate));
  const MixResult r = chip.run("t");
  for (const auto& a : r.apps) {
    EXPECT_EQ(chip.slot(a.core).cycles,
              static_cast<Cycles>(cfg.measure_epochs) * cfg.epoch_cycles);
  }
}

TEST(ChipInternals, InstructionsScaleInverselyWithCpi) {
  // A low-miss app must retire far more instructions than a thrasher with
  // similar apki in the same wall-clock window.
  MachineConfig cfg = tiny();
  std::vector<std::string> apps(16, "idle");
  apps[0] = "hm";  // ~5% misses at 512 KB.
  apps[1] = "li";  // ~100% misses.
  Chip chip(cfg, apps, make_scheme(SchemeKind::kPrivate));
  const MixResult r = chip.run("t");
  EXPECT_GT(r.apps[0].ipc, 1.5 * r.apps[1].ipc);
}

TEST(ChipInternals, HigherMlpHidesLatency) {
  // Same access stream, different MLP -> different IPC.  gamess (mlp 1.5)
  // vs zeusmp (mlp 2.5) differ, but we check the mechanism directly: the
  // measured avg latency contributes latency/mlp stalls.
  MachineConfig cfg = tiny();
  std::vector<std::string> apps(16, "idle");
  apps[0] = "le";
  Chip chip(cfg, apps, make_scheme(SchemeKind::kPrivate));
  const MixResult r = chip.run("t");
  const auto& ph = workload::spec_profile("le").phases.front();
  const double expected_cpi =
      ph.cpi_base + ph.apki / 1000.0 * r.apps[0].avg_latency / ph.mlp;
  EXPECT_NEAR(r.apps[0].cpi, expected_cpi, 0.05 * expected_cpi);
}

TEST(ChipInternals, MemoryTrafficMatchesMissCounts) {
  MachineConfig cfg = tiny();
  std::vector<std::string> apps(16, "ga");
  Chip chip(cfg, apps, make_scheme(SchemeKind::kPrivate));
  const MixResult r = chip.run("t");
  std::uint64_t misses = 0;
  for (const auto& a : r.apps) misses += a.llc_misses;
  EXPECT_EQ(r.traffic.total(noc::MsgType::kMemRequest), misses);
  EXPECT_EQ(r.traffic.total(noc::MsgType::kMemResponse), misses);
}

TEST(ChipInternals, LocalAccessesProduceNoNocDemandTraffic) {
  MachineConfig cfg = tiny();
  std::vector<std::string> apps(16, "po");  // Tiny working sets, ~no misses.
  Chip chip(cfg, apps, make_scheme(SchemeKind::kPrivate));
  const MixResult r = chip.run("t");
  EXPECT_EQ(r.traffic.total(noc::MsgType::kLlcRequest), 0u);
}

TEST(ChipInternals, SnucaRemoteAccessesCountLlcTraffic) {
  MachineConfig cfg = tiny();
  std::vector<std::string> apps(16, "po");
  Chip chip(cfg, apps, make_scheme(SchemeKind::kSnuca));
  const MixResult r = chip.run("t");
  EXPECT_GT(r.traffic.total(noc::MsgType::kLlcRequest), 0u);
  EXPECT_EQ(r.traffic.total(noc::MsgType::kLlcRequest),
            r.traffic.total(noc::MsgType::kLlcResponse));
}

TEST(ChipInternals, McuContentionRaisesLatencyUnderLoad) {
  // With a single memory channel, 16 thrashers overwhelm it (the paper's
  // 4-channel machine keeps them comfortably below saturation — verified
  // by the bounded latency in the 4-MCU configuration).
  MachineConfig cfg = tiny();
  cfg.num_mcus = 1;
  std::vector<std::string> alone(16, "idle");
  alone[0] = "bw";
  Chip a(cfg, alone, make_scheme(SchemeKind::kPrivate));
  const MixResult ra = a.run("alone");

  std::vector<std::string> crowd(16, "bw");
  Chip b(cfg, crowd, make_scheme(SchemeKind::kPrivate));
  const MixResult rb = b.run("crowd");
  EXPECT_GT(rb.apps[0].avg_latency, ra.apps[0].avg_latency + 100.0);

  // The paper's 4-channel configuration absorbs the same load.
  MachineConfig four = tiny();
  Chip c(four, crowd, make_scheme(SchemeKind::kPrivate));
  const MixResult rc = c.run("crowd4");
  EXPECT_LT(rc.apps[0].avg_latency, rb.apps[0].avg_latency);
}

TEST(ChipInternals, SeedChangesStreamsButNotScale) {
  MachineConfig cfg = tiny();
  MachineConfig cfg2 = tiny();
  cfg2.seed = cfg.seed + 1;
  std::vector<std::string> apps(16, "de");
  Chip a(cfg, apps, make_scheme(SchemeKind::kPrivate));
  Chip b(cfg2, apps, make_scheme(SchemeKind::kPrivate));
  const MixResult ra = a.run("a"), rb = b.run("b");
  EXPECT_NE(ra.apps[0].llc_misses, rb.apps[0].llc_misses);
  EXPECT_NEAR(ra.apps[0].ipc / rb.apps[0].ipc, 1.0, 0.05);
}

TEST(ChipInternals, PhasedAppsChangeBehaviourOverTime) {
  MachineConfig cfg = tiny();
  cfg.warmup_epochs = 0;
  std::vector<std::string> apps(16, "idle");
  apps[0] = "gc";  // 150-epoch phases.
  Chip chip(cfg, apps, make_scheme(SchemeKind::kPrivate));
  chip.run_epochs(10, false);
  const double cpi_early = chip.slot(0).cpi_est;
  // Advance beyond a phase boundary (offset is seed-dependent; cross
  // several boundaries to be sure).
  chip.run_epochs(300, false);
  double max_dev = 0.0;
  for (int i = 0; i < 30; ++i) {
    chip.run_epochs(10, false);
    max_dev = std::max(max_dev, std::abs(chip.slot(0).cpi_est - cpi_early));
  }
  EXPECT_GT(max_dev, 0.02 * cpi_early) << "phases never altered the CPI";
}

}  // namespace
}  // namespace delta::sim
