// Tier-2 `check` tests for the seeded fuzz harness and the
// differential-scheme oracle.
#include <gtest/gtest.h>

#include <vector>

#include "check/differential.hpp"
#include "check/fuzz.hpp"
#include "sim/runner.hpp"

namespace delta::check {
namespace {

FuzzOptions small_opts() {
  FuzzOptions opt;
  opt.cases = 2;
  opt.threads = 1;
  return opt;
}

TEST(Fuzz, SeededCasesAreViolationFree) {
  const FuzzOptions opt = small_opts();
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
    const FuzzCaseResult r = run_fuzz_case(seed, opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": "
                      << (r.violations.empty()
                              ? std::string("?")
                              : to_string(r.violations.front()));
    EXPECT_FALSE(r.json.empty());
    EXPECT_FALSE(r.mix_desc.empty());
  }
}

TEST(Fuzz, SameSeedYieldsByteIdenticalJson) {
  const FuzzOptions opt = small_opts();
  const FuzzCaseResult a = run_fuzz_case(7, opt);
  const FuzzCaseResult b = run_fuzz_case(7, opt);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.mix_desc, b.mix_desc);
}

TEST(Fuzz, DifferentSeedsDrawDifferentCases) {
  const FuzzOptions opt = small_opts();
  const FuzzCaseResult a = run_fuzz_case(7, opt);
  const FuzzCaseResult b = run_fuzz_case(8, opt);
  EXPECT_NE(a.json, b.json);
}

TEST(Fuzz, BatchReportsOrderedBySeed) {
  FuzzOptions opt = small_opts();
  opt.base_seed = 100;
  opt.cases = 3;
  const FuzzReport r = run_fuzz(opt);
  ASSERT_EQ(r.cases.size(), 3u);
  EXPECT_EQ(r.cases[0].seed, 100u);
  EXPECT_EQ(r.cases[1].seed, 101u);
  EXPECT_EQ(r.cases[2].seed, 102u);
  EXPECT_TRUE(r.ok()) << r.failures;
}

TEST(Fuzz, CarmaRegressionSeeds) {
  // Pinned seeds covering the auction scheme: the six-scheme pool must run
  // clean under the invariant checker and differential oracle, and the
  // summary must actually contain a carma run.
  const FuzzOptions opt = small_opts();
  for (std::uint64_t seed : {std::uint64_t{0xCA}, std::uint64_t{202}}) {
    const FuzzCaseResult r = run_fuzz_case(seed, opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": "
                      << (r.violations.empty()
                              ? std::string("?")
                              : to_string(r.violations.front()));
    EXPECT_NE(r.json.find("\"scheme\":\"carma\""), std::string::npos);
  }
}

TEST(Fuzz, LfocRegressionSeeds) {
  const FuzzOptions opt = small_opts();
  for (std::uint64_t seed : {std::uint64_t{0x1F0C}, std::uint64_t{203}}) {
    const FuzzCaseResult r = run_fuzz_case(seed, opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": "
                      << (r.violations.empty()
                              ? std::string("?")
                              : to_string(r.violations.front()));
    EXPECT_NE(r.json.find("\"scheme\":\"lfoc\""), std::string::npos);
  }
}

TEST(Fuzz, DeterministicAcrossRepeatAndThreadCounts) {
  FuzzOptions opt = small_opts();
  opt.cases = 3;
  const DeterminismReport same = verify_determinism(opt, 1, 1);
  EXPECT_TRUE(same.ok) << same.detail;
  const DeterminismReport cross = verify_determinism(opt, 1, 3);
  EXPECT_TRUE(cross.ok) << cross.detail;
}

TEST(Differential, RealLockstepComparisonIsClean) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 5;
  cfg.measure_epochs = 20;
  cfg.lockstep_accesses = true;
  const workload::Mix mix = sim::mix_for_config(cfg, "w1");
  const sim::SchemeComparison cmp = sim::compare_schemes(cfg, mix);
  const std::vector<sim::MixResult> results = {cmp.snuca, cmp.private_llc,
                                               cmp.ideal, cmp.delta};
  const std::vector<Violation> v = diff_schemes(results, /*lockstep=*/true);
  EXPECT_TRUE(v.empty()) << to_string(v.front());
}

TEST(Differential, CatchesTamperedAccessCounts) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 4;
  cfg.measure_epochs = 10;
  cfg.lockstep_accesses = true;
  const workload::Mix mix = sim::mix_for_config(cfg, "w1");
  std::vector<sim::MixResult> results = {
      sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca),
      sim::run_mix(cfg, mix, sim::SchemeKind::kPrivate)};
  results[1].apps[3].llc_accesses += 1;
  const std::vector<Violation> v = diff_schemes(results, /*lockstep=*/true);
  bool saw = false;
  for (const Violation& x : v) saw |= x.kind == InvariantKind::kAccessConservation;
  EXPECT_TRUE(saw);
}

TEST(Differential, CatchesBrokenMissConservation) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 4;
  cfg.measure_epochs = 10;
  const workload::Mix mix = sim::mix_for_config(cfg, "w1");
  std::vector<sim::MixResult> results = {
      sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca)};
  results[0].apps[0].llc_misses += 5;  // Misses no longer match mem requests.
  const std::vector<Violation> v = diff_schemes(results, /*lockstep=*/false);
  bool saw = false;
  for (const Violation& x : v) saw |= x.kind == InvariantKind::kDemandConservation;
  EXPECT_TRUE(saw);
}

TEST(Differential, CatchesControlTrafficFromStaticScheme) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 4;
  cfg.measure_epochs = 10;
  const workload::Mix mix = sim::mix_for_config(cfg, "w1");
  std::vector<sim::MixResult> results = {
      sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca)};
  results[0].control.challenge = 12;  // A static scheme must never challenge.
  const std::vector<Violation> v = diff_schemes(results, /*lockstep=*/false);
  bool saw = false;
  for (const Violation& x : v) saw |= x.kind == InvariantKind::kStaticControl;
  EXPECT_TRUE(saw);
}

TEST(Differential, CatchesLfocInvalidations) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 4;
  cfg.measure_epochs = 10;
  const workload::Mix mix = sim::mix_for_config(cfg, "w1");
  std::vector<sim::MixResult> results = {
      sim::run_mix(cfg, mix, sim::SchemeKind::kLfoc)};
  results[0].invalidated_lines = 3;  // Slice resizes must never invalidate.
  const std::vector<Violation> v = diff_schemes(results, /*lockstep=*/false);
  bool saw = false;
  for (const Violation& x : v) saw |= x.kind == InvariantKind::kStaticControl;
  EXPECT_TRUE(saw);
}

TEST(Differential, CatchesCarmaGrantWithoutBid) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 4;
  cfg.measure_epochs = 10;
  const workload::Mix mix = sim::mix_for_config(cfg, "w1");
  std::vector<sim::MixResult> results = {
      sim::run_mix(cfg, mix, sim::SchemeKind::kCarma)};
  // A lot can only sell to a round's bidder.
  results[0].traffic.count(noc::MsgType::kMarketGrant,
                           results[0].traffic.total(noc::MsgType::kMarketBid) +
                               1);
  const std::vector<Violation> v = diff_schemes(results, /*lockstep=*/false);
  bool saw = false;
  for (const Violation& x : v) saw |= x.kind == InvariantKind::kStaticControl;
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace delta::check
