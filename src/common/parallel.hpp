// parallel_for: static round-robin fork-join helper over an index range
// (thread t handles begin+t, begin+t+threads, ...; no work stealing, no
// shared queue).
//
// The experiment drivers use it to fan independent (mix, scheme, config)
// runs over hardware threads.  It degenerates to a plain serial loop when
// one thread is available or requested, or when the range is too small for
// the `grain` parameter to justify spawning workers — both paths keep
// single-CPU CI hosts deterministic and spare tiny ranges the
// thread-creation overhead.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace delta {

namespace detail {

/// First-exception capture slot shared by the worker pool.  The annotated
/// mutex lets clang's -Wthread-safety prove that `error_` is only touched
/// under the lock; the separate relaxed flag keeps the workers' fast-path
/// poll lock-free.
class ErrorSlot {
 public:
  /// Records the current in-flight exception if none was captured yet and
  /// flags every worker to stop picking up new indices.
  void capture() EXCLUDES(mu_) {
    {
      const common::LockGuard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    failed_.store(true, std::memory_order_relaxed);
  }

  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  /// After all workers joined: the first captured exception (or null).
  std::exception_ptr take() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return error_;
  }

 private:
  common::Mutex mu_;
  std::exception_ptr error_ GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

}  // namespace detail

/// Invokes `body(i)` for every i in [begin, end) using up to `threads`
/// worker threads (0 == hardware_concurrency).  Blocks until all complete.
/// `body` must be safe to call concurrently for distinct indices.
///
/// `grain` is the minimum number of indices worth giving each worker: the
/// pool is capped at n / grain threads, so a range smaller than `grain`
/// runs serially on the calling thread and spawns nothing.  Use it when
/// each body invocation is cheap relative to thread start-up.
///
/// Exceptions: if any invocation throws, the first exception (by completion
/// order) is rethrown on the calling thread after every worker has joined.
/// Remaining workers stop picking up new indices once a failure is flagged,
/// so a throwing body cannot terminate the process the way an escaping
/// exception on a std::thread would.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         unsigned threads = 0, std::size_t grain = 1) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  unsigned hw = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (hw == 0) hw = 1;
  if (hw > n) hw = static_cast<unsigned>(n);
  if (grain > 1) {
    const std::size_t cap = n / grain;
    if (hw > cap) hw = cap == 0 ? 1 : static_cast<unsigned>(cap);
  }
  if (hw <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  detail::ErrorSlot error;
  std::vector<std::thread> pool;
  pool.reserve(hw);
  for (unsigned t = 0; t < hw; ++t) {
    pool.emplace_back([&, t] {
      // Static round-robin assignment: thread t handles begin+t, begin+t+hw, ...
      for (std::size_t i = begin + t; i < end; i += hw) {
        if (error.failed()) return;
        try {
          body(i);
        } catch (...) {
          error.capture();
          return;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (std::exception_ptr e = error.take()) std::rethrow_exception(e);
}

}  // namespace delta
