// parallel_for: static round-robin fork-join helper over an index range
// (thread t handles begin+t, begin+t+threads, ...; no work stealing, no
// shared queue).
//
// The experiment drivers use it to fan independent (mix, scheme, config)
// runs over hardware threads.  It degenerates to a plain serial loop when
// one thread is available or requested, or when the range is too small for
// the `grain` parameter to justify spawning workers — both paths keep
// single-CPU CI hosts deterministic and spare tiny ranges the
// thread-creation overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/sync.hpp"

namespace delta {

namespace detail {

/// First-exception capture slot shared by the worker pool.  The annotated
/// mutex lets clang's -Wthread-safety prove that `error_` is only touched
/// under the lock; the separate relaxed flag keeps the workers' fast-path
/// poll lock-free.
class ErrorSlot {
 public:
  /// Records the current in-flight exception if none was captured yet and
  /// flags every worker to stop picking up new indices.
  void capture() EXCLUDES(mu_) {
    {
      const common::LockGuard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    failed_.store(true, std::memory_order_relaxed);
  }

  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  /// After all workers joined: the first captured exception (or null).
  std::exception_ptr take() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return error_;
  }

 private:
  common::Mutex mu_;
  std::exception_ptr error_ GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

}  // namespace detail

/// Invokes `body(i)` for every i in [begin, end) using up to `threads`
/// worker threads (0 == hardware_concurrency).  Blocks until all complete.
/// `body` must be safe to call concurrently for distinct indices.
///
/// `grain` is the minimum number of indices worth giving each worker: the
/// pool is capped at n / grain threads, so a range smaller than `grain`
/// runs serially on the calling thread and spawns nothing.  Use it when
/// each body invocation is cheap relative to thread start-up.
///
/// Exceptions: if any invocation throws, the first exception (by completion
/// order) is rethrown on the calling thread after every worker has joined.
/// Remaining workers stop picking up new indices once a failure is flagged,
/// so a throwing body cannot terminate the process the way an escaping
/// exception on a std::thread would.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         unsigned threads = 0, std::size_t grain = 1) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  unsigned hw = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (hw == 0) hw = 1;
  if (hw > n) hw = static_cast<unsigned>(n);
  if (grain > 1) {
    const std::size_t cap = n / grain;
    if (hw > cap) hw = cap == 0 ? 1 : static_cast<unsigned>(cap);
  }
  if (hw <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  detail::ErrorSlot error;
  std::vector<std::thread> pool;
  pool.reserve(hw);
  for (unsigned t = 0; t < hw; ++t) {
    pool.emplace_back([&, t] {
      // Static round-robin assignment: thread t handles begin+t, begin+t+hw, ...
      for (std::size_t i = begin + t; i < end; i += hw) {
        if (error.failed()) return;
        try {
          body(i);
        } catch (...) {
          error.capture();
          return;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (std::exception_ptr e = error.take()) std::rethrow_exception(e);
}

/// Contiguous slice [begin, end) of an n-element range for worker `part` of
/// `parts`.  The first n % parts workers get one extra element, so any two
/// calls with the same (n, parts) tile the range exactly — the static
/// scheduling used by the intra-run epoch engine, where *which* worker runs
/// a shard must not affect results, only wall-clock.
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

inline IndexRange static_partition(std::size_t n, unsigned parts,
                                   unsigned part) {
  if (parts == 0) parts = 1;
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  const std::size_t extra = part < rem ? part : rem;
  const std::size_t lo = static_cast<std::size_t>(part) * base + extra;
  return {lo, lo + base + (part < rem ? 1 : 0)};
}

/// Generation-counted reusable barrier: `parties` threads block in
/// arrive_and_wait() until all have arrived, then all release together and
/// the barrier resets for the next cycle.  The mutex hand-off at each
/// release is also the memory fence the worker pool relies on: writes made
/// before a thread arrives are visible to every thread after release.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(unsigned parties) : parties_(parties == 0 ? 1 : parties) {}
  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  void arrive_and_wait() EXCLUDES(mu_) {
    common::UniqueLock lock(mu_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    while (generation_ == gen) cv_.wait(lock);
  }

 private:
  common::Mutex mu_;
  std::condition_variable_any cv_;
  const unsigned parties_;
  unsigned arrived_ GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
};

/// Deterministic sequential claim word for the work-stealing schedulers.
///
/// One SeqClaim guards one ordered chain of work units (e.g. the round-range
/// tasks of a single cache bank, which must apply in ascending order).  The
/// word packs `(next_unit << 1) | busy`: a worker may only claim the exact
/// unit the chain has advanced to, so units always execute in sequence no
/// matter which worker wins the race — *which* thread runs a unit can vary,
/// *what order* units run in cannot, and that is the whole byte-identity
/// argument for stealing.
///
/// Memory ordering: try_claim() acquires (the winner sees everything the
/// previous unit's complete() released) and complete() releases the unit's
/// writes to the next claimant.  A failed try_claim carries no ordering.
///
/// Units are capped at 2^31-1 per chain — epoch round counts are orders of
/// magnitude below that.
class SeqClaim {
 public:
  /// Resets the chain to `unit` (not thread-safe; call between sections).
  void reset(std::uint32_t unit = 0) {
    word_.store(unit << 1, std::memory_order_relaxed);
  }

  /// Lower bound of the next unclaimed unit (racy snapshot; monotone).
  std::uint32_t next_unit() const {
    return word_.load(std::memory_order_relaxed) >> 1;
  }

  /// True while some worker holds a claimed-but-incomplete unit.
  bool busy() const { return (word_.load(std::memory_order_relaxed) & 1u) != 0; }

  /// Attempts to claim `unit`; succeeds only when the chain is exactly at
  /// `unit` and idle.  The winner must eventually call complete(unit).
  bool try_claim(std::uint32_t unit) {
    std::uint32_t expected = unit << 1;
    return word_.compare_exchange_strong(expected, (unit << 1) | 1u,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Marks `unit` finished and opens unit+1 for claiming, publishing the
  /// unit's writes to whichever worker claims next.
  void complete(std::uint32_t unit) {
    word_.store((unit + 1) << 1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> word_{0};
};

/// Observation hooks for WorkerPool sections.  The profiler (obs/prof)
/// implements this to measure per-worker busy time and barrier waits without
/// the pool itself touching a clock (wall-clock reads are banned outside
/// src/obs/prof by the nondet-source lint).
///
/// Contract: for every run() section each party w gets section_begin(w) right
/// after the start barrier releases it and work_done(w) right after its fn
/// returns, before it arrives at the done barrier.  Both calls happen on
/// worker w's thread; the done barrier orders anything they write before the
/// caller regains control, so a hook may keep plain per-worker slots.  Hooks
/// must observe only — they run inside the section and anything they do that
/// feeds back into `fn` would break the pool's determinism contract.
class WorkerHooks {
 public:
  virtual ~WorkerHooks() = default;
  virtual void section_begin(unsigned worker) = 0;
  virtual void work_done(unsigned worker) = 0;
};

/// Persistent fork-join pool for repeated fine-grained parallel sections.
///
/// `parallel_for` spawns and joins threads per call, which is fine for
/// sweep-granularity work (one job = a whole simulation) but far too
/// expensive inside an epoch loop that forks thousands of times per run.
/// WorkerPool keeps `parties - 1` threads parked on a barrier between
/// sections; `run(fn)` wakes them, executes `fn(worker)` on every party
/// (the calling thread doubles as worker 0), and returns once all are done.
///
/// Exceptions thrown by `fn` are captured per worker and rethrown on the
/// caller in worker-index order — deterministic, unlike first-completion
/// order.  `parties() == 1` degenerates to a plain inline call with no
/// threads and no synchronization.
///
/// A pool instance may only be driven from one thread at a time; the
/// intra-run engine owns one pool per Chip, matching that contract.
///
/// Opt-in affinity: with `Options::pin_threads` each party pins itself to
/// CPU `w % affinity_cpu_count()` — including party 0, i.e. the *calling*
/// thread, which is why pinning is off by default.  Pinning is best-effort
/// (common/affinity.hpp no-op fallback) and never affects results, only
/// cache locality of the per-worker buffers placed by first touch.
class WorkerPool {
 public:
  struct Options {
    bool pin_threads;
    // Written as constructors (not default member initializers) so the
    // WorkerPool constructor below can default-construct one in a default
    // argument while the enclosing class is still incomplete.
    Options() : pin_threads(false) {}
    explicit Options(bool pin) : pin_threads(pin) {}
  };

  explicit WorkerPool(unsigned parties, Options options = Options())
      : parties_(parties == 0 ? 1 : parties),
        options_(options),
        start_(parties_ == 0 ? 1 : parties_),
        done_(parties_ == 0 ? 1 : parties_),
        errors_(parties_ == 0 ? 1 : parties_) {
    if (options_.pin_threads && common::pin_current_thread(0))
      pinned_count_.fetch_add(1, std::memory_order_relaxed);
    threads_.reserve(parties_ - 1);
    for (unsigned w = 1; w < parties_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    if (parties_ > 1) {
      stop_ = true;  // Published to workers by the start barrier's mutex.
      start_.arrive_and_wait();
      for (auto& th : threads_) th.join();
    }
  }

  unsigned parties() const { return parties_; }

  /// Whether Options::pin_threads was requested at construction.
  bool pin_requested() const { return options_.pin_threads; }

  /// Parties whose self-pin succeeded so far (0 on platforms without an
  /// affinity API, or when pinning was not requested).  Workers pin before
  /// their first section, so after any run() the count is settled.
  unsigned pinned_parties() const {
    return pinned_count_.load(std::memory_order_relaxed);
  }

  /// Installs (or clears, with nullptr) the section observation hooks.  May
  /// only be called from the owning thread while no section is running; the
  /// pointer is published to workers by the next start-barrier hand-off.
  void set_hooks(WorkerHooks* hooks) { hooks_ = hooks; }

  void run(const std::function<void(unsigned)>& fn) {
    if (parties_ == 1) {
      if (hooks_ != nullptr) hooks_->section_begin(0);
      fn(0);
      if (hooks_ != nullptr) hooks_->work_done(0);
      return;
    }
    fn_ = &fn;
    start_.arrive_and_wait();
    if (hooks_ != nullptr) hooks_->section_begin(0);
    invoke(0);
    if (hooks_ != nullptr) hooks_->work_done(0);
    done_.arrive_and_wait();
    fn_ = nullptr;
    for (unsigned w = 0; w < parties_; ++w) {
      if (errors_[w]) {
        const std::exception_ptr e = errors_[w];
        for (auto& slot : errors_) slot = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

 private:
  void worker_loop(unsigned w) {
    if (options_.pin_threads && common::pin_current_thread(w))
      pinned_count_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      start_.arrive_and_wait();
      if (stop_) return;
      if (hooks_ != nullptr) hooks_->section_begin(w);
      invoke(w);
      if (hooks_ != nullptr) hooks_->work_done(w);
      done_.arrive_and_wait();
    }
  }

  void invoke(unsigned w) {
    try {
      (*fn_)(w);
    } catch (...) {
      errors_[static_cast<std::size_t>(w)] = std::current_exception();
    }
  }

  const unsigned parties_;
  const Options options_;
  std::atomic<unsigned> pinned_count_{0};
  CyclicBarrier start_;
  CyclicBarrier done_;
  // Both written by the caller strictly before a start-barrier arrival and
  // read by workers strictly after release, so the barrier orders them.
  const std::function<void(unsigned)>* fn_ = nullptr;
  WorkerHooks* hooks_ = nullptr;  // Published like fn_: set while idle only.
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  // Slot w: written only by worker w.
  std::vector<std::thread> threads_;
};

}  // namespace delta
