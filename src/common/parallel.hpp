// parallel_for: static-chunked fork-join helper over an index range.
//
// The experiment drivers use it to fan independent (mix, scheme) runs over
// hardware threads.  Falls back to a plain serial loop when only one thread
// is available or requested, which keeps single-CPU CI hosts deterministic
// and avoids thread-creation overhead for tiny ranges.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace delta {

/// Invokes `body(i)` for every i in [begin, end) using up to `threads`
/// worker threads (0 == hardware_concurrency).  Blocks until all complete.
/// `body` must be safe to call concurrently for distinct indices.
///
/// Exceptions: if any invocation throws, the first exception (by completion
/// order) is rethrown on the calling thread after every worker has joined.
/// Remaining workers stop picking up new indices once a failure is flagged,
/// so a throwing body cannot terminate the process the way an escaping
/// exception on a std::thread would.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         unsigned threads = 0) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  unsigned hw = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (hw == 0) hw = 1;
  if (hw > n) hw = static_cast<unsigned>(n);
  if (hw <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::exception_ptr error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  pool.reserve(hw);
  for (unsigned t = 0; t < hw; ++t) {
    pool.emplace_back([&, t] {
      // Static round-robin assignment: thread t handles begin+t, begin+t+hw, ...
      for (std::size_t i = begin + t; i < end; i += hw) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace delta
