// Fixed-bin histogram used for latency distributions and hop-count profiles,
// plus a log-bucket (power-of-two) histogram for wall-clock durations where
// the value range spans many orders of magnitude (obs/prof metrics).
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace delta {

class Histogram {
 public:
  /// Bins cover [lo, hi) uniformly; values outside clamp to the end bins.
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x, std::uint64_t weight = 1) {
    std::size_t b;
    if (x < lo_) {
      b = 0;
    } else if (x >= hi_) {
      b = counts_.size() - 1;
    } else {
      b = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
      if (b >= counts_.size()) b = counts_.size() - 1;
    }
    counts_[b] += weight;
    total_ += weight;
    weighted_sum_ += x * static_cast<double>(weight);
  }

  std::uint64_t total() const { return total_; }
  double mean() const { return total_ ? weighted_sum_ / static_cast<double>(total_) : 0.0; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
  }

  /// Smallest x such that at least `q` (0..1] of the mass is <= x's bin end.
  double quantile(double q) const {
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      cum += static_cast<double>(counts_[b]);
      if (cum >= target) return bin_lo(b + 1 <= counts_.size() ? b + 1 : b);
    }
    return hi_;
  }

  /// Folds another histogram with the identical binning ([lo, hi) and bin
  /// count) into this one.  Disjoint *occupied* ranges are fine — merging is
  /// bin-wise addition — but the bin layout itself must match; merging across
  /// different layouts would silently rebucket, so it is a precondition.
  void merge(const Histogram& other) {
    assert(lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size());
    for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
    total_ += other.total_;
    weighted_sum_ += other.weighted_sum_;
  }

  void reset() {
    for (auto& c : counts_) c = 0;
    total_ = 0;
    weighted_sum_ = 0.0;
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double weighted_sum_ = 0.0;
};

/// Power-of-two-bucket histogram over the full uint64 range.  Bucket b holds
/// values whose bit width is b — bucket 0 is exactly {0}, bucket b >= 1 covers
/// [2^(b-1), 2^b).  Every bucket boundary is value-independent, so two
/// LogHistograms always merge exactly (bucket-wise addition) even when their
/// occupied ranges are disjoint — the property the metrics registry relies on
/// when folding per-thread duration histograms into one process-wide view.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v, std::uint64_t weight = 1) {
    counts_[static_cast<std::size_t>(std::bit_width(v))] += weight;
    total_ += weight;
    sum_ += v * weight;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0;
  }
  std::uint64_t count(std::size_t bucket) const { return counts_[bucket]; }

  /// Lowest value bucket `b` can hold: 0, 1, 2, 4, ..., 2^63.
  static std::uint64_t bucket_lo(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Highest value bucket `b` can hold (inclusive).
  static std::uint64_t bucket_hi(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return UINT64_MAX;
    return (std::uint64_t{1} << b) - 1;
  }

  /// Upper bound of the first bucket at which at least `q` (0..1] of the
  /// mass has accumulated; 0 for an empty histogram.
  std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cum += static_cast<double>(counts_[b]);
      if (cum >= target) return bucket_hi(b);
    }
    return bucket_hi(kBuckets - 1);
  }

  void merge(const LogHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    total_ += other.total_;
    sum_ += other.sum_;
  }

  void reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace delta
