// Fixed-bin histogram used for latency distributions and hop-count profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace delta {

class Histogram {
 public:
  /// Bins cover [lo, hi) uniformly; values outside clamp to the end bins.
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x, std::uint64_t weight = 1) {
    std::size_t b;
    if (x < lo_) {
      b = 0;
    } else if (x >= hi_) {
      b = counts_.size() - 1;
    } else {
      b = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
      if (b >= counts_.size()) b = counts_.size() - 1;
    }
    counts_[b] += weight;
    total_ += weight;
    weighted_sum_ += x * static_cast<double>(weight);
  }

  std::uint64_t total() const { return total_; }
  double mean() const { return total_ ? weighted_sum_ / static_cast<double>(total_) : 0.0; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
  }

  /// Smallest x such that at least `q` (0..1] of the mass is <= x's bin end.
  double quantile(double q) const {
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      cum += static_cast<double>(counts_[b]);
      if (cum >= target) return bin_lo(b + 1 <= counts_.size() ? b + 1 : b);
    }
    return hi_;
  }

  void reset() {
    for (auto& c : counts_) c = 0;
    total_ = 0;
    weighted_sum_ = 0.0;
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double weighted_sum_ = 0.0;
};

}  // namespace delta
