// CPU-affinity helpers for the worker pools.
//
// The intra-run engine's WorkerPool can optionally pin each party to a fixed
// CPU so repeated epoch sections keep their caches warm and the first-touch
// buffer placement done at engine construction stays local to the worker
// that will use it (a poor-man's NUMA policy: the thread that touches a page
// first owns it, and pinning keeps it on that node).
//
// Pinning is strictly opt-in and strictly best-effort: on platforms without
// an affinity API (or when the syscall fails, e.g. inside a restricted
// cgroup) every call degrades to a no-op that reports false.  Simulation
// results never depend on whether pinning took effect — it is a pure
// placement hint.
//
// This header is the single place allowed to touch the raw OS affinity API
// (`pthread_setaffinity_np` and friends); the `raw-affinity` lexical lint
// rule rejects those identifiers anywhere else under src/.
#pragma once

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <thread>

namespace delta::common {

/// True when this build can actually pin threads (Linux).  Callers use this
/// only for reporting; pin_current_thread() is always safe to call.
inline bool affinity_supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

/// Number of CPUs the calling thread is allowed to run on (its current
/// affinity mask).  Falls back to hardware_concurrency, and never returns 0.
inline unsigned affinity_cpu_count() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Pins the calling thread to CPU `cpu % affinity_cpu_count()`.  Returns
/// true if the mask was applied, false when unsupported or rejected by the
/// OS; a false return leaves the thread's affinity unchanged (no-op
/// fallback).
inline bool pin_current_thread(unsigned cpu) {
#if defined(__linux__)
  const unsigned ncpu = affinity_cpu_count();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace delta::common
