// The single SIMD entry point of the codebase.
//
// Every intrinsic lives here — the delta_lint `raw-intrinsic` rule bans
// intrinsic headers and `_mm*`/`__builtin_prefetch` tokens everywhere else
// in src/, so callers always go through this dispatch layer and the scalar
// fallback stays exercised (CI builds -DDELTA_NO_SIMD=ON).
//
// Backend selection is compile-time: SSE2 on x86-64, NEON on AArch64, a
// branch-free uint64 SWAR loop elsewhere, and plain scalar when
// DELTA_NO_SIMD is defined.  All kernels compute *exact* 64-bit equality,
// so every backend is bit-identical to `match_u64_scalar` by construction —
// the property the cache/UMON equivalence suites and the frozen
// legacy-oracle replay in micro_throughput verify end to end
// (docs/performance.md "Vectorized kernels").
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(DELTA_NO_SIMD)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#include <emmintrin.h>
#define DELTA_SIMD_SSE2 1
#elif defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define DELTA_SIMD_NEON 1
#else
#define DELTA_SIMD_SWAR 1
#endif
#endif

namespace delta::simd {

/// Name of the compiled-in backend, for bench/diagnostic output.
constexpr const char* backend_name() {
#if defined(DELTA_SIMD_SSE2)
  return "sse2";
#elif defined(DELTA_SIMD_NEON)
  return "neon";
#elif defined(DELTA_SIMD_SWAR)
  return "swar";
#else
  return "scalar";
#endif
}

/// Scalar reference kernel: bit i of the result is set iff vals[i] == key,
/// for i in [0, n), n <= 32.  The vector kernels below must return exactly
/// this value on every input — tests/test_simd.cpp checks all widths.
inline std::uint32_t match_u64_scalar(const std::uint64_t* vals, int n,
                                      std::uint64_t key) {
  std::uint32_t m = 0;
  for (int i = 0; i < n; ++i)
    m |= static_cast<std::uint32_t>(vals[i] == key) << i;
  return m;
}

namespace detail {

/// Branch-free "is nonzero" for one u64: 1 when z != 0, else 0.
inline std::uint64_t nonzero_u64(std::uint64_t z) {
  return (z | (0 - z)) >> 63;
}

/// SWAR 4-lane match: bits [0,4) of the result flag vals[0..3] == key.
inline std::uint32_t match4_swar(const std::uint64_t* vals, std::uint64_t key) {
  const std::uint64_t z0 = vals[0] ^ key;
  const std::uint64_t z1 = vals[1] ^ key;
  const std::uint64_t z2 = vals[2] ^ key;
  const std::uint64_t z3 = vals[3] ^ key;
  return static_cast<std::uint32_t>((nonzero_u64(z0) ^ 1) |
                                    ((nonzero_u64(z1) ^ 1) << 1) |
                                    ((nonzero_u64(z2) ^ 1) << 2) |
                                    ((nonzero_u64(z3) ^ 1) << 3));
}

#if defined(DELTA_SIMD_SSE2)
/// Two-lane u64 equality mask (bits 0 and 1) from one unaligned 16 B load.
/// SSE2 has no 64-bit compare, so equality is two 32-bit compares ANDed
/// with their swapped halves; the sign bit of each 64-bit lane then carries
/// the verdict out through movemask_pd.
inline std::uint32_t match2_sse2(const std::uint64_t* vals, __m128i key2) {
  const __m128i v =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals));
  const __m128i eq32 = _mm_cmpeq_epi32(v, key2);
  const __m128i eq64 =
      _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(eq64)));
}
#endif

#if defined(DELTA_SIMD_NEON)
/// Two-lane u64 equality mask (bits 0 and 1).
inline std::uint32_t match2_neon(const std::uint64_t* vals, uint64x2_t key2) {
  const uint64x2_t eq = vceqq_u64(vld1q_u64(vals), key2);
  return static_cast<std::uint32_t>(vgetq_lane_u64(eq, 0) & 1) |
         (static_cast<std::uint32_t>(vgetq_lane_u64(eq, 1) & 1) << 1);
}
#endif

}  // namespace detail

/// Equality bitmask over a flat u64 row: bit i set iff vals[i] == key,
/// i in [0, n), n <= 32.  This is the cache hit path's tag compare — the
/// hottest kernel in the simulator (mem/cache.hpp match_ways).
inline std::uint32_t match_u64(const std::uint64_t* vals, int n,
                               std::uint64_t key) {
#if defined(DELTA_SIMD_SSE2)
  const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
  std::uint32_t m = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    m |= detail::match2_sse2(vals + i, k) << i;
    m |= detail::match2_sse2(vals + i + 2, k) << (i + 2);
  }
  if (i + 2 <= n) {
    m |= detail::match2_sse2(vals + i, k) << i;
    i += 2;
  }
  for (; i < n; ++i) m |= static_cast<std::uint32_t>(vals[i] == key) << i;
  return m;
#elif defined(DELTA_SIMD_NEON)
  const uint64x2_t k = vdupq_n_u64(key);
  std::uint32_t m = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    m |= detail::match2_neon(vals + i, k) << i;
    m |= detail::match2_neon(vals + i + 2, k) << (i + 2);
  }
  if (i + 2 <= n) {
    m |= detail::match2_neon(vals + i, k) << i;
    i += 2;
  }
  for (; i < n; ++i) m |= static_cast<std::uint32_t>(vals[i] == key) << i;
  return m;
#elif defined(DELTA_SIMD_SWAR)
  std::uint32_t m = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) m |= detail::match4_swar(vals + i, key) << i;
  for (; i < n; ++i) m |= static_cast<std::uint32_t>(vals[i] == key) << i;
  return m;
#else
  return match_u64_scalar(vals, n, key);
#endif
}

/// Scalar reference for find_u64 (first index of key in [0, n), else n).
inline std::size_t find_u64_scalar(const std::uint64_t* vals, std::size_t n,
                                   std::uint64_t key) {
  for (std::size_t i = 0; i < n; ++i)
    if (vals[i] == key) return i;
  return n;
}

/// First index i in [0, n) with vals[i] == key, or n when absent.  Backs
/// the UMON shadow-tag stack search (umon/umon.cpp), where stacks run to
/// hundreds of entries and most probes miss every lane.
inline std::size_t find_u64(const std::uint64_t* vals, std::size_t n,
                            std::uint64_t key) {
#if defined(DELTA_SIMD_SSE2)
  const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint32_t m =
        detail::match2_sse2(vals + i, k) | (detail::match2_sse2(vals + i + 2, k) << 2) |
        (detail::match2_sse2(vals + i + 4, k) << 4) |
        (detail::match2_sse2(vals + i + 6, k) << 6);
    if (m != 0) {
      std::size_t j = 0;
      while (((m >> j) & 1u) == 0) ++j;
      return i + j;
    }
  }
  for (; i + 2 <= n; i += 2) {
    const std::uint32_t m = detail::match2_sse2(vals + i, k);
    if (m != 0) return i + ((m & 1u) != 0 ? 0 : 1);
  }
  for (; i < n; ++i)
    if (vals[i] == key) return i;
  return n;
#elif defined(DELTA_SIMD_NEON)
  const uint64x2_t k = vdupq_n_u64(key);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64x2_t e0 = vceqq_u64(vld1q_u64(vals + i), k);
    const uint64x2_t e1 = vceqq_u64(vld1q_u64(vals + i + 2), k);
    const uint64x2_t e2 = vceqq_u64(vld1q_u64(vals + i + 4), k);
    const uint64x2_t e3 = vceqq_u64(vld1q_u64(vals + i + 6), k);
    const uint64x2_t any = vorrq_u64(vorrq_u64(e0, e1), vorrq_u64(e2, e3));
    if (vmaxvq_u32(vreinterpretq_u32_u64(any)) != 0) {
      for (std::size_t j = i; j < i + 8; ++j)
        if (vals[j] == key) return j;
    }
  }
  for (; i < n; ++i)
    if (vals[i] == key) return i;
  return n;
#elif defined(DELTA_SIMD_SWAR)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint32_t m = detail::match4_swar(vals + i, key);
    if (m != 0) {
      std::size_t j = 0;
      while (((m >> j) & 1u) == 0) ++j;
      return i + j;
    }
  }
  for (; i < n; ++i)
    if (vals[i] == key) return i;
  return n;
#else
  return find_u64_scalar(vals, n, key);
#endif
}

/// Read-intent prefetch hint; a no-op where unsupported.  Side-effect-free,
/// so callers (chip access pipelining, UMON) keep byte-identical results.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

/// Write-intent prefetch hint (LRU stamps, validity words).
inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 3);
#else
  (void)p;
#endif
}

}  // namespace delta::simd
