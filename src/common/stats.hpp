// Small statistics toolkit: means, geometric means, streaming accumulators
// and fixed-width text tables used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace delta {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; every element must be > 0.  Returns 0 for an empty span.
double geomean(std::span<const double> xs);

/// Sample standard deviation; returns 0 when fewer than two elements.
double stddev(std::span<const double> xs);

/// Median (of a copy; input untouched).  Returns 0 for an empty span.
double median(std::span<const double> xs);

/// Harmonic mean; every element must be > 0.
double harmonic_mean(std::span<const double> xs);

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  void reset() { *this = RunningStat{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Right-pads/truncates `s` to exactly `width` characters.
std::string pad(const std::string& s, std::size_t width);

/// Formats `x` with `prec` digits after the decimal point.
std::string fmt(double x, int prec = 3);

/// Minimal fixed-width table printer for bench harness output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Render the table (header, rule, rows) to a string.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace delta
