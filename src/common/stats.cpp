#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace delta {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    assert(x > 0.0 && "geomean requires positive inputs");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

double harmonic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double inv = 0.0;
  for (double x : xs) {
    assert(x > 0.0 && "harmonic mean requires positive inputs");
    inv += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv;
}

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string fmt(double x, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, x);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << pad(r[c], w[c]);
      if (c + 1 != r.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c + 1 != w.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace delta
