// Fundamental scalar types and unit helpers shared by every DELTA module.
//
// The simulator measures time in core clock cycles at the frequency given in
// sim::MachineConfig (4 GHz per the paper's Table II).  Addresses are byte
// addresses; `BlockAddr` is a byte address shifted right by the cache-line
// offset bits (64 B lines -> 6 bits).
#pragma once

#include <cstdint>
#include <cstddef>

namespace delta {

using Addr = std::uint64_t;       ///< Physical byte address.
using BlockAddr = std::uint64_t;  ///< Cache-line address (byte address >> 6).
using Cycles = std::uint64_t;     ///< Duration or timestamp in core cycles.
using CoreId = std::int32_t;      ///< Core/tile index, -1 == invalid.
using BankId = std::int32_t;      ///< LLC bank index, -1 == invalid.

inline constexpr CoreId kInvalidCore = -1;
inline constexpr BankId kInvalidBank = -1;

inline constexpr int kLineBytesLog2 = 6;                      ///< 64 B lines.
inline constexpr int kLineBytes = 1 << kLineBytesLog2;
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kPageBytes = 4096;             ///< 4 KiB pages.

/// Convert a byte address to a cache-line (block) address.
constexpr BlockAddr block_of(Addr a) { return a >> kLineBytesLog2; }

/// Convert a block address back to the byte address of the line's first byte.
constexpr Addr addr_of_block(BlockAddr b) { return b << kLineBytesLog2; }

/// Page number of a byte address (4 KiB pages).
constexpr std::uint64_t page_of(Addr a) { return a / kPageBytes; }

/// Number of 64 B lines that fit in `bytes`.
constexpr std::uint64_t lines_in(std::uint64_t bytes) { return bytes >> kLineBytesLog2; }

}  // namespace delta
