// Clang Thread Safety Analysis wrappers.
//
// `common::Mutex` / `common::LockGuard` are drop-in replacements for
// std::mutex / std::lock_guard that carry Clang's capability annotations, so
// a clang build with -Wthread-safety rejects lock-discipline bugs (touching a
// GUARDED_BY member without the lock, double-locking, forgetting to unlock)
// at compile time.  On GCC and other compilers every macro expands to
// nothing and the wrappers cost exactly one std::mutex.
//
// Usage:
//   common::Mutex mu_;
//   std::vector<Event> events_ GUARDED_BY(mu_);
//   void record(Event e) EXCLUDES(mu_) {
//     common::LockGuard lock(mu_);
//     events_.push_back(e);          // OK: lock held.
//   }
//
// The macro names follow the Clang documentation's canonical mutex header so
// the annotations read like the upstream examples.
//
// Scope note: the analysis models *lock* discipline.  The lock-free engine
// primitives in common/parallel.hpp (CyclicBarrier, SeqClaim, the WorkerPool
// claim words) and sim/intra's watermark/claim atomics are std::atomic-based
// and carry their ordering contracts in comments at each load/store site
// instead — there is no capability to annotate, and wrapping them in a fake
// one would silence the analysis where it has nothing to say.  TSan (CI job)
// is the checker that covers that code.
#pragma once

#include <mutex>

#if defined(__clang__)
#define DELTA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DELTA_THREAD_ANNOTATION(x)  // No-op outside clang.
#endif

/// Type-level: the class is a lockable capability ("mutex").
#define CAPABILITY(x) DELTA_THREAD_ANNOTATION(capability(x))
/// Type-level: RAII object that acquires on construction, releases on
/// destruction (std::lock_guard shape).
#define SCOPED_CAPABILITY DELTA_THREAD_ANNOTATION(scoped_lockable)

/// Data members: may only be read/written while holding `x`.
#define GUARDED_BY(x) DELTA_THREAD_ANNOTATION(guarded_by(x))
/// Pointer members: the *pointee* is protected by `x` (the pointer itself is not).
#define PT_GUARDED_BY(x) DELTA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: caller must hold the listed capabilities.
#define REQUIRES(...) DELTA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Functions: caller must NOT hold them (the function acquires internally).
#define EXCLUDES(...) DELTA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Functions: acquire / release the listed capabilities.
#define ACQUIRE(...) DELTA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DELTA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Functions: try-lock returning `ret` on success.
#define TRY_ACQUIRE(ret, ...) \
  DELTA_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Escape hatch for code the analysis cannot model; use sparingly and say why.
#define NO_THREAD_SAFETY_ANALYSIS DELTA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace delta::common {

/// std::mutex with capability annotations.  Non-recursive.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over common::Mutex, visible to the analysis.
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition-variable-compatible lock over common::Mutex: satisfies
/// BasicLockable so std::condition_variable_any can release/reacquire it
/// around a wait.  To the analysis it behaves like LockGuard — the
/// capability is held from construction to destruction; the transient
/// unlock inside a wait is invisible, which is sound because the capability
/// is always held again whenever the waiting code observes guarded state.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~UniqueLock() RELEASE() { mu_.unlock(); }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  // BasicLockable surface for condition_variable_any only; hidden from the
  // analysis so the wait's unlock/relock does not confuse it.
  void lock() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace delta::common
