// Minimal leveled logging.  Off by default so simulation hot loops stay
// clean; enable with Logger::set_level(LogLevel::kDebug) in tools/examples.
//
// Two hardening properties:
//  - printf-format checking: Logger::log() (and the DELTA_LOG_* macros) are
//    compile-time checked against their arguments on GCC/Clang via
//    DELTA_PRINTF_FORMAT; other compilers degrade to unchecked.
//  - tear-free output: each record (prefix + message + newline) is composed
//    in one buffer and written to stderr under the annotated common::Mutex,
//    so interleaved records from concurrent benches cannot shear mid-line.
//    The level gate itself is a relaxed atomic: a disabled call never locks.
//  - exit/abort flushing: install_flush_handlers() registers a std::atexit
//    handler and a SIGABRT trampoline that drain registered flush hooks and
//    all stdio buffers, so profiler output and invariant-failure reports
//    composed through buffered streams survive a run that dies mid-epoch.
#pragma once

#include <array>
#include <atomic>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/sync.hpp"

/// Marks a function as printf-like for compile-time format checking.
/// `fmt_idx` is the 1-based index of the format-string parameter and
/// `first_arg` that of the first variadic argument (count `this` for
/// non-static members).  No-op on compilers without the GNU attribute.
#if defined(__GNUC__) || defined(__clang__)
#define DELTA_PRINTF_FORMAT(fmt_idx, first_arg) \
  __attribute__((format(printf, fmt_idx, first_arg)))
#else
#define DELTA_PRINTF_FORMAT(fmt_idx, first_arg)
#endif

namespace delta {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  static void set_level(LogLevel lvl) { level_.store(lvl, std::memory_order_relaxed); }
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static bool enabled(LogLevel lvl) {
    return static_cast<int>(lvl) <= static_cast<int>(level());
  }

  static void log(LogLevel lvl, const char* fmt, ...) DELTA_PRINTF_FORMAT(2, 3);

  /// Composes one complete record ("[level] message\n"); exposed for tests.
  /// Messages longer than an internal 1 KiB buffer are truncated with "...".
  static std::string vformat(LogLevel lvl, const char* fmt, std::va_list ap);

  /// Registers `fn` to run from flush_now() — and therefore on normal exit
  /// and on abort once install_flush_handlers() ran.  Hooks must be safe to
  /// call at process teardown (no heap-order assumptions) and must not log.
  /// At most kMaxFlushHooks are kept; later registrations are dropped.
  static void add_flush_hook(void (*fn)());

  /// Runs every registered flush hook, then drains all stdio buffers.
  static void flush_now();

  /// Idempotent: arranges for flush_now() to run via std::atexit and on
  /// SIGABRT (the handler re-raises with the default disposition afterwards,
  /// so the abort still terminates the process and produces a core).  fflush
  /// from a signal handler is not strictly async-signal-safe; this is a
  /// best-effort diagnostic drain on a path that is already fatal.
  static void install_flush_handlers();

  static constexpr std::size_t kMaxFlushHooks = 8;

 private:
  static const char* name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kError: return "error";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kInfo: return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
  }
  /// Serialises the stderr write of each record (tear-free output even on
  /// platforms where a single fwrite may interleave).  Annotated so clang's
  /// -Wthread-safety checks the discipline; see sync.hpp.
  static common::Mutex& io_mutex() {
    static common::Mutex mu;
    return mu;
  }

  static void abort_trampoline(int sig) {
    flush_now();
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }

  static inline std::atomic<LogLevel> level_ = LogLevel::kWarn;
  // Flush-hook slots: hook_count_ is only ever incremented after the slot it
  // claims has been written, so a concurrent flush_now() sees a fully
  // initialised prefix of the array.
  static inline std::array<std::atomic<void (*)()>, kMaxFlushHooks> flush_hooks_{};
  static inline std::atomic<std::size_t> hook_count_{0};
  static inline std::atomic<bool> handlers_installed_{false};
};

inline void Logger::add_flush_hook(void (*fn)()) {
  if (fn == nullptr) return;
  const common::LockGuard lock(io_mutex());
  const std::size_t n = hook_count_.load(std::memory_order_relaxed);
  if (n >= kMaxFlushHooks) return;
  flush_hooks_[n].store(fn, std::memory_order_relaxed);
  hook_count_.store(n + 1, std::memory_order_release);
}

inline void Logger::flush_now() {
  const std::size_t n = hook_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (void (*fn)() = flush_hooks_[i].load(std::memory_order_relaxed))
      fn();
  }
  std::fflush(nullptr);
}

inline void Logger::install_flush_handlers() {
  if (handlers_installed_.exchange(true, std::memory_order_acq_rel)) return;
  std::atexit(&Logger::flush_now);
  std::signal(SIGABRT, &Logger::abort_trampoline);
}

inline std::string Logger::vformat(LogLevel lvl, const char* fmt, std::va_list ap) {
  char buf[1024];
  int n = std::snprintf(buf, sizeof buf, "[%s] ", name(lvl));
  if (n < 0) n = 0;
  const int body = std::vsnprintf(buf + n, sizeof buf - static_cast<std::size_t>(n) - 1,
                                  fmt, ap);
  std::string out(buf);
  if (body >= static_cast<int>(sizeof buf) - n - 1) out += "...";
  out += '\n';
  return out;
}

inline void Logger::log(LogLevel lvl, const char* fmt, ...) {
  if (!enabled(lvl)) return;
  std::va_list ap;
  va_start(ap, fmt);
  const std::string rec = vformat(lvl, fmt, ap);
  va_end(ap);
  // One write per record, under the logger mutex: concurrent writers'
  // records stay whole instead of interleaving fragments.
  const common::LockGuard lock(io_mutex());
  std::fwrite(rec.data(), 1, rec.size(), stderr);
}

#define DELTA_LOG_INFO(...) ::delta::Logger::log(::delta::LogLevel::kInfo, __VA_ARGS__)
#define DELTA_LOG_WARN(...) ::delta::Logger::log(::delta::LogLevel::kWarn, __VA_ARGS__)
#define DELTA_LOG_DEBUG(...) ::delta::Logger::log(::delta::LogLevel::kDebug, __VA_ARGS__)

}  // namespace delta
