// Minimal leveled logging.  Off by default so simulation hot loops stay
// clean; enable with Logger::set_level(LogLevel::kDebug) in tools/examples.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace delta {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  static void set_level(LogLevel lvl) { level_ = lvl; }
  static LogLevel level() { return level_; }
  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) <= static_cast<int>(level_); }

  template <typename... Args>
  static void log(LogLevel lvl, const char* fmt, Args&&... args) {
    if (!enabled(lvl)) return;
    std::fprintf(stderr, "[%s] ", name(lvl));
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
  }

 private:
  static const char* name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kError: return "error";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kInfo: return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
  }
  static inline LogLevel level_ = LogLevel::kWarn;
};

#define DELTA_LOG_INFO(...) ::delta::Logger::log(::delta::LogLevel::kInfo, __VA_ARGS__)
#define DELTA_LOG_WARN(...) ::delta::Logger::log(::delta::LogLevel::kWarn, __VA_ARGS__)
#define DELTA_LOG_DEBUG(...) ::delta::Logger::log(::delta::LogLevel::kDebug, __VA_ARGS__)

}  // namespace delta
