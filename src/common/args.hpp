// Minimal command-line flag parser for the tools and examples.
//
// Supports `--name value` and `--name=value` forms plus boolean switches
// (`--flag`).  Unknown flags are collected so callers can reject them with
// a helpful message; positional arguments are preserved in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace delta {

class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        a = a.substr(2);
        const auto eq = a.find('=');
        if (eq != std::string::npos) {
          flags_[a.substr(0, eq)] = a.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[a] = argv[++i];
        } else {
          flags_[a] = "";  // Boolean switch.
        }
        order_.push_back(a.substr(0, eq == std::string::npos ? a.size() : eq));
      } else {
        positional_.push_back(std::move(a));
      }
    }
  }

  bool has(const std::string& name) const { return flags_.contains(name); }

  std::string get(const std::string& name, const std::string& def = "") const {
    auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t def) const {
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) return def;
    return std::stoll(it->second);
  }

  double get_double(const std::string& name, double def) const {
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) return def;
    return std::stod(it->second);
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that are not in `known` — for strict validation.
  std::vector<std::string> unknown_flags(const std::vector<std::string>& known) const {
    std::vector<std::string> out;
    for (const auto& name : order_) {
      bool ok = false;
      for (const auto& k : known) ok |= (k == name);
      if (!ok) out.push_back(name);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace delta
