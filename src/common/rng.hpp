// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (workload address streams, mix
// shuffling, set sampling) flows through Xoshiro256** instances seeded via
// SplitMix64 so that every experiment is bit-reproducible from a single
// 64-bit seed.  `std::mt19937` is deliberately avoided: its 2.5 KB state is
// cache-hostile when every core of a 64-core model owns several streams.
#pragma once

#include <cstdint>
#include <limits>

namespace delta {

/// SplitMix64 step; used to expand one seed into many uncorrelated seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy for hashing addresses into sampling decisions.
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Xoshiro256** 1.0 (Blackman & Vigna).  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace delta
