// Sec. III-B workload classification: run an application alone on 128 KB,
// 512 KB and 8 MB LLCs, classify by IPC improvement (>10% per region) and
// by MPKI (>5 separates thrashing from insensitive).
//
// This is the validation harness for the synthetic profiles: a unit test
// asserts every profile lands in its Table III class.
#pragma once

#include <cstdint>

#include "workload/profile.hpp"

namespace delta::workload {

struct ClassifyConfig {
  std::uint64_t warmup_accesses = 400'000;
  std::uint64_t measured_accesses = 500'000;
  std::uint64_t seed = 42;
  double improvement_threshold = 0.10;  ///< 10% IPC improvement.
  double thrashing_mpki = 5.0;
  // Single-bank latency model used for stand-alone IPC (matching the
  // simulator's local-bank constants: 2-cycle tag + 9-cycle data).
  double hit_latency = 11.0;
  double miss_latency = 350.0;  ///< 80 ns DRAM + NoC round trip to an MCU.
};

struct ClassifyResult {
  double ipc_128k = 0.0;
  double ipc_512k = 0.0;
  double ipc_8m = 0.0;
  double mpki_8m = 0.0;
  double improvement_low = 0.0;   ///< (ipc_512k - ipc_128k) / ipc_128k.
  double improvement_med = 0.0;   ///< (ipc_8m - ipc_512k) / ipc_512k.
  AppClass cls = AppClass::kInsensitive;
};

/// Stand-alone IPC of `profile` with an LLC of `cache_bytes` (16-way LRU).
double standalone_ipc(const AppProfile& profile, std::uint64_t cache_bytes,
                      const ClassifyConfig& cfg = {});

/// Stand-alone LLC miss rate under the same setup (diagnostics).
double standalone_miss_rate(const AppProfile& profile, std::uint64_t cache_bytes,
                            const ClassifyConfig& cfg = {});

/// Full Sec. III-B procedure.
ClassifyResult classify(const AppProfile& profile, const ClassifyConfig& cfg = {});

}  // namespace delta::workload
