#include "workload/trace_io.hpp"

#include <cstring>
#include <stdexcept>

namespace delta::workload {
namespace {

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
};
static_assert(sizeof(Header) == 16);

}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) throw std::runtime_error("cannot open trace for writing: " + path);
  Header h{};
  std::memcpy(h.magic, kTraceMagic, sizeof h.magic);
  h.version = kTraceVersion;
  if (std::fwrite(&h, sizeof h, 1, f_) != 1)
    throw std::runtime_error("cannot write trace header: " + path);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::append(BlockAddr block) {
  if (std::fwrite(&block, sizeof block, 1, f_) != 1)
    throw std::runtime_error("trace write failed");
  ++count_;
}

void TraceWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

TraceReader::TraceReader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open trace: " + path);
  Header h{};
  if (std::fread(&h, sizeof h, 1, f) != 1 ||
      std::memcmp(h.magic, kTraceMagic, sizeof h.magic) != 0) {
    std::fclose(f);
    throw std::runtime_error("not a DELTA trace file: " + path);
  }
  if (h.version != kTraceVersion) {
    std::fclose(f);
    throw std::runtime_error("unsupported trace version in " + path);
  }
  BlockAddr b;
  while (std::fread(&b, sizeof b, 1, f) == 1) blocks_.push_back(b);
  std::fclose(f);
  if (blocks_.empty()) throw std::runtime_error("empty trace: " + path);
}

}  // namespace delta::workload
