// Irregular-access application family: gather/scatter, hash-join
// build/probe, and graph-traversal kernels.
//
// These are the workloads locality-aware allocators are weakest on: their
// reuse distances sit at the size of a multi-megabyte data structure, so
// the miss curve any monitor observes is *flat* across every allocatable
// capacity — no cliff for a farsighted allocator to chase, no slope for
// DELTA's windowed gain to climb.  Giving such an application ways is pure
// waste; taking its ways away costs nothing.  The family stresses exactly
// that judgement: an allocator that cannot recognise a flat curve bleeds
// capacity into these applications that the cache-sensitive co-runners
// needed (the same failure mode as thrashing streams, but with the
// pseudo-random address structure of real pointer-heavy codes, which also
// defeats stride-based filtering).
//
// Profiles flow through the ordinary AppProfile/TraceGen pipeline
// (RingKind::kGather / kHashJoin / kWalk, workload/profile.hpp) and are
// registered in the common name index, so mixes, delta_sim --apps, the
// fuzz generators and every scheme see them exactly like the Table III
// stand-ins.
#pragma once

#include <string_view>
#include <vector>

#include "workload/profile.hpp"

namespace delta::workload {

/// The irregular family in a stable order.  Resolvable by name through
/// spec_profile()/has_spec_profile like the Table III profiles.
const std::vector<AppProfile>& irregular_profiles();

/// True if `name` (short code or full name) is an irregular-family member.
bool is_irregular_profile(std::string_view name);

}  // namespace delta::workload
