#include "workload/spec.hpp"

#include <stdexcept>
#include <unordered_map>

#include "workload/irregular.hpp"

namespace delta::workload {
namespace {

Ring uniform(std::uint64_t bytes, double w) { return Ring{bytes, w, RingKind::kUniform}; }
Ring loop(std::uint64_t bytes, double w) { return Ring{bytes, w, RingKind::kLoop}; }
Ring stream(double w) { return Ring{0, w, RingKind::kStream}; }

// Expands a large working set into a hot/mid/cold ladder of uniform rings.
// A single uniform ring has one sharp LRU retention threshold (either the
// whole ring's reuse interval beats the eviction age or none of it does);
// real SPEC reuse spectra are smooth, so interference degrades hit rates
// gradually.  45% of the ring's accesses go to a hot 15% subset, 30% to a
// 40% subset, 25% sweep the full region.
std::vector<Ring> with_ladder(std::vector<Ring> base, std::uint64_t bytes, double w) {
  base.push_back(uniform(bytes * 15 / 100, w * 0.45));
  base.push_back(uniform(bytes * 40 / 100, w * 0.30));
  base.push_back(uniform(bytes, w * 0.25));
  return base;
}

// CPI contributed by the core pipeline plus L1/L2-resident memory accesses.
// The generators emit only the post-L2 stream, so everything the L1/L2
// hierarchy absorbs is folded into the base CPI; on Nehalem-class OOO cores
// running SPEC this hierarchy component is close to one cycle per
// instruction.  It also calibrates the *relative* size of LLC-induced
// stalls so scheme-vs-scheme gaps land in the paper's range.
constexpr double kHierarchyCpi = 0.9;

Phase phase(std::vector<Ring> rings, double mlp, double cpi_base, double apki) {
  Phase p;
  p.rings = std::move(rings);
  p.mlp = mlp;
  p.cpi_base = cpi_base + kHierarchyCpi;
  p.apki = apki;
  return p;
}

AppProfile app(std::string name, std::string code, AppClass cls, Phase p) {
  AppProfile a;
  a.name = std::move(name);
  a.short_name = std::move(code);
  a.cls = cls;
  a.phases.push_back(std::move(p));
  return a;
}

AppProfile phased_app(std::string name, std::string code, AppClass cls,
                      std::vector<Phase> phases, std::uint32_t phase_len_epochs) {
  AppProfile a;
  a.name = std::move(name);
  a.short_name = std::move(code);
  a.cls = cls;
  a.phases = std::move(phases);
  a.phase_len_epochs = phase_len_epochs;
  return a;
}

std::vector<AppProfile> build_profiles() {
  using enum AppClass;
  std::vector<AppProfile> v;

  // ---- Insensitive (I): working set fits in 128 KB, MPKI < 5. ----
  v.push_back(app("povray", "po", kInsensitive,
                  phase({uniform(64 * kKiB, 0.95), stream(0.05)}, 1.5, 0.45, 1.2)));
  v.push_back(app("sjeng", "sj", kInsensitive,
                  phase({uniform(96 * kKiB, 0.90), stream(0.10)}, 1.6, 0.55, 1.8)));
  v.push_back(app("namd", "na", kInsensitive,
                  phase({uniform(80 * kKiB, 0.92), stream(0.08)}, 2.0, 0.50, 1.5)));
  v.push_back(app("zeusmp", "ze", kInsensitive,
                  phase({uniform(100 * kKiB, 0.85), stream(0.15)}, 2.5, 0.60, 3.0)));
  v.push_back(app("GemsFDTD", "Ge", kInsensitive,
                  phase({uniform(64 * kKiB, 0.55), stream(0.45)}, 4.0, 0.55, 8.0)));

  // ---- Thrashing (T): MPKI > 5, <10% gain up to 8 MB. ----
  v.push_back(app("bwaves", "bw", kThrashing,
                  phase({stream(0.80), uniform(64 * kMiB, 0.20)}, 2.5, 0.50, 12.0)));
  // libquantum's 12 MB loop sits above the 8 MB classification point (so it
  // stays thrashing) but below the 24 MB 64-core allocation cap: the
  // farsighted centralized allocator chases the cliff there (Fig. 11).
  v.push_back(app("libquantum", "li", kThrashing,
                  phase({loop(12 * kMiB, 0.80), stream(0.20)}, 3.5, 0.40, 18.0)));
  v.push_back(app("milc", "mi", kThrashing,
                  phase({stream(0.70), uniform(48 * kMiB, 0.30)}, 2.2, 0.55, 10.0)));

  // ---- Cache-sensitive low (L): gains mainly 128 KB -> 512 KB. ----
  v.push_back(app("h264ref", "h2", kSensitiveLow,
                  phase({uniform(64 * kKiB, 0.50), uniform(352 * kKiB, 0.45), stream(0.05)},
                        2.0, 0.50, 6.0)));
  v.push_back(app("gromacs", "gr", kSensitiveLow,
                  phase({uniform(256 * kKiB, 0.90), stream(0.10)}, 2.2, 0.50, 5.0)));
  v.push_back(app("astar", "as", kSensitiveLow,
                  phase({uniform(384 * kKiB, 0.88), stream(0.12)}, 1.8, 0.60, 9.0)));
  v.push_back(app("gamess", "ga", kSensitiveLow,
                  phase({uniform(192 * kKiB, 0.93), stream(0.07)}, 1.5, 0.45, 4.0)));
  // lbm: strong low-region gains plus a 10 MB loop that only a farsighted
  // 64-core allocator can (unwisely) chase.
  v.push_back(app("lbm", "lb", kSensitiveLow,
                  phase({uniform(224 * kKiB, 0.62), loop(10 * kMiB, 0.22), stream(0.16)},
                        6.0, 0.45, 30.0)));
  v.push_back(app("tonto", "to", kSensitiveLow,
                  phase({uniform(288 * kKiB, 0.85), stream(0.15)}, 2.0, 0.50, 7.0)));
  v.push_back(app("wrf", "wr", kSensitiveLow,
                  phase({uniform(224 * kKiB, 0.90), stream(0.10)}, 2.5, 0.55, 6.0)));
  v.push_back(app("leslie3d", "le", kSensitiveLow,
                  phase({uniform(320 * kKiB, 0.80), stream(0.20)}, 3.5, 0.50, 11.0)));
  v.push_back(app("hmmer", "hm", kSensitiveLow,
                  phase({uniform(160 * kKiB, 0.95), stream(0.05)}, 1.4, 0.50, 5.0)));

  // ---- Cache-sensitive low medium (LM): gains through 8 MB. ----
  v.push_back(app("dealII", "de", kSensitiveLowMedium,
                  phase(with_ladder({uniform(96 * kKiB, 0.35), stream(0.10)}, 2 * kMiB, 0.55),
                        2.0, 0.50, 10.0)));
  v.push_back(phased_app(
      "omnetpp", "om", kSensitiveLowMedium,
      {phase(with_ladder({uniform(128 * kKiB, 0.30), stream(0.10)}, 3 * kMiB, 0.60),
             2.2, 0.55, 16.0),
       phase(with_ladder({uniform(128 * kKiB, 0.45), stream(0.10)}, 2 * kMiB, 0.45),
             2.2, 0.55, 12.0)},
      200));
  // xalancbmk: the paper's canonical farsighted-vs-nearsighted example —
  // a 1.75 MB loop produces a miss-curve cliff DELTA's window cannot see.
  // High MLP makes xalancbmk's misses cheap per-miss but plentiful: the
  // miss-count-driven centralized allocator chases the cliff, DELTA's
  // MLP-scaled windowed gain does not (the Fig. 7 wedge).
  v.push_back(app("xalancbmk", "xa", kSensitiveLowMedium,
                  phase({uniform(160 * kKiB, 0.22), uniform(768 * kKiB, 0.10),
                         loop(1280 * kKiB, 0.60), stream(0.08)},
                        4.5, 0.50, 28.0)));
  v.push_back(app("gobmk", "go", kSensitiveLowMedium,
                  phase(with_ladder({uniform(256 * kKiB, 0.50), stream(0.10)}, 1536 * kKiB, 0.40),
                        1.8, 0.60, 8.0)));
  v.push_back(app("bzip2", "bz", kSensitiveLowMedium,
                  phase(with_ladder({uniform(192 * kKiB, 0.40), stream(0.10)}, 2560 * kKiB, 0.50),
                        2.5, 0.50, 12.0)));
  v.push_back(phased_app(
      "gcc", "gc", kSensitiveLowMedium,
      {phase(with_ladder({uniform(160 * kKiB, 0.35), stream(0.10)}, 4 * kMiB, 0.55),
             2.0, 0.55, 9.0),
       phase(with_ladder({uniform(320 * kKiB, 0.60), stream(0.10)}, 1 * kMiB, 0.30),
             2.0, 0.55, 6.0)},
      150));
  v.push_back(phased_app(
      "mcf", "mc", kSensitiveLowMedium,
      {phase(with_ladder({uniform(256 * kKiB, 0.25), stream(0.15)}, 5 * kMiB, 0.60),
             4.0, 0.70, 35.0),
       phase(with_ladder({uniform(512 * kKiB, 0.45), stream(0.15)}, 3 * kMiB, 0.40),
             4.0, 0.70, 28.0)},
      150));
  // soplex: second cliff application (2.5 MB loop).
  // soplex mixes a smooth ring DELTA can grow into with a 2 MB loop only
  // the farsighted allocator crosses (Fig. 7: ideal +35% over DELTA).
  v.push_back(app("soplex", "so", kSensitiveLowMedium,
                  phase({uniform(160 * kKiB, 0.20), uniform(768 * kKiB, 0.10),
                         loop(1280 * kKiB, 0.58), stream(0.12)},
                        5.0, 0.50, 30.0)));
  v.push_back(app("perlbench", "pe", kSensitiveLowMedium,
                  phase(with_ladder({uniform(224 * kKiB, 0.45), stream(0.10)}, 1792 * kKiB, 0.45),
                        1.7, 0.50, 7.0)));
  v.push_back(app("sphinx3", "sp", kSensitiveLowMedium,
                  phase(with_ladder({uniform(128 * kKiB, 0.35), stream(0.10)}, 2252 * kKiB, 0.55),
                        2.3, 0.50, 11.0)));
  v.push_back(app("calculix", "ca", kSensitiveLowMedium,
                  phase(with_ladder({uniform(192 * kKiB, 0.50), stream(0.08)}, 1228 * kKiB, 0.42),
                        2.0, 0.45, 6.0)));
  v.push_back(app("cactusADM", "cac", kSensitiveLowMedium,
                  phase(with_ladder({uniform(288 * kKiB, 0.40), stream(0.10)}, 3584 * kKiB, 0.50),
                        3.0, 0.60, 10.0)));

  return v;
}

// Combined name index over every AppProfile family: the Table III stand-ins
// and the irregular-access kernels resolve through the same lookup, so the
// simulator core, mixes, delta_sim --apps and the fuzz pool need no
// per-family dispatch.
const std::unordered_map<std::string_view, const AppProfile*>& index() {
  static const std::unordered_map<std::string_view, const AppProfile*> map = [] {
    std::unordered_map<std::string_view, const AppProfile*> m;
    for (const auto* family : {&spec_profiles(), &irregular_profiles()}) {
      for (const AppProfile& p : *family) {
        m[p.name] = &p;
        m[p.short_name] = &p;
      }
    }
    return m;
  }();
  return map;
}

}  // namespace

const std::vector<AppProfile>& spec_profiles() {
  static const std::vector<AppProfile> profiles = build_profiles();
  return profiles;
}

const AppProfile& spec_profile(std::string_view name) {
  const auto& idx = index();
  auto it = idx.find(name);
  if (it == idx.end()) throw std::out_of_range("unknown app profile: " + std::string(name));
  return *it->second;
}

bool has_spec_profile(std::string_view name) { return index().contains(name); }

}  // namespace delta::workload
