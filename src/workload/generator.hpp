// Trace generator: turns an AppProfile into a deterministic stream of
// LLC-bound block addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/profile.hpp"

namespace delta::workload {

class TraceGen {
 public:
  /// `base_addr` keeps distinct program instances in disjoint address
  /// ranges (multi-programmed workloads share nothing).  `seed` controls
  /// every random choice; equal seeds give equal streams.
  TraceGen(const AppProfile& profile, Addr base_addr, std::uint64_t seed);

  /// Next block address of the post-L2 access stream.
  BlockAddr next();

  /// Selects the active phase for a global epoch counter (phase offsets are
  /// derived from the seed so replicated instances de-synchronise).
  void set_epoch(std::uint64_t epoch);

  const Phase& phase() const { return *phase_; }
  const AppProfile& profile() const { return profile_; }
  Addr base_addr() const { return base_; }

 private:
  struct RingState {
    BlockAddr base_block = 0;
    std::uint64_t lines = 0;
    std::uint64_t pos = 0;   ///< Loop/stream/walk cursor.
    std::uint64_t salt = 0;  ///< Hash salt; bumped per pass (kHashJoin).
  };
  struct PhaseState {
    std::vector<RingState> rings;
    std::vector<double> cum_weight;
  };

  const AppProfile& profile_;
  Addr base_;
  Rng rng_;
  std::uint32_t phase_offset_ = 0;
  std::size_t phase_idx_ = 0;
  const Phase* phase_ = nullptr;
  std::vector<PhaseState> states_;

  /// Streams wrap at this many lines so footprints stay bounded while reuse
  /// distance remains far beyond any allocatable capacity.
  static constexpr std::uint64_t kStreamWrapLines = lines_in(256 * kMiB);
};

}  // namespace delta::workload
