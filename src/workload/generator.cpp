#include "workload/generator.hpp"

#include <cassert>

namespace delta::workload {

std::string to_string(AppClass c) {
  switch (c) {
    case AppClass::kInsensitive: return "I";
    case AppClass::kThrashing: return "T";
    case AppClass::kSensitiveLow: return "L";
    case AppClass::kSensitiveLowMedium: return "LM";
  }
  return "?";
}

TraceGen::TraceGen(const AppProfile& profile, Addr base_addr, std::uint64_t seed)
    : profile_(profile), base_(base_addr), rng_(seed) {
  assert(!profile.phases.empty());
  phase_offset_ = static_cast<std::uint32_t>(mix64(seed ^ 0x5eedULL) & 0xFFFF);

  states_.resize(profile.phases.size());
  for (std::size_t p = 0; p < profile.phases.size(); ++p) {
    const Phase& ph = profile.phases[p];
    PhaseState& st = states_[p];
    assert(!ph.rings.empty());
    BlockAddr cursor = block_of(base_);
    double cum = 0.0;
    for (const Ring& r : ph.rings) {
      RingState rs;
      rs.base_block = cursor;
      rs.lines = r.kind == RingKind::kStream ? kStreamWrapLines : lines_in(r.bytes);
      if (rs.lines == 0) rs.lines = 1;
      // Start loops/streams at a seed-dependent offset so replicated copies
      // are phase-shifted relative to each other.
      rs.pos = mix64(seed ^ (cursor * 0x9e37ULL)) % rs.lines;
      cursor += rs.lines;
      cum += r.weight;
      st.rings.push_back(rs);
      st.cum_weight.push_back(cum);
    }
    // Normalise so the last cumulative weight is exactly the total.
    assert(cum > 0.0);
  }
  phase_idx_ = 0;
  phase_ = &profile_.phases[0];
}

void TraceGen::set_epoch(std::uint64_t epoch) {
  if (profile_.phases.size() <= 1 || profile_.phase_len_epochs == 0) return;
  const std::uint64_t idx =
      ((epoch + phase_offset_) / profile_.phase_len_epochs) % profile_.phases.size();
  phase_idx_ = static_cast<std::size_t>(idx);
  phase_ = &profile_.phases[phase_idx_];
}

BlockAddr TraceGen::next() {
  PhaseState& st = states_[phase_idx_];
  const Phase& ph = *phase_;

  // Weighted ring choice via the cumulative table (few rings => linear scan).
  const double total = st.cum_weight.back();
  const double r = rng_.uniform() * total;
  std::size_t i = 0;
  while (i + 1 < st.cum_weight.size() && r >= st.cum_weight[i]) ++i;

  RingState& rs = st.rings[i];
  switch (ph.rings[i].kind) {
    case RingKind::kUniform:
      return rs.base_block + rng_.below(rs.lines);
    case RingKind::kLoop: {
      const BlockAddr b = rs.base_block + rs.pos;
      // pos < lines always holds, so the wrap needs a compare, not a modulo
      // (this advance runs for every generated loop/stream access).
      if (++rs.pos == rs.lines) rs.pos = 0;
      return b;
    }
    case RingKind::kStream: {
      const BlockAddr b = rs.base_block + rs.pos;
      if (++rs.pos == rs.lines) rs.pos = 0;
      return b;
    }
  }
  return rs.base_block;
}

}  // namespace delta::workload
