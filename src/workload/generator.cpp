#include "workload/generator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace delta::workload {

std::string to_string(AppClass c) {
  switch (c) {
    case AppClass::kInsensitive: return "I";
    case AppClass::kThrashing: return "T";
    case AppClass::kSensitiveLow: return "L";
    case AppClass::kSensitiveLowMedium: return "LM";
  }
  return "?";
}

TraceGen::TraceGen(const AppProfile& profile, Addr base_addr, std::uint64_t seed)
    : profile_(profile), base_(base_addr), rng_(seed) {
  assert(!profile.phases.empty());
  phase_offset_ = static_cast<std::uint32_t>(mix64(seed ^ 0x5eedULL) & 0xFFFF);

  states_.resize(profile.phases.size());
  for (std::size_t p = 0; p < profile.phases.size(); ++p) {
    const Phase& ph = profile.phases[p];
    PhaseState& st = states_[p];
    assert(!ph.rings.empty());
    BlockAddr cursor = block_of(base_);
    double cum = 0.0;
    for (const Ring& r : ph.rings) {
      RingState rs;
      rs.base_block = cursor;
      rs.lines = r.kind == RingKind::kStream ? kStreamWrapLines : lines_in(r.bytes);
      if (rs.lines == 0) rs.lines = 1;
      // Start loops/streams at a seed-dependent offset so replicated copies
      // are phase-shifted relative to each other.
      rs.pos = mix64(seed ^ (cursor * 0x9e37ULL)) % rs.lines;
      cursor += rs.lines;
      cum += r.weight;
      st.rings.push_back(rs);
      st.cum_weight.push_back(cum);
    }
    // Normalise so the last cumulative weight is exactly the total.
    assert(cum > 0.0);
  }
  phase_idx_ = 0;
  phase_ = &profile_.phases[0];
}

void TraceGen::set_epoch(std::uint64_t epoch) {
  if (profile_.phases.size() <= 1 || profile_.phase_len_epochs == 0) return;
  const std::uint64_t idx =
      ((epoch + phase_offset_) / profile_.phase_len_epochs) % profile_.phases.size();
  phase_idx_ = static_cast<std::size_t>(idx);
  phase_ = &profile_.phases[phase_idx_];
}

BlockAddr TraceGen::next() {
  PhaseState& st = states_[phase_idx_];
  const Phase& ph = *phase_;

  // Weighted ring choice via the cumulative table (few rings => linear scan).
  const double total = st.cum_weight.back();
  const double r = rng_.uniform() * total;
  std::size_t i = 0;
  while (i + 1 < st.cum_weight.size() && r >= st.cum_weight[i]) ++i;

  RingState& rs = st.rings[i];
  switch (ph.rings[i].kind) {
    case RingKind::kUniform:
      return rs.base_block + rng_.below(rs.lines);
    case RingKind::kLoop: {
      const BlockAddr b = rs.base_block + rs.pos;
      // pos < lines always holds, so the wrap needs a compare, not a modulo
      // (this advance runs for every generated loop/stream access).
      if (++rs.pos == rs.lines) rs.pos = 0;
      return b;
    }
    case RingKind::kStream: {
      const BlockAddr b = rs.base_block + rs.pos;
      if (++rs.pos == rs.lines) rs.pos = 0;
      return b;
    }
    case RingKind::kGather: {
      // Gather/scatter: one sequential index-array line feeds eight
      // permuted data touches (a 64 B line holds eight u64 indices; the
      // index stream is hardware-prefetch-friendly in real kernels, so it
      // is modelled compact).  Data lines come from a per-sweep affine
      // bijection over the region — a *permutation*, not draws with
      // replacement, so reuse distance equals the region size and the
      // ring's miss curve is flat below it (no short-distance collisions
      // an LRU cache could exploit).
      const std::uint64_t mask = std::bit_floor(rs.lines) - 1;
      const std::uint64_t idx_lines =
          std::clamp<std::uint64_t>(rs.lines / 16, 1, 128);
      const std::uint64_t step = rs.pos;
      if (++rs.pos >= 8 * rs.lines) {
        rs.pos = 0;
        ++rs.salt;  // Fresh gather permutation each full sweep.
      }
      if ((step & 7) == 0) return rs.base_block + (step >> 3) % idx_lines;
      const std::uint64_t a = mix64(rs.salt ^ 0x517cc1b727220a95ULL) | 1;
      const std::uint64_t c = mix64(rs.salt + 0x2545f4914f6cdd1dULL);
      return rs.base_block + ((step * a + c) & mask);
    }
    case RingKind::kHashJoin: {
      // Hash-join build/probe: each pass visits every bucket exactly once
      // in a salted pseudo-random order (odd multiplier => the affine map
      // is a bijection on the power-of-two bucket range).  Re-salting per
      // pass makes build and successive probe passes fresh orders while
      // keeping the reuse distance pinned at the table size: a flat miss
      // curve below the table, like real hash joins.
      const std::uint64_t mask = std::bit_floor(rs.lines) - 1;
      const std::uint64_t a = mix64(rs.salt ^ 0x517cc1b727220a95ULL) | 1;
      const std::uint64_t c = mix64(rs.salt + 0x2545f4914f6cdd1dULL);
      const BlockAddr b = rs.base_block + ((rs.pos * a + c) & mask);
      if (++rs.pos >= mask + 1) {
        rs.pos = 0;
        ++rs.salt;  // Next pass: a new build/probe order.
      }
      return b;
    }
    case RingKind::kWalk: {
      // Graph traversal: a full-period LCG walk over node ids (a = 1 mod
      // 4, c odd => full period on the power-of-two range), scrambled by
      // an odd-multiplier bijection so successive nodes share no spatial
      // structure.  Every node is visited once per period: pointer chasing
      // with reuse distance = the graph size, flat below it.
      const std::uint64_t mask = std::bit_floor(rs.lines) - 1;
      rs.pos = (rs.pos * 6364136223846793005ULL + 1442695040888963407ULL) & mask;
      return rs.base_block + ((rs.pos * 0x9e3779b97f4a7c15ULL) & mask);
    }
  }
  return rs.base_block;
}

}  // namespace delta::workload
