// Synthetic application profiles.
//
// The paper drives its evaluation with SPEC CPU2006 whole-program pinballs.
// Those traces are proprietary, so each benchmark is replaced by a
// *working-set mixture* model that reproduces the statistics the allocation
// policies actually observe: the LLC-access (private-L2 miss) rate, the miss
// curve shape vs. allocated capacity, and the memory-level parallelism.
//
// A profile is a sequence of phases; each phase mixes "rings":
//   * kUniform — uniformly random lines inside a region; in an LRU cache of
//     capacity C this converges to a hit ratio of ~min(1, C/size): a smooth,
//     concave miss curve (typical cache-friendly data).
//   * kLoop    — cyclic sequential sweep over a region; under LRU this hits
//     *nothing* until the whole region fits, then everything: a cliff in the
//     miss curve.  This models the xalancbmk/soplex behaviour the paper
//     highlights (Fig. 7): a *farsighted* allocator sees the cliff, DELTA's
//     windowed gain does not.
//   * kStream  — ever-advancing stream, no reuse at cacheable distances
//     (thrashing applications: bwaves, libquantum, milc).
//
// The irregular-access family (workload/irregular.hpp) adds three kinds
// whose reuse distances sit near the region size — within any allocatable
// capacity their miss curves are *flat* (no cliff, no slope for an
// allocator to climb):
//   * kGather   — gather/scatter: even steps sweep a compact index array
//     sequentially, odd steps touch hash-scattered lines of the data
//     region (sparse matrix / column-gather kernels).
//   * kHashJoin — hashed one-pass sweeps over a table region; each wrap
//     re-salts the hash, so build and successive probe passes visit the
//     buckets in fresh pseudo-random orders.
//   * kWalk     — graph traversal: a full-period affine walk over node
//     ids, each id scattered through a hash into the region (pointer
//     chasing with no spatial locality).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace delta::workload {

enum class RingKind : std::uint8_t {
  kUniform,
  kLoop,
  kStream,
  kGather,
  kHashJoin,
  kWalk,
};

/// Table III sensitivity classes.
enum class AppClass : std::uint8_t {
  kInsensitive,         // I
  kThrashing,           // T
  kSensitiveLow,        // L   (gains 128 KB -> 512 KB)
  kSensitiveLowMedium,  // LM  (gains also 512 KB -> 8 MB)
};

std::string to_string(AppClass c);

struct Ring {
  std::uint64_t bytes = 0;  ///< Region size.
  double weight = 0.0;      ///< Fraction of accesses hitting this ring.
  RingKind kind = RingKind::kUniform;
};

struct Phase {
  std::vector<Ring> rings;
  double mlp = 1.0;        ///< Average outstanding LLC misses (Eq. 1/2's m).
  double cpi_base = 0.5;   ///< CPI excluding LLC-access stalls.
  double apki = 10.0;      ///< LLC accesses (L2 misses) per kilo-instruction.
};

struct AppProfile {
  std::string name;        ///< Full SPEC name, e.g. "xalancbmk".
  std::string short_name;  ///< Table III/IV code, e.g. "xa".
  AppClass cls = AppClass::kInsensitive;
  std::vector<Phase> phases;
  /// Phase length in 0.1 ms epochs; 0 disables phase switching.
  std::uint32_t phase_len_epochs = 0;

  const Phase& phase_at(std::uint64_t epoch, std::uint32_t offset = 0) const {
    if (phases.size() <= 1 || phase_len_epochs == 0) return phases.front();
    const std::uint64_t idx = ((epoch + offset) / phase_len_epochs) % phases.size();
    return phases[static_cast<std::size_t>(idx)];
  }

  /// Total bytes touched by the largest phase (diagnostics only).
  std::uint64_t footprint_bytes() const {
    std::uint64_t best = 0;
    for (const auto& p : phases) {
      std::uint64_t f = 0;
      for (const auto& r : p.rings) f += r.bytes;
      best = best > f ? best : f;
    }
    return best;
  }
};

}  // namespace delta::workload
