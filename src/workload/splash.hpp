// Synthetic SPLASH2 stand-ins for the multithreaded study (Sec. IV-C).
//
// The paper instruments SPLASH2 with a pintool to measure inter-thread
// sharing at page and block granularity (Table V), then *estimates* DELTA's
// performance by a piecewise reconstruction: accesses to private pages at
// the private-LLC baseline's performance, accesses to shared pages at the
// S-NUCA baseline's.  We reproduce that pipeline with page-structured
// synthetic generators whose sharing ratios are calibrated to Table V.
//
// Sharing structure per application:
//  * pure-private pages  — touched by exactly one thread, with a tunable
//    touched-block density (sparse private pages push block-private% below
//    page-private%, the fmm pattern);
//  * boundary pages      — owned by one thread but with a few blocks also
//    touched by a neighbour (grid halos): the page classifies shared while
//    most of its *blocks* stay single-thread (the ocean pattern: 38% private
//    pages but 98.6% private blocks);
//  * fully shared pages  — touched by many threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delta::workload {

struct SplashProfile {
  std::string name;
  int threads = 16;
  // Page population (4 KiB pages, 64 blocks each).
  int private_pages_per_thread = 48;   ///< Pure-private pages per thread.
  int boundary_pages_per_thread = 0;   ///< Halo pages per thread.
  int shared_pages = 64;               ///< Fully shared pages.
  int private_block_density = 64;      ///< Touched blocks per private page (1..64).
  int boundary_shared_blocks = 2;      ///< Blocks per boundary page a neighbour touches.
  // Access behaviour.
  double shared_access_frac = 0.3;     ///< Fraction of accesses to shared pages.
  double boundary_access_frac = 0.0;   ///< Fraction to boundary pages (rest: private).
  double write_frac = 0.25;            ///< Fraction of accesses that are writes.
  double mlp = 3.0;
  double cpi_base = 0.6;
  double apki = 8.0;
  // Table V calibration targets (percent private).
  double target_private_pages_pct = 0.0;
  double target_private_blocks_pct = 0.0;
  bool block_target_estimated = false;  ///< True where Table V's block row is unreadable.
};

/// The 14 SPLASH2 applications of Table V.
const std::vector<SplashProfile>& splash_profiles();
const SplashProfile& splash_profile(const std::string& name);

struct SplashAccess {
  CoreId thread = 0;
  BlockAddr block = 0;
  bool is_write = false;
};

/// Deterministic page-structured access generator for one application.
class SplashGen {
 public:
  SplashGen(const SplashProfile& p, std::uint64_t seed);

  /// Next access, round-robin across threads (BSP-style interleaving).
  SplashAccess next();

  const SplashProfile& profile() const { return p_; }
  /// Total data pages laid out for this application.
  int total_pages() const { return total_pages_; }
  Addr page_addr(int page) const { return static_cast<Addr>(page) * kPageBytes; }

 private:
  BlockAddr pick_block(CoreId t);

  const SplashProfile& p_;
  Rng rng_;
  CoreId next_thread_ = 0;
  int total_pages_ = 0;
  // Page layout (page indices into a flat address space):
  // [thread0 private][thread0 boundary] ... [threadN-1 ...][shared pages].
  int priv_base_ = 0, bound_base_ = 0, shared_base_ = 0;
};

/// Ground-truth sharing measurement (the paper's pintool equivalent):
/// streams `accesses` through the generator and reports the percentage of
/// pages/blocks touched by exactly one thread.
struct SharingMeasurement {
  double private_pages_pct = 0.0;
  double private_blocks_pct = 0.0;
  std::uint64_t pages_touched = 0;
  std::uint64_t blocks_touched = 0;
};
SharingMeasurement measure_sharing(const SplashProfile& p, std::uint64_t accesses,
                                   std::uint64_t seed = 7);

}  // namespace delta::workload
