#include "workload/classify.hpp"

#include <cassert>

#include "mem/cache.hpp"
#include "mem/replacement.hpp"
#include "workload/generator.hpp"

namespace delta::workload {
namespace {

struct RunStats {
  double miss_rate = 0.0;
  double ipc = 0.0;
};

RunStats run_alone(const AppProfile& profile, std::uint64_t cache_bytes,
                   const ClassifyConfig& cfg) {
  constexpr int kWays = 16;
  const std::uint32_t sets =
      static_cast<std::uint32_t>(lines_in(cache_bytes) / kWays);
  assert(sets >= 1);
  mem::SetAssocCache cache(sets, kWays);
  const mem::WayMask all = mem::full_mask(kWays);

  TraceGen gen(profile, /*base_addr=*/0, cfg.seed);
  for (std::uint64_t i = 0; i < cfg.warmup_accesses; ++i) {
    const BlockAddr b = gen.next();
    cache.access(static_cast<std::uint32_t>(b % sets), b, 0, all);
  }
  cache.reset_stats();
  for (std::uint64_t i = 0; i < cfg.measured_accesses; ++i) {
    const BlockAddr b = gen.next();
    cache.access(static_cast<std::uint32_t>(b % sets), b, 0, all);
  }

  const Phase& ph = profile.phases.front();
  RunStats rs;
  rs.miss_rate = cache.stats().miss_rate();
  const double avg_lat =
      rs.miss_rate * cfg.miss_latency + (1.0 - rs.miss_rate) * cfg.hit_latency;
  // Interval-model cycle accounting: base CPI plus LLC-access stalls
  // overlapped by the application's memory-level parallelism.
  const double cpi = ph.cpi_base + (ph.apki / 1000.0) * avg_lat / ph.mlp;
  rs.ipc = 1.0 / cpi;
  return rs;
}

}  // namespace

double standalone_ipc(const AppProfile& profile, std::uint64_t cache_bytes,
                      const ClassifyConfig& cfg) {
  return run_alone(profile, cache_bytes, cfg).ipc;
}

double standalone_miss_rate(const AppProfile& profile, std::uint64_t cache_bytes,
                            const ClassifyConfig& cfg) {
  return run_alone(profile, cache_bytes, cfg).miss_rate;
}

ClassifyResult classify(const AppProfile& profile, const ClassifyConfig& cfg) {
  ClassifyResult r;
  r.ipc_128k = standalone_ipc(profile, 128 * kKiB, cfg);
  r.ipc_512k = standalone_ipc(profile, 512 * kKiB, cfg);
  r.ipc_8m = standalone_ipc(profile, 8 * kMiB, cfg);
  const double miss_8m = standalone_miss_rate(profile, 8 * kMiB, cfg);
  r.mpki_8m = profile.phases.front().apki * miss_8m;
  r.improvement_low = (r.ipc_512k - r.ipc_128k) / r.ipc_128k;
  r.improvement_med = (r.ipc_8m - r.ipc_512k) / r.ipc_512k;

  const bool low = r.improvement_low > cfg.improvement_threshold;
  const bool med = r.improvement_med > cfg.improvement_threshold;
  if (low && med) {
    r.cls = AppClass::kSensitiveLowMedium;
  } else if (low) {
    r.cls = AppClass::kSensitiveLow;
  } else if (med) {
    r.cls = AppClass::kSensitiveLowMedium;
  } else if (r.mpki_8m > cfg.thrashing_mpki) {
    r.cls = AppClass::kThrashing;
  } else {
    r.cls = AppClass::kInsensitive;
  }
  return r;
}

}  // namespace delta::workload
