#include "workload/irregular.hpp"

namespace delta::workload {
namespace {

Ring uniform(std::uint64_t bytes, double w) { return Ring{bytes, w, RingKind::kUniform}; }
Ring stream(double w) { return Ring{0, w, RingKind::kStream}; }
Ring gather(std::uint64_t bytes, double w) { return Ring{bytes, w, RingKind::kGather}; }
Ring hashjoin(std::uint64_t bytes, double w) { return Ring{bytes, w, RingKind::kHashJoin}; }
Ring walk(std::uint64_t bytes, double w) { return Ring{bytes, w, RingKind::kWalk}; }

// Same hierarchy CPI convention as the SPEC stand-ins (spec.cpp): the
// generators emit only the post-L2 stream, so L1/L2-resident work is folded
// into the base CPI.
constexpr double kHierarchyCpi = 0.9;

Phase phase(std::vector<Ring> rings, double mlp, double cpi_base, double apki) {
  Phase p;
  p.rings = std::move(rings);
  p.mlp = mlp;
  p.cpi_base = cpi_base + kHierarchyCpi;
  p.apki = apki;
  return p;
}

AppProfile app(std::string name, std::string code, AppClass cls, Phase p) {
  AppProfile a;
  a.name = std::move(name);
  a.short_name = std::move(code);
  a.cls = cls;
  a.phases.push_back(std::move(p));
  return a;
}

AppProfile phased_app(std::string name, std::string code, AppClass cls,
                      std::vector<Phase> phases, std::uint32_t phase_len_epochs) {
  AppProfile a;
  a.name = std::move(name);
  a.short_name = std::move(code);
  a.cls = cls;
  a.phases = std::move(phases);
  a.phase_len_epochs = phase_len_epochs;
  return a;
}

std::vector<AppProfile> build_profiles() {
  using enum AppClass;
  std::vector<AppProfile> v;

  // Class labels are what the Sec. III-B procedure measures on these
  // generators (tests/test_classify.cpp runs the classifier over the whole
  // family): flat curves mean <10% IPC gain at every classification point,
  // so the family splits purely on MPKI — high-rate kernels classify T,
  // the low-rate traversal classifies I.  None can classify L/LM: a flat
  // curve has no capacity region worth paying for, which is precisely the
  // property the allocators are being tested on.

  // Sparse matrix-vector product: sequential index stream feeding gathers
  // scattered across a 32 MiB source vector; a small accumulator tile is
  // the only cacheable state.
  v.push_back(app("spmv", "sv", kThrashing,
                  phase({uniform(96 * kKiB, 0.12), gather(32 * kMiB, 0.83), stream(0.05)},
                        5.0, 0.50, 20.0)));

  // Hash join, phased: the build pass writes a 32 MiB table in hashed
  // bucket order, then probe passes re-visit it with fresh key orders
  // while a hot key subset and the probe input stream ride along.
  v.push_back(phased_app(
      "hashjoin", "hj", kThrashing,
      {phase({hashjoin(32 * kMiB, 0.85), uniform(64 * kKiB, 0.10), stream(0.05)},
             4.5, 0.50, 22.0),
       phase({hashjoin(32 * kMiB, 0.60), uniform(96 * kKiB, 0.28), stream(0.12)},
             4.5, 0.50, 16.0)},
      120));

  // Breadth-first search over a 32 MiB adjacency structure: hashed node
  // walk plus a modest frontier the traversal re-reads.
  v.push_back(app("bfs", "bf", kThrashing,
                  phase({uniform(112 * kKiB, 0.25), walk(32 * kMiB, 0.70), stream(0.05)},
                        3.5, 0.55, 14.0)));

  // PageRank-style edge-centric pass: rank reads scatter across a 64 MiB
  // graph with almost nothing hot.
  v.push_back(app("pagerank", "pr", kThrashing,
                  phase({uniform(64 * kKiB, 0.12), walk(64 * kMiB, 0.83), stream(0.05)},
                        6.0, 0.45, 26.0)));

  // Pointer-chasing traversal with a low access rate: the same flat curve
  // at an MPKI below the thrashing threshold classifies insensitive —
  // the allocator still must not feed it ways.
  v.push_back(app("gwalk", "gw", kInsensitive,
                  phase({uniform(80 * kKiB, 0.30), walk(16 * kMiB, 0.65), stream(0.05)},
                        2.0, 0.55, 3.5)));

  return v;
}

}  // namespace

const std::vector<AppProfile>& irregular_profiles() {
  static const std::vector<AppProfile> profiles = build_profiles();
  return profiles;
}

bool is_irregular_profile(std::string_view name) {
  for (const auto& p : irregular_profiles())
    if (p.name == name || p.short_name == name) return true;
  return false;
}

}  // namespace delta::workload
