// Synthetic stand-ins for the 29 SPEC CPU2006 benchmarks of Table III.
//
// Each profile is calibrated so the Sec. III-B classification procedure
// (IPC improvement across 128 KB / 512 KB / 8 MB LLCs, MPKI threshold 5)
// reproduces the paper's class assignment — verified by unit tests that run
// the actual classifier over these generators.
//
// Special shapes called out by the paper's analysis:
//  * xalancbmk, soplex — LOOP working sets (miss-curve cliffs at ~1.75 MB /
//    ~2.5 MB): a farsighted centralized allocator crosses the cliff, DELTA's
//    4-way gain window sees nothing (Fig. 7 discussion).
//  * lbm, libquantum — huge LOOP rings (10 MB / 12 MB) invisible within a
//    16-core 6 MB allocation cap but inside the 64-core 24 MB cap, baiting
//    the farsighted allocator into >250-way allocations (Fig. 11).
//  * gcc, mcf, omnetpp — phase alternation (exercises the reconfiguration-
//    frequency study, Fig. 13).
#pragma once

#include <string_view>
#include <vector>

#include "workload/profile.hpp"

namespace delta::workload {

/// All 29 profiles in a stable order.
const std::vector<AppProfile>& spec_profiles();

/// Lookup by short code ("xa") or full name ("xalancbmk"); throws
/// std::out_of_range on unknown names.  Resolves every AppProfile family —
/// the Table III stand-ins and the irregular-access kernels
/// (workload/irregular.hpp) share this index.
const AppProfile& spec_profile(std::string_view name);

/// True if `name` resolves to a profile (any family).
bool has_spec_profile(std::string_view name);

}  // namespace delta::workload
