#include "workload/mixes.hpp"

#include <cassert>
#include <stdexcept>

#include "workload/spec.hpp"

namespace delta::workload {
namespace {

Mix mix(std::string name, std::string comp, std::vector<std::string> apps) {
  assert(apps.size() == 16);
  for (const auto& a : apps) {
    if (!has_spec_profile(a)) throw std::logic_error("mix references unknown app: " + a);
  }
  return Mix{std::move(name), std::move(comp), std::move(apps)};
}

std::vector<Mix> build() {
  std::vector<Mix> v;
  v.push_back(mix("w1", "LM",
      {"de", "om", "om", "pe", "ca", "bz", "go", "go", "ca", "hm", "le", "go", "bz", "gc", "so", "mc"}));
  v.push_back(mix("w2", "L+LM",
      {"bw", "sj", "na", "ze", "li", "mi", "xa", "so", "de", "om", "go", "go", "bz", "gc", "mc", "pe"}));
  v.push_back(mix("w3", "T+L",
      {"to", "to", "bw", "bw", "bw", "lb", "lb", "li", "li", "li", "h2", "mi", "gr", "as", "ga", "mi"}));
  v.push_back(mix("w4", "T+LM",
      {"de", "bw", "bw", "bw", "so", "li", "li", "hm", "pe", "mi", "mi", "mi", "go", "om", "bz", "go"}));
  v.push_back(mix("w5", "I+L+LM",
      {"gc", "po", "Ge", "as", "pe", "wr", "ga", "cac", "to", "hm", "sj", "h2", "bz", "ze", "gr", "so"}));
  v.push_back(mix("w6", "I+T+L+LM",
      {"na", "de", "li", "gr", "wr", "so", "mi", "as", "mi", "to", "ze", "om", "bw", "h2", "Ge", "hm"}));
  v.push_back(mix("w7", "I+T+LM",
      {"sj", "bw", "bw", "bz", "wr", "li", "li", "gc", "mi", "de", "na", "om", "ze", "mi", "go", "Ge"}));
  v.push_back(mix("w8", "I+T+L",
      {"po", "bw", "bw", "h2", "sj", "li", "li", "gr", "na", "mi", "as", "Ge", "ga", "wr", "lb", "mi"}));
  v.push_back(mix("w9", "I+LM",
      {"po", "om", "sj", "sj", "go", "na", "na", "le", "ze", "go", "Ge", "bz", "wr", "ca", "sp", "gc"}));
  v.push_back(mix("w10", "I+L",
      {"po", "to", "sj", "h2", "h2", "na", "lb", "lb", "ze", "ze", "gr", "Ge", "as", "wr", "ga", "po"}));
  v.push_back(mix("w11", "T+L+LM",
      {"sp", "bw", "h2", "om", "li", "gr", "go", "mi", "mi", "as", "hm", "bw", "ga", "le", "lb", "ca"}));
  v.push_back(mix("w12", "random",
      {"go", "lb", "ca", "sp", "bw", "go", "li", "li", "ga", "h2", "ze", "to", "so", "gr", "mi", "pe"}));
  v.push_back(mix("w13", "random",
      {"lb", "to", "pe", "go", "gc", "mi", "li", "li", "na", "h2", "cac", "ze", "ze", "ca", "so", "as"}));
  v.push_back(mix("w14", "random",
      {"de", "bw", "mc", "li", "pe", "mi", "ca", "wr", "go", "po", "hm", "na", "go", "ze", "so", "Ge"}));
  v.push_back(mix("w15", "random",
      {"to", "to", "po", "lb", "li", "mi", "lb", "wr", "h2", "sj", "gr", "na", "as", "ze", "ga", "Ge"}));
  return v;
}

// Irregular-access mixes (not from Table IV): the flat-curve kernels from
// workload/irregular.hpp alone and against the cache-sensitive and
// streaming SPEC stand-ins.  wi1 asks "does the allocator waste ways when
// *nothing* can use them"; wi2/wi3 ask "does it keep feeding the sensitive
// co-runners while the irregular kernels absorb nothing".
std::vector<Mix> build_irregular() {
  std::vector<Mix> v;
  v.push_back(mix("wi1", "irregular",
      {"sv", "hj", "bf", "pr", "gw", "sv", "hj", "bf", "pr", "gw", "sv", "hj", "bf", "pr", "gw", "sv"}));
  v.push_back(mix("wi2", "irregular+LM",
      {"sv", "hj", "bf", "pr", "de", "om", "xa", "so", "go", "bz", "gc", "mc", "pe", "sp", "gw", "hj"}));
  v.push_back(mix("wi3", "irregular+I+T+L",
      {"sv", "hj", "bf", "pr", "gw", "bw", "li", "mi", "po", "sj", "na", "gr", "as", "to", "hm", "h2"}));
  return v;
}

}  // namespace

const std::vector<Mix>& table4_mixes() {
  static const std::vector<Mix> mixes = build();
  return mixes;
}

const std::vector<Mix>& irregular_mixes() {
  static const std::vector<Mix> mixes = build_irregular();
  return mixes;
}

const Mix& table4_mix(const std::string& name) {
  for (const auto& m : table4_mixes())
    if (m.name == name) return m;
  for (const auto& m : irregular_mixes())
    if (m.name == name) return m;
  throw std::out_of_range("unknown mix: " + name);
}

Mix replicate4(const Mix& m) {
  Mix out;
  out.name = m.name + "x4";
  out.composition = m.composition;
  out.apps.reserve(m.apps.size() * 4);
  for (int r = 0; r < 4; ++r)
    for (const auto& a : m.apps) out.apps.push_back(a);
  return out;
}

}  // namespace delta::workload
