#include "workload/splash.hpp"

#include <cassert>
#include <map>
#include <stdexcept>

namespace delta::workload {
namespace {

constexpr int kBlocksPerPage = static_cast<int>(kPageBytes / kLineBytes);  // 64

SplashProfile make(std::string name, int priv, int bound, int shared, int density,
                   int bb, double shared_af, double bound_af, double mlp,
                   double cpi, double apki, double tgt_page, double tgt_block,
                   bool block_estimated = false) {
  SplashProfile p;
  p.name = std::move(name);
  p.private_pages_per_thread = priv;
  p.boundary_pages_per_thread = bound;
  p.shared_pages = shared;
  p.private_block_density = density;
  p.boundary_shared_blocks = bb;
  p.shared_access_frac = shared_af;
  p.boundary_access_frac = bound_af;
  p.mlp = mlp;
  p.cpi_base = cpi;
  p.apki = apki;
  p.target_private_pages_pct = tgt_page;
  p.target_private_blocks_pct = tgt_block;
  p.block_target_estimated = block_estimated;
  return p;
}

std::vector<SplashProfile> build() {
  // Page-population parameters are solved so that the ground-truth sharing
  // measurement lands on Table V.  Where the paper's block row is
  // unreadable in our source text, the target is estimated from the page
  // row and flagged (`block_target_estimated`).
  std::vector<SplashProfile> v;
  //           name          priv bnd shared dens bb  sh_af  bd_af mlp  cpi  apki  pg%   blk%
  v.push_back(make("barnes",      2,  1,  342, 52,  8, 0.35, 0.05, 2.5, 0.6,  6.0,  8.2,  9.3));
  v.push_back(make("cholesky",   31,  2,  272, 64,  4, 0.30, 0.04, 3.0, 0.55, 8.0, 62.0, 66.0));
  v.push_back(make("fft",         8,  1,  244, 56,  6, 0.50, 0.02, 5.0, 0.5, 12.0, 33.0, 34.0));
  v.push_back(make("fmm",        30,  1,  161, 38,  6, 0.25, 0.03, 2.2, 0.6,  5.0, 73.0, 65.0));
  v.push_back(make("lu.cont",     1,  0, 1592, 38,  0, 0.97, 0.00, 3.5, 0.5, 10.0,  0.5,  0.3));
  v.push_back(make("lu.ncont",    1,  0, 1592, 38,  0, 0.97, 0.00, 3.5, 0.5, 11.0,  0.5,  0.3));
  v.push_back(make("ocean.cont", 19, 31,    0, 64,  1, 0.00, 0.25, 4.0, 0.5, 14.0, 38.0, 98.6));
  v.push_back(make("ocean.ncont",20, 30,    0, 64,  2, 0.00, 0.25, 4.0, 0.5, 14.0, 40.0, 97.0, true));
  v.push_back(make("water.sp",    5,  1,  704, 64,  6, 0.55, 0.05, 2.0, 0.55, 4.0, 10.0, 11.0, true));
  v.push_back(make("radiosity",   2,  0, 1035, 60,  0, 0.90, 0.00, 2.0, 0.6,  5.0,  3.0,  3.5, true));
  v.push_back(make("radix",       3,  0,  875, 64,  0, 0.85, 0.00, 6.0, 0.45,16.0,  5.2,  6.0, true));
  v.push_back(make("raytrace",    9,  1,  687, 60,  6, 0.60, 0.05, 1.8, 0.65, 4.0, 17.0, 18.0, true));
  v.push_back(make("volrend",     3,  1,  778, 64,  4, 0.85, 0.02, 1.6, 0.6,  3.0,  5.7,  7.0, true));
  v.push_back(make("water.nsq",  62,  0,    2, 64,  0, 0.02, 0.00, 2.0, 0.55, 4.0, 99.8, 99.8));
  return v;
}

}  // namespace

const std::vector<SplashProfile>& splash_profiles() {
  static const std::vector<SplashProfile> profiles = build();
  return profiles;
}

const SplashProfile& splash_profile(const std::string& name) {
  for (const auto& p : splash_profiles())
    if (p.name == name) return p;
  throw std::out_of_range("unknown SPLASH2 profile: " + name);
}

SplashGen::SplashGen(const SplashProfile& p, std::uint64_t seed) : p_(p), rng_(seed) {
  const int per_thread = p_.private_pages_per_thread + p_.boundary_pages_per_thread;
  priv_base_ = 0;
  bound_base_ = p_.threads * p_.private_pages_per_thread;
  shared_base_ = bound_base_ + p_.threads * p_.boundary_pages_per_thread;
  total_pages_ = p_.threads * per_thread + p_.shared_pages;
}

BlockAddr SplashGen::pick_block(CoreId t) {
  const double r = rng_.uniform();
  int page;
  int block;
  if (r < p_.shared_access_frac && p_.shared_pages > 0) {
    page = shared_base_ + static_cast<int>(rng_.below(p_.shared_pages));
    block = static_cast<int>(rng_.below(kBlocksPerPage));
  } else if (r < p_.shared_access_frac + p_.boundary_access_frac &&
             p_.boundary_pages_per_thread > 0) {
    // 80%: the owner sweeps its own halo pages; 20%: the neighbour reads
    // the halo blocks of the previous thread's pages (grid boundary).
    const bool neighbour = rng_.chance(0.2);
    const CoreId owner =
        neighbour ? (t + p_.threads - 1) % p_.threads : t;
    page = bound_base_ + owner * p_.boundary_pages_per_thread +
           static_cast<int>(rng_.below(p_.boundary_pages_per_thread));
    block = neighbour
                ? static_cast<int>(rng_.below(p_.boundary_shared_blocks))
                : static_cast<int>(rng_.below(kBlocksPerPage));
  } else {
    page = priv_base_ + t * p_.private_pages_per_thread +
           static_cast<int>(rng_.below(p_.private_pages_per_thread));
    block = static_cast<int>(rng_.below(p_.private_block_density));
  }
  return block_of(page_addr(page)) + static_cast<BlockAddr>(block);
}

SplashAccess SplashGen::next() {
  SplashAccess a;
  a.thread = next_thread_;
  next_thread_ = (next_thread_ + 1) % p_.threads;
  a.block = pick_block(a.thread);
  a.is_write = rng_.chance(p_.write_frac);
  return a;
}

SharingMeasurement measure_sharing(const SplashProfile& p, std::uint64_t accesses,
                                   std::uint64_t seed) {
  SplashGen gen(p, seed);
  // Thread-set per page / per block; 0 = untouched, -2 = multi-thread.
  // std::map, not unordered: pct_private() below iterates, and iteration
  // order must not depend on hash layout for cross-run determinism.
  std::map<std::uint64_t, CoreId> page_toucher;
  std::map<BlockAddr, CoreId> block_toucher;
  constexpr CoreId kMulti = -2;

  for (std::uint64_t i = 0; i < accesses; ++i) {
    const SplashAccess a = gen.next();
    const std::uint64_t page = page_of(addr_of_block(a.block));
    auto mark = [&](auto& map, auto key) {
      auto [it, inserted] = map.try_emplace(key, a.thread);
      if (!inserted && it->second != a.thread) it->second = kMulti;
    };
    mark(page_toucher, page);
    mark(block_toucher, a.block);
  }

  auto pct_private = [&](const auto& map) {
    if (map.empty()) return 0.0;
    std::uint64_t priv = 0;
    for (const auto& [k, t] : map)
      if (t != kMulti) ++priv;
    return 100.0 * static_cast<double>(priv) / static_cast<double>(map.size());
  };

  SharingMeasurement m;
  m.pages_touched = page_toucher.size();
  m.blocks_touched = block_toucher.size();
  m.private_pages_pct = pct_private(page_toucher);
  m.private_blocks_pct = pct_private(block_toucher);
  return m;
}

}  // namespace delta::workload
