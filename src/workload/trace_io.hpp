// Trace file I/O: record a generator's block-address stream to disk and
// replay it later.
//
// The synthetic profiles substitute for SPEC pinballs (DESIGN.md §2); users
// who *do* have real post-L2 traces can feed them through TraceReader and
// run every experiment unmodified.  Format: a 16-byte header ("DLTTRACE",
// version, reserved) followed by raw little-endian uint64 block addresses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace delta::workload {

inline constexpr char kTraceMagic[8] = {'D', 'L', 'T', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;

class TraceWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(BlockAddr block);
  std::uint64_t written() const { return count_; }
  /// Flushes and closes; further appends are invalid.
  void close();

 private:
  std::FILE* f_ = nullptr;
  std::uint64_t count_ = 0;
};

/// Replays a recorded trace; wraps around at the end so the stream is
/// unbounded like the synthetic generators.
class TraceReader {
 public:
  /// Loads the whole trace into memory; throws std::runtime_error on
  /// missing/corrupt files.
  explicit TraceReader(const std::string& path);

  BlockAddr next() {
    const BlockAddr b = blocks_[pos_];
    pos_ = (pos_ + 1) % blocks_.size();
    ++wraps_accum_;
    return b;
  }

  std::size_t size() const { return blocks_.size(); }
  std::uint64_t delivered() const { return wraps_accum_; }

 private:
  std::vector<BlockAddr> blocks_;
  std::size_t pos_ = 0;
  std::uint64_t wraps_accum_ = 0;
};

/// Convenience: record `n` accesses of any generator-like callable.
template <typename Gen>
void record_trace(const std::string& path, Gen&& gen, std::uint64_t n) {
  TraceWriter w(path);
  for (std::uint64_t i = 0; i < n; ++i) w.append(gen());
  w.close();
}

}  // namespace delta::workload
