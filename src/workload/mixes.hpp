// The 15 multi-programmed workload mixes of Table IV.
//
// Transcription note: the paper's Table IV lists w2 without xalancbmk or
// soplex, yet Sec. IV-A and Fig. 7/10 analyse exactly those two applications
// *inside w2*.  We follow the text (the figures are the reproduction
// target): w2's "ca" and "sp" entries are replaced by "xa" and "so".  Typos
// "delII" (w4) and "calulix" (w11) are resolved to dealII and calculix.
#pragma once

#include <string>
#include <vector>

#include "workload/profile.hpp"

namespace delta::workload {

struct Mix {
  std::string name;         ///< "w1" .. "w15".
  std::string composition;  ///< Table IV composition label, e.g. "T+L".
  std::vector<std::string> apps;  ///< 16 short codes, one per core.
};

/// All 15 mixes, each with exactly 16 application instances.
const std::vector<Mix>& table4_mixes();

/// Irregular-access mixes ("wi1".."wi3"): the flat-miss-curve kernel family
/// (workload/irregular.hpp) alone and combined with Table III applications.
/// Same 16-apps shape as the Table IV mixes, so every harness that takes a
/// mix name runs them unchanged.
const std::vector<Mix>& irregular_mixes();

/// Lookup by name ("w2", "wi1"); resolves Table IV and irregular mixes;
/// throws std::out_of_range on unknown names.
const Mix& table4_mix(const std::string& name);

/// 64-core variant: the 16-core mix replicated four times (Sec. III-B),
/// with instances laid out round-robin so replicas land on distinct tiles.
Mix replicate4(const Mix& mix);

}  // namespace delta::workload
