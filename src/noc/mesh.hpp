// 2-D mesh network-on-chip model (paper Table II: 4x4 / 8x8 mesh, 4-cycle
// hops = 3-cycle pipelined routers + 1-cycle links, XY dimension-ordered
// routing).  The model is latency/accounting-only: the paper's evaluation
// shows DELTA's extra traffic is ~0.1% of miss traffic, so link contention
// is negligible and hop latency dominates.
//
// Hop counts and round-trip latencies are precomputed into tiles x tiles
// lookup tables at construction (at most 64x64 entries): hops()/latency()/
// round_trip() run on every simulated LLC access, twice per miss, and the
// table read beats recomputing the Manhattan distance each time.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace delta::noc {

struct Coord {
  int x = 0;
  int y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

class Mesh {
 public:
  static constexpr Cycles kRouterCycles = 3;
  static constexpr Cycles kLinkCycles = 1;
  static constexpr Cycles kHopCycles = kRouterCycles + kLinkCycles;  // 4

  Mesh(int width, int height) : width_(width), height_(height) {
    assert(width >= 1 && height >= 1);
    const int n = tiles();
    hops_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    round_trip_.resize(hops_.size());
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const Coord ca = coord(a), cb = coord(b);
        const int h = abs_diff(ca.x, cb.x) + abs_diff(ca.y, cb.y);
        hops_[index(a, b)] = static_cast<std::uint16_t>(h);
        round_trip_[index(a, b)] = 2 * static_cast<Cycles>(h) * kHopCycles;
      }
    }
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int tiles() const { return width_ * height_; }

  Coord coord(int tile) const {
    assert(tile >= 0 && tile < tiles());
    return Coord{tile % width_, tile / width_};
  }

  int tile(Coord c) const {
    assert(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    return c.y * width_ + c.x;
  }

  /// Manhattan hop count between two tiles (XY routing path length).
  int hops(int a, int b) const { return hops_[index(a, b)]; }

  /// One-way message latency; zero for a tile talking to itself.
  Cycles latency(int a, int b) const { return round_trip_[index(a, b)] / 2; }

  /// Round-trip latency (request + response).
  Cycles round_trip(int a, int b) const { return round_trip_[index(a, b)]; }

  /// XY-routed path from `a` to `b`, inclusive of both endpoints.
  std::vector<int> route(int a, int b) const;

  /// All other tiles ordered by increasing hop distance from `from`,
  /// ties broken by tile id — the challenge-candidate order of Alg. 1
  /// ("start by challenging the closest neighbouring tiles").
  std::vector<int> by_distance(int from) const;

  /// Mean hop distance from `from` to every tile (incl. itself); this is
  /// the average LLC distance an S-NUCA mapping exposes.
  double mean_hops_from(int from) const;

 private:
  static int abs_diff(int a, int b) { return a < b ? b - a : a - b; }

  std::size_t index(int a, int b) const {
    assert(a >= 0 && a < tiles() && b >= 0 && b < tiles());
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(tiles()) +
           static_cast<std::size_t>(b);
  }

  int width_;
  int height_;
  std::vector<std::uint16_t> hops_;   ///< hops_[a * tiles + b].
  std::vector<Cycles> round_trip_;    ///< 2 * hops * kHopCycles, same layout.
};

}  // namespace delta::noc
