#include "noc/mcu.hpp"

#include <cassert>

namespace delta::noc {

MemorySystem::MemorySystem(int num_mcus, int mesh_width, int mesh_height, McuConfig cfg) {
  assert(num_mcus >= 1);
  const auto n = static_cast<std::uint64_t>(num_mcus);
  count_mask_ = (n & (n - 1)) == 0 ? n - 1 : 0;
  mcus_.assign(static_cast<std::size_t>(num_mcus), MemoryController(cfg));
  attach_tiles_.resize(static_cast<std::size_t>(num_mcus));
  // Half the controllers on the top row, half on the bottom row, evenly
  // spaced in x.  With 4 MCUs on a 4x4 mesh: tiles 0, 2 (top), 12, 14
  // (bottom); with 8 on 8x8: 0, 2, 4, 6 and 56, 58, 60, 62.
  const int per_row = (num_mcus + 1) / 2;
  for (int i = 0; i < num_mcus; ++i) {
    const bool top = i < per_row;
    const int idx_in_row = top ? i : i - per_row;
    const int row_count = top ? per_row : num_mcus - per_row;
    const int stride = row_count > 0 ? mesh_width / row_count : mesh_width;
    const int x = std::min(idx_in_row * (stride > 0 ? stride : 1), mesh_width - 1);
    const int y = top ? 0 : mesh_height - 1;
    attach_tiles_[i] = y * mesh_width + x;
  }
}

}  // namespace delta::noc
