// Memory-controller model (paper Table II: 4 / 8 MCUs, one channel each,
// 80 ns idle latency, 12.6 GB/s per channel).
//
// The simulator advances in fixed epochs; within an epoch the controller
// charges every request the idle DRAM latency plus an M/M/1-style queueing
// delay derived from the *previous* epoch's channel utilisation.  This
// one-epoch feedback loop converges in a couple of epochs and captures the
// first-order effect that matters to cache partitioning: miss-heavy
// configurations see super-linear memory latency growth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace delta::noc {

struct McuConfig {
  Cycles idle_latency = 320;        ///< 80 ns at 4 GHz.
  double bytes_per_cycle = 3.15;    ///< 12.6 GB/s at 4 GHz.
  Cycles max_queue_delay = 2000;    ///< Saturation clamp.
};

class MemoryController {
 public:
  explicit MemoryController(McuConfig cfg = {}) : cfg_(cfg) {}

  /// Latency charged to a request arriving in the current epoch.
  Cycles request_latency() {
    ++epoch_requests_;
    ++total_requests_;
    return cfg_.idle_latency + queue_delay_;
  }

  /// The latency request_latency() would charge, without counting a
  /// request.  Constant within an epoch (queue_delay_ only moves at
  /// end_epoch), which is what lets the intra-run engine compute miss
  /// latencies from per-bank workers and fold the request counts in later.
  Cycles current_request_latency() const { return cfg_.idle_latency + queue_delay_; }

  /// Bulk-counts `n` requests in the current epoch; paired with
  /// current_request_latency() it reproduces exactly what `n` serial
  /// request_latency() calls would have done.
  void add_requests(std::uint64_t n) {
    epoch_requests_ += n;
    total_requests_ += n;
  }

  /// Closes the epoch of length `epoch_cycles` and updates the queueing
  /// delay estimate used for the next epoch.
  void end_epoch(Cycles epoch_cycles) {
    const double service_cycles =
        static_cast<double>(kLineBytes) / cfg_.bytes_per_cycle;  // ~20.3 cy/line
    const double capacity = static_cast<double>(epoch_cycles) / service_cycles;
    const double rho =
        capacity > 0.0 ? static_cast<double>(epoch_requests_) / capacity : 1.0;
    double delay = 0.0;
    if (rho >= 0.98) {
      delay = static_cast<double>(cfg_.max_queue_delay);
    } else {
      delay = service_cycles * rho / (1.0 - rho);
    }
    queue_delay_ = static_cast<Cycles>(
        std::min(delay, static_cast<double>(cfg_.max_queue_delay)));
    last_utilization_ = std::min(rho, 1.0);
    epoch_requests_ = 0;
  }

  Cycles queue_delay() const { return queue_delay_; }
  double utilization() const { return last_utilization_; }
  std::uint64_t total_requests() const { return total_requests_; }

  void reset() {
    epoch_requests_ = 0;
    total_requests_ = 0;
    queue_delay_ = 0;
    last_utilization_ = 0.0;
  }

 private:
  McuConfig cfg_;
  std::uint64_t epoch_requests_ = 0;
  std::uint64_t total_requests_ = 0;
  Cycles queue_delay_ = 0;
  double last_utilization_ = 0.0;
};

/// The set of controllers on a chip plus their mesh attachment points.
class MemorySystem {
 public:
  /// Controllers are attached to tiles spread across the top and bottom
  /// mesh rows (the usual tiled-CMP floorplan).
  MemorySystem(int num_mcus, int mesh_width, int mesh_height, McuConfig cfg = {});

  int num_mcus() const { return static_cast<int>(mcus_.size()); }

  /// Address-interleaved controller choice.  Power-of-two controller counts
  /// (every Table II machine) use a mask instead of the per-access modulo.
  int mcu_for(BlockAddr block) const {
    if (count_mask_ != 0 || mcus_.size() == 1)
      return static_cast<int>(block & count_mask_);
    return static_cast<int>(block % static_cast<std::uint64_t>(mcus_.size()));
  }

  /// Mesh tile the controller is attached to (for hop accounting).
  int attach_tile(int mcu) const { return attach_tiles_[mcu]; }

  MemoryController& mcu(int i) { return mcus_[i]; }
  const MemoryController& mcu(int i) const { return mcus_[i]; }

  void end_epoch(Cycles epoch_cycles) {
    for (auto& m : mcus_) m.end_epoch(epoch_cycles);
  }

  void reset() {
    for (auto& m : mcus_) m.reset();
  }

 private:
  std::vector<MemoryController> mcus_;
  std::vector<int> attach_tiles_;
  std::uint64_t count_mask_ = 0;  ///< mcus_.size()-1 when a power of two, else 0.
};

}  // namespace delta::noc
