// Per-message-type NoC traffic accounting (Sec. IV-E2 message overheads).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace delta::noc {

enum class MsgType : int {
  kLlcRequest = 0,    ///< L2 miss -> LLC bank request.
  kLlcResponse,       ///< LLC bank -> core data response.
  kMemRequest,        ///< LLC miss -> memory controller.
  kMemResponse,       ///< Memory controller -> LLC bank fill.
  kChallenge,         ///< DELTA inter-bank challenge (Alg. 1 line 7).
  kChallengeResponse, ///< DELTA success/failure response (lines 13/15).
  kIntraFeedback,     ///< Intra-bank win/lose report to home tiles (Alg. 2 line 6).
  kHandover,          ///< Idle-bank wholesale handover notification.
  kInvalidation,      ///< Bulk-invalidation sweep commands.
  kCentralCollect,    ///< Centralized scheme: miss-curve collection to hub.
  kCentralBroadcast,  ///< Centralized scheme: allocation broadcast from hub.
  kMarketBid,         ///< CARMA auction: sealed per-round bid submission.
  kMarketGrant,       ///< CARMA auction: way-lot grant to a round winner.
  kCount
};

constexpr std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kLlcRequest: return "llc_req";
    case MsgType::kLlcResponse: return "llc_resp";
    case MsgType::kMemRequest: return "mem_req";
    case MsgType::kMemResponse: return "mem_resp";
    case MsgType::kChallenge: return "challenge";
    case MsgType::kChallengeResponse: return "challenge_resp";
    case MsgType::kIntraFeedback: return "intra_feedback";
    case MsgType::kHandover: return "handover";
    case MsgType::kInvalidation: return "invalidation";
    case MsgType::kCentralCollect: return "central_collect";
    case MsgType::kCentralBroadcast: return "central_broadcast";
    case MsgType::kMarketBid: return "market_bid";
    case MsgType::kMarketGrant: return "market_grant";
    case MsgType::kCount: break;
  }
  return "?";
}

class TrafficStats {
 public:
  void count(MsgType t, std::uint64_t n = 1) {
    counts_[static_cast<std::size_t>(t)] += n;
  }
  std::uint64_t total(MsgType t) const { return counts_[static_cast<std::size_t>(t)]; }

  /// Messages belonging to the partitioning control plane.
  std::uint64_t control_messages() const {
    return total(MsgType::kChallenge) + total(MsgType::kChallengeResponse) +
           total(MsgType::kIntraFeedback) + total(MsgType::kHandover) +
           total(MsgType::kCentralCollect) + total(MsgType::kCentralBroadcast) +
           total(MsgType::kMarketBid) + total(MsgType::kMarketGrant);
  }

  /// Demand traffic (LLC requests/responses and memory traffic).
  std::uint64_t demand_messages() const {
    return total(MsgType::kLlcRequest) + total(MsgType::kLlcResponse) +
           total(MsgType::kMemRequest) + total(MsgType::kMemResponse);
  }

  std::uint64_t invalidation_messages() const { return total(MsgType::kInvalidation); }

  void reset() { counts_.fill(0); }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(MsgType::kCount)> counts_{};
};

}  // namespace delta::noc
