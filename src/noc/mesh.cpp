#include "noc/mesh.hpp"

#include <algorithm>
#include <cstdlib>

namespace delta::noc {

std::vector<int> Mesh::route(int a, int b) const {
  std::vector<int> path;
  Coord cur = coord(a);
  const Coord dst = coord(b);
  path.push_back(tile(cur));
  while (cur.x != dst.x) {  // X first (dimension-ordered).
    cur.x += cur.x < dst.x ? 1 : -1;
    path.push_back(tile(cur));
  }
  while (cur.y != dst.y) {
    cur.y += cur.y < dst.y ? 1 : -1;
    path.push_back(tile(cur));
  }
  return path;
}

std::vector<int> Mesh::by_distance(int from) const {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(tiles()) - 1);
  for (int t = 0; t < tiles(); ++t)
    if (t != from) order.push_back(t);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const int ha = hops(from, a), hb = hops(from, b);
    if (ha != hb) return ha < hb;
    return a < b;
  });
  return order;
}

double Mesh::mean_hops_from(int from) const {
  double sum = 0.0;
  for (int t = 0; t < tiles(); ++t) sum += hops(from, t);
  return sum / static_cast<double>(tiles());
}

}  // namespace delta::noc
