#include "core/pain_gain.hpp"

#include <algorithm>
#include <cassert>

#include "obs/recorder.hpp"

namespace delta::core {

double window_mpka(const umon::Umon& umon, int lo_ways, int hi_ways) {
  const double accesses = umon.accesses();
  if (accesses <= 0.0) return 0.0;
  const double avoided = umon.coarse_hits_between(lo_ways, hi_ways);
  return 1000.0 * avoided / accesses;
}

PainGain compute_pain_gain(const umon::Umon& umon, int cur_ways, int ways_outside_home,
                           int gain_ways, int pain_ways, double mlp) {
  assert(mlp > 0.0);
  PainGain pg;
  const double a_gain = window_mpka(umon, cur_ways, cur_ways + gain_ways);
  const double a_pain = window_mpka(umon, std::max(0, cur_ways - pain_ways), cur_ways);
  pg.raw_gain = a_gain / (static_cast<double>(ways_outside_home) + 1.0) / mlp;
  pg.pain = a_pain / mlp;
  return pg;
}

void record_pain_gain(obs::EventRecorder* rec, std::uint64_t epoch, CoreId core,
                      const PainGain& pg) {
  if (rec == nullptr) return;
  rec->record(obs::EventKind::kPainGainSample, epoch, core, /*bank=*/-1,
              /*other=*/-1, /*count=*/0, pg.raw_gain, pg.pain);
}

}  // namespace delta::core
