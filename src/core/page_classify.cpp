#include "core/page_classify.hpp"

namespace delta::core {

PageEvent PageClassifier::on_access(CoreId core, Addr addr) {
  const std::uint64_t page = page_of(addr);
  Entry& e = pages_[page];
  PageEvent ev;
  switch (e.cls) {
    case PageClass::kUntouched:
      e.cls = PageClass::kPrivate;
      e.owner = core;
      ++private_pages_;
      ev.cls = PageClass::kPrivate;
      break;
    case PageClass::kPrivate:
      if (e.owner != core) {
        e.cls = PageClass::kShared;
        e.owner = kInvalidCore;
        --private_pages_;
        ++shared_pages_;
        ++reclassifications_;
        ev.cls = PageClass::kShared;
        ev.reclassified = true;
      } else {
        ev.cls = PageClass::kPrivate;
      }
      break;
    case PageClass::kShared:
      ev.cls = PageClass::kShared;
      break;
  }
  return ev;
}

PageClass PageClassifier::classify(Addr addr) const {
  auto it = pages_.find(page_of(addr));
  return it == pages_.end() ? PageClass::kUntouched : it->second.cls;
}

CoreId PageClassifier::owner(Addr addr) const {
  auto it = pages_.find(page_of(addr));
  if (it == pages_.end() || it->second.cls != PageClass::kPrivate) return kInvalidCore;
  return it->second.owner;
}

void PageClassifier::reset() {
  pages_.clear();
  private_pages_ = 0;
  shared_pages_ = 0;
  reclassifications_ = 0;
}

}  // namespace delta::core
