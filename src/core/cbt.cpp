#include "core/cbt.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/recorder.hpp"

namespace delta::core {

Cbt::Cbt(BankId home_bank, bool reverse_bits) : reverse_bits_(reverse_bits) {
  rebuild({{home_bank, 1}});
}

void Cbt::rebuild(const std::vector<std::pair<BankId, int>>& bank_ways,
                  obs::EventRecorder* rec, std::uint64_t epoch, CoreId owner) {
  assert(!bank_ways.empty());
  int total = 0;
  for (const auto& [bank, ways] : bank_ways) {
    assert(ways >= 0);
    total += ways;
  }
  assert(total > 0);

  // Proportional chunk counts with largest-remainder rounding.
  std::vector<int> chunks(bank_ways.size(), 0);
  std::vector<double> remainders(bank_ways.size(), 0.0);
  int assigned = 0;
  for (std::size_t i = 0; i < bank_ways.size(); ++i) {
    const double exact = static_cast<double>(mem::kNumChunks) *
                         static_cast<double>(bank_ways[i].second) /
                         static_cast<double>(total);
    chunks[i] = static_cast<int>(exact);
    remainders[i] = exact - static_cast<double>(chunks[i]);
    assigned += chunks[i];
  }
  while (assigned < mem::kNumChunks) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < remainders.size(); ++i)
      if (remainders[i] > remainders[best]) best = i;
    ++chunks[best];
    remainders[best] = -1.0;
    ++assigned;
  }
  // A bank holding ways must map at least one chunk (otherwise its capacity
  // is unreachable); steal from the largest range if rounding starved one.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (bank_ways[i].second > 0 && chunks[i] == 0) {
      std::size_t donor = 0;
      for (std::size_t j = 1; j < chunks.size(); ++j)
        if (chunks[j] > chunks[donor]) donor = j;
      if (chunks[donor] > 1) {
        --chunks[donor];
        ++chunks[i];
      }
    }
  }

  ranges_.clear();
  int cursor = 0;
  for (std::size_t i = 0; i < bank_ways.size(); ++i) {
    if (chunks[i] == 0) continue;
    CbtRange r;
    r.first_chunk = cursor;
    r.last_chunk = cursor + chunks[i] - 1;
    r.bank = bank_ways[i].first;
    ranges_.push_back(r);
    for (int c = r.first_chunk; c <= r.last_chunk; ++c)
      chunk_map_[static_cast<std::size_t>(c)] = r.bank;
    cursor += chunks[i];
  }
  assert(cursor == mem::kNumChunks);
  last_alloc_ = bank_ways;

  if (rec != nullptr)
    rec->record(obs::EventKind::kCbtRebuild, epoch, owner,
                /*bank=*/bank_ways.front().first, /*other=*/-1,
                /*count=*/ranges_.size());
}

std::vector<int> Cbt::changed_chunks(const Cbt& prev) const {
  std::vector<int> changed;
  for (int c = 0; c < mem::kNumChunks; ++c)
    if (chunk_map_[static_cast<std::size_t>(c)] != prev.chunk_map_[static_cast<std::size_t>(c)])
      changed.push_back(c);
  return changed;
}

std::uint64_t Cbt::storage_bits(int num_banks) {
  const auto lg = static_cast<std::uint64_t>(std::ceil(std::log2(std::max(2, num_banks))));
  return lg * static_cast<std::uint64_t>(num_banks);
}

}  // namespace delta::core
