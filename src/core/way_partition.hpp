// Way-partitioning (WP) unit: one per LLC bank (Sec. II-C2).
//
// Tracks which core owns the right to *insert* into each way; lookups are
// unrestricted.  Way ownership changes (intra-bank reallocation, challenge
// grants) do not touch resident lines — the new owner's insertions evict
// them naturally, which is exactly why intra-bank reassignment is cheap in
// the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/replacement.hpp"

namespace delta::core {

class WpUnit {
 public:
  explicit WpUnit(int ways, CoreId initial_owner = kInvalidCore)
      : owners_(static_cast<std::size_t>(ways), initial_owner) {}

  int ways() const { return static_cast<int>(owners_.size()); }

  CoreId owner(int way) const { return owners_[static_cast<std::size_t>(way)]; }

  /// Insertion bitmask for `core` (bit i set when core owns way i).  Served
  /// from a per-core cache rebuilt lazily after ownership edits: this query
  /// sits on the per-access enforcement path while ownership only changes
  /// at reconfiguration granularity, so the scan must not run per access.
  mem::WayMask mask_of(CoreId core) const {
    if (masks_stale_) rebuild_masks();
    if (core >= 0 && static_cast<std::size_t>(core) < mask_cache_.size())
      return mask_cache_[static_cast<std::size_t>(core)];
    return scan_mask_of(core);
  }

  int ways_of(CoreId core) const {
    int n = 0;
    for (CoreId o : owners_)
      if (o == core) ++n;
    return n;
  }

  /// Distinct cores holding at least one way, in ascending core order.
  std::vector<CoreId> partitions() const {
    std::vector<CoreId> out;
    for (CoreId o : owners_) {
      if (o == kInvalidCore) continue;
      bool seen = false;
      for (CoreId s : out) seen |= (s == o);
      if (!seen) out.push_back(o);
    }
    return out;
  }

  /// Moves up to `count` ways from `from` to `to`; highest-index ways first
  /// (matching the paper's Fig. 3 example where ways 12-15 change hands).
  /// Returns the number actually moved.
  int transfer(CoreId from, CoreId to, int count) {
    int moved = 0;
    for (int w = ways() - 1; w >= 0 && moved < count; --w) {
      auto& o = owners_[static_cast<std::size_t>(w)];
      if (o == from) {
        o = to;
        ++moved;
      }
    }
    if (moved > 0) masks_stale_ = true;
    return moved;
  }

  /// Hands the entire bank to `core` (idle-bank fast path).
  void assign_all(CoreId core) {
    for (auto& o : owners_) o = core;
    masks_stale_ = true;
  }

  /// Directly sets the owner of one way (used by centralized enforcement
  /// when rebuilding a bank's layout wholesale).
  void set_owner(int way, CoreId core) {
    owners_[static_cast<std::size_t>(way)] = core;
    masks_stale_ = true;
  }

  /// Storage cost in bits: N cores x W ways bitmask (Sec. II-C2).
  static std::uint64_t storage_bits(int cores, int ways) {
    return static_cast<std::uint64_t>(cores) * static_cast<std::uint64_t>(ways);
  }

 private:
  mem::WayMask scan_mask_of(CoreId core) const {
    mem::WayMask m = 0;
    for (int w = 0; w < ways(); ++w)
      if (owners_[static_cast<std::size_t>(w)] == core) m |= mem::WayMask{1} << w;
    return m;
  }

  void rebuild_masks() const {
    CoreId max_owner = -1;
    for (CoreId o : owners_) max_owner = o > max_owner ? o : max_owner;
    mask_cache_.assign(static_cast<std::size_t>(max_owner + 1), 0);
    for (int w = 0; w < ways(); ++w) {
      const CoreId o = owners_[static_cast<std::size_t>(w)];
      if (o >= 0) mask_cache_[static_cast<std::size_t>(o)] |= mem::WayMask{1} << w;
    }
    masks_stale_ = false;
  }

  std::vector<CoreId> owners_;
  // Lazy per-core insertion-mask cache (see mask_of).  The WpUnit lives
  // inside one Chip, which is confined to one thread, so the mutable lazy
  // rebuild needs no synchronisation.
  mutable std::vector<mem::WayMask> mask_cache_;
  mutable bool masks_stale_ = true;
};

}  // namespace delta::core
