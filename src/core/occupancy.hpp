// Occupancy-based fine-grained intra-bank partition enforcement.
//
// The paper notes (Sec. II-C2) that DELTA's allocation policy composes with
// replacement-based fine-grained partitioning schemes (PriSM, Vantage,
// Futility Scaling) instead of way bitmasks.  This module provides such an
// enforcer: the allocation targets still come from the WP unit's way
// counts, but insertion is unrestricted and the *victim choice* steers each
// partition's occupancy toward its target — the partition most above target
// donates the victim.  Unlike way masks this supports fractional shares and
// avoids way-granularity fragmentation; unlike them it only converges
// statistically (Sec. V discusses the same trade-off for [14][15][21]).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace delta::core {

class OccupancyEnforcer {
 public:
  /// `capacity_lines` = sets x ways of the bank this enforcer guards.
  OccupancyEnforcer(int max_cores, std::uint64_t capacity_lines)
      : capacity_(capacity_lines),
        target_(static_cast<std::size_t>(max_cores), 0.0),
        lines_(static_cast<std::size_t>(max_cores), 0) {}

  /// Sets the target share for `core` as a fraction of bank ways.
  void set_target_ways(CoreId core, double ways, int ways_per_bank) {
    target_[static_cast<std::size_t>(core)] = ways / static_cast<double>(ways_per_bank);
  }

  /// Resynchronises occupancy from externally-counted lines (after bulk
  /// invalidations etc.).
  void set_occupancy(CoreId core, std::uint64_t lines) {
    lines_[static_cast<std::size_t>(core)] = lines;
  }

  void on_insert(CoreId owner) { ++lines_[static_cast<std::size_t>(owner)]; }
  void on_evict(CoreId owner) {
    auto& n = lines_[static_cast<std::size_t>(owner)];
    if (n > 0) --n;
  }

  std::uint64_t occupancy(CoreId core) const {
    return lines_[static_cast<std::size_t>(core)];
  }

  /// Partition currently farthest *above* its target — the preferred
  /// eviction donor.  Returns kInvalidCore when nobody exceeds target
  /// (plain LRU applies then).
  CoreId preferred_victim() const {
    CoreId best = kInvalidCore;
    double worst_excess = 0.0;
    for (std::size_t c = 0; c < lines_.size(); ++c) {
      const double share = capacity_ > 0
                               ? static_cast<double>(lines_[c]) /
                                     static_cast<double>(capacity_)
                               : 0.0;
      const double excess = share - target_[c];
      if (excess > worst_excess + 1e-12) {
        worst_excess = excess;
        best = static_cast<CoreId>(c);
      }
    }
    return best;
  }

 private:
  std::uint64_t capacity_;
  std::vector<double> target_;
  std::vector<std::uint64_t> lines_;
};

/// Selector for the intra-bank enforcement flavour.
enum class IntraEnforcement : std::uint8_t {
  kWayMask,    ///< Paper default: insertion bitmasks (Sec. II-C2).
  kOccupancy,  ///< Replacement-based alternative (PriSM/Vantage style).
};

}  // namespace delta::core
