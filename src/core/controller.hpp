// DeltaController: the distributed allocation policy of the paper, tying
// together the inter-bank challenge protocol (Alg. 1), the intra-bank
// reallocator (Alg. 2), the per-core Cache Bank Tables and the per-bank
// way-partitioning units.
//
// The controller is substrate-agnostic: the simulator feeds it per-core
// monitoring state (UMON + MLP) once per epoch (= i_intra = 0.1 ms) and
// applies the remap events it emits (chunk ranges whose previous bank
// placement must be bulk-invalidated).  Message exchange is modelled at
// interval granularity — NoC flight times (tens of cycles) are three orders
// of magnitude below the 1 ms challenge interval, so a challenge issued at
// the start of an interval completes within it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/cbt.hpp"
#include "core/params.hpp"
#include "core/pain_gain.hpp"
#include "core/way_partition.hpp"
#include "noc/mesh.hpp"
#include "noc/traffic.hpp"
#include "umon/umon.hpp"

namespace delta::obs {
class EventRecorder;
}

namespace delta::core {

/// Per-core monitoring snapshot handed to the controller each epoch.
struct TileInput {
  const umon::Umon* umon = nullptr;
  double mlp = 1.0;
  bool active = true;          ///< False == idle core (idle-bank fast path).
  std::uint32_t process_id = 0;  ///< Sec. II-E: same-process challenges fail.
};

/// One chunk whose bank placement changed: the owning core's lines with
/// this chunk id must be invalidated in `old_bank`.
struct RemapChunk {
  CoreId core = kInvalidCore;
  int chunk = 0;
  BankId old_bank = kInvalidBank;
};

struct TickResult {
  std::vector<RemapChunk> remaps;
  int challenges_sent = 0;
  int challenges_won = 0;
  int intra_transfers = 0;
  int retreats = 0;
};

struct DeltaStats {
  std::uint64_t challenges_sent = 0;
  std::uint64_t challenges_won = 0;
  std::uint64_t intra_transfers = 0;
  std::uint64_t retreats = 0;
  std::uint64_t idle_grabs = 0;
  std::uint64_t cbt_rebuilds = 0;
  std::uint64_t chunks_remapped = 0;
  std::uint64_t alu_ops = 0;  ///< Pain/gain computations + comparisons.
};

class DeltaController {
 public:
  DeltaController(const noc::Mesh& mesh, DeltaParams params, int ways_per_bank = 16,
                  int sets_log2 = 9);

  /// Equal-partition initial state: every core owns its whole home bank.
  void reset();

  /// Advances one epoch.  Runs the intra-bank algorithm every
  /// `intra_interval_epochs` and the inter-bank algorithm every
  /// `inter_interval_epochs`.  `inputs` has one entry per tile.
  TickResult tick(std::uint64_t epoch, std::span<const TileInput> inputs,
                  noc::TrafficStats* traffic = nullptr);

  /// Attaches a policy-event trace sink (null or disabled == no tracing).
  /// Events are emitted at the decision sites: challenges with the compared
  /// gain/pain values, way transfers, retreats, CBT rebuilds and remaps.
  void set_recorder(obs::EventRecorder* rec) { rec_ = rec; }

  // ---- Enforcement queries used on every LLC access. ----
  BankId bank_for(CoreId core, BlockAddr block) const {
    return cbts_[static_cast<std::size_t>(core)].lookup(block, sets_log2_);
  }
  mem::WayMask insert_mask(CoreId core, BankId bank) const {
    return wp_[static_cast<std::size_t>(bank)].mask_of(core);
  }

  // ---- Introspection. ----
  const Cbt& cbt(CoreId core) const { return cbts_[static_cast<std::size_t>(core)]; }
  const WpUnit& wp(BankId bank) const { return wp_[static_cast<std::size_t>(bank)]; }
  int total_ways(CoreId core) const;
  int ways_outside_home(CoreId core) const;
  /// Banks the core holds capacity in, acquisition order (home first).
  const std::vector<BankId>& banks_of(CoreId core) const {
    return acq_order_[static_cast<std::size_t>(core)];
  }
  const DeltaStats& stats() const { return stats_; }
  const DeltaParams& params() const { return params_; }
  int num_tiles() const { return mesh_.tiles(); }
  int ways_per_bank() const { return ways_per_bank_; }

  /// Test-only fault injection (invariant-checker tests): forces the owner
  /// of one way, bypassing every conservation rule the policy maintains.
  void debug_set_way_owner(BankId bank, int way, CoreId owner) {
    wp_[static_cast<std::size_t>(bank)].set_owner(way, owner);
  }

  /// Hardware state per tile for the distributed implementation
  /// (Sec. II-B4 + II-C): an (N+2)-entry pain register array and an
  /// (N+1)-entry distance-ordered tile-id array of log2(N) bits each, the
  /// CBT (log2(N) x N bits) and the WP bitmask (N x W bits).
  static std::uint64_t storage_bits_per_tile(int num_tiles, int ways_per_bank);

 private:
  struct Snapshot {
    PainGain pg;
    bool active = false;
    double mlp = 1.0;
    std::uint32_t process_id = 0;
  };

  void snapshot_pain_gain(std::span<const TileInput> inputs);
  void inter_bank(std::span<const TileInput> inputs, TickResult& result,
                  noc::TrafficStats* traffic);
  void intra_bank(std::span<const TileInput> inputs, TickResult& result,
                  noc::TrafficStats* traffic);

  /// Rebuilds `core`'s CBT from its current acquisition list and way
  /// counts, appending the resulting chunk moves to `result`.
  void rebuild_cbt(CoreId core, TickResult& result, noc::TrafficStats* traffic);

  /// Removes `bank` from `core`'s holdings (retreat) and rebuilds its CBT.
  void retreat(CoreId core, BankId bank, TickResult& result, noc::TrafficStats* traffic);

  double gain_for_bank(CoreId core, BankId bank) const;
  void count_msg(noc::TrafficStats* traffic, noc::MsgType type, std::uint64_t n = 1);

  const noc::Mesh& mesh_;
  DeltaParams params_;
  int ways_per_bank_;
  int sets_log2_;

  std::vector<WpUnit> wp_;                    ///< One per bank.
  std::vector<Cbt> cbts_;                     ///< One per core.
  std::vector<std::vector<BankId>> acq_order_;
  std::vector<std::vector<int>> cand_order_;  ///< Challenge candidates by distance.
  std::vector<std::size_t> cand_cursor_;
  std::vector<Snapshot> snap_;
  DeltaStats stats_;
  obs::EventRecorder* rec_ = nullptr;  ///< Optional event trace sink.
  std::uint64_t obs_epoch_ = 0;        ///< Epoch stamped onto emitted events.
};

}  // namespace delta::core
