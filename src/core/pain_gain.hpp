// Pain and gain heuristics (paper Sec. II-B2, Eq. 1 and Eq. 2).
//
//   Gain_{i,j,gainWays} = a_gainWays * (k+1)^-1 / (m * (l+1))
//   Pain_{j,painWays}   = a_painWays / m
//
// where a is the avoidable/incurred miss count from the coarse-grained
// UMON window, k the ways held outside the home tile, m the MLP and l the
// hop distance to the challenged tile.
//
// Normalisation note: the paper leaves a's units implicit.  We normalise a
// to misses per kilo-access so that the gainThreshold = 0.5 of Table II is
// meaningful independent of the reconfiguration-interval length and of each
// application's absolute access rate.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "umon/umon.hpp"

namespace delta::obs {
class EventRecorder;
}

namespace delta::core {

struct PainGain {
  double raw_gain = 0.0;  ///< a_gain * (k+1)^-1 / m, before distance scaling.
  double pain = 0.0;      ///< a_pain / m.
};

/// Misses per kilo-access in the UMON window [lo_ways, hi_ways), using the
/// coarse (4-way bucket) counters DELTA's hardware reads.
double window_mpka(const umon::Umon& umon, int lo_ways, int hi_ways);

/// Computes both heuristics for a core holding `cur_ways` total ways of
/// which `ways_outside_home` are in remote banks.
PainGain compute_pain_gain(const umon::Umon& umon, int cur_ways, int ways_outside_home,
                           int gain_ways, int pain_ways, double mlp);

/// Observability hook: appends a kPainGainSample event (a = raw gain,
/// b = pain) for `core` to `rec`.  Null/disabled recorder is a no-op, so
/// callers can emit unconditionally from the snapshot loop.
void record_pain_gain(obs::EventRecorder* rec, std::uint64_t epoch, CoreId core,
                      const PainGain& pg);

/// Distance scaling of Eq. 1: gain = raw_gain / (hop_distance + 1).
inline double scale_gain(double raw_gain, int hop_distance) {
  return raw_gain / static_cast<double>(hop_distance + 1);
}

}  // namespace delta::core
