// Cache Bank Table (CBT): per-core range table mapping address chunks to
// LLC banks (Sec. II-C1).
//
// The hardware structure is a small fully-associative range table with at
// most N entries (N = number of banks); ranges partition the 256 values of
// the bit-reversed bank-selection byte, with each bank's range sized
// proportionally to the core's allocation in that bank.  This model keeps
// both the range list (for storage accounting and range-count invariants)
// and a flat 256-entry chunk map (for O(1) lookup in the simulator).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/address.hpp"

namespace delta::obs {
class EventRecorder;
}

namespace delta::core {

struct CbtRange {
  int first_chunk = 0;  ///< Inclusive.
  int last_chunk = 0;   ///< Inclusive.
  BankId bank = kInvalidBank;
};

class Cbt {
 public:
  /// Starts with every chunk mapped to `home_bank` (equal-partition init).
  /// `reverse_bits` selects the paper's bit-reversed chunk indexing.
  explicit Cbt(BankId home_bank, bool reverse_bits = true);

  /// Rebuilds ranges from (bank, ways) pairs in *stable acquisition order*
  /// (home bank first).  Range lengths are proportional to way counts; the
  /// rounding remainder goes to the largest allocation.  Total ways must
  /// be > 0.  When `rec` is non-null a kCbtRebuild event is appended with
  /// `owner`/`epoch` context and the resulting range count.
  void rebuild(const std::vector<std::pair<BankId, int>>& bank_ways,
               obs::EventRecorder* rec = nullptr, std::uint64_t epoch = 0,
               CoreId owner = kInvalidCore);

  BankId bank_for_chunk(int chunk) const {
    return chunk_map_[static_cast<std::size_t>(chunk)];
  }

  /// Full lookup: block address -> owning bank (bit-reversed chunk index).
  BankId lookup(BlockAddr block, int sets_log2) const {
    return bank_for_chunk(mem::chunk_of(block, sets_log2, reverse_bits_));
  }

  bool reverse_bits() const { return reverse_bits_; }

  const std::vector<CbtRange>& ranges() const { return ranges_; }
  int range_count() const { return static_cast<int>(ranges_.size()); }

  /// The (bank, ways) pairs of the last rebuild — the allocation the range
  /// sizes are proportional to.  Way counts may drift afterwards (intra-bank
  /// transfers do not remap addresses), so invariant checks compare range
  /// sizes against this record, not against live WP state.
  const std::vector<std::pair<BankId, int>>& last_alloc() const { return last_alloc_; }

  /// Chunks whose bank assignment differs from `prev` — the set that must
  /// be invalidated at their previous location after a reconfiguration.
  std::vector<int> changed_chunks(const Cbt& prev) const;

  /// Storage cost in bits: log2(N) x N as per Sec. II-C1.
  static std::uint64_t storage_bits(int num_banks);

 private:
  std::vector<CbtRange> ranges_;
  std::vector<std::pair<BankId, int>> last_alloc_;
  std::array<BankId, mem::kNumChunks> chunk_map_{};
  bool reverse_bits_ = true;
};

}  // namespace delta::core
