// DELTA tuning parameters (paper Table II, bottom row).
#pragma once

#include <cstdint>

#include "core/occupancy.hpp"

namespace delta::core {

struct DeltaParams {
  // Reconfiguration intervals, expressed in simulator epochs where one
  // epoch == i_intra == 0.1 ms.  i_inter == 1 ms == 10 epochs.
  int inter_interval_epochs = 10;
  int intra_interval_epochs = 1;

  // Allocation-policy knobs (way unit = 32 KB: one way of a 512 KB bank).
  double gain_threshold = 0.5;  ///< Min rawGain (avoidable misses per kilo-access).
  int min_ways = 4;             ///< 128 KB reserved home floor / challenge precondition.
  int inter_delta_ways = 4;     ///< Ways carved out by a successful challenge.
  int intra_delta_ways = 1;     ///< Ways moved per intra-bank step.
  int gain_ways = 4;            ///< Expansion window for Eq. 1's a_gainWays.
  int pain_ways = 4;            ///< Contraction window for Eq. 2's a_painWays.

  // Allocation caps (Sec. III-A): 128 KB .. 6 MB per app on 16 cores,
  // 128 KB .. 24 MB on 64 cores, in 32 KB increments.
  int max_ways_per_app = 192;

  // Enforcement ablation: index the CBT with the bit-reversed
  // bank-selection byte (the paper's design) or with the raw byte.
  bool reverse_chunk_bits = true;

  // Intra-bank enforcement flavour: way bitmasks (paper default) or the
  // replacement-based occupancy enforcer (Sec. II-C2's compatibility note).
  IntraEnforcement intra_enforcement = IntraEnforcement::kWayMask;
};

}  // namespace delta::core
