#include "core/controller.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/recorder.hpp"

namespace delta::core {

DeltaController::DeltaController(const noc::Mesh& mesh, DeltaParams params,
                                 int ways_per_bank, int sets_log2)
    : mesh_(mesh),
      params_(params),
      ways_per_bank_(ways_per_bank),
      sets_log2_(sets_log2) {
  const int n = mesh_.tiles();
  wp_.reserve(static_cast<std::size_t>(n));
  cbts_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    wp_.emplace_back(ways_per_bank_, static_cast<CoreId>(t));
    cbts_.emplace_back(static_cast<BankId>(t), params_.reverse_chunk_bits);
    acq_order_.push_back({static_cast<BankId>(t)});
    cand_order_.push_back(mesh_.by_distance(t));
  }
  cand_cursor_.assign(static_cast<std::size_t>(n), 0);
  snap_.resize(static_cast<std::size_t>(n));
}

void DeltaController::reset() {
  const int n = mesh_.tiles();
  for (int t = 0; t < n; ++t) {
    wp_[static_cast<std::size_t>(t)].assign_all(static_cast<CoreId>(t));
    acq_order_[static_cast<std::size_t>(t)] = {static_cast<BankId>(t)};
    cbts_[static_cast<std::size_t>(t)] =
        Cbt(static_cast<BankId>(t), params_.reverse_chunk_bits);
    cand_cursor_[static_cast<std::size_t>(t)] = 0;
  }
  stats_ = DeltaStats{};
}

std::uint64_t DeltaController::storage_bits_per_tile(int num_tiles, int ways_per_bank) {
  const auto lg = static_cast<std::uint64_t>(
      std::ceil(std::log2(std::max(2, num_tiles))));
  const std::uint64_t pain_regs = (static_cast<std::uint64_t>(num_tiles) + 2) * lg;
  const std::uint64_t order_regs = (static_cast<std::uint64_t>(num_tiles) + 1) * lg;
  return pain_regs + order_regs + Cbt::storage_bits(num_tiles) +
         WpUnit::storage_bits(num_tiles, ways_per_bank);
}

int DeltaController::total_ways(CoreId core) const {
  int total = 0;
  for (BankId b : acq_order_[static_cast<std::size_t>(core)])
    total += wp_[static_cast<std::size_t>(b)].ways_of(core);
  return total;
}

int DeltaController::ways_outside_home(CoreId core) const {
  return total_ways(core) - wp_[static_cast<std::size_t>(core)].ways_of(core);
}

void DeltaController::count_msg(noc::TrafficStats* traffic, noc::MsgType type,
                                std::uint64_t n) {
  if (traffic != nullptr) traffic->count(type, n);
}

void DeltaController::snapshot_pain_gain(std::span<const TileInput> inputs) {
  for (int c = 0; c < mesh_.tiles(); ++c) {
    Snapshot& s = snap_[static_cast<std::size_t>(c)];
    const TileInput& in = inputs[static_cast<std::size_t>(c)];
    s.active = in.active && in.umon != nullptr;
    s.mlp = in.mlp > 0.0 ? in.mlp : 1.0;
    s.process_id = in.process_id;
    if (!s.active) {
      s.pg = PainGain{};
      continue;
    }
    s.pg = compute_pain_gain(*in.umon, total_ways(c), ways_outside_home(c),
                             params_.gain_ways, params_.pain_ways, s.mlp);
    record_pain_gain(rec_, obs_epoch_, c, s.pg);
    stats_.alu_ops += 2;  // One gain + one pain evaluation per tile.
  }
}

double DeltaController::gain_for_bank(CoreId core, BankId bank) const {
  return scale_gain(snap_[static_cast<std::size_t>(core)].pg.raw_gain,
                    mesh_.hops(core, bank));
}

TickResult DeltaController::tick(std::uint64_t epoch, std::span<const TileInput> inputs,
                                 noc::TrafficStats* traffic) {
  assert(static_cast<int>(inputs.size()) == mesh_.tiles());
  obs_epoch_ = epoch;
  TickResult result;
  const bool do_intra =
      params_.intra_interval_epochs > 0 &&
      epoch % static_cast<std::uint64_t>(params_.intra_interval_epochs) == 0;
  const bool do_inter =
      params_.inter_interval_epochs > 0 &&
      epoch % static_cast<std::uint64_t>(params_.inter_interval_epochs) == 0;
  if (!do_intra && !do_inter) return result;

  snapshot_pain_gain(inputs);
  // Inter first (coarse expansion), then intra (fine tuning), mirroring the
  // paper's description that intra-bank growth follows inter-bank entry.
  if (do_inter) inter_bank(inputs, result, traffic);
  if (do_intra) intra_bank(inputs, result, traffic);

  stats_.challenges_sent += static_cast<std::uint64_t>(result.challenges_sent);
  stats_.challenges_won += static_cast<std::uint64_t>(result.challenges_won);
  stats_.intra_transfers += static_cast<std::uint64_t>(result.intra_transfers);
  stats_.retreats += static_cast<std::uint64_t>(result.retreats);
  return result;
}

void DeltaController::inter_bank(std::span<const TileInput> inputs, TickResult& result,
                                 noc::TrafficStats* traffic) {
  (void)inputs;  // Decisions read the pain/gain snapshot taken from them.
  const int n = mesh_.tiles();
  for (CoreId challenger = 0; challenger < n; ++challenger) {
    const Snapshot& cs = snap_[static_cast<std::size_t>(challenger)];
    if (!cs.active) continue;

    const int cur_total = total_ways(challenger);
    ++stats_.alu_ops;  // Threshold comparison.
    // Alg. 1 line 4: gain above threshold, allocation above the minimum.
    if (cs.pg.raw_gain <= params_.gain_threshold || cur_total <= params_.min_ways)
      continue;
    if (cur_total >= params_.max_ways_per_app) continue;

    // Alg. 1 line 5: closest not-recently-challenged tile; the cursor
    // cycles so a tile is revisited only after all others were tried.
    auto& order = cand_order_[static_cast<std::size_t>(challenger)];
    const BankId target = order[cand_cursor_[static_cast<std::size_t>(challenger)]];
    cand_cursor_[static_cast<std::size_t>(challenger)] =
        (cand_cursor_[static_cast<std::size_t>(challenger)] + 1) % order.size();

    WpUnit& bank = wp_[static_cast<std::size_t>(target)];
    if (bank.ways_of(challenger) == bank.ways()) continue;  // Already owns it all.

    const double challenger_gain = gain_for_bank(challenger, target);
    ++result.challenges_sent;
    count_msg(traffic, noc::MsgType::kChallenge);
    count_msg(traffic, noc::MsgType::kChallengeResponse);
    if (rec_ != nullptr)
      rec_->record(obs::EventKind::kChallengeSent, obs_epoch_, challenger, target,
                   /*other=*/-1, /*count=*/0, challenger_gain);

    const Snapshot& ts = snap_[static_cast<std::size_t>(target)];
    // Sec. II-E: threads of the same process do not compete for capacity.
    // Process id 0 means "unspecified" (multi-programmed default).
    if (ts.active && ts.process_id != 0 && ts.process_id == cs.process_id) {
      if (rec_ != nullptr)
        rec_->record(obs::EventKind::kChallengeLost, obs_epoch_, challenger,
                     target, /*other=*/-1, /*count=*/0, challenger_gain);
      continue;
    }

    // Idle-bank fast path: an unused home bank is handed over wholesale.
    if (!ts.active && bank.ways_of(static_cast<CoreId>(target)) > 0) {
      const int grabbed =
          bank.transfer(static_cast<CoreId>(target), challenger, bank.ways());
      if (grabbed > 0) {
        ++result.challenges_won;
        ++stats_.idle_grabs;
        count_msg(traffic, noc::MsgType::kHandover);
        if (rec_ != nullptr)
          rec_->record(obs::EventKind::kBankHandover, obs_epoch_, challenger,
                       target, /*other=*/target, static_cast<std::uint64_t>(grabbed),
                       challenger_gain);
        auto& acq = acq_order_[static_cast<std::size_t>(challenger)];
        if (std::find(acq.begin(), acq.end(), target) == acq.end())
          acq.push_back(target);
        rebuild_cbt(challenger, result, traffic);
      }
      continue;
    }

    // Alg. 1 line 10: weakest partition in the challenged bank — the home
    // partition defends with *pain*, guests defend with their *gain*.
    CoreId loser = kInvalidCore;
    double loser_value = std::numeric_limits<double>::infinity();
    for (CoreId p : bank.partitions()) {
      if (p == challenger) continue;
      ++stats_.alu_ops;
      double value;
      if (p == static_cast<CoreId>(target)) {
        // Home partition cannot drop below the reserved minimum.
        if (bank.ways_of(p) <= params_.min_ways) continue;
        value = snap_[static_cast<std::size_t>(p)].pg.pain;
      } else {
        value = gain_for_bank(p, target);
      }
      if (value < loser_value) {
        loser_value = value;
        loser = p;
      }
    }

    if (loser == kInvalidCore || loser_value >= challenger_gain) {
      if (rec_ != nullptr)
        rec_->record(obs::EventKind::kChallengeLost, obs_epoch_, challenger,
                     target, loser, /*count=*/0, challenger_gain,
                     loser == kInvalidCore ? 0.0 : loser_value);
      continue;
    }

    // Success: carve interDeltaWays out of the loser (home keeps its floor).
    int give = params_.inter_delta_ways;
    if (loser == static_cast<CoreId>(target))
      give = std::min(give, bank.ways_of(loser) - params_.min_ways);
    give = std::min(give, bank.ways_of(loser));
    give = std::min(give, params_.max_ways_per_app - cur_total);
    if (give <= 0) {
      if (rec_ != nullptr)
        rec_->record(obs::EventKind::kChallengeLost, obs_epoch_, challenger,
                     target, loser, /*count=*/0, challenger_gain, loser_value);
      continue;
    }

    const int moved = bank.transfer(loser, challenger, give);
    assert(moved == give);
    (void)moved;
    ++result.challenges_won;
    if (rec_ != nullptr) {
      rec_->record(obs::EventKind::kChallengeWon, obs_epoch_, challenger, target,
                   loser, static_cast<std::uint64_t>(give), challenger_gain,
                   loser_value);
      rec_->record(obs::EventKind::kWayTransfer, obs_epoch_, challenger, target,
                   loser, static_cast<std::uint64_t>(give), challenger_gain,
                   loser_value);
    }

    auto& acq = acq_order_[static_cast<std::size_t>(challenger)];
    const bool new_bank = std::find(acq.begin(), acq.end(), target) == acq.end();
    if (new_bank) {
      acq.push_back(target);
      rebuild_cbt(challenger, result, traffic);
    }
    // If the loser was a guest and lost its whole partition, it retreats.
    if (loser != static_cast<CoreId>(target) && bank.ways_of(loser) == 0) {
      retreat(loser, target, result, traffic);
    }
  }
}

void DeltaController::intra_bank(std::span<const TileInput> inputs, TickResult& result,
                                 noc::TrafficStats* traffic) {
  (void)inputs;
  const int n = mesh_.tiles();
  for (BankId b = 0; b < n; ++b) {
    WpUnit& bank = wp_[static_cast<std::size_t>(b)];
    const std::vector<CoreId> parts = bank.partitions();
    if (parts.size() < 2) continue;

    // Alg. 2: move intraDeltaWays from the smallest-gain partition to the
    // largest-gain one.  Only active partitions can win; the home partition
    // never drops below the reserved minimum.
    CoreId winner = kInvalidCore, loser = kInvalidCore;
    double best = -1.0, worst = std::numeric_limits<double>::infinity();
    for (CoreId p : parts) {
      ++stats_.alu_ops;
      const Snapshot& s = snap_[static_cast<std::size_t>(p)];
      const double g = s.active ? gain_for_bank(p, b) : 0.0;
      const bool can_win = s.active && total_ways(p) < params_.max_ways_per_app;
      const int floor = p == static_cast<CoreId>(b) ? params_.min_ways : 0;
      const bool can_lose = bank.ways_of(p) - params_.intra_delta_ways >= floor ||
                            (floor == 0 && bank.ways_of(p) > 0);
      if (can_win && g > best) {
        best = g;
        winner = p;
      }
      if (can_lose && g < worst) {
        worst = g;
        loser = p;
      }
    }
    if (winner == kInvalidCore || loser == kInvalidCore || winner == loser) continue;
    if (best <= worst) continue;  // Alg. 2 line 4: only act on a strict gap.

    int give = params_.intra_delta_ways;
    if (loser == static_cast<CoreId>(b))
      give = std::min(give, bank.ways_of(loser) - params_.min_ways);
    give = std::min(give, bank.ways_of(loser));
    give = std::min(give, params_.max_ways_per_app - total_ways(winner));
    if (give <= 0) continue;

    bank.transfer(loser, winner, give);
    ++result.intra_transfers;
    if (rec_ != nullptr)
      rec_->record(obs::EventKind::kWayTransfer, obs_epoch_, winner, b, loser,
                   static_cast<std::uint64_t>(give), best, worst);
    // Alg. 2 line 6: report the new allocations back to both home tiles.
    count_msg(traffic, noc::MsgType::kIntraFeedback, 2);

    if (loser != static_cast<CoreId>(b) && bank.ways_of(loser) == 0) {
      retreat(loser, b, result, traffic);
    }
  }
}

void DeltaController::rebuild_cbt(CoreId core, TickResult& result,
                                  noc::TrafficStats* traffic) {
  std::vector<std::pair<BankId, int>> bank_ways;
  for (BankId b : acq_order_[static_cast<std::size_t>(core)]) {
    const int w = wp_[static_cast<std::size_t>(b)].ways_of(core);
    if (w > 0) bank_ways.emplace_back(b, w);
  }
  if (bank_ways.empty()) {
    // Defensive: a core always keeps its home mapping even with no ways
    // (its insertions then bypass; cannot happen under the home floor).
    bank_ways.emplace_back(static_cast<BankId>(core), 1);
  }

  Cbt& cbt = cbts_[static_cast<std::size_t>(core)];
  const Cbt prev = cbt;
  cbt.rebuild(bank_ways, rec_, obs_epoch_, core);
  ++stats_.cbt_rebuilds;

  // `result.remaps` accumulates across all rebuilds of a tick; account only
  // the chunks this rebuild moved.
  const std::size_t before = result.remaps.size();
  for (int chunk : cbt.changed_chunks(prev)) {
    result.remaps.push_back(
        RemapChunk{core, chunk, prev.bank_for_chunk(chunk)});
  }
  const std::size_t moved = result.remaps.size() - before;
  stats_.chunks_remapped += static_cast<std::uint64_t>(moved);
  if (rec_ != nullptr && moved > 0)
    rec_->record(obs::EventKind::kCbtRemap, obs_epoch_, core, /*bank=*/-1,
                 /*other=*/-1, static_cast<std::uint64_t>(moved));
  count_msg(traffic, noc::MsgType::kInvalidation, moved == 0 ? 0 : 1);
}

void DeltaController::retreat(CoreId core, BankId bank, TickResult& result,
                              noc::TrafficStats* traffic) {
  auto& acq = acq_order_[static_cast<std::size_t>(core)];
  auto it = std::find(acq.begin(), acq.end(), bank);
  if (it != acq.end()) acq.erase(it);
  ++result.retreats;
  if (rec_ != nullptr)
    rec_->record(obs::EventKind::kRetreat, obs_epoch_, core, bank);
  rebuild_cbt(core, result, traffic);
}

}  // namespace delta::core
