// R-NUCA-style private/shared page classification (paper Sec. II-E).
//
// Pages are classified incrementally and lazily by the TLB: the first core
// to touch a page becomes its owner and the page is private; the first
// access from a *different* core (or process) flips it to shared, once and
// permanently ("private pages are reclassified at most once, and the
// S-NUCA mapping is never reverted").  On the private->shared flip all
// lines of the page must be invalidated, which the caller performs using
// the returned event.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace delta::core {

enum class PageClass : std::uint8_t { kUntouched, kPrivate, kShared };

struct PageEvent {
  PageClass cls = PageClass::kPrivate;
  bool reclassified = false;  ///< True exactly when the page flipped to shared.
};

class PageClassifier {
 public:
  /// Records an access by `core` to the page containing `addr`.
  PageEvent on_access(CoreId core, Addr addr);

  PageClass classify(Addr addr) const;
  /// Owner core of a private page; kInvalidCore for shared/untouched.
  CoreId owner(Addr addr) const;

  std::uint64_t private_pages() const { return private_pages_; }
  std::uint64_t shared_pages() const { return shared_pages_; }
  std::uint64_t reclassifications() const { return reclassifications_; }

  void reset();

 private:
  struct Entry {
    CoreId owner = kInvalidCore;
    PageClass cls = PageClass::kUntouched;
  };
  std::unordered_map<std::uint64_t, Entry> pages_;
  std::uint64_t private_pages_ = 0;
  std::uint64_t shared_pages_ = 0;
  std::uint64_t reclassifications_ = 0;
};

}  // namespace delta::core
