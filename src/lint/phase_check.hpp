// Phase-effect checker: machine-checks the thread-locality contract of
// `sim::Scheme` (src/sim/scheme.hpp).  The intra-run engine calls the
// during-epoch hooks — map() / insert_mask() / evict_preference() /
// on_insertion() — from parallel workers, so they may only touch
// epoch-constant state or state owned by their `bank` argument; anything
// cross-bank belongs in begin_epoch(), which runs on the epoch barrier.
// TSan and test_intra enforce this dynamically; this checker rejects the
// violating *source* so a broken seventh scheme fails `ctest -L lint`
// instead of failing intermittently at runtime.
//
// For every class deriving from `Scheme` it computes the during-epoch
// closure — the four hooks plus every member function transitively called
// from them within the class — and reports, as rule `phase-effect`:
//
//   * a non-const hook or helper in the closure (on_insertion is exempt:
//     its signature is non-const so it can update bank-owned bookkeeping);
//   * a write to a member field (assignment, compound assignment, ++/--);
//   * a non-const reference bound to a member field (a mutation handle);
//   * a call through a pointer-like member (`ctrl_->...`): const-ness does
//     not propagate through pointers, so the compiler cannot help;
//   * any touch of a `mutable` member from a const method (the loophole
//     the compiler leaves open);
//   * a member-object call from a non-const closure method (it may resolve
//     to a mutating overload);
//   * calls into banned cross-bank Chip state: invalidate_core_chunks(),
//     traffic(), event_sink(), slot(), bank().
//
// Legitimate carve-outs are annotated in source:
//
//   std::unique_ptr<Ctl> ctrl_;  // delta-phase: epoch-constant
//     — the pointee is only mutated on the epoch barrier (reset /
//       begin_epoch); during-epoch calls through it are reads.  Exempts
//       pointer-call / mutable-touch / member-call findings on the field;
//       *writes* to it during the epoch are still reported.
//
//   auto& e = enforcers_[bank];  // delta-lint: allow(phase-effect)
//     — line-scoped waiver for provably bank-owned mutation (the WpUnit
//       per-bank pattern).  Same grammar as every other lint rule.
//
// The checker is token-level and per-TU (see lint/ir.hpp): it sees the
// scheme class, not the classes it embeds.  Nested state (e.g. WpUnit's
// lazy mutable mask cache) is covered by the bank-owned argument plus the
// dynamic layer.  docs/static-analysis.md documents the rule and the
// "writing a new Scheme" checklist.
#pragma once

#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace delta::lint {

/// Names of the during-epoch hooks of sim::Scheme, the roots of the
/// checked closure.
inline constexpr std::string_view kDuringEpochHooks[] = {
    "map", "insert_mask", "evict_preference", "on_insertion"};

/// Runs the phase-effect rule over one translation unit's text.  Findings
/// are sorted by line and respect `// delta-lint: allow(phase-effect)` /
/// `// delta-phase: epoch-constant` annotations.
std::vector<Finding> phase_check(const FileInfo& info, std::string_view text);

}  // namespace delta::lint
