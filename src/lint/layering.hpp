// Layering lint: the module dependency structure of src/ as a machine-
// checked fact.  Each first-level directory under src/ is a module; the
// declared DAG below says which modules each module may include.  The
// checker verifies (a) the declared graph itself is acyclic, (b) every
// `#include "..."` edge in the real tree is declared (self-includes are
// always legal), and (c) the real file-level include graph has no cycles.
//
// Declared architecture (arrows point at allowed dependencies):
//
//   lint                      (standalone: only itself)
//   check ─→ sim ─→ {alloc ─→ {core, workload}} ─→ {mem, noc, umon, obs}
//                                                        ─→ common
//
// concretely, bottom-up:
//
//   common                                    — types, rng, sync, parallel
//   obs, mem, noc, umon        → common       — obs is the instrumentation
//                                               substrate (recorder hooks
//                                               are embedded in core/sim,
//                                               so it sits low, with the
//                                               exporters; ISSUE 8's sketch
//                                               put it top-level, but the
//                                               embedded-recorder design
//                                               pins it here)
//   workload                   → common, mem
//   core                       → common, obs, mem, noc, umon
//   alloc                      → common, mem, noc, umon
//   sim                        → everything above it
//   check                      → everything, including sim
//   lint                       → (nothing)
//
// Violations are reported as rule `layering` (one per offending #include,
// file:line precision) and `include-cycle` (one per cycle).  A findings
// baseline (`delta_lint --baseline`) lets a refactor land incrementally;
// the tree itself carries an empty baseline.
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace delta::lint {

/// One module's declared allowed dependencies.
struct LayerRule {
  std::string module;
  std::vector<std::string> deps;
};

using LayeringConfig = std::vector<LayerRule>;

/// The repository's declared module DAG (header comment above).
LayeringConfig default_layering();

/// One `#include "..."` directive: `file` is the including file's path
/// label ("src/sim/chip.cpp"), `target` the quoted include path
/// ("core/cbt.hpp").
struct FileInclude {
  std::string file;
  int line = 0;
  std::string target;
};

/// Module of a path label: the component after a leading "src/" (or the
/// first component otherwise); empty when there is none.
std::string module_of(std::string_view path);

/// Checks every include edge against the declared DAG and the declared DAG
/// against itself (cycle in the *config* is reported too — a layering rule
/// that is not a DAG enforces nothing).  Rule: `layering`.
std::vector<Finding> check_layering(const LayeringConfig& config,
                                    const std::vector<FileInclude>& includes);

/// Detects cycles in the real file-level include graph (only edges whose
/// target resolves to another scanned file participate).  Rule:
/// `include-cycle`, one finding per distinct cycle.
std::vector<Finding> check_include_cycles(
    const std::vector<FileInclude>& includes);

}  // namespace delta::lint
