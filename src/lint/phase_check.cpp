#include "lint/phase_check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "lint/ir.hpp"

namespace delta::lint {
namespace {

bool is_assign_op(std::string_view s) {
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "%=" || s == "&=" || s == "|=" || s == "^=" || s == "<<=" ||
         s == ">>=";
}

/// Chip members that reach cross-bank shared state; calling them from a
/// during-epoch hook races with the bank-parallel apply phase.
bool is_banned_chip_call(std::string_view s) {
  return s == "invalidate_core_chunks" || s == "traffic" ||
         s == "event_sink" || s == "slot" || s == "bank";
}

class PhaseChecker {
 public:
  PhaseChecker(const FileInfo& info, std::string_view text)
      : info_(info), raw_lines_(split_lines(text)), tu_(parse_tu(text)) {}

  std::vector<Finding> run() {
    for (const ClassDecl& cls : tu_.classes) {
      const bool is_scheme =
          std::find(cls.bases.begin(), cls.bases.end(), "Scheme") !=
          cls.bases.end();
      if (is_scheme) check_class(cls);
    }
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line
                                        : a.detail < b.detail;
              });
    return std::move(findings_);
  }

 private:
  std::string_view raw_line(int line) const {
    return line >= 1 && line <= static_cast<int>(raw_lines_.size())
               ? raw_lines_[static_cast<std::size_t>(line - 1)]
               : std::string_view{};
  }

  void add(int line, std::string detail, std::string suggestion) {
    if (suppressed(raw_line(line), "phase-effect")) return;
    findings_.push_back(Finding{info_.path_label, line, "phase-effect",
                                std::move(detail), std::move(suggestion)});
  }

  std::string suppress_here(int line) const {
    return "append to " + info_.path_label + ":" + std::to_string(line) +
           ":  // delta-lint: allow(phase-effect)";
  }

  /// Member functions of `cls` called from the body range — the intra-class
  /// call-graph edges.  Qualified calls (`other.name(...)`) are not edges.
  std::set<std::string> callees(const ClassDecl& cls, const MethodDecl& m) const {
    std::set<std::string> names, out;
    for (const MethodDecl& mm : cls.methods) names.insert(mm.name);
    const auto& t = tu_.tokens;
    for (std::size_t k = m.body_begin; k < m.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent || k + 1 >= m.body_end ||
          t[k + 1].text != "(")
        continue;
      if (names.count(std::string(t[k].text)) == 0) continue;
      const std::string_view prev = k > m.body_begin ? t[k - 1].text : "";
      const bool qualified = prev == "." || prev == "->" || prev == "::";
      const bool via_this =
          prev == "->" && k >= 2 && t[k - 2].text == "this";
      if (!qualified || via_this) out.insert(std::string(t[k].text));
    }
    return out;
  }

  void check_class(const ClassDecl& cls) {
    // During-epoch closure: the hooks plus everything they transitively
    // call within the class.
    std::set<std::string> closure;
    std::vector<std::string> queue;
    for (std::string_view h : kDuringEpochHooks)
      for (const MethodDecl& m : cls.methods)
        if (m.name == h && closure.insert(m.name).second)
          queue.push_back(m.name);
    while (!queue.empty()) {
      const std::string cur = queue.back();
      queue.pop_back();
      for (const MethodDecl& m : cls.methods) {
        if (m.name != cur || !m.has_body) continue;
        for (const std::string& callee : callees(cls, m))
          if (closure.insert(callee).second) queue.push_back(callee);
      }
    }
    if (closure.empty()) return;

    std::map<std::string, const FieldDecl*, std::less<>> fields;
    for (const FieldDecl& f : cls.fields) fields.emplace(f.name, &f);

    for (const MethodDecl& m : cls.methods) {
      if (closure.count(m.name) == 0) continue;
      if (!m.is_const && !m.is_static && m.name != "on_insertion") {
        add(m.line,
            "during-epoch hook/helper '" + cls.name + "::" + m.name +
                "' is not const-qualified (thread-locality contract, "
                "sim/scheme.hpp)",
            "const-qualify '" + m.name + "' or waive with " +
                suppress_here(m.line));
      }
      if (m.has_body) check_body(cls, m, fields);
    }
  }

  void check_body(const ClassDecl& cls, const MethodDecl& m,
                  const std::map<std::string, const FieldDecl*, std::less<>>& fields) {
    const auto& t = tu_.tokens;
    const std::string where =
        " in during-epoch closure of '" + cls.name + "::" + m.name + "'";
    for (std::size_t k = m.body_begin; k < m.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      const std::string_view prev = k > m.body_begin ? t[k - 1].text : "";
      const std::string_view nxt = k + 1 < m.body_end ? t[k + 1].text : "";

      // Banned cross-bank Chip state, called on any receiver.
      if (is_banned_chip_call(t[k].text) && nxt == "(" &&
          (prev == "." || prev == "->")) {
        add(t[k].line,
            "touches cross-bank chip state '" + std::string(t[k].text) +
                "()'" + where + "; reallocation/invalidation/traffic belongs "
                "in begin_epoch() on the epoch barrier",
            suppress_here(t[k].line));
        continue;
      }

      const auto it = fields.find(t[k].text);
      if (it == fields.end()) continue;
      const FieldDecl& f = *it->second;
      if (f.is_static) continue;
      const bool via_this = prev == "->" && k >= 2 && t[k - 2].text == "this";
      if ((prev == "." || prev == "->" || prev == "::") && !via_this) continue;

      const int line = t[k].line;
      const bool annotated_ec =
          phase_annotated(raw_line(f.line), "epoch-constant");

      // Effective operator after the field, skipping array subscripts.
      std::size_t n = k + 1;
      while (n < m.body_end && t[n].text == "[") {
        int depth = 0;
        for (; n < m.body_end; ++n) {
          if (t[n].text == "[") ++depth;
          else if (t[n].text == "]" && --depth == 0) { ++n; break; }
        }
      }
      const std::string_view after = n < m.body_end ? t[n].text : "";

      if (is_assign_op(after) || after == "++" || after == "--" ||
          prev == "++" || prev == "--") {
        add(line,
            "writes member field '" + f.name + "'" + where +
                "; during-epoch hooks may only touch epoch-constant or "
                "bank-owned state",
            suppress_here(line));
        continue;
      }
      if (after == "->") {
        if (!annotated_ec) {
          add(line,
              "call through pointer member '" + f.name + "'" + where +
                  "; const-ness does not propagate through pointers, so the "
                  "pointee may be mutated",
              "annotate the declaration (" + info_.path_label + ":" +
                  std::to_string(f.line) +
                  ") with:  // delta-phase: epoch-constant  (if it is only "
                  "mutated on the epoch barrier), or waive with " +
                  suppress_here(line));
        }
        continue;
      }
      // Non-const reference bound to the field: `auto& e = field...`.
      if (prev == "=" && k >= m.body_begin + 3 &&
          t[k - 2].kind == TokKind::kIdent && t[k - 3].text == "&") {
        bool is_const_ref = false;
        for (std::size_t b = k - 3; b > m.body_begin; --b) {
          const std::string_view v = t[b - 1].text;
          if (v == ";" || v == "{" || v == "}") break;
          if (v == "const") { is_const_ref = true; break; }
        }
        if (!is_const_ref) {
          add(line,
              "binds a non-const reference to member field '" + f.name +
                  "'" + where + " (a mutation handle)",
              suppress_here(line));
          continue;
        }
      }
      const bool member_call = after == "." && n + 2 < m.body_end &&
                               t[n + 1].kind == TokKind::kIdent &&
                               t[n + 2].text == "(";
      if (f.is_mutable && m.is_const && !annotated_ec &&
          (member_call || after == ".")) {
        add(line,
            "touches mutable member '" + f.name + "' from const method" +
                where + "; mutable state bypasses the compiler's const "
                "checking",
            "annotate the declaration (" + info_.path_label + ":" +
                std::to_string(f.line) +
                ") with:  // delta-phase: epoch-constant, or waive with " +
                suppress_here(line));
        continue;
      }
      if (!m.is_const && member_call && !annotated_ec) {
        add(line,
            "member call on field '" + f.name + "' from non-const method" +
                where + "; it may resolve to a mutating overload",
            suppress_here(line));
      }
    }
  }

  const FileInfo& info_;
  std::vector<std::string_view> raw_lines_;
  TranslationUnit tu_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> phase_check(const FileInfo& info, std::string_view text) {
  return PhaseChecker(info, text).run();
}

}  // namespace delta::lint
