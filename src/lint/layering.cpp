#include "lint/layering.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace delta::lint {
namespace {

/// DFS three-color cycle search over the declared config; returns the
/// cycle as "a -> b -> a" when one exists.
std::string config_cycle(const LayeringConfig& config) {
  std::map<std::string, const LayerRule*, std::less<>> by_name;
  for (const LayerRule& r : config) by_name.emplace(r.module, &r);
  std::map<std::string, int, std::less<>> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::string cycle;

  auto dfs = [&](auto&& self, const std::string& mod) -> bool {
    color[mod] = 1;
    path.push_back(mod);
    const auto it = by_name.find(mod);
    if (it != by_name.end()) {
      for (const std::string& dep : it->second->deps) {
        if (dep == mod || by_name.find(dep) == by_name.end()) continue;
        const int c = color[dep];
        if (c == 1) {
          const auto start = std::find(path.begin(), path.end(), dep);
          for (auto p = start; p != path.end(); ++p) cycle += *p + " -> ";
          cycle += dep;
          return true;
        }
        if (c == 0 && self(self, dep)) return true;
      }
    }
    color[mod] = 2;
    path.pop_back();
    return false;
  };
  for (const LayerRule& r : config) {
    if (color[r.module] == 0 && dfs(dfs, r.module)) return cycle;
  }
  return {};
}

}  // namespace

LayeringConfig default_layering() {
  return {
      {"common", {}},
      {"obs", {"common"}},
      {"mem", {"common"}},
      {"noc", {"common"}},
      {"umon", {"common"}},
      {"workload", {"common", "mem"}},
      {"core", {"common", "obs", "mem", "noc", "umon"}},
      {"alloc", {"common", "mem", "noc", "umon"}},
      {"sim",
       {"common", "obs", "mem", "noc", "umon", "workload", "core", "alloc"}},
      {"check",
       {"common", "obs", "mem", "noc", "umon", "workload", "core", "alloc",
        "sim"}},
      {"lint", {}},
  };
}

std::string module_of(std::string_view path) {
  if (path.rfind("src/", 0) == 0) path.remove_prefix(4);
  const std::size_t slash = path.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(path.substr(0, slash));
}

std::vector<Finding> check_layering(const LayeringConfig& config,
                                    const std::vector<FileInclude>& includes) {
  std::vector<Finding> findings;

  const std::string cycle = config_cycle(config);
  if (!cycle.empty()) {
    findings.push_back(Finding{
        "<layering-config>", 0, "layering",
        "declared layering graph is not a DAG: " + cycle +
            "; a cyclic rule set enforces nothing — fix default_layering()",
        {}});
    return findings;
  }

  std::map<std::string, const LayerRule*, std::less<>> by_name;
  for (const LayerRule& r : config) by_name.emplace(r.module, &r);

  for (const FileInclude& inc : includes) {
    const std::string from = module_of(inc.file);
    const std::string to = module_of(inc.target.find('/') != std::string::npos
                                         ? inc.target
                                         : inc.target + "/");
    const auto from_rule = by_name.find(from);
    if (from.empty() || from_rule == by_name.end()) continue;  // outside src/
    if (to.empty() || to == from) continue;                    // self-include
    if (by_name.find(to) == by_name.end()) continue;  // not a module path
    const std::vector<std::string>& allowed = from_rule->second->deps;
    if (std::find(allowed.begin(), allowed.end(), to) != allowed.end())
      continue;
    std::string allowed_list;
    for (const std::string& a : allowed)
      allowed_list += (allowed_list.empty() ? "" : ", ") + a;
    findings.push_back(Finding{
        inc.file, inc.line, "layering",
        "module '" + from + "' may not include '" + inc.target +
            "' (module '" + to + "'); declared dependencies of '" + from +
            "': [" + (allowed_list.empty() ? "none" : allowed_list) + "]",
        "move the code below the layer boundary, or baseline with:  " +
            inc.file + ":layering"});
  }
  return findings;
}

std::vector<Finding> check_include_cycles(
    const std::vector<FileInclude>& includes) {
  // Node set = scanned files; an edge exists when the include target
  // resolves to another scanned file (label match modulo the "src/" root).
  std::set<std::string> nodes;
  for (const FileInclude& inc : includes) nodes.insert(inc.file);
  auto resolve = [&](const std::string& target) -> std::string {
    if (nodes.count(target) != 0) return target;
    const std::string with_src = "src/" + target;
    if (nodes.count(with_src) != 0) return with_src;
    return {};
  };
  std::map<std::string, std::vector<std::pair<std::string, int>>, std::less<>>
      edges;  // file -> (resolved target, line)
  for (const FileInclude& inc : includes) {
    const std::string to = resolve(inc.target);
    if (!to.empty() && to != inc.file)
      edges[inc.file].emplace_back(to, inc.line);
  }

  std::vector<Finding> findings;
  std::map<std::string, int, std::less<>> color;
  std::vector<std::string> path;
  std::set<std::string> reported;  // canonical cycle keys, deduplicated

  auto dfs = [&](auto&& self, const std::string& file) -> void {
    color[file] = 1;
    path.push_back(file);
    for (const auto& [to, line] : edges[file]) {
      const int c = color[to];
      if (c == 2) continue;
      if (c == 1) {
        const auto start = std::find(path.begin(), path.end(), to);
        std::vector<std::string> cycle(start, path.end());
        // Canonical key: rotate so the lexicographically smallest node
        // leads, so the same cycle found from different roots dedups.
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        std::string key;
        for (const std::string& n : cycle) key += n + " -> ";
        key += cycle.front();
        if (reported.insert(key).second) {
          findings.push_back(Finding{
              path.back(), line, "include-cycle",
              "include cycle: " + key +
                  "; break it with a forward declaration or by moving the "
                  "shared piece down a layer",
              {}});
        }
        continue;
      }
      self(self, to);
    }
    color[file] = 2;
    path.pop_back();
  };
  for (const std::string& n : nodes)
    if (color[n] == 0) dfs(dfs, n);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

}  // namespace delta::lint
