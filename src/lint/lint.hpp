// delta_lint: project-specific determinism and hygiene rules the compiler
// cannot enforce.  The DELTA policy loop must be bit-reproducible from a
// seed (the differential oracle and the cross-thread determinism check in
// src/check depend on it), so sources of cross-run variation are banned
// from src/ outright:
//
//   unordered-iter    iterating a std::unordered_map/unordered_set
//                     (iteration order depends on hash layout and libstdc++
//                     version; any fold over it can change results)
//   nondet-source     rand()/srand(), std::random_device, wall-clock
//                     (std::chrono::system_clock, time(), clock()) — all
//                     randomness must flow through common/rng.hpp seeds.
//                     steady_clock/high_resolution_clock are banned too,
//                     with one carve-out: files under src/obs/prof, the
//                     self-profiling subsystem whose whole job is reading
//                     the clock (sim/ code instruments itself through its
//                     RAII types and never touches a clock directly)
//   ptr-key           pointer-keyed ordered containers (std::map<T*, ...>):
//                     ordered by allocation addresses, i.e. by ASLR
//   naked-new         naked new/delete — owning raw pointers; use values,
//                     containers or smart pointers
//   own-header-first  a .cpp must include its own header first, proving the
//                     header is self-contained
//
// A violation can be waived on its line with the suppression comment
//   // delta-lint: allow(<rule>)
//
// The scanner is lexical (comments and literals stripped, then per-line
// token matching): fast, dependency-free, and precise enough for a
// single-style codebase.  Run as a ctest over src/ (label `lint`) and unit
// tested on synthetic snippets in tests/test_lint.cpp.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace delta::lint {

struct Finding {
  std::string file;  ///< Path label as reported (repo-relative for the tree walk).
  int line = 0;      ///< 1-based.
  std::string rule;
  std::string detail;
};

/// Per-file context supplied by the tree walker (unit tests fabricate it).
struct FileInfo {
  std::string path_label;
  /// Include path of the file's own header ("sim/mt_sim.hpp"); empty when
  /// the file is a header or has no same-name header next to it.  Enables
  /// the own-header-first rule.
  std::string expected_header;
};

/// Lints one translation unit's text.  Findings are in line order.
std::vector<Finding> lint_text(const FileInfo& info, std::string_view text);

/// Walks `root` (typically <repo>/src), lints every .hpp/.cpp, and returns
/// all findings sorted by (file, line).  Paths are reported relative to
/// `root`'s parent so messages read "src/...".
std::vector<Finding> lint_tree(const std::filesystem::path& root);

/// "file:line: rule: detail" — the format the ctest prints per violation.
std::string format(const Finding& f);

}  // namespace delta::lint
