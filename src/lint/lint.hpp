// delta_lint: project-specific determinism and hygiene rules the compiler
// cannot enforce.  The DELTA policy loop must be bit-reproducible from a
// seed (the differential oracle and the cross-thread determinism check in
// src/check depend on it), so sources of cross-run variation are banned
// from src/ outright:
//
//   unordered-iter    iterating a std::unordered_map/unordered_set
//                     (iteration order depends on hash layout and libstdc++
//                     version; any fold over it can change results)
//   nondet-source     rand()/srand(), std::random_device, wall-clock
//                     (std::chrono::system_clock, time(), clock()) — all
//                     randomness must flow through common/rng.hpp seeds.
//                     steady_clock/high_resolution_clock are banned too,
//                     with one carve-out: files under src/obs/prof, the
//                     self-profiling subsystem whose whole job is reading
//                     the clock (sim/ code instruments itself through its
//                     RAII types and never touches a clock directly)
//   raw-intrinsic     intrinsic headers (<emmintrin.h>, <immintrin.h>,
//                     <arm_neon.h>, ...), `_mm*` identifiers and
//                     __builtin_prefetch anywhere but src/common/simd.hpp,
//                     the single SIMD dispatch layer — per-ISA code outside
//                     it escapes the -DDELTA_NO_SIMD scalar-equivalence CI
//                     job and the bit-identity contract it enforces
//   raw-affinity      raw OS thread-affinity API (pthread_setaffinity_np,
//                     sched_setaffinity, cpu_set_t, sched_getcpu, <sched.h>)
//                     anywhere but src/common/affinity.hpp, the single
//                     portability shim — scattered affinity calls skip its
//                     no-op fallback and tie code to one platform
//   ptr-key           pointer-keyed ordered containers (std::map<T*, ...>):
//                     ordered by allocation addresses, i.e. by ASLR
//   naked-new         naked new/delete — owning raw pointers; use values,
//                     containers or smart pointers
//   own-header-first  a .cpp must include its own header first, proving the
//                     header is self-contained
//
// A violation can be waived on its line with the suppression comment
//   // delta-lint: allow(<rule>)
//
// The scanner is lexical (comments and literals stripped, then per-line
// token matching): fast, dependency-free, and precise enough for a
// single-style codebase.  Run as a ctest over src/ (label `lint`) and unit
// tested on synthetic snippets in tests/test_lint.cpp.
//
// On top of the lexical rules sits a small semantic layer built on the
// token-level front in lint/ir.hpp:
//
//   phase-effect      the sim::Scheme thread-locality contract, checked
//                     over each scheme's during-epoch hook closure
//                     (lint/phase_check.hpp)
//   layering          the declared module DAG of src/ enforced over the
//                     real include graph, plus include-cycle detection
//                     (lint/layering.hpp)
//
// lint_tree() runs all of it; the delta_lint CLI adds --rule filtering, a
// findings --baseline, machine-readable --json output and
// --fix-suggestions (the exact suppression/annotation line per finding).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace delta::lint {

struct Finding {
  std::string file;  ///< Path label as reported (repo-relative for the tree walk).
  int line = 0;      ///< 1-based.
  std::string rule;
  std::string detail;
  /// Paste-ready triage hint (the exact suppression/annotation line or
  /// baseline entry); surfaced by `delta_lint --fix-suggestions` and in the
  /// JSON export.  Empty when the fix is a plain code change.
  std::string suggestion;
};

/// Per-file context supplied by the tree walker (unit tests fabricate it).
struct FileInfo {
  std::string path_label;
  /// Include path of the file's own header ("sim/mt_sim.hpp"); empty when
  /// the file is a header or has no same-name header next to it.  Enables
  /// the own-header-first rule.
  std::string expected_header;
};

/// Lints one translation unit's text.  Findings are in line order.
std::vector<Finding> lint_text(const FileInfo& info, std::string_view text);

/// Tree-walk options.  `rules` empty == run everything; otherwise only the
/// named rules are reported.  Known names: the seven lexical rules
/// (unordered-iter, nondet-source, raw-intrinsic, raw-affinity, ptr-key,
/// naked-new, own-header-first)
/// plus the semantic rules phase-effect (lint/phase_check.hpp), layering
/// and include-cycle (lint/layering.hpp).
struct TreeOptions {
  std::vector<std::string> rules;
};

/// Walks `root` (typically <repo>/src), lints every .hpp/.cpp, and returns
/// all findings sorted by (file, line, rule).  Paths are reported relative
/// to `root`'s parent so messages read "src/...".  The walk is
/// deterministic (files sorted by generic path, independent of filesystem
/// enumeration order) and skips `build*` directories and dot-directories
/// outright, so pointing the tool at a repo root never lints generated
/// artifacts.
std::vector<Finding> lint_tree(const std::filesystem::path& root);
std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const TreeOptions& opts);

/// Findings baseline: a text file with one `<file>:<rule>` entry per line
/// (`#` comments and blank lines ignored).  Every finding whose file and
/// rule match an entry is waived — line numbers deliberately excluded so a
/// baseline survives unrelated edits.
struct Baseline {
  std::vector<std::pair<std::string, std::string>> entries;  ///< (file, rule)
};

/// Parses a baseline file; `ok` (when non-null) reports whether the file
/// was readable.  An unreadable file yields an empty baseline.
Baseline load_baseline(const std::filesystem::path& path, bool* ok = nullptr);

/// Removes findings matched by the baseline; returns how many were waived.
std::size_t apply_baseline(const Baseline& baseline,
                           std::vector<Finding>& findings);

/// "file:line: rule: detail" — the format the ctest prints per violation.
std::string format(const Finding& f);

}  // namespace delta::lint
