#include "lint/ir.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace delta::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_keyword(std::string_view s) {
  static constexpr std::string_view kKeywords[] = {
      "alignas",  "alignof",  "auto",     "bool",      "break",    "case",
      "catch",    "char",     "class",    "const",     "constexpr",
      "consteval","constinit","continue", "decltype",  "default",  "delete",
      "do",       "double",   "else",     "enum",      "explicit", "export",
      "extern",   "false",    "final",    "float",     "for",      "friend",
      "goto",     "if",       "inline",   "int",       "long",     "mutable",
      "namespace","new",      "noexcept", "nullptr",   "operator", "override",
      "private",  "protected","public",   "register",  "return",   "short",
      "signed",   "sizeof",   "static",   "struct",    "switch",   "template",
      "this",     "throw",    "true",     "try",       "typedef",  "typeid",
      "typename", "union",    "unsigned", "using",     "virtual",  "void",
      "volatile", "while"};
  return std::find(std::begin(kKeywords), std::end(kKeywords), s) !=
         std::end(kKeywords);
}

}  // namespace

std::string scrub(std::string_view text) {
  std::string out(text);
  enum class St { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(out[i - 1]))) {
          // Raw string: R"delim( ... )delim" — blank the whole literal.
          std::size_t p = i + 2;
          std::string delim;
          while (p < out.size() && out[p] != '(') delim += out[p++];
          const std::string close = ")" + delim + "\"";
          std::size_t end = out.find(close, p);
          end = end == std::string::npos ? out.size() : end + close.size();
          for (std::size_t j = i; j < end; ++j)
            if (out[j] != '\n') out[j] = ' ';
          i = end - 1;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
      case St::kChar: {
        const char quote = st == St::kStr ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[++i] = ' ';
        } else if (c == quote) {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool suppressed(std::string_view raw_line, std::string_view rule) {
  const std::size_t mark = raw_line.find("delta-lint:");
  if (mark == std::string_view::npos) return false;
  const std::size_t allow = raw_line.find("allow(", mark);
  if (allow == std::string_view::npos) return false;
  const std::size_t close = raw_line.find(')', allow);
  if (close == std::string_view::npos) return false;
  const std::string_view list = raw_line.substr(allow + 6, close - allow - 6);
  // Comma-separated rule list: allow(naked-new, unordered-iter).
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    std::string_view item = list.substr(start, end - start);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (item == rule) return true;
    start = end + 1;
  }
  return false;
}

bool phase_annotated(std::string_view raw_line, std::string_view tag) {
  const std::size_t mark = raw_line.find("delta-phase:");
  if (mark == std::string_view::npos) return false;
  std::size_t p = mark + std::string_view("delta-phase:").size();
  while (p < raw_line.size() && raw_line[p] == ' ') ++p;
  if (raw_line.compare(p, tag.size(), tag) != 0) return false;
  const std::size_t end = p + tag.size();
  return end >= raw_line.size() || !ident_char(raw_line[end]);
}

std::vector<Token> tokenize(std::string_view scrubbed) {
  // Longest-match-first operator table: everything a checker must not
  // confuse with plain `=` (or must see as one unit, like `->`).
  static constexpr std::string_view kOps3[] = {"<<=", ">>=", "->*", "..."};
  static constexpr std::string_view kOps2[] = {
      "->", "::", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
      "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>"};

  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  while (i < scrubbed.size()) {
    const char c = scrubbed[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < scrubbed.size() && ident_char(scrubbed[j])) ++j;
      tokens.push_back(Token{scrubbed.substr(i, j - i), TokKind::kIdent, line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < scrubbed.size() &&
             (ident_char(scrubbed[j]) || scrubbed[j] == '.' || scrubbed[j] == '\''))
        ++j;
      tokens.push_back(Token{scrubbed.substr(i, j - i), TokKind::kNumber, line});
      i = j;
      continue;
    }
    std::size_t len = 1;
    for (std::string_view op : kOps3)
      if (scrubbed.compare(i, op.size(), op) == 0) {
        len = op.size();
        break;
      }
    if (len == 1)
      for (std::string_view op : kOps2)
        if (scrubbed.compare(i, op.size(), op) == 0) {
          len = op.size();
          break;
        }
    tokens.push_back(Token{scrubbed.substr(i, len), TokKind::kPunct, line});
    i += len;
  }
  return tokens;
}

namespace {

using Tokens = std::vector<Token>;

/// Index one past the `}` matching the `{` at `open`; tokens.size() when
/// unbalanced.
std::size_t match_brace(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "{") ++depth;
    else if (t[i].text == "}" && --depth == 0) return i + 1;
  }
  return t.size();
}

/// Scans `class`/`struct` heads.  On success fills `out` (name, bases,
/// body token range) and returns the index one past the closing `}`;
/// otherwise returns `i + 1` (not a class definition: forward declaration,
/// template parameter, elaborated type specifier...).
std::size_t parse_class_head(const Tokens& t, std::size_t i, ClassDecl* out,
                             bool* ok) {
  *ok = false;
  std::size_t j = i + 1;
  if (i > 0 && t[i - 1].text == "enum") return j;  // enum class
  if (j >= t.size() || t[j].kind != TokKind::kIdent || is_keyword(t[j].text))
    return j;
  ClassDecl cls;
  cls.name = std::string(t[j].text);
  cls.line = t[j].line;
  ++j;
  if (j < t.size() && t[j].text == "final") ++j;
  if (j < t.size() && t[j].text == ":") {
    // Base-clause: collect the last identifier of each `::`-qualified (and
    // possibly templated) base name.
    ++j;
    std::string last_ident;
    int angle = 0;
    for (; j < t.size(); ++j) {
      const std::string_view s = t[j].text;
      if (s == "<") ++angle;
      else if (s == ">") --angle;
      else if (s == ">>") angle -= 2;
      else if (angle == 0 && (s == "," || s == "{" || s == ";")) {
        if (!last_ident.empty()) cls.bases.push_back(last_ident);
        last_ident.clear();
        if (s != ",") break;
      } else if (angle == 0 && t[j].kind == TokKind::kIdent &&
                 !is_keyword(s)) {
        last_ident = std::string(s);
      }
    }
  }
  if (j >= t.size() || t[j].text != "{") return i + 1;
  cls.body_begin = j + 1;
  const std::size_t end = match_brace(t, j);
  cls.body_end = end > 0 ? end - 1 : j + 1;
  *out = std::move(cls);
  *ok = true;
  return end;
}

/// Skips a constructor's member-init list starting at the `:` token;
/// returns the index of the body `{` (or an end/terminator index).
std::size_t skip_ctor_init(const Tokens& t, std::size_t i, std::size_t end) {
  ++i;  // past ':'
  while (i < end) {
    // Initializer: name (possibly qualified/templated) then (...) or {...}.
    while (i < end && t[i].text != "(" && t[i].text != "{" && t[i].text != ";")
      ++i;
    if (i >= end || t[i].text == ";") return i;
    if (t[i].text == "(") {
      int depth = 0;
      for (; i < end; ++i) {
        if (t[i].text == "(") ++depth;
        else if (t[i].text == ")" && --depth == 0) { ++i; break; }
      }
    } else {
      i = match_brace(t, i);
    }
    if (i < end && t[i].text == ",") { ++i; continue; }
    // Next `{` (if any) is the constructor body.
    while (i < end && t[i].text != "{" && t[i].text != ";") ++i;
    return i;
  }
  return i;
}

/// Parses the members in `cls`'s body token range.  Nested class bodies
/// are skipped here; pass 1 indexes them as classes of their own.
void parse_members(const Tokens& t, ClassDecl& cls) {
  std::size_t i = cls.body_begin;
  const std::size_t end = cls.body_end;
  while (i < end) {
    const std::string_view s = t[i].text;
    // Access specifiers.
    if ((s == "public" || s == "private" || s == "protected") && i + 1 < end &&
        t[i + 1].text == ":") {
      i += 2;
      continue;
    }
    if (s == ";") { ++i; continue; }
    // Declarations a field/method scan must not misread.
    if (s == "using" || s == "typedef" || s == "friend" ||
        s == "static_assert" || s == "enum" || s == "class" || s == "struct") {
      while (i < end && t[i].text != ";") {
        if (t[i].text == "{") { i = match_brace(t, i); continue; }
        ++i;
      }
      ++i;
      continue;
    }
    if (s == "template") {
      // Skip the parameter list; the declaration that follows parses
      // normally on the next iterations.
      ++i;
      int angle = 0;
      for (; i < end; ++i) {
        if (t[i].text == "<") ++angle;
        else if (t[i].text == ">") { if (--angle == 0) { ++i; break; } }
        else if (t[i].text == ">>") { angle -= 2; if (angle <= 0) { ++i; break; } }
      }
      continue;
    }

    // Generic member declaration: walk to the first top-level `(`, `=`,
    // `{` or `;` to classify method vs field.
    const std::size_t decl_start = i;
    std::size_t first_paren = 0, first_assign = 0, term = 0;
    int pdepth = 0, adepth = 0;
    for (std::size_t k = i; k < end; ++k) {
      const std::string_view v = t[k].text;
      if (v == "(") {
        if (pdepth == 0 && adepth == 0 && first_paren == 0) first_paren = k;
        ++pdepth;
      } else if (v == ")") {
        --pdepth;
      } else if (pdepth == 0) {
        if (v == "<") ++adepth;
        else if (v == ">") adepth = adepth > 0 ? adepth - 1 : 0;
        else if (v == ">>") adepth = adepth >= 2 ? adepth - 2 : 0;
        else if (adepth == 0 && v == "=" && first_assign == 0 &&
                 first_paren == 0) first_assign = k;
        else if (adepth == 0 && (v == ";" || v == "{")) { term = k; break; }
      }
    }
    if (term == 0) break;  // Unbalanced tail; stop scanning this class.

    const bool is_method = first_paren != 0 && first_assign == 0;
    if (is_method) {
      MethodDecl m;
      const Token& before = t[first_paren - 1];
      if (before.kind == TokKind::kIdent && !is_keyword(before.text)) {
        m.name = std::string(before.text);
      } else if (first_paren >= 2 && t[first_paren - 2].text == "operator") {
        m.name = "operator" + std::string(before.text);
      }
      m.line = t[decl_start].line;
      for (std::size_t k = decl_start; k < first_paren; ++k)
        if (t[k].text == "static") m.is_static = true;
      // Trailer: match the parameter list, then scan cv/virt specifiers up
      // to the body/terminator.
      std::size_t k = first_paren;
      int depth = 0;
      for (; k < end; ++k) {
        if (t[k].text == "(") ++depth;
        else if (t[k].text == ")" && --depth == 0) { ++k; break; }
      }
      bool pure_or_defaulted = false;
      for (; k < end; ++k) {
        const std::string_view v = t[k].text;
        if (v == "const") m.is_const = true;
        else if (v == "override" || v == "final") m.is_override = true;
        else if (v == ":") { k = skip_ctor_init(t, k, end); break; }
        else if (v == "=") pure_or_defaulted = true;
        else if (v == "{" || v == ";") break;
      }
      if (k < end && t[k].text == "{" && !pure_or_defaulted) {
        m.has_body = true;
        m.body_begin = k + 1;
        const std::size_t close = match_brace(t, k);
        m.body_end = close > 0 ? close - 1 : k + 1;
        i = close;
      } else {
        while (k < end && t[k].text != ";") {
          if (t[k].text == "{") { k = match_brace(t, k); continue; }
          ++k;
        }
        i = k + 1;
      }
      if (!m.name.empty()) cls.methods.push_back(std::move(m));
      continue;
    }

    // Field: name is the last identifier before the initializer/terminator
    // (skipping array extents).
    std::size_t stop = term;
    if (first_assign != 0) stop = first_assign;
    std::size_t name_idx = 0;
    for (std::size_t k = decl_start; k < stop; ++k) {
      if (t[k].text == "[") {  // array extent; the name precedes it
        break;
      }
      if (t[k].kind == TokKind::kIdent && !is_keyword(t[k].text) &&
          (k + 1 >= stop || t[k + 1].text != "::"))
        name_idx = k;
    }
    if (name_idx != 0) {
      // Reject qualified names (`Type::member` definitions can't appear
      // here) and template arguments mistaken for names.
      const bool qualified = t[name_idx - 1].text == "::";
      bool in_angles = false;
      int adepth2 = 0;
      for (std::size_t k = decl_start; k < name_idx; ++k) {
        if (t[k].text == "<") ++adepth2;
        else if (t[k].text == ">") adepth2 = adepth2 > 0 ? adepth2 - 1 : 0;
        else if (t[k].text == ">>") adepth2 = adepth2 >= 2 ? adepth2 - 2 : 0;
      }
      in_angles = adepth2 > 0;
      if (!qualified && !in_angles) {
        FieldDecl f;
        f.name = std::string(t[name_idx].text);
        f.line = t[name_idx].line;
        for (std::size_t k = decl_start; k < name_idx; ++k) {
          const std::string_view v = t[k].text;
          if (v == "mutable") f.is_mutable = true;
          else if (v == "static") f.is_static = true;
          else if (v == "*" || v == "unique_ptr" || v == "shared_ptr")
            f.is_pointer_like = true;
        }
        cls.fields.push_back(std::move(f));
      }
    }
    // Advance past the declaration (through any brace-init to the `;`).
    std::size_t k = term;
    while (k < end && t[k].text != ";") {
      if (t[k].text == "{") { k = match_brace(t, k); continue; }
      ++k;
    }
    i = k + 1;
  }
}

}  // namespace

TranslationUnit parse_tu(std::string_view text) {
  TranslationUnit tu;
  tu.scrubbed = scrub(text);
  tu.tokens = tokenize(tu.scrubbed);

  // Pass 1: locate every class/struct definition (including nested ones).
  for (std::size_t i = 0; i < tu.tokens.size(); ++i) {
    if (tu.tokens[i].text != "class" && tu.tokens[i].text != "struct") continue;
    ClassDecl cls;
    bool ok = false;
    const std::size_t next = parse_class_head(tu.tokens, i, &cls, &ok);
    if (ok) tu.classes.push_back(std::move(cls));
    // Continue scanning *inside* the class too so nested classes are found:
    // do not jump to `next` — just ensure forward progress.
    (void)next;
  }

  // Pass 2: members (nested class declarations are skipped inside).
  for (ClassDecl& cls : tu.classes) parse_members(tu.tokens, cls);
  return tu;
}

std::vector<IncludeDirective> parse_includes(std::string_view text) {
  std::vector<IncludeDirective> out;
  int line = 0;
  for (std::string_view l : split_lines(text)) {
    ++line;
    std::size_t p = 0;
    while (p < l.size() && (l[p] == ' ' || l[p] == '\t')) ++p;
    if (p >= l.size() || l[p] != '#') continue;
    ++p;
    while (p < l.size() && (l[p] == ' ' || l[p] == '\t')) ++p;
    if (l.compare(p, 7, "include") != 0) continue;
    p += 7;
    while (p < l.size() && (l[p] == ' ' || l[p] == '\t')) ++p;
    if (p >= l.size() || l[p] != '"') continue;
    const std::size_t close = l.find('"', p + 1);
    if (close == std::string_view::npos) continue;
    out.push_back(IncludeDirective{std::string(l.substr(p + 1, close - p - 1)), line});
  }
  return out;
}

}  // namespace delta::lint
