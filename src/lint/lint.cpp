#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

namespace delta::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when text[pos..pos+word) is `word` delimited by non-identifier
/// characters on both sides.
bool word_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < text.size() && ident_char(text[end])) return false;
  return true;
}

/// Finds the next whole-word occurrence of `word` at or after `from`.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from = 0) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string_view::npos;
}

/// Replaces comments and string/character literal bodies with spaces,
/// preserving length and line structure so offsets keep mapping to the
/// original text.  Handles //, /*...*/, "...", '...' and R"delim(...)delim".
std::string scrub(std::string_view text) {
  std::string out(text);
  enum class St { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(out[i - 1]))) {
          // Raw string: R"delim( ... )delim" — blank the whole literal.
          std::size_t p = i + 2;
          std::string delim;
          while (p < out.size() && out[p] != '(') delim += out[p++];
          const std::string close = ")" + delim + "\"";
          std::size_t end = out.find(close, p);
          end = end == std::string::npos ? out.size() : end + close.size();
          for (std::size_t j = i; j < end; ++j)
            if (out[j] != '\n') out[j] = ' ';
          i = end - 1;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
      case St::kChar: {
        const char quote = st == St::kStr ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[++i] = ' ';
        } else if (c == quote) {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Skips a balanced `<...>` template argument list starting at the '<' at
/// `pos`; returns the index one past the matching '>'.  npos if unbalanced.
std::size_t skip_template_args(std::string_view text, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    else if (text[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

/// Names declared with an unordered container type anywhere in the file:
/// `std::unordered_map<K, V> name` (members, locals, parameters).
std::set<std::string, std::less<>> unordered_names(std::string_view code) {
  std::set<std::string, std::less<>> names;
  for (const char* type : {"unordered_map", "unordered_set", "unordered_multimap",
                           "unordered_multiset"}) {
    for (std::size_t pos = find_word(code, type); pos != std::string_view::npos;
         pos = find_word(code, type, pos + 1)) {
      std::size_t p = pos + std::string_view(type).size();
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_template_args(code, p);
      if (p == std::string_view::npos) continue;
      while (p < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[p])) != 0 ||
              code[p] == '&' || code[p] == '*'))
        ++p;
      std::size_t q = p;
      while (q < code.size() && ident_char(code[q])) ++q;
      if (q > p) names.emplace(code.substr(p, q - p));
    }
  }
  return names;
}

/// Range expression of a single-line range-for, or empty: text between the
/// loop's single ':' (not part of '::') and the closing ')'.
std::string_view range_for_expr(std::string_view line) {
  const std::size_t f = find_word(line, "for");
  if (f == std::string_view::npos) return {};
  const std::size_t open = line.find('(', f);
  if (open == std::string_view::npos) return {};
  int depth = 0;
  std::size_t colon = std::string_view::npos;
  for (std::size_t i = open; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '(') ++depth;
    else if (c == ')') {
      if (--depth == 0)
        return colon == std::string_view::npos
                   ? std::string_view{}
                   : line.substr(colon + 1, i - colon - 1);
    } else if (c == ':' && depth == 1) {
      const bool dbl = (i > 0 && line[i - 1] == ':') ||
                       (i + 1 < line.size() && line[i + 1] == ':');
      if (!dbl) colon = i;
    }
  }
  return {};
}

/// First template argument of `map<`/`set<` at `pos` (pos at the word).
std::string_view first_template_arg(std::string_view code, std::size_t open) {
  int depth = 0;
  const std::size_t start = open + 1;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (--depth == 0) return code.substr(start, i - start);
    } else if (c == ',' && depth == 1) {
      return code.substr(start, i - start);
    }
  }
  return {};
}

bool suppressed(std::string_view raw_line, std::string_view rule) {
  const std::size_t mark = raw_line.find("delta-lint:");
  if (mark == std::string_view::npos) return false;
  const std::size_t allow = raw_line.find("allow(", mark);
  if (allow == std::string_view::npos) return false;
  const std::size_t close = raw_line.find(')', allow);
  if (close == std::string_view::npos) return false;
  const std::string_view list =
      raw_line.substr(allow + 6, close - allow - 6);
  // Comma-separated rule list: allow(naked-new, unordered-iter).
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    std::string_view item = list.substr(start, end - start);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (item == rule) return true;
    start = end + 1;
  }
  return false;
}

class Linter {
 public:
  Linter(const FileInfo& info, std::string_view text)
      : info_(info),
        raw_lines_(split_lines(text)),
        code_(scrub(text)),
        code_lines_(split_lines(code_)) {}

  std::vector<Finding> run() {
    check_unordered_iteration();
    check_nondeterminism_sources();
    check_pointer_keys();
    check_naked_new();
    check_own_header_first();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  void add(int line_idx, std::string rule, std::string detail) {
    const std::string_view raw =
        line_idx < static_cast<int>(raw_lines_.size()) ? raw_lines_[line_idx]
                                                       : std::string_view{};
    if (suppressed(raw, rule)) return;
    findings_.push_back(
        Finding{info_.path_label, line_idx + 1, std::move(rule), std::move(detail)});
  }

  void check_unordered_iteration() {
    const auto names = unordered_names(code_);
    if (names.empty()) return;
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      // Range-for over an unordered container.
      const std::string_view range = range_for_expr(line);
      if (!range.empty()) {
        for (const std::string& n : names) {
          if (find_word(range, n) != std::string_view::npos) {
            add(static_cast<int>(li), "unordered-iter",
                "range-for over unordered container '" + n +
                    "'; iteration order is not deterministic — use std::map "
                    "or a sorted vector");
            break;
          }
        }
      }
      // Explicit iterator walks start at begin(); comparing against end()
      // (the find-sentinel idiom) never observes the order and stays legal.
      for (const std::string& n : names) {
        for (std::size_t pos = find_word(line, n); pos != std::string_view::npos;
             pos = find_word(line, n, pos + 1)) {
          const std::size_t after = pos + n.size();
          for (const char* it : {".begin(", ".cbegin(", ".rbegin("}) {
            if (line.compare(after, std::string_view(it).size(), it) == 0) {
              add(static_cast<int>(li), "unordered-iter",
                  "iterator over unordered container '" + n +
                      "'; iteration order is not deterministic — use std::map "
                      "or a sorted vector");
              pos = line.size();
              break;
            }
          }
          if (pos >= line.size()) break;
        }
      }
    }
  }

  void check_nondeterminism_sources() {
    struct Pattern {
      const char* word;
      bool needs_call;  ///< Only flag when followed by '('.
      const char* what;
      /// Path-label substring under which the word is legal (nullptr =
      /// banned everywhere).  The only current carve-out is the profiling
      /// subsystem: wall-clock reads are its whole purpose, and they stay
      /// observation-only there (docs/observability.md).
      const char* allow_dir = nullptr;
    };
    static constexpr Pattern kPatterns[] = {
        {"rand", true, "rand() is seed-global and libc-dependent"},
        {"srand", true, "srand() seeds global libc state"},
        {"random_device", false, "std::random_device is nondeterministic"},
        {"system_clock", false, "wall-clock time varies across runs"},
        {"time", true, "time() reads the wall clock"},
        {"clock", true, "clock() reads process time"},
        {"steady_clock", false,
         "wall-clock reads outside the profiling subsystem; instrument "
         "through obs/prof/prof.hpp instead", "src/obs/prof"},
        {"high_resolution_clock", false,
         "wall-clock reads outside the profiling subsystem; instrument "
         "through obs/prof/prof.hpp instead", "src/obs/prof"},
    };
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      for (const Pattern& p : kPatterns) {
        if (p.allow_dir != nullptr &&
            info_.path_label.find(p.allow_dir) != std::string::npos)
          continue;
        for (std::size_t pos = find_word(line, p.word);
             pos != std::string_view::npos;
             pos = find_word(line, p.word, pos + 1)) {
          if (p.needs_call) {
            std::size_t after = pos + std::string_view(p.word).size();
            while (after < line.size() && line[after] == ' ') ++after;
            if (after >= line.size() || line[after] != '(') continue;
          }
          add(static_cast<int>(li), "nondet-source",
              std::string(p.word) + ": " + p.what +
                  "; route randomness through common/rng.hpp");
          break;
        }
      }
    }
  }

  void check_pointer_keys() {
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      for (const char* type : {"map", "set", "multimap", "multiset"}) {
        for (std::size_t pos = find_word(line, type); pos != std::string_view::npos;
             pos = find_word(line, type, pos + 1)) {
          const std::size_t open = pos + std::string_view(type).size();
          if (open >= line.size() || line[open] != '<') continue;
          const std::string_view key = first_template_arg(line, open);
          if (key.find('*') != std::string_view::npos) {
            add(static_cast<int>(li), "ptr-key",
                "pointer-keyed ordered container: iteration order follows "
                "allocation addresses (ASLR), not program logic");
            break;
          }
        }
      }
    }
  }

  void check_naked_new() {
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      if (find_word(line, "new") != std::string_view::npos) {
        add(static_cast<int>(li), "naked-new",
            "naked new: prefer values, containers or std::make_unique");
      }
      for (std::size_t pos = find_word(line, "delete");
           pos != std::string_view::npos;
           pos = find_word(line, "delete", pos + 1)) {
        // Permit `= delete;` (deleted functions) and operator delete.
        std::size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        const bool deleted_fn = before > 0 && line[before - 1] == '=';
        const bool op = before >= 8 && line.compare(before - 8, 8, "operator") == 0;
        if (deleted_fn || op) continue;
        add(static_cast<int>(li), "naked-new",
            "naked delete: ownership should live in a container or smart pointer");
        break;
      }
    }
  }

  void check_own_header_first() {
    if (info_.expected_header.empty()) return;
    const std::string want = "#include \"" + info_.expected_header + "\"";
    for (std::size_t li = 0; li < raw_lines_.size(); ++li) {
      std::string_view line = raw_lines_[li];
      while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
      if (line.rfind("#include", 0) != 0) continue;
      if (line.rfind(want, 0) != 0)
        add(static_cast<int>(li), "own-header-first",
            "first include must be the file's own header \"" +
                info_.expected_header + "\" (proves it is self-contained)");
      return;  // Only the first include matters.
    }
  }

  const FileInfo& info_;
  std::vector<std::string_view> raw_lines_;
  std::string code_;
  std::vector<std::string_view> code_lines_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> lint_text(const FileInfo& info, std::string_view text) {
  return Linter(info, text).run();
}

std::vector<Finding> lint_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::vector<Finding> all;
  std::vector<fs::path> files;
  if (fs::exists(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());  // Deterministic walk order.

  const fs::path base = root.has_parent_path() ? root.parent_path() : root;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream buf;
    buf << in.rdbuf();

    FileInfo info;
    info.path_label = fs::relative(file, base).generic_string();
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      fs::path header = file;
      header.replace_extension(".hpp");
      if (fs::exists(header))
        info.expected_header = fs::relative(header, root).generic_string();
    }
    for (Finding& f : lint_text(info, buf.str())) all.push_back(std::move(f));
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " + f.detail;
}

}  // namespace delta::lint
