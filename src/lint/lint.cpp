#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/ir.hpp"
#include "lint/layering.hpp"
#include "lint/phase_check.hpp"

namespace delta::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when text[pos..pos+word) is `word` delimited by non-identifier
/// characters on both sides.
bool word_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < text.size() && ident_char(text[end])) return false;
  return true;
}

/// Finds the next whole-word occurrence of `word` at or after `from`.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from = 0) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string_view::npos;
}

/// Skips a balanced `<...>` template argument list starting at the '<' at
/// `pos`; returns the index one past the matching '>'.  npos if unbalanced.
std::size_t skip_template_args(std::string_view text, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    else if (text[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

/// Names declared with an unordered container type anywhere in the file:
/// `std::unordered_map<K, V> name` (members, locals, parameters).
std::set<std::string, std::less<>> unordered_names(std::string_view code) {
  std::set<std::string, std::less<>> names;
  for (const char* type : {"unordered_map", "unordered_set", "unordered_multimap",
                           "unordered_multiset"}) {
    for (std::size_t pos = find_word(code, type); pos != std::string_view::npos;
         pos = find_word(code, type, pos + 1)) {
      std::size_t p = pos + std::string_view(type).size();
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_template_args(code, p);
      if (p == std::string_view::npos) continue;
      while (p < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[p])) != 0 ||
              code[p] == '&' || code[p] == '*'))
        ++p;
      std::size_t q = p;
      while (q < code.size() && ident_char(code[q])) ++q;
      if (q > p) names.emplace(code.substr(p, q - p));
    }
  }
  return names;
}

/// Range expression of a single-line range-for, or empty: text between the
/// loop's single ':' (not part of '::') and the closing ')'.
std::string_view range_for_expr(std::string_view line) {
  const std::size_t f = find_word(line, "for");
  if (f == std::string_view::npos) return {};
  const std::size_t open = line.find('(', f);
  if (open == std::string_view::npos) return {};
  int depth = 0;
  std::size_t colon = std::string_view::npos;
  for (std::size_t i = open; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '(') ++depth;
    else if (c == ')') {
      if (--depth == 0)
        return colon == std::string_view::npos
                   ? std::string_view{}
                   : line.substr(colon + 1, i - colon - 1);
    } else if (c == ':' && depth == 1) {
      const bool dbl = (i > 0 && line[i - 1] == ':') ||
                       (i + 1 < line.size() && line[i + 1] == ':');
      if (!dbl) colon = i;
    }
  }
  return {};
}

/// First template argument of `map<`/`set<` at `pos` (pos at the word).
std::string_view first_template_arg(std::string_view code, std::size_t open) {
  int depth = 0;
  const std::size_t start = open + 1;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (--depth == 0) return code.substr(start, i - start);
    } else if (c == ',' && depth == 1) {
      return code.substr(start, i - start);
    }
  }
  return {};
}

class Linter {
 public:
  Linter(const FileInfo& info, std::string_view text)
      : info_(info),
        raw_lines_(split_lines(text)),
        code_(scrub(text)),
        code_lines_(split_lines(code_)) {}

  std::vector<Finding> run() {
    check_unordered_iteration();
    check_nondeterminism_sources();
    check_raw_intrinsics();
    check_raw_affinity();
    check_pointer_keys();
    check_naked_new();
    check_own_header_first();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  void add(int line_idx, std::string rule, std::string detail) {
    const std::string_view raw =
        line_idx < static_cast<int>(raw_lines_.size()) ? raw_lines_[line_idx]
                                                       : std::string_view{};
    if (suppressed(raw, rule)) return;
    findings_.push_back(Finding{info_.path_label, line_idx + 1,
                                std::move(rule), std::move(detail), {}});
  }

  void check_unordered_iteration() {
    const auto names = unordered_names(code_);
    if (names.empty()) return;
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      // Range-for over an unordered container.
      const std::string_view range = range_for_expr(line);
      if (!range.empty()) {
        for (const std::string& n : names) {
          if (find_word(range, n) != std::string_view::npos) {
            add(static_cast<int>(li), "unordered-iter",
                "range-for over unordered container '" + n +
                    "'; iteration order is not deterministic — use std::map "
                    "or a sorted vector");
            break;
          }
        }
      }
      // Explicit iterator walks start at begin(); comparing against end()
      // (the find-sentinel idiom) never observes the order and stays legal.
      for (const std::string& n : names) {
        for (std::size_t pos = find_word(line, n); pos != std::string_view::npos;
             pos = find_word(line, n, pos + 1)) {
          const std::size_t after = pos + n.size();
          for (const char* it : {".begin(", ".cbegin(", ".rbegin("}) {
            if (line.compare(after, std::string_view(it).size(), it) == 0) {
              add(static_cast<int>(li), "unordered-iter",
                  "iterator over unordered container '" + n +
                      "'; iteration order is not deterministic — use std::map "
                      "or a sorted vector");
              pos = line.size();
              break;
            }
          }
          if (pos >= line.size()) break;
        }
      }
    }
  }

  void check_nondeterminism_sources() {
    struct Pattern {
      const char* word;
      bool needs_call;  ///< Only flag when followed by '('.
      const char* what;
      /// Path-label substring under which the word is legal (nullptr =
      /// banned everywhere).  The only current carve-out is the profiling
      /// subsystem: wall-clock reads are its whole purpose, and they stay
      /// observation-only there (docs/observability.md).
      const char* allow_dir = nullptr;
    };
    static constexpr Pattern kPatterns[] = {
        {"rand", true, "rand() is seed-global and libc-dependent"},
        {"srand", true, "srand() seeds global libc state"},
        {"random_device", false, "std::random_device is nondeterministic"},
        {"system_clock", false, "wall-clock time varies across runs"},
        {"time", true, "time() reads the wall clock"},
        {"clock", true, "clock() reads process time"},
        {"steady_clock", false,
         "wall-clock reads outside the profiling subsystem; instrument "
         "through obs/prof/prof.hpp instead", "src/obs/prof"},
        {"high_resolution_clock", false,
         "wall-clock reads outside the profiling subsystem; instrument "
         "through obs/prof/prof.hpp instead", "src/obs/prof"},
    };
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      for (const Pattern& p : kPatterns) {
        if (p.allow_dir != nullptr &&
            info_.path_label.find(p.allow_dir) != std::string::npos)
          continue;
        for (std::size_t pos = find_word(line, p.word);
             pos != std::string_view::npos;
             pos = find_word(line, p.word, pos + 1)) {
          if (p.needs_call) {
            std::size_t after = pos + std::string_view(p.word).size();
            while (after < line.size() && line[after] == ' ') ++after;
            if (after >= line.size() || line[after] != '(') continue;
          }
          add(static_cast<int>(li), "nondet-source",
              std::string(p.word) + ": " + p.what +
                  "; route randomness through common/rng.hpp");
          break;
        }
      }
    }
  }

  /// Raw SIMD/prefetch intrinsics outside the dispatch layer.  Every
  /// intrinsic must live in src/common/simd.hpp so the scalar fallback
  /// (-DDELTA_NO_SIMD) keeps covering the whole codebase and per-ISA code
  /// never leaks into the engine (docs/performance.md).
  void check_raw_intrinsics() {
    if (info_.path_label.find("src/common/simd.hpp") != std::string::npos)
      return;
    static constexpr const char* kHeaders[] = {
        "emmintrin.h", "xmmintrin.h", "pmmintrin.h", "tmmintrin.h",
        "smmintrin.h", "nmmintrin.h", "wmmintrin.h", "immintrin.h",
        "x86intrin.h", "arm_neon.h",  "arm_sve.h",
    };
    const auto ident_char = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
             (c >= '0' && c <= '9') || c == '_';
    };
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      if (line.find("#include") != std::string_view::npos) {
        for (const char* h : kHeaders) {
          if (line.find(h) != std::string_view::npos) {
            add(static_cast<int>(li), "raw-intrinsic",
                std::string("intrinsic header <") + h +
                    "> outside src/common/simd.hpp; add the kernel to the "
                    "dispatch layer instead");
            break;
          }
        }
        continue;
      }
      // Identifiers starting with `_mm` (_mm_*, _mm256_*, _mm512_*) and
      // __builtin_prefetch.  NEON names are too generic to prefix-match;
      // the header ban above covers them.
      for (const char* prefix : {"_mm", "__builtin_prefetch"}) {
        const std::string_view pf(prefix);
        bool hit = false;
        for (std::size_t pos = line.find(pf); pos != std::string_view::npos;
             pos = line.find(pf, pos + 1)) {
          if (pos > 0 && ident_char(line[pos - 1])) continue;  // Mid-token.
          add(static_cast<int>(li), "raw-intrinsic",
              std::string(prefix) +
                  "* intrinsic outside src/common/simd.hpp; call the "
                  "simd::* dispatch kernels instead");
          hit = true;
          break;
        }
        if (hit) break;
      }
    }
  }

  /// Raw OS thread-affinity API outside the portability shim.  Every
  /// affinity call must live in src/common/affinity.hpp so the no-op
  /// fallback keeps covering the whole codebase and platform-specific
  /// pinning never leaks into the engine (docs/performance.md).
  void check_raw_affinity() {
    if (info_.path_label.find("src/common/affinity.hpp") != std::string::npos)
      return;
    static constexpr const char* kWords[] = {
        "pthread_setaffinity_np", "pthread_getaffinity_np",
        "sched_setaffinity",      "sched_getaffinity",
        "cpu_set_t",              "sched_getcpu",
    };
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      if (line.find("#include") != std::string_view::npos) {
        if (line.find("sched.h") != std::string_view::npos) {
          add(static_cast<int>(li), "raw-affinity",
              "<sched.h> outside src/common/affinity.hpp; use the "
              "common::pin_current_thread shim instead");
        }
        continue;
      }
      for (const char* word : kWords) {
        if (find_word(line, word) != std::string_view::npos) {
          add(static_cast<int>(li), "raw-affinity",
              std::string(word) +
                  " outside src/common/affinity.hpp; use the "
                  "common::pin_current_thread shim (no-op fallback) instead");
          break;
        }
      }
    }
  }

  void check_pointer_keys() {
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      for (const char* type : {"map", "set", "multimap", "multiset"}) {
        for (std::size_t pos = find_word(line, type); pos != std::string_view::npos;
             pos = find_word(line, type, pos + 1)) {
          const std::size_t open = pos + std::string_view(type).size();
          if (open >= line.size() || line[open] != '<') continue;
          const std::string_view key = first_template_arg(line, open);
          if (key.find('*') != std::string_view::npos) {
            add(static_cast<int>(li), "ptr-key",
                "pointer-keyed ordered container: iteration order follows "
                "allocation addresses (ASLR), not program logic");
            break;
          }
        }
      }
    }
  }

  void check_naked_new() {
    for (std::size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      if (find_word(line, "new") != std::string_view::npos) {
        add(static_cast<int>(li), "naked-new",
            "naked new: prefer values, containers or std::make_unique");
      }
      for (std::size_t pos = find_word(line, "delete");
           pos != std::string_view::npos;
           pos = find_word(line, "delete", pos + 1)) {
        // Permit `= delete;` (deleted functions) and operator delete.
        std::size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        const bool deleted_fn = before > 0 && line[before - 1] == '=';
        const bool op = before >= 8 && line.compare(before - 8, 8, "operator") == 0;
        if (deleted_fn || op) continue;
        add(static_cast<int>(li), "naked-new",
            "naked delete: ownership should live in a container or smart pointer");
        break;
      }
    }
  }

  void check_own_header_first() {
    if (info_.expected_header.empty()) return;
    const std::string want = "#include \"" + info_.expected_header + "\"";
    for (std::size_t li = 0; li < raw_lines_.size(); ++li) {
      std::string_view line = raw_lines_[li];
      while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
      if (line.rfind("#include", 0) != 0) continue;
      if (line.rfind(want, 0) != 0)
        add(static_cast<int>(li), "own-header-first",
            "first include must be the file's own header \"" +
                info_.expected_header + "\" (proves it is self-contained)");
      return;  // Only the first include matters.
    }
  }

  const FileInfo& info_;
  std::vector<std::string_view> raw_lines_;
  std::string code_;
  std::vector<std::string_view> code_lines_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> lint_text(const FileInfo& info, std::string_view text) {
  return Linter(info, text).run();
}

namespace {

/// True when the walk must not descend into `dir`: build trees (any
/// directory whose name starts with "build") and dot-directories
/// (.git, .cache, ...) contain generated or foreign sources.
bool skip_dir(const std::filesystem::path& dir) {
  const std::string name = dir.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

bool rule_selected(const TreeOptions& opts, std::string_view rule) {
  if (opts.rules.empty()) return true;
  return std::find(opts.rules.begin(), opts.rules.end(), rule) !=
         opts.rules.end();
}

}  // namespace

std::vector<Finding> lint_tree(const std::filesystem::path& root) {
  return lint_tree(root, TreeOptions{});
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const TreeOptions& opts) {
  namespace fs = std::filesystem;
  const bool want_lexical = opts.rules.empty() ||
                            rule_selected(opts, "unordered-iter") ||
                            rule_selected(opts, "nondet-source") ||
                            rule_selected(opts, "raw-intrinsic") ||
                            rule_selected(opts, "raw-affinity") ||
                            rule_selected(opts, "ptr-key") ||
                            rule_selected(opts, "naked-new") ||
                            rule_selected(opts, "own-header-first");
  const bool want_phase = rule_selected(opts, "phase-effect");
  const bool want_layering = rule_selected(opts, "layering");
  const bool want_cycles = rule_selected(opts, "include-cycle");

  std::vector<fs::path> files;
  if (fs::exists(root)) {
    auto it = fs::recursive_directory_iterator(root);
    for (auto end = fs::end(it); it != end; ++it) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        files.push_back(it->path());
    }
  }
  // Deterministic walk order regardless of how the filesystem enumerates
  // entries: sort on the portable generic form.
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.generic_string() < b.generic_string();
            });

  std::vector<Finding> all;
  std::vector<FileInclude> includes;
  // Labels are relative to the root's parent so messages read "src/...".
  // Resolve through lexically_normal+absolute first: a bare relative root
  // ("src") has no parent of its own, and the path-prefix carve-outs
  // (e.g. the prof-subsystem clock allowance keyed on "src/obs/prof")
  // must see the same labels no matter how the root was spelled.
  fs::path norm = fs::absolute(root).lexically_normal();
  if (norm.filename().empty()) norm = norm.parent_path();  // trailing '/'
  const fs::path base = norm.has_parent_path() ? norm.parent_path() : norm;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    FileInfo info;
    info.path_label = fs::relative(file, base).generic_string();
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      fs::path header = file;
      header.replace_extension(".hpp");
      if (fs::exists(header))
        info.expected_header = fs::relative(header, root).generic_string();
    }
    if (want_lexical)
      for (Finding& f : lint_text(info, text)) all.push_back(std::move(f));
    if (want_phase)
      for (Finding& f : phase_check(info, text)) all.push_back(std::move(f));
    if (want_layering || want_cycles)
      for (const IncludeDirective& inc : parse_includes(text))
        includes.push_back(FileInclude{info.path_label, inc.line, inc.path});
  }
  if (want_layering)
    for (Finding& f : check_layering(default_layering(), includes))
      all.push_back(std::move(f));
  if (want_cycles)
    for (Finding& f : check_include_cycles(includes))
      all.push_back(std::move(f));

  if (!opts.rules.empty()) {
    all.erase(std::remove_if(all.begin(), all.end(),
                             [&](const Finding& f) {
                               return !rule_selected(opts, f.rule);
                             }),
              all.end());
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

Baseline load_baseline(const std::filesystem::path& path, bool* ok) {
  Baseline out;
  std::ifstream in(path);
  if (ok != nullptr) *ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    std::string entry = line.substr(first, last - first + 1);
    if (entry.empty() || entry[0] == '#') continue;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size())
      continue;
    out.entries.emplace_back(entry.substr(0, colon), entry.substr(colon + 1));
  }
  return out;
}

std::size_t apply_baseline(const Baseline& baseline,
                           std::vector<Finding>& findings) {
  if (baseline.entries.empty()) return 0;
  const std::size_t before = findings.size();
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       for (const auto& [file, rule] : baseline.entries)
                         if (f.file == file && f.rule == rule) return true;
                       return false;
                     }),
      findings.end());
  return before - findings.size();
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " + f.detail;
}

}  // namespace delta::lint
