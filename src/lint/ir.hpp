// Token-level C++ front for the semantic lint rules (phase-effect,
// layering).  Deliberately *not* a real C++ parser: no preprocessing, no
// overload resolution, no cross-TU type information.  It recovers exactly
// the facts the checkers need from a single translation unit's text —
//
//   * a scrubbed view of the source (comments and literal bodies blanked,
//     offsets preserved) shared with the lexical rules in lint.cpp;
//   * a token stream with line numbers and maximal-munch punctuation
//     (so `==` is never misread as an assignment);
//   * a per-TU symbol index: every class/struct with its base-class names,
//     member fields (mutable/static/pointer-likeness) and member functions
//     (const-ness, override-ness, body token ranges);
//   * the file's `#include "..."` directives for the repo-wide include
//     graph.
//
// The index is conservative where C++ is ambiguous (a declaration it cannot
// classify is skipped, never guessed), which is the right failure mode for
// a linter: the checkers built on top (phase_check.hpp, layering.hpp) only
// act on facts recovered with confidence, and the annotation grammar
// (`// delta-phase: ...`, `// delta-lint: allow(...)`) covers the rest.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace delta::lint {

// ---- Shared text utilities (also used by the lexical rules). ----

/// Replaces comments and string/character literal bodies with spaces,
/// preserving length and line structure so offsets keep mapping to the
/// original text.  Handles //, /*...*/, "...", '...' and R"delim(...)delim".
std::string scrub(std::string_view text);

/// Splits on '\n'; the trailing segment is included even when empty.
std::vector<std::string_view> split_lines(std::string_view text);

/// True when `raw_line` carries `// delta-lint: allow(<rule>[, <rule>...])`
/// naming `rule`.
bool suppressed(std::string_view raw_line, std::string_view rule);

/// True when `raw_line` carries the `// delta-phase: <tag>` annotation
/// (e.g. tag == "epoch-constant").
bool phase_annotated(std::string_view raw_line, std::string_view tag);

// ---- Tokens. ----

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  std::string_view text;
  TokKind kind = TokKind::kPunct;
  int line = 0;  ///< 1-based.
};

/// Tokenizes scrubbed source.  Multi-character operators (`->`, `::`,
/// `++`, `==`, `+=`, `<<=`, ...) come out as single tokens; everything the
/// checkers must not confuse with `=` does too.  The returned views point
/// into `scrubbed`, which must outlive the tokens.
std::vector<Token> tokenize(std::string_view scrubbed);

// ---- Per-TU symbol index. ----

struct FieldDecl {
  std::string name;
  int line = 0;
  bool is_mutable = false;
  bool is_static = false;
  /// Declared with `*`, `std::unique_ptr` or `std::shared_ptr`: const
  /// member functions may still call mutating operations through it.
  bool is_pointer_like = false;
};

struct MethodDecl {
  std::string name;
  int line = 0;
  bool is_const = false;
  bool is_static = false;
  bool is_override = false;
  bool has_body = false;
  /// Token range [body_begin, body_end) of the function body in the TU's
  /// token stream, *excluding* the outer braces; empty when !has_body.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

struct ClassDecl {
  std::string name;
  int line = 0;
  /// Unqualified base-class names (`sim::Scheme` records as "Scheme").
  std::vector<std::string> bases;
  std::vector<FieldDecl> fields;
  std::vector<MethodDecl> methods;
  /// Token range [body_begin, body_end) of the class body (outer braces
  /// excluded) in the TU's token stream.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// One translation unit's recovered structure.  `tokens` views point into
/// the `scrubbed` buffer owned here, so the object is self-contained.
struct TranslationUnit {
  std::string scrubbed;
  std::vector<Token> tokens;
  std::vector<ClassDecl> classes;
};

/// Builds the symbol index for one file's text (raw, un-scrubbed).
TranslationUnit parse_tu(std::string_view text);

// ---- Includes. ----

struct IncludeDirective {
  std::string path;  ///< The quoted include path, verbatim.
  int line = 0;
};

/// All `#include "..."` directives (angle-bracket system includes are not
/// part of the project layering and are skipped).
std::vector<IncludeDirective> parse_includes(std::string_view text);

}  // namespace delta::lint
