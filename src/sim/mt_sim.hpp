// Integrated multithreaded simulation (paper Sec. II-E, executed directly).
//
// The paper *estimates* DELTA's multithreaded performance by piecewise
// reconstruction (see splash_estimator.hpp).  This module goes further and
// actually runs the Sec. II-E design in the simulator:
//   * the R-NUCA page classifier tags pages private/shared lazily;
//   * lines of shared pages use the fixed S-NUCA mapping (single copy,
//     coherence-safe); lines of private pages follow the owner's CBT;
//   * a page's lines are invalidated when it flips private -> shared;
//   * all threads share one process id, so inter-bank challenges between
//     them are rejected (threads of one application do not compete).
//
// This is the repository's "future work" extension: the paper leaves
// detailed multithreaded modelling of DELTA to future research (Sec. IV-C).
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/scheme.hpp"
#include "workload/splash.hpp"

namespace delta::sim {

struct MtResult {
  std::string app;
  std::string scheme;
  double roi_cycles = 0.0;        ///< Longest thread in the parallel region.
  double mean_ipc = 0.0;
  double miss_rate = 0.0;
  double mean_hops = 0.0;
  std::uint64_t private_pages = 0;
  std::uint64_t shared_pages = 0;
  std::uint64_t reclassifications = 0;
  std::uint64_t page_invalidation_lines = 0;
};

struct MtConfig {
  std::uint64_t accesses_per_thread = 60'000;
  std::uint64_t seed = 23;
};

/// Runs one SPLASH2 profile on the 16-core machine under `kind`
/// (kDelta uses the full Sec. II-E machinery; kSnuca / kPrivate are the
/// baselines of Fig. 12).
MtResult run_multithreaded(const MachineConfig& cfg, const workload::SplashProfile& p,
                           SchemeKind kind, MtConfig mtc = {});

}  // namespace delta::sim
