// Shared machinery for centrally computed schemes (ideal-central, carma):
// applying a chip-wide placement to per-bank WP units and per-core CBTs,
// with the bulk invalidations the implied remaps require.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/placement.hpp"
#include "core/cbt.hpp"
#include "core/way_partition.hpp"

namespace delta::sim {

class Chip;

/// Equal-partition initial state: one WpUnit per bank fully owned by the
/// home core, one home-mapped CBT per core.  Clears and refills `wp`/`cbts`.
void init_central_state(const Chip& chip, std::vector<core::WpUnit>& wp,
                        std::vector<core::Cbt>& cbts);

/// Applies `placement` (rows follow `active_core`): re-owns every bank's
/// ways — home app first, then guests by core id, unassigned ways to the
/// home core — then rebuilds each active core's CBT (home bank first, then
/// by mesh distance) and bulk-invalidates the chunks that moved banks.
/// Follows DELTA's enforcement semantics: a CBT is only rebuilt when the
/// core's bank *set* changed; pure way-count drift does not remap addresses.
void apply_central_placement(Chip& chip, std::uint64_t epoch,
                             const std::vector<int>& active_core,
                             const alloc::Placement& placement,
                             std::vector<core::WpUnit>& wp,
                             std::vector<core::Cbt>& cbts);

}  // namespace delta::sim
