// High-level experiment drivers: run a Table IV mix under one scheme or
// under all four, on the 16- or 64-core machine.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/chip.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sim/scheme.hpp"
#include "workload/mixes.hpp"

namespace delta::sim {

/// Runs `mix` (its app list must match cfg.cores) under `kind`.  A non-null
/// `obs` collects the run's event trace / epoch timeline (a new observer
/// run named after the scheme is begun first).  A non-null `checker` is
/// attached to the chip and invoked at every epoch boundary.
MixResult run_mix(const MachineConfig& cfg, const workload::Mix& mix, SchemeKind kind,
                  SchemeOptions opts = {}, obs::Observer* obs = nullptr,
                  EpochChecker* checker = nullptr);

/// All four schemes on the same mix with identical workload streams; with
/// an observer the runs land in one trace as four named runs.
struct SchemeComparison {
  MixResult snuca;
  MixResult private_llc;
  MixResult ideal;
  MixResult delta;
};
SchemeComparison compare_schemes(const MachineConfig& cfg, const workload::Mix& mix,
                                 obs::Observer* obs = nullptr,
                                 EpochChecker* checker = nullptr);

/// Resolves a 16-core Table IV mix to the machine size (replicating 4x for
/// 64 cores per Sec. III-B).
workload::Mix mix_for_config(const MachineConfig& cfg, const std::string& mix_name);

// ---------------------------------------------------------------------------
// Parallel experiment sweeps.
// ---------------------------------------------------------------------------

/// One independent simulation of a sweep: everything Chip construction
/// needs, held by value so jobs share no mutable state.  Observers and
/// epoch checkers are deliberately absent — they are cross-run mutable
/// sinks; observed runs use run_sweep_observed (one observer per job),
/// checkered runs go through run_mix on one thread.
struct SweepJob {
  MachineConfig cfg;
  workload::Mix mix;
  SchemeKind kind = SchemeKind::kSnuca;
  SchemeOptions opts;
};

/// Runs every job on its own Chip, fanned over `threads` worker threads
/// (0 == hardware concurrency, 1 == serial on the calling thread), and
/// returns results in job order.  Each result is written into its
/// pre-sized slot, and every simulation is seeded independently of
/// scheduling, so the returned vector is byte-identical for any thread
/// count — `threads` only changes the wall-clock.
///
/// Composition with the intra-run engine: a job whose cfg.intra_jobs is 0
/// (auto) gets the leftover thread budget, hw_threads / outer_fanout,
/// instead of a full pool per job — `--jobs 4 --intra-jobs 0` on a 16-
/// thread host gives each of 4 concurrent simulations 4 epoch workers
/// rather than 4x16 oversubscription.  Explicit intra_jobs values pass
/// through untouched.  Either way results are unchanged; determinism makes
/// the split a pure scheduling decision.
std::vector<MixResult> run_sweep(const std::vector<SweepJob>& jobs,
                                 unsigned threads = 0);

/// run_sweep with one observer slot per job (entries may be null).  Each
/// job's trace/timeline lands in its own observer; merge them back in job
/// order with obs::Observer::merge_from to get the exact trace a serial
/// observed execution would have produced.  Kept separate from run_sweep so
/// the plain sweep API stays observer-free (one mutable sink shared across
/// jobs would interleave nondeterministically).
std::vector<MixResult> run_sweep_observed(const std::vector<SweepJob>& jobs,
                                          const std::vector<obs::Observer*>& observers,
                                          unsigned threads = 0);

/// compare_schemes over many mixes at once: each (mix, scheme) pair
/// becomes one sweep job.  Returns one comparison per input mix, in input
/// order, with the same determinism guarantee as run_sweep.
std::vector<SchemeComparison> compare_schemes_sweep(
    const MachineConfig& cfg, const std::vector<workload::Mix>& mixes,
    unsigned threads = 0);

/// The general form: any scheme set (e.g. kAllSchemeKinds for the six-way
/// shootout) over many mixes as one sweep.  result[m][k] is mix `m` under
/// kinds[k]; determinism guarantee as run_sweep.
std::vector<std::vector<MixResult>> run_schemes_sweep(
    const MachineConfig& cfg, const std::vector<workload::Mix>& mixes,
    std::span<const SchemeKind> kinds, unsigned threads = 0,
    SchemeOptions opts = {});

}  // namespace delta::sim
