#include "sim/chip.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"
#include "mem/address.hpp"
#include "obs/prof/prof.hpp"
#include "sim/intra.hpp"

namespace delta::sim {

Chip::Chip(const MachineConfig& cfg, const std::vector<std::string>& apps,
           std::unique_ptr<Scheme> scheme)
    : cfg_(cfg),
      mesh_(cfg.mesh_width, cfg.mesh_height),
      memsys_(cfg.num_mcus, cfg.mesh_width, cfg.mesh_height, cfg.mcu),
      scheme_(std::move(scheme)) {
  assert(mesh_.tiles() == cfg_.cores);
  assert(static_cast<int>(apps.size()) == cfg_.cores);
  banks_.reserve(static_cast<std::size_t>(cfg_.cores));
  for (int b = 0; b < cfg_.cores; ++b)
    banks_.emplace_back(static_cast<std::uint32_t>(cfg_.sets_per_bank()),
                        cfg_.ways_per_bank);

  slots_.resize(static_cast<std::size_t>(cfg_.cores));
  std::uint64_t seed_state = cfg_.seed;
  for (int c = 0; c < cfg_.cores; ++c) {
    AppSlot& s = slots_[static_cast<std::size_t>(c)];
    s.app_name = apps[static_cast<std::size_t>(c)];
    const std::uint64_t core_seed = splitmix64(seed_state);
    if (s.app_name.empty() || s.app_name == "idle") continue;
    s.profile = &workload::spec_profile(s.app_name);
    // Disjoint 16 GB address windows per program instance.
    const Addr base = (static_cast<Addr>(c) + 1) << 34;
    s.gen = std::make_unique<workload::TraceGen>(*s.profile, base, core_seed);
    s.umon = std::make_unique<umon::Umon>(cfg_.umon);
    s.active = true;
    s.process_id = static_cast<std::uint32_t>(c) + 1;  // Multi-programmed: distinct.
    const workload::Phase& ph = s.profile->phases.front();
    s.cpi_est = ph.cpi_base + ph.apki / 1000.0 * 100.0 / ph.mlp;
  }
  interleave_batch_ =
      cfg_.interleave_batch == 0 ? kInterleaveBatch : cfg_.interleave_batch;
  epoch_targets_.resize(static_cast<std::size_t>(cfg_.cores));
  prev_hits_.resize(static_cast<std::size_t>(cfg_.cores));
  prev_misses_.resize(static_cast<std::size_t>(cfg_.cores));
  scheme_->reset(*this);
  intra_ = make_intra_engine(*this, cfg_.intra_jobs);
}

Chip::~Chip() = default;

unsigned Chip::intra_threads() const { return intra_ ? intra_->threads() : 1; }

void Chip::do_access_batch(CoreId c, std::uint64_t count, bool measuring) {
  // Profiled at batch granularity only (a per-access timer would dominate
  // the work it measures); disabled cost is one relaxed load.
  const obs::prof::ScopedSite prof_timer(obs::prof::Site::kAccessBatch);
  // Hot path: everything loop-invariant — the slot, its generator/monitor,
  // the scheme pointer, the fixed tag+data latency — is hoisted out of the
  // per-access loop, and per-access statistics accumulate in locals that
  // are folded into the slot and traffic counters once per batch.
  AppSlot& s = slots_[static_cast<std::size_t>(c)];
  workload::TraceGen* const gen = s.gen.get();
  umon::Umon* const um = s.umon.get();
  Scheme* const scheme = scheme_.get();
  const Cycles fixed_lat = cfg_.llc_tag_latency + cfg_.llc_data_latency;

  std::uint64_t hits = 0, misses = 0, remote = 0;

  // Two-stage software pipeline: the next access's block is generated (and
  // its UMON stack prefetched) while the current access still has its mesh
  // and mask arithmetic ahead, and the mapped set's SoA rows are prefetched
  // right after map() so the tag row is L1-resident by the time access()
  // compares it.  Every component call stays in the historical per-access
  // order — the generator, monitor, scheme and bank each see exactly the
  // serial sequence, so results are byte-identical; only prefetch hints
  // (side-effect-free) overlap iterations.
  BlockAddr next_block = count != 0 ? gen->next() : BlockAddr{0};
  for (std::uint64_t i = 0; i < count; ++i) {
    const BlockAddr block = next_block;
    um->access(block);

    const BankTarget t = scheme->map(*this, c, block);
    bank(t.bank).prefetch_set(t.set);
    if (i + 1 < count) {
      next_block = gen->next();
      um->prefetch(next_block);
    }
    const int hops = mesh_.hops(c, t.bank);
    Cycles lat = mesh_.round_trip(c, t.bank) + fixed_lat;
    remote += hops > 0 ? 1 : 0;

    const mem::WayMask mask = scheme->insert_mask(*this, c, t.bank);
    const CoreId evict_pref = scheme->evict_preference(*this, c, t.bank);
    const mem::AccessResult res =
        bank(t.bank).access(t.set, block, c, mask, evict_pref);
    if (res.hit) {
      ++hits;
    } else {
      if (res.way >= 0) scheme->on_insertion(*this, c, t.bank, res);
      const int mcu = memsys_.mcu_for(block);
      const int attach = memsys_.attach_tile(mcu);
      lat += mesh_.round_trip(t.bank, attach) + memsys_.mcu(mcu).request_latency();
      ++misses;
    }

    // The double accumulators stay per-access in-place additions so every
    // sum sees the same values in the same order as the historical scalar
    // loop — floating-point results must not drift under the refactor.
    s.epoch_lat_sum += static_cast<double>(lat);
    if (measuring) {
      s.lat_sum += static_cast<double>(lat);
      s.hop_sum += static_cast<double>(hops);
    }
  }

  traffic_.count(noc::MsgType::kLlcRequest, remote);
  traffic_.count(noc::MsgType::kLlcResponse, remote);
  traffic_.count(noc::MsgType::kMemRequest, misses);
  traffic_.count(noc::MsgType::kMemResponse, misses);
  s.epoch_accesses += count;
  if (measuring) {
    s.llc_hits += hits;
    s.llc_misses += misses;
  }
}

void Chip::run_one_epoch(bool measuring) {
  const obs::prof::ScopedSpan epoch_span(obs::prof::Phase::kEpoch, epoch_);
  obs::prof::ScopedSpan policy_span(obs::prof::Phase::kPolicy, epoch_);
  // Phase selection + per-core access budget for this epoch.
  for (int c = 0; c < cfg_.cores; ++c) {
    AppSlot& s = slots_[static_cast<std::size_t>(c)];
    if (!s.active) {
      epoch_targets_[static_cast<std::size_t>(c)] = 0;
      continue;
    }
    s.gen->set_epoch(epoch_);
    const workload::Phase& ph = s.gen->phase();
    // cpi_est feeds performance back into the access budget, so counts
    // diverge across schemes.  Lockstep mode pins the budget to the
    // profile's nominal CPI instead, making per-app access streams
    // scheme-identical — the property the differential oracle checks.
    const double cpi = cfg_.lockstep_accesses
                           ? ph.cpi_base + ph.apki / 1000.0 * 100.0 / ph.mlp
                           : s.cpi_est;
    const double instr = static_cast<double>(cfg_.epoch_cycles) / cpi;
    epoch_targets_[static_cast<std::size_t>(c)] =
        static_cast<std::uint64_t>(instr * ph.apki / 1000.0);
    s.epoch_accesses = 0;
    s.epoch_lat_sum = 0.0;
  }

  // Reconfiguration hook (reads last epoch's monitors), then monitor decay
  // at the inter-bank cadence so pain/gain track phase changes.
  scheme_->begin_epoch(*this, epoch_);
  if (cfg_.delta.inter_interval_epochs > 0 &&
      epoch_ % static_cast<std::uint64_t>(cfg_.delta.inter_interval_epochs) == 0) {
    for (auto& s : slots_)
      if (s.umon) s.umon->decay(0.5);
  }
  // Invariant sweep over the post-reconfiguration state (way conservation,
  // CBT coverage, residency agreement, ...) before any access runs on it.
  if (checker_ != nullptr) checker_->on_epoch(*this, epoch_);
  policy_span.stop();

  // Interleaved issue: round-robin batches until every budget is drained.
  // The intra-run engine (sim/intra.hpp) replays this exact interleaving
  // from staged per-core streams when cfg_.intra_jobs asked for threads.
  if (intra_ != nullptr) {
    intra_->run_epoch_accesses(measuring);
  } else {
    const obs::prof::ScopedSpan access_span(obs::prof::Phase::kSerialAccess,
                                            epoch_);
    bool work_left = true;
    while (work_left) {
      work_left = false;
      for (int c = 0; c < cfg_.cores; ++c) {
        AppSlot& s = slots_[static_cast<std::size_t>(c)];
        std::uint64_t& target = epoch_targets_[static_cast<std::size_t>(c)];
        if (!s.active || s.epoch_accesses >= target) continue;
        const std::uint64_t batch =
            std::min<std::uint64_t>(interleave_batch_, target - s.epoch_accesses);
        do_access_batch(c, batch, measuring);
        if (s.epoch_accesses < target) work_left = true;
      }
    }
  }

  {
    const obs::prof::ScopedSpan acct_span(obs::prof::Phase::kAccounting, epoch_);
    memsys_.end_epoch(cfg_.epoch_cycles);
    finish_epoch_accounting(measuring);
    if (measuring && obs_ != nullptr && obs_->timeline_enabled())
      sample_timeline();
  }
  ++epoch_;
}

void Chip::sample_timeline() {
  obs::TimelineSampler& tl = obs_->timeline();
  for (int c = 0; c < cfg_.cores; ++c) {
    AppSlot& s = slots_[static_cast<std::size_t>(c)];
    if (!s.active) continue;
    const std::uint64_t hits = s.llc_hits - prev_hits_[static_cast<std::size_t>(c)];
    const std::uint64_t misses =
        s.llc_misses - prev_misses_[static_cast<std::size_t>(c)];
    prev_hits_[static_cast<std::size_t>(c)] = s.llc_hits;
    prev_misses_[static_cast<std::size_t>(c)] = s.llc_misses;
    const double avg_lat =
        s.epoch_accesses > 0
            ? s.epoch_lat_sum / static_cast<double>(s.epoch_accesses)
            : 0.0;
    tl.add_core(epoch_, c, s.app_name, s.cpi_est > 0.0 ? 1.0 / s.cpi_est : 0.0,
                scheme_->allocated_ways(*this, c), hits + misses, misses, avg_lat);
  }
  for (int m = 0; m < memsys_.num_mcus(); ++m) {
    const noc::MemoryController& mc = memsys_.mcu(m);
    tl.add_mcu(epoch_, m, mc.queue_delay(), mc.utilization());
  }
  tl.add_chip(epoch_, traffic_.control_messages() - prev_traffic_.control_messages(),
              traffic_.demand_messages() - prev_traffic_.demand_messages(),
              traffic_.invalidation_messages() - prev_traffic_.invalidation_messages(),
              invalidated_lines_ - prev_invalidated_lines_);
  prev_traffic_ = traffic_;
  prev_invalidated_lines_ = invalidated_lines_;
}

void Chip::finish_epoch_accounting(bool measuring) {
  for (int c = 0; c < cfg_.cores; ++c) {
    AppSlot& s = slots_[static_cast<std::size_t>(c)];
    if (!s.active) continue;
    const workload::Phase& ph = s.gen->phase();
    const double avg_lat =
        s.epoch_accesses > 0
            ? s.epoch_lat_sum / static_cast<double>(s.epoch_accesses)
            : 0.0;
    const double cpi = ph.cpi_base + ph.apki / 1000.0 * avg_lat / ph.mlp;
    s.cpi_est = cpi;
    // Performance-counter MLP estimate: total memory latency vs the stall
    // cycles the core actually paid this epoch (Little's law).
    s.mlp_estimator.observe(s.epoch_accesses, s.epoch_lat_sum,
                            s.epoch_lat_sum / ph.mlp);
    if (measuring) {
      s.instructions += static_cast<double>(cfg_.epoch_cycles) / cpi;
      s.cycles += cfg_.epoch_cycles;
      s.ways_sum += static_cast<double>(scheme_->allocated_ways(*this, c));
      ++s.ways_samples;
    }
  }
}

void Chip::run_epochs(int n, bool measuring) {
  for (int i = 0; i < n; ++i) run_one_epoch(measuring);
}

std::uint64_t Chip::invalidate_core_chunks(CoreId core, BankId old_bank,
                                           const std::vector<int>& chunks) {
  if (chunks.empty()) return 0;
  bool in_set[mem::kNumChunks] = {};
  for (int c : chunks) in_set[static_cast<std::size_t>(c)] = true;
  const int sets_log2 = cfg_.sets_log2;
  const bool reverse = cfg_.delta.reverse_chunk_bits;
  const std::uint64_t n = bank(old_bank).invalidate_if(
      [&](BlockAddr block, CoreId owner) {
        return owner == core &&
               in_set[static_cast<std::size_t>(mem::chunk_of(block, sets_log2, reverse))];
      });
  traffic_.count(noc::MsgType::kInvalidation);
  invalidated_lines_ += n;
  if (obs::EventRecorder* rec = event_sink())
    rec->record(obs::EventKind::kBulkInvalidation, epoch_, core, old_bank,
                /*other=*/-1, n, static_cast<double>(chunks.size()));
  return n;
}

MixResult Chip::run(const std::string& mix_name) {
  run_epochs(cfg_.warmup_epochs, /*measuring=*/false);
  traffic_.reset();
  invalidated_lines_ = 0;
  prev_traffic_.reset();
  prev_invalidated_lines_ = 0;
  run_epochs(cfg_.measure_epochs, /*measuring=*/true);

  MixResult mr;
  mr.mix = mix_name;
  mr.scheme = std::string(scheme_->name());
  mr.traffic = traffic_;
  mr.control = control_breakdown(traffic_);
  mr.invalidated_lines = invalidated_lines_;
  mr.measured_epochs = static_cast<std::uint64_t>(cfg_.measure_epochs);
  for (int c = 0; c < cfg_.cores; ++c) {
    const AppSlot& s = slots_[static_cast<std::size_t>(c)];
    AppResult a;
    a.app = s.app_name;
    a.core = c;
    if (s.active && s.cycles > 0) {
      a.instructions = static_cast<std::uint64_t>(s.instructions);
      a.ipc = s.instructions / static_cast<double>(s.cycles);
      a.cpi = a.ipc > 0.0 ? 1.0 / a.ipc : 0.0;
      a.llc_accesses = s.llc_hits + s.llc_misses;
      a.llc_misses = s.llc_misses;
      a.miss_rate = a.llc_accesses
                        ? static_cast<double>(s.llc_misses) /
                              static_cast<double>(a.llc_accesses)
                        : 0.0;
      a.mpki = s.instructions > 0.0
                   ? static_cast<double>(s.llc_misses) / (s.instructions / 1000.0)
                   : 0.0;
      a.avg_latency =
          a.llc_accesses ? s.lat_sum / static_cast<double>(a.llc_accesses) : 0.0;
      a.avg_hops =
          a.llc_accesses ? s.hop_sum / static_cast<double>(a.llc_accesses) : 0.0;
      a.avg_ways = s.ways_samples
                       ? s.ways_sum / static_cast<double>(s.ways_samples)
                       : 0.0;
    }
    mr.apps.push_back(std::move(a));
  }
  mr.geomean_ipc = workload_geomean_ipc(mr);
  return mr;
}

}  // namespace delta::sim
