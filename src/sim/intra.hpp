// Intra-run parallel epoch engine: shards one Chip's epoch across host
// threads while staying byte-identical to the serial interleaved loop.
//
// The serial engine (Chip::run_one_epoch) issues accesses in round-robin
// batches of Chip::kInterleaveBatch per core.  This engine reproduces the
// exact same computation in three data-parallel phases per epoch:
//
//   Phase 1 — cores in parallel.  Each core draws its full access stream
//     (RNG, UMON shadow-tag update, scheme->map() bank routing) into a
//     pre-sized per-core staging buffer and per-(core, bank) index lists.
//     No shared state is written: TraceGen/Umon are per-core, and map() is
//     const over epoch-constant routing state (CBTs / S-NUCA hashing are
//     only rewired inside begin_epoch, which runs before this phase).
//
//   Phase 2 — banks in parallel.  Each bank worker merges its staged
//     per-core index lists back into the canonical serial interleaving
//     order — ascending (round, core, index) where round = index /
//     kInterleaveBatch — and applies them against its own SetAssocCache,
//     enforcer slice, and insert-mask state.  insert_mask() /
//     evict_preference() / on_insertion() touch only bank-local or
//     epoch-constant scheme state (the contract documented in scheme.hpp),
//     so distinct banks never race.  Miss latency uses the MCU's
//     epoch-constant current_request_latency(); the per-access latency is
//     written back into the staging buffer and integer tallies (hits,
//     misses, MCU request counts) accumulate per bank.
//
//   Phase 3 — cores in parallel.  Each core folds its latencies into the
//     slot's double accumulators walking its own stream in index order —
//     the exact order the serial loop added them, because a core's
//     accesses reach its accumulators in stream order regardless of how
//     the serial loop interleaved cores.  All latency inputs are integral
//     cycles, so the sums are bit-equal, not merely close.
//
// Between phases the caller folds the per-bank integer tallies in fixed
// bank order (traffic counters, per-core hit/miss totals, bulk MCU request
// counts) — integer additions, hence order-insensitive anyway.
//
// Policy steps (begin_epoch reconfiguration, UMON decay, the invariant
// checker) stay on the serial epoch barrier in Chip::run_one_epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/types.hpp"
#include "obs/prof/prof.hpp"

namespace delta::sim {

class Chip;

class IntraEngine {
 public:
  /// `threads` is the resolved worker count (>= 2; Chip keeps the serial
  /// loop for 1).  The pool threads persist for the Chip's lifetime and
  /// park on a barrier between epochs.
  IntraEngine(Chip& chip, unsigned threads);

  /// Replaces the serial interleaved-issue loop for one epoch.  Callable
  /// only from the thread that owns the Chip; requires begin_epoch /
  /// monitor decay / checker hooks to have already run.
  void run_epoch_accesses(bool measuring);

  unsigned threads() const { return pool_.parties(); }

 private:
  /// One staged access: routing decided in phase 1, latency filled in by
  /// phase 2, folded into the slot's accumulators in phase 3.
  struct Staged {
    BlockAddr block = 0;
    std::uint32_t set = 0;
    std::uint32_t lat = 0;
    std::uint16_t bank = 0;
  };

  /// Per-core staging, reused across epochs.
  struct CoreStage {
    std::vector<Staged> acc;                        ///< Stream in draw order.
    std::vector<std::vector<std::uint32_t>> to_bank;  ///< Indices per bank.
  };

  /// Per-bank integer tallies, reused across epochs.
  struct BankTally {
    std::vector<std::uint64_t> hits;      ///< Per core.
    std::vector<std::uint64_t> misses;    ///< Per core.
    std::vector<std::uint64_t> mcu_reqs;  ///< Per MCU.
    std::vector<std::size_t> cursor;      ///< Merge scratch, per core.
  };

  void stage_core(CoreId c);
  /// `ms` is non-null only when kFull profiling samples the cursor-merge
  /// scan (1 round in 8); the clock reads live in obs/prof.
  void apply_bank(BankId b, obs::prof::EngineProfile::MergeScratch* ms);
  void reduce_core(CoreId c, bool measuring);
  /// Feeds per-(core,bank) staging-list occupancy into the profile (kFull).
  void record_buffer_occupancy();

  Chip& chip_;
  WorkerPool pool_;
  std::vector<CoreStage> stages_;           ///< One per core.
  std::vector<BankTally> tallies_;          ///< One per bank.
  std::vector<std::uint64_t> remote_;       ///< Per core: hop > 0 accesses.
  /// Phase/barrier spans + derived per-epoch metrics; owns no sim state and
  /// never feeds back into the computation (determinism contract).
  obs::prof::EngineProfile profile_;
};

std::unique_ptr<IntraEngine> make_intra_engine(Chip& chip, int intra_jobs);

}  // namespace delta::sim
