// Intra-run parallel epoch engine: shards one Chip's epoch across host
// threads while staying byte-identical to the serial interleaved loop.
//
// The serial engine (Chip::run_one_epoch) issues accesses in round-robin
// batches of Chip::interleave_batch() per core.  Earlier revisions of this
// engine reproduced that computation in three lockstep phases (stage cores /
// apply banks / reduce cores), which cost six barrier crossings per epoch
// and left half the section time parked on the CyclicBarrier.  The current
// engine fuses all three phases into ONE worker-pool section per epoch — two
// barrier crossings total — scheduled by deterministic work-stealing:
//
//   Stage tasks — one per core.  Each core draws its full access stream
//     (RNG, UMON shadow-tag update, scheme->map() bank routing) into a
//     pre-sized per-core buffer plus per-(core, bank, slice) index
//     segments, where a slice is a fixed run of interleave rounds (the
//     apply-task granularity, MachineConfig::intra_apply_rounds).  A task
//     covers a whole core because the stream is one RNG chain; workers
//     claim their static home range first, then steal unclaimed cores in
//     ascending core order.  After each slice's segment is complete the
//     stager publishes a per-core watermark (release store), so appliers
//     can chase right behind it — segments already published are never
//     written again, which is what makes the overlap data-race-free.
//
//   Apply tasks — one per (bank, slice).  The slices of one bank form a
//     sequential chain guarded by a SeqClaim word (common/parallel.hpp):
//     any worker may claim the next slice of any bank once every core's
//     watermark covers it, so bank work spreads across whichever workers
//     are free — the deterministic work-stealing that removes the static
//     partition's imbalance.  Within a slice the merge walks the canonical
//     serial order — ascending (round, core, index) with round = index /
//     interleave_batch() — so each bank sees the exact serial access
//     sequence no matter which workers ran its slices.  insert_mask() /
//     evict_preference() / on_insertion() touch only bank-local or
//     epoch-constant scheme state (scheme.hpp contract); the slice chain
//     orders all writes to one bank.  Miss latency uses the MCU's
//     epoch-constant current_request_latency(); per-access latencies are
//     written back into the staging buffer and integer tallies accumulate
//     per bank.
//
//   Reduce tasks — one per core, claimed like stage tasks, runnable once
//     every bank finished its last slice.  Each core folds its latencies
//     into the slot's double accumulators walking its own stream in index
//     order — the exact order the serial loop added them — so the FP sums
//     are bit-equal, not merely close.
//
// Work-stealing never changes results: *which* worker runs a task is the
// only degree of freedom, and every task's effect is a function of the
// dependency chain (per-core stream order, per-bank slice order), not of
// the thread that executes it.
//
// After the section the caller folds the per-bank integer tallies serially
// in fixed bank order (traffic counters, per-core hit/miss totals, bulk MCU
// request counts) — integer additions, hence order-insensitive anyway.
//
// Policy steps (begin_epoch reconfiguration, UMON decay, the invariant
// checker) stay on the serial epoch boundary in Chip::run_one_epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/types.hpp"
#include "obs/prof/prof.hpp"

namespace delta::sim {

class Chip;

class IntraEngine {
 public:
  /// `threads` is the resolved worker count (>= 2; Chip keeps the serial
  /// loop for 1).  The pool threads persist for the Chip's lifetime and
  /// park on a barrier between epochs; MachineConfig::intra_pin opts into
  /// CPU-affinity pinning, and the constructor runs a first-touch warm pass
  /// so per-worker buffers are faulted in by (roughly) the workers that
  /// will use them.
  IntraEngine(Chip& chip, unsigned threads);

  /// Replaces the serial interleaved-issue loop for one epoch.  Callable
  /// only from the thread that owns the Chip; requires begin_epoch /
  /// monitor decay / checker hooks to have already run.
  void run_epoch_accesses(bool measuring);

  unsigned threads() const { return pool_.parties(); }

 private:
  /// One staged access: routing decided by the stage task, latency filled
  /// in by an apply task, folded into the slot's accumulators by a reduce
  /// task.
  struct Staged {
    BlockAddr block = 0;
    std::uint32_t set = 0;
    std::uint32_t lat = 0;
    std::uint16_t bank = 0;
  };

  /// Per-core staging, reused across epochs.  to_bank is segmented per
  /// slice — to_bank[bank][slice] holds the indices staged for that bank
  /// during that slice — so a published segment is immutable while later
  /// slices are still being staged (appliers read only below the
  /// watermark).
  struct CoreStage {
    std::vector<Staged> acc;  ///< Stream in draw order.
    std::vector<std::vector<std::vector<std::uint32_t>>> to_bank;
  };

  /// Per-bank integer tallies, reused across epochs.  Written only by the
  /// bank's apply-slice chain (SeqClaim-ordered), read by the owner after
  /// the section.
  struct BankTally {
    std::vector<std::uint64_t> hits;      ///< Per core.
    std::vector<std::uint64_t> misses;    ///< Per core.
    std::vector<std::uint64_t> mcu_reqs;  ///< Per MCU.
    std::vector<std::size_t> cursor;      ///< Merge scratch, per core.
  };

  /// Per-worker scheduler accounting, folded into the engine-health
  /// counters by the owner after the section.
  struct WorkerStats {
    std::uint64_t tasks = 0;
    std::uint64_t stolen = 0;
    std::uint64_t ranges = 0;
    std::uint64_t overlapped = 0;
  };

  // Task bodies (run by whichever worker claimed the task).
  void stage_core(CoreId c);
  /// `ms` is non-null only when kFull profiling samples the cursor-merge
  /// scan (1 round in 8); the clock reads live in obs/prof.
  void apply_bank_slice(BankId b, std::uint32_t slice,
                        obs::prof::EngineProfile::MergeScratch* ms);
  void reduce_core(CoreId c, bool measuring);
  /// Feeds per-(core,bank) staging-list occupancy into the profile (kFull).
  void record_buffer_occupancy();

  // Scheduler (one call per worker per phase, inside the fused section).
  void worker_run(unsigned w, bool measuring);
  void run_stage_tasks(unsigned w);
  void run_apply_tasks(unsigned w);
  void run_reduce_tasks(unsigned w, bool measuring);
  /// Lowest per-core staging watermark, in slices (acquire-loads every
  /// core's own counter so the claimed slice's segments are visible to the
  /// calling thread — a cached cross-thread minimum would not carry the
  /// happens-before edges).
  std::uint32_t staged_min() const;

  /// Owner-side per-epoch reset: slice geometry, claim words, watermarks.
  void prepare_epoch();
  /// Rethrows the first captured task exception in worker-index order.
  void rethrow_task_errors();

  Chip& chip_;
  WorkerPool pool_;
  std::vector<CoreStage> stages_;   ///< One per core.
  std::vector<BankTally> tallies_;  ///< One per bank.
  std::vector<std::uint64_t> remote_;  ///< Per core: hop > 0 accesses.
  std::vector<WorkerStats> wstats_;    ///< Per worker, reset per epoch.
  /// Slot w: written only by worker w inside the section, read by the
  /// owner after the done barrier (same ordering argument as WorkerPool).
  std::vector<std::exception_ptr> task_errors_;

  // Epoch-scoped scheduler state (owner resets in prepare_epoch; the pool's
  // start barrier publishes the reset to workers).
  std::uint32_t num_slices_ = 1;       ///< Apply tasks per bank this epoch.
  std::uint64_t slice_accesses_ = 1;   ///< Accesses per slice per core.
  std::unique_ptr<std::atomic<std::uint32_t>[]> staged_slices_;  ///< Per core.
  std::unique_ptr<std::atomic<std::uint8_t>[]> stage_claim_;     ///< Per core.
  std::unique_ptr<std::atomic<std::uint8_t>[]> reduce_claim_;    ///< Per core.
  std::unique_ptr<SeqClaim[]> apply_claim_;                      ///< Per bank.
  std::atomic<std::uint32_t> stage_done_{0};  ///< Cores fully staged.
  std::atomic<std::uint32_t> banks_done_{0};  ///< Banks fully applied.
  std::atomic<bool> failed_{false};           ///< A task threw; drain spins.

  /// Phase/barrier spans + derived per-epoch metrics; owns no sim state and
  /// never feeds back into the computation (determinism contract).
  obs::prof::EngineProfile profile_;
};

std::unique_ptr<IntraEngine> make_intra_engine(Chip& chip, int intra_jobs);

}  // namespace delta::sim
