// The four cache organisations of the paper's evaluation (Sec. III-A).
#include "sim/scheme.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "alloc/peekahead.hpp"
#include "alloc/placement.hpp"
#include "core/controller.hpp"
#include "mem/address.hpp"
#include "sim/chip.hpp"
#include "sim/market_schemes.hpp"
#include "sim/scheme_common.hpp"

namespace delta::sim {
namespace {

std::uint32_t local_set(const Chip& chip, BlockAddr block) {
  return mem::set_index(block, chip.config().sets_log2);
}

// ---------------------------------------------------------------------------
// Unpartitioned S-NUCA: line-interleaved static mapping, no insertion limits.
// ---------------------------------------------------------------------------
class SnucaScheme final : public Scheme {
 public:
  std::string_view name() const override { return "snuca"; }

  void reset(Chip& chip) override {
    // Both Table II machines have power-of-two bank counts, so the
    // per-access interleaving divides reduce to shifts and masks.
    const auto n = static_cast<std::uint64_t>(chip.cores());
    pow2_banks_ = (n & (n - 1)) == 0;
    bank_mask_ = n - 1;
    bank_shift_ = std::bit_width(n) - 1;
    set_mask_ = (std::uint32_t{1} << chip.config().sets_log2) - 1;
  }

  BankTarget map(const Chip& chip, CoreId, BlockAddr block) const override {
    if (pow2_banks_) {
      return BankTarget{static_cast<BankId>(block & bank_mask_),
                        static_cast<std::uint32_t>(block >> bank_shift_) & set_mask_};
    }
    const int n = chip.cores();
    return BankTarget{mem::snuca_bank(block, n),
                      mem::snuca_set_index(block, n, chip.config().sets_log2)};
  }

  mem::WayMask insert_mask(const Chip& chip, CoreId, BankId) const override {
    return mem::full_mask(chip.config().ways_per_bank);
  }

  int allocated_ways(const Chip& chip, CoreId) const override {
    // Nominal equal share of the unpartitioned cache.
    return chip.config().ways_per_bank;
  }

 private:
  std::uint64_t bank_mask_ = 0;
  std::uint32_t set_mask_ = 0;
  int bank_shift_ = 0;
  bool pow2_banks_ = false;
};

// ---------------------------------------------------------------------------
// Private LLC: equal static partitioning, each core uses only its home bank.
// ---------------------------------------------------------------------------
class PrivateScheme final : public Scheme {
 public:
  std::string_view name() const override { return "private"; }

  BankTarget map(const Chip& chip, CoreId core, BlockAddr block) const override {
    return BankTarget{static_cast<BankId>(core), local_set(chip, block)};
  }

  mem::WayMask insert_mask(const Chip& chip, CoreId, BankId) const override {
    return mem::full_mask(chip.config().ways_per_bank);
  }

  int allocated_ways(const Chip& chip, CoreId) const override {
    return chip.config().ways_per_bank;
  }
};

// ---------------------------------------------------------------------------
// DELTA: the distributed controller drives CBT + WP enforcement.
// ---------------------------------------------------------------------------
class DeltaScheme final : public Scheme {
 public:
  std::string_view name() const override { return "delta"; }

  void reset(Chip& chip) override {
    ctrl_ = std::make_unique<core::DeltaController>(
        chip.mesh(), chip.config().delta, chip.config().ways_per_bank,
        chip.config().sets_log2);
    occupancy_mode_ =
        chip.config().delta.intra_enforcement == core::IntraEnforcement::kOccupancy;
    enforcers_.clear();
    if (occupancy_mode_) {
      const auto cap = static_cast<std::uint64_t>(chip.config().sets_per_bank()) *
                       chip.config().ways_per_bank;
      for (int b = 0; b < chip.cores(); ++b)
        enforcers_.emplace_back(chip.cores(), cap);
      sync_enforcers(chip);
    }
  }

  void begin_epoch(Chip& chip, std::uint64_t epoch) override {
    // Re-wire the trace sink every epoch: observers can be attached between
    // construction and run(), and the pointer assignment is free.
    ctrl_->set_recorder(chip.event_sink());
    std::vector<core::TileInput> inputs(static_cast<std::size_t>(chip.cores()));
    for (int c = 0; c < chip.cores(); ++c) {
      AppSlot& s = chip.slot(c);
      core::TileInput& in = inputs[static_cast<std::size_t>(c)];
      in.umon = s.umon.get();
      in.active = s.active;
      in.process_id = s.process_id;
      in.mlp = s.policy_mlp(chip.config().measured_mlp);
    }
    const core::TickResult res = ctrl_->tick(epoch, inputs, &chip.traffic());

    // Apply remaps: group moved chunks by (core, previous bank) and run the
    // bulk-invalidation unit once per group.
    std::map<std::pair<CoreId, BankId>, std::vector<int>> groups;
    for (const core::RemapChunk& rc : res.remaps)
      groups[{rc.core, rc.old_bank}].push_back(rc.chunk);
    for (const auto& [key, chunks] : groups)
      chip.invalidate_core_chunks(key.first, key.second, chunks);

    // Occupancy enforcement: refresh targets from the WP units and resync
    // occupancy counters whenever invalidations may have drifted them.
    if (occupancy_mode_ &&
        (epoch % static_cast<std::uint64_t>(
                     chip.config().delta.inter_interval_epochs) == 0 ||
         !groups.empty())) {
      sync_enforcers(chip);
    }
  }

  BankTarget map(const Chip& chip, CoreId core, BlockAddr block) const override {
    return BankTarget{ctrl_->bank_for(core, block), local_set(chip, block)};
  }

  mem::WayMask insert_mask(const Chip& chip, CoreId core, BankId bank) const override {
    if (occupancy_mode_) {
      // Replacement-based enforcement: insertion is unrestricted (a core
      // only reaches banks its CBT maps anyway); the occupancy-steered
      // victim choice does the partitioning.
      (void)core;
      (void)bank;
      return mem::full_mask(chip.config().ways_per_bank);
    }
    return ctrl_->insert_mask(core, bank);
  }

  CoreId evict_preference(const Chip&, CoreId, BankId bank) const override {
    if (!occupancy_mode_) return kInvalidCore;
    return enforcers_[static_cast<std::size_t>(bank)].preferred_victim();
  }

  void on_insertion(Chip&, CoreId owner, BankId bank,
                    const mem::AccessResult& res) override {
    if (!occupancy_mode_) return;
    // Bank-owned state: on_insertion is only ever invoked by the worker
    // that owns `bank` this phase, so the mutable handle is race-free.
    auto& e = enforcers_[static_cast<std::size_t>(bank)];  // delta-lint: allow(phase-effect)
    e.on_insert(owner);
    if (res.evicted && res.victim_owner != kInvalidCore) e.on_evict(res.victim_owner);
  }

  int allocated_ways(const Chip&, CoreId core) const override {
    return ctrl_->total_ways(core);
  }

  const core::WpUnit* wp_unit(BankId bank) const override {
    return ctrl_ != nullptr ? &ctrl_->wp(bank) : nullptr;
  }

  const core::Cbt* cbt_of(CoreId core) const override {
    return ctrl_ != nullptr ? &ctrl_->cbt(core) : nullptr;
  }

  std::int64_t tracked_occupancy(BankId bank, CoreId core) const override {
    if (!occupancy_mode_) return -1;
    return static_cast<std::int64_t>(
        enforcers_[static_cast<std::size_t>(bank)].occupancy(core));
  }

  bool debug_drop_way(BankId bank, int way) override {
    if (ctrl_ == nullptr) return false;
    ctrl_->debug_set_way_owner(bank, way, kInvalidCore);
    return true;
  }

  const core::DeltaController& controller() const { return *ctrl_; }

 private:
  void sync_enforcers(Chip& chip) {
    for (int b = 0; b < chip.cores(); ++b) {
      auto& e = enforcers_[static_cast<std::size_t>(b)];
      for (int c = 0; c < chip.cores(); ++c) {
        e.set_target_ways(c, ctrl_->wp(b).ways_of(c), chip.config().ways_per_bank);
        e.set_occupancy(c, chip.bank(b).lines_owned_by(c));
      }
    }
  }

  // The controller is rebuilt only in reset()/begin_epoch() (on the epoch
  // barrier) and is read-only while workers run the during-epoch hooks.
  std::unique_ptr<core::DeltaController> ctrl_;  // delta-phase: epoch-constant
  bool occupancy_mode_ = false;
  std::vector<core::OccupancyEnforcer> enforcers_;
};

// ---------------------------------------------------------------------------
// Ideal centralized: zero-overhead Lookahead allocations (computed with the
// allocation-equivalent Peekahead) + locality-aware placement, enforced with
// DELTA's own CBT/WP mechanism (Sec. III-A).  Invalidation costs of
// remapping are modelled in full; computation/collection time is free.
// ---------------------------------------------------------------------------
class IdealCentralScheme final : public Scheme {
 public:
  explicit IdealCentralScheme(SchemeOptions opts) : opts_(opts) {}

  std::string_view name() const override { return "ideal-central"; }

  void reset(Chip& chip) override { init_central_state(chip, wp_, cbts_); }

  void begin_epoch(Chip& chip, std::uint64_t epoch) override {
    if (opts_.central_interval_epochs <= 0 ||
        epoch % static_cast<std::uint64_t>(opts_.central_interval_epochs) != 0)
      return;
    reconfigure(chip, epoch);
  }

  BankTarget map(const Chip& chip, CoreId core, BlockAddr block) const override {
    return BankTarget{
        cbts_[static_cast<std::size_t>(core)].lookup(block, chip.config().sets_log2),
        local_set(chip, block)};
  }

  mem::WayMask insert_mask(const Chip&, CoreId core, BankId bank) const override {
    return wp_[static_cast<std::size_t>(bank)].mask_of(core);
  }

  int allocated_ways(const Chip&, CoreId core) const override {
    int total = 0;
    for (const auto& w : wp_) total += w.ways_of(core);
    return total;
  }

  const core::WpUnit* wp_unit(BankId bank) const override {
    return bank < static_cast<BankId>(wp_.size())
               ? &wp_[static_cast<std::size_t>(bank)]
               : nullptr;
  }

  const core::Cbt* cbt_of(CoreId core) const override {
    return core < static_cast<CoreId>(cbts_.size())
               ? &cbts_[static_cast<std::size_t>(core)]
               : nullptr;
  }

  bool debug_drop_way(BankId bank, int way) override {
    if (bank >= static_cast<BankId>(wp_.size())) return false;
    wp_[static_cast<std::size_t>(bank)].set_owner(way, kInvalidCore);
    return true;
  }

 private:
  void reconfigure(Chip& chip, std::uint64_t epoch) {
    const int n = chip.cores();
    // Collect fine-grained miss curves from all active cores (the
    // centralized hub sees every UMON: 2N messages).
    std::vector<int> active_core;
    alloc::AllocRequest req;
    for (int c = 0; c < n; ++c) {
      AppSlot& s = chip.slot(c);
      if (!s.active) continue;
      active_core.push_back(c);
      req.curves.push_back(s.umon->miss_curve());
    }
    chip.traffic().count(noc::MsgType::kCentralCollect, static_cast<std::uint64_t>(n));
    chip.traffic().count(noc::MsgType::kCentralBroadcast, static_cast<std::uint64_t>(n));
    if (obs::EventRecorder* rec = chip.event_sink())
      rec->record(obs::EventKind::kCentralReconfig, epoch, /*core=*/-1,
                  /*bank=*/-1, /*other=*/-1, active_core.size());
    if (active_core.empty()) return;

    req.total_ways = n * chip.config().ways_per_bank;
    req.min_ways = chip.config().delta.min_ways;
    req.max_ways = chip.config().delta.max_ways_per_app;
    const alloc::AllocResult allocation = alloc::peekahead(req);

    alloc::PlacementRequest preq;
    preq.mesh = &chip.mesh();
    preq.ways = allocation.ways;
    preq.home_tile = active_core;
    preq.ways_per_bank = chip.config().ways_per_bank;
    preq.reserved_home_ways = chip.config().delta.min_ways;
    const alloc::Placement placement = alloc::place_allocations(preq);

    apply_central_placement(chip, epoch, active_core, placement, wp_, cbts_);
  }

  SchemeOptions opts_;
  std::vector<core::WpUnit> wp_;
  std::vector<core::Cbt> cbts_;
};

}  // namespace

std::string_view to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::kSnuca: return "snuca";
    case SchemeKind::kPrivate: return "private";
    case SchemeKind::kIdealCentralized: return "ideal-central";
    case SchemeKind::kDelta: return "delta";
    case SchemeKind::kCarma: return "carma";
    case SchemeKind::kLfoc: return "lfoc";
  }
  return "?";
}

std::unique_ptr<Scheme> make_scheme(SchemeKind kind, SchemeOptions opts) {
  switch (kind) {
    case SchemeKind::kSnuca: return std::make_unique<SnucaScheme>();
    case SchemeKind::kPrivate: return std::make_unique<PrivateScheme>();
    case SchemeKind::kIdealCentralized:
      return std::make_unique<IdealCentralScheme>(opts);
    case SchemeKind::kDelta: return std::make_unique<DeltaScheme>();
    case SchemeKind::kCarma: return make_carma_scheme(opts);
    case SchemeKind::kLfoc: return make_lfoc_scheme(opts);
  }
  return nullptr;
}

}  // namespace delta::sim
