// Factories for the literature-comparison schemes (internal to src/sim):
// the CARMA sealed-bid way auction and the LFOC fairness-clustering policy.
// Dispatched from make_scheme() in schemes.cpp.
#pragma once

#include <memory>

#include "sim/scheme.hpp"

namespace delta::sim {

std::unique_ptr<Scheme> make_carma_scheme(SchemeOptions opts);
std::unique_ptr<Scheme> make_lfoc_scheme(SchemeOptions opts);

}  // namespace delta::sim
