// Result records and the paper's metrics (Sec. III-D): per-app IPC,
// workload geometric-mean IPC, ANTT and STP (Eyerman & Eeckhout).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/traffic.hpp"

namespace delta::sim {

struct AppResult {
  std::string app;
  int core = 0;
  double ipc = 0.0;
  double cpi = 0.0;
  double mpki = 0.0;          ///< LLC misses per kilo-instruction.
  double miss_rate = 0.0;     ///< LLC miss ratio.
  double avg_latency = 0.0;   ///< Mean LLC-access latency (cycles).
  double avg_hops = 0.0;      ///< Mean one-way hops to the LLC bank used.
  double avg_ways = 0.0;      ///< Mean allocated ways (epoch-sampled).
  std::uint64_t instructions = 0;
  std::uint64_t llc_accesses = 0;
  std::uint64_t llc_misses = 0;
};

/// Control-plane message totals split by purpose (Sec. IV-E2), so per-scheme
/// overhead reports can attribute traffic instead of quoting one opaque sum.
struct ControlBreakdown {
  std::uint64_t challenge = 0;     ///< Challenges + responses.
  std::uint64_t feedback = 0;      ///< Intra-bank allocation reports.
  std::uint64_t invalidation = 0;  ///< Bulk-invalidation sweep commands.
  std::uint64_t handover = 0;      ///< Idle-bank handover notifications.
  std::uint64_t central = 0;       ///< Centralized collect + broadcast.
  std::uint64_t market = 0;        ///< CARMA auction bids + grants.

  std::uint64_t total() const {
    return challenge + feedback + invalidation + handover + central + market;
  }
};

/// Extracts the control-plane breakdown from per-type traffic counters.
ControlBreakdown control_breakdown(const noc::TrafficStats& t);

struct MixResult {
  std::string mix;
  std::string scheme;
  std::vector<AppResult> apps;
  double geomean_ipc = 0.0;
  noc::TrafficStats traffic;
  ControlBreakdown control;
  std::uint64_t invalidated_lines = 0;
  std::uint64_t measured_epochs = 0;

  const AppResult& app_on_core(int core) const { return apps.at(static_cast<std::size_t>(core)); }
};

/// Workload performance = geometric mean of app IPCs (Sec. III-D).
double workload_geomean_ipc(const MixResult& r);

/// ANTT = (1/N) sum CPI_i / CPI_i,private — lower is fairer.
double antt(const MixResult& r, const MixResult& private_ref);

/// STP = sum CPI_i,private / CPI_i — higher is more throughput.
double stp(const MixResult& r, const MixResult& private_ref);

/// Per-workload speedup of `r` over `baseline` (ratio of geomean IPCs).
double speedup(const MixResult& r, const MixResult& baseline);

}  // namespace delta::sim
