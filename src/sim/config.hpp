// Machine configuration (paper Table II) for the 16- and 64-core tiled CMPs.
#pragma once

#include <string>

#include "common/types.hpp"
#include "core/params.hpp"
#include "noc/mcu.hpp"
#include "umon/umon.hpp"

namespace delta::sim {

struct MachineConfig {
  // Topology.
  int cores = 16;
  int mesh_width = 4;
  int mesh_height = 4;
  int num_mcus = 4;

  // LLC bank: 512 KB, 16-way, 64 B lines -> 512 sets (9 index bits).
  int ways_per_bank = 16;
  int sets_log2 = 9;
  Cycles llc_tag_latency = 2;
  Cycles llc_data_latency = 9;

  // Timing: 4 GHz core clock; one epoch = i_intra = 0.1 ms = 400 K cycles.
  Cycles epoch_cycles = 400'000;

  // Simulation length.
  int warmup_epochs = 60;
  int measure_epochs = 300;

  // Policy parameters.
  core::DeltaParams delta{};
  umon::UmonConfig umon{};
  noc::McuConfig mcu{};

  std::uint64_t seed = 0xDE17A;

  /// Worker threads for the intra-run epoch engine (sim/intra.hpp): 1 runs
  /// the classic serial loop, N > 1 shards each epoch over N threads, 0
  /// means auto (hardware threads standalone; the leftover thread budget
  /// when nested under a sweep — see runner.hpp).  Results are
  /// byte-identical for every value; this knob trades wall-clock only and
  /// therefore never appears in reports or JSON output.
  int intra_jobs = 1;

  /// Pin intra-engine workers (and the driving thread) to CPUs via
  /// common/affinity.hpp — opt-in because it pins the caller too.  Pure
  /// placement hint with a no-op fallback on unsupported platforms; results
  /// never depend on it.
  bool intra_pin = false;

  /// Rounds of the interleaved issue order covered by one intra-engine
  /// apply task (the (bank, round-range) work-stealing granularity).  0 =
  /// auto-size from the epoch's round count and worker count.  Results are
  /// byte-identical for every value; this knob trades wall-clock only.
  int intra_apply_rounds = 0;

  /// Per-core batch size of the interleaved issue order.  0 = the compile
  /// time default Chip::kInterleaveBatch (16, overridable with
  /// -DDELTA_INTERLEAVE_BATCH=N).  Unlike the knobs above this one IS part
  /// of the determinism contract: changing it changes the access
  /// interleaving and therefore the results — but serial and intra-engine
  /// runs agree byte-for-byte at any value.
  std::uint32_t interleave_batch = 0;

  /// Feed DELTA's pain/gain with the Little's-law MLP estimator
  /// (umon/mlp.hpp, "performance counters") instead of the profile's
  /// ground-truth MLP.  Off by default to keep runs comparable.
  bool measured_mlp = false;

  /// Pin each epoch's per-core access budget to the profile's nominal CPI
  /// instead of the measured cpi_est feedback loop.  This makes access
  /// streams byte-identical across schemes for the same config/mix/seed —
  /// required by the differential-scheme oracle (src/check/differential.hpp),
  /// which cross-checks totals between schemes.  Off for normal runs: the
  /// feedback loop is part of the timing model.
  bool lockstep_accesses = false;

  int sets_per_bank() const { return 1 << sets_log2; }
  std::uint64_t bank_bytes() const {
    return static_cast<std::uint64_t>(sets_per_bank()) * ways_per_bank * kLineBytes;
  }
  std::uint64_t llc_bytes() const { return bank_bytes() * static_cast<std::uint64_t>(cores); }
};

/// 16-core preset: 4x4 mesh, 4 MCUs, allocations up to 6 MB (192 ways).
inline MachineConfig config16() {
  MachineConfig c;
  c.cores = 16;
  c.mesh_width = 4;
  c.mesh_height = 4;
  c.num_mcus = 4;
  c.delta.max_ways_per_app = 192;
  c.umon.max_ways = 192;
  return c;
}

/// 64-core preset: 8x8 mesh, 8 MCUs, allocations up to 24 MB (768 ways).
/// The paper simulates fewer instructions at 64 cores; we likewise default
/// to a shorter measured window.
inline MachineConfig config64() {
  MachineConfig c;
  c.cores = 64;
  c.mesh_width = 8;
  c.mesh_height = 8;
  c.num_mcus = 8;
  c.delta.max_ways_per_app = 768;
  c.umon.max_ways = 768;
  c.warmup_epochs = 60;
  c.measure_epochs = 200;
  return c;
}

}  // namespace delta::sim
