#include "sim/metrics.hpp"

#include <cassert>
#include <cmath>

#include "common/stats.hpp"

namespace delta::sim {

ControlBreakdown control_breakdown(const noc::TrafficStats& t) {
  ControlBreakdown b;
  b.challenge = t.total(noc::MsgType::kChallenge) +
                t.total(noc::MsgType::kChallengeResponse);
  b.feedback = t.total(noc::MsgType::kIntraFeedback);
  b.invalidation = t.total(noc::MsgType::kInvalidation);
  b.handover = t.total(noc::MsgType::kHandover);
  b.central = t.total(noc::MsgType::kCentralCollect) +
              t.total(noc::MsgType::kCentralBroadcast);
  b.market = t.total(noc::MsgType::kMarketBid) +
             t.total(noc::MsgType::kMarketGrant);
  return b;
}

double workload_geomean_ipc(const MixResult& r) {
  std::vector<double> ipcs;
  ipcs.reserve(r.apps.size());
  for (const auto& a : r.apps)
    if (a.ipc > 0.0) ipcs.push_back(a.ipc);
  return geomean(ipcs);
}

double antt(const MixResult& r, const MixResult& private_ref) {
  assert(r.apps.size() == private_ref.apps.size());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    if (r.apps[i].cpi <= 0.0 || private_ref.apps[i].cpi <= 0.0) continue;  // Idle core.
    sum += r.apps[i].cpi / private_ref.apps[i].cpi;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double stp(const MixResult& r, const MixResult& private_ref) {
  assert(r.apps.size() == private_ref.apps.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    if (r.apps[i].cpi <= 0.0 || private_ref.apps[i].cpi <= 0.0) continue;  // Idle core.
    sum += private_ref.apps[i].cpi / r.apps[i].cpi;
  }
  return sum;
}

double speedup(const MixResult& r, const MixResult& baseline) {
  const double b = workload_geomean_ipc(baseline);
  return b > 0.0 ? workload_geomean_ipc(r) / b : 0.0;
}

}  // namespace delta::sim
