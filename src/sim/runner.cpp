#include "sim/runner.hpp"

#include <cassert>
#include <stdexcept>

namespace delta::sim {

MixResult run_mix(const MachineConfig& cfg, const workload::Mix& mix, SchemeKind kind,
                  SchemeOptions opts, obs::Observer* obs, EpochChecker* checker) {
  if (static_cast<int>(mix.apps.size()) != cfg.cores)
    throw std::invalid_argument("mix size does not match core count");
  Chip chip(cfg, mix.apps, make_scheme(kind, opts));
  if (obs != nullptr) {
    obs->begin_run(std::string(to_string(kind)));
    chip.set_observer(obs);
  }
  chip.set_checker(checker);
  return chip.run(mix.name);
}

SchemeComparison compare_schemes(const MachineConfig& cfg, const workload::Mix& mix,
                                 obs::Observer* obs, EpochChecker* checker) {
  SchemeComparison out;
  out.snuca = run_mix(cfg, mix, SchemeKind::kSnuca, {}, obs, checker);
  out.private_llc = run_mix(cfg, mix, SchemeKind::kPrivate, {}, obs, checker);
  out.ideal = run_mix(cfg, mix, SchemeKind::kIdealCentralized, {}, obs, checker);
  out.delta = run_mix(cfg, mix, SchemeKind::kDelta, {}, obs, checker);
  return out;
}

workload::Mix mix_for_config(const MachineConfig& cfg, const std::string& mix_name) {
  const workload::Mix& base = workload::table4_mix(mix_name);
  if (cfg.cores == static_cast<int>(base.apps.size())) return base;
  if (cfg.cores == static_cast<int>(base.apps.size()) * 4)
    return workload::replicate4(base);
  throw std::invalid_argument("no mix replication rule for this core count");
}

}  // namespace delta::sim
