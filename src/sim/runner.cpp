#include "sim/runner.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <thread>

#include "common/parallel.hpp"
#include "obs/prof/prof.hpp"
#include "workload/irregular.hpp"
#include "workload/spec.hpp"
#include "workload/splash.hpp"

namespace delta::sim {
namespace {

/// Resolves the auto (0) intra_jobs of sweep jobs to the leftover thread
/// budget: total hardware budget divided by the sweep's outer fan-out.
/// Returns the jobs by value only when something changed.
std::vector<SweepJob> split_intra_budget(const std::vector<SweepJob>& jobs,
                                         unsigned threads) {
  const bool any_auto =
      std::any_of(jobs.begin(), jobs.end(),
                  [](const SweepJob& j) { return j.cfg.intra_jobs == 0; });
  if (!any_auto) return jobs;
  unsigned budget = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (budget == 0) budget = 1;
  const unsigned outer =
      std::min<unsigned>(budget, static_cast<unsigned>(jobs.size()));
  const unsigned per_job = std::max(1u, budget / std::max(1u, outer));
  std::vector<SweepJob> resolved = jobs;
  for (SweepJob& j : resolved)
    if (j.cfg.intra_jobs == 0) j.cfg.intra_jobs = static_cast<int>(per_job);
  return resolved;
}

}  // namespace

MixResult run_mix(const MachineConfig& cfg, const workload::Mix& mix, SchemeKind kind,
                  SchemeOptions opts, obs::Observer* obs, EpochChecker* checker) {
  if (static_cast<int>(mix.apps.size()) != cfg.cores)
    throw std::invalid_argument("mix size does not match core count");
  Chip chip(cfg, mix.apps, make_scheme(kind, opts));
  if (obs != nullptr) {
    obs->begin_run(std::string(to_string(kind)));
    chip.set_observer(obs);
  }
  chip.set_checker(checker);
  return chip.run(mix.name);
}

SchemeComparison compare_schemes(const MachineConfig& cfg, const workload::Mix& mix,
                                 obs::Observer* obs, EpochChecker* checker) {
  SchemeComparison out;
  out.snuca = run_mix(cfg, mix, SchemeKind::kSnuca, {}, obs, checker);
  out.private_llc = run_mix(cfg, mix, SchemeKind::kPrivate, {}, obs, checker);
  out.ideal = run_mix(cfg, mix, SchemeKind::kIdealCentralized, {}, obs, checker);
  out.delta = run_mix(cfg, mix, SchemeKind::kDelta, {}, obs, checker);
  return out;
}

std::vector<MixResult> run_sweep(const std::vector<SweepJob>& jobs, unsigned threads) {
  // Warm the lazily-built profile registries before fanning out: their
  // function-local statics would otherwise be constructed under the init
  // guard inside the pool, serialising the first wave of workers.
  (void)workload::spec_profiles();
  (void)workload::irregular_profiles();
  (void)workload::splash_profiles();
  const std::vector<SweepJob> resolved = split_intra_budget(jobs, threads);
  std::vector<MixResult> out(resolved.size());
  parallel_for(
      0, resolved.size(),
      [&](std::size_t i) {
        const obs::prof::ScopedSpan job_span(obs::prof::Phase::kSweepJob, i);
        const SweepJob& j = resolved[i];
        out[i] = run_mix(j.cfg, j.mix, j.kind, j.opts);
      },
      threads);
  return out;
}

std::vector<MixResult> run_sweep_observed(const std::vector<SweepJob>& jobs,
                                          const std::vector<obs::Observer*>& observers,
                                          unsigned threads) {
  assert(observers.size() == jobs.size());
  (void)workload::spec_profiles();
  (void)workload::irregular_profiles();
  (void)workload::splash_profiles();
  const std::vector<SweepJob> resolved = split_intra_budget(jobs, threads);
  std::vector<MixResult> out(resolved.size());
  parallel_for(
      0, resolved.size(),
      [&](std::size_t i) {
        const obs::prof::ScopedSpan job_span(obs::prof::Phase::kSweepJob, i);
        const SweepJob& j = resolved[i];
        out[i] = run_mix(j.cfg, j.mix, j.kind, j.opts, observers[i]);
      },
      threads);
  return out;
}

std::vector<SchemeComparison> compare_schemes_sweep(
    const MachineConfig& cfg, const std::vector<workload::Mix>& mixes,
    unsigned threads) {
  constexpr std::array<SchemeKind, 4> kFour = {
      SchemeKind::kSnuca, SchemeKind::kPrivate, SchemeKind::kIdealCentralized,
      SchemeKind::kDelta};
  const std::vector<std::vector<MixResult>> results =
      run_schemes_sweep(cfg, mixes, kFour, threads);
  std::vector<SchemeComparison> out(mixes.size());
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    out[m].snuca = results[m][0];
    out[m].private_llc = results[m][1];
    out[m].ideal = results[m][2];
    out[m].delta = results[m][3];
  }
  return out;
}

std::vector<std::vector<MixResult>> run_schemes_sweep(
    const MachineConfig& cfg, const std::vector<workload::Mix>& mixes,
    std::span<const SchemeKind> kinds, unsigned threads, SchemeOptions opts) {
  std::vector<SweepJob> jobs;
  jobs.reserve(mixes.size() * kinds.size());
  for (const workload::Mix& mix : mixes)
    for (SchemeKind kind : kinds) jobs.push_back(SweepJob{cfg, mix, kind, opts});
  const std::vector<MixResult> results = run_sweep(jobs, threads);
  std::vector<std::vector<MixResult>> out(mixes.size());
  for (std::size_t m = 0; m < mixes.size(); ++m)
    out[m].assign(results.begin() + static_cast<std::ptrdiff_t>(m * kinds.size()),
                  results.begin() +
                      static_cast<std::ptrdiff_t>((m + 1) * kinds.size()));
  return out;
}

workload::Mix mix_for_config(const MachineConfig& cfg, const std::string& mix_name) {
  const workload::Mix& base = workload::table4_mix(mix_name);
  if (cfg.cores == static_cast<int>(base.apps.size())) return base;
  if (cfg.cores == static_cast<int>(base.apps.size()) * 4)
    return workload::replicate4(base);
  throw std::invalid_argument("no mix replication rule for this core count");
}

}  // namespace delta::sim
