// CARMA and LFOC: two post-DELTA allocation policies from the literature,
// implemented as first-class schemes so the shootout harnesses, the
// invariant checker and the differential oracle can compare them head to
// head with the paper's four organisations.
#include "sim/market_schemes.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "alloc/auction.hpp"
#include "alloc/fairshare.hpp"
#include "alloc/placement.hpp"
#include "mem/address.hpp"
#include "sim/chip.hpp"
#include "sim/scheme_common.hpp"

namespace delta::sim {
namespace {

// ---------------------------------------------------------------------------
// CARMA: cores bid per-epoch from an equal utility budget; a deterministic
// sealed-bid auction clears chip-wide way counts, which are then placed
// locality-aware and enforced with DELTA's own CBT/WP mechanism (like the
// ideal-central comparator, so the two differ only in the allocator).
// ---------------------------------------------------------------------------
class CarmaScheme final : public Scheme {
 public:
  explicit CarmaScheme(SchemeOptions opts) : opts_(opts) {}

  std::string_view name() const override { return "carma"; }

  void reset(Chip& chip) override { init_central_state(chip, wp_, cbts_); }

  void begin_epoch(Chip& chip, std::uint64_t epoch) override {
    if (opts_.market_interval_epochs <= 0 ||
        epoch % static_cast<std::uint64_t>(opts_.market_interval_epochs) != 0)
      return;
    reconfigure(chip, epoch);
  }

  BankTarget map(const Chip& chip, CoreId core, BlockAddr block) const override {
    return BankTarget{
        cbts_[static_cast<std::size_t>(core)].lookup(block, chip.config().sets_log2),
        mem::set_index(block, chip.config().sets_log2)};
  }

  mem::WayMask insert_mask(const Chip&, CoreId core, BankId bank) const override {
    return wp_[static_cast<std::size_t>(bank)].mask_of(core);
  }

  int allocated_ways(const Chip&, CoreId core) const override {
    int total = 0;
    for (const auto& w : wp_) total += w.ways_of(core);
    return total;
  }

  const core::WpUnit* wp_unit(BankId bank) const override {
    return bank < static_cast<BankId>(wp_.size())
               ? &wp_[static_cast<std::size_t>(bank)]
               : nullptr;
  }

  const core::Cbt* cbt_of(CoreId core) const override {
    return core < static_cast<CoreId>(cbts_.size())
               ? &cbts_[static_cast<std::size_t>(core)]
               : nullptr;
  }

  bool debug_drop_way(BankId bank, int way) override {
    if (bank >= static_cast<BankId>(wp_.size())) return false;
    wp_[static_cast<std::size_t>(bank)].set_owner(way, kInvalidCore);
    return true;
  }

 private:
  void reconfigure(Chip& chip, std::uint64_t epoch) {
    const int n = chip.cores();
    std::vector<int> active_core;
    alloc::AuctionRequest req;
    for (int c = 0; c < n; ++c) {
      AppSlot& s = chip.slot(c);
      if (!s.active) continue;
      active_core.push_back(c);
      // Normalise each curve to misses per kilo-access so bids are
      // comparable across applications with different access rates — the
      // equal budget then gives every core the same purchasing power.
      const umon::MissCurve curve = s.umon->miss_curve();
      const double acc = std::max(1.0, s.umon->accesses());
      std::vector<double> scaled = curve.raw();
      for (double& m : scaled) m = 1000.0 * m / acc;
      req.curves.emplace_back(std::move(scaled));
      req.budgets.push_back(opts_.carma_budget);
    }
    if (obs::EventRecorder* rec = chip.event_sink())
      rec->record(obs::EventKind::kCentralReconfig, epoch, /*core=*/-1,
                  /*bank=*/-1, /*other=*/-1, active_core.size());
    if (active_core.empty()) return;

    req.total_ways = n * chip.config().ways_per_bank;
    req.min_ways = chip.config().delta.min_ways;
    req.max_ways = chip.config().delta.max_ways_per_app;
    req.lot_ways = opts_.carma_lot_ways;
    const alloc::AuctionResult auction = alloc::clear_auction(req);
    chip.traffic().count(noc::MsgType::kMarketBid, auction.bids);
    chip.traffic().count(noc::MsgType::kMarketGrant, auction.rounds);

    alloc::PlacementRequest preq;
    preq.mesh = &chip.mesh();
    preq.ways = auction.ways;
    preq.home_tile = active_core;
    preq.ways_per_bank = chip.config().ways_per_bank;
    preq.reserved_home_ways = chip.config().delta.min_ways;
    const alloc::Placement placement = alloc::place_allocations(preq);

    apply_central_placement(chip, epoch, active_core, placement, wp_, cbts_);
  }

  SchemeOptions opts_;
  std::vector<core::WpUnit> wp_;
  std::vector<core::Cbt> cbts_;
};

// ---------------------------------------------------------------------------
// LFOC: miss-curve-shape clusters (streaming / sensitive / thrashing) share
// one contiguous way slice per cluster, identical in every bank, over a
// plain S-NUCA interleaved mapping — CAT-style shared masks rather than
// per-core partitions.  Resizing a slice never remaps addresses, so the
// scheme emits no invalidations, ever.
// ---------------------------------------------------------------------------
class LfocScheme final : public Scheme {
 public:
  explicit LfocScheme(SchemeOptions opts) : opts_(opts) {}

  std::string_view name() const override { return "lfoc"; }

  void reset(Chip& chip) override {
    const auto n = static_cast<std::uint64_t>(chip.cores());
    pow2_banks_ = (n & (n - 1)) == 0;
    bank_mask_ = n - 1;
    bank_shift_ = std::bit_width(n) - 1;
    set_mask_ = (std::uint32_t{1} << chip.config().sets_log2) - 1;
    // Until the first classification everyone is one sensitive cluster
    // holding the whole cache.
    cls_.assign(static_cast<std::size_t>(chip.cores()),
                alloc::CurveClass::kSensitive);
    cluster_ways_ = {0, chip.config().ways_per_bank, 0};
    rebuild_masks(chip.config().ways_per_bank);
  }

  void begin_epoch(Chip& chip, std::uint64_t epoch) override {
    if (opts_.market_interval_epochs <= 0 ||
        epoch % static_cast<std::uint64_t>(opts_.market_interval_epochs) != 0)
      return;
    reconfigure(chip, epoch);
  }

  BankTarget map(const Chip& chip, CoreId, BlockAddr block) const override {
    if (pow2_banks_) {
      return BankTarget{static_cast<BankId>(block & bank_mask_),
                        static_cast<std::uint32_t>(block >> bank_shift_) & set_mask_};
    }
    const int n = chip.cores();
    return BankTarget{mem::snuca_bank(block, n),
                      mem::snuca_set_index(block, n, chip.config().sets_log2)};
  }

  mem::WayMask insert_mask(const Chip&, CoreId core, BankId) const override {
    return masks_[static_cast<std::size_t>(cls_[static_cast<std::size_t>(core)])];
  }

  /// Reported as the width of the core's cluster slice (the ways it may use
  /// in any one bank) — shared-capacity semantics, like snuca's nominal
  /// per-bank share.
  int allocated_ways(const Chip&, CoreId core) const override {
    return cluster_ways_[static_cast<std::size_t>(
        cls_[static_cast<std::size_t>(core)])];
  }

 private:
  void reconfigure(Chip& chip, std::uint64_t epoch) {
    const int n = chip.cores();
    std::vector<int> active_core;
    alloc::FairShareRequest req;
    req.cfg.ways_per_bank = chip.config().ways_per_bank;
    req.cfg.min_cluster_ways = opts_.lfoc_min_cluster_ways;
    for (int c = 0; c < n; ++c) {
      AppSlot& s = chip.slot(c);
      if (!s.active) continue;
      active_core.push_back(c);
      req.curves.push_back(s.umon->miss_curve());
      req.accesses.push_back(s.umon->accesses());
    }
    chip.traffic().count(noc::MsgType::kCentralCollect, static_cast<std::uint64_t>(n));
    chip.traffic().count(noc::MsgType::kCentralBroadcast, static_cast<std::uint64_t>(n));
    if (obs::EventRecorder* rec = chip.event_sink())
      rec->record(obs::EventKind::kCentralReconfig, epoch, /*core=*/-1,
                  /*bank=*/-1, /*other=*/-1, active_core.size());
    if (active_core.empty()) return;

    const alloc::FairShareResult part = alloc::fair_partition(req);
    // Idle cores ride in the widest populated cluster (ties: lowest index)
    // so every core keeps a non-empty insertion slice.
    int widest = 0;
    for (int c = 1; c < alloc::kNumCurveClasses; ++c)
      if (part.cluster_ways[static_cast<std::size_t>(c)] >
          part.cluster_ways[static_cast<std::size_t>(widest)])
        widest = c;
    cls_.assign(static_cast<std::size_t>(n),
                static_cast<alloc::CurveClass>(widest));
    for (std::size_t a = 0; a < active_core.size(); ++a)
      cls_[static_cast<std::size_t>(active_core[a])] = part.cls[a];
    cluster_ways_ = part.cluster_ways;
    rebuild_masks(chip.config().ways_per_bank);
  }

  void rebuild_masks(int ways_per_bank) {
    int offset = 0;
    for (int c = 0; c < alloc::kNumCurveClasses; ++c) {
      const int w = cluster_ways_[static_cast<std::size_t>(c)];
      masks_[static_cast<std::size_t>(c)] =
          w > 0 ? ((mem::full_mask(w)) << offset) : mem::WayMask{0};
      offset += w;
    }
    (void)ways_per_bank;
  }

  SchemeOptions opts_;
  std::vector<alloc::CurveClass> cls_;
  std::array<int, alloc::kNumCurveClasses> cluster_ways_{};
  std::array<mem::WayMask, alloc::kNumCurveClasses> masks_{};
  std::uint64_t bank_mask_ = 0;
  std::uint32_t set_mask_ = 0;
  int bank_shift_ = 0;
  bool pow2_banks_ = false;
};

}  // namespace

std::unique_ptr<Scheme> make_carma_scheme(SchemeOptions opts) {
  return std::make_unique<CarmaScheme>(opts);
}

std::unique_ptr<Scheme> make_lfoc_scheme(SchemeOptions opts) {
  return std::make_unique<LfocScheme>(opts);
}

}  // namespace delta::sim
