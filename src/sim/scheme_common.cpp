#include "sim/scheme_common.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "sim/chip.hpp"

namespace delta::sim {

void init_central_state(const Chip& chip, std::vector<core::WpUnit>& wp,
                        std::vector<core::Cbt>& cbts) {
  const int n = chip.cores();
  wp.clear();
  cbts.clear();
  for (int t = 0; t < n; ++t) {
    wp.emplace_back(chip.config().ways_per_bank, static_cast<CoreId>(t));
    cbts.emplace_back(static_cast<BankId>(t),
                      chip.config().delta.reverse_chunk_bits);
  }
}

void apply_central_placement(Chip& chip, std::uint64_t epoch,
                             const std::vector<int>& active_core,
                             const alloc::Placement& placement,
                             std::vector<core::WpUnit>& wp,
                             std::vector<core::Cbt>& cbts) {
  const int n = chip.cores();
  // Re-own ways bank by bank: home app's ways first, then guests by core
  // id, assigned to ascending way indices deterministically.
  for (int b = 0; b < n; ++b) {
    core::WpUnit unit(chip.config().ways_per_bank, kInvalidCore);
    int w = 0;
    auto fill = [&](std::size_t app_idx) {
      const int count = placement[app_idx][static_cast<std::size_t>(b)];
      for (int i = 0; i < count && w < chip.config().ways_per_bank; ++i)
        unit.set_owner(w++, static_cast<CoreId>(active_core[app_idx]));
    };
    // Home app first for a stable "home ways at the bottom" layout.
    for (std::size_t a = 0; a < active_core.size(); ++a)
      if (active_core[a] == b) fill(a);
    for (std::size_t a = 0; a < active_core.size(); ++a)
      if (active_core[a] != b) fill(a);
    // Unassigned ways default to the home core so idle capacity stays local.
    for (; w < chip.config().ways_per_bank; ++w)
      unit.set_owner(w, static_cast<CoreId>(b));
    wp[static_cast<std::size_t>(b)] = unit;
  }

  // Rebuild CBTs (banks ordered home-first then by distance) and apply
  // the invalidations the remaps imply.
  for (std::size_t a = 0; a < active_core.size(); ++a) {
    const CoreId core = static_cast<CoreId>(active_core[a]);
    std::vector<std::pair<BankId, int>> bank_ways;
    bank_ways.emplace_back(static_cast<BankId>(core),
                           placement[a][static_cast<std::size_t>(core)]);
    for (int b : chip.mesh().by_distance(core)) {
      const int ways = placement[a][static_cast<std::size_t>(b)];
      if (ways > 0) bank_ways.emplace_back(static_cast<BankId>(b), ways);
    }
    if (bank_ways.size() == 1 && bank_ways[0].second == 0)
      bank_ways[0].second = 1;  // Degenerate: keep home mapping.

    core::Cbt& cbt = cbts[static_cast<std::size_t>(core)];
    // DELTA-enforcement semantics (Sec. II-C1): the CBT is updated only
    // when capacity expands to / retreats from a bank; pure way-count
    // drift inside already-held banks does not remap addresses.
    bool bank_set_changed = false;
    {
      std::vector<BankId> old_banks, new_banks;
      for (const auto& r : cbt.ranges()) old_banks.push_back(r.bank);
      for (const auto& [bank, ways] : bank_ways) new_banks.push_back(bank);
      std::sort(old_banks.begin(), old_banks.end());
      std::sort(new_banks.begin(), new_banks.end());
      bank_set_changed = old_banks != new_banks;
    }
    if (!bank_set_changed) continue;
    const core::Cbt prev = cbt;
    cbt.rebuild(bank_ways, chip.event_sink(), epoch, core);

    std::map<BankId, std::vector<int>> moved;
    for (int chunk : cbt.changed_chunks(prev))
      moved[prev.bank_for_chunk(chunk)].push_back(chunk);
    for (const auto& [old_bank, chunks] : moved)
      chip.invalidate_core_chunks(core, old_bank, chunks);
  }
}

}  // namespace delta::sim
