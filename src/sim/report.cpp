#include "sim/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/stats.hpp"
#include "obs/export.hpp"

namespace delta::sim {
namespace {

using obs::json_escape;
using obs::json_num;

void appendf(std::string& out, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

void append_app_json(std::string& out, const AppResult& a) {
  appendf(out,
          "{\"core\":%d,\"app\":\"%s\",\"ipc\":%s,\"cpi\":%s,\"mpki\":%s,"
          "\"miss_rate\":%s,\"avg_latency\":%s,\"avg_hops\":%s,\"avg_ways\":%s,"
          "\"instructions\":%" PRIu64 ",\"llc_accesses\":%" PRIu64
          ",\"llc_misses\":%" PRIu64 "}",
          a.core, json_escape(a.app).c_str(), json_num(a.ipc).c_str(),
          json_num(a.cpi).c_str(), json_num(a.mpki).c_str(),
          json_num(a.miss_rate).c_str(), json_num(a.avg_latency).c_str(),
          json_num(a.avg_hops).c_str(), json_num(a.avg_ways).c_str(),
          a.instructions, a.llc_accesses, a.llc_misses);
}

void append_result_json(std::string& out, const MixResult& r) {
  appendf(out, "{\"mix\":\"%s\",\"scheme\":\"%s\",\"geomean_ipc\":%s,"
               "\"measured_epochs\":%" PRIu64 ",\"invalidated_lines\":%" PRIu64 ",",
          json_escape(r.mix).c_str(), json_escape(r.scheme).c_str(),
          json_num(r.geomean_ipc).c_str(), r.measured_epochs, r.invalidated_lines);
  out += "\"traffic\":{";
  for (int t = 0; t < static_cast<int>(noc::MsgType::kCount); ++t) {
    const auto type = static_cast<noc::MsgType>(t);
    appendf(out, "%s\"%s\":%" PRIu64, t == 0 ? "" : ",",
            std::string(noc::msg_type_name(type)).c_str(), r.traffic.total(type));
  }
  appendf(out, "},\"control\":{\"challenge\":%" PRIu64 ",\"feedback\":%" PRIu64
               ",\"invalidation\":%" PRIu64 ",\"handover\":%" PRIu64
               ",\"central\":%" PRIu64 ",\"market\":%" PRIu64
               ",\"total\":%" PRIu64 "},",
          r.control.challenge, r.control.feedback, r.control.invalidation,
          r.control.handover, r.control.central, r.control.market,
          r.control.total());
  out += "\"apps\":[";
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    if (i != 0) out += ',';
    append_app_json(out, r.apps[i]);
  }
  out += "]}";
}

}  // namespace

std::string csv_header() {
  return "mix,scheme,core,app,ipc,mpki,miss_rate,avg_latency,avg_hops,avg_ways,"
         "llc_accesses,llc_misses";
}

std::string csv_rows(const MixResult& r) {
  std::string out;
  for (const auto& a : r.apps)
    appendf(out, "%s,%s,%d,%s,%.4f,%.2f,%.4f,%.2f,%.2f,%.1f,%" PRIu64 ",%" PRIu64
                 "\n",
            r.mix.c_str(), r.scheme.c_str(), a.core, a.app.c_str(), a.ipc, a.mpki,
            a.miss_rate, a.avg_latency, a.avg_hops, a.avg_ways, a.llc_accesses,
            a.llc_misses);
  return out;
}

std::string text_report(const MixResult& r, const MixResult* baseline) {
  std::string out;
  appendf(out, "\n== %s on %s ==\n", r.scheme.c_str(), r.mix.c_str());
  TextTable t({"core", "app", "ipc", "mpki", "miss%", "lat", "hops", "ways"});
  for (const auto& a : r.apps)
    t.add_row({std::to_string(a.core), a.app, fmt(a.ipc, 3), fmt(a.mpki, 1),
               fmt(100 * a.miss_rate, 1), fmt(a.avg_latency, 1), fmt(a.avg_hops, 2),
               fmt(a.avg_ways, 1)});
  out += t.str();
  appendf(out, "workload geomean IPC %.4f", r.geomean_ipc);
  if (baseline != nullptr && baseline != &r)
    appendf(out, "  (%.3fx vs %s)", speedup(r, *baseline), baseline->scheme.c_str());
  appendf(out, "; control msgs %" PRIu64 " (challenge %" PRIu64 ", feedback %" PRIu64
               ", invalidation %" PRIu64 ", handover %" PRIu64 ", central %" PRIu64
               ", market %" PRIu64 "), demand msgs %" PRIu64
               ", invalidated lines %" PRIu64 "\n",
          r.control.total(), r.control.challenge, r.control.feedback,
          r.control.invalidation, r.control.handover, r.control.central,
          r.control.market, r.traffic.demand_messages(), r.invalidated_lines);
  return out;
}

std::string json_summary(std::span<const MixResult> results,
                         const obs::Observer* obs) {
  std::string out = "{\"schema_version\":1,\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) out += ',';
    append_result_json(out, results[i]);
  }
  out += "]";
  if (obs != nullptr) {
    appendf(out, ",\"observability\":{\"level\":\"%s\",\"events_recorded\":%zu,"
                 "\"events_dropped\":%" PRIu64 ",\"timeline_rows\":%zu,\"runs\":[",
            std::string(to_string(obs->level())).c_str(), obs->events().size(),
            obs->events().dropped(),
            obs->timeline().cores().size() + obs->timeline().mcus().size() +
                obs->timeline().chips().size());
    for (std::size_t i = 0; i < obs->run_names().size(); ++i)
      appendf(out, "%s\"%s\"", i == 0 ? "" : ",",
              json_escape(obs->run_names()[i]).c_str());
    out += "],\"events_by_kind\":{";
    bool first = true;
    for (int k = 0; k < obs::kNumEventKinds; ++k) {
      const auto kind = static_cast<obs::EventKind>(k);
      const std::uint64_t n = obs->events().count_of(kind);
      if (n == 0) continue;
      appendf(out, "%s\"%s\":%" PRIu64, first ? "" : ",",
              std::string(obs::event_kind_name(kind)).c_str(), n);
      first = false;
    }
    out += "}}";
  }
  out += "}\n";
  return out;
}

}  // namespace delta::sim
