#include "sim/splash_estimator.hpp"

#include <algorithm>
#include <vector>

#include "core/page_classify.hpp"
#include "mem/address.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "noc/mesh.hpp"

namespace delta::sim {
namespace {

struct ThreadCycles {
  double lat_sum = 0.0;
  std::uint64_t accesses = 0;
};

double roi_cycles(const std::vector<ThreadCycles>& threads,
                  const workload::SplashProfile& p) {
  // Longest-running thread in the parallel region (paper Sec. IV-C):
  // instructions = accesses / (apki/1000); stalls overlap by MLP.
  double worst = 0.0;
  for (const auto& t : threads) {
    const double instr = static_cast<double>(t.accesses) / (p.apki / 1000.0);
    const double cycles = instr * p.cpi_base + t.lat_sum / p.mlp;
    worst = std::max(worst, cycles);
  }
  return worst;
}

/// S-NUCA baseline: single shared copy, line-interleaved across all banks.
double simulate_snuca(const workload::SplashProfile& p, const MachineConfig& cfg,
                      const SplashConfig& scfg) {
  const int n = cfg.cores;
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  std::vector<mem::SetAssocCache> banks;
  for (int b = 0; b < n; ++b)
    banks.emplace_back(static_cast<std::uint32_t>(cfg.sets_per_bank()), cfg.ways_per_bank);
  const mem::WayMask all = mem::full_mask(cfg.ways_per_bank);

  workload::SplashGen gen(p, scfg.seed);
  std::vector<ThreadCycles> threads(static_cast<std::size_t>(p.threads));
  const std::uint64_t total = scfg.accesses_per_thread * static_cast<std::uint64_t>(p.threads);
  for (std::uint64_t i = 0; i < total; ++i) {
    const workload::SplashAccess a = gen.next();
    const BankId bank = mem::snuca_bank(a.block, n);
    const std::uint32_t set = mem::snuca_set_index(a.block, n, cfg.sets_log2);
    double lat = static_cast<double>(mesh.round_trip(a.thread, bank) +
                                     cfg.llc_tag_latency + cfg.llc_data_latency);
    const auto res = banks[static_cast<std::size_t>(bank)].access(set, a.block, a.thread, all);
    if (!res.hit) lat += 340.0;  // DRAM + MCU round trip (flat model).
    auto& t = threads[static_cast<std::size_t>(a.thread)];
    t.lat_sum += lat;
    ++t.accesses;
  }
  return roi_cycles(threads, p);
}

/// Private baseline: every thread caches into its own 512 KB bank; shared
/// lines replicate and are kept coherent by the MESIF directory.
double simulate_private(const workload::SplashProfile& p, const MachineConfig& cfg,
                        const SplashConfig& scfg) {
  const int n = cfg.cores;
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  std::vector<mem::SetAssocCache> banks;
  for (int b = 0; b < n; ++b)
    banks.emplace_back(static_cast<std::uint32_t>(cfg.sets_per_bank()), cfg.ways_per_bank);
  const mem::WayMask all = mem::full_mask(cfg.ways_per_bank);
  mem::MesifDirectory dir(n);

  workload::SplashGen gen(p, scfg.seed);
  std::vector<ThreadCycles> threads(static_cast<std::size_t>(p.threads));
  const std::uint64_t total = scfg.accesses_per_thread * static_cast<std::uint64_t>(p.threads);
  for (std::uint64_t i = 0; i < total; ++i) {
    const workload::SplashAccess a = gen.next();
    const CoreId c = a.thread;
    const std::uint32_t set = mem::set_index(a.block, cfg.sets_log2);
    auto& local = banks[static_cast<std::size_t>(c)];
    double lat = static_cast<double>(cfg.llc_tag_latency + cfg.llc_data_latency);

    const bool local_hit = local.contains(set, a.block) && dir.is_sharer(c, a.block);
    if (!local_hit) {
      // Coherence transaction: data may be forwarded from a peer bank or
      // fetched from memory.
      const mem::CoherenceAction act =
          a.is_write ? dir.on_write(c, a.block) : dir.on_read(c, a.block);
      if (act.forwarded && act.forwarder != kInvalidCore) {
        lat += static_cast<double>(mesh.round_trip(c, act.forwarder));
      } else {
        lat += 340.0;
      }
      const auto res = local.access(set, a.block, c, all);
      if (res.evicted) dir.on_evict(c, res.victim_block);
      (void)res;
    } else {
      local.touch(set, a.block);
      if (a.is_write) {
        const mem::CoherenceAction act = dir.on_write(c, a.block);
        // Write hits to shared data still invalidate remote copies; the
        // invalidation round trip is off the critical path, but the copies
        // disappear from the remote banks.
        if (act.invalidations > 0) {
          for (int peer = 0; peer < n; ++peer) {
            if (peer == c) continue;
            banks[static_cast<std::size_t>(peer)].invalidate(set, a.block);
          }
        }
      }
    }
    auto& t = threads[static_cast<std::size_t>(c)];
    t.lat_sum += lat;
    ++t.accesses;
  }
  return roi_cycles(threads, p);
}

}  // namespace

SplashEstimate estimate_splash(const workload::SplashProfile& profile,
                               const MachineConfig& cfg, SplashConfig scfg) {
  SplashEstimate e;
  e.app = profile.name;

  // Step 1: sharing measurement through the R-NUCA page classifier plus
  // block-granular ground truth (the pintool's output, Table V).
  {
    core::PageClassifier classifier;
    workload::SplashGen gen(profile, scfg.seed);
    const std::uint64_t total =
        scfg.accesses_per_thread * static_cast<std::uint64_t>(profile.threads);
    for (std::uint64_t i = 0; i < total; ++i) {
      const workload::SplashAccess a = gen.next();
      classifier.on_access(a.thread, addr_of_block(a.block));
    }
    const double touched = static_cast<double>(classifier.private_pages() +
                                               classifier.shared_pages());
    e.private_pages_pct =
        touched > 0 ? 100.0 * static_cast<double>(classifier.private_pages()) / touched
                    : 0.0;
    const auto ground_truth = workload::measure_sharing(
        profile, scfg.accesses_per_thread * static_cast<std::uint64_t>(profile.threads),
        scfg.seed);
    e.private_blocks_pct = ground_truth.private_blocks_pct;
  }

  // Step 2: baselines + piecewise reconstruction.
  e.snuca_cycles = simulate_snuca(profile, cfg, scfg);
  e.private_cycles = simulate_private(profile, cfg, scfg);
  const double f = e.private_pages_pct / 100.0;
  e.delta_cycles = f * e.private_cycles + (1.0 - f) * e.snuca_cycles;
  e.delta_speedup = e.snuca_cycles / e.delta_cycles;
  e.private_speedup = e.snuca_cycles / e.private_cycles;
  return e;
}

}  // namespace delta::sim
