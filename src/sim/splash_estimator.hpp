// Multithreaded performance estimation (paper Sec. IV-C, Fig. 12, Table V).
//
// The paper's two-step method, reproduced:
//  1. measure the private/shared page ratio of each SPLASH2 application
//     (pintool in the paper; the R-NUCA page classifier over our synthetic
//     generators here);
//  2. piecewise-reconstruct DELTA's performance: accesses to private pages
//     perform like the private-LLC baseline, accesses to shared pages like
//     the S-NUCA baseline (LLC accesses assumed uniform across pages).
//
// The two baselines are themselves simulated: S-NUCA keeps one copy of each
// line in an interleaved 8 MB LLC; the private configuration replicates
// shared lines into each accessor's 512 KB bank and stays coherent through
// the MESIF directory (write-invalidations + cache-to-cache forwards), which
// is what makes heavy-sharing applications (lu.ncont) lose ~10% under
// private LLCs while all-private applications (water.nsq) gain.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "workload/splash.hpp"

namespace delta::sim {

struct SplashEstimate {
  std::string app;
  // Classifier-measured sharing (percent private).
  double private_pages_pct = 0.0;
  double private_blocks_pct = 0.0;
  // Region-of-interest cycles (longest thread) per configuration.
  double snuca_cycles = 0.0;
  double private_cycles = 0.0;
  double delta_cycles = 0.0;  ///< Piecewise estimate.
  // Speedups over S-NUCA (the Fig. 12 series).
  double delta_speedup = 0.0;
  double private_speedup = 0.0;
};

struct SplashConfig {
  std::uint64_t accesses_per_thread = 60'000;
  std::uint64_t seed = 17;
};

/// Runs the full pipeline for one application on the 16-core machine.
SplashEstimate estimate_splash(const workload::SplashProfile& profile,
                               const MachineConfig& cfg, SplashConfig scfg = {});

}  // namespace delta::sim
