// Partitioning-scheme plug-in interface.
//
// A scheme answers two questions on every LLC access — which bank does this
// core's address map to, and which ways may the core insert into — and gets
// a begin_epoch() hook for reconfiguration.  The four schemes of the
// paper's evaluation (unpartitioned S-NUCA, private/equal-partitioned LLC,
// the ideal zero-overhead centralized allocator, and DELTA itself) plus the
// two literature-comparison allocators (CARMA's way auction, LFOC's
// fairness clustering) are created through make_scheme(); docs/schemes.md
// describes all six.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/replacement.hpp"

namespace delta::core {
class Cbt;
class WpUnit;
}  // namespace delta::core

namespace delta::sim {

class Chip;

struct BankTarget {
  BankId bank = 0;
  std::uint32_t set = 0;
};

enum class SchemeKind {
  kSnuca,
  kPrivate,
  kIdealCentralized,
  kDelta,
  kCarma,  ///< Market-based: sealed-bid way auction (CARMA, PAPERS.md).
  kLfoc,   ///< Fairness clustering: shared per-class slices (LFOC, PAPERS.md).
};

/// Every scheme the shootout harnesses compare, in canonical order.
inline constexpr std::array<SchemeKind, 6> kAllSchemeKinds = {
    SchemeKind::kSnuca,   SchemeKind::kPrivate, SchemeKind::kIdealCentralized,
    SchemeKind::kDelta,   SchemeKind::kCarma,   SchemeKind::kLfoc};

std::string_view to_string(SchemeKind k);

// Thread-locality contract for the intra-run engine (sim/intra.hpp): the
// during-epoch hooks below are called from parallel workers, so they must
// confine themselves to
//   * map(): epoch-constant routing state only (CBTs, hashing) — called
//     concurrently for different cores;
//   * insert_mask() / evict_preference() / on_insertion(): state owned by
//     the `bank` argument (per-bank WpUnit, enforcer slice) or
//     epoch-constant state — called concurrently for *different* banks,
//     serially within one bank in the canonical access order.
// Anything cross-bank (reallocation, challenges, bulk invalidation) belongs
// in begin_epoch(), which runs on the epoch barrier.  All six in-tree
// schemes satisfy this; test_intra enforces it end to end and the TSan CI
// job watches for violations dynamically.  The contract is also checked
// statically: the phase-effect lint (lint/phase_check.hpp, ctest label
// `lint-semantic`) walks every Scheme subclass's during-epoch closure and
// rejects member writes, non-const helpers, unannotated pointer-member
// calls and banned cross-bank Chip calls.  Legitimate carve-outs are
// annotated in-source with `// delta-phase: epoch-constant` (field only
// mutated on the epoch barrier) or `// delta-lint: allow(phase-effect)`
// (line-scoped waiver) — see docs/static-analysis.md.
class Scheme {
 public:
  virtual ~Scheme() = default;
  virtual std::string_view name() const = 0;
  /// Called once before the first epoch (chip fully constructed).
  virtual void reset(Chip&) {}
  /// Called at the start of every epoch; reconfiguration happens here.
  virtual void begin_epoch(Chip&, std::uint64_t /*epoch*/) {}
  /// Address-to-bank mapping for an access by `core`.
  virtual BankTarget map(const Chip&, CoreId core, BlockAddr block) const = 0;
  /// Insertion mask for `core` in `bank` (0 == bypass, do not allocate).
  virtual mem::WayMask insert_mask(const Chip&, CoreId core, BankId bank) const = 0;
  /// Preferred eviction donor in `bank` (occupancy-based enforcement);
  /// kInvalidCore == plain masked LRU.
  virtual CoreId evict_preference(const Chip&, CoreId /*core*/, BankId /*bank*/) const {
    return kInvalidCore;
  }
  /// Fill/eviction feedback for schemes tracking per-partition occupancy.
  virtual void on_insertion(Chip&, CoreId /*owner*/, BankId /*bank*/,
                            const mem::AccessResult& /*result*/) {}
  /// Ways currently allocated to `core` chip-wide (for reporting).
  virtual int allocated_ways(const Chip&, CoreId core) const = 0;

  // ---- Introspection for the invariant checker (src/check). ----
  /// The per-bank way-partition unit / per-core CBT when the scheme
  /// maintains them (delta, ideal-central); null for schemes without that
  /// state (snuca, private), which the checker treats as "not applicable".
  virtual const core::WpUnit* wp_unit(BankId) const { return nullptr; }
  virtual const core::Cbt* cbt_of(CoreId) const { return nullptr; }
  /// Occupancy-enforcement bookkeeping for (`bank`, `core`): the line count
  /// the scheme believes the partition holds, or -1 when it keeps none.
  virtual std::int64_t tracked_occupancy(BankId, CoreId) const { return -1; }
  /// Test-only fault injection: silently drops ownership of one way so
  /// tests can prove the invariant checker catches way leaks.  Returns
  /// false for schemes without WP state.
  virtual bool debug_drop_way(BankId, int /*way*/) { return false; }
};

struct SchemeOptions {
  /// Reconfiguration interval for the centralized scheme, in epochs
  /// (10 = 1 ms as in the paper; 1000 = 100 ms for the Fig. 13 study).
  int central_interval_epochs = 10;
  /// Reconfiguration cadence of the market/clustering schemes (carma, lfoc).
  int market_interval_epochs = 10;
  /// CARMA: per-application spending budget per auction, in normalised
  /// misses-per-kilo-access utility units.  Equal budgets are the market's
  /// fairness mechanism; a smaller budget makes allocations stickier.
  double carma_budget = 64.0;
  /// CARMA: ways sold per auction round.
  int carma_lot_ways = 1;
  /// LFOC: way floor granted to every populated cluster in each bank.
  int lfoc_min_cluster_ways = 2;
};

std::unique_ptr<Scheme> make_scheme(SchemeKind kind, SchemeOptions opts = {});

}  // namespace delta::sim
