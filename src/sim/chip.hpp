// Tiled-CMP simulator: epoch-driven multi-program execution over real LLC
// bank contents, a mesh NoC latency model and queued memory controllers.
//
// Timing model (see DESIGN.md "Simulator design notes"): the chip advances
// in 0.1 ms epochs.  Each core issues its post-L2 access stream for the
// epoch (target count derived from its current CPI estimate and the
// profile's accesses-per-kilo-instruction); streams of different cores are
// interleaved in small batches so set-level interference in shared
// configurations is modelled.  Per-access latency = NoC round trip to the
// bank + tag/data latency, plus MCU round trip + DRAM + queueing on a miss;
// each access contributes latency/MLP stall cycles (interval model).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "noc/mcu.hpp"
#include "noc/mesh.hpp"
#include "noc/traffic.hpp"
#include "obs/observer.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sim/scheme.hpp"
#include "umon/mlp.hpp"
#include "umon/umon.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"

namespace delta::sim {

/// Per-core program state.  App name "idle" (or "") leaves the core idle.
struct AppSlot {
  std::string app_name;
  const workload::AppProfile* profile = nullptr;
  std::unique_ptr<workload::TraceGen> gen;
  std::unique_ptr<umon::Umon> umon;
  bool active = false;
  std::uint32_t process_id = 0;
  umon::MlpEstimator mlp_estimator;

  /// MLP fed to the allocation policy: the performance-counter estimate
  /// when MachineConfig::measured_mlp is set, else the profile's value.
  double policy_mlp(bool measured) const {
    if (!active) return 1.0;
    return measured && mlp_estimator.initialised() ? mlp_estimator.get()
                                                   : gen->phase().mlp;
  }

  // Cycle accounting.
  double cpi_est = 1.0;
  double instructions = 0.0;   ///< Measured window.
  Cycles cycles = 0;           ///< Measured window.

  // Measured-window stats.
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  double lat_sum = 0.0;
  double hop_sum = 0.0;
  double ways_sum = 0.0;       ///< Epoch-sampled allocation.
  std::uint64_t ways_samples = 0;

  // Per-epoch scratch.
  std::uint64_t epoch_accesses = 0;
  double epoch_lat_sum = 0.0;
};

class Chip;
class IntraEngine;

/// Epoch-boundary hook for chip-wide validation (src/check's
/// InvariantChecker implements it).  Defined here rather than in the check
/// library so Chip can invoke it without a dependency cycle.  `on_epoch`
/// runs right after the scheme's begin_epoch(), i.e. against the
/// post-reconfiguration state the epoch's accesses will see.
class EpochChecker {
 public:
  virtual ~EpochChecker() = default;
  virtual void on_epoch(Chip& chip, std::uint64_t epoch) = 0;
};

// Compile-time default for Chip::kInterleaveBatch; override with
// -DDELTA_INTERLEAVE_BATCH=N (MachineConfig::interleave_batch overrides at
// run time).
#ifndef DELTA_INTERLEAVE_BATCH
#define DELTA_INTERLEAVE_BATCH 16
#endif

class Chip {
 public:
  /// Batch size for interleaving per-core access streams within an epoch:
  /// small enough that contending cores interact at fine grain, large
  /// enough to keep the issue loop cheap.  The intra-run engine reproduces
  /// this exact interleaving, so the value is part of the determinism
  /// contract — changing it changes results.  This constant is the
  /// compile-time default; MachineConfig::interleave_batch != 0 overrides
  /// it per chip (see interleave_batch()).
  static constexpr std::uint64_t kInterleaveBatch = DELTA_INTERLEAVE_BATCH;

  /// The batch size this chip actually runs with — kInterleaveBatch unless
  /// the config overrode it.  Both the serial issue loop and the intra-run
  /// engine read this, so they agree byte-for-byte at any value.
  std::uint64_t interleave_batch() const { return interleave_batch_; }

  /// `apps` holds one profile short-name per core ("idle" => idle core).
  /// cfg.intra_jobs > 1 (or 0 = hardware threads) attaches the intra-run
  /// parallel epoch engine (sim/intra.hpp); results are byte-identical
  /// either way.
  Chip(const MachineConfig& cfg, const std::vector<std::string>& apps,
       std::unique_ptr<Scheme> scheme);
  ~Chip();

  /// Runs warmup + measured epochs and returns per-app results.
  MixResult run(const std::string& mix_name = "custom");

  /// Runs `n` epochs starting from the current state (building block for
  /// run(); exposed for fine-grained tests/examples).
  void run_epochs(int n, bool measuring);

  // ---- Accessors used by schemes and instrumentation. ----
  const MachineConfig& config() const { return cfg_; }
  const noc::Mesh& mesh() const { return mesh_; }
  noc::MemorySystem& memsys() { return memsys_; }
  mem::SetAssocCache& bank(BankId b) { return banks_[static_cast<std::size_t>(b)]; }
  const mem::SetAssocCache& bank(BankId b) const {
    return banks_[static_cast<std::size_t>(b)];
  }
  AppSlot& slot(CoreId c) { return slots_[static_cast<std::size_t>(c)]; }
  const AppSlot& slot(CoreId c) const { return slots_[static_cast<std::size_t>(c)]; }
  int cores() const { return cfg_.cores; }
  noc::TrafficStats& traffic() { return traffic_; }
  Scheme& scheme() { return *scheme_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t invalidated_lines() const { return invalidated_lines_; }

  /// Attaches an observability context (may be null; the chip does not own
  /// it).  Costs nothing on the access path: all hooks sit on epoch
  /// boundaries and reconfiguration events, and schemes re-wire their event
  /// sinks from here in begin_epoch().
  void set_observer(obs::Observer* o) { obs_ = o; }
  obs::Observer* observer() { return obs_; }
  /// Event sink for emission sites: null when tracing is off.
  obs::EventRecorder* event_sink() {
    return obs_ != nullptr ? obs_->event_sink() : nullptr;
  }

  /// Attaches an epoch-boundary checker (may be null; not owned).  Invoked
  /// every epoch after the scheme's reconfiguration hook.
  void set_checker(EpochChecker* c) { checker_ = c; }
  EpochChecker* checker() { return checker_; }

  /// Bulk-invalidation unit (Sec. II-C3): sweeps `old_bank` and drops
  /// `core`-owned lines whose CBT chunk is in `chunks`.  Returns the number
  /// of lines invalidated and counts one kInvalidation command message.
  std::uint64_t invalidate_core_chunks(CoreId core, BankId old_bank,
                                       const std::vector<int>& chunks);

  /// Worker threads the attached intra-run engine uses (1 == serial loop).
  unsigned intra_threads() const;

 private:
  // The intra-run engine is a pure reorganisation of run_one_epoch's access
  // loop; it reaches into the same private state the loop touches.
  friend class IntraEngine;

  void run_one_epoch(bool measuring);
  /// Issues `count` back-to-back accesses for core `c` with loop-invariant
  /// state (slot, generator, monitor, scheme dispatch target) hoisted and
  /// statistics folded into the slot once per batch.
  void do_access_batch(CoreId c, std::uint64_t count, bool measuring);
  void finish_epoch_accounting(bool measuring);
  /// Appends this epoch's core/MCU/chip rows to the observer's timeline.
  void sample_timeline();

  MachineConfig cfg_;
  noc::Mesh mesh_;
  noc::MemorySystem memsys_;
  std::vector<mem::SetAssocCache> banks_;
  std::vector<AppSlot> slots_;
  std::unique_ptr<Scheme> scheme_;
  std::unique_ptr<IntraEngine> intra_;  ///< Null => serial epoch loop.
  noc::TrafficStats traffic_;
  std::uint64_t interleave_batch_ = kInterleaveBatch;
  std::uint64_t epoch_ = 0;
  std::uint64_t invalidated_lines_ = 0;
  std::vector<std::uint64_t> epoch_targets_;  // Scratch: accesses per core.

  // Observability (nullable, not owned).  prev_* snapshots turn cumulative
  // counters into per-epoch deltas for the timeline sampler.
  obs::Observer* obs_ = nullptr;
  EpochChecker* checker_ = nullptr;  // Nullable, not owned.
  noc::TrafficStats prev_traffic_;
  std::uint64_t prev_invalidated_lines_ = 0;
  std::vector<std::uint64_t> prev_hits_, prev_misses_;
};

}  // namespace delta::sim
