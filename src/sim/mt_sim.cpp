#include "sim/mt_sim.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/controller.hpp"
#include "core/page_classify.hpp"
#include "mem/address.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "noc/mcu.hpp"
#include "noc/mesh.hpp"

namespace delta::sim {
namespace {

struct ThreadAcct {
  double lat_sum = 0.0;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  double hop_sum = 0.0;
};

}  // namespace

MtResult run_multithreaded(const MachineConfig& cfg, const workload::SplashProfile& p,
                           SchemeKind kind, MtConfig mtc) {
  assert(p.threads <= cfg.cores);
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  noc::MemorySystem memsys(cfg.num_mcus, cfg.mesh_width, cfg.mesh_height, cfg.mcu);
  std::vector<mem::SetAssocCache> banks;
  for (int b = 0; b < cfg.cores; ++b)
    banks.emplace_back(static_cast<std::uint32_t>(cfg.sets_per_bank()), cfg.ways_per_bank);
  const mem::WayMask all = mem::full_mask(cfg.ways_per_bank);

  core::PageClassifier classifier;
  mem::MesifDirectory directory(cfg.cores);  // Private-config coherence.

  // DELTA machinery: one process id for every thread, UMONs per core.
  core::DeltaController ctrl(mesh, cfg.delta, cfg.ways_per_bank, cfg.sets_log2);
  std::vector<umon::Umon> umons;
  for (int c = 0; c < cfg.cores; ++c) umons.emplace_back(cfg.umon);
  std::vector<core::TileInput> inputs(static_cast<std::size_t>(cfg.cores));
  for (int c = 0; c < cfg.cores; ++c) {
    inputs[static_cast<std::size_t>(c)] = core::TileInput{
        &umons[static_cast<std::size_t>(c)], p.mlp, c < p.threads, /*process_id=*/1};
  }

  workload::SplashGen gen(p, mtc.seed);
  std::vector<ThreadAcct> acct(static_cast<std::size_t>(p.threads));
  MtResult res;
  res.app = p.name;
  res.scheme = std::string(to_string(kind));

  // Access budget per epoch per thread from the interval model.
  double cpi_est = p.cpi_base + p.apki / 1000.0 * 100.0 / p.mlp;
  const std::uint64_t total_per_thread = mtc.accesses_per_thread;
  std::uint64_t issued_per_thread = 0;
  std::uint64_t epoch = 0;

  auto page_flip_invalidate = [&](BlockAddr block) {
    // Bulk-invalidate every line of the flipped page wherever it resides
    // (paper Sec. II-E: "when a page is first classified as shared all the
    // lines belonging to the page are invalidated").
    const std::uint64_t page = page_of(addr_of_block(block));
    const BlockAddr first = block_of(page * kPageBytes);
    for (BlockAddr b = first; b < first + kPageBytes / kLineBytes; ++b) {
      for (int bank = 0; bank < cfg.cores; ++bank) {
        if (banks[static_cast<std::size_t>(bank)].invalidate(
                mem::set_index(b, cfg.sets_log2), b))
          ++res.page_invalidation_lines;
        if (banks[static_cast<std::size_t>(bank)].invalidate(
                mem::snuca_set_index(b, cfg.cores, cfg.sets_log2), b))
          ++res.page_invalidation_lines;
      }
    }
  };

  auto do_access = [&](const workload::SplashAccess& a) {
    const CoreId c = a.thread;
    umons[static_cast<std::size_t>(c)].access(a.block);

    const core::PageEvent ev = classifier.on_access(c, addr_of_block(a.block));
    if (kind == SchemeKind::kDelta && ev.reclassified) page_flip_invalidate(a.block);

    BankId bank;
    std::uint32_t set;
    mem::WayMask mask = all;
    switch (kind) {
      case SchemeKind::kSnuca:
        bank = mem::snuca_bank(a.block, cfg.cores);
        set = mem::snuca_set_index(a.block, cfg.cores, cfg.sets_log2);
        break;
      case SchemeKind::kPrivate:
        bank = c;
        set = mem::set_index(a.block, cfg.sets_log2);
        break;
      default:  // kDelta (and the centralized scheme behaves the same here).
        if (ev.cls == core::PageClass::kShared) {
          bank = mem::snuca_bank(a.block, cfg.cores);
          set = mem::snuca_set_index(a.block, cfg.cores, cfg.sets_log2);
        } else {
          bank = ctrl.bank_for(c, a.block);
          set = mem::set_index(a.block, cfg.sets_log2);
          mask = ctrl.insert_mask(c, bank);
          if (mask == 0) mask = all;  // Defensive: never bypass here.
        }
        break;
    }

    const int hops = mesh.hops(c, bank);
    double lat = static_cast<double>(mesh.round_trip(c, bank) + cfg.llc_tag_latency +
                                     cfg.llc_data_latency);

    bool hit;
    if (kind == SchemeKind::kPrivate && ev.cls == core::PageClass::kShared) {
      // Private LLC with shared data: replicate locally, keep coherent via
      // the MESIF directory (write-invalidations remove remote copies).
      auto& local = banks[static_cast<std::size_t>(c)];
      hit = local.contains(set, a.block) && directory.is_sharer(c, a.block);
      if (!hit) {
        const mem::CoherenceAction act =
            a.is_write ? directory.on_write(c, a.block) : directory.on_read(c, a.block);
        if (act.forwarded && act.forwarder != kInvalidCore) {
          lat += static_cast<double>(mesh.round_trip(c, act.forwarder));
        } else {
          const int mcu = memsys.mcu_for(a.block);
          lat += static_cast<double>(mesh.round_trip(c, memsys.attach_tile(mcu))) +
                 static_cast<double>(memsys.mcu(mcu).request_latency());
        }
        const auto fill = local.access(set, a.block, c, all);
        if (fill.evicted) directory.on_evict(c, fill.victim_block);
      } else {
        local.touch(set, a.block);
        if (a.is_write) {
          const mem::CoherenceAction act = directory.on_write(c, a.block);
          if (act.invalidations > 0) {
            for (int peer = 0; peer < cfg.cores; ++peer)
              if (peer != c) banks[static_cast<std::size_t>(peer)].invalidate(set, a.block);
          }
        }
      }
    } else {
      const auto r = banks[static_cast<std::size_t>(bank)].access(set, a.block, c, mask);
      hit = r.hit;
      if (!hit) {
        const int mcu = memsys.mcu_for(a.block);
        lat += static_cast<double>(mesh.round_trip(bank, memsys.attach_tile(mcu))) +
               static_cast<double>(memsys.mcu(mcu).request_latency());
      }
    }

    auto& t = acct[static_cast<std::size_t>(c)];
    t.lat_sum += lat;
    t.hop_sum += hops;
    ++t.accesses;
    t.hits += hit ? 1 : 0;
  };

  while (issued_per_thread < total_per_thread) {
    if (kind == SchemeKind::kDelta) ctrl.tick(epoch, inputs);
    const std::uint64_t budget = std::min<std::uint64_t>(
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(static_cast<double>(cfg.epoch_cycles) /
                                          cpi_est * p.apki / 1000.0)),
        total_per_thread - issued_per_thread);
    for (std::uint64_t i = 0; i < budget; ++i)
      for (int t = 0; t < p.threads; ++t) do_access(gen.next());
    issued_per_thread += budget;
    memsys.end_epoch(cfg.epoch_cycles);

    // Refresh the CPI estimate from the measured epoch latency.
    double lat_sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& t : acct) {
      lat_sum += t.lat_sum;
      n += t.accesses;
    }
    const double avg_lat = n ? lat_sum / static_cast<double>(n) : 100.0;
    cpi_est = p.cpi_base + p.apki / 1000.0 * avg_lat / p.mlp;
    ++epoch;
  }

  // Region-of-interest metric: the longest thread (paper Sec. IV-C).
  double worst = 0.0;
  double total_instr = 0.0, total_cycles = 0.0;
  std::uint64_t hits = 0, accesses = 0;
  double hop_sum = 0.0;
  for (const auto& t : acct) {
    const double instr = static_cast<double>(t.accesses) / (p.apki / 1000.0);
    const double cycles = instr * p.cpi_base + t.lat_sum / p.mlp;
    worst = std::max(worst, cycles);
    total_instr += instr;
    total_cycles += cycles;
    hits += t.hits;
    accesses += t.accesses;
    hop_sum += t.hop_sum;
  }
  res.roi_cycles = worst;
  res.mean_ipc = total_cycles > 0 ? total_instr / (total_cycles / p.threads) / p.threads : 0.0;
  res.miss_rate =
      accesses ? 1.0 - static_cast<double>(hits) / static_cast<double>(accesses) : 0.0;
  res.mean_hops = accesses ? hop_sum / static_cast<double>(accesses) : 0.0;
  res.private_pages = classifier.private_pages();
  res.shared_pages = classifier.shared_pages();
  res.reclassifications = classifier.reclassifications();
  return res;
}

}  // namespace delta::sim
