#include "sim/mt_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/sync.hpp"
#include "core/controller.hpp"
#include "core/page_classify.hpp"
#include "mem/address.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "noc/mcu.hpp"
#include "noc/mesh.hpp"
#include "obs/prof/prof.hpp"

namespace delta::sim {
namespace {

struct ThreadAcct {
  double lat_sum = 0.0;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  double hop_sum = 0.0;
};

/// Chip state shared by every logical SPLASH thread: banks, the page
/// classifier, the MESIF directory, the DELTA controller and the per-thread
/// accounting.  The Sec. II-E loop currently interleaves the logical threads
/// deterministically on one host thread, but these are exactly the
/// structures a parallel driver would race on, so they live behind one
/// annotated mutex (common/sync.hpp): every mutation goes through a locked
/// entry point and clang's -Wthread-safety proves the discipline.
class MtChip {
 public:
  MtChip(const MachineConfig& cfg, const workload::SplashProfile& p, SchemeKind kind)
      : cfg_(cfg),
        p_(p),
        kind_(kind),
        mesh_(cfg.mesh_width, cfg.mesh_height),
        memsys_(cfg.num_mcus, cfg.mesh_width, cfg.mesh_height, cfg.mcu),
        directory_(cfg.cores),
        ctrl_(mesh_, cfg.delta, cfg.ways_per_bank, cfg.sets_log2),
        all_(mem::full_mask(cfg.ways_per_bank)),
        acct_(static_cast<std::size_t>(p.threads)) {
    for (int b = 0; b < cfg_.cores; ++b)
      banks_.emplace_back(static_cast<std::uint32_t>(cfg_.sets_per_bank()),
                          cfg_.ways_per_bank);
    for (int c = 0; c < cfg_.cores; ++c) umons_.emplace_back(cfg_.umon);
    inputs_.resize(static_cast<std::size_t>(cfg_.cores));
    for (int c = 0; c < cfg_.cores; ++c) {
      inputs_[static_cast<std::size_t>(c)] = core::TileInput{
          &umons_[static_cast<std::size_t>(c)], p_.mlp, c < p_.threads,
          /*process_id=*/1};
    }
    bank_lists_.resize(static_cast<std::size_t>(cfg_.cores));
    bank_cursors_.resize(static_cast<std::size_t>(cfg_.cores));
    mcu_reqs_.assign(static_cast<std::size_t>(cfg_.cores),
                     std::vector<std::uint64_t>(
                         static_cast<std::size_t>(memsys_.num_mcus())));
  }

  /// Runs the distributed policy step at an epoch boundary (kDelta only).
  void begin_epoch(std::uint64_t epoch) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    if (kind_ == SchemeKind::kDelta) ctrl_.tick(epoch, inputs_);
  }

  /// Issues one logical-thread access through the shared chip.
  void access(const workload::SplashAccess& a) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    access_locked(a);
  }

  void end_epoch() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    memsys_.end_epoch(cfg_.epoch_cycles);
  }

  /// Mean LLC latency across everything issued so far (`fallback` when
  /// nothing has been issued yet); feeds the interval model's CPI refresh.
  double avg_latency_or(double fallback) const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    double lat_sum = 0.0;
    std::uint64_t n = 0;
    for (const ThreadAcct& t : acct_) {
      lat_sum += t.lat_sum;
      n += t.accesses;
    }
    return n ? lat_sum / static_cast<double>(n) : fallback;
  }

  /// Final aggregation: region-of-interest metric is the longest thread
  /// (paper Sec. IV-C).
  void summarize(MtResult& res) const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    double worst = 0.0;
    double total_instr = 0.0, total_cycles = 0.0;
    std::uint64_t hits = 0, accesses = 0;
    double hop_sum = 0.0;
    for (const ThreadAcct& t : acct_) {
      const double instr = static_cast<double>(t.accesses) / (p_.apki / 1000.0);
      const double cycles = instr * p_.cpi_base + t.lat_sum / p_.mlp;
      worst = std::max(worst, cycles);
      total_instr += instr;
      total_cycles += cycles;
      hits += t.hits;
      accesses += t.accesses;
      hop_sum += t.hop_sum;
    }
    res.roi_cycles = worst;
    res.mean_ipc = total_cycles > 0
                       ? total_instr / (total_cycles / p_.threads) / p_.threads
                       : 0.0;
    res.miss_rate =
        accesses ? 1.0 - static_cast<double>(hits) / static_cast<double>(accesses) : 0.0;
    res.mean_hops = accesses ? hop_sum / static_cast<double>(accesses) : 0.0;
    res.private_pages = classifier_.private_pages();
    res.shared_pages = classifier_.shared_pages();
    res.reclassifications = classifier_.reclassifications();
    res.page_invalidation_lines = page_invalidation_lines_;
  }

  // ---- Staged epoch engine (cfg.intra_jobs > 1). ----
  //
  // The serial loop issues `budget` rounds of one access per logical
  // thread, all through access_locked in global draw order.  The staged
  // engine reproduces that computation the same way sim::IntraEngine does
  // for Chip, with one extra wrinkle: two access classes couple banks
  // together mid-epoch —
  //   * a kDelta page reclassification bulk-invalidates the page across
  //     every bank before the access proceeds;
  //   * a kPrivate shared-page access goes through the MESIF directory and
  //     may invalidate remote copies.
  // Those execute serially at their exact sequence position; the runs of
  // bank-confined accesses between them are applied bank-parallel, each
  // bank walking its staged indices in ascending sequence order (which is
  // the serial order as seen by that bank).  Latencies are written back
  // per access and folded into the per-thread double accumulators in
  // global sequence order afterwards, so each ThreadAcct sees its own
  // accesses in exactly the serial order — every component is integral
  // cycles, making the double sums bit-equal.

  /// Draws and routes one epoch's accesses (budget rounds x threads) in
  /// global order.  Page classification and UMON updates happen here, on
  /// the staging thread, exactly as the serial loop ordered them.
  void stage_epoch(workload::SplashGen& gen, std::uint64_t budget) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    staged_.clear();
    coupled_.clear();
    for (auto& list : bank_lists_) list.clear();
    std::fill(bank_cursors_.begin(), bank_cursors_.end(), 0u);
    for (auto& per_bank : mcu_reqs_)
      std::fill(per_bank.begin(), per_bank.end(), 0u);
    staged_.reserve(budget * static_cast<std::uint64_t>(p_.threads));

    for (std::uint64_t i = 0; i < budget; ++i) {
      for (int t = 0; t < p_.threads; ++t) {
        const workload::SplashAccess a = gen.next();
        const CoreId c = a.thread;
        umons_[static_cast<std::size_t>(c)].access(a.block);
        const core::PageEvent ev = classifier_.on_access(c, addr_of_block(a.block));

        StagedMt s;
        s.a = a;
        s.mask = all_;
        s.flip = kind_ == SchemeKind::kDelta && ev.reclassified;
        switch (kind_) {
          case SchemeKind::kSnuca:
            s.bank = mem::snuca_bank(a.block, cfg_.cores);
            s.set = mem::snuca_set_index(a.block, cfg_.cores, cfg_.sets_log2);
            break;
          case SchemeKind::kPrivate:
            s.bank = c;
            s.set = mem::set_index(a.block, cfg_.sets_log2);
            s.coupled = ev.cls == core::PageClass::kShared;
            break;
          default:
            if (ev.cls == core::PageClass::kShared) {
              s.bank = mem::snuca_bank(a.block, cfg_.cores);
              s.set = mem::snuca_set_index(a.block, cfg_.cores, cfg_.sets_log2);
            } else {
              s.bank = ctrl_.bank_for(c, a.block);
              s.set = mem::set_index(a.block, cfg_.sets_log2);
              s.mask = ctrl_.insert_mask(c, s.bank);
              if (s.mask == 0) s.mask = all_;  // Defensive: never bypass here.
            }
            break;
        }
        const auto seq = static_cast<std::uint32_t>(staged_.size());
        if (s.coupled || s.flip)
          coupled_.push_back(seq);
        else
          bank_lists_[static_cast<std::size_t>(s.bank)].push_back(seq);
        staged_.push_back(s);
      }
    }
  }

  /// Applies the staged epoch: bank-parallel segments between coupling
  /// points, coupling points serial, then the sequential stat reduction.
  void apply_staged(WorkerPool& pool, std::uint64_t epoch) EXCLUDES(mu_) {
    const obs::prof::ScopedSpan span(obs::prof::Phase::kMtApply, epoch);
    const unsigned parties = pool.parties();
    const std::size_t cores = static_cast<std::size_t>(cfg_.cores);
    const auto run_segment = [&](std::uint32_t limit) {
      pool.run([&](unsigned w) {
        const IndexRange r = static_partition(cores, parties, w);
        for (std::size_t b = r.begin; b < r.end; ++b)
          apply_bank_until(static_cast<BankId>(b), limit);
      });
    };
    for (const std::uint32_t k : coupled_) {
      run_segment(k);
      apply_coupled(k);
    }
    run_segment(static_cast<std::uint32_t>(staged_.size()));
    reduce_epoch();
  }

 private:
  /// One staged mt access.  Routing fields are filled by stage_epoch;
  /// lat/hit are written during apply and folded by reduce_epoch.
  struct StagedMt {
    workload::SplashAccess a;
    BankId bank = 0;
    std::uint32_t set = 0;
    mem::WayMask mask = 0;
    bool coupled = false;  ///< kPrivate shared-page: directory path.
    bool flip = false;     ///< kDelta reclassification: cross-bank invalidate.
    bool hit = false;
    std::uint32_t lat = 0;
  };

  /// Applies bank `b`'s staged accesses with sequence below `limit`.
  ///
  /// Runs on pool workers without mu_: mutual exclusion is structural, not
  /// lock-based — each bank's cache state is touched by exactly one worker
  /// per segment, the driver thread is parked inside pool.run(), and MCU /
  /// controller state is only read through epoch-constant accessors.  The
  /// annotation analysis cannot express that sharding, hence the escape
  /// hatch; the TSan CI job checks it dynamically.
  void apply_bank_until(BankId b, std::uint32_t limit) NO_THREAD_SAFETY_ANALYSIS {
    const auto& list = bank_lists_[static_cast<std::size_t>(b)];
    std::uint32_t& cur = bank_cursors_[static_cast<std::size_t>(b)];
    auto& bank = banks_[static_cast<std::size_t>(b)];
    const Cycles fixed_lat = cfg_.llc_tag_latency + cfg_.llc_data_latency;
    while (cur < list.size() && list[cur] < limit) {
      StagedMt& s = staged_[list[cur]];
      ++cur;
      const auto r = bank.access(s.set, s.a.block, s.a.thread, s.mask);
      Cycles lat = mesh_.round_trip(s.a.thread, b) + fixed_lat;
      s.hit = r.hit;
      if (!r.hit) {
        const int mcu = memsys_.mcu_for(s.a.block);
        lat += mesh_.round_trip(b, memsys_.attach_tile(mcu)) +
               memsys_.mcu(mcu).current_request_latency();
        ++mcu_reqs_[static_cast<std::size_t>(b)][static_cast<std::size_t>(mcu)];
      }
      s.lat = static_cast<std::uint32_t>(lat);
    }
  }

  /// Serially executes coupled access `k` with the exact serial semantics
  /// (page-flip invalidation, directory protocol), recording lat/hit for
  /// the sequential reduction instead of bumping ThreadAcct directly.
  void apply_coupled(std::uint32_t k) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    StagedMt& s = staged_[k];
    const CoreId c = s.a.thread;
    if (s.flip) page_flip_invalidate(s.a.block);
    Cycles lat = mesh_.round_trip(c, s.bank) + cfg_.llc_tag_latency +
                 cfg_.llc_data_latency;
    bool hit;
    if (s.coupled) {
      auto& local = banks_[static_cast<std::size_t>(c)];
      hit = local.contains(s.set, s.a.block) && directory_.is_sharer(c, s.a.block);
      if (!hit) {
        const mem::CoherenceAction act = s.a.is_write
                                             ? directory_.on_write(c, s.a.block)
                                             : directory_.on_read(c, s.a.block);
        if (act.forwarded && act.forwarder != kInvalidCore) {
          lat += mesh_.round_trip(c, act.forwarder);
        } else {
          const int mcu = memsys_.mcu_for(s.a.block);
          lat += mesh_.round_trip(c, memsys_.attach_tile(mcu)) +
                 memsys_.mcu(mcu).request_latency();
        }
        const auto fill = local.access(s.set, s.a.block, c, all_);
        if (fill.evicted) directory_.on_evict(c, fill.victim_block);
      } else {
        local.touch(s.set, s.a.block);
        if (s.a.is_write) {
          const mem::CoherenceAction act = directory_.on_write(c, s.a.block);
          if (act.invalidations > 0) {
            for (int peer = 0; peer < cfg_.cores; ++peer)
              if (peer != c)
                banks_[static_cast<std::size_t>(peer)].invalidate(s.set, s.a.block);
          }
        }
      }
    } else {
      const auto r = banks_[static_cast<std::size_t>(s.bank)].access(
          s.set, s.a.block, c, s.mask);
      hit = r.hit;
      if (!hit) {
        const int mcu = memsys_.mcu_for(s.a.block);
        lat += mesh_.round_trip(s.bank, memsys_.attach_tile(mcu)) +
               memsys_.mcu(mcu).request_latency();
      }
    }
    s.hit = hit;
    s.lat = static_cast<std::uint32_t>(lat);
  }

  /// Folds lat/hops/hit into the per-thread accumulators in global
  /// sequence order (each ThreadAcct therefore sees its accesses in the
  /// serial order) and bulk-counts the deferred MCU requests.
  void reduce_epoch() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    for (const StagedMt& s : staged_) {
      ThreadAcct& t = acct_[static_cast<std::size_t>(s.a.thread)];
      t.lat_sum += static_cast<double>(s.lat);
      t.hop_sum += mesh_.hops(s.a.thread, s.bank);
      ++t.accesses;
      t.hits += s.hit ? 1 : 0;
    }
    const int mcus = memsys_.num_mcus();
    for (int m = 0; m < mcus; ++m) {
      std::uint64_t reqs = 0;
      for (const auto& per_bank : mcu_reqs_) reqs += per_bank[static_cast<std::size_t>(m)];
      memsys_.mcu(m).add_requests(reqs);
    }
  }

  void access_locked(const workload::SplashAccess& a) REQUIRES(mu_) {
    const CoreId c = a.thread;
    umons_[static_cast<std::size_t>(c)].access(a.block);

    const core::PageEvent ev = classifier_.on_access(c, addr_of_block(a.block));
    if (kind_ == SchemeKind::kDelta && ev.reclassified) page_flip_invalidate(a.block);

    BankId bank;
    std::uint32_t set;
    mem::WayMask mask = all_;
    switch (kind_) {
      case SchemeKind::kSnuca:
        bank = mem::snuca_bank(a.block, cfg_.cores);
        set = mem::snuca_set_index(a.block, cfg_.cores, cfg_.sets_log2);
        break;
      case SchemeKind::kPrivate:
        bank = c;
        set = mem::set_index(a.block, cfg_.sets_log2);
        break;
      default:  // kDelta (and the centralized scheme behaves the same here).
        if (ev.cls == core::PageClass::kShared) {
          bank = mem::snuca_bank(a.block, cfg_.cores);
          set = mem::snuca_set_index(a.block, cfg_.cores, cfg_.sets_log2);
        } else {
          bank = ctrl_.bank_for(c, a.block);
          set = mem::set_index(a.block, cfg_.sets_log2);
          mask = ctrl_.insert_mask(c, bank);
          if (mask == 0) mask = all_;  // Defensive: never bypass here.
        }
        break;
    }

    const int hops = mesh_.hops(c, bank);
    double lat = static_cast<double>(mesh_.round_trip(c, bank) + cfg_.llc_tag_latency +
                                     cfg_.llc_data_latency);

    bool hit;
    if (kind_ == SchemeKind::kPrivate && ev.cls == core::PageClass::kShared) {
      // Private LLC with shared data: replicate locally, keep coherent via
      // the MESIF directory (write-invalidations remove remote copies).
      auto& local = banks_[static_cast<std::size_t>(c)];
      hit = local.contains(set, a.block) && directory_.is_sharer(c, a.block);
      if (!hit) {
        const mem::CoherenceAction act =
            a.is_write ? directory_.on_write(c, a.block) : directory_.on_read(c, a.block);
        if (act.forwarded && act.forwarder != kInvalidCore) {
          lat += static_cast<double>(mesh_.round_trip(c, act.forwarder));
        } else {
          const int mcu = memsys_.mcu_for(a.block);
          lat += static_cast<double>(mesh_.round_trip(c, memsys_.attach_tile(mcu))) +
                 static_cast<double>(memsys_.mcu(mcu).request_latency());
        }
        const auto fill = local.access(set, a.block, c, all_);
        if (fill.evicted) directory_.on_evict(c, fill.victim_block);
      } else {
        local.touch(set, a.block);
        if (a.is_write) {
          const mem::CoherenceAction act = directory_.on_write(c, a.block);
          if (act.invalidations > 0) {
            for (int peer = 0; peer < cfg_.cores; ++peer)
              if (peer != c) banks_[static_cast<std::size_t>(peer)].invalidate(set, a.block);
          }
        }
      }
    } else {
      const auto r = banks_[static_cast<std::size_t>(bank)].access(set, a.block, c, mask);
      hit = r.hit;
      if (!hit) {
        const int mcu = memsys_.mcu_for(a.block);
        lat += static_cast<double>(mesh_.round_trip(bank, memsys_.attach_tile(mcu))) +
               static_cast<double>(memsys_.mcu(mcu).request_latency());
      }
    }

    ThreadAcct& t = acct_[static_cast<std::size_t>(c)];
    t.lat_sum += lat;
    t.hop_sum += hops;
    ++t.accesses;
    t.hits += hit ? 1 : 0;
  }

  void page_flip_invalidate(BlockAddr block) REQUIRES(mu_) {
    // Bulk-invalidate every line of the flipped page wherever it resides
    // (paper Sec. II-E: "when a page is first classified as shared all the
    // lines belonging to the page are invalidated").
    const std::uint64_t page = page_of(addr_of_block(block));
    const BlockAddr first = block_of(page * kPageBytes);
    for (BlockAddr b = first; b < first + kPageBytes / kLineBytes; ++b) {
      for (int bank = 0; bank < cfg_.cores; ++bank) {
        if (banks_[static_cast<std::size_t>(bank)].invalidate(
                mem::set_index(b, cfg_.sets_log2), b))
          ++page_invalidation_lines_;
        if (banks_[static_cast<std::size_t>(bank)].invalidate(
                mem::snuca_set_index(b, cfg_.cores, cfg_.sets_log2), b))
          ++page_invalidation_lines_;
      }
    }
  }

  const MachineConfig& cfg_;
  const workload::SplashProfile& p_;
  const SchemeKind kind_;
  mutable common::Mutex mu_;
  noc::Mesh mesh_;  ///< Immutable topology; safe to read unlocked.
  noc::MemorySystem memsys_ GUARDED_BY(mu_);
  std::vector<mem::SetAssocCache> banks_ GUARDED_BY(mu_);
  core::PageClassifier classifier_ GUARDED_BY(mu_);
  mem::MesifDirectory directory_;  ///< Internally synchronised (own mutex).
  core::DeltaController ctrl_ GUARDED_BY(mu_);
  std::vector<umon::Umon> umons_ GUARDED_BY(mu_);
  std::vector<core::TileInput> inputs_ GUARDED_BY(mu_);
  const mem::WayMask all_;
  std::vector<ThreadAcct> acct_ GUARDED_BY(mu_);
  std::uint64_t page_invalidation_lines_ GUARDED_BY(mu_) = 0;

  // Staged-engine buffers (reused across epochs).  Deliberately outside
  // mu_'s jurisdiction: stage_epoch/apply_coupled/reduce_epoch touch them
  // from the driver thread, apply_bank_until from structurally-sharded
  // pool workers (one bank = one worker per segment, driver parked in
  // pool.run) — a discipline the lock annotations cannot express.
  std::vector<StagedMt> staged_;
  std::vector<std::uint32_t> coupled_;  ///< Sequence numbers, ascending.
  std::vector<std::vector<std::uint32_t>> bank_lists_;  ///< Per bank, ascending.
  std::vector<std::uint32_t> bank_cursors_;
  std::vector<std::vector<std::uint64_t>> mcu_reqs_;  ///< [bank][mcu] deferred.
};

}  // namespace

MtResult run_multithreaded(const MachineConfig& cfg, const workload::SplashProfile& p,
                           SchemeKind kind, MtConfig mtc) {
  assert(p.threads <= cfg.cores);
  MtChip chip(cfg, p, kind);
  workload::SplashGen gen(p, mtc.seed);
  MtResult res;
  res.app = p.name;
  res.scheme = std::string(to_string(kind));

  // cfg.intra_jobs > 1 (or 0 = hardware threads) switches each epoch from
  // the serial access loop to the staged bank-parallel engine; results are
  // byte-identical either way (see MtChip's staged-engine comment).
  unsigned workers = cfg.intra_jobs <= 0 ? std::thread::hardware_concurrency()
                                         : static_cast<unsigned>(cfg.intra_jobs);
  if (workers == 0) workers = 1;
  workers = std::min(workers, static_cast<unsigned>(cfg.cores));
  std::unique_ptr<WorkerPool> pool;
  if (workers > 1) pool = std::make_unique<WorkerPool>(workers);

  // Access budget per epoch per thread from the interval model.
  double cpi_est = p.cpi_base + p.apki / 1000.0 * 100.0 / p.mlp;
  const std::uint64_t total_per_thread = mtc.accesses_per_thread;
  std::uint64_t issued_per_thread = 0;
  std::uint64_t epoch = 0;

  while (issued_per_thread < total_per_thread) {
    chip.begin_epoch(epoch);
    const std::uint64_t budget = std::min<std::uint64_t>(
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(static_cast<double>(cfg.epoch_cycles) /
                                          cpi_est * p.apki / 1000.0)),
        total_per_thread - issued_per_thread);
    if (pool != nullptr) {
      chip.stage_epoch(gen, budget);
      chip.apply_staged(*pool, epoch);
    } else {
      for (std::uint64_t i = 0; i < budget; ++i)
        for (int t = 0; t < p.threads; ++t) chip.access(gen.next());
    }
    issued_per_thread += budget;
    chip.end_epoch();

    // Refresh the CPI estimate from the measured epoch latency.
    const double avg_lat = chip.avg_latency_or(100.0);
    cpi_est = p.cpi_base + p.apki / 1000.0 * avg_lat / p.mlp;
    ++epoch;
  }

  chip.summarize(res);
  return res;
}

}  // namespace delta::sim
