#include "sim/intra.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <thread>

#include "sim/chip.hpp"

namespace delta::sim {

namespace {
/// Outer capacity reserved per (core,bank) slice list at construction, so
/// typical epochs never reallocate the slice spine on the hot path.
constexpr std::size_t kSliceSpineReserve = 16;
}  // namespace

IntraEngine::IntraEngine(Chip& chip, unsigned threads)
    : chip_(chip),
      pool_(threads, WorkerPool::Options{chip.cfg_.intra_pin}),
      profile_(threads) {
  pool_.set_hooks(&profile_);
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  const std::size_t mcus = static_cast<std::size_t>(chip_.memsys().num_mcus());
  stages_.resize(cores);
  tallies_.resize(cores);
  remote_.resize(cores);
  wstats_.resize(pool_.parties());
  task_errors_.resize(pool_.parties());
  staged_slices_ = std::make_unique<std::atomic<std::uint32_t>[]>(cores);
  stage_claim_ = std::make_unique<std::atomic<std::uint8_t>[]>(cores);
  reduce_claim_ = std::make_unique<std::atomic<std::uint8_t>[]>(cores);
  apply_claim_ = std::make_unique<SeqClaim[]>(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    staged_slices_[c].store(0, std::memory_order_relaxed);
    stage_claim_[c].store(0, std::memory_order_relaxed);
    reduce_claim_[c].store(0, std::memory_order_relaxed);
  }

  // First-touch warm pass: worker w faults in the buffers of its static
  // home cores/banks, so with pinning enabled (cfg.intra_pin) the pages
  // land on the node of the worker most likely to use them.  The profile
  // is not armed yet, so the section records nothing.
  const unsigned parties = pool_.parties();
  pool_.run([&](unsigned w) {
    const IndexRange r = static_partition(cores, parties, w);
    for (std::size_t c = r.begin; c < r.end; ++c) {
      CoreStage& st = stages_[c];
      st.to_bank.resize(cores);
      for (auto& bank_lists : st.to_bank) bank_lists.reserve(kSliceSpineReserve);
    }
    for (std::size_t b = r.begin; b < r.end; ++b) {
      BankTally& t = tallies_[b];
      t.hits.resize(cores);
      t.misses.resize(cores);
      t.mcu_reqs.resize(mcus);
      t.cursor.resize(cores);
    }
  });
}

void IntraEngine::prepare_epoch() {
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  const std::uint64_t batch = chip_.interleave_batch();
  std::uint64_t max_target = 0;
  for (std::size_t c = 0; c < cores; ++c)
    max_target = std::max(max_target, chip_.epoch_targets_[c]);
  const std::uint64_t rounds = (max_target + batch - 1) / batch;

  // Apply-task granularity: enough slices that work can spread and overlap
  // staging, few enough that claim/readiness polling stays in the noise.
  std::uint64_t slice_rounds =
      chip_.cfg_.intra_apply_rounds > 0
          ? static_cast<std::uint64_t>(chip_.cfg_.intra_apply_rounds)
          : std::clamp<std::uint64_t>(rounds / (4 * pool_.parties()), 8, 256);
  slice_accesses_ = slice_rounds * batch;
  num_slices_ = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, (rounds + slice_rounds - 1) / slice_rounds));

  for (std::size_t c = 0; c < cores; ++c) {
    CoreStage& st = stages_[c];
    for (auto& bank_lists : st.to_bank)
      if (bank_lists.size() < num_slices_) bank_lists.resize(num_slices_);
  }
  for (std::size_t c = 0; c < cores; ++c) {
    staged_slices_[c].store(0, std::memory_order_relaxed);
    stage_claim_[c].store(0, std::memory_order_relaxed);
    reduce_claim_[c].store(0, std::memory_order_relaxed);
    apply_claim_[c].reset(0);
  }
  stage_done_.store(0, std::memory_order_relaxed);
  banks_done_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  for (WorkerStats& ws : wstats_) ws = WorkerStats{};
}

void IntraEngine::stage_core(CoreId c) {
  const obs::prof::ScopedSite timer(obs::prof::Site::kStageCore);
  const AppSlot& s = chip_.slots_[static_cast<std::size_t>(c)];
  CoreStage& st = stages_[static_cast<std::size_t>(c)];
  const std::uint64_t target = chip_.epoch_targets_[static_cast<std::size_t>(c)];
  for (auto& bank_lists : st.to_bank)
    for (std::uint32_t sl = 0; sl < num_slices_; ++sl) bank_lists[sl].clear();
  st.acc.clear();
  std::atomic<std::uint32_t>& mark = staged_slices_[static_cast<std::size_t>(c)];
  if (!s.active || target == 0) {
    mark.store(UINT32_MAX, std::memory_order_release);
    return;
  }

  st.acc.resize(static_cast<std::size_t>(target));
  workload::TraceGen* const gen = s.gen.get();
  umon::Umon* const um = s.umon.get();
  const Scheme* const scheme = chip_.scheme_.get();
  const std::uint64_t per_slice = slice_accesses_;
  std::uint32_t published = 0;
  // Same two-stage pipeline as Chip::do_access_batch: generate one access
  // ahead and prefetch its UMON stack while the current one is mapped and
  // staged.  Component call order is unchanged, so staging stays
  // byte-identical to the serial loop.
  BlockAddr next_block = gen->next();
  for (std::uint64_t i = 0; i < target; ++i) {
    const BlockAddr block = next_block;
    um->access(block);
    if (i + 1 < target) {
      next_block = gen->next();
      um->prefetch(next_block);
    }
    const BankTarget t = scheme->map(chip_, c, block);
    Staged& a = st.acc[static_cast<std::size_t>(i)];
    a.block = block;
    a.set = t.set;
    a.bank = static_cast<std::uint16_t>(t.bank);
    st.to_bank[static_cast<std::size_t>(t.bank)][i / per_slice].push_back(
        static_cast<std::uint32_t>(i));
    // Publish the slice watermark once its segments are final: appliers
    // acquire it and may then read everything staged below it.
    if ((i + 1) % per_slice == 0)
      mark.store(++published, std::memory_order_release);
  }
  mark.store(UINT32_MAX, std::memory_order_release);
}

void IntraEngine::apply_bank_slice(BankId b, std::uint32_t slice,
                                   obs::prof::EngineProfile::MergeScratch* ms) {
  const obs::prof::ScopedSite timer(obs::prof::Site::kApplyBank);
  const int cores = chip_.cores();
  BankTally& tally = tallies_[static_cast<std::size_t>(b)];
  if (slice == 0) {
    std::fill(tally.hits.begin(), tally.hits.end(), 0);
    std::fill(tally.misses.begin(), tally.misses.end(), 0);
    std::fill(tally.mcu_reqs.begin(), tally.mcu_reqs.end(), 0);
  }
  // Cursors index into this slice's segments only; the chain resets them
  // at every slice boundary.
  std::fill(tally.cursor.begin(), tally.cursor.end(), 0);

  mem::SetAssocCache& bank = chip_.banks_[static_cast<std::size_t>(b)];
  Scheme* const scheme = chip_.scheme_.get();
  const noc::MemorySystem& memsys = chip_.memsys_;
  const noc::Mesh& mesh = chip_.mesh_;
  const Cycles fixed_lat =
      chip_.cfg_.llc_tag_latency + chip_.cfg_.llc_data_latency;

  // Canonical merge: the serial loop issues round-robin batches of
  // interleave_batch() per core, so this bank saw its accesses in ascending
  // (round, core, index) order with round = index / batch.  Each per-core
  // segment is already ascending; walk them round by round.  Slices chunk
  // the very same order, so concatenating the slice chain reproduces the
  // serial sequence exactly.
  const std::uint32_t kBatch = static_cast<std::uint32_t>(chip_.interleave_batch());
  for (;;) {
    // The round scan below is the serialization the merge pays for
    // determinism; at kFull profiling one round in eight is clocked (two
    // now_ns() reads) so the serial fraction can be estimated without
    // doubling the scan cost.
    const bool sample = ms != nullptr && (ms->rounds & 7u) == 0;
    const std::uint64_t scan_t0 = sample ? obs::prof::now_ns() : 0;
    // Lowest unconsumed round across all cores (within this slice).
    std::uint32_t round = UINT32_MAX;
    for (int c = 0; c < cores; ++c) {
      const auto& seg = stages_[static_cast<std::size_t>(c)]
                            .to_bank[static_cast<std::size_t>(b)][slice];
      const std::size_t cur = tally.cursor[static_cast<std::size_t>(c)];
      if (cur < seg.size()) round = std::min(round, seg[cur] / kBatch);
    }
    if (ms != nullptr) {
      ++ms->rounds;
      if (sample) {
        ms->scan_ns += obs::prof::now_ns() - scan_t0;
        ++ms->sampled_rounds;
      }
    }
    if (round == UINT32_MAX) break;

    for (int c = 0; c < cores; ++c) {
      CoreStage& st = stages_[static_cast<std::size_t>(c)];
      const auto& seg = st.to_bank[static_cast<std::size_t>(b)][slice];
      std::size_t& cur = tally.cursor[static_cast<std::size_t>(c)];
      while (cur < seg.size() && seg[cur] / kBatch == round) {
        Staged& a = st.acc[seg[cur]];
        ++cur;
        // Pull the next staged access's set rows toward L1 while this one
        // computes its masks and latency (hint only — no state change).
        if (cur < seg.size()) bank.prefetch_set(st.acc[seg[cur]].set);
        const mem::WayMask mask = scheme->insert_mask(chip_, c, b);
        const CoreId evict_pref = scheme->evict_preference(chip_, c, b);
        const mem::AccessResult res = bank.access(a.set, a.block, c, mask, evict_pref);
        Cycles lat = mesh.round_trip(c, b) + fixed_lat;
        if (res.hit) {
          ++tally.hits[static_cast<std::size_t>(c)];
        } else {
          if (res.way >= 0) scheme->on_insertion(chip_, c, b, res);
          const int mcu = memsys.mcu_for(a.block);
          const int attach = memsys.attach_tile(mcu);
          lat += mesh.round_trip(b, attach) +
                 memsys.mcu(mcu).current_request_latency();
          ++tally.misses[static_cast<std::size_t>(c)];
          ++tally.mcu_reqs[static_cast<std::size_t>(mcu)];
        }
        a.lat = static_cast<std::uint32_t>(lat);
      }
    }
  }
}

void IntraEngine::reduce_core(CoreId c, bool measuring) {
  const obs::prof::ScopedSite timer(obs::prof::Site::kReduceCore);
  AppSlot& s = chip_.slots_[static_cast<std::size_t>(c)];
  const CoreStage& st = stages_[static_cast<std::size_t>(c)];
  const noc::Mesh& mesh = chip_.mesh_;
  std::uint64_t remote = 0;
  // Stream order == the order the serial loop fed this core's accumulators
  // (interleaving only reorders accesses *across* cores), so these in-place
  // double additions reproduce the serial rounding bit-for-bit.
  for (const Staged& a : st.acc) {
    const int hops = mesh.hops(c, a.bank);
    remote += hops > 0 ? 1 : 0;
    s.epoch_lat_sum += static_cast<double>(a.lat);
    if (measuring) {
      s.lat_sum += static_cast<double>(a.lat);
      s.hop_sum += static_cast<double>(hops);
    }
  }
  remote_[static_cast<std::size_t>(c)] = remote;
  s.epoch_accesses += st.acc.size();
}

void IntraEngine::record_buffer_occupancy() {
  std::uint64_t pairs = 0, nonzero = 0;
  for (const CoreStage& st : stages_) {
    for (const auto& bank_lists : st.to_bank) {
      std::uint64_t staged = 0;
      for (std::uint32_t sl = 0; sl < num_slices_; ++sl)
        staged += bank_lists[sl].size();
      ++pairs;
      if (staged > 0) {
        ++nonzero;
        profile_.add_occupancy(staged, 0, 0);
      }
    }
  }
  profile_.add_occupancy(0, pairs, nonzero);
}

std::uint32_t IntraEngine::staged_min() const {
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  std::uint32_t m = UINT32_MAX;
  // One acquire load per core: reading core c's own watermark is what makes
  // core c's staged data visible to this thread, so the minimum must be
  // recomputed here rather than cached by another worker.
  for (std::size_t c = 0; c < cores; ++c)
    m = std::min(m, staged_slices_[c].load(std::memory_order_acquire));
  return m;
}

void IntraEngine::run_stage_tasks(unsigned w) {
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  const IndexRange home = static_partition(cores, pool_.parties(), w);
  WorkerStats& ws = wstats_[static_cast<std::size_t>(w)];
  const auto try_core = [&](std::size_t c) {
    // Relaxed claim: only decides *which* worker stages the core; the
    // core's RNG/monitor state was last written in the previous epoch and
    // is published by the pool's barriers.
    if (stage_claim_[c].exchange(1, std::memory_order_relaxed) != 0) return;
    profile_.task_begin(w, obs::prof::Phase::kStage);
    stage_core(static_cast<CoreId>(c));
    ++ws.tasks;
    if (c < home.begin || c >= home.end) ++ws.stolen;
    stage_done_.fetch_add(1, std::memory_order_relaxed);
  };
  for (std::size_t c = home.begin; c < home.end; ++c) {
    if (failed_.load(std::memory_order_relaxed)) return;
    try_core(c);
  }
  // Steal order fixed by task id (ascending core), so two runs schedule the
  // same candidates in the same order — only the claim winner varies, and
  // that never affects results.
  for (std::size_t c = 0; c < cores; ++c) {
    if (failed_.load(std::memory_order_relaxed)) return;
    try_core(c);
  }
}

void IntraEngine::run_apply_tasks(unsigned w) {
  const std::size_t banks = static_cast<std::size_t>(chip_.cores());
  const std::size_t cores = banks;
  const IndexRange home = static_partition(banks, pool_.parties(), w);
  WorkerStats& ws = wstats_[static_cast<std::size_t>(w)];
  obs::prof::EngineProfile::MergeScratch* const ms =
      profile_.armed() && profile_.full() ? &profile_.merge_scratch(w) : nullptr;
  while (banks_done_.load(std::memory_order_acquire) <
         static_cast<std::uint32_t>(banks)) {
    if (failed_.load(std::memory_order_relaxed)) return;
    const std::uint32_t ready = staged_min();  // Slices safe to apply.
    bool progressed = false;
    for (std::size_t k = 0; k < banks; ++k) {
      const std::size_t b = (home.begin + k) % banks;
      SeqClaim& claim = apply_claim_[b];
      const std::uint32_t s = claim.next_unit();
      if (s >= num_slices_ || s >= ready) continue;
      if (!claim.try_claim(s)) continue;
      const bool overlapped =
          stage_done_.load(std::memory_order_relaxed) <
          static_cast<std::uint32_t>(cores);
      profile_.task_begin(w, obs::prof::Phase::kApply);
      apply_bank_slice(static_cast<BankId>(b), s, ms);
      claim.complete(s);
      ++ws.tasks;
      ++ws.ranges;
      if (overlapped) ++ws.overlapped;
      if (b < home.begin || b >= home.end) ++ws.stolen;
      if (s + 1 == num_slices_)
        banks_done_.fetch_add(1, std::memory_order_release);
      progressed = true;
    }
    if (!progressed) std::this_thread::yield();
  }
}

void IntraEngine::run_reduce_tasks(unsigned w, bool measuring) {
  // Entered only after this worker observed banks_done_ == banks with an
  // acquire load, which (through the per-bank SeqClaim release chains)
  // happens-after every apply write — and transitively every stage write.
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  const IndexRange home = static_partition(cores, pool_.parties(), w);
  WorkerStats& ws = wstats_[static_cast<std::size_t>(w)];
  const auto try_core = [&](std::size_t c) {
    if (reduce_claim_[c].exchange(1, std::memory_order_relaxed) != 0) return;
    profile_.task_begin(w, obs::prof::Phase::kReduce);
    reduce_core(static_cast<CoreId>(c), measuring);
    ++ws.tasks;
    if (c < home.begin || c >= home.end) ++ws.stolen;
  };
  for (std::size_t c = home.begin; c < home.end; ++c) {
    if (failed_.load(std::memory_order_relaxed)) return;
    try_core(c);
  }
  for (std::size_t c = 0; c < cores; ++c) {
    if (failed_.load(std::memory_order_relaxed)) return;
    try_core(c);
  }
}

void IntraEngine::worker_run(unsigned w, bool measuring) {
  try {
    run_stage_tasks(w);
    if (!failed_.load(std::memory_order_relaxed)) run_apply_tasks(w);
    if (!failed_.load(std::memory_order_relaxed)) run_reduce_tasks(w, measuring);
  } catch (...) {
    task_errors_[static_cast<std::size_t>(w)] = std::current_exception();
    failed_.store(true, std::memory_order_relaxed);
  }
}

void IntraEngine::rethrow_task_errors() {
  for (std::size_t w = 0; w < task_errors_.size(); ++w) {
    if (task_errors_[w]) {
      const std::exception_ptr e = task_errors_[w];
      for (auto& slot : task_errors_) slot = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void IntraEngine::run_epoch_accesses(bool measuring) {
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  const std::uint64_t epoch = chip_.epoch_;
  prepare_epoch();

  // One fused pool section per epoch: two barrier crossings where the
  // three-phase lockstep paid six.
  profile_.begin_section(obs::prof::Phase::kPipeline, epoch);
  pool_.run([&](unsigned w) { worker_run(w, measuring); });
  profile_.end_section();
  rethrow_task_errors();
  if (profile_.armed() && profile_.full()) record_buffer_occupancy();

  const obs::prof::ScopedSpan tail_span(obs::prof::Phase::kSerialTail, epoch);
  // Serial reduction of the integer tallies in fixed bank order.
  std::uint64_t total_remote = 0, total_misses = 0;
  for (std::size_t c = 0; c < cores; ++c) total_remote += remote_[c];
  for (std::size_t c = 0; c < cores; ++c) {
    std::uint64_t hits = 0, misses = 0;
    for (const BankTally& t : tallies_) {
      hits += t.hits[c];
      misses += t.misses[c];
    }
    total_misses += misses;
    if (measuring) {
      AppSlot& s = chip_.slots_[c];
      s.llc_hits += hits;
      s.llc_misses += misses;
    }
  }
  chip_.traffic_.count(noc::MsgType::kLlcRequest, total_remote);
  chip_.traffic_.count(noc::MsgType::kLlcResponse, total_remote);
  chip_.traffic_.count(noc::MsgType::kMemRequest, total_misses);
  chip_.traffic_.count(noc::MsgType::kMemResponse, total_misses);
  const int mcus = chip_.memsys_.num_mcus();
  for (int m = 0; m < mcus; ++m) {
    std::uint64_t reqs = 0;
    for (const BankTally& t : tallies_) reqs += t.mcu_reqs[static_cast<std::size_t>(m)];
    chip_.memsys_.mcu(m).add_requests(reqs);
  }
  profile_.end_epoch(epoch);

  // Machine-independent engine-health accounting (any profiling level).
  std::uint64_t tasks = 0, stolen = 0, ranges = 0, overlapped = 0;
  for (const WorkerStats& s : wstats_) {
    tasks += s.tasks;
    stolen += s.stolen;
    ranges += s.ranges;
    overlapped += s.overlapped;
  }
  profile_.count_epoch(/*pool_sections=*/1, tasks, stolen, ranges, overlapped);
}

std::unique_ptr<IntraEngine> make_intra_engine(Chip& chip, int intra_jobs) {
  unsigned n = intra_jobs <= 0 ? std::thread::hardware_concurrency()
                               : static_cast<unsigned>(intra_jobs);
  if (n == 0) n = 1;
  const unsigned cores = static_cast<unsigned>(chip.cores());
  if (n > cores) n = cores;  // More shards than banks cannot help.
  if (n <= 1) return nullptr;
  return std::make_unique<IntraEngine>(chip, n);
}

}  // namespace delta::sim
