#include "sim/intra.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <thread>

#include "sim/chip.hpp"

namespace delta::sim {

IntraEngine::IntraEngine(Chip& chip, unsigned threads)
    : chip_(chip), pool_(threads), profile_(threads) {
  pool_.set_hooks(&profile_);
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  stages_.resize(cores);
  for (CoreStage& st : stages_) st.to_bank.resize(cores);
  tallies_.resize(cores);
  const std::size_t mcus = static_cast<std::size_t>(chip_.memsys().num_mcus());
  for (BankTally& t : tallies_) {
    t.hits.resize(cores);
    t.misses.resize(cores);
    t.mcu_reqs.resize(mcus);
    t.cursor.resize(cores);
  }
  remote_.resize(cores);
}

void IntraEngine::stage_core(CoreId c) {
  const obs::prof::ScopedSite timer(obs::prof::Site::kStageCore);
  const AppSlot& s = chip_.slots_[static_cast<std::size_t>(c)];
  CoreStage& st = stages_[static_cast<std::size_t>(c)];
  const std::uint64_t target = chip_.epoch_targets_[static_cast<std::size_t>(c)];
  for (auto& list : st.to_bank) list.clear();
  st.acc.clear();
  if (!s.active || target == 0) return;

  st.acc.resize(static_cast<std::size_t>(target));
  workload::TraceGen* const gen = s.gen.get();
  umon::Umon* const um = s.umon.get();
  const Scheme* const scheme = chip_.scheme_.get();
  // Same two-stage pipeline as Chip::do_access_batch: generate one access
  // ahead and prefetch its UMON stack while the current one is mapped and
  // staged.  Component call order is unchanged, so staging stays
  // byte-identical to the serial loop.
  BlockAddr next_block = gen->next();
  for (std::uint64_t i = 0; i < target; ++i) {
    const BlockAddr block = next_block;
    um->access(block);
    if (i + 1 < target) {
      next_block = gen->next();
      um->prefetch(next_block);
    }
    const BankTarget t = scheme->map(chip_, c, block);
    Staged& a = st.acc[static_cast<std::size_t>(i)];
    a.block = block;
    a.set = t.set;
    a.bank = static_cast<std::uint16_t>(t.bank);
    st.to_bank[static_cast<std::size_t>(t.bank)].push_back(
        static_cast<std::uint32_t>(i));
  }
}

void IntraEngine::apply_bank(BankId b, obs::prof::EngineProfile::MergeScratch* ms) {
  const obs::prof::ScopedSite timer(obs::prof::Site::kApplyBank);
  const int cores = chip_.cores();
  BankTally& tally = tallies_[static_cast<std::size_t>(b)];
  std::fill(tally.hits.begin(), tally.hits.end(), 0);
  std::fill(tally.misses.begin(), tally.misses.end(), 0);
  std::fill(tally.mcu_reqs.begin(), tally.mcu_reqs.end(), 0);
  std::fill(tally.cursor.begin(), tally.cursor.end(), 0);

  mem::SetAssocCache& bank = chip_.banks_[static_cast<std::size_t>(b)];
  Scheme* const scheme = chip_.scheme_.get();
  const noc::MemorySystem& memsys = chip_.memsys_;
  const noc::Mesh& mesh = chip_.mesh_;
  const Cycles fixed_lat =
      chip_.cfg_.llc_tag_latency + chip_.cfg_.llc_data_latency;

  // Canonical merge: the serial loop issues round-robin batches of
  // kInterleaveBatch per core, so this bank saw its accesses in ascending
  // (round, core, index) order with round = index / kInterleaveBatch.  Each
  // per-core index list is already ascending; walk them round by round.
  constexpr std::uint32_t kBatch =
      static_cast<std::uint32_t>(Chip::kInterleaveBatch);
  for (;;) {
    // The round scan below is the serialization the merge pays for
    // determinism; at kFull profiling one round in eight is clocked (two
    // now_ns() reads) so the serial fraction can be estimated without
    // doubling the scan cost.
    const bool sample = ms != nullptr && (ms->rounds & 7u) == 0;
    const std::uint64_t scan_t0 = sample ? obs::prof::now_ns() : 0;
    // Lowest unconsumed round across all cores.
    std::uint32_t round = UINT32_MAX;
    for (int c = 0; c < cores; ++c) {
      const auto& list = stages_[static_cast<std::size_t>(c)]
                             .to_bank[static_cast<std::size_t>(b)];
      const std::size_t cur = tally.cursor[static_cast<std::size_t>(c)];
      if (cur < list.size()) round = std::min(round, list[cur] / kBatch);
    }
    if (ms != nullptr) {
      ++ms->rounds;
      if (sample) {
        ms->scan_ns += obs::prof::now_ns() - scan_t0;
        ++ms->sampled_rounds;
      }
    }
    if (round == UINT32_MAX) break;

    for (int c = 0; c < cores; ++c) {
      CoreStage& st = stages_[static_cast<std::size_t>(c)];
      const auto& list = st.to_bank[static_cast<std::size_t>(b)];
      std::size_t& cur = tally.cursor[static_cast<std::size_t>(c)];
      while (cur < list.size() && list[cur] / kBatch == round) {
        Staged& a = st.acc[list[cur]];
        ++cur;
        // Pull the next staged access's set rows toward L1 while this one
        // computes its masks and latency (hint only — no state change).
        if (cur < list.size()) bank.prefetch_set(st.acc[list[cur]].set);
        const mem::WayMask mask = scheme->insert_mask(chip_, c, b);
        const CoreId evict_pref = scheme->evict_preference(chip_, c, b);
        const mem::AccessResult res = bank.access(a.set, a.block, c, mask, evict_pref);
        Cycles lat = mesh.round_trip(c, b) + fixed_lat;
        if (res.hit) {
          ++tally.hits[static_cast<std::size_t>(c)];
        } else {
          if (res.way >= 0) scheme->on_insertion(chip_, c, b, res);
          const int mcu = memsys.mcu_for(a.block);
          const int attach = memsys.attach_tile(mcu);
          lat += mesh.round_trip(b, attach) +
                 memsys.mcu(mcu).current_request_latency();
          ++tally.misses[static_cast<std::size_t>(c)];
          ++tally.mcu_reqs[static_cast<std::size_t>(mcu)];
        }
        a.lat = static_cast<std::uint32_t>(lat);
      }
    }
  }
}

void IntraEngine::reduce_core(CoreId c, bool measuring) {
  const obs::prof::ScopedSite timer(obs::prof::Site::kReduceCore);
  AppSlot& s = chip_.slots_[static_cast<std::size_t>(c)];
  const CoreStage& st = stages_[static_cast<std::size_t>(c)];
  const noc::Mesh& mesh = chip_.mesh_;
  std::uint64_t remote = 0;
  // Stream order == the order the serial loop fed this core's accumulators
  // (interleaving only reorders accesses *across* cores), so these in-place
  // double additions reproduce the serial rounding bit-for-bit.
  for (const Staged& a : st.acc) {
    const int hops = mesh.hops(c, a.bank);
    remote += hops > 0 ? 1 : 0;
    s.epoch_lat_sum += static_cast<double>(a.lat);
    if (measuring) {
      s.lat_sum += static_cast<double>(a.lat);
      s.hop_sum += static_cast<double>(hops);
    }
  }
  remote_[static_cast<std::size_t>(c)] = remote;
  s.epoch_accesses += st.acc.size();
}

void IntraEngine::record_buffer_occupancy() {
  std::uint64_t pairs = 0, nonzero = 0;
  for (const CoreStage& st : stages_) {
    for (const auto& list : st.to_bank) {
      ++pairs;
      if (!list.empty()) {
        ++nonzero;
        profile_.add_occupancy(list.size(), 0, 0);
      }
    }
  }
  profile_.add_occupancy(0, pairs, nonzero);
}

void IntraEngine::run_epoch_accesses(bool measuring) {
  const unsigned parties = pool_.parties();
  const std::size_t cores = static_cast<std::size_t>(chip_.cores());
  const std::uint64_t epoch = chip_.epoch_;

  profile_.begin_section(obs::prof::Phase::kStage, epoch);
  pool_.run([&](unsigned w) {
    const IndexRange r = static_partition(cores, parties, w);
    for (std::size_t c = r.begin; c < r.end; ++c)
      stage_core(static_cast<CoreId>(c));
  });
  profile_.end_section();
  if (profile_.armed() && profile_.full()) record_buffer_occupancy();

  profile_.begin_section(obs::prof::Phase::kApply, epoch);
  pool_.run([&](unsigned w) {
    obs::prof::EngineProfile::MergeScratch* const ms =
        profile_.armed() && profile_.full() ? &profile_.merge_scratch(w)
                                            : nullptr;
    const IndexRange r = static_partition(cores, parties, w);
    for (std::size_t b = r.begin; b < r.end; ++b)
      apply_bank(static_cast<BankId>(b), ms);
  });
  profile_.end_section();

  profile_.begin_section(obs::prof::Phase::kReduce, epoch);
  pool_.run([&](unsigned w) {
    const IndexRange r = static_partition(cores, parties, w);
    for (std::size_t c = r.begin; c < r.end; ++c)
      reduce_core(static_cast<CoreId>(c), measuring);
  });
  profile_.end_section();

  const obs::prof::ScopedSpan tail_span(obs::prof::Phase::kSerialTail, epoch);
  // Serial reduction of the integer tallies in fixed bank order.
  std::uint64_t total_remote = 0, total_misses = 0;
  for (std::size_t c = 0; c < cores; ++c) total_remote += remote_[c];
  for (std::size_t c = 0; c < cores; ++c) {
    std::uint64_t hits = 0, misses = 0;
    for (const BankTally& t : tallies_) {
      hits += t.hits[c];
      misses += t.misses[c];
    }
    total_misses += misses;
    if (measuring) {
      AppSlot& s = chip_.slots_[c];
      s.llc_hits += hits;
      s.llc_misses += misses;
    }
  }
  chip_.traffic_.count(noc::MsgType::kLlcRequest, total_remote);
  chip_.traffic_.count(noc::MsgType::kLlcResponse, total_remote);
  chip_.traffic_.count(noc::MsgType::kMemRequest, total_misses);
  chip_.traffic_.count(noc::MsgType::kMemResponse, total_misses);
  const int mcus = chip_.memsys_.num_mcus();
  for (int m = 0; m < mcus; ++m) {
    std::uint64_t reqs = 0;
    for (const BankTally& t : tallies_) reqs += t.mcu_reqs[static_cast<std::size_t>(m)];
    chip_.memsys_.mcu(m).add_requests(reqs);
  }
  profile_.end_epoch(epoch);
}

std::unique_ptr<IntraEngine> make_intra_engine(Chip& chip, int intra_jobs) {
  unsigned n = intra_jobs <= 0 ? std::thread::hardware_concurrency()
                               : static_cast<unsigned>(intra_jobs);
  if (n == 0) n = 1;
  const unsigned cores = static_cast<unsigned>(chip.cores());
  if (n > cores) n = cores;  // More shards than banks cannot help.
  if (n <= 1) return nullptr;
  return std::make_unique<IntraEngine>(chip, n);
}

}  // namespace delta::sim
