// Result reporting for tools: human-readable text, machine-readable CSV
// rows (header + rows kept in one place so the schema cannot drift apart),
// and the end-of-run JSON summary consumed by scripting pipelines.
// Formats are documented in docs/observability.md.
#pragma once

#include <span>
#include <string>

#include "obs/observer.hpp"
#include "sim/metrics.hpp"

namespace delta::sim {

/// Header row for per-app CSV output, without the trailing newline.
std::string csv_header();

/// One CSV line per app of `r`, matching csv_header()'s columns.
std::string csv_rows(const MixResult& r);

/// Human-readable per-app table + workload summary; `baseline` (may be
/// null or `&r`) adds a speedup-vs-baseline annotation.
std::string text_report(const MixResult& r, const MixResult* baseline);

/// End-of-run JSON summary: every result with per-app metrics, per-type
/// traffic counts and the control-message breakdown; plus recorder/timeline
/// statistics when `obs` is non-null.
std::string json_summary(std::span<const MixResult> results,
                         const obs::Observer* obs = nullptr);

}  // namespace delta::sim
