#include "alloc/peekahead.hpp"

#include <cassert>
#include <queue>
#include <vector>

namespace delta::alloc {

std::vector<int> suffix_hull_next(const umon::MissCurve& curve) {
  const int w = curve.max_ways();
  std::vector<int> best_next(static_cast<std::size_t>(w) + 1);
  std::vector<int> stack;  // Lower-hull vertices of the suffix, nearest first.
  best_next[static_cast<std::size_t>(w)] = w;
  stack.push_back(w);
  for (int i = w - 1; i >= 0; --i) {
    // Pop vertices that are no longer on the hull of [i, W]: vertex `top`
    // is dominated when the segment i->second lies below i->top.
    while (stack.size() >= 2) {
      const int top = stack[stack.size() - 1];
      const int second = stack[stack.size() - 2];
      const double slope_it = (curve.at(top) - curve.at(i)) / static_cast<double>(top - i);
      const double slope_is = (curve.at(second) - curve.at(i)) / static_cast<double>(second - i);
      if (slope_is <= slope_it) {
        stack.pop_back();
      } else {
        break;
      }
    }
    best_next[static_cast<std::size_t>(i)] = stack.back();
    stack.push_back(i);
  }
  return best_next;
}

AllocResult peekahead(const AllocRequest& req) {
  const std::size_t n = req.curves.size();
  AllocResult res;
  res.ways.assign(n, req.min_ways);
  assert(req.total_ways >= static_cast<int>(n) * req.min_ways);

  std::vector<std::vector<int>> nexts(n);
  for (std::size_t a = 0; a < n; ++a) {
    nexts[a] = suffix_hull_next(req.curves[a]);
    res.steps += static_cast<std::uint64_t>(req.curves[a].max_ways());
  }

  auto cap_for = [&](std::size_t a) {
    const int curve_max = req.curves[a].max_ways();
    return req.max_ways <= 0 ? curve_max : std::min(req.max_ways, curve_max);
  };

  // Candidate move per app; max-heap on marginal utility.
  struct Cand {
    double mu;
    std::size_t app;
    int from, to;
  };
  auto cmp = [](const Cand& x, const Cand& y) { return x.mu < y.mu; };
  std::priority_queue<Cand, std::vector<Cand>, decltype(cmp)> heap(cmp);

  int balance = req.total_ways - static_cast<int>(n) * req.min_ways;
  auto push_candidate = [&](std::size_t a) {
    const int cur = res.ways[a];
    const int cap = cap_for(a);
    if (cur >= cap || balance <= 0) return;
    int to = nexts[a][static_cast<std::size_t>(cur)];
    if (to > cap) to = cap;
    // Balance-constrained tail: fall back to the best feasible expansion.
    if (to - cur > balance) {
      double best_mu = 0.0;
      int best_to = cur;
      for (int j = cur + 1; j <= cur + balance && j <= cap; ++j) {
        ++res.steps;
        const double mu = req.curves[a].marginal_utility(cur, j);
        if (mu > best_mu) {
          best_mu = mu;
          best_to = j;
        }
      }
      if (best_to > cur) heap.push(Cand{best_mu, a, cur, best_to});
      return;
    }
    if (to <= cur) return;
    ++res.steps;
    heap.push(Cand{req.curves[a].marginal_utility(cur, to), a, cur, to});
  };

  for (std::size_t a = 0; a < n; ++a) push_candidate(a);

  while (balance > 0 && !heap.empty()) {
    const Cand c = heap.top();
    heap.pop();
    if (c.from != res.ways[c.app]) continue;   // Stale entry.
    if (c.mu <= 0.0) break;
    if (c.to - c.from > balance) {             // Re-evaluate under new balance.
      push_candidate(c.app);
      continue;
    }
    res.ways[c.app] = c.to;
    balance -= c.to - c.from;
    push_candidate(c.app);
  }
  return res;
}

}  // namespace delta::alloc
