// Peekahead (Beckmann & Sanchez, PACT'13): computes the same allocations as
// Lookahead but only ever inspects miss-curve points on the lower convex
// hull, bringing the average cost to O(N * W) (paper Table VI).
//
// Key property: from a current allocation `cur`, the expansion maximising
// marginal utility (misses(cur) - misses(j)) / (j - cur) is the next vertex
// of the lower convex hull of the curve's suffix [cur, W].  We precompute
// `best_next[i]` for every i with one right-to-left monotone-chain sweep per
// application, then run the same greedy loop as Lookahead with O(1) work per
// candidate.
#pragma once

#include "alloc/lookahead.hpp"

namespace delta::alloc {

/// Peekahead allocation; produces the same `ways` as lookahead() modulo
/// floating-point tie-breaking.  `steps` counts hull-sweep + heap work.
AllocResult peekahead(const AllocRequest& req);

/// Exposed for tests: best_next[i] = j > i maximising the marginal utility
/// of growing from i to j (j == i when no growth helps).
std::vector<int> suffix_hull_next(const umon::MissCurve& curve);

}  // namespace delta::alloc
