// Locality-aware placement of centralized allocations onto LLC banks.
//
// The paper's "ideal centralized" comparator computes chip-wide way counts
// with Lookahead and then places each application's ways into banks close to
// the tile it runs on, enforcing them with DELTA's own mechanism (Sec.
// III-A).  This module performs that placement:
//   1. every application first receives its reserved minimum in its home
//      bank (each core keeps >= 128 KB at home to avoid back-invalidations);
//   2. applications are then processed in descending allocation order, each
//      taking free ways from banks in increasing hop distance from home.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "noc/mesh.hpp"

namespace delta::alloc {

struct PlacementRequest {
  const noc::Mesh* mesh = nullptr;
  std::vector<int> ways;        ///< Target ways per application.
  std::vector<int> home_tile;   ///< Home tile per application.
  int ways_per_bank = 16;
  int reserved_home_ways = 4;   ///< minWays floor kept in the home bank.
};

/// placement[app][bank] = ways granted.  Every bank's column sum equals
/// ways_per_bank consumed; every app receives exactly min(request, what
/// fits) ways, with leftovers redistributed to the nearest free banks.
using Placement = std::vector<std::vector<int>>;

Placement place_allocations(const PlacementRequest& req);

/// Capacity-weighted mean hop distance from each app's home tile to its
/// allocated ways (placement quality metric used by benches).
double mean_placement_distance(const PlacementRequest& req, const Placement& p);

}  // namespace delta::alloc
