// CARMA-style sealed-bid way auction (market-based cache allocation).
//
// Each application holds a per-auction spending budget and bids its marginal
// utility — the misses its curve says one more lot of ways would avoid — in
// repeated sealed-bid rounds.  Every round the highest bidder wins one lot
// and pays the second-highest bid (Vickrey pricing), so truthful bidding is
// the dominant strategy; the paid amount is deducted from the winner's
// budget.  Budgets give every application equal purchasing power regardless
// of its absolute access rate, which is the market mechanism's fairness
// argument: callers should normalise curves (e.g. to misses per kilo-access)
// before bidding so utility units are comparable across applications.
//
// The clearing process is fully deterministic: ties break toward the lowest
// application index, and no randomness or iteration-order dependence exists
// anywhere in the loop.
#pragma once

#include <cstdint>
#include <vector>

#include "umon/miss_curve.hpp"

namespace delta::alloc {

struct AuctionRequest {
  std::vector<umon::MissCurve> curves;  ///< One per application (normalised).
  std::vector<double> budgets;          ///< Spending budget per application.
  int total_ways = 0;                   ///< Chip-wide balance to distribute.
  int min_ways = 1;                     ///< Free floor per application.
  int max_ways = 0;                     ///< Cap per application (0 = no cap).
  int lot_ways = 1;                     ///< Ways sold per auction round.
};

struct AuctionResult {
  std::vector<int> ways;      ///< Allocation per application (>= min_ways).
  std::vector<double> spent;  ///< Budget consumed; spent[i] <= budgets[i].
  std::uint64_t rounds = 0;   ///< Rounds run (== lots sold).
  std::uint64_t bids = 0;     ///< Individual bids submitted across rounds.
};

/// Clears the auction.  `req.total_ways` must be >= N * min_ways; leftover
/// ways (nobody bids, or everyone is capped/broke) stay unsold so callers
/// can return them to home banks.
AuctionResult clear_auction(const AuctionRequest& req);

}  // namespace delta::alloc
