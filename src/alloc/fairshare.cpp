#include "alloc/fairshare.hpp"

#include <algorithm>
#include <cassert>

namespace delta::alloc {
namespace {

/// Estimated CPI of one application given `ways` of capacity, under the
/// flat hit/miss latency model (the stand-alone classification model of
/// workload/classify.hpp, not the full NoC simulation).
double est_cpi(const umon::MissCurve& curve, double accesses, int ways,
               const FairShareConfig& cfg) {
  if (curve.empty() || accesses <= 0.0) return cfg.hit_latency;
  const double misses = std::min(curve.at(ways), accesses);
  return (cfg.hit_latency * (accesses - misses) + cfg.miss_latency * misses) /
         accesses;
}

}  // namespace

CurveClass classify_curve(const umon::MissCurve& curve, double accesses,
                          const FairShareConfig& cfg) {
  if (curve.empty() || accesses <= 0.0) return CurveClass::kStreaming;
  // Sensitive first: capacity buys real CPI.  Among the insensitive rest,
  // curves that still miss heavily at full capacity are thrashing (they
  // pressure whatever they share); flat low-pressure curves are streaming.
  const double cpi_few = est_cpi(curve, accesses, 1, cfg);
  const double cpi_full = est_cpi(curve, accesses, cfg.ways_per_bank, cfg);
  const double improvement = cpi_full > 0.0 ? cpi_few / cpi_full - 1.0 : 0.0;
  if (improvement > cfg.sensitivity_threshold) return CurveClass::kSensitive;
  const double mpka_full = 1000.0 * curve.at(cfg.ways_per_bank) / accesses;
  return mpka_full > cfg.thrashing_mpka ? CurveClass::kThrashing
                                        : CurveClass::kStreaming;
}

FairShareResult fair_partition(const FairShareRequest& req) {
  assert(req.accesses.size() == req.curves.size());
  const FairShareConfig& cfg = req.cfg;
  const int kW = cfg.ways_per_bank;

  FairShareResult out;
  out.cls.reserve(req.curves.size());
  for (std::size_t i = 0; i < req.curves.size(); ++i) {
    const CurveClass c = classify_curve(req.curves[i], req.accesses[i], cfg);
    out.cls.push_back(c);
    ++out.members[static_cast<std::size_t>(c)];
  }

  int populated = 0;
  for (int c = 0; c < kNumCurveClasses; ++c)
    populated += out.members[static_cast<std::size_t>(c)] > 0 ? 1 : 0;
  if (populated == 0) {
    // No applications: park the whole cache on the sensitive cluster so
    // idle cores still see a non-empty insertion slice.
    out.cluster_ways[static_cast<std::size_t>(CurveClass::kSensitive)] = kW;
    return out;
  }

  // Every populated cluster starts from a floor small enough that the
  // floors always fit; the rest is granted by slowdown equalisation.
  const int floor = std::max(1, std::min(cfg.min_cluster_ways, kW / populated));
  int remaining = kW;
  for (int c = 0; c < kNumCurveClasses; ++c) {
    if (out.members[static_cast<std::size_t>(c)] == 0) continue;
    out.cluster_ways[static_cast<std::size_t>(c)] = floor;
    remaining -= floor;
  }
  assert(remaining >= 0);

  // Average slowdown of cluster `c` if its slice were `ways` wide: members
  // share the slice, so each effectively sees ways / members (>= 1).
  auto cluster_slowdown = [&](int c, int ways) {
    const int m = out.members[static_cast<std::size_t>(c)];
    const int eff = std::max(1, ways / m);
    double sum = 0.0;
    for (std::size_t i = 0; i < req.curves.size(); ++i) {
      if (out.cls[i] != static_cast<CurveClass>(c)) continue;
      const double full = est_cpi(req.curves[i], req.accesses[i], kW, cfg);
      sum += full > 0.0 ? est_cpi(req.curves[i], req.accesses[i], eff, cfg) / full
                        : 1.0;
    }
    return sum / static_cast<double>(m);
  };

  while (remaining > 0) {
    int worst = -1;
    double worst_sd = 0.0;
    for (int c = 0; c < kNumCurveClasses; ++c) {
      if (out.members[static_cast<std::size_t>(c)] == 0) continue;
      const double sd =
          cluster_slowdown(c, out.cluster_ways[static_cast<std::size_t>(c)]);
      if (worst == -1 || sd > worst_sd) {  // Strict: ties keep lowest index.
        worst = c;
        worst_sd = sd;
      }
    }
    ++out.cluster_ways[static_cast<std::size_t>(worst)];
    --remaining;
  }

  for (int c = 0; c < kNumCurveClasses; ++c)
    if (out.members[static_cast<std::size_t>(c)] > 0)
      out.slowdown[static_cast<std::size_t>(c)] =
          cluster_slowdown(c, out.cluster_ways[static_cast<std::size_t>(c)]);
  return out;
}

}  // namespace delta::alloc
