// UCP Lookahead allocation (Qureshi & Patt, MICRO'06) — the centralized
// reference algorithm DELTA is evaluated against (Sec. III-A, Table VI).
//
// Lookahead greedily awards blocks of ways to the application with the
// highest *maximum marginal utility*: at each step, for every application it
// scans all feasible expansions k and computes
//     MU = (misses(cur) - misses(cur + k)) / k,
// then grants the best (app, k) pair.  Worst case O(N * W^2); the paper's
// Table VI measures exactly this cost growing to 1.2 s per invocation at 64
// cores.
#pragma once

#include <cstdint>
#include <vector>

#include "umon/miss_curve.hpp"

namespace delta::alloc {

struct AllocRequest {
  std::vector<umon::MissCurve> curves;  ///< One per application.
  int total_ways = 0;                   ///< Chip-wide balance to distribute.
  int min_ways = 1;                     ///< Floor per application.
  int max_ways = 0;                     ///< Cap per application (0 = no cap).
};

struct AllocResult {
  std::vector<int> ways;       ///< Allocation per application.
  std::uint64_t steps = 0;     ///< Inner-loop iterations (complexity probe).
};

/// Classic Lookahead.  `req.total_ways` must be >= N * min_ways.
AllocResult lookahead(const AllocRequest& req);

/// Exhaustive dynamic-programming optimum (minimises total misses).  Only
/// for tests/small inputs: O(N * W^2) with large constants.
std::vector<int> optimal_partition(const AllocRequest& req);

/// Total predicted misses for an allocation under the request's curves.
double total_misses(const AllocRequest& req, const std::vector<int>& ways);

}  // namespace delta::alloc
