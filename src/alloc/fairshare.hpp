// LFOC-style fairness clustering: group applications by miss-curve shape
// and size one shared way-partition per cluster.
//
// Applications are classified from their UMON miss curves into three
// clusters — streaming (insensitive: extra ways barely help), cache-
// sensitive (ways buy real CPI improvement) and thrashing (misses stay high
// even at full capacity) — mirroring the Sec. III-B workload classes.  Each
// non-empty cluster then receives a contiguous slice of every bank's ways,
// sized by ANTT-style slowdown equalisation: ways are granted one at a time
// to the cluster whose estimated average slowdown (vs. running with the full
// cache) is currently worst, with in-cluster sharing modelled as an equal
// split of the slice among members.  The slices always sum to exactly
// ways_per_bank, so cluster partitions are disjoint and exhaustive by
// construction.  Everything is deterministic: ties break toward the lowest
// cluster index.
#pragma once

#include <array>
#include <vector>

#include "umon/miss_curve.hpp"

namespace delta::alloc {

enum class CurveClass : int { kStreaming = 0, kSensitive = 1, kThrashing = 2 };
inline constexpr int kNumCurveClasses = 3;

struct FairShareConfig {
  int ways_per_bank = 16;
  int min_cluster_ways = 2;             ///< Floor per non-empty cluster.
  double sensitivity_threshold = 0.10;  ///< Relative CPI gain, few -> full ways.
  /// Thrashing split for ways-insensitive curves: misses per kilo-access at
  /// full capacity (300 = a 30% miss ratio keeps pressuring the cache).
  double thrashing_mpka = 300.0;
  // Single-bank latency model matching workload/classify.hpp's constants.
  double hit_latency = 11.0;
  double miss_latency = 350.0;
};

/// Classifies one application's miss curve; `accesses` is the curve's
/// sampling window (used to normalise misses to per-kilo-access rates).
CurveClass classify_curve(const umon::MissCurve& curve, double accesses,
                          const FairShareConfig& cfg);

struct FairShareRequest {
  std::vector<umon::MissCurve> curves;  ///< One per application.
  std::vector<double> accesses;         ///< Same window as each curve.
  FairShareConfig cfg;
};

struct FairShareResult {
  std::vector<CurveClass> cls;                         ///< Per application.
  std::array<int, kNumCurveClasses> cluster_ways{};    ///< Sums to ways_per_bank.
  std::array<int, kNumCurveClasses> members{};         ///< Apps per cluster.
  std::array<double, kNumCurveClasses> slowdown{};     ///< Final estimate.
};

/// Sizes the three cluster partitions.  Empty clusters get 0 ways; the
/// populated ones share all ways_per_bank ways (with no applications at all,
/// the sensitive cluster keeps the full cache).
FairShareResult fair_partition(const FairShareRequest& req);

}  // namespace delta::alloc
