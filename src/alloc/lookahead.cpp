#include "alloc/lookahead.hpp"

#include <cassert>
#include <limits>

namespace delta::alloc {
namespace {

int cap_for(const AllocRequest& req, std::size_t app) {
  const int curve_max = req.curves[app].max_ways();
  if (req.max_ways <= 0) return curve_max;
  return req.max_ways < curve_max ? req.max_ways : curve_max;
}

}  // namespace

AllocResult lookahead(const AllocRequest& req) {
  const std::size_t n = req.curves.size();
  AllocResult res;
  res.ways.assign(n, req.min_ways);
  assert(req.total_ways >= static_cast<int>(n) * req.min_ways);

  int balance = req.total_ways - static_cast<int>(n) * req.min_ways;
  while (balance > 0) {
    double best_mu = 0.0;
    std::size_t best_app = n;
    int best_k = 0;
    for (std::size_t a = 0; a < n; ++a) {
      const int cur = res.ways[a];
      const int cap = cap_for(req, a);
      const int max_k = std::min(cap - cur, balance);
      for (int k = 1; k <= max_k; ++k) {
        ++res.steps;
        const double mu = req.curves[a].marginal_utility(cur, cur + k);
        if (mu > best_mu) {
          best_mu = mu;
          best_app = a;
          best_k = k;
        }
      }
    }
    if (best_app == n || best_mu <= 0.0) break;  // No one benefits further.
    res.ways[best_app] += best_k;
    balance -= best_k;
  }
  return res;
}

std::vector<int> optimal_partition(const AllocRequest& req) {
  const int n = static_cast<int>(req.curves.size());
  const int w = req.total_ways;
  const double inf = std::numeric_limits<double>::infinity();
  // dp[a][b] = min total misses using apps [0, a) and b ways.
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(w + 1, inf));
  std::vector<std::vector<int>> choice(n + 1, std::vector<int>(w + 1, 0));
  dp[0][0] = 0.0;
  for (int a = 0; a < n; ++a) {
    const int cap = cap_for(req, static_cast<std::size_t>(a));
    for (int b = 0; b <= w; ++b) {
      if (dp[a][b] == inf) continue;
      for (int give = req.min_ways; give <= cap && b + give <= w; ++give) {
        const double cost = dp[a][b] + req.curves[a].at(give);
        if (cost < dp[a + 1][b + give]) {
          dp[a + 1][b + give] = cost;
          choice[a + 1][b + give] = give;
        }
      }
    }
  }
  // Best reachable total <= w.
  int best_b = 0;
  for (int b = 0; b <= w; ++b)
    if (dp[n][b] < dp[n][best_b]) best_b = b;
  std::vector<int> ways(n, req.min_ways);
  int b = best_b;
  for (int a = n; a >= 1; --a) {
    ways[a - 1] = choice[a][b];
    b -= choice[a][b];
  }
  return ways;
}

double total_misses(const AllocRequest& req, const std::vector<int>& ways) {
  double total = 0.0;
  for (std::size_t a = 0; a < req.curves.size(); ++a)
    total += req.curves[a].at(ways[a]);
  return total;
}

}  // namespace delta::alloc
