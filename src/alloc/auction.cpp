#include "alloc/auction.hpp"

#include <algorithm>
#include <cassert>

namespace delta::alloc {
namespace {

/// Marginal utility of growing app `i` by one lot, or 0 when the curve is
/// flat there (clamped reads make over-the-end lots worthless).
double lot_utility(const umon::MissCurve& curve, int cur, int lot) {
  if (curve.empty()) return 0.0;
  const double saved = curve.saved(cur, cur + lot);
  return saved > 0.0 ? saved / static_cast<double>(lot) : 0.0;
}

}  // namespace

AuctionResult clear_auction(const AuctionRequest& req) {
  const std::size_t n = req.curves.size();
  assert(req.budgets.size() == n);
  const int lot = std::max(1, req.lot_ways);

  AuctionResult out;
  out.ways.assign(n, req.min_ways);  // The floor is granted for free.
  out.spent.assign(n, 0.0);
  if (n == 0) return out;

  int pool = req.total_ways - static_cast<int>(n) * req.min_ways;
  std::vector<double> remaining = req.budgets;

  while (pool >= lot) {
    // Sealed-bid round: every un-capped application with budget left bids
    // min(remaining budget, marginal utility of one more lot).
    double best = 0.0, second = 0.0;
    std::size_t winner = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (req.max_ways > 0 && out.ways[i] + lot > req.max_ways) continue;
      const double bid =
          std::min(remaining[i], lot_utility(req.curves[i], out.ways[i], lot));
      if (bid <= 0.0) continue;
      ++out.bids;
      if (bid > best) {  // Strict: ties keep the lowest-index bidder.
        second = best;
        best = bid;
        winner = i;
      } else if (bid > second) {
        second = bid;
      }
    }
    if (winner == n) break;  // Market cleared: no positive bids remain.

    // Vickrey payment: the winner pays the runner-up's bid (its own when it
    // bid unopposed).  Payment <= bid <= remaining budget, so spent can
    // never exceed the application's budget.
    const double pay = second > 0.0 ? second : best;
    out.spent[winner] += pay;
    remaining[winner] -= pay;
    out.ways[winner] += lot;
    pool -= lot;
    ++out.rounds;
  }
  return out;
}

}  // namespace delta::alloc
