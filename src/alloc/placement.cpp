#include "alloc/placement.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace delta::alloc {

Placement place_allocations(const PlacementRequest& req) {
  assert(req.mesh != nullptr);
  const std::size_t n = req.ways.size();
  assert(req.home_tile.size() == n);
  const int banks = req.mesh->tiles();

  Placement placement(n, std::vector<int>(static_cast<std::size_t>(banks), 0));
  std::vector<int> free_ways(static_cast<std::size_t>(banks), req.ways_per_bank);
  std::vector<int> need(req.ways);

  // Pass 1: every application fills its own home bank first (locality-aware
  // placement wants data where it is used; home banks are contention-free
  // since each app has a distinct home).  This also covers the reserved
  // home minimum.
  for (std::size_t a = 0; a < n; ++a) {
    const int home = req.home_tile[a];
    const int grant = std::min(need[a], free_ways[home]);
    placement[a][home] += grant;
    free_ways[home] -= grant;
    need[a] -= grant;
  }

  // Pass 2: big allocations first, nearest banks first.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return need[x] > need[y]; });

  for (std::size_t a : order) {
    if (need[a] <= 0) continue;
    const int home = req.home_tile[a];
    // Home bank first, then by distance.
    auto try_bank = [&](int bank) {
      if (need[a] <= 0) return;
      const int grant = std::min(need[a], free_ways[bank]);
      if (grant > 0) {
        placement[a][bank] += grant;
        free_ways[bank] -= grant;
        need[a] -= grant;
      }
    };
    try_bank(home);
    for (int bank : req.mesh->by_distance(home)) try_bank(bank);
  }
  return placement;
}

double mean_placement_distance(const PlacementRequest& req, const Placement& p) {
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t a = 0; a < p.size(); ++a) {
    for (int bank = 0; bank < static_cast<int>(p[a].size()); ++bank) {
      const int w = p[a][static_cast<std::size_t>(bank)];
      if (w == 0) continue;
      weighted += static_cast<double>(w) * req.mesh->hops(req.home_tile[a], bank);
      total += static_cast<double>(w);
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

}  // namespace delta::alloc
