// Miss curve: predicted miss count as a function of allocated ways.
//
// Produced by UMON shadow tags (Qureshi & Patt's utility monitors), consumed
// by DELTA's pain/gain heuristics and by the centralized Lookahead /
// Peekahead allocators.  Index w holds the number of misses the monitored
// application would incur with w ways of capacity; curves are monotonically
// non-increasing in w.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace delta::umon {

class MissCurve {
 public:
  MissCurve() = default;

  /// `misses[w]` = misses with w ways; size = max_ways + 1.
  explicit MissCurve(std::vector<double> misses) : misses_(std::move(misses)) {}

  static MissCurve flat(int max_ways, double misses) {
    return MissCurve(std::vector<double>(static_cast<std::size_t>(max_ways) + 1, misses));
  }

  bool empty() const { return misses_.empty(); }
  int max_ways() const { return static_cast<int>(misses_.size()) - 1; }

  /// Misses at `ways`, clamping beyond the measured range.
  double at(int ways) const {
    assert(!misses_.empty());
    if (ways < 0) ways = 0;
    if (ways > max_ways()) ways = max_ways();
    return misses_[static_cast<std::size_t>(ways)];
  }

  /// Misses avoided by growing from `from` ways to `to` ways (>= 0).
  double saved(int from, int to) const { return at(from) - at(to); }

  /// Marginal utility per way over [from, to] as used by Lookahead:
  /// U_from^to = (misses(from) - misses(to)) / (to - from).
  double marginal_utility(int from, int to) const {
    assert(to > from);
    return saved(from, to) / static_cast<double>(to - from);
  }

  /// Enforces monotone non-increase (fixes sampling jitter in-place).
  void make_monotone() {
    for (std::size_t w = 1; w < misses_.size(); ++w)
      if (misses_[w] > misses_[w - 1]) misses_[w] = misses_[w - 1];
  }

  /// Indices of the lower convex hull of (ways, misses) — the only
  /// allocation sizes Peekahead ever needs to inspect.
  std::vector<int> convex_hull_points() const;

  const std::vector<double>& raw() const { return misses_; }

 private:
  std::vector<double> misses_;
};

}  // namespace delta::umon
