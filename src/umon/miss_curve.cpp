#include "umon/miss_curve.hpp"

namespace delta::umon {

std::vector<int> MissCurve::convex_hull_points() const {
  std::vector<int> hull;
  const int n = static_cast<int>(misses_.size());
  if (n == 0) return hull;
  // Andrew's monotone chain over points (w, misses[w]); we want the lower
  // hull since the curve is non-increasing and utility comes from drops.
  auto cross = [&](int o, int a, int b) {
    const double ox = o, oy = misses_[static_cast<std::size_t>(o)];
    const double ax = a, ay = misses_[static_cast<std::size_t>(a)];
    const double bx = b, by = misses_[static_cast<std::size_t>(b)];
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox);
  };
  for (int w = 0; w < n; ++w) {
    while (hull.size() >= 2 && cross(hull[hull.size() - 2], hull.back(), w) <= 0.0)
      hull.pop_back();
    hull.push_back(w);
  }
  return hull;
}

}  // namespace delta::umon
