// MLP estimation from performance counters (paper Sec. II-B2: "The MLP
// estimate is obtained through performance counters").
//
// The counters every modern core exposes are occupancy counters on the
// miss-status registers; by Little's law the average number of outstanding
// LLC accesses equals (access rate) x (average latency).  The estimator
// consumes exactly the per-interval quantities the hardware has — access
// count, summed latency, elapsed cycles, and the overlap the core achieved
// (stall cycles) — and smooths with an EWMA so one odd interval cannot
// swing pain/gain decisions.
#pragma once

#include <algorithm>
#include <cstdint>

namespace delta::umon {

class MlpEstimator {
 public:
  /// `alpha` is the EWMA weight of the newest interval.
  explicit MlpEstimator(double alpha = 0.3) : alpha_(alpha) {}

  /// Feeds one interval: `accesses` LLC accesses with total latency
  /// `latency_sum` (cycles), during which the core accumulated
  /// `stall_cycles` of memory stall.  MLP = total memory latency the
  /// application *would* serialise / the stall it actually paid.
  void observe(std::uint64_t accesses, double latency_sum, double stall_cycles) {
    if (accesses == 0 || stall_cycles <= 0.0) return;
    const double mlp = std::max(1.0, latency_sum / stall_cycles);
    value_ = initialised_ ? (1.0 - alpha_) * value_ + alpha_ * mlp : mlp;
    initialised_ = true;
  }

  /// Current estimate; 1.0 (fully serialised) until first observation.
  double get() const { return initialised_ ? value_ : 1.0; }
  bool initialised() const { return initialised_; }
  void reset() {
    value_ = 1.0;
    initialised_ = false;
  }

 private:
  double alpha_;
  double value_ = 1.0;
  bool initialised_ = false;
};

}  // namespace delta::umon
