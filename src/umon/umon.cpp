#include "umon/umon.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/simd.hpp"

namespace delta::umon {

Umon::Umon(UmonConfig cfg) : cfg_(cfg) {
  assert(cfg_.max_ways >= 1);
  assert(cfg_.set_dilution >= 1);
  assert(cfg_.coarse_ways >= 1);
  set_mask_ = (std::uint32_t{1} << cfg_.sets_log2) - 1;
  const auto dilution = static_cast<std::uint32_t>(cfg_.set_dilution);
  dilution_pow2_ = (dilution & (dilution - 1)) == 0;
  dilution_mask_ = dilution - 1;  // Meaningful only when dilution_pow2_.
  dilution_shift_ = std::bit_width(dilution) - 1;
  const int sets = 1 << cfg_.sets_log2;
  // Ceiling division: monitored sets are the multiples of set_dilution in
  // [0, sets), so a dilution that does not divide the set count still needs
  // a stack for the last monitored set.
  num_stacks_ = (sets + cfg_.set_dilution - 1) / cfg_.set_dilution;
  assert(num_stacks_ >= 1);
  stacks_.resize(static_cast<std::size_t>(num_stacks_));
  for (auto& s : stacks_) s.reserve(static_cast<std::size_t>(cfg_.max_ways));
  hit_ctr_.assign(static_cast<std::size_t>(cfg_.max_ways), 0.0);
  const int buckets = (cfg_.max_ways + cfg_.coarse_ways - 1) / cfg_.coarse_ways;
  coarse_ctr_.assign(static_cast<std::size_t>(buckets), 0.0);
}

void Umon::access(BlockAddr block) {
  // Dynamic set sampling: the monitored sets are those whose index is a
  // multiple of the dilution factor.  Power-of-two dilutions (the default
  // 16) take a mask+shift fast path — this runs on every LLC access, and
  // the generic divide/modulo pair dominated the monitor's cost.
  const std::uint32_t set = static_cast<std::uint32_t>(block) & set_mask_;
  std::uint32_t stack_idx;
  if (dilution_pow2_) {
    if ((set & dilution_mask_) != 0) return;
    stack_idx = set >> dilution_shift_;
  } else {
    const auto dilution = static_cast<std::uint32_t>(cfg_.set_dilution);
    if (set % dilution != 0) return;
    stack_idx = set / dilution;
  }

  ++sampled_accesses_;
  auto& stack = stacks_[stack_idx];
  const std::size_t depth = stack.size();

  // Repeated-hit fast path: after a move-to-front, re-accesses of the same
  // block land at stack distance 0, where the MTF rotate is a no-op.  Runs
  // of hits to one hot block (the common case for loop/graph frontiers)
  // coalesce to a front compare plus two counter bumps — identical counter
  // and stack state to the general path below.
  if (depth != 0 && stack[0] == block) {
    hit_ctr_[0] += 1.0;
    coarse_ctr_[0] += 1.0;
    return;
  }

  // Vectorized shadow-tag search (common/simd.hpp): stacks run to
  // max_ways entries and most probes match nothing, so the wide compare
  // pays off on exactly the accesses that cost the most.
  const std::size_t pos = simd::find_u64(stack.data(), depth, block);
  if (pos < depth) {
    const auto it = stack.begin() + static_cast<std::ptrdiff_t>(pos);
    hit_ctr_[pos] += 1.0;
    coarse_ctr_[pos / static_cast<std::size_t>(cfg_.coarse_ways)] += 1.0;
    // Move-to-front as a single rotate: same final order as erase+insert
    // but one pass over [begin, it] instead of two full memmoves.
    std::rotate(stack.begin(), it, it + 1);
    return;
  }

  sampled_misses_ += 1.0;
  if (static_cast<int>(stack.size()) >= cfg_.max_ways) {
    // Full stack: recycle the LRU slot in place rather than insert+pop.
    std::rotate(stack.begin(), stack.end() - 1, stack.end());
    stack.front() = block;
  } else {
    stack.insert(stack.begin(), block);
  }
}

void Umon::prefetch(BlockAddr block) const {
  // Mirrors access()'s monitored-set test exactly; unmonitored blocks (the
  // (dilution-1)/dilution majority) cost one mask test, like access().
  const std::uint32_t set = static_cast<std::uint32_t>(block) & set_mask_;
  std::uint32_t stack_idx;
  if (dilution_pow2_) {
    if ((set & dilution_mask_) != 0) return;
    stack_idx = set >> dilution_shift_;
  } else {
    const auto dilution = static_cast<std::uint32_t>(cfg_.set_dilution);
    if (set % dilution != 0) return;
    stack_idx = set / dilution;
  }
  const auto& stack = stacks_[stack_idx];
  if (!stack.empty()) simd::prefetch_read(stack.data());
}

double Umon::hits_between(int lo_ways, int hi_ways) const {
  lo_ways = std::clamp(lo_ways, 0, cfg_.max_ways);
  hi_ways = std::clamp(hi_ways, 0, cfg_.max_ways);
  double h = 0.0;
  for (int d = lo_ways; d < hi_ways; ++d) h += hit_ctr_[static_cast<std::size_t>(d)];
  return scale(h);
}

double Umon::coarse_hits_between(int lo_ways, int hi_ways) const {
  lo_ways = std::clamp(lo_ways, 0, cfg_.max_ways);
  hi_ways = std::clamp(hi_ways, 0, cfg_.max_ways);
  if (hi_ways <= lo_ways) return 0.0;
  // Integrate the coarse counters treating each bucket's hits as uniformly
  // spread over its `coarse_ways` positions.
  double h = 0.0;
  for (int d = lo_ways; d < hi_ways; ++d) {
    const std::size_t b = static_cast<std::size_t>(d / cfg_.coarse_ways);
    h += coarse_ctr_[b] / static_cast<double>(cfg_.coarse_ways);
  }
  return scale(h);
}

MissCurve Umon::miss_curve() const {
  std::vector<double> m(static_cast<std::size_t>(cfg_.max_ways) + 1);
  double cum_hits = 0.0;
  const double total = static_cast<double>(sampled_accesses_);
  m[0] = scale(total);
  for (int w = 1; w <= cfg_.max_ways; ++w) {
    cum_hits += hit_ctr_[static_cast<std::size_t>(w - 1)];
    m[static_cast<std::size_t>(w)] = scale(total - cum_hits);
  }
  MissCurve curve(std::move(m));
  curve.make_monotone();
  return curve;
}

MissCurve Umon::coarse_miss_curve() const {
  std::vector<double> m(static_cast<std::size_t>(cfg_.max_ways) + 1);
  const double total = static_cast<double>(sampled_accesses_);
  double cum = 0.0;
  m[0] = scale(total);
  for (int w = 1; w <= cfg_.max_ways; ++w) {
    const std::size_t b = static_cast<std::size_t>((w - 1) / cfg_.coarse_ways);
    cum += coarse_ctr_[b] / static_cast<double>(cfg_.coarse_ways);
    m[static_cast<std::size_t>(w)] = scale(std::max(0.0, total - cum));
  }
  MissCurve curve(std::move(m));
  curve.make_monotone();
  return curve;
}

void Umon::decay(double keep_fraction) {
  for (auto& c : hit_ctr_) c *= keep_fraction;
  for (auto& c : coarse_ctr_) c *= keep_fraction;
  sampled_misses_ *= keep_fraction;
  sampled_accesses_ = static_cast<std::uint64_t>(
      static_cast<double>(sampled_accesses_) * keep_fraction);
}

void Umon::reset() {
  for (auto& s : stacks_) s.clear();
  std::fill(hit_ctr_.begin(), hit_ctr_.end(), 0.0);
  std::fill(coarse_ctr_.begin(), coarse_ctr_.end(), 0.0);
  sampled_misses_ = 0.0;
  sampled_accesses_ = 0;
}

std::uint64_t Umon::storage_bits() const {
  // Tag entries: num_stacks * max_ways tags of ~28 bits (partial tags),
  // counters: 32-bit each.  Fine monitors carry max_ways counters, coarse
  // monitors max_ways / coarse_ways — the saving the paper highlights.
  const std::uint64_t tags =
      static_cast<std::uint64_t>(num_stacks_) * cfg_.max_ways * 28;
  const std::uint64_t coarse_counters =
      static_cast<std::uint64_t>(coarse_ctr_.size()) * 32;
  return tags + coarse_counters;
}

}  // namespace delta::umon
