// UMON sampled shadow-tag array (Qureshi & Patt, MICRO'06), as adapted by
// DELTA (Sec. II-B3):
//
//  * dynamic set sampling — only 1 out of `set_dilution` cache sets carries
//    shadow tags, so monitored blocks are those whose set index falls on a
//    sampled set;
//  * per-way-position hit counters give the full miss curve at single-way
//    granularity (used by the farsighted centralized allocator);
//  * DELTA's *coarse-grained* UMON variant exposes hit counts only at 4-way
//    bucket granularity, which is all the pain/gain windows need — the tag
//    array is the same, only the counter array shrinks.
//
// Way granularity is the paper's 32 KB allocation unit (one way of one
// 512 KB/16-way bank), so a monitor with max_ways = 192 models capacities up
// to 6 MB.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "umon/miss_curve.hpp"

namespace delta::umon {

struct UmonConfig {
  int max_ways = 192;       ///< Largest allocation tracked, in 32 KB ways.
  int sets_log2 = 9;        ///< Sets per way-slice (512 sets of 64 B lines = 32 KB).
  int set_dilution = 16;    ///< Monitor 1 in N sets (dynamic set sampling).
  int coarse_ways = 4;      ///< Bucket width of the coarse counters.
};

class Umon {
 public:
  explicit Umon(UmonConfig cfg = {});

  /// Feeds one LLC access (private-L2 miss) into the monitor.  Cheap for
  /// unmonitored blocks (one mask test).
  void access(BlockAddr block);

  /// Prefetch hint for the shadow-tag stack `block` would probe (no-op for
  /// unmonitored blocks).  Side-effect-free; issued by the chip's access
  /// pipeline one access ahead so the stack search hits warm lines.
  void prefetch(BlockAddr block) const;

  /// Scaled access/miss totals (sampled counts multiplied by dilution).
  double accesses() const { return scale(sampled_accesses_); }
  double misses_at_max() const { return scale(sampled_misses_); }
  std::uint64_t sampled_accesses() const { return sampled_accesses_; }

  /// Scaled hits with stack distance in [lo_ways, hi_ways) — i.e. the
  /// misses avoided by growing an allocation from lo to hi ways.  Uses the
  /// fine-grained counters.
  double hits_between(int lo_ways, int hi_ways) const;

  /// Same question answered from the coarse 4-way counters, with linear
  /// interpolation inside buckets — what DELTA's hardware actually sees.
  double coarse_hits_between(int lo_ways, int hi_ways) const;

  /// Full fine-grained miss curve (misses vs. ways, scaled).
  MissCurve miss_curve() const;

  /// Coarse-grained miss curve: exact at bucket boundaries, linearly
  /// interpolated inside buckets.
  MissCurve coarse_miss_curve() const;

  /// Exponential decay of all counters; invoked at reconfiguration
  /// boundaries so the monitor tracks phase changes.
  void decay(double keep_fraction = 0.5);

  void reset();

  int max_ways() const { return cfg_.max_ways; }
  const UmonConfig& config() const { return cfg_; }

  /// Storage cost of this monitor in bits (tags + counters), for the
  /// overhead analysis harness.
  std::uint64_t storage_bits() const;

 private:
  double scale(double x) const { return x * static_cast<double>(cfg_.set_dilution); }
  double scale(std::uint64_t x) const { return scale(static_cast<double>(x)); }

  UmonConfig cfg_;
  int num_stacks_ = 0;
  // Precomputed access() fast path: set extraction mask plus a mask+shift
  // pair replacing the divide/modulo when set_dilution is a power of two.
  std::uint32_t set_mask_ = 0;
  std::uint32_t dilution_mask_ = 0;
  int dilution_shift_ = 0;
  bool dilution_pow2_ = false;
  /// One LRU stack per monitored set; front = MRU.  Linear scan is fine:
  /// stacks are short and only 1/set_dilution accesses reach them.
  std::vector<std::vector<BlockAddr>> stacks_;
  std::vector<double> hit_ctr_;         ///< Fine: hits at stack distance d.
  std::vector<double> coarse_ctr_;      ///< Coarse: hits per 4-way bucket.
  double sampled_misses_ = 0;
  std::uint64_t sampled_accesses_ = 0;
};

}  // namespace delta::umon
