#include "check/invariants.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "core/cbt.hpp"
#include "core/way_partition.hpp"
#include "mem/address.hpp"
#include "obs/recorder.hpp"

namespace delta::check {

std::string to_string(const Violation& v) {
  std::ostringstream os;
  os << "invariant '" << invariant_kind_name(v.kind) << "' violated at epoch "
     << v.epoch;
  if (v.core != kInvalidCore) os << ", core " << v.core;
  if (v.bank != kInvalidBank) os << ", bank " << v.bank;
  os << ": " << v.detail << " (observed " << v.value << ", expected " << v.expect
     << ")";
  return os.str();
}

InvariantError::InvariantError(const Violation& v)
    : std::runtime_error(to_string(v)), v_(v) {}

void InvariantChecker::report(sim::Chip& chip, Violation v) {
  ++total_;
  if (obs::EventRecorder* rec = chip.event_sink())
    rec->record(obs::EventKind::kInvariantViolation, v.epoch, v.core, v.bank,
                static_cast<int>(v.kind),
                static_cast<std::uint64_t>(v.value < 0 ? 0 : v.value),
                static_cast<double>(v.value), static_cast<double>(v.expect));
  if (violations_.size() < opts_.max_recorded) violations_.push_back(v);
  if (opts_.throw_on_violation) throw InvariantError(v);
}

void InvariantChecker::on_epoch(sim::Chip& chip, std::uint64_t epoch) {
  check_partitioning(chip, epoch);
  check_cbts(chip, epoch);
  if (opts_.sweep_interval > 0 &&
      epoch % static_cast<std::uint64_t>(opts_.sweep_interval) == 0)
    check_residency(chip, epoch);
}

void InvariantChecker::check_partitioning(sim::Chip& chip, std::uint64_t epoch) {
  sim::Scheme& sch = chip.scheme();
  const int cores = chip.cores();
  if (sch.wp_unit(0) == nullptr) return;  // Scheme keeps no WP state.

  // Way conservation: every way owned by a real core.  Per-core totals are
  // accumulated for the accounting check below.
  std::vector<std::int64_t> per_core(static_cast<std::size_t>(cores), 0);
  for (BankId b = 0; b < cores; ++b) {
    const core::WpUnit* wp = sch.wp_unit(b);
    if (wp == nullptr) continue;
    for (int w = 0; w < wp->ways(); ++w) {
      const CoreId o = wp->owner(w);
      if (o < 0 || o >= cores) {
        report(chip, Violation{InvariantKind::kWayConservation, epoch, o, b, o,
                               0, "way " + std::to_string(w) +
                                      " has no valid owner"});
        continue;
      }
      ++per_core[static_cast<std::size_t>(o)];
    }
  }

  // Reserved home floor (Sec. II-D): an active core never drops below
  // min_ways in its own bank — neither challenges nor intra-bank transfers
  // may breach it.
  const int floor = chip.config().delta.min_ways;
  for (CoreId c = 0; c < cores; ++c) {
    if (!chip.slot(c).active) continue;
    const core::WpUnit* home = sch.wp_unit(c);
    if (home == nullptr) continue;
    const int have = home->ways_of(c);
    if (have < floor)
      report(chip, Violation{InvariantKind::kHomeFloor, epoch, c, c, have,
                             floor, "active core below reserved home floor"});
  }

  // Allocation accounting: the scheme's chip-wide total for a core must
  // equal the sum over all banks' WP units.  DELTA sums over its
  // acquisition-order list, so this catches acq_order drift (a bank the
  // core owns ways in but no longer tracks, or vice versa).
  for (CoreId c = 0; c < cores; ++c) {
    const std::int64_t claimed = sch.allocated_ways(chip, c);
    if (claimed != per_core[static_cast<std::size_t>(c)])
      report(chip,
             Violation{InvariantKind::kAllocationAccounting, epoch, c,
                       kInvalidBank, claimed,
                       per_core[static_cast<std::size_t>(c)],
                       "scheme's chip-wide way total disagrees with WP units"});
  }
}

void InvariantChecker::check_cbts(sim::Chip& chip, std::uint64_t epoch) {
  sim::Scheme& sch = chip.scheme();
  const int cores = chip.cores();
  for (CoreId c = 0; c < cores; ++c) {
    if (!chip.slot(c).active) continue;
    const core::Cbt* cbt = sch.cbt_of(c);
    if (cbt == nullptr) continue;

    const auto& ranges = cbt->ranges();
    if (ranges.empty()) {
      report(chip, Violation{InvariantKind::kCbtCoverage, epoch, c,
                             kInvalidBank, 0, 1, "CBT has no ranges"});
      continue;
    }

    // Coverage: ranges tile chunks 0..kNumChunks-1 contiguously, in order.
    int cursor = 0;
    bool covered = true;
    for (const core::CbtRange& r : ranges) {
      if (r.first_chunk != cursor || r.last_chunk < r.first_chunk) {
        covered = false;
        break;
      }
      cursor = r.last_chunk + 1;
    }
    if (!covered || cursor != mem::kNumChunks) {
      report(chip, Violation{InvariantKind::kCbtCoverage, epoch, c,
                             kInvalidBank, cursor, mem::kNumChunks,
                             "ranges do not tile the chunk space"});
      continue;  // Downstream checks assume full coverage.
    }

    // Flat-map agreement and per-bank chunk totals.
    std::vector<std::int64_t> chunks_of(static_cast<std::size_t>(cores), 0);
    for (const core::CbtRange& r : ranges) {
      if (r.bank < 0 || r.bank >= cores) {
        report(chip, Violation{InvariantKind::kCbtMapMismatch, epoch, c, r.bank,
                               r.bank, 0, "range maps an invalid bank"});
        continue;
      }
      chunks_of[static_cast<std::size_t>(r.bank)] +=
          r.last_chunk - r.first_chunk + 1;
      for (int ch = r.first_chunk; ch <= r.last_chunk; ++ch) {
        if (cbt->bank_for_chunk(ch) != r.bank) {
          report(chip,
                 Violation{InvariantKind::kCbtMapMismatch, epoch, c, r.bank,
                           cbt->bank_for_chunk(ch), r.bank,
                           "chunk map disagrees with range list at chunk " +
                               std::to_string(ch)});
          break;  // One report per range is enough.
        }
      }
    }

    // Reachability: a mapped bank must hold at least one of the core's ways
    // ("all of a core's addresses stay backed by capacity it owns").
    for (const core::CbtRange& r : ranges) {
      const core::WpUnit* wp = sch.wp_unit(r.bank);
      if (wp != nullptr && wp->ways_of(c) < 1)
        report(chip,
               Violation{InvariantKind::kCbtReachability, epoch, c, r.bank, 0,
                         1, "mapped bank holds no ways for the core"});
    }

    // Proportionality vs the allocation recorded by the last rebuild.
    // Live way counts drift afterwards (intra-bank transfers do not remap
    // addresses), so the rebuild-time record is the correct reference.
    // Largest-remainder rounding plus the starvation fix move a range by
    // at most 2 chunks off the exact proportional share.
    const auto& alloc = cbt->last_alloc();
    std::int64_t total = 0;
    for (const auto& [b, w] : alloc) total += w;
    if (total > 0) {
      std::vector<bool> in_alloc(static_cast<std::size_t>(cores), false);
      for (const auto& [b, w] : alloc) {
        if (b < 0 || b >= cores) continue;  // Reported above via ranges.
        in_alloc[static_cast<std::size_t>(b)] = true;
        const double exact = static_cast<double>(mem::kNumChunks) *
                             static_cast<double>(w) /
                             static_cast<double>(total);
        const std::int64_t actual = chunks_of[static_cast<std::size_t>(b)];
        if (w > 0 && actual < 1)
          report(chip, Violation{InvariantKind::kCbtProportionality, epoch, c,
                                 b, actual, 1,
                                 "allocated bank mapped to no chunks"});
        else if (std::abs(static_cast<double>(actual) - exact) > 2.0)
          report(chip,
                 Violation{InvariantKind::kCbtProportionality, epoch, c, b,
                           actual, std::llround(exact),
                           "range size drifted from the proportional share"});
      }
      for (BankId b = 0; b < cores; ++b)
        if (chunks_of[static_cast<std::size_t>(b)] > 0 &&
            !in_alloc[static_cast<std::size_t>(b)])
          report(chip,
                 Violation{InvariantKind::kCbtProportionality, epoch, c, b,
                           chunks_of[static_cast<std::size_t>(b)], 0,
                           "bank mapped but absent from rebuild allocation"});
    }
  }
}

void InvariantChecker::check_residency(sim::Chip& chip, std::uint64_t epoch) {
  sim::Scheme& sch = chip.scheme();
  const int cores = chip.cores();
  std::vector<std::int64_t> owned(static_cast<std::size_t>(cores), 0);
  std::vector<BlockAddr> set_blocks;
  for (BankId b = 0; b < cores; ++b) {
    std::fill(owned.begin(), owned.end(), 0);
    std::uint32_t cur_set = ~std::uint32_t{0};
    set_blocks.clear();
    chip.bank(b).for_each_line([&](std::uint32_t set, int way, BlockAddr block,
                                   CoreId owner) {
      (void)way;
      if (set != cur_set) {
        cur_set = set;
        set_blocks.clear();
      }
      for (BlockAddr prev : set_blocks)
        if (prev == block)
          report(chip, Violation{InvariantKind::kDuplicateLine, epoch, owner, b,
                                 static_cast<std::int64_t>(set), 0,
                                 "block resident twice in one set"});
      set_blocks.push_back(block);
      if (owner < 0 || owner >= cores) {
        report(chip, Violation{InvariantKind::kResidencyAgreement, epoch, owner,
                               b, owner, 0, "resident line with invalid owner"});
        return;
      }
      ++owned[static_cast<std::size_t>(owner)];
      // The line must sit exactly where its owner's *current* mapping puts
      // the block — this is what bulk invalidation after a remap preserves.
      const sim::BankTarget t = sch.map(chip, owner, block);
      if (t.bank != b || t.set != set)
        report(chip,
               Violation{InvariantKind::kResidencyAgreement, epoch, owner, b,
                         t.bank, b,
                         "line resident outside its owner's current mapping"});
    });
    for (CoreId c = 0; c < cores; ++c) {
      const std::int64_t tracked = sch.tracked_occupancy(b, c);
      if (tracked >= 0 && tracked != owned[static_cast<std::size_t>(c)])
        report(chip, Violation{InvariantKind::kOccupancyAgreement, epoch, c, b,
                               tracked, owned[static_cast<std::size_t>(c)],
                               "enforcer occupancy counter out of sync"});
    }
  }
}

void check_directory(const mem::MesifDirectory& dir, std::uint64_t epoch,
                     std::vector<Violation>& out) {
  const int n = dir.num_cores();
  const std::uint64_t valid_mask =
      n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  dir.for_each_entry([&](BlockAddr block, mem::CoherenceState st,
                         std::uint64_t sharers, CoreId fwd) {
    const auto sharer_count = static_cast<std::int64_t>(std::popcount(sharers));
    const std::string where = " (block " + std::to_string(block) + ")";
    if ((sharers & ~valid_mask) != 0)
      out.push_back(Violation{InvariantKind::kDirectoryState, epoch,
                              kInvalidCore, kInvalidBank, sharer_count, n,
                              "sharer bit beyond core count" + where});
    switch (st) {
      case mem::CoherenceState::kInvalid:
        if (sharers != 0)
          out.push_back(Violation{InvariantKind::kDirectoryState, epoch,
                                  kInvalidCore, kInvalidBank, sharer_count, 0,
                                  "invalid entry with sharers" + where});
        break;
      case mem::CoherenceState::kShared:
        if (sharer_count < 1)
          out.push_back(Violation{InvariantKind::kDirectoryState, epoch,
                                  kInvalidCore, kInvalidBank, sharer_count, 1,
                                  "shared entry without sharers" + where});
        if (fwd != kInvalidCore &&
            (fwd < 0 || fwd >= n || ((sharers >> fwd) & 1) == 0))
          out.push_back(Violation{InvariantKind::kDirectoryState, epoch, fwd,
                                  kInvalidBank, fwd, -1,
                                  "forwarder is not a sharer" + where});
        break;
      case mem::CoherenceState::kExclusive:
      case mem::CoherenceState::kModified:
        if (sharer_count != 1)
          out.push_back(Violation{InvariantKind::kDirectoryState, epoch,
                                  kInvalidCore, kInvalidBank, sharer_count, 1,
                                  "E/M entry must have exactly one sharer" +
                                      where});
        break;
    }
  });
}

void check_directory_agreement(
    const mem::MesifDirectory& dir,
    const std::function<bool(CoreId, BlockAddr)>& resident, std::uint64_t epoch,
    std::vector<Violation>& out) {
  const int n = dir.num_cores();
  dir.for_each_entry([&](BlockAddr block, mem::CoherenceState st,
                         std::uint64_t sharers, CoreId fwd) {
    (void)st;
    (void)fwd;
    for (CoreId c = 0; c < n; ++c)
      if (((sharers >> c) & 1) != 0 && !resident(c, block))
        out.push_back(
            Violation{InvariantKind::kDirectoryAgreement, epoch, c,
                      kInvalidBank, 0, 1,
                      "directory lists a sharer without a resident copy "
                      "(block " +
                          std::to_string(block) + ")"});
  });
}

}  // namespace delta::check
