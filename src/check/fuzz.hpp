// Deterministic seeded fuzz harness (driven by tools/delta_fuzz.cpp and
// the tier-2 `check` tests).
//
// One 64-bit seed fully determines a fuzz case: the app mix (random SPEC
// profiles with a chance of idle cores), the machine/DELTA parameter draw,
// and the workload seed.  The case then runs under every scheme with the
// InvariantChecker attached and the differential oracle across the four
// results.  Because everything downstream of the seed is deterministic —
// Xoshiro/SplitMix RNG, json_num formatting — the per-case JSON summary is
// byte-identical across repeat runs and across worker-thread counts, which
// verify_determinism() exploits as an end-to-end reproducibility test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"

namespace delta::check {

struct FuzzOptions {
  /// Case i uses seed base_seed + i (so a failure report names a seed that
  /// reproduces standalone via run_fuzz_case).
  std::uint64_t base_seed = 0xF0552;
  int cases = 25;
  /// Worker threads for the batch (1 = serial); each case is independent.
  unsigned threads = 1;
  /// MachineConfig::intra_jobs forwarded to every drawn config: worker
  /// threads *inside* each simulation (1 = serial epoch loop).  Results
  /// are byte-identical at any value, so the determinism check doubles as
  /// an end-to-end test of the intra-run engine when this is > 1.
  int intra_jobs = 1;
  /// MachineConfig::intra_pin forwarded to every drawn config: opt-in
  /// CPU-affinity pinning for the intra-run workers.  Never affects
  /// results; exposed so fuzz batches can exercise the pinned scheduler.
  bool intra_pin = false;
  /// Pin access budgets to the nominal CPI so the differential oracle can
  /// assert cross-scheme access-count equality.
  bool lockstep = true;
  bool check_invariants = true;
  bool differential = true;
  /// Residency-sweep cadence forwarded to CheckerOptions (the sweep is
  /// O(LLC capacity), so fuzz runs default to a coarser interval).
  int sweep_interval = 4;
};

struct FuzzCaseResult {
  std::uint64_t seed = 0;
  bool ok = true;
  /// Invariant + differential violations; detail is prefixed with the
  /// scheme the run belonged to.
  std::vector<Violation> violations;
  /// Deterministic json_summary of the four scheme runs.
  std::string json;
  /// Space-separated app list, for reproducing the drawn mix by eye.
  std::string mix_desc;
};

struct FuzzReport {
  std::vector<FuzzCaseResult> cases;
  int failures = 0;
  bool ok() const { return failures == 0; }
};

/// Runs one fully seeded case: draw config + mix, run all four schemes
/// with invariants on, cross-check, summarise.
FuzzCaseResult run_fuzz_case(std::uint64_t seed, const FuzzOptions& opt);

/// Runs opt.cases cases (seeds base_seed..base_seed+cases-1) over
/// opt.threads workers.  Case order in the report is by seed regardless of
/// completion order.
FuzzReport run_fuzz(const FuzzOptions& opt);

struct DeterminismReport {
  bool ok = true;
  std::uint64_t seed = 0;    ///< First mismatching seed when !ok.
  std::string detail;
};

/// Runs the batch twice — with threads_a and threads_b workers — and
/// requires every case's JSON summary to be byte-identical.  Catches both
/// run-to-run nondeterminism and cross-thread-count divergence (shared
/// mutable state, iteration-order leaks).
DeterminismReport verify_determinism(const FuzzOptions& opt, unsigned threads_a,
                                     unsigned threads_b);

}  // namespace delta::check
