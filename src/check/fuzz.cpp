#include "check/fuzz.hpp"

#include <array>
#include <span>

#include "check/differential.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workload/irregular.hpp"
#include "workload/mixes.hpp"
#include "workload/spec.hpp"

namespace delta::check {
namespace {

/// Draws the machine configuration for a case.  Every knob that interacts
/// with the invariants gets exercised: both enforcement flavours, both
/// chunk-index encodings, tight and loose reconfiguration cadences, and a
/// home floor down at 2 ways so conservation margins are thin.
sim::MachineConfig draw_config(Rng& rng, std::uint64_t seed,
                               const FuzzOptions& opt) {
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 4 + static_cast<int>(rng.below(9));     // 4..12
  cfg.measure_epochs = 16 + static_cast<int>(rng.below(25));  // 16..40
  std::uint64_t sm = seed;
  cfg.seed = splitmix64(sm);
  cfg.lockstep_accesses = opt.lockstep;
  cfg.intra_jobs = opt.intra_jobs;
  cfg.intra_pin = opt.intra_pin;
  cfg.measured_mlp = rng.chance(0.5);

  constexpr std::array<int, 3> kInter = {5, 10, 20};
  constexpr std::array<int, 2> kIntra = {1, 2};
  constexpr std::array<double, 3> kGainThresh = {0.25, 0.5, 1.0};
  constexpr std::array<int, 2> kMinWays = {2, 4};
  constexpr std::array<int, 2> kInterDelta = {2, 4};
  constexpr std::array<int, 2> kIntraDelta = {1, 2};
  cfg.delta.inter_interval_epochs = kInter[rng.below(kInter.size())];
  cfg.delta.intra_interval_epochs = kIntra[rng.below(kIntra.size())];
  cfg.delta.gain_threshold = kGainThresh[rng.below(kGainThresh.size())];
  cfg.delta.min_ways = kMinWays[rng.below(kMinWays.size())];
  cfg.delta.inter_delta_ways = kInterDelta[rng.below(kInterDelta.size())];
  cfg.delta.intra_delta_ways = kIntraDelta[rng.below(kIntraDelta.size())];
  cfg.delta.reverse_chunk_bits = !rng.chance(0.25);
  cfg.delta.intra_enforcement = rng.chance(0.25)
                                    ? core::IntraEnforcement::kOccupancy
                                    : core::IntraEnforcement::kWayMask;
  return cfg;
}

// Every drawable app: the Table III stand-ins plus the irregular-access
// kernels, so fuzz cases also exercise the flat-miss-curve paths of each
// allocator (pain/gain and clustering with nothing to gain).
const std::vector<const workload::AppProfile*>& fuzz_app_pool() {
  static const std::vector<const workload::AppProfile*> pool = [] {
    std::vector<const workload::AppProfile*> v;
    for (const auto& p : workload::spec_profiles()) v.push_back(&p);
    for (const auto& p : workload::irregular_profiles()) v.push_back(&p);
    return v;
  }();
  return pool;
}

workload::Mix draw_mix(Rng& rng, std::uint64_t seed, int cores) {
  const auto& profiles = fuzz_app_pool();
  workload::Mix mix;
  mix.name = "fuzz-" + std::to_string(seed);
  mix.composition = "fuzz";
  bool any_active = false;
  for (int c = 0; c < cores; ++c) {
    if (rng.chance(0.2)) {
      mix.apps.push_back("idle");
    } else {
      mix.apps.push_back(profiles[rng.below(profiles.size())]->short_name);
      any_active = true;
    }
  }
  if (!any_active) mix.apps[0] = profiles.front()->short_name;
  return mix;
}

void append_tagged(std::vector<Violation>& dst, std::vector<Violation> src,
                   const std::string& scheme) {
  for (Violation& v : src) {
    v.detail = scheme + ": " + v.detail;
    dst.push_back(std::move(v));
  }
}

}  // namespace

FuzzCaseResult run_fuzz_case(std::uint64_t seed, const FuzzOptions& opt) {
  Rng rng(seed);
  const sim::MachineConfig cfg = draw_config(rng, seed, opt);
  const workload::Mix mix = draw_mix(rng, seed, cfg.cores);

  FuzzCaseResult out;
  out.seed = seed;
  for (const std::string& a : mix.apps) {
    if (!out.mix_desc.empty()) out.mix_desc += ' ';
    out.mix_desc += a;
  }

  // The full scheme pool: the paper's four plus the literature-comparison
  // pair (carma, lfoc), all cross-checked by the same oracle.
  std::vector<sim::MixResult> results;
  results.reserve(sim::kAllSchemeKinds.size());
  for (sim::SchemeKind kind : sim::kAllSchemeKinds) {
    CheckerOptions copts;
    copts.sweep_interval = opt.sweep_interval;
    InvariantChecker checker(copts);
    results.push_back(sim::run_mix(cfg, mix, kind, {}, /*obs=*/nullptr,
                                   opt.check_invariants ? &checker : nullptr));
    append_tagged(out.violations, checker.violations(),
                  std::string(sim::to_string(kind)));
    if (checker.total_violations() >
        static_cast<std::uint64_t>(checker.violations().size()))
      out.violations.push_back(Violation{
          InvariantKind::kCount, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(checker.total_violations()),
          static_cast<std::int64_t>(checker.violations().size()),
          std::string(sim::to_string(kind)) + ": further violations elided"});
  }

  if (opt.differential)
    append_tagged(out.violations, diff_schemes(results, opt.lockstep), "diff");

  out.json = sim::json_summary(results, /*obs=*/nullptr);
  out.ok = out.violations.empty();
  return out;
}

FuzzReport run_fuzz(const FuzzOptions& opt) {
  // Warm lazily-initialised singletons before fanning out workers.
  (void)workload::spec_profiles();
  (void)workload::irregular_profiles();

  FuzzReport report;
  report.cases.resize(static_cast<std::size_t>(opt.cases < 0 ? 0 : opt.cases));
  parallel_for(
      0, report.cases.size(),
      [&](std::size_t i) {
        report.cases[i] =
            run_fuzz_case(opt.base_seed + static_cast<std::uint64_t>(i), opt);
      },
      opt.threads);
  for (const FuzzCaseResult& c : report.cases)
    if (!c.ok) ++report.failures;
  return report;
}

DeterminismReport verify_determinism(const FuzzOptions& opt, unsigned threads_a,
                                     unsigned threads_b) {
  FuzzOptions oa = opt;
  oa.threads = threads_a;
  FuzzOptions ob = opt;
  ob.threads = threads_b;
  const FuzzReport ra = run_fuzz(oa);
  const FuzzReport rb = run_fuzz(ob);

  DeterminismReport out;
  for (std::size_t i = 0; i < ra.cases.size() && i < rb.cases.size(); ++i) {
    const std::string& ja = ra.cases[i].json;
    const std::string& jb = rb.cases[i].json;
    if (ja == jb) continue;
    out.ok = false;
    out.seed = ra.cases[i].seed;
    std::size_t pos = 0;
    while (pos < ja.size() && pos < jb.size() && ja[pos] == jb[pos]) ++pos;
    out.detail = "seed " + std::to_string(out.seed) +
                 ": JSON summaries diverge at byte " + std::to_string(pos) +
                 " (" + std::to_string(threads_a) + " vs " +
                 std::to_string(threads_b) + " threads)";
    return out;
  }
  return out;
}

}  // namespace delta::check
