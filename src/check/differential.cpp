#include "check/differential.hpp"

namespace delta::check {
namespace {

void check_one(const sim::MixResult& r, std::vector<Violation>& out) {
  using noc::MsgType;
  std::uint64_t total_misses = 0;
  for (const sim::AppResult& a : r.apps) {
    total_misses += a.llc_misses;
    if (a.llc_misses > a.llc_accesses)
      out.push_back(Violation{
          InvariantKind::kDemandConservation, 0, a.core, kInvalidBank,
          static_cast<std::int64_t>(a.llc_misses),
          static_cast<std::int64_t>(a.llc_accesses),
          r.scheme + ": app has more misses than accesses"});
  }

  // Every miss goes to memory exactly once, and every request is answered.
  const std::uint64_t mem_req = r.traffic.total(MsgType::kMemRequest);
  const std::uint64_t mem_resp = r.traffic.total(MsgType::kMemResponse);
  if (mem_req != total_misses)
    out.push_back(Violation{InvariantKind::kDemandConservation, 0, kInvalidCore,
                            kInvalidBank, static_cast<std::int64_t>(mem_req),
                            static_cast<std::int64_t>(total_misses),
                            r.scheme + ": memory requests != LLC misses"});
  if (mem_resp != mem_req)
    out.push_back(Violation{InvariantKind::kDemandConservation, 0, kInvalidCore,
                            kInvalidBank, static_cast<std::int64_t>(mem_resp),
                            static_cast<std::int64_t>(mem_req),
                            r.scheme + ": memory responses != requests"});
  const std::uint64_t llc_req = r.traffic.total(MsgType::kLlcRequest);
  const std::uint64_t llc_resp = r.traffic.total(MsgType::kLlcResponse);
  if (llc_req != llc_resp)
    out.push_back(Violation{InvariantKind::kDemandConservation, 0, kInvalidCore,
                            kInvalidBank, static_cast<std::int64_t>(llc_resp),
                            static_cast<std::int64_t>(llc_req),
                            r.scheme + ": LLC responses != requests"});

  // Static schemes never reconfigure: no control-plane messages, no
  // bulk-invalidated lines.
  if (r.scheme == "snuca" || r.scheme == "private") {
    if (r.control.total() != 0)
      out.push_back(Violation{
          InvariantKind::kStaticControl, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.control.total()), 0,
          r.scheme + ": static scheme emitted control messages"});
    if (r.invalidated_lines != 0 ||
        r.traffic.total(MsgType::kInvalidation) != 0)
      out.push_back(Violation{
          InvariantKind::kStaticControl, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.invalidated_lines), 0,
          r.scheme + ": static scheme invalidated lines"});
  }

  // LFOC resizes shared way slices over a static S-NUCA mapping: addresses
  // never remap, so it must not invalidate a single line, and its control
  // plane is purely collect/broadcast pairs (one of each per tile and
  // reconfiguration — never auction traffic).
  if (r.scheme == "lfoc") {
    if (r.invalidated_lines != 0 ||
        r.traffic.total(MsgType::kInvalidation) != 0)
      out.push_back(Violation{
          InvariantKind::kStaticControl, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.invalidated_lines), 0,
          r.scheme + ": slice resize must not invalidate lines"});
    if (r.traffic.total(MsgType::kCentralCollect) !=
        r.traffic.total(MsgType::kCentralBroadcast))
      out.push_back(Violation{
          InvariantKind::kStaticControl, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.traffic.total(MsgType::kCentralCollect)),
          static_cast<std::int64_t>(r.traffic.total(MsgType::kCentralBroadcast)),
          r.scheme + ": collect/broadcast messages must pair up"});
    if (r.control.market != 0)
      out.push_back(Violation{
          InvariantKind::kStaticControl, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.control.market), 0,
          r.scheme + ": clustering scheme emitted auction traffic"});
  }

  // CARMA clears sealed-bid auctions: a way lot is only ever granted to a
  // round's bidder, so grants can never outnumber bids, and its hub-style
  // collect/broadcast counters stay untouched.
  if (r.scheme == "carma") {
    if (r.traffic.total(MsgType::kMarketGrant) >
        r.traffic.total(MsgType::kMarketBid))
      out.push_back(Violation{
          InvariantKind::kStaticControl, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.traffic.total(MsgType::kMarketGrant)),
          static_cast<std::int64_t>(r.traffic.total(MsgType::kMarketBid)),
          r.scheme + ": auction granted more lots than bids were placed"});
    if (r.traffic.total(MsgType::kCentralCollect) != 0 ||
        r.traffic.total(MsgType::kCentralBroadcast) != 0)
      out.push_back(Violation{
          InvariantKind::kStaticControl, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.control.central), 0,
          r.scheme + ": auction scheme emitted centralized-hub traffic"});
  }
}

}  // namespace

std::vector<Violation> diff_schemes(std::span<const sim::MixResult> results,
                                    bool lockstep) {
  std::vector<Violation> out;
  if (results.empty()) return out;
  const sim::MixResult& ref = results.front();

  for (const sim::MixResult& r : results) {
    check_one(r, out);
    if (r.measured_epochs != ref.measured_epochs)
      out.push_back(Violation{
          InvariantKind::kAccessConservation, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.measured_epochs),
          static_cast<std::int64_t>(ref.measured_epochs),
          r.scheme + ": measured window differs from " + ref.scheme});
    if (r.apps.size() != ref.apps.size()) {
      out.push_back(Violation{
          InvariantKind::kAccessConservation, 0, kInvalidCore, kInvalidBank,
          static_cast<std::int64_t>(r.apps.size()),
          static_cast<std::int64_t>(ref.apps.size()),
          r.scheme + ": app count differs from " + ref.scheme});
      continue;
    }
    if (!lockstep) continue;
    // Lockstep runs pin the epoch access budget to the nominal CPI, so the
    // per-app access streams — and hence the counts — must be identical
    // across schemes.
    for (std::size_t i = 0; i < r.apps.size(); ++i) {
      if (r.apps[i].llc_accesses != ref.apps[i].llc_accesses)
        out.push_back(Violation{
            InvariantKind::kAccessConservation, 0, r.apps[i].core,
            kInvalidBank, static_cast<std::int64_t>(r.apps[i].llc_accesses),
            static_cast<std::int64_t>(ref.apps[i].llc_accesses),
            r.scheme + ": per-app access count differs from " + ref.scheme});
    }
  }
  return out;
}

}  // namespace delta::check
