// Differential-scheme oracle: conservation properties every scheme shares.
//
// The four schemes (snuca, private, ideal-central, delta) model the same
// chip on the same workload, so some totals must agree regardless of
// policy: every LLC miss produces exactly one memory request and one
// response, LLC request/response message counts pair up, static schemes
// emit no control-plane traffic and invalidate no lines, and — when the
// runs were produced with MachineConfig::lockstep_accesses (pinning the
// access budget to the nominal CPI instead of the measured feedback loop)
// — the per-core access streams, and therefore the per-app access counts,
// are identical across schemes.  Violations reuse check::Violation so the
// fuzz harness reports one unified list.
#pragma once

#include <span>
#include <vector>

#include "check/invariants.hpp"
#include "sim/metrics.hpp"

namespace delta::check {

/// Cross-checks `results` (one MixResult per scheme, same config/mix/seed).
/// `lockstep` asserts the per-app access-count equality, which only holds
/// for runs made with cfg.lockstep_accesses = true.
std::vector<Violation> diff_schemes(std::span<const sim::MixResult> results,
                                    bool lockstep);

}  // namespace delta::check
