// Chip-wide invariant checker (tier-2 `check` test layer).
//
// Every partitioning scheme in the simulator maintains redundant state —
// way-ownership bitmaps, per-core CBT range tables, occupancy counters,
// the acquisition-order list the controller sums allocations over — and
// the paper's correctness story rests on these views agreeing at every
// reconfiguration boundary.  The InvariantChecker audits that agreement
// from the outside: it plugs into Chip's epoch hook (sim::EpochChecker),
// runs right after the scheme's begin_epoch() reconfiguration, and
// validates
//
//   * way conservation per bank: every way owned by a real core,
//   * the reserved home floor (min_ways) for every active core,
//   * allocation accounting: the scheme's chip-wide way total for a core
//     equals the sum over all banks' WP units (catches acq_order drift),
//   * CBT validity: ranges tile the full 256-chunk index space, the flat
//     chunk map matches the range list, every mapped bank is reachable
//     (holds >= 1 way), and range sizes stay proportional to the
//     allocation recorded at rebuild time,
//   * residency agreement: every resident line is in exactly the (bank,
//     set) its owner's current mapping produces — which subsumes
//     bulk-invalidation completeness after a remap — with no duplicate
//     blocks per set, and occupancy-enforcement counters matching the
//     swept per-core line counts.
//
// Violations are recorded (bounded), optionally thrown, and mirrored into
// the observability event trace as kInvariantViolation events so failing
// runs can be inspected with the PR-1 exporters.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "mem/directory.hpp"
#include "sim/chip.hpp"

namespace delta::check {

enum class InvariantKind : std::uint8_t {
  kWayConservation = 0,   ///< A way's owner is not a valid core id.
  kHomeFloor,             ///< Active core below min_ways in its home bank.
  kAllocationAccounting,  ///< allocated_ways() != sum of per-bank ways.
  kCbtCoverage,           ///< Ranges do not tile chunks 0..255 contiguously.
  kCbtMapMismatch,        ///< Flat chunk map disagrees with the range list.
  kCbtReachability,       ///< A mapped bank holds no ways for the core.
  kCbtProportionality,    ///< Range size drifts from the rebuild allocation.
  kResidencyAgreement,    ///< Line resident where its owner no longer maps.
  kDuplicateLine,         ///< Same block twice in one set.
  kOccupancyAgreement,    ///< Enforcer counter != swept per-core line count.
  kDirectoryState,        ///< MESIF entry breaks its state's sharer rules.
  kDirectoryAgreement,    ///< Directory sharer without a resident copy.
  kAccessConservation,    ///< Cross-scheme access totals diverge (lockstep).
  kDemandConservation,    ///< Miss/memory/NoC message totals inconsistent.
  kStaticControl,         ///< Static scheme emitted control/invalidations.
  kCount
};

constexpr std::string_view invariant_kind_name(InvariantKind k) {
  switch (k) {
    case InvariantKind::kWayConservation: return "way_conservation";
    case InvariantKind::kHomeFloor: return "home_floor";
    case InvariantKind::kAllocationAccounting: return "allocation_accounting";
    case InvariantKind::kCbtCoverage: return "cbt_coverage";
    case InvariantKind::kCbtMapMismatch: return "cbt_map_mismatch";
    case InvariantKind::kCbtReachability: return "cbt_reachability";
    case InvariantKind::kCbtProportionality: return "cbt_proportionality";
    case InvariantKind::kResidencyAgreement: return "residency_agreement";
    case InvariantKind::kDuplicateLine: return "duplicate_line";
    case InvariantKind::kOccupancyAgreement: return "occupancy_agreement";
    case InvariantKind::kDirectoryState: return "directory_state";
    case InvariantKind::kDirectoryAgreement: return "directory_agreement";
    case InvariantKind::kAccessConservation: return "access_conservation";
    case InvariantKind::kDemandConservation: return "demand_conservation";
    case InvariantKind::kStaticControl: return "static_control";
    case InvariantKind::kCount: break;
  }
  return "?";
}

struct Violation {
  InvariantKind kind = InvariantKind::kCount;
  std::uint64_t epoch = 0;
  CoreId core = kInvalidCore;
  BankId bank = kInvalidBank;
  std::int64_t value = 0;   ///< Observed.
  std::int64_t expect = 0;  ///< Expected / bound.
  std::string detail;
};

std::string to_string(const Violation& v);

/// Thrown by InvariantChecker when CheckerOptions::throw_on_violation is
/// set (fail-fast mode for tests); what() carries the formatted violation.
class InvariantError : public std::runtime_error {
 public:
  explicit InvariantError(const Violation& v);
  const Violation& violation() const { return v_; }

 private:
  Violation v_;
};

struct CheckerOptions {
  /// Throw InvariantError on the first violation instead of accumulating.
  bool throw_on_violation = false;
  /// Detail records kept; past this, violations are counted but not stored.
  std::size_t max_recorded = 256;
  /// Run the O(capacity) residency sweep every N epochs (0 disables it;
  /// the cheap structural checks still run every epoch).
  int sweep_interval = 1;
};

class InvariantChecker : public sim::EpochChecker {
 public:
  explicit InvariantChecker(CheckerOptions opts = {}) : opts_(opts) {}

  /// Chip epoch hook: structural checks every epoch, residency sweep at
  /// the configured cadence.
  void on_epoch(sim::Chip& chip, std::uint64_t epoch) override;

  // Individual passes, callable one-shot from tests.
  void check_partitioning(sim::Chip& chip, std::uint64_t epoch);
  void check_cbts(sim::Chip& chip, std::uint64_t epoch);
  void check_residency(sim::Chip& chip, std::uint64_t epoch);

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t total_violations() const { return total_; }
  bool clean() const { return total_ == 0; }
  void clear() {
    violations_.clear();
    total_ = 0;
  }

 private:
  void report(sim::Chip& chip, Violation v);

  CheckerOptions opts_;
  std::vector<Violation> violations_;
  std::uint64_t total_ = 0;
};

// ---- MESIF directory invariants (standalone: the directory is exercised
// by the multithreaded support path and by tests, not by Chip). ----

/// Per-entry state rules: Invalid entries have no sharers, E/M exactly one,
/// Shared at least one with any designated forwarder among them, and no
/// sharer bit at or above the core count.
void check_directory(const mem::MesifDirectory& dir, std::uint64_t epoch,
                     std::vector<Violation>& out);

/// Sharer-implies-resident cross-check against the caller's cache state.
/// Only meaningful when caches and directory are kept in lockstep (the
/// mt_sim private-fill path evicts without notifying the directory, so it
/// is *not* a valid caller).
void check_directory_agreement(
    const mem::MesifDirectory& dir,
    const std::function<bool(CoreId, BlockAddr)>& resident, std::uint64_t epoch,
    std::vector<Violation>& out);

}  // namespace delta::check
