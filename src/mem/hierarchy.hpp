// Private L1/L2 cache hierarchy (paper Table II: 32 KB 8-way split L1,
// 128 KB 8-way inclusive L2) and inclusive-LLC back-invalidation support.
//
// The multi-program sweeps drive the LLC with post-L2 streams directly
// (DESIGN.md §5), but the hierarchy substrate matters for two things the
// paper relies on:
//   * producing post-L2 streams from raw reference streams (what the
//     Sniper front end did for the authors), and
//   * the *inclusive-LLC* interaction: when the LLC evicts a line, copies
//     in the private levels must be back-invalidated.  This is exactly why
//     each core reserves minWays = 4 ways = 128 KB (one L2's worth) in its
//     home bank (Sec. III-A) — an LLC allocation smaller than L2 would
//     thrash the private levels through back-invalidations.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "mem/cache.hpp"

namespace delta::mem {

struct HierarchyConfig {
  // L1 data cache: 32 KB, 8-way, 64 B lines -> 64 sets.
  std::uint32_t l1_sets = 64;
  int l1_ways = 8;
  // L2: 128 KB, 8-way -> 256 sets; inclusive of L1.
  std::uint32_t l2_sets = 256;
  int l2_ways = 8;
};

struct HierarchyStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;  ///< == LLC accesses emitted.
  std::uint64_t back_invalidations = 0;  ///< Lines killed by LLC evictions.
  double l1_hit_rate() const {
    return accesses ? static_cast<double>(l1_hits) / static_cast<double>(accesses) : 0.0;
  }
  double l2_miss_ratio() const {
    return accesses ? static_cast<double>(l2_misses) / static_cast<double>(accesses)
                    : 0.0;
  }
};

/// One core's private L1+L2.  access() returns true when the reference
/// must go to the LLC (L2 miss).  The L2 is inclusive of the L1: an L2
/// eviction back-invalidates the L1 copy.
class PrivateHierarchy {
 public:
  explicit PrivateHierarchy(HierarchyConfig cfg = {});

  /// Demand reference; returns true iff it missed both levels (LLC-bound).
  bool access(BlockAddr block);

  /// Inclusive-LLC support: the LLC evicted `block`, so any copies in the
  /// private levels must be dropped.  Returns the number of levels hit.
  int back_invalidate(BlockAddr block);

  bool in_l1(BlockAddr block) const;
  bool in_l2(BlockAddr block) const;

  const HierarchyStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HierarchyStats{}; }

 private:
  std::uint32_t l1_set(BlockAddr b) const { return static_cast<std::uint32_t>(b % cfg_.l1_sets); }
  std::uint32_t l2_set(BlockAddr b) const { return static_cast<std::uint32_t>(b % cfg_.l2_sets); }

  HierarchyConfig cfg_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  HierarchyStats stats_;
};

}  // namespace delta::mem
