#include "mem/directory.hpp"

#include <bit>
#include <cassert>

namespace delta::mem {

MesifDirectory::MesifDirectory(int num_cores) : num_cores_(num_cores) {
  assert(num_cores >= 1 && num_cores <= 64);
}

int MesifDirectory::popcount(std::uint64_t m) { return std::popcount(m); }

CoreId MesifDirectory::any_sharer(std::uint64_t m) {
  return m ? static_cast<CoreId>(std::countr_zero(m)) : kInvalidCore;
}

CoherenceAction MesifDirectory::on_read(CoreId core, BlockAddr block) {
  assert(core >= 0 && core < num_cores_);
  const common::LockGuard lock(mu_);
  ++stats_.reads;
  CoherenceAction act{};
  Entry& e = dir_[block];

  switch (e.st) {
    case CoherenceState::kInvalid:
      e.st = CoherenceState::kExclusive;
      e.sharers = bit(core);
      e.fwd = core;
      act.from_memory = true;
      ++stats_.memory_fetches;
      break;
    case CoherenceState::kExclusive:
    case CoherenceState::kModified: {
      if (e.sharers & bit(core)) break;  // Already the holder; silent re-read.
      const CoreId holder = any_sharer(e.sharers);
      if (e.st == CoherenceState::kModified) ++stats_.writebacks;
      e.st = CoherenceState::kShared;
      e.sharers |= bit(core);
      e.fwd = core;  // MESIF: the most recent requester becomes forwarder.
      act.forwarded = true;
      act.forwarder = holder;
      ++stats_.forwards;
      break;
    }
    case CoherenceState::kShared: {
      if (e.sharers & bit(core)) break;
      const CoreId src = e.fwd != kInvalidCore ? e.fwd : any_sharer(e.sharers);
      e.sharers |= bit(core);
      e.fwd = core;
      act.forwarded = true;
      act.forwarder = src;
      ++stats_.forwards;
      break;
    }
  }
  return act;
}

CoherenceAction MesifDirectory::on_write(CoreId core, BlockAddr block) {
  assert(core >= 0 && core < num_cores_);
  const common::LockGuard lock(mu_);
  ++stats_.writes;
  CoherenceAction act{};
  Entry& e = dir_[block];

  switch (e.st) {
    case CoherenceState::kInvalid:
      act.from_memory = true;
      ++stats_.memory_fetches;
      break;
    case CoherenceState::kExclusive:
    case CoherenceState::kModified:
      if (e.sharers == bit(core)) break;  // Upgrade in place.
      act.forwarded = true;
      act.forwarder = any_sharer(e.sharers);
      act.invalidations = 1;
      stats_.invalidations_sent += 1;
      ++stats_.forwards;
      if (e.st == CoherenceState::kModified) ++stats_.writebacks;
      break;
    case CoherenceState::kShared: {
      const std::uint64_t others = e.sharers & ~bit(core);
      act.invalidations = popcount(others);
      stats_.invalidations_sent += static_cast<std::uint64_t>(act.invalidations);
      if (!(e.sharers & bit(core))) {
        const CoreId src = e.fwd != kInvalidCore ? e.fwd : any_sharer(e.sharers);
        act.forwarded = true;
        act.forwarder = src;
        ++stats_.forwards;
      }
      break;
    }
  }
  e.st = CoherenceState::kModified;
  e.sharers = bit(core);
  e.fwd = core;
  return act;
}

void MesifDirectory::on_evict(CoreId core, BlockAddr block) {
  const common::LockGuard lock(mu_);
  auto it = dir_.find(block);
  if (it == dir_.end()) return;
  Entry& e = it->second;
  if (!(e.sharers & bit(core))) return;
  if (e.st == CoherenceState::kModified) ++stats_.writebacks;
  e.sharers &= ~bit(core);
  if (e.sharers == 0) {
    dir_.erase(it);
    return;
  }
  if (e.fwd == core) e.fwd = any_sharer(e.sharers);
  if (popcount(e.sharers) == 1 && e.st == CoherenceState::kModified) {
    // Sole remaining copy of written-back data holds it exclusively.
    e.st = CoherenceState::kExclusive;
  }
}

CoherenceState MesifDirectory::state(BlockAddr block) const {
  const common::LockGuard lock(mu_);
  auto it = dir_.find(block);
  return it == dir_.end() ? CoherenceState::kInvalid : it->second.st;
}

std::uint64_t MesifDirectory::sharer_mask(BlockAddr block) const {
  const common::LockGuard lock(mu_);
  auto it = dir_.find(block);
  return it == dir_.end() ? 0 : it->second.sharers;
}

bool MesifDirectory::is_sharer(CoreId core, BlockAddr block) const {
  // Delegates to sharer_mask(), which takes the (non-recursive) lock.
  return (sharer_mask(block) >> core) & 1;
}

CoreId MesifDirectory::forwarder(BlockAddr block) const {
  const common::LockGuard lock(mu_);
  auto it = dir_.find(block);
  return it == dir_.end() ? kInvalidCore : it->second.fwd;
}

}  // namespace delta::mem
