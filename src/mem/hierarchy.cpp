#include "mem/hierarchy.hpp"

namespace delta::mem {

PrivateHierarchy::PrivateHierarchy(HierarchyConfig cfg)
    : cfg_(cfg), l1_(cfg.l1_sets, cfg.l1_ways), l2_(cfg.l2_sets, cfg.l2_ways) {}

bool PrivateHierarchy::access(BlockAddr block) {
  ++stats_.accesses;
  if (l1_.touch(l1_set(block), block)) {
    ++stats_.l1_hits;
    return false;
  }

  const bool l2_hit = l2_.touch(l2_set(block), block);
  if (l2_hit) ++stats_.l2_hits;

  // Fill (or re-fill) both levels; L2 inclusivity means an L2 victim's L1
  // copy must die with it.
  const AccessResult l2_fill =
      l2_hit ? AccessResult{.hit = true}
             : l2_.access(l2_set(block), block, 0, full_mask(cfg_.l2_ways));
  if (l2_fill.evicted) l1_.invalidate(l1_set(l2_fill.victim_block), l2_fill.victim_block);
  l1_.access(l1_set(block), block, 0, full_mask(cfg_.l1_ways));

  if (l2_hit) return false;
  ++stats_.l2_misses;
  return true;
}

int PrivateHierarchy::back_invalidate(BlockAddr block) {
  int n = 0;
  if (l1_.invalidate(l1_set(block), block)) ++n;
  if (l2_.invalidate(l2_set(block), block)) {
    ++n;
    ++stats_.back_invalidations;
  }
  return n;
}

bool PrivateHierarchy::in_l1(BlockAddr block) const {
  return l1_.contains(l1_set(block), block);
}

bool PrivateHierarchy::in_l2(BlockAddr block) const {
  return l2_.contains(l2_set(block), block);
}

}  // namespace delta::mem
