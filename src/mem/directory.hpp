// In-cache MESIF directory substrate (paper Table II lists a MESIF protocol
// with an in-cache directory).
//
// The multi-programmed experiments never share lines across cores, so the
// timing model does not route every access through this module; it exists as
// the coherence substrate for the multithreaded support path (Sec. II-E):
// the page classifier decides which lines are shared, and shared lines are
// S-NUCA-mapped and kept coherent through this directory.  Tests and the
// `splash` estimator exercise it directly.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.hpp"

namespace delta::mem {

enum class CoherenceState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

struct DirectoryStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t invalidations_sent = 0;  ///< Per-sharer invalidation messages.
  std::uint64_t forwards = 0;            ///< Cache-to-cache transfers (F/E/M source).
  std::uint64_t memory_fetches = 0;      ///< Reads serviced by memory.
  std::uint64_t writebacks = 0;          ///< Dirty data written back to memory.
  void reset() { *this = DirectoryStats{}; }
};

/// Outcome of one coherence transaction, for timing/message accounting.
struct CoherenceAction {
  bool from_memory = false;     ///< Data came from a memory controller.
  bool forwarded = false;       ///< Data forwarded from another core's copy.
  CoreId forwarder = kInvalidCore;
  int invalidations = 0;        ///< Sharers invalidated by this transaction.
};

/// Full-map directory over up to 64 cores.  One entry per tracked block.
class MesifDirectory {
 public:
  explicit MesifDirectory(int num_cores);

  CoherenceAction on_read(CoreId core, BlockAddr block);
  CoherenceAction on_write(CoreId core, BlockAddr block);
  /// Silent or dirty eviction of `core`'s copy.
  void on_evict(CoreId core, BlockAddr block);

  CoherenceState state(BlockAddr block) const;
  std::uint64_t sharer_mask(BlockAddr block) const;
  bool is_sharer(CoreId core, BlockAddr block) const;
  /// MESIF forwarder for the block (kInvalidCore when none designated).
  CoreId forwarder(BlockAddr block) const;

  std::size_t tracked_blocks() const { return dir_.size(); }
  int num_cores() const { return num_cores_; }
  const DirectoryStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Invariant-checker support: visits every tracked entry as
  /// `fn(block, state, sharer_mask, forwarder)` (unordered).
  void for_each_entry(const std::function<void(BlockAddr, CoherenceState,
                                               std::uint64_t, CoreId)>& fn) const {
    for (const auto& [block, e] : dir_) fn(block, e.st, e.sharers, e.fwd);
  }

 private:
  struct Entry {
    std::uint64_t sharers = 0;
    CoherenceState st = CoherenceState::kInvalid;
    CoreId fwd = kInvalidCore;  ///< F-state holder when st == kShared.
  };

  static std::uint64_t bit(CoreId c) { return std::uint64_t{1} << c; }
  static int popcount(std::uint64_t m);
  static CoreId any_sharer(std::uint64_t m);

  int num_cores_;
  std::unordered_map<BlockAddr, Entry> dir_;
  DirectoryStats stats_;
};

}  // namespace delta::mem
