// In-cache MESIF directory substrate (paper Table II lists a MESIF protocol
// with an in-cache directory).
//
// The multi-programmed experiments never share lines across cores, so the
// timing model does not route every access through this module; it exists as
// the coherence substrate for the multithreaded support path (Sec. II-E):
// the page classifier decides which lines are shared, and shared lines are
// S-NUCA-mapped and kept coherent through this directory.  Tests and the
// `splash` estimator exercise it directly.
//
// Concurrency: the directory is internally synchronised — every transaction
// and query takes the (annotated, see common/sync.hpp) directory mutex, so a
// future parallel Sec. II-E model can drive it from several worker threads.
// The entry table is a std::map so `for_each_entry` visits blocks in
// address order: checker output and any derived bookkeeping stay
// bit-identical across runs regardless of insertion history.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace delta::mem {

enum class CoherenceState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

struct DirectoryStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t invalidations_sent = 0;  ///< Per-sharer invalidation messages.
  std::uint64_t forwards = 0;            ///< Cache-to-cache transfers (F/E/M source).
  std::uint64_t memory_fetches = 0;      ///< Reads serviced by memory.
  std::uint64_t writebacks = 0;          ///< Dirty data written back to memory.
  void reset() { *this = DirectoryStats{}; }
};

/// Outcome of one coherence transaction, for timing/message accounting.
struct CoherenceAction {
  bool from_memory = false;     ///< Data came from a memory controller.
  bool forwarded = false;       ///< Data forwarded from another core's copy.
  CoreId forwarder = kInvalidCore;
  int invalidations = 0;        ///< Sharers invalidated by this transaction.
};

/// Full-map directory over up to 64 cores.  One entry per tracked block.
class MesifDirectory {
 public:
  explicit MesifDirectory(int num_cores);

  CoherenceAction on_read(CoreId core, BlockAddr block) EXCLUDES(mu_);
  CoherenceAction on_write(CoreId core, BlockAddr block) EXCLUDES(mu_);
  /// Silent or dirty eviction of `core`'s copy.
  void on_evict(CoreId core, BlockAddr block) EXCLUDES(mu_);

  CoherenceState state(BlockAddr block) const EXCLUDES(mu_);
  std::uint64_t sharer_mask(BlockAddr block) const EXCLUDES(mu_);
  bool is_sharer(CoreId core, BlockAddr block) const EXCLUDES(mu_);
  /// MESIF forwarder for the block (kInvalidCore when none designated).
  CoreId forwarder(BlockAddr block) const EXCLUDES(mu_);

  std::size_t tracked_blocks() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return dir_.size();
  }
  int num_cores() const { return num_cores_; }
  DirectoryStats stats() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return stats_;
  }
  void reset_stats() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    stats_.reset();
  }

  /// Invariant-checker support: visits every tracked entry as
  /// `fn(block, state, sharer_mask, forwarder)` in ascending block order.
  /// Snapshots the table under the mutex and invokes `fn` unlocked, so the
  /// callback may query this directory (the agreement checker's residency
  /// probe does exactly that); `fn` sees the state as of the sweep's start.
  void for_each_entry(const std::function<void(BlockAddr, CoherenceState,
                                               std::uint64_t, CoreId)>& fn) const
      EXCLUDES(mu_) {
    std::vector<std::pair<BlockAddr, Entry>> snapshot;
    {
      const common::LockGuard lock(mu_);
      snapshot.assign(dir_.begin(), dir_.end());
    }
    for (const auto& [block, e] : snapshot) fn(block, e.st, e.sharers, e.fwd);
  }

 private:
  struct Entry {
    std::uint64_t sharers = 0;
    CoherenceState st = CoherenceState::kInvalid;
    CoreId fwd = kInvalidCore;  ///< F-state holder when st == kShared.
  };

  static std::uint64_t bit(CoreId c) { return std::uint64_t{1} << c; }
  static int popcount(std::uint64_t m);
  static CoreId any_sharer(std::uint64_t m);

  int num_cores_;
  mutable common::Mutex mu_;
  std::map<BlockAddr, Entry> dir_ GUARDED_BY(mu_);
  DirectoryStats stats_ GUARDED_BY(mu_);
};

}  // namespace delta::mem
