// Set-associative cache with owner-tagged lines and way-mask constrained
// insertion — the building block for every LLC bank in the simulator.
//
// Lookups ("all cores can access data irrespective of which way it resides",
// Sec. II-C2) scan the whole set; insertion picks the LRU victim among the
// ways the inserting core's way-partition mask allows.  Lines remember both
// the block address and the owning core so that DELTA's bulk-invalidation
// unit can sweep remapped ranges without auxiliary structures.
//
// Layout is structure-of-arrays: per-field vectors (tags, LRU stamps,
// owners) plus one validity bitmask per set.  The hit path is a tight
// branch-free tag-compare loop over the contiguous tag array — the single
// hottest loop in the simulator — and the sweep operations iterate validity
// bits instead of testing every way.  LRU stamps and the per-set clock are
// 64-bit so the clock cannot wrap and mis-order victims within any
// realisable simulation length (a 32-bit stamp wraps after ~4G accesses to
// one set).
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"
#include "mem/replacement.hpp"

namespace delta::mem {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;        ///< Valid lines displaced by insertion.
  std::uint64_t invalidations = 0;    ///< Lines removed by invalidate calls.
  std::uint64_t accesses() const { return hits + misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a ? static_cast<double>(misses) / static_cast<double>(a) : 0.0;
  }
  void reset() { *this = CacheStats{}; }
};

struct AccessResult {
  bool hit = false;
  bool evicted = false;        ///< Insertion displaced a valid line.
  BlockAddr victim_block = 0;  ///< Valid iff `evicted`.
  CoreId victim_owner = kInvalidCore;
  int way = -1;                ///< Way hit or filled; -1 if insertion failed.
};

class SetAssocCache {
 public:
  /// `sets` need not be a power of two (callers pass pre-computed indices).
  SetAssocCache(std::uint32_t sets, int ways);

  std::uint32_t sets() const { return sets_; }
  int ways() const { return ways_; }
  std::uint64_t capacity_lines() const { return std::uint64_t{sets_} * ways_; }

  /// Probe only: true iff (set, block) is resident.  Does not touch LRU.
  bool contains(std::uint32_t set, BlockAddr block) const {
    return match_ways(set, block) != 0;
  }

  /// Demand access: on hit, promotes the line to MRU and returns hit=true.
  /// On miss, inserts `block` for `owner`, choosing the LRU victim among
  /// `insert_mask` ways (invalid ways preferred).  An empty mask records the
  /// miss but does not allocate (the access bypasses the cache).
  ///
  /// `evict_pref` supports occupancy-based fine-grained partitioning
  /// (PriSM / futility-scaling style): when valid, the victim is the LRU
  /// line *owned by* that core (within the mask); if it holds no line in
  /// the set, selection falls back to plain masked LRU.
  ///
  /// The hit path lives here so callers inline the SIMD tag compare plus
  /// the MRU stamp update; the miss/fill path (miss_fill, cache.cpp) stays
  /// out of line to keep the inlined code small.
  AccessResult access(std::uint32_t set, BlockAddr block, CoreId owner, WayMask insert_mask,
                      CoreId evict_pref = kInvalidCore) {
    if (const std::uint32_t match = match_ways(set, block); match != 0) {
      const std::size_t base = std::size_t{set} * static_cast<std::size_t>(ways_);
      const int i = std::countr_zero(match);
      stamps_[base + static_cast<std::size_t>(i)] = ++clocks_[set];
      ++stats_.hits;
      return AccessResult{.hit = true, .way = i};
    }
    return miss_fill(set, block, owner, insert_mask, evict_pref);
  }

  /// Lookup without fill (e.g. remote probe).  Promotes to MRU on hit.
  bool touch(std::uint32_t set, BlockAddr block);

  /// Removes a single line if present; returns true if it was resident.
  bool invalidate(std::uint32_t set, BlockAddr block);

  /// Removes every line for which `pred(block, owner)` holds; returns count.
  /// `pred` is any callable — no std::function indirection on the sweep.
  template <typename Pred>
  std::uint64_t invalidate_if(Pred&& pred) {
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < sets_; ++s) {
      const std::size_t base = std::size_t{s} * static_cast<std::size_t>(ways_);
      std::uint32_t vm = valid_[s];
      while (vm != 0) {
        const int w = std::countr_zero(vm);
        vm &= vm - 1;
        const std::size_t idx = base + static_cast<std::size_t>(w);
        if (pred(blocks_[idx], owners_[idx])) {
          valid_[s] &= ~(std::uint32_t{1} << w);
          ++n;
        }
      }
    }
    stats_.invalidations += n;
    return n;
  }

  /// Number of resident lines owned by `core` (O(capacity); stats/tests).
  std::uint64_t lines_owned_by(CoreId core) const;

  /// Number of valid lines overall.
  std::uint64_t valid_lines() const;

  /// Invariant-checker support: invokes `fn(set, way, block, owner)` for
  /// every valid line, in (set, way) order.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (std::uint32_t s = 0; s < sets_; ++s) {
      const std::size_t base = std::size_t{s} * static_cast<std::size_t>(ways_);
      std::uint32_t vm = valid_[s];
      while (vm != 0) {
        const int w = std::countr_zero(vm);
        vm &= vm - 1;
        const std::size_t idx = base + static_cast<std::size_t>(w);
        fn(s, w, blocks_[idx], owners_[idx]);
      }
    }
  }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Test hook: forces the per-set LRU clock to `value` so tests can place
  /// stamps around historical overflow points (e.g. the 2^32 boundary a
  /// 32-bit clock would wrap at) without issuing billions of accesses.
  void set_clock_for_test(std::uint32_t set, std::uint64_t value) {
    clocks_[set] = value;
  }

  /// Prefetch hint for a set's SoA rows (tags, stamps, owners, validity
  /// word).  Side-effect-free: the access pipeline in Chip::do_access_batch
  /// issues this for the mapped set before the mesh/mask computations so
  /// the tag row is L1-resident by the time access() compares it.
  void prefetch_set(std::uint32_t set) const {
    const std::size_t base = std::size_t{set} * static_cast<std::size_t>(ways_);
    simd::prefetch_read(blocks_.data() + base);
    simd::prefetch_write(stamps_.data() + base);
    simd::prefetch_read(owners_.data() + base);
    simd::prefetch_write(valid_.data() + set);
  }

 private:
  /// Cold half of access(): miss accounting, victim choice and line fill.
  AccessResult miss_fill(std::uint32_t set, BlockAddr block, CoreId owner,
                         WayMask insert_mask, CoreId evict_pref);

  /// Bitmask of ways whose valid tag equals `block` (0 or one bit set).
  /// The tag compare is exact u64 equality, so the vector backends in
  /// common/simd.hpp return bit-identical masks to the scalar loop
  /// (-DDELTA_NO_SIMD builds) on every input — verified against the frozen
  /// legacy oracle by tests/test_sweep.cpp and micro_throughput.
  std::uint32_t match_ways(std::uint32_t set, BlockAddr block) const {
    const BlockAddr* b = blocks_.data() + std::size_t{set} * static_cast<std::size_t>(ways_);
    return simd::match_u64(b, ways_, block) & valid_[set];
  }

  std::uint32_t sets_;
  int ways_;
  std::vector<BlockAddr> blocks_;        ///< SoA tags, set-major.
  std::vector<std::uint64_t> stamps_;    ///< SoA LRU stamps, set-major.
  std::vector<CoreId> owners_;           ///< SoA owner tags, set-major.
  std::vector<std::uint32_t> valid_;     ///< Per-set validity bitmask.
  std::vector<std::uint64_t> clocks_;    ///< Per-set LRU clock.
  CacheStats stats_;
};

}  // namespace delta::mem
