// Set-associative cache with owner-tagged lines and way-mask constrained
// insertion — the building block for every LLC bank in the simulator.
//
// Lookups ("all cores can access data irrespective of which way it resides",
// Sec. II-C2) scan the whole set; insertion picks the LRU victim among the
// ways the inserting core's way-partition mask allows.  Lines remember both
// the block address and the owning core so that DELTA's bulk-invalidation
// unit can sweep remapped ranges without auxiliary structures.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "mem/replacement.hpp"

namespace delta::mem {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;        ///< Valid lines displaced by insertion.
  std::uint64_t invalidations = 0;    ///< Lines removed by invalidate calls.
  std::uint64_t accesses() const { return hits + misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a ? static_cast<double>(misses) / static_cast<double>(a) : 0.0;
  }
  void reset() { *this = CacheStats{}; }
};

struct AccessResult {
  bool hit = false;
  bool evicted = false;        ///< Insertion displaced a valid line.
  BlockAddr victim_block = 0;  ///< Valid iff `evicted`.
  CoreId victim_owner = kInvalidCore;
  int way = -1;                ///< Way hit or filled; -1 if insertion failed.
};

class SetAssocCache {
 public:
  /// `sets` need not be a power of two (callers pass pre-computed indices).
  SetAssocCache(std::uint32_t sets, int ways);

  std::uint32_t sets() const { return sets_; }
  int ways() const { return ways_; }
  std::uint64_t capacity_lines() const { return std::uint64_t{sets_} * ways_; }

  /// Probe only: true iff (set, block) is resident.  Does not touch LRU.
  bool contains(std::uint32_t set, BlockAddr block) const;

  /// Demand access: on hit, promotes the line to MRU and returns hit=true.
  /// On miss, inserts `block` for `owner`, choosing the LRU victim among
  /// `insert_mask` ways (invalid ways preferred).  An empty mask records the
  /// miss but does not allocate (the access bypasses the cache).
  ///
  /// `evict_pref` supports occupancy-based fine-grained partitioning
  /// (PriSM / futility-scaling style): when valid, the victim is the LRU
  /// line *owned by* that core (within the mask); if it holds no line in
  /// the set, selection falls back to plain masked LRU.
  AccessResult access(std::uint32_t set, BlockAddr block, CoreId owner, WayMask insert_mask,
                      CoreId evict_pref = kInvalidCore);

  /// Lookup without fill (e.g. remote probe).  Promotes to MRU on hit.
  bool touch(std::uint32_t set, BlockAddr block);

  /// Removes a single line if present; returns true if it was resident.
  bool invalidate(std::uint32_t set, BlockAddr block);

  /// Removes every line for which `pred(block, owner)` holds; returns count.
  std::uint64_t invalidate_if(const std::function<bool(BlockAddr, CoreId)>& pred);

  /// Number of resident lines owned by `core` (O(capacity); stats/tests).
  std::uint64_t lines_owned_by(CoreId core) const;

  /// Number of valid lines overall.
  std::uint64_t valid_lines() const;

  /// Invariant-checker support: invokes `fn(set, way, block, owner)` for
  /// every valid line, in (set, way) order.
  void for_each_line(
      const std::function<void(std::uint32_t, int, BlockAddr, CoreId)>& fn) const;

  /// Reassigns ownership tags of resident lines in `from`-owned ways —
  /// used only by tests; the real WP unit leaves resident lines untouched.
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  struct Way {
    BlockAddr block = 0;
    std::uint32_t stamp = 0;
    CoreId owner = kInvalidCore;
    bool valid = false;
  };

  Way* set_begin(std::uint32_t set) { return lines_.data() + std::size_t{set} * ways_; }
  const Way* set_begin(std::uint32_t set) const {
    return lines_.data() + std::size_t{set} * ways_;
  }

  std::uint32_t sets_;
  int ways_;
  std::vector<Way> lines_;
  std::vector<std::uint32_t> clocks_;  ///< Per-set LRU clock.
  CacheStats stats_;
};

}  // namespace delta::mem
