// Replacement-policy primitives.
//
// The main LLC model keeps true LRU via per-way stamps (the paper assumes a
// standard LRU-replacement LLC).  A tree-PLRU implementation is provided as
// an alternative for ablation studies; both honour way-mask restricted
// victim selection so they compose with DELTA's way-partitioning unit.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

namespace delta::mem {

using WayMask = std::uint32_t;  ///< Bit i set => way i eligible.

inline constexpr WayMask full_mask(int ways) {
  return ways >= 32 ? ~WayMask{0} : ((WayMask{1} << ways) - 1);
}

/// True-LRU bookkeeping over per-way stamps supplied by the caller.
struct LruPolicy {
  /// Returns the eligible way with the smallest stamp; -1 if mask empty.
  static int victim(std::span<const std::uint32_t> stamps, WayMask eligible) {
    int best = -1;
    std::uint32_t best_stamp = std::numeric_limits<std::uint32_t>::max();
    for (int w = 0; w < static_cast<int>(stamps.size()); ++w) {
      if (!(eligible & (WayMask{1} << w))) continue;
      if (stamps[w] <= best_stamp) {
        // <= so that among equal (freshly reset) stamps the highest way wins,
        // matching the paper's examples where new partitions grow downward.
        best_stamp = stamps[w];
        best = w;
      }
    }
    return best;
  }
};

/// Tree-PLRU over up to 32 ways (ways must be a power of two).
class TreePlru {
 public:
  explicit TreePlru(int ways) : ways_(ways), bits_(0) {}

  /// Marks `way` most-recently-used.
  void touch(int way) {
    int node = 1;
    for (int span = ways_ / 2; span >= 1; span /= 2) {
      const bool right = (way % (span * 2)) >= span;
      // Point the bit *away* from the touched way.
      set_bit(node, !right);
      node = node * 2 + (right ? 1 : 0);
    }
  }

  /// Follows the PLRU bits to a victim, constrained to `eligible` ways.
  /// Falls back to the lowest eligible way when the tree walk exits the mask.
  int victim(WayMask eligible) const {
    if (eligible == 0) return -1;
    int node = 1;
    int lo = 0, span = ways_;
    while (span > 1) {
      span /= 2;
      const bool right = get_bit(node);
      node = node * 2 + (right ? 1 : 0);
      lo += right ? span : 0;
    }
    if (eligible & (WayMask{1} << lo)) return lo;
    for (int w = 0; w < ways_; ++w)
      if (eligible & (WayMask{1} << w)) return w;
    return -1;
  }

  int ways() const { return ways_; }

 private:
  void set_bit(int node, bool v) {
    if (v)
      bits_ |= (std::uint64_t{1} << node);
    else
      bits_ &= ~(std::uint64_t{1} << node);
  }
  bool get_bit(int node) const { return (bits_ >> node) & 1; }

  int ways_;
  std::uint64_t bits_;
};

}  // namespace delta::mem
