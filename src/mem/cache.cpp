#include "mem/cache.hpp"

#include <cassert>
#include <limits>

namespace delta::mem {

SetAssocCache::SetAssocCache(std::uint32_t sets, int ways)
    : sets_(sets), ways_(ways), lines_(std::size_t{sets} * ways), clocks_(sets, 0) {
  assert(ways >= 1 && ways <= 32);
  assert(sets >= 1);
}

bool SetAssocCache::contains(std::uint32_t set, BlockAddr block) const {
  const Way* w = set_begin(set);
  for (int i = 0; i < ways_; ++i)
    if (w[i].valid && w[i].block == block) return true;
  return false;
}

AccessResult SetAssocCache::access(std::uint32_t set, BlockAddr block, CoreId owner,
                                   WayMask insert_mask, CoreId evict_pref) {
  assert(set < sets_);
  Way* w = set_begin(set);
  std::uint32_t& clock = clocks_[set];

  for (int i = 0; i < ways_; ++i) {
    if (w[i].valid && w[i].block == block) {
      w[i].stamp = ++clock;
      ++stats_.hits;
      return AccessResult{.hit = true, .way = i};
    }
  }

  ++stats_.misses;
  AccessResult res{};
  if (insert_mask == 0) return res;  // Bypass: nowhere to allocate.

  // Prefer an invalid eligible way; otherwise evict the eligible LRU,
  // restricted to the preferred victim owner's lines when requested.
  int victim = -1;
  int pref_victim = -1;
  std::uint32_t best_stamp = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t pref_stamp = std::numeric_limits<std::uint32_t>::max();
  for (int i = 0; i < ways_; ++i) {
    if (!(insert_mask & (WayMask{1} << i))) continue;
    if (!w[i].valid) {
      victim = i;
      pref_victim = -1;
      break;
    }
    if (w[i].stamp <= best_stamp) {
      best_stamp = w[i].stamp;
      victim = i;
    }
    if (evict_pref != kInvalidCore && w[i].owner == evict_pref &&
        w[i].stamp <= pref_stamp) {
      pref_stamp = w[i].stamp;
      pref_victim = i;
    }
  }
  if (pref_victim >= 0) victim = pref_victim;
  assert(victim >= 0);

  if (w[victim].valid) {
    res.evicted = true;
    res.victim_block = w[victim].block;
    res.victim_owner = w[victim].owner;
    ++stats_.evictions;
  }
  w[victim].block = block;
  w[victim].owner = owner;
  w[victim].valid = true;
  w[victim].stamp = ++clock;
  res.way = victim;
  return res;
}

bool SetAssocCache::touch(std::uint32_t set, BlockAddr block) {
  Way* w = set_begin(set);
  for (int i = 0; i < ways_; ++i) {
    if (w[i].valid && w[i].block == block) {
      w[i].stamp = ++clocks_[set];
      return true;
    }
  }
  return false;
}

bool SetAssocCache::invalidate(std::uint32_t set, BlockAddr block) {
  Way* w = set_begin(set);
  for (int i = 0; i < ways_; ++i) {
    if (w[i].valid && w[i].block == block) {
      w[i].valid = false;
      ++stats_.invalidations;
      return true;
    }
  }
  return false;
}

std::uint64_t SetAssocCache::invalidate_if(
    const std::function<bool(BlockAddr, CoreId)>& pred) {
  std::uint64_t n = 0;
  for (auto& w : lines_) {
    if (w.valid && pred(w.block, w.owner)) {
      w.valid = false;
      ++n;
    }
  }
  stats_.invalidations += n;
  return n;
}

std::uint64_t SetAssocCache::lines_owned_by(CoreId core) const {
  std::uint64_t n = 0;
  for (const auto& w : lines_)
    if (w.valid && w.owner == core) ++n;
  return n;
}

std::uint64_t SetAssocCache::valid_lines() const {
  std::uint64_t n = 0;
  for (const auto& w : lines_)
    if (w.valid) ++n;
  return n;
}

void SetAssocCache::for_each_line(
    const std::function<void(std::uint32_t, int, BlockAddr, CoreId)>& fn) const {
  for (std::uint32_t s = 0; s < sets_; ++s) {
    const Way* set = set_begin(s);
    for (int w = 0; w < ways_; ++w)
      if (set[w].valid) fn(s, w, set[w].block, set[w].owner);
  }
}

}  // namespace delta::mem
