#include "mem/cache.hpp"

#include <cassert>
#include <limits>

namespace delta::mem {

SetAssocCache::SetAssocCache(std::uint32_t sets, int ways)
    : sets_(sets),
      ways_(ways),
      blocks_(std::size_t{sets} * static_cast<std::size_t>(ways), 0),
      stamps_(std::size_t{sets} * static_cast<std::size_t>(ways), 0),
      owners_(std::size_t{sets} * static_cast<std::size_t>(ways), kInvalidCore),
      valid_(sets, 0),
      clocks_(sets, 0) {
  assert(ways >= 1 && ways <= 32);
  assert(sets >= 1);
}

AccessResult SetAssocCache::access(std::uint32_t set, BlockAddr block, CoreId owner,
                                   WayMask insert_mask, CoreId evict_pref) {
  assert(set < sets_);
  const std::size_t base = std::size_t{set} * static_cast<std::size_t>(ways_);
  BlockAddr* const blocks = blocks_.data() + base;
  std::uint64_t* const stamps = stamps_.data() + base;
  CoreId* const owners = owners_.data() + base;

  if (const std::uint32_t match = match_ways(set, block); match != 0) {
    const int i = std::countr_zero(match);
    stamps[i] = ++clocks_[set];
    ++stats_.hits;
    return AccessResult{.hit = true, .way = i};
  }

  ++stats_.misses;
  AccessResult res{};
  if (insert_mask == 0) return res;  // Bypass: nowhere to allocate.

  // Prefer an invalid eligible way; otherwise evict the eligible LRU,
  // restricted to the preferred victim owner's lines when requested.
  // `<=` comparisons keep the legacy tie-break: among equal stamps the
  // highest eligible way wins.
  const std::uint32_t vm = valid_[set];
  int victim;
  const std::uint32_t free = insert_mask & ~vm & full_mask(ways_);
  if (free != 0) {
    victim = std::countr_zero(free);
  } else {
    victim = -1;
    int pref_victim = -1;
    std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t pref_stamp = std::numeric_limits<std::uint64_t>::max();
    for (int i = 0; i < ways_; ++i) {
      if (!(insert_mask & (WayMask{1} << i))) continue;
      if (stamps[i] <= best_stamp) {
        best_stamp = stamps[i];
        victim = i;
      }
      if (evict_pref != kInvalidCore && owners[i] == evict_pref &&
          stamps[i] <= pref_stamp) {
        pref_stamp = stamps[i];
        pref_victim = i;
      }
    }
    if (pref_victim >= 0) victim = pref_victim;
    assert(victim >= 0);
    res.evicted = true;
    res.victim_block = blocks[victim];
    res.victim_owner = owners[victim];
    ++stats_.evictions;
  }

  blocks[victim] = block;
  owners[victim] = owner;
  valid_[set] |= std::uint32_t{1} << victim;
  stamps[victim] = ++clocks_[set];
  res.way = victim;
  return res;
}

bool SetAssocCache::touch(std::uint32_t set, BlockAddr block) {
  if (const std::uint32_t match = match_ways(set, block); match != 0) {
    const std::size_t base = std::size_t{set} * static_cast<std::size_t>(ways_);
    stamps_[base + static_cast<std::size_t>(std::countr_zero(match))] = ++clocks_[set];
    return true;
  }
  return false;
}

bool SetAssocCache::invalidate(std::uint32_t set, BlockAddr block) {
  if (const std::uint32_t match = match_ways(set, block); match != 0) {
    valid_[set] &= ~match;
    ++stats_.invalidations;
    return true;
  }
  return false;
}

std::uint64_t SetAssocCache::lines_owned_by(CoreId core) const {
  std::uint64_t n = 0;
  for_each_line([&](std::uint32_t, int, BlockAddr, CoreId o) {
    if (o == core) ++n;
  });
  return n;
}

std::uint64_t SetAssocCache::valid_lines() const {
  std::uint64_t n = 0;
  for (const std::uint32_t vm : valid_) n += static_cast<unsigned>(std::popcount(vm));
  return n;
}

}  // namespace delta::mem
