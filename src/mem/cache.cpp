#include "mem/cache.hpp"

#include <cassert>
#include <limits>

namespace delta::mem {

SetAssocCache::SetAssocCache(std::uint32_t sets, int ways)
    : sets_(sets),
      ways_(ways),
      blocks_(std::size_t{sets} * static_cast<std::size_t>(ways), 0),
      stamps_(std::size_t{sets} * static_cast<std::size_t>(ways), 0),
      owners_(std::size_t{sets} * static_cast<std::size_t>(ways), kInvalidCore),
      valid_(sets, 0),
      clocks_(sets, 0) {
  assert(ways >= 1 && ways <= 32);
  assert(sets >= 1);
}

AccessResult SetAssocCache::miss_fill(std::uint32_t set, BlockAddr block, CoreId owner,
                                      WayMask insert_mask, CoreId evict_pref) {
  assert(set < sets_);
  const std::size_t base = std::size_t{set} * static_cast<std::size_t>(ways_);
  BlockAddr* const blocks = blocks_.data() + base;
  std::uint64_t* const stamps = stamps_.data() + base;
  CoreId* const owners = owners_.data() + base;

  ++stats_.misses;
  AccessResult res{};
  if (insert_mask == 0) return res;  // Bypass: nowhere to allocate.

  // Prefer an invalid eligible way; otherwise evict the eligible LRU,
  // restricted to the preferred victim owner's lines when requested.
  // `<=` comparisons keep the legacy tie-break: among equal stamps the
  // highest eligible way wins.
  const std::uint32_t vm = valid_[set];
  int victim;
  const std::uint32_t free = insert_mask & ~vm & full_mask(ways_);
  if (free != 0) {
    victim = std::countr_zero(free);
  } else if (evict_pref == kInvalidCore) {
    const std::uint32_t full = full_mask(ways_);
    const std::uint32_t m = insert_mask & full;
    if (m == full && clocks_[set] < (std::uint64_t{1} << 58)) {
      // Unrestricted LRU over a full set (the thrashing steady state):
      // pack each candidate into (stamp << 5) | (31 - way) and take the
      // minimum over four independent accumulator chains — same victim as
      // the sequential `<=` scan (among equal stamps the smallest inverted
      // way, i.e. the highest way, wins) at a quarter of the dependency
      // depth.  The pack is exact while stamps stay below 2^59; the guard
      // falls back to the plain walk near that boundary (set_clock_for_test
      // can place clocks arbitrarily).
      const auto key = [&](int i) {
        return (stamps[i] << 5) | static_cast<std::uint64_t>(31 - i);
      };
      std::uint64_t acc[4] = {key(0),
                              ways_ > 1 ? key(1) : key(0),
                              ways_ > 2 ? key(2) : key(0),
                              ways_ > 3 ? key(3) : key(0)};
      int i = 4;
      for (; i + 4 <= ways_; i += 4) {
        acc[0] = std::min(acc[0], key(i));
        acc[1] = std::min(acc[1], key(i + 1));
        acc[2] = std::min(acc[2], key(i + 2));
        acc[3] = std::min(acc[3], key(i + 3));
      }
      for (; i < ways_; ++i) acc[0] = std::min(acc[0], key(i));
      const std::uint64_t best =
          std::min(std::min(acc[0], acc[1]), std::min(acc[2], acc[3]));
      victim = 31 - static_cast<int>(best & 31);
    } else {
      // Masked LRU without a victim-owner preference: walk only the set
      // bits of the mask, ascending — same `<=` tie-break as the general
      // loop, so among equal stamps the highest eligible way still wins.
      victim = -1;
      std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
      for (std::uint32_t rest = m; rest != 0; rest &= rest - 1) {
        const int i = std::countr_zero(rest);
        const bool better = stamps[i] <= best_stamp;
        best_stamp = better ? stamps[i] : best_stamp;
        victim = better ? i : victim;
      }
      assert(victim >= 0);
    }
    res.evicted = true;
    res.victim_block = blocks[victim];
    res.victim_owner = owners[victim];
    ++stats_.evictions;
  } else {
    victim = -1;
    int pref_victim = -1;
    std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t pref_stamp = std::numeric_limits<std::uint64_t>::max();
    for (int i = 0; i < ways_; ++i) {
      if (!(insert_mask & (WayMask{1} << i))) continue;
      if (stamps[i] <= best_stamp) {
        best_stamp = stamps[i];
        victim = i;
      }
      if (owners[i] == evict_pref && stamps[i] <= pref_stamp) {
        pref_stamp = stamps[i];
        pref_victim = i;
      }
    }
    if (pref_victim >= 0) victim = pref_victim;
    assert(victim >= 0);
    res.evicted = true;
    res.victim_block = blocks[victim];
    res.victim_owner = owners[victim];
    ++stats_.evictions;
  }

  blocks[victim] = block;
  owners[victim] = owner;
  valid_[set] |= std::uint32_t{1} << victim;
  stamps[victim] = ++clocks_[set];
  res.way = victim;
  return res;
}

bool SetAssocCache::touch(std::uint32_t set, BlockAddr block) {
  if (const std::uint32_t match = match_ways(set, block); match != 0) {
    const std::size_t base = std::size_t{set} * static_cast<std::size_t>(ways_);
    stamps_[base + static_cast<std::size_t>(std::countr_zero(match))] = ++clocks_[set];
    return true;
  }
  return false;
}

bool SetAssocCache::invalidate(std::uint32_t set, BlockAddr block) {
  if (const std::uint32_t match = match_ways(set, block); match != 0) {
    valid_[set] &= ~match;
    ++stats_.invalidations;
    return true;
  }
  return false;
}

std::uint64_t SetAssocCache::lines_owned_by(CoreId core) const {
  std::uint64_t n = 0;
  for_each_line([&](std::uint32_t, int, BlockAddr, CoreId o) {
    if (o == core) ++n;
  });
  return n;
}

std::uint64_t SetAssocCache::valid_lines() const {
  std::uint64_t n = 0;
  for (const std::uint32_t vm : valid_) n += static_cast<unsigned>(std::popcount(vm));
  return n;
}

}  // namespace delta::mem
