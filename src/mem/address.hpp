// Physical-address layout helpers (paper Sec. II-C1, Fig. 2).
//
// A 64 B line leaves 6 offset bits.  Inside a 512 KB 16-way bank there are
// 512 sets, i.e. 9 set-index bits directly above the offset.  The 8 bits
// above the set index form the *bank-selection byte*; DELTA reverses that
// byte before indexing the Cache Bank Table so that the high-entropy low
// bits spread an application's footprint uniformly over its CBT ranges.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace delta::mem {

/// Number of CBT-addressable chunks: one per value of the bank-selection byte.
inline constexpr int kBankSelectBits = 8;
inline constexpr int kNumChunks = 1 << kBankSelectBits;  // 256

/// Reverses the bit order of an 8-bit value (0b10010110 -> 0b01101001).
constexpr std::uint8_t reverse8(std::uint8_t v) {
  v = static_cast<std::uint8_t>(((v & 0xF0u) >> 4) | ((v & 0x0Fu) << 4));
  v = static_cast<std::uint8_t>(((v & 0xCCu) >> 2) | ((v & 0x33u) << 2));
  v = static_cast<std::uint8_t>(((v & 0xAAu) >> 1) | ((v & 0x55u) << 1));
  return v;
}

/// Set index inside a bank with `sets_log2` index bits (block-addressed).
constexpr std::uint32_t set_index(BlockAddr block, int sets_log2) {
  return static_cast<std::uint32_t>(block & ((1u << sets_log2) - 1));
}

/// Raw bank-selection byte: the 8 bits directly above the set index.
constexpr std::uint8_t bank_select_byte(BlockAddr block, int sets_log2) {
  return static_cast<std::uint8_t>((block >> sets_log2) & 0xFFu);
}

/// CBT chunk id of a block: bit-reversed bank-selection byte (Sec. II-C1).
/// `reverse = false` disables the reversal (straight indexing) — kept as an
/// ablation knob; the paper found reversal necessary to spread application
/// footprints uniformly across ranges.
constexpr int chunk_of(BlockAddr block, int sets_log2, bool reverse = true) {
  const std::uint8_t sel = bank_select_byte(block, sets_log2);
  return reverse ? reverse8(sel) : sel;
}

/// S-NUCA line-interleaved home bank: block modulo bank count.
constexpr BankId snuca_bank(BlockAddr block, int num_banks) {
  return static_cast<BankId>(block % static_cast<std::uint64_t>(num_banks));
}

/// Set index used by the S-NUCA interleaving (bank bits stripped first).
constexpr std::uint32_t snuca_set_index(BlockAddr block, int num_banks, int sets_log2) {
  return static_cast<std::uint32_t>((block / static_cast<std::uint64_t>(num_banks)) &
                                    ((1u << sets_log2) - 1));
}

}  // namespace delta::mem
