// Exporters for the self-profiling subsystem (formats documented in
// docs/observability.md):
//
//   prof_trace_json — Chrome trace-event JSON carrying the profiler's phase
//     spans as "X" duration events on per-thread tracks of a dedicated
//     "engine prof" process (wall-clock microseconds), merged with the
//     observer's policy events and counters when an Observer is supplied —
//     one flamegraph shows where epoch time went next to what the policy
//     did.
//   prometheus_text — Prometheus text exposition of a registry snapshot
//     (counters, gauges, histograms with cumulative le buckets).
//   metrics_json — JSON dump: every registry metric plus the snapshot's
//     per-phase wall totals and site aggregates.
//
// Like obs/export.hpp, exporters build strings; write_text_file() is the
// file sink.
#pragma once

#include <string>

#include "obs/prof/metrics.hpp"
#include "obs/prof/prof.hpp"

namespace delta::obs {
class Observer;
}  // namespace delta::obs

namespace delta::obs::prof {

/// Trace process id for profiler tracks; run/scheme processes use their run
/// index (0..runs), so a high fixed pid keeps the two namespaces apart.
inline constexpr unsigned kProfTracePid = 1000;

std::string prof_trace_json(const ProfSnapshot& snap,
                            const Observer* obs = nullptr);

std::string prometheus_text(const RegistrySnapshot& reg);

std::string metrics_json(const RegistrySnapshot& reg, const ProfSnapshot& snap);

}  // namespace delta::obs::prof
