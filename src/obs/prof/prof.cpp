#include "obs/prof/prof.hpp"

#include <algorithm>
#include <cassert>

#include "obs/prof/metrics.hpp"

namespace delta::obs::prof {

const char* to_string(ProfLevel lvl) {
  switch (lvl) {
    case ProfLevel::kOff: return "off";
    case ProfLevel::kPhases: return "phases";
    case ProfLevel::kFull: return "full";
  }
  return "?";
}

bool parse_prof_level(std::string_view s, ProfLevel* out) {
  if (s == "off") {
    *out = ProfLevel::kOff;
  } else if (s == "phases") {
    *out = ProfLevel::kPhases;
  } else if (s == "full") {
    *out = ProfLevel::kFull;
  } else {
    return false;
  }
  return true;
}

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kEpoch: return "epoch";
    case Phase::kPolicy: return "policy";
    case Phase::kSerialAccess: return "serial_access";
    case Phase::kAccounting: return "accounting";
    case Phase::kStage: return "stage";
    case Phase::kApply: return "apply";
    case Phase::kReduce: return "reduce";
    case Phase::kPipeline: return "pipeline";
    case Phase::kSerialTail: return "serial_tail";
    case Phase::kBarrier: return "barrier";
    case Phase::kSweepJob: return "sweep_job";
    case Phase::kMtApply: return "mt_apply";
    case Phase::kCount: break;
  }
  return "?";
}

std::string_view site_name(Site s) {
  switch (s) {
    case Site::kAccessBatch: return "access_batch";
    case Site::kStageCore: return "stage_core";
    case Site::kApplyBank: return "apply_bank";
    case Site::kReduceCore: return "reduce_core";
    case Site::kCount: break;
  }
  return "?";
}

std::uint64_t ProfSnapshot::phase_ns(Phase p) const {
  std::uint64_t total = 0;
  for (const Span& s : spans)
    if (s.phase == p) total += s.dur_ns;
  return total;
}

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

Profiler::ThreadBuf& Profiler::local_buf() {
  thread_local ThreadBuf* buf = nullptr;
  if (buf == nullptr) {
    const common::LockGuard lock(mu_);
    bufs_.push_back(std::make_unique<ThreadBuf>());
    buf = bufs_.back().get();
    buf->tid = static_cast<std::uint32_t>(bufs_.size() - 1);
  }
  return *buf;
}

void Profiler::record_span(Phase p, std::uint64_t start_ns, std::uint64_t dur_ns,
                           std::uint64_t arg) {
  ThreadBuf& buf = local_buf();
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const common::LockGuard lock(buf.mu);
  if (buf.spans.size() >= kMaxSpansPerThread) {
    ++buf.dropped;
    return;
  }
  buf.spans.push_back(Span{seq, start_ns, dur_ns, arg, buf.tid, p});
}

void Profiler::add_site(Site s, std::uint64_t dur_ns) {
  ThreadBuf& buf = local_buf();
  const common::LockGuard lock(buf.mu);
  SiteTotal& t = buf.sites[static_cast<std::size_t>(s)];
  ++t.calls;
  t.ns += dur_ns;
  t.hist.add(dur_ns);
}

std::uint32_t Profiler::thread_slot() { return local_buf().tid; }

ProfSnapshot Profiler::snapshot() const {
  ProfSnapshot out;
  out.level = level();
  // Copy the buffer list under the registry lock, then drain each buffer
  // under its own lock — recording threads only ever contend on their own
  // buffer's mutex, never on the registry's.
  std::vector<const ThreadBuf*> bufs;
  {
    const common::LockGuard lock(mu_);
    bufs.reserve(bufs_.size());
    for (const auto& b : bufs_) bufs.push_back(b.get());
  }
  for (const ThreadBuf* b : bufs) {
    const common::LockGuard lock(b->mu);
    out.spans.insert(out.spans.end(), b->spans.begin(), b->spans.end());
    out.dropped_spans += b->dropped;
    for (std::size_t s = 0; s < out.sites.size(); ++s) {
      out.sites[s].calls += b->sites[s].calls;
      out.sites[s].ns += b->sites[s].ns;
      out.sites[s].hist.merge(b->sites[s].hist);
    }
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const Span& a, const Span& b) { return a.seq < b.seq; });
  return out;
}

void Profiler::clear() {
  std::vector<ThreadBuf*> bufs;
  {
    const common::LockGuard lock(mu_);
    bufs.reserve(bufs_.size());
    for (const auto& b : bufs_) bufs.push_back(b.get());
  }
  for (ThreadBuf* b : bufs) {
    const common::LockGuard lock(b->mu);
    b->spans.clear();
    b->dropped = 0;
    for (SiteTotal& t : b->sites) {
      t.calls = 0;
      t.ns = 0;
      t.hist.reset();
    }
  }
}

/// Registry handles the engine profile publishes derived metrics through.
struct EngineProfile::Handles {
  Counter& epochs;
  Gauge& barrier_frac;
  Gauge& imbalance;
  Gauge& merge_frac;
  HistogramMetric& epoch_imbalance_milli;
  HistogramMetric& epoch_barrier_ppm;
  HistogramMetric& occupancy;
  Counter& occupancy_pairs;
  Counter& occupancy_nonzero;
  // Engine-health counters (structural; counted at every profiling level).
  Counter& engine_epochs;
  Counter& pool_sections;
  Counter& barrier_crossings;
  Counter& tasks;
  Counter& tasks_stolen;
  Counter& apply_ranges;
  Counter& apply_ranges_overlapped;
  Gauge& barriers_per_epoch;
  Gauge& steal_fraction;
  Gauge& overlap_fraction;

  explicit Handles(MetricsRegistry& reg)
      : epochs(reg.counter("delta_intra_epochs_total",
                           "Epochs executed by the intra-run engine")),
        barrier_frac(reg.gauge(
            "delta_intra_barrier_wait_fraction",
            "Cumulative done-barrier wait / total worker section time")),
        imbalance(reg.gauge(
            "delta_intra_worker_imbalance_ratio",
            "Mean over epochs of max/mean per-worker busy time")),
        merge_frac(reg.gauge(
            "delta_intra_merge_serial_fraction",
            "Sampled cursor-merge scan time / apply-phase busy time")),
        epoch_imbalance_milli(reg.histogram(
            "delta_intra_epoch_imbalance_milli",
            "Per-epoch worker-imbalance ratio, in thousandths")),
        epoch_barrier_ppm(reg.histogram(
            "delta_intra_epoch_barrier_wait_ppm",
            "Per-epoch barrier-wait fraction, in parts per million")),
        occupancy(reg.histogram(
            "delta_intra_bank_buffer_occupancy",
            "Staged accesses per nonzero (core,bank) index list")),
        occupancy_pairs(reg.counter("delta_intra_bank_buffer_pairs_total",
                                    "(core,bank) staging lists examined")),
        occupancy_nonzero(
            reg.counter("delta_intra_bank_buffer_pairs_nonzero",
                        "(core,bank) staging lists holding any access")),
        engine_epochs(reg.counter("delta_intra_engine_epochs_total",
                                  "Epochs with engine-health accounting")),
        pool_sections(reg.counter("delta_intra_pool_sections_total",
                                  "Worker-pool sections run by the engine")),
        barrier_crossings(
            reg.counter("delta_intra_barrier_crossings_total",
                        "Pool barrier crossings (2 per section)")),
        tasks(reg.counter("delta_intra_tasks_total",
                          "Scheduler tasks executed (stage+apply+reduce)")),
        tasks_stolen(reg.counter(
            "delta_intra_tasks_stolen_total",
            "Tasks executed by a worker outside its static home range")),
        apply_ranges(reg.counter("delta_intra_apply_ranges_total",
                                 "(bank, round-range) apply tasks executed")),
        apply_ranges_overlapped(reg.counter(
            "delta_intra_apply_ranges_overlapped_total",
            "Apply ranges claimed while staging was still in flight")),
        barriers_per_epoch(
            reg.gauge("delta_intra_barriers_per_epoch",
                      "Pool barrier crossings per engine epoch")),
        steal_fraction(reg.gauge("delta_intra_steal_fraction",
                                 "Stolen tasks / all scheduler tasks")),
        overlap_fraction(reg.gauge(
            "delta_intra_stage_apply_overlap_fraction",
            "Apply ranges overlapped with staging / all apply ranges")) {}
};

EngineProfile::EngineProfile(unsigned workers)
    : workers_(workers == 0 ? 1 : workers),
      slots_(workers_),
      tasks_(workers_),
      merge_(workers_),
      epoch_busy_(workers_, 0) {}

EngineProfile::~EngineProfile() = default;

void EngineProfile::ensure_handles() {
  if (handles_ == nullptr)
    handles_ = std::make_unique<Handles>(MetricsRegistry::global());
}

void EngineProfile::begin_section(Phase p, std::uint64_t epoch) {
  armed_ = enabled(ProfLevel::kPhases);
  full_ = armed_ && enabled(ProfLevel::kFull);
  if (!armed_) return;
  phase_ = p;
  epoch_arg_ = epoch;
  for (WorkerSlot& s : slots_) s = WorkerSlot{};
  for (TaskSlot& t : tasks_) t = TaskSlot{};
}

void EngineProfile::section_begin(unsigned worker) {
  if (!armed_) return;
  slots_[static_cast<std::size_t>(worker)].begin_ns = now_ns();
}

void EngineProfile::flush_task(unsigned worker, std::uint64_t now) {
  TaskSlot& t = tasks_[static_cast<std::size_t>(worker)];
  if (!t.open) return;
  const std::uint64_t dur = now - t.start_ns;
  Profiler::instance().record_span(t.phase, t.start_ns, dur, epoch_arg_);
  t.task_ns[static_cast<std::size_t>(t.phase)] += dur;
  t.open = false;
}

void EngineProfile::task_begin(unsigned worker, Phase p) {
  if (!armed_) return;
  TaskSlot& t = tasks_[static_cast<std::size_t>(worker)];
  if (t.open && t.phase == p) return;  // Extend the run of same-kind tasks.
  const std::uint64_t now = now_ns();
  flush_task(worker, now);
  t.phase = p;
  t.start_ns = now;
  t.open = true;
}

void EngineProfile::work_done(unsigned worker) {
  if (!armed_) return;
  const std::uint64_t now = now_ns();
  flush_task(worker, now);
  slots_[static_cast<std::size_t>(worker)].done_ns = now;
}

void EngineProfile::end_section() {
  if (!armed_) return;
  // The done barrier has released the owner, so every slot is final.  A
  // worker's barrier wait is the gap from its own work_done to the last
  // work_done in the section — a lower bound that excludes only the condvar
  // wake-up latency.
  std::uint64_t last_done = 0;
  for (const WorkerSlot& s : slots_) last_done = std::max(last_done, s.done_ns);
  Profiler& prof = Profiler::instance();
  for (unsigned w = 0; w < workers_; ++w) {
    const WorkerSlot& s = slots_[w];
    if (s.done_ns < s.begin_ns || s.begin_ns == 0) continue;  // Idle party.
    const std::uint64_t busy = s.done_ns - s.begin_ns;
    const std::uint64_t wait = last_done - s.done_ns;
    prof.record_span(phase_, s.begin_ns, busy, epoch_arg_);
    if (wait > 0) prof.record_span(Phase::kBarrier, s.done_ns, wait, epoch_arg_);
    cum_busy_[static_cast<std::size_t>(phase_)] += busy;
    cum_barrier_ns_ += wait;
    cum_section_ns_ += busy + wait;
    epoch_busy_[w] += busy;
    // Fold the worker's per-kind task time (fused kPipeline sections record
    // stage/apply/reduce attribution through task_begin) into the run
    // totals, so busy_ns(kStage/kApply/kReduce) keeps working.
    TaskSlot& t = tasks_[w];
    for (std::size_t p = 0; p < t.task_ns.size(); ++p) {
      cum_busy_[p] += t.task_ns[p];
      t.task_ns[p] = 0;
    }
  }
}

void EngineProfile::add_occupancy(std::uint64_t staged, std::uint64_t pairs_total,
                                  std::uint64_t pairs_nonzero) {
  ensure_handles();
  if (staged > 0) handles_->occupancy.observe(staged);
  handles_->occupancy_pairs.add(pairs_total);
  handles_->occupancy_nonzero.add(pairs_nonzero);
}

void EngineProfile::end_epoch(std::uint64_t epoch) {
  (void)epoch;
  if (!armed_) return;
  ensure_handles();
  handles_->epochs.add(1);

  std::uint64_t max_busy = 0, sum_busy = 0;
  for (std::uint64_t b : epoch_busy_) {
    max_busy = std::max(max_busy, b);
    sum_busy += b;
  }
  if (sum_busy > 0) {
    const double mean =
        static_cast<double>(sum_busy) / static_cast<double>(workers_);
    const double ratio = static_cast<double>(max_busy) / mean;
    imbalance_sum_ += ratio;
    ++imbalance_epochs_;
    handles_->epoch_imbalance_milli.observe(
        static_cast<std::uint64_t>(ratio * 1000.0));
  }
  for (std::uint64_t& b : epoch_busy_) b = 0;

  for (MergeScratch& m : merge_) {
    merge_rounds_ += m.rounds;
    merge_sampled_rounds_ += m.sampled_rounds;
    merge_scan_ns_ += m.scan_ns;
    m = MergeScratch{};
  }

  if (cum_section_ns_ > 0)
    handles_->epoch_barrier_ppm.observe(
        static_cast<std::uint64_t>(barrier_wait_fraction() * 1e6));
  handles_->barrier_frac.set(barrier_wait_fraction());
  handles_->imbalance.set(worker_imbalance_ratio());
  handles_->merge_frac.set(merge_serial_fraction());
}

void EngineProfile::count_epoch(std::uint64_t pool_sections, std::uint64_t tasks,
                                std::uint64_t tasks_stolen,
                                std::uint64_t apply_ranges,
                                std::uint64_t apply_ranges_overlapped) {
  ensure_handles();
  ++health_epochs_;
  health_sections_ += pool_sections;
  health_tasks_ += tasks;
  health_stolen_ += tasks_stolen;
  health_ranges_ += apply_ranges;
  health_overlapped_ += apply_ranges_overlapped;
  handles_->engine_epochs.add(1);
  handles_->pool_sections.add(pool_sections);
  handles_->barrier_crossings.add(2 * pool_sections);
  handles_->tasks.add(tasks);
  handles_->tasks_stolen.add(tasks_stolen);
  handles_->apply_ranges.add(apply_ranges);
  handles_->apply_ranges_overlapped.add(apply_ranges_overlapped);
  handles_->barriers_per_epoch.set(barriers_per_epoch());
  handles_->steal_fraction.set(steal_fraction());
  handles_->overlap_fraction.set(stage_apply_overlap_fraction());
}

double EngineProfile::barriers_per_epoch() const {
  return health_epochs_ > 0 ? 2.0 * static_cast<double>(health_sections_) /
                                  static_cast<double>(health_epochs_)
                            : 0.0;
}

double EngineProfile::steal_fraction() const {
  return health_tasks_ > 0 ? static_cast<double>(health_stolen_) /
                                 static_cast<double>(health_tasks_)
                           : 0.0;
}

double EngineProfile::stage_apply_overlap_fraction() const {
  return health_ranges_ > 0 ? static_cast<double>(health_overlapped_) /
                                  static_cast<double>(health_ranges_)
                            : 0.0;
}

std::uint64_t EngineProfile::busy_ns(Phase p) const {
  return cum_busy_[static_cast<std::size_t>(p)];
}

double EngineProfile::barrier_wait_fraction() const {
  return cum_section_ns_ > 0 ? static_cast<double>(cum_barrier_ns_) /
                                   static_cast<double>(cum_section_ns_)
                             : 0.0;
}

double EngineProfile::worker_imbalance_ratio() const {
  return imbalance_epochs_ > 0
             ? imbalance_sum_ / static_cast<double>(imbalance_epochs_)
             : 0.0;
}

double EngineProfile::merge_serial_fraction() const {
  if (merge_sampled_rounds_ == 0) return 0.0;
  // Scale the sampled scan time up to all rounds, then take it against the
  // apply-phase busy time it is embedded in.
  const double est_scan =
      static_cast<double>(merge_scan_ns_) *
      (static_cast<double>(merge_rounds_) /
       static_cast<double>(merge_sampled_rounds_));
  const std::uint64_t apply = busy_ns(Phase::kApply);
  return apply > 0 ? est_scan / static_cast<double>(apply) : 0.0;
}

}  // namespace delta::obs::prof
