#include "obs/prof/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "obs/export.hpp"
#include "obs/observer.hpp"

namespace delta::obs::prof {
namespace {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[320];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

void append_histogram_json(std::string& out, const LogHistogram& h) {
  appendf(out, "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"mean\":%s,"
               "\"p50\":%" PRIu64 ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
          h.total(), h.sum(), json_num(h.mean()).c_str(), h.quantile(0.5),
          h.quantile(0.95), h.quantile(0.99));
}

}  // namespace

std::string prof_trace_json(const ProfSnapshot& snap, const Observer* obs) {
  std::string out = "{\"traceEvents\":[\n";
  if (obs != nullptr) append_chrome_trace_events(out, *obs);

  appendf(out, "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
               "\"args\":{\"name\":\"engine prof (wall clock, level %s)\"}},\n",
          kProfTracePid, to_string(snap.level));
  std::set<std::uint32_t> tids;
  for (const Span& s : snap.spans) tids.insert(s.tid);
  for (const std::uint32_t tid : tids)
    appendf(out, "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"thread %u\"}},\n",
            kProfTracePid, tid, tid);

  // Phase spans: complete ("X") events in wall-clock microseconds.  The
  // policy events above live in virtual epoch time under their run pids, so
  // the two timelines sit side by side as separate processes in Perfetto.
  for (const Span& s : snap.spans) {
    appendf(out, "{\"name\":\"%.*s\",\"cat\":\"prof\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u,"
                 "\"args\":{\"epoch\":%" PRIu64 ",\"seq\":%" PRIu64 "}},\n",
            static_cast<int>(phase_name(s.phase).size()),
            phase_name(s.phase).data(),
            static_cast<double>(s.start_ns) / 1e3,
            static_cast<double>(s.dur_ns) / 1e3, kProfTracePid, s.tid, s.arg,
            s.seq);
  }

  if (out.size() >= 2 && out[out.size() - 2] == ',') out.erase(out.size() - 2, 1);
  appendf(out, "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
               "\"prof_spans\":%zu,\"prof_dropped_spans\":%" PRIu64,
          snap.spans.size(), snap.dropped_spans);
  if (obs != nullptr)
    appendf(out, ",\"dropped_events\":%" PRIu64 ",\"recorded_events\":%zu",
            obs->events().dropped(), obs->events().size());
  out += "}}\n";
  return out;
}

std::string prometheus_text(const RegistrySnapshot& reg) {
  std::string out;
  for (const MetricSample& m : reg.metrics) {
    appendf(out, "# HELP %s %s\n", m.name.c_str(), m.help.c_str());
    switch (m.kind) {
      case MetricKind::kCounter:
        appendf(out, "# TYPE %s counter\n%s %.17g\n", m.name.c_str(),
                m.name.c_str(), m.value);
        break;
      case MetricKind::kGauge:
        appendf(out, "# TYPE %s gauge\n%s %.17g\n", m.name.c_str(),
                m.name.c_str(), m.value);
        break;
      case MetricKind::kHistogram: {
        appendf(out, "# TYPE %s histogram\n", m.name.c_str());
        // Cumulative le buckets up to the highest occupied one; the +Inf
        // bucket always closes the series.
        std::size_t top = 0;
        for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b)
          if (m.hist.count(b) > 0) top = b;
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b <= top; ++b) {
          cum += m.hist.count(b);
          appendf(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                  m.name.c_str(), LogHistogram::bucket_hi(b), cum);
        }
        appendf(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", m.name.c_str(),
                m.hist.total());
        appendf(out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                m.name.c_str(), m.hist.sum(), m.name.c_str(), m.hist.total());
        break;
      }
    }
  }
  return out;
}

std::string metrics_json(const RegistrySnapshot& reg, const ProfSnapshot& snap) {
  std::string out = "{\n  \"schema\": \"delta-prof-metrics-v1\",\n";
  appendf(out, "  \"level\": \"%s\",\n", to_string(snap.level));

  out += "  \"metrics\": {\n";
  for (std::size_t i = 0; i < reg.metrics.size(); ++i) {
    const MetricSample& m = reg.metrics[i];
    appendf(out, "    \"%s\": ", json_escape(m.name).c_str());
    if (m.kind == MetricKind::kHistogram) {
      append_histogram_json(out, m.hist);
    } else {
      out += json_num(m.value);
    }
    out += i + 1 < reg.metrics.size() ? ",\n" : "\n";
  }
  out += "  },\n";

  out += "  \"phase_ns\": {\n";
  for (std::size_t p = 0; p < static_cast<std::size_t>(Phase::kCount); ++p) {
    const Phase ph = static_cast<Phase>(p);
    appendf(out, "    \"%.*s\": %" PRIu64,
            static_cast<int>(phase_name(ph).size()), phase_name(ph).data(),
            snap.phase_ns(ph));
    out += p + 1 < static_cast<std::size_t>(Phase::kCount) ? ",\n" : "\n";
  }
  out += "  },\n";

  out += "  \"sites\": {\n";
  for (std::size_t s = 0; s < snap.sites.size(); ++s) {
    const Site site = static_cast<Site>(s);
    const SiteTotal& t = snap.sites[s];
    appendf(out, "    \"%.*s\": {\"calls\":%" PRIu64 ",\"ns\":%" PRIu64
                 ",\"hist\":",
            static_cast<int>(site_name(site).size()), site_name(site).data(),
            t.calls, t.ns);
    append_histogram_json(out, t.hist);
    out += "}";
    out += s + 1 < snap.sites.size() ? ",\n" : "\n";
  }
  out += "  },\n";

  appendf(out, "  \"spans\": %zu,\n  \"dropped_spans\": %" PRIu64 "\n}\n",
          snap.spans.size(), snap.dropped_spans);
  return out;
}

}  // namespace delta::obs::prof
