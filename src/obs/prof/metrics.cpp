#include "obs/prof/metrics.hpp"

#include <cassert>

namespace delta::obs::prof {

const MetricSample* RegistrySnapshot::find(std::string_view name) const {
  for (const MetricSample& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const common::LockGuard lock(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    assert(e.gauge == nullptr && e.hist == nullptr && "metric kind clash");
    e.kind = MetricKind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  const common::LockGuard lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    assert(e.counter == nullptr && e.hist == nullptr && "metric kind clash");
    e.kind = MetricKind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help) {
  const common::LockGuard lock(mu_);
  Entry& e = entries_[name];
  if (e.hist == nullptr) {
    assert(e.counter == nullptr && e.gauge == nullptr && "metric kind clash");
    e.kind = MetricKind::kHistogram;
    e.help = help;
    e.hist = std::make_unique<HistogramMetric>();
  }
  return *e.hist;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot out;
  const common::LockGuard lock(mu_);
  out.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample m;
    m.name = name;
    m.help = e.help;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        m.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        m.value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        m.hist = e.hist->snapshot();
        break;
    }
    out.metrics.push_back(std::move(m));
  }
  return out;
}

void MetricsRegistry::reset_values() {
  const common::LockGuard lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case MetricKind::kCounter: {
        // Counters have no store API by design; rebuilding keeps the
        // monotonic contract for live handles... which must stay valid, so
        // subtract instead: add the two's-complement of the current value.
        const std::uint64_t v = e.counter->value();
        e.counter->add(~v + 1);
        break;
      }
      case MetricKind::kGauge:
        e.gauge->set(0.0);
        break;
      case MetricKind::kHistogram:
        e.hist->reset();
        break;
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

}  // namespace delta::obs::prof
