// Engine self-profiling: scoped wall-clock phase timers with thread-local
// buffers feeding a process-wide span log and per-site duration aggregates.
//
// This is the one directory where wall-clock reads are legal (the
// nondet-source lint bans steady_clock everywhere else in src/); call sites
// in sim/ instrument themselves through the RAII types below and never touch
// a clock directly.  Profiling is observation-only by construction — spans
// and site aggregates are written to side buffers that nothing in the
// simulator ever reads back — so results stay byte-identical with profiling
// on or off at any thread count (asserted by tests/test_prof.cpp and the CI
// benchmark job).
//
// Gating: two layers.
//   compile time — building with -DDELTA_PROF_DISABLED compiles every
//     instrumentation type down to an empty inline no-op;
//   run time    — a process-wide relaxed-atomic ProfLevel.  A disabled site
//     costs one relaxed load + branch (micro_prof_overhead gates the
//     end-to-end cost at < 2%).
//
// Levels:
//   kOff    — collect nothing.
//   kPhases — coarse spans: epoch / policy / stage / apply / reduce /
//     barrier sections, sweep-job scheduling, derived per-epoch metrics.
//   kFull   — adds per-call site aggregates (do_access_batch, per-core
//     stage/reduce, per-bank apply), sampled cursor-merge scan timing, and
//     per-(core,bank) staging-buffer occupancy.  Budget < 8%.
//
// Span model: each span is (seq, start_ns, dur_ns, tid, phase, arg).  seq is
// a process-wide sequence number drawn at record time, so a snapshot can be
// ordered into one deterministic-format timeline; start/dur are nanoseconds
// on the steady clock relative to a process-fixed origin; tid is a stable
// per-thread slot; arg carries the epoch (or job index) the span belongs to.
// Spans land in per-thread buffers (one uncontended mutex each, locked only
// against snapshots) capped at kMaxSpansPerThread with drop accounting.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/parallel.hpp"
#include "common/sync.hpp"

namespace delta::obs::prof {

enum class ProfLevel : int { kOff = 0, kPhases = 1, kFull = 2 };

const char* to_string(ProfLevel lvl);
/// Parses "off" | "phases" | "full"; returns false on anything else.
bool parse_prof_level(std::string_view s, ProfLevel* out);

/// Span categories.  Phases of the intra-run engine mirror sim/intra.hpp;
/// kBarrier spans are the derived done-barrier waits (a worker's wait is the
/// gap between its own work_done and the section's last work_done).
enum class Phase : std::uint8_t {
  kEpoch = 0,     ///< One whole Chip::run_one_epoch.
  kPolicy,        ///< Budgets + begin_epoch + monitor decay + checker.
  kSerialAccess,  ///< Serial interleaved issue loop (no intra engine).
  kAccounting,    ///< MCU end_epoch + epoch accounting + timeline sample.
  kStage,         ///< Intra staging task run (per-worker, inside kPipeline).
  kApply,         ///< Intra apply task run (per-worker, inside kPipeline).
  kReduce,        ///< Intra reduce task run (per-worker, inside kPipeline).
  kPipeline,      ///< Intra fused stage+apply+reduce worker section.
  kSerialTail,    ///< Intra serial integer-tally reduction.
  kBarrier,       ///< Done-barrier wait inside a worker section.
  kSweepJob,      ///< One run_sweep job (a whole simulation).
  kMtApply,       ///< mt_sim staged-epoch application.
  kCount
};

std::string_view phase_name(Phase p);

/// Per-call aggregation sites (duration totals + log-bucket histograms, no
/// individual spans — these fire far too often for the span log).
enum class Site : std::uint8_t {
  kAccessBatch = 0,  ///< Chip::do_access_batch (serial hot path).
  kStageCore,        ///< IntraEngine::stage_core.
  kApplyBank,        ///< IntraEngine::apply_bank.
  kReduceCore,       ///< IntraEngine::reduce_core.
  kCount
};

std::string_view site_name(Site s);

struct Span {
  std::uint64_t seq = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;
  std::uint32_t tid = 0;
  Phase phase = Phase::kEpoch;
};

struct SiteTotal {
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;
  LogHistogram hist;
};

/// Everything a snapshot carries; exporters consume this by value.
struct ProfSnapshot {
  ProfLevel level = ProfLevel::kOff;
  std::vector<Span> spans;  ///< Ascending seq.
  std::array<SiteTotal, static_cast<std::size_t>(Site::kCount)> sites;
  std::uint64_t dropped_spans = 0;

  /// Total recorded duration across spans of one phase.
  std::uint64_t phase_ns(Phase p) const;
};

#if defined(DELTA_PROF_DISABLED)

inline void set_level(ProfLevel) {}
inline ProfLevel level() { return ProfLevel::kOff; }
inline bool enabled(ProfLevel) { return false; }
inline std::uint64_t now_ns() { return 0; }

#else

namespace detail {
inline std::atomic<int>& level_slot() {
  static std::atomic<int> lvl{static_cast<int>(ProfLevel::kOff)};
  return lvl;
}
inline std::chrono::steady_clock::time_point origin() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}
}  // namespace detail

/// Sets the process-wide collection level.  Set it before constructing the
/// chips/pools you want profiled; raising it mid-run is safe (observation
/// only) but sections already in flight keep their armed/disarmed state.
inline void set_level(ProfLevel lvl) {
  detail::level_slot().store(static_cast<int>(lvl), std::memory_order_relaxed);
}
inline ProfLevel level() {
  return static_cast<ProfLevel>(detail::level_slot().load(std::memory_order_relaxed));
}
/// The disabled-site fast path: one relaxed load + compare.
inline bool enabled(ProfLevel need) {
  return detail::level_slot().load(std::memory_order_relaxed) >=
         static_cast<int>(need);
}

/// Nanoseconds on the steady clock since a process-fixed origin.  The origin
/// is latched on first use; init_clock() pins it early in main() so
/// concurrent first uses cannot race the static init from hot paths.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detail::origin())
          .count());
}

#endif  // DELTA_PROF_DISABLED

inline void init_clock() { (void)now_ns(); }

/// Process-wide span/site store.  Threads register lazily and keep their
/// buffer for the process lifetime; record paths lock only the calling
/// thread's own (uncontended) mutex, snapshots walk all buffers.
class Profiler {
 public:
  static Profiler& instance();

  /// Appends a span to the calling thread's buffer (drop-counted past the
  /// per-thread cap).  Callers check enabled() first; this always records.
  void record_span(Phase p, std::uint64_t start_ns, std::uint64_t dur_ns,
                   std::uint64_t arg);

  /// Folds one duration into the calling thread's per-site aggregate.
  void add_site(Site s, std::uint64_t dur_ns);

  /// Stable slot of the calling thread in this profiler (also the tid spans
  /// carry).  Slots count up from 0 in first-record order.
  std::uint32_t thread_slot();

  /// Deep-copy snapshot: spans from every thread buffer merged and sorted by
  /// seq, site aggregates merged across threads.  Safe against concurrent
  /// recording (each buffer is copied under its own mutex).
  ProfSnapshot snapshot() const;

  /// Drops all recorded data (buffers stay registered).  Tests and benches
  /// use this between measured configurations.
  void clear();

  static constexpr std::size_t kMaxSpansPerThread = 1u << 20;

 private:
  struct ThreadBuf {
    mutable common::Mutex mu;
    std::vector<Span> spans GUARDED_BY(mu);
    std::array<SiteTotal, static_cast<std::size_t>(Site::kCount)> sites
        GUARDED_BY(mu);
    std::uint64_t dropped GUARDED_BY(mu) = 0;
    std::uint32_t tid = 0;
  };

  Profiler() = default;
  ThreadBuf& local_buf() EXCLUDES(mu_);

  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> seq_{0};
};

/// RAII phase span: arms itself when the runtime level reaches `need`, and
/// records one span on destruction.  Disabled cost: one relaxed load.
class ScopedSpan {
 public:
#if defined(DELTA_PROF_DISABLED)
  ScopedSpan(Phase, std::uint64_t = 0, ProfLevel = ProfLevel::kPhases) {}
  void stop() {}
#else
  explicit ScopedSpan(Phase p, std::uint64_t arg = 0,
                      ProfLevel need = ProfLevel::kPhases) {
    if (enabled(need)) {
      phase_ = p;
      arg_ = arg;
      start_ = now_ns();
      armed_ = true;
    }
  }
  ~ScopedSpan() { stop(); }
  /// Ends the span now instead of at scope exit (idempotent).
  void stop() {
    if (armed_) {
      Profiler::instance().record_span(phase_, start_, now_ns() - start_, arg_);
      armed_ = false;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::uint64_t start_ = 0;
  std::uint64_t arg_ = 0;
  Phase phase_ = Phase::kEpoch;
  bool armed_ = false;
#endif
};

/// RAII site timer: like ScopedSpan but folds into the per-thread site
/// aggregate instead of the span log; defaults to the kFull gate because the
/// sites it guards fire per batch/core/bank, not per phase.
class ScopedSite {
 public:
#if defined(DELTA_PROF_DISABLED)
  ScopedSite(Site, ProfLevel = ProfLevel::kFull) {}
#else
  explicit ScopedSite(Site s, ProfLevel need = ProfLevel::kFull) {
    if (enabled(need)) {
      site_ = s;
      start_ = now_ns();
      armed_ = true;
    }
  }
  ~ScopedSite() {
    if (armed_) Profiler::instance().add_site(site_, now_ns() - start_);
  }
  ScopedSite(const ScopedSite&) = delete;
  ScopedSite& operator=(const ScopedSite&) = delete;

 private:
  std::uint64_t start_ = 0;
  Site site_ = Site::kAccessBatch;
  bool armed_ = false;
#endif
};

/// Per-WorkerPool profiling: implements the pool's WorkerHooks to clock each
/// worker's section, derives done-barrier waits (a worker's wait is the gap
/// to the section's last work_done), and folds per-epoch derived metrics —
/// barrier-wait fraction, worker-imbalance ratio, sampled cursor-merge
/// serial fraction, staging-buffer occupancy — into the global
/// MetricsRegistry.  One instance per engine, driven from the pool's owner
/// thread (begin_section/end_section/end_epoch); the hook slots are written
/// by each worker inside the section and read by the owner after the done
/// barrier, which orders them (same argument as WorkerPool::fn_).
class EngineProfile final : public WorkerHooks {
 public:
  explicit EngineProfile(unsigned workers);
  ~EngineProfile() override;

  /// Arms the next pool section if the runtime level allows; phase/epoch
  /// label the spans the section will record.
  void begin_section(Phase p, std::uint64_t epoch);
  /// Records per-worker busy + barrier spans for the section that just
  /// finished and accumulates the epoch's totals.  Pair with begin_section
  /// around every pool run.
  void end_section();

  /// True when the current section is being measured (cheap cached flag —
  /// call sites use it to gate kFull extras without re-reading the level).
  bool armed() const { return armed_; }
  bool full() const { return full_; }

  // WorkerHooks (called on worker threads, inside a section):
  void section_begin(unsigned worker) override;
  void work_done(unsigned worker) override;

  /// Worker-side task attribution inside a fused kPipeline section: the
  /// scheduler calls this when worker `worker` starts a task of kind `p`
  /// (kStage / kApply / kReduce).  Consecutive tasks of the same kind extend
  /// one span; a kind switch closes the open span and records it, so the
  /// trace keeps per-phase rows even though the pool runs a single fused
  /// section.  work_done() flushes the last open span.  No-op when the
  /// section is not armed.
  void task_begin(unsigned worker, Phase p);

  /// Sampled cursor-merge scan accounting, one per worker; apply_bank adds
  /// to the slot of the worker running it.
  struct MergeScratch {
    std::uint64_t rounds = 0;          ///< All merge rounds walked.
    std::uint64_t sampled_rounds = 0;  ///< Rounds whose scan was clocked.
    std::uint64_t scan_ns = 0;         ///< Clocked scan time (sampled).
  };
  MergeScratch& merge_scratch(unsigned worker) {
    return merge_[static_cast<std::size_t>(worker)];
  }

  /// One per-(core,bank) staged-access count (nonzero lists only).
  void add_occupancy(std::uint64_t staged, std::uint64_t pairs_total,
                     std::uint64_t pairs_nonzero);

  /// Closes the epoch: updates cumulative totals, pushes derived metrics
  /// (fractions, imbalance, per-epoch histograms) into the registry.
  void end_epoch(std::uint64_t epoch);

  /// Machine-independent engine-health accounting, one call per epoch from
  /// the owner thread.  Unlike the timing metrics this is NOT gated on the
  /// profiling level: the counts are structural (how many pool sections,
  /// tasks, steals and overlapped apply ranges the epoch used), so CI can
  /// gate scaling *structure* even on 1-hw-thread hosts where wall-clock
  /// ratios are meaningless.  Each pool section costs two barrier
  /// crossings (start + done).
  void count_epoch(std::uint64_t pool_sections, std::uint64_t tasks,
                   std::uint64_t tasks_stolen, std::uint64_t apply_ranges,
                   std::uint64_t apply_ranges_overlapped);

  // Cumulative health totals (any profiling level).
  std::uint64_t health_epochs() const { return health_epochs_; }
  double barriers_per_epoch() const;
  double steal_fraction() const;
  double stage_apply_overlap_fraction() const;

  // Cumulative run totals, exposed for tests and the bench phase breakdown.
  std::uint64_t busy_ns(Phase p) const;
  std::uint64_t barrier_ns() const { return cum_barrier_ns_; }
  double barrier_wait_fraction() const;
  double worker_imbalance_ratio() const;
  double merge_serial_fraction() const;

 private:
  struct WorkerSlot {
    std::uint64_t begin_ns = 0;
    std::uint64_t done_ns = 0;
  };

  /// Open task span of one worker (task_begin/work_done flush).  Written
  /// only by the owning worker inside a section; task_ns is read by the
  /// owner after the done barrier (which orders it, like WorkerSlot).
  struct TaskSlot {
    std::uint64_t start_ns = 0;
    Phase phase = Phase::kStage;
    bool open = false;
    std::array<std::uint64_t, static_cast<std::size_t>(Phase::kCount)> task_ns{};
  };

  void flush_task(unsigned worker, std::uint64_t now);

  const unsigned workers_;
  std::vector<WorkerSlot> slots_;
  std::vector<TaskSlot> tasks_;
  std::vector<MergeScratch> merge_;
  std::vector<std::uint64_t> epoch_busy_;  ///< Per worker, this epoch.
  Phase phase_ = Phase::kStage;
  std::uint64_t epoch_arg_ = 0;
  bool armed_ = false;
  bool full_ = false;

  // Cumulative over the run (owner thread only).
  std::array<std::uint64_t, static_cast<std::size_t>(Phase::kCount)> cum_busy_{};
  std::uint64_t cum_barrier_ns_ = 0;
  std::uint64_t cum_section_ns_ = 0;   ///< busy + barrier.
  double imbalance_sum_ = 0.0;
  std::uint64_t imbalance_epochs_ = 0;
  std::uint64_t merge_rounds_ = 0;
  std::uint64_t merge_sampled_rounds_ = 0;
  std::uint64_t merge_scan_ns_ = 0;

  // Health totals (owner thread only; counted at every profiling level).
  std::uint64_t health_epochs_ = 0;
  std::uint64_t health_sections_ = 0;
  std::uint64_t health_tasks_ = 0;
  std::uint64_t health_stolen_ = 0;
  std::uint64_t health_ranges_ = 0;
  std::uint64_t health_overlapped_ = 0;

  struct Handles;
  std::unique_ptr<Handles> handles_;  ///< Lazily bound registry metrics.
  void ensure_handles();
};

}  // namespace delta::obs::prof
