// Process-wide metrics registry: counters, gauges, and log-bucket histograms
// (built on common/histogram.hpp's LogHistogram) with deterministic
// registration semantics and snapshot-by-value readers.
//
// Registration returns a stable reference that lives for the process (the
// registry never removes metrics), so hot paths register once at setup and
// then touch only the metric's own atomics.  Names are held in a std::map —
// export order is name order, deterministic regardless of which thread
// registered first.  Snapshots deep-copy every value under the registry
// lock, so readers never observe a metric mid-update and exporters can run
// while the simulation keeps counting (the same discipline as
// obs/recorder.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/sync.hpp"

namespace delta::obs::prof {

/// Monotonic uint64 counter; add() is a relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins double gauge.
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucket histogram metric; observe() locks the metric's own mutex
/// (observations come at epoch granularity, never from access hot paths).
class HistogramMetric {
 public:
  void observe(std::uint64_t v, std::uint64_t weight = 1) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    h_.add(v, weight);
  }
  LogHistogram snapshot() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return h_;
  }
  void reset() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    h_.reset();
  }

 private:
  mutable common::Mutex mu_;
  LogHistogram h_ GUARDED_BY(mu_);
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric's deep-copied state at snapshot time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;   ///< Counter (exact up to 2^53) or gauge value.
  LogHistogram hist;    ///< kHistogram only.
};

/// Name-ordered (hence deterministic) registry snapshot.
struct RegistrySnapshot {
  std::vector<MetricSample> metrics;
  const MetricSample* find(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  /// Re-registration ignores `help` and returns the existing metric;
  /// registering the same name as a different kind aborts (assert) — metric
  /// names are a process-wide namespace.
  Counter& counter(const std::string& name, const std::string& help)
      EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, const std::string& help) EXCLUDES(mu_);
  HistogramMetric& histogram(const std::string& name, const std::string& help)
      EXCLUDES(mu_);

  RegistrySnapshot snapshot() const EXCLUDES(mu_);

  /// Zeroes every registered value (metrics stay registered; references
  /// remain valid).  For benches/tests that reuse the process registry.
  void reset_values() EXCLUDES(mu_);

  static MetricsRegistry& global();

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> hist;
  };

  mutable common::Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace delta::obs::prof
