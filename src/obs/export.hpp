// Machine-readable exporters for the observability layer
// (docs/observability.md documents the formats):
//
//   chrome_trace_json — Chrome trace-event JSON (open in Perfetto or
//     chrome://tracing): policy events as instant events on per-tile
//     tracks, one process per run/scheme, plus per-core way/IPC counters
//     and per-MCU queue counters from the timeline.
//   timeline_csv — long-format epoch time series with an `entity` column
//     (core / mcu / chip) so one file carries all three row types.
//
// Exporters build strings so tests can validate output without touching
// the filesystem; write_text_file() is the thin file sink used by tools.
#pragma once

#include <string>
#include <string_view>

#include "obs/observer.hpp"

namespace delta::obs {

/// JSON string escaping (control characters, quotes, backslash).
std::string json_escape(std::string_view s);

/// Finite-checked JSON number formatting (%.6g; NaN/Inf become 0).
std::string json_num(double x);

/// Header row of timeline_csv(), without the trailing newline.
std::string timeline_csv_header();

std::string timeline_csv(const Observer& obs);

std::string chrome_trace_json(const Observer& obs);

/// Appends the observer's trace entries (process/thread metadata, policy
/// instants, timeline counters) to `out`, each terminated by ",\n".  The
/// building block chrome_trace_json() and the profiler's merged exporter
/// (obs/prof/export.hpp) share, so phase spans and policy events can land in
/// one trace file.
void append_chrome_trace_events(std::string& out, const Observer& obs);

/// Writes `content` to `path`; returns false (and leaves errno set) on
/// failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace delta::obs
