#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <utility>

namespace delta::obs {
namespace {

/// Microseconds per simulator epoch: one epoch = i_intra = 0.1 ms.
constexpr double kUsPerEpoch = 100.0;

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

void append_counter(std::string& out, std::uint32_t run, double ts,
                    const std::string& name, const char* key, double value) {
  appendf(out, "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%u,\"tid\":0,\"ts\":%.1f,"
               "\"args\":{\"%s\":%s}},\n",
          name.c_str(), run, ts, key, json_num(value).c_str());
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double x) {
  if (!std::isfinite(x)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", x);
  return buf;
}

std::string timeline_csv_header() {
  return "entity,run,scheme,epoch,id,app,ipc,ways,accesses,misses,miss_rate,"
         "avg_latency,queue_delay,utilization,control_msgs,demand_msgs,"
         "invalidation_msgs,invalidated_lines";
}

std::string timeline_csv(const Observer& obs) {
  const TimelineSampler& tl = obs.timeline();
  std::string out = timeline_csv_header() + "\n";
  for (const CoreSample& s : tl.cores()) {
    const double miss_rate =
        s.accesses ? static_cast<double>(s.misses) / static_cast<double>(s.accesses)
                   : 0.0;
    appendf(out, "core,%u,%s,%" PRIu64 ",%d,%s,%s,%d,%" PRIu64 ",%" PRIu64
                 ",%s,%s,,,,,,\n",
            s.run, std::string(obs.run_name(s.run)).c_str(), s.epoch, s.core,
            s.app.c_str(), json_num(s.ipc).c_str(), s.ways, s.accesses, s.misses,
            json_num(miss_rate).c_str(), json_num(s.avg_latency).c_str());
  }
  for (const McuSample& s : tl.mcus()) {
    appendf(out, "mcu,%u,%s,%" PRIu64 ",%d,,,,,,,,%" PRIu64 ",%s,,,,\n",
            s.run, std::string(obs.run_name(s.run)).c_str(), s.epoch, s.mcu,
            s.queue_delay, json_num(s.utilization).c_str());
  }
  for (const ChipSample& s : tl.chips()) {
    appendf(out, "chip,%u,%s,%" PRIu64 ",,,,,,,,,,,%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 "\n",
            s.run, std::string(obs.run_name(s.run)).c_str(), s.epoch,
            s.control_msgs, s.demand_msgs, s.invalidation_msgs,
            s.invalidated_lines);
  }
  return out;
}

void append_chrome_trace_events(std::string& out, const Observer& obs) {
  // Metadata: one trace process per run (scheme), named tile tracks.
  std::set<std::pair<std::uint32_t, int>> tids;
  for (const Event& e : obs.events().events())
    tids.insert({e.run, e.core >= 0 ? e.core : 0});
  const std::size_t runs =
      obs.run_names().empty() ? (tids.empty() ? 0 : 1) : obs.run_names().size();
  for (std::uint32_t r = 0; r < runs; ++r)
    appendf(out, "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"%s\"}},\n",
            r, json_escape(obs.run_name(r)).c_str());
  for (const auto& [run, tid] : tids)
    appendf(out, "{\"ph\":\"M\",\"pid\":%u,\"tid\":%d,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"tile %d\"}},\n",
            run, tid, tid);

  // Policy events: instant events on the acting tile's track.
  for (const Event& e : obs.events().events()) {
    appendf(out, "{\"name\":\"%s\",\"cat\":\"policy\",\"ph\":\"i\",\"s\":\"t\","
                 "\"ts\":%.1f,\"pid\":%u,\"tid\":%d,\"args\":{\"bank\":%d,"
                 "\"peer\":%d,\"count\":%u,\"a\":%s,\"b\":%s}},\n",
            std::string(event_kind_name(e.kind)).c_str(),
            static_cast<double>(e.epoch) * kUsPerEpoch, e.run,
            e.core >= 0 ? e.core : 0, e.bank, e.other, e.count,
            json_num(e.a).c_str(), json_num(e.b).c_str());
  }

  // Timeline counters (allocated ways / IPC per core, MCU queueing).
  for (const CoreSample& s : obs.timeline().cores()) {
    const double ts = static_cast<double>(s.epoch) * kUsPerEpoch;
    char name[32];
    std::snprintf(name, sizeof name, "ways core%d", s.core);
    append_counter(out, s.run, ts, name, "ways", s.ways);
    std::snprintf(name, sizeof name, "ipc core%d", s.core);
    append_counter(out, s.run, ts, name, "ipc", s.ipc);
  }
  for (const McuSample& s : obs.timeline().mcus()) {
    const double ts = static_cast<double>(s.epoch) * kUsPerEpoch;
    char name[32];
    std::snprintf(name, sizeof name, "mcu%d queue", s.mcu);
    append_counter(out, s.run, ts, name, "cycles",
                   static_cast<double>(s.queue_delay));
    std::snprintf(name, sizeof name, "mcu%d util", s.mcu);
    append_counter(out, s.run, ts, name, "util", s.utilization);
  }
}

std::string chrome_trace_json(const Observer& obs) {
  std::string out = "{\"traceEvents\":[\n";
  append_chrome_trace_events(out, obs);

  // Trailing comma cleanup: drop the final ",\n" if any entry was written.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  appendf(out, "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
               "\"dropped_events\":%" PRIu64 ",\"recorded_events\":%zu}}\n",
          obs.events().dropped(), obs.events().size());
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace delta::obs
