// Pre-sized append buffer for policy events.
//
// The recorder is wired into the controller/chip as a nullable pointer: a
// null pointer (or `enabled() == false`) makes every emission site a single
// predictable branch, so the instrumentation can stay compiled in.  On
// overflow the newest events are dropped (the head of a run is the
// interesting part — that is where partitions form) and the drop count is
// reported by the exporters so truncation is never silent.
//
// Concurrency: record() and every reader take the annotated recorder mutex
// (common/sync.hpp), so one recorder can be shared by concurrent emitters;
// the enabled gate stays a relaxed atomic so a disabled recorder never
// locks.  events() returns a snapshot by value — safe to iterate while
// emitters are still running.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sync.hpp"
#include "obs/event.hpp"

namespace delta::obs {

class EventRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;  // ~10 MB.

  explicit EventRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {
    events_.reserve(capacity_);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Run index stamped onto subsequent events (one run per scheme).
  void set_run(std::uint8_t run) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    run_ = run;
  }
  std::uint8_t run() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return run_;
  }

  void record(EventKind kind, std::uint64_t epoch, int core, int bank = -1,
              int other = -1, std::uint64_t count = 0, double a = 0.0,
              double b = 0.0) EXCLUDES(mu_) {
    if (!enabled()) return;
    const common::LockGuard lock(mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    Event e;
    e.epoch = epoch;
    e.kind = kind;
    e.run = run_;
    e.core = static_cast<std::int16_t>(core);
    e.bank = static_cast<std::int16_t>(bank);
    e.other = static_cast<std::int16_t>(other);
    e.count = static_cast<std::uint32_t>(count);
    e.a = a;
    e.b = b;
    events_.push_back(e);
  }

  /// Snapshot of the buffered events (copy; see the concurrency note above).
  std::vector<Event> events() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return events_;
  }
  std::size_t size() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return events_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return dropped_;
  }

  std::uint64_t count_of(EventKind k) const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    std::uint64_t n = 0;
    for (const Event& e : events_) n += e.kind == k ? 1 : 0;
    return n;
  }

  /// Appends a snapshot of `other`'s events with run indices shifted by
  /// `run_offset` (merging per-job recorders back into one trace in job
  /// order).  Capacity overflow drops the newest events exactly like
  /// record(), and `other`'s own drop count carries over, so truncation
  /// stays visible in the merged exporters.
  void append_from(const EventRecorder& other, std::uint8_t run_offset)
      EXCLUDES(mu_) {
    const std::vector<Event> src = other.events();
    const std::uint64_t src_dropped = other.dropped();
    const common::LockGuard lock(mu_);
    for (Event e : src) {
      if (events_.size() >= capacity_) {
        ++dropped_;
        continue;
      }
      e.run = static_cast<std::uint8_t>(e.run + run_offset);
      events_.push_back(e);
    }
    dropped_ += src_dropped;
  }

  void clear() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    events_.clear();
    dropped_ = 0;
  }

 private:
  mutable common::Mutex mu_;
  std::vector<Event> events_ GUARDED_BY(mu_);
  std::size_t capacity_;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
  std::uint8_t run_ GUARDED_BY(mu_) = 0;
  std::atomic<bool> enabled_{true};
};

}  // namespace delta::obs
