// Epoch time-series sampler: one row per core, MCU and chip per measured
// epoch.  Rows are plain records appended once per epoch (never on the
// access path), sized for the usual 10^2..10^3-epoch runs.
//
// Concurrency: appends and readers take the annotated sampler mutex
// (common/sync.hpp); the cores()/mcus()/chips() accessors return snapshots
// by value so exporters can run while another run is still sampling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.hpp"

namespace delta::obs {

struct CoreSample {
  std::uint32_t run = 0;
  std::uint64_t epoch = 0;
  std::int32_t core = -1;
  std::string app;
  double ipc = 0.0;             ///< This epoch's IPC estimate (1 / CPI).
  std::int32_t ways = 0;        ///< Chip-wide allocated ways.
  std::uint64_t accesses = 0;   ///< LLC accesses issued this epoch.
  std::uint64_t misses = 0;     ///< LLC misses this epoch.
  double avg_latency = 0.0;     ///< Mean LLC access latency this epoch (cycles).
};

struct McuSample {
  std::uint32_t run = 0;
  std::uint64_t epoch = 0;
  std::int32_t mcu = -1;
  std::uint64_t queue_delay = 0;  ///< Queueing delay charged next epoch (cycles).
  double utilization = 0.0;       ///< Channel utilisation this epoch [0, 1].
};

/// Chip-level per-epoch NoC message deltas and invalidation volume.
struct ChipSample {
  std::uint32_t run = 0;
  std::uint64_t epoch = 0;
  std::uint64_t control_msgs = 0;
  std::uint64_t demand_msgs = 0;
  std::uint64_t invalidation_msgs = 0;
  std::uint64_t invalidated_lines = 0;
};

class TimelineSampler {
 public:
  void set_run(std::uint32_t run) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    run_ = run;
  }

  void add_core(std::uint64_t epoch, int core, std::string app, double ipc, int ways,
                std::uint64_t accesses, std::uint64_t misses, double avg_latency)
      EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    cores_.push_back(CoreSample{run_, epoch, core, std::move(app), ipc, ways,
                                accesses, misses, avg_latency});
  }
  void add_mcu(std::uint64_t epoch, int mcu, std::uint64_t queue_delay,
               double utilization) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    mcus_.push_back(McuSample{run_, epoch, mcu, queue_delay, utilization});
  }
  void add_chip(std::uint64_t epoch, std::uint64_t control, std::uint64_t demand,
                std::uint64_t inval_msgs, std::uint64_t inval_lines) EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    chips_.push_back(ChipSample{run_, epoch, control, demand, inval_msgs, inval_lines});
  }

  /// Snapshot accessors (copies; safe while sampling continues elsewhere).
  std::vector<CoreSample> cores() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return cores_;
  }
  std::vector<McuSample> mcus() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return mcus_;
  }
  std::vector<ChipSample> chips() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return chips_;
  }
  bool empty() const EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    return cores_.empty() && mcus_.empty() && chips_.empty();
  }

  /// Appends a snapshot of `other`'s samples with run indices shifted by
  /// `run_offset` (merging per-job samplers back into one timeline in job
  /// order).
  void append_from(const TimelineSampler& other, std::uint32_t run_offset)
      EXCLUDES(mu_) {
    const std::vector<CoreSample> src_cores = other.cores();
    const std::vector<McuSample> src_mcus = other.mcus();
    const std::vector<ChipSample> src_chips = other.chips();
    const common::LockGuard lock(mu_);
    for (CoreSample s : src_cores) {
      s.run += run_offset;
      cores_.push_back(std::move(s));
    }
    for (McuSample s : src_mcus) {
      s.run += run_offset;
      mcus_.push_back(s);
    }
    for (ChipSample s : src_chips) {
      s.run += run_offset;
      chips_.push_back(s);
    }
  }

  void clear() EXCLUDES(mu_) {
    const common::LockGuard lock(mu_);
    cores_.clear();
    mcus_.clear();
    chips_.clear();
  }

 private:
  mutable common::Mutex mu_;
  std::vector<CoreSample> cores_ GUARDED_BY(mu_);
  std::vector<McuSample> mcus_ GUARDED_BY(mu_);
  std::vector<ChipSample> chips_ GUARDED_BY(mu_);
  std::uint32_t run_ GUARDED_BY(mu_) = 0;
};

}  // namespace delta::obs
