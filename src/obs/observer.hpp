// Observer: the run-wide observability context handed to the simulator.
//
// Holds the event recorder and epoch sampler plus the list of runs (one per
// scheme execution) so a single trace/CSV can span a `--scheme all`
// comparison.  The level gates what gets collected:
//
//   kOff      — attached but inert; every hook is a cheap early-out.
//   kSummary  — run names only (enough for the end-of-run JSON summary).
//   kTimeline — + per-epoch core/MCU/chip samples.
//   kFull     — + the policy event trace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/timeline.hpp"

namespace delta::obs {

enum class ObsLevel : int { kOff = 0, kSummary = 1, kTimeline = 2, kFull = 3 };

constexpr std::string_view to_string(ObsLevel l) {
  switch (l) {
    case ObsLevel::kOff: return "off";
    case ObsLevel::kSummary: return "summary";
    case ObsLevel::kTimeline: return "timeline";
    case ObsLevel::kFull: return "full";
  }
  return "?";
}

class Observer {
 public:
  explicit Observer(ObsLevel level,
                    std::size_t event_capacity = EventRecorder::kDefaultCapacity)
      : level_(level), events_(event_capacity) {
    events_.set_enabled(events_enabled());
  }

  ObsLevel level() const { return level_; }
  bool events_enabled() const { return level_ >= ObsLevel::kFull; }
  bool timeline_enabled() const { return level_ >= ObsLevel::kTimeline; }

  /// Starts a new run (e.g. one scheme of a comparison); subsequent events
  /// and samples are stamped with the returned run index.
  std::uint32_t begin_run(std::string name) {
    run_names_.push_back(std::move(name));
    const auto run = static_cast<std::uint32_t>(run_names_.size() - 1);
    events_.set_run(static_cast<std::uint8_t>(run));
    timeline_.set_run(run);
    return run;
  }

  const std::vector<std::string>& run_names() const { return run_names_; }
  std::string_view run_name(std::uint32_t run) const {
    return run < run_names_.size() ? std::string_view(run_names_[run])
                                   : std::string_view("run");
  }

  EventRecorder& events() { return events_; }
  const EventRecorder& events() const { return events_; }
  TimelineSampler& timeline() { return timeline_; }
  const TimelineSampler& timeline() const { return timeline_; }

  /// Recorder pointer for emission sites: null when events are off, so the
  /// per-event cost of a disabled trace is one pointer test.
  EventRecorder* event_sink() { return events_enabled() ? &events_ : nullptr; }

  /// Appends `other`'s runs (names, events, timeline samples) after this
  /// observer's, re-stamping run indices past the existing ones.  Merging
  /// per-job observers in job order reproduces exactly the trace a serial
  /// multi-run execution would have built: nothing in a trace carries wall
  /// time, so ordering is run-major by construction either way.  The two
  /// observers should share a level; events disabled on either side simply
  /// contribute nothing.
  void merge_from(const Observer& other) {
    const auto offset = static_cast<std::uint32_t>(run_names_.size());
    for (const std::string& n : other.run_names()) run_names_.push_back(n);
    events_.append_from(other.events(), static_cast<std::uint8_t>(offset));
    timeline_.append_from(other.timeline(), offset);
  }

 private:
  ObsLevel level_;
  EventRecorder events_;
  TimelineSampler timeline_;
  std::vector<std::string> run_names_;
};

}  // namespace delta::obs
