// Policy-event trace records (observability layer, docs/observability.md).
//
// An Event is a fixed-size POD: recording one is a bounds check plus a
// 40-byte append into a pre-sized buffer, cheap enough to leave compiled
// into the reconfiguration paths permanently.  Field meaning is
// kind-specific (see the table in docs/observability.md); `a`/`b` carry the
// policy values that drove the decision (e.g. challenger gain vs defender
// pain) so Fig. 13-style reconfiguration dynamics can be reconstructed
// offline.
#pragma once

#include <cstdint>
#include <string_view>

namespace delta::obs {

enum class EventKind : std::uint8_t {
  kChallengeSent = 0,   ///< Inter-bank challenge issued (a = challenger gain).
  kChallengeWon,        ///< Challenge succeeded (a = gain, b = loser's defence).
  kChallengeLost,       ///< Challenge failed (a = gain, b = winning defence).
  kBankHandover,        ///< Idle home bank handed over wholesale (count = ways).
  kWayTransfer,         ///< Ways moved between partitions (count = ways).
  kRetreat,             ///< Guest evicted from a bank, CBT rebuilt.
  kCbtRebuild,          ///< A core's CBT recomputed (count = resulting ranges).
  kCbtRemap,            ///< Chunks moved banks by a rebuild (count = chunks).
  kBulkInvalidation,    ///< Sweep dropped lines (count = lines, a = chunks).
  kPainGainSample,      ///< Per-tile heuristic snapshot (a = raw gain, b = pain).
  kCentralReconfig,     ///< Centralized scheme recomputed allocations.
  kInvariantViolation,  ///< Invariant checker fired (other = InvariantKind).
  kCount
};

constexpr std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kChallengeSent: return "challenge_sent";
    case EventKind::kChallengeWon: return "challenge_won";
    case EventKind::kChallengeLost: return "challenge_lost";
    case EventKind::kBankHandover: return "bank_handover";
    case EventKind::kWayTransfer: return "way_transfer";
    case EventKind::kRetreat: return "retreat";
    case EventKind::kCbtRebuild: return "cbt_rebuild";
    case EventKind::kCbtRemap: return "cbt_remap";
    case EventKind::kBulkInvalidation: return "bulk_invalidation";
    case EventKind::kPainGainSample: return "pain_gain";
    case EventKind::kCentralReconfig: return "central_reconfig";
    case EventKind::kInvariantViolation: return "invariant_violation";
    case EventKind::kCount: break;
  }
  return "?";
}

inline constexpr int kNumEventKinds = static_cast<int>(EventKind::kCount);

struct Event {
  std::uint64_t epoch = 0;    ///< Simulator epoch (1 epoch = 0.1 ms).
  EventKind kind = EventKind::kCount;
  std::uint8_t run = 0;       ///< Run index (one per scheme in `--scheme all`).
  std::int16_t core = -1;     ///< Acting core/tile (-1 == chip-level).
  std::int16_t bank = -1;     ///< Subject bank (-1 == n/a).
  std::int16_t other = -1;    ///< Peer: losing core, previous bank, ... (-1 == n/a).
  std::uint32_t count = 0;    ///< Kind-specific magnitude (ways, lines, chunks).
  double a = 0.0;             ///< Kind-specific value (gains, pains).
  double b = 0.0;
};

static_assert(sizeof(Event) <= 40, "events are appended on policy paths; keep them compact");

}  // namespace delta::obs
