// Figure 8: per-application performance in w3 (thrashing + low-sensitive)
// on the 16-core CMP — a mix where DELTA matches the ideal scheme.
//
// Paper result: individual applications mostly perform as well as or better
// than the centralized scheme even though DELTA is nearsighted.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 8 — per-application performance, w3, 16 cores",
                      "Sec. IV-A, Fig. 8");

  const sim::MachineConfig cfg = sim::config16();
  const sim::SchemeComparison c =
      bench::run_comparison(cfg, "w3", bench::parse_jobs(argc, argv));

  TextTable table({"core", "app", "ideal/delta", "private/delta"});
  std::vector<double> ratios;
  for (std::size_t i = 0; i < c.delta.apps.size(); ++i) {
    const auto& d = c.delta.apps[i];
    const double r = c.ideal.apps[i].ipc / d.ipc;
    ratios.push_back(r);
    table.add_row({std::to_string(i), d.app, fmt(r, 3),
                   fmt(c.private_llc.apps[i].ipc / d.ipc, 3)});
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf("geomean ideal/delta = %.3f (paper: ~1.0 — DELTA on par on w3)\n",
              geomean(ratios));
  return 0;
}
