// Figure 13: impact of reconfiguration frequency — the ideal centralized
// allocator invoked every 1 ms vs. every 100 ms on five 16-core mixes.
//
// Paper result: frequent reconfiguration does not help every workload, but
// clearly improves several (better adaptation to phase changes) — the case
// for DELTA's negligible-cost frequent reconfigurations.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace delta;
  bench::print_header("Fig. 13 — reconfiguration frequency (ideal centralized)",
                      "Sec. IV-D, Fig. 13");

  sim::MachineConfig cfg = sim::config16();
  // Long enough that several application phases elapse (gcc/mcf/omnetpp
  // switch every 150-200 epochs = 15-20 ms).
  cfg.measure_epochs = 600;

  TextTable table({"mix", "1ms", "100ms", "1ms/100ms"});
  std::vector<double> ratios;
  for (const std::string name : {"w1", "w2", "w3", "w4", "w5"}) {
    const workload::Mix mix = sim::mix_for_config(cfg, name);
    const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
    sim::SchemeOptions fast;
    fast.central_interval_epochs = 10;  // 1 ms.
    sim::SchemeOptions slow;
    slow.central_interval_epochs = 1000;  // 100 ms.
    const sim::MixResult fast_r =
        sim::run_mix(cfg, mix, sim::SchemeKind::kIdealCentralized, fast);
    const sim::MixResult slow_r =
        sim::run_mix(cfg, mix, sim::SchemeKind::kIdealCentralized, slow);
    const double f = sim::speedup(fast_r, snuca);
    const double s = sim::speedup(slow_r, snuca);
    ratios.push_back(f / s);
    table.add_row({name, fmt(f, 3), fmt(s, 3), fmt(f / s, 3)});
    std::fflush(stdout);
  }
  std::printf("\nSpeedup over S-NUCA at each allocation frequency:\n%s\n",
              table.str().c_str());
  std::printf("geomean 1ms/100ms = %.3f (paper: frequent allocation helps "
              "several workloads, hurts none badly)\n",
              geomean(ratios));
  return 0;
}
