// Figure 13: impact of reconfiguration frequency — the ideal centralized
// allocator invoked every 1 ms vs. every 100 ms on five 16-core mixes.
//
// Paper result: frequent reconfiguration does not help every workload, but
// clearly improves several (better adaptation to phase changes) — the case
// for DELTA's negligible-cost frequent reconfigurations.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 13 — reconfiguration frequency (ideal centralized)",
                      "Sec. IV-D, Fig. 13");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  sim::MachineConfig cfg = sim::config16();
  // Long enough that several application phases elapse (gcc/mcf/omnetpp
  // switch every 150-200 epochs = 15-20 ms).
  cfg.measure_epochs = 600;

  sim::SchemeOptions fast;
  fast.central_interval_epochs = 10;  // 1 ms.
  sim::SchemeOptions slow;
  slow.central_interval_epochs = 1000;  // 100 ms.

  const std::vector<std::string> names = {"w1", "w2", "w3", "w4", "w5"};
  std::vector<sim::SweepJob> sweep;
  for (const std::string& name : names) {
    const workload::Mix mix = sim::mix_for_config(cfg, name);
    sweep.push_back({cfg, mix, sim::SchemeKind::kSnuca, {}});
    sweep.push_back({cfg, mix, sim::SchemeKind::kIdealCentralized, fast});
    sweep.push_back({cfg, mix, sim::SchemeKind::kIdealCentralized, slow});
  }
  const std::vector<sim::MixResult> results = sim::run_sweep(sweep, jobs);

  TextTable table({"mix", "1ms", "100ms", "1ms/100ms"});
  std::vector<double> ratios;
  for (std::size_t m = 0; m < names.size(); ++m) {
    const sim::MixResult& snuca = results[m * 3 + 0];
    const double f = sim::speedup(results[m * 3 + 1], snuca);
    const double s = sim::speedup(results[m * 3 + 2], snuca);
    ratios.push_back(f / s);
    table.add_row({names[m], fmt(f, 3), fmt(s, 3), fmt(f / s, 3)});
  }
  std::printf("\nSpeedup over S-NUCA at each allocation frequency:\n%s\n",
              table.str().c_str());
  std::printf("geomean 1ms/100ms = %.3f (paper: frequent allocation helps "
              "several workloads, hurts none badly)\n",
              geomean(ratios));
  return 0;
}
