// Throughput-regression harness (docs/performance.md).
//
// The measurements, all emitted to BENCH_throughput.json:
//   * cache kernel  — the live SoA SetAssocCache vs the frozen pre-rewrite
//     AoS copy (legacy_cache.hpp) on an identical synthetic stream, with a
//     full-field oracle replay first (every AccessResult must match before
//     anything is timed).  The new/legacy ratio is the machine-independent
//     record of the hot-path rewrite's payoff and the number CI regresses
//     against.
//   * simd          — per-kernel vector-vs-scalar ratios (match_u64 and
//     find_u64 against their reference loops) plus the compiled backend
//     name; ~1.0x by construction under -DDELTA_NO_SIMD (new in v4).
//   * simulator     — measured accesses/sec of a short w6 16-core run per
//     scheme (best of `reps`), the end-to-end single-thread figure.
//   * irregular     — the same end-to-end figure on the wi1 irregular mix
//     under delta: the flat-miss-curve family stresses the eviction path
//     instead of the hit path (new in v4).
//   * sweep         — wall-clock of a small all-scheme sweep at --jobs 1
//     vs --jobs N, with a byte-identity check on the results.  On a 1-CPU
//     host the ratio is ~1 by construction; `hw_threads` is recorded so
//     consumers can tell "no speedup available" from "regression".
//   * intra         — ONE 64-tile delta run at --intra-jobs 1/2/4/8: the
//     scaling curve of the fused pipeline epoch engine, with the same
//     byte-identity requirement (and the same 1-CPU caveat; divergence
//     fails regardless of host, speedup is gated only on multi-core
//     runners — bench_diff skips the ratio when hw_threads == 1).
//   * engine_health — machine-independent scheduler counters from the
//     profiled run (barriers per epoch, tasks, steal fraction, stage/apply
//     overlap fraction; v5).  barriers_per_epoch is structural — 2 per
//     epoch for the fused section vs 6 for the old three-phase lockstep —
//     and bench_diff gates it on every host.
//
// Usage: micro_throughput [--out BENCH_throughput.json] [--jobs N]
//                         [--reps N] [--quick]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "legacy_cache.hpp"
#include "mem/cache.hpp"
#include "obs/export.hpp"
#include "sim/report.hpp"

namespace {

using namespace delta;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Pre-generated access stream shared by both cache implementations so
/// they do byte-for-byte the same work.
struct KernelStream {
  std::vector<std::uint32_t> sets;
  std::vector<BlockAddr> blocks;
  std::vector<CoreId> owners;
};

KernelStream make_stream(std::size_t n, std::uint32_t sets, int footprint_ways) {
  KernelStream s;
  s.sets.reserve(n);
  s.blocks.reserve(n);
  s.owners.reserve(n);
  Rng rng(42);
  const BlockAddr lines = std::uint64_t{sets} * static_cast<std::uint64_t>(footprint_ways);
  for (std::size_t i = 0; i < n; ++i) {
    const BlockAddr b = rng.below(lines);
    s.sets.push_back(static_cast<std::uint32_t>(b) & (sets - 1));
    s.blocks.push_back(b);
    s.owners.push_back(static_cast<CoreId>(b & 15));
  }
  return s;
}

/// Oracle replay: fresh instances of both engines walk the stream together
/// and every AccessResult field must agree.  This is the bit-exactness gate
/// the timing below rides on — a fast-but-wrong kernel fails here first.
bool replay_identical(const KernelStream& s) {
  mem::SetAssocCache soa(512, 16);
  bench::legacy::SetAssocCache aos(512, 16);
  const mem::WayMask all = mem::full_mask(soa.ways());
  for (std::size_t i = 0; i < s.sets.size(); ++i) {
    const mem::AccessResult a = soa.access(s.sets[i], s.blocks[i], s.owners[i], all);
    const mem::AccessResult b = aos.access(s.sets[i], s.blocks[i], s.owners[i], all);
    if (a.hit != b.hit || a.evicted != b.evicted || a.way != b.way ||
        a.victim_block != b.victim_block || a.victim_owner != b.victim_owner)
      return false;
  }
  return true;
}

template <typename Cache>
double kernel_accesses_per_sec(Cache& cache, const KernelStream& s, int reps) {
  const mem::WayMask all = mem::full_mask(cache.ways());
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < s.sets.size(); ++i)
      sink += static_cast<std::uint64_t>(
          cache.access(s.sets[i], s.blocks[i], s.owners[i], all).hit);
    const double dt = seconds_since(t0);
    if (sink == ~std::uint64_t{0}) std::printf(" ");  // Defeat dead-code elim.
    if (dt < best) best = dt;
  }
  return static_cast<double>(s.sets.size()) / best;
}

/// One simd-vs-scalar kernel measurement: ops/sec for each flavour plus the
/// ratio.  Both loops run over identical pre-generated data in the same
/// process, so the ratio is a property of the compiled backend, not the host
/// load (the same argument as the cache-kernel ratio).
struct SimdKernelPoint {
  double simd_ops_per_sec = 0.0;
  double scalar_ops_per_sec = 0.0;
  double ratio = 0.0;
};

template <typename F>
double ops_per_sec(std::size_t ops, int reps, F&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const std::uint64_t sink = body();
    const double dt = seconds_since(t0);
    if (sink == ~std::uint64_t{0}) std::printf(" ");  // Defeat dead-code elim.
    if (dt < best) best = dt;
  }
  return static_cast<double>(ops) / best;
}

/// match_u64 over 16-way tag rows — the cache hit path's shape.
SimdKernelPoint bench_match(int reps, std::size_t rows_n) {
  Rng rng(7);
  std::vector<std::uint64_t> rows(rows_n * 16);
  for (auto& v : rows) v = rng.below(64);  // Small pool => frequent matches.
  SimdKernelPoint p;
  p.simd_ops_per_sec = ops_per_sec(rows_n, reps, [&] {
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < rows_n; ++i)
      sink += simd::match_u64(rows.data() + i * 16, 16, i & 63);
    return sink;
  });
  p.scalar_ops_per_sec = ops_per_sec(rows_n, reps, [&] {
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < rows_n; ++i)
      sink += simd::match_u64_scalar(rows.data() + i * 16, 16, i & 63);
    return sink;
  });
  p.ratio = p.simd_ops_per_sec / p.scalar_ops_per_sec;
  return p;
}

/// find_u64 over 192-entry stacks — the UMON shadow-tag search's shape
/// (most probes miss deep or entirely).
SimdKernelPoint bench_find(int reps, std::size_t probes_n) {
  constexpr std::size_t kStack = 192;
  Rng rng(9);
  std::vector<std::uint64_t> stack(kStack);
  for (std::size_t i = 0; i < kStack; ++i) stack[i] = i * 2 + 1;
  std::vector<std::uint64_t> keys(probes_n);
  for (auto& k : keys) k = rng.below(kStack * 4);  // ~25% hit rate, any depth.
  SimdKernelPoint p;
  p.simd_ops_per_sec = ops_per_sec(probes_n, reps, [&] {
    std::uint64_t sink = 0;
    for (const std::uint64_t k : keys)
      sink += simd::find_u64(stack.data(), kStack, k);
    return sink;
  });
  p.scalar_ops_per_sec = ops_per_sec(probes_n, reps, [&] {
    std::uint64_t sink = 0;
    for (const std::uint64_t k : keys)
      sink += simd::find_u64_scalar(stack.data(), kStack, k);
    return sink;
  });
  p.ratio = p.simd_ops_per_sec / p.scalar_ops_per_sec;
  return p;
}

struct SchemeThroughput {
  std::string scheme;
  double accesses_per_sec = 0.0;
};

SchemeThroughput sim_throughput(const sim::MachineConfig& cfg,
                                const workload::Mix& mix, sim::SchemeKind kind,
                                int reps) {
  SchemeThroughput out;
  out.scheme = std::string(sim::to_string(kind));
  sim::run_mix(cfg, mix, kind);  // Warm caches and registries.
  double best = 1e300;
  std::uint64_t accesses = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const sim::MixResult res = sim::run_mix(cfg, mix, kind);
    const double dt = seconds_since(t0);
    accesses = 0;
    for (const auto& a : res.apps) accesses += a.llc_accesses;
    if (dt < best) best = dt;
  }
  out.accesses_per_sec = static_cast<double>(accesses) / best;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("micro_throughput — engine & sweep throughput harness",
                      "repo performance baseline (docs/performance.md)");

  std::string out_path = "BENCH_throughput.json";
  bool quick = false;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) out_path = argv[++i];
    if (a == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (a == "--quick") quick = true;
  }
  unsigned jobs = bench::parse_jobs(argc, argv);
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;

  // ---- Cache kernel: SoA vs frozen AoS. ----
  // Two streams bracket the sim's behaviour: a hit-heavy one (footprint
  // fits in the cache — the common case once warm) and a thrashing one
  // (footprint 1.5x capacity, eviction path dominates).
  const std::size_t stream_len = quick ? 1'000'000 : 4'000'000;
  const KernelStream hit_stream = make_stream(stream_len, 512, 12);
  const KernelStream miss_stream = make_stream(stream_len, 512, 24);
  const bool replay_ok =
      replay_identical(hit_stream) && replay_identical(miss_stream);
  std::printf("cache kernel oracle replay: %s\n",
              replay_ok ? "identical" : "DIVERGENT");
  double hit_ratio = 0.0, miss_ratio = 0.0;
  double soa_hit_rate = 0.0, aos_hit_rate = 0.0;
  double soa_miss_rate = 0.0, aos_miss_rate = 0.0;
  {
    mem::SetAssocCache soa(512, 16);
    bench::legacy::SetAssocCache aos(512, 16);
    soa_hit_rate = kernel_accesses_per_sec(soa, hit_stream, reps);
    aos_hit_rate = kernel_accesses_per_sec(aos, hit_stream, reps);
    hit_ratio = soa_hit_rate / aos_hit_rate;
  }
  {
    mem::SetAssocCache soa(512, 16);
    bench::legacy::SetAssocCache aos(512, 16);
    soa_miss_rate = kernel_accesses_per_sec(soa, miss_stream, reps);
    aos_miss_rate = kernel_accesses_per_sec(aos, miss_stream, reps);
    miss_ratio = soa_miss_rate / aos_miss_rate;
  }
  std::printf("cache kernel (hit-heavy):  SoA %.0f acc/s, legacy %.0f acc/s, "
              "ratio %.2fx\n", soa_hit_rate, aos_hit_rate, hit_ratio);
  std::printf("cache kernel (thrashing):  SoA %.0f acc/s, legacy %.0f acc/s, "
              "ratio %.2fx\n", soa_miss_rate, aos_miss_rate, miss_ratio);

  // ---- SIMD kernels vs their scalar references (new in v4). ----
  const std::size_t simd_ops = quick ? 1'000'000 : 4'000'000;
  const SimdKernelPoint match_pt = bench_match(reps, simd_ops);
  const SimdKernelPoint find_pt = bench_find(reps, simd_ops / 8);
  std::printf("simd backend %s: match_u64 %.2fx scalar, find_u64 %.2fx scalar\n",
              simd::backend_name(), match_pt.ratio, find_pt.ratio);

  // ---- Single-thread simulator throughput per scheme. ----
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 20;
  cfg.measure_epochs = quick ? 40 : 120;
  const workload::Mix mix = sim::mix_for_config(cfg, "w6");
  // Pre-rewrite engine throughput on the SAME protocol (w6, 16 cores,
  // 20+120 epochs, best of 3), measured on this repo's reference container
  // immediately before the hot-path rewrite landed.  Ratios against these
  // are exact on that host and indicative elsewhere; the cache-kernel
  // ratios above are the machine-independent cross-check.
  struct Reference { const char* scheme; double accesses_per_sec; };
  const Reference kPrePr[] = {{"snuca", 7221539.0},
                              {"private", 8661156.0},
                              {"ideal-central", 7934701.0},
                              {"delta", 7408045.0}};
  std::vector<SchemeThroughput> schemes;
  for (auto kind : {sim::SchemeKind::kSnuca, sim::SchemeKind::kPrivate,
                    sim::SchemeKind::kIdealCentralized, sim::SchemeKind::kDelta}) {
    schemes.push_back(sim_throughput(cfg, mix, kind, reps));
    std::printf("simulator %-14s %.0f meas-accesses/sec\n",
                schemes.back().scheme.c_str(), schemes.back().accesses_per_sec);
  }

  // ---- Irregular-mix throughput (new in v4): wi1 under delta. ----
  // The flat-miss-curve kernels drive the engine through the miss/eviction
  // path almost exclusively — the complementary regime to w6 above.
  const workload::Mix irr_mix = sim::mix_for_config(cfg, "wi1");
  const SchemeThroughput irr =
      sim_throughput(cfg, irr_mix, sim::SchemeKind::kDelta, reps);
  std::printf("irregular (wi1, delta)   %.0f meas-accesses/sec\n",
              irr.accesses_per_sec);

  // ---- Sweep: serial vs parallel wall-clock + byte-identity. ----
  sim::MachineConfig sweep_cfg = cfg;
  sweep_cfg.measure_epochs = quick ? 20 : 60;
  std::vector<workload::Mix> sweep_mixes = {
      sim::mix_for_config(sweep_cfg, "w2"), sim::mix_for_config(sweep_cfg, "w6")};
  const auto t_serial = Clock::now();
  const std::vector<sim::SchemeComparison> serial =
      sim::compare_schemes_sweep(sweep_cfg, sweep_mixes, 1);
  const double serial_s = seconds_since(t_serial);
  const auto t_par = Clock::now();
  const std::vector<sim::SchemeComparison> par =
      sim::compare_schemes_sweep(sweep_cfg, sweep_mixes, jobs);
  const double par_s = seconds_since(t_par);

  // Byte-level determinism check: the full JSON summaries must match.
  bool identical = true;
  for (std::size_t m = 0; m < serial.size(); ++m) {
    const std::vector<sim::MixResult> a = {serial[m].snuca, serial[m].private_llc,
                                           serial[m].ideal, serial[m].delta};
    const std::vector<sim::MixResult> b = {par[m].snuca, par[m].private_llc,
                                           par[m].ideal, par[m].delta};
    identical &= sim::json_summary(a) == sim::json_summary(b);
  }
  const double sweep_speedup = par_s > 0.0 ? serial_s / par_s : 0.0;
  std::printf("sweep (8 runs): serial %.2fs, --jobs %u %.2fs, speedup %.2fx, "
              "results %s\n", serial_s, jobs, par_s, sweep_speedup,
              identical ? "identical" : "DIVERGENT");

  // ---- Intra-run engine: one 64-tile delta run, sharded epochs. ----
  // The sweep above parallelises *across* runs; this curve is the payoff
  // for the single long run a sweep cannot split.  w13 on the 64-tile
  // machine keeps all 64 banks busy so phase 2 has real parallelism.
  sim::MachineConfig intra_cfg = sim::config64();
  intra_cfg.warmup_epochs = 10;
  intra_cfg.measure_epochs = quick ? 10 : 30;
  const workload::Mix intra_mix = sim::mix_for_config(intra_cfg, "w13");
  struct IntraPoint {
    int jobs;
    double seconds = 0.0;
    std::string summary;
  };
  std::vector<IntraPoint> intra_points;
  for (const int ij : {1, 2, 4, 8}) {
    sim::MachineConfig c = intra_cfg;
    c.intra_jobs = ij;
    IntraPoint p;
    p.jobs = ij;
    sim::run_mix(c, intra_mix, sim::SchemeKind::kDelta);  // Warm.
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      const sim::MixResult res = sim::run_mix(c, intra_mix, sim::SchemeKind::kDelta);
      const double dt = seconds_since(t0);
      if (dt < best) best = dt;
      p.summary = sim::json_summary({&res, 1});
    }
    p.seconds = best;
    intra_points.push_back(std::move(p));
  }
  bool intra_identical = true;
  for (const IntraPoint& p : intra_points)
    intra_identical &= p.summary == intra_points.front().summary;
  for (const IntraPoint& p : intra_points)
    std::printf("intra (64-tile delta): --intra-jobs %d  %.2fs  speedup %.2fx\n",
                p.jobs, p.seconds,
                p.seconds > 0.0 ? intra_points.front().seconds / p.seconds : 0.0);
  std::printf("intra results %s\n", intra_identical ? "identical" : "DIVERGENT");

  // ---- Prof phase breakdown: one profiled 4-way intra run (new in v3).
  // Runs after all timing so arming the profiler cannot touch the numbers
  // above; phase totals answer "where does an intra epoch go" and the two
  // gauges are the engine-health indicators docs/performance.md tracks.
  obs::prof::MetricsRegistry::global().reset_values();
  obs::prof::Profiler::instance().clear();
  obs::prof::set_level(obs::prof::ProfLevel::kPhases);
  {
    sim::MachineConfig c = intra_cfg;
    c.intra_jobs = 4;
    sim::run_mix(c, intra_mix, sim::SchemeKind::kDelta);
  }
  obs::prof::set_level(obs::prof::ProfLevel::kOff);
  const obs::prof::ProfSnapshot prof_snap = obs::prof::Profiler::instance().snapshot();
  const obs::prof::RegistrySnapshot prof_reg =
      obs::prof::MetricsRegistry::global().snapshot();
  const auto gauge_or_zero = [&](const char* name) {
    const obs::prof::MetricSample* m = prof_reg.find(name);
    return m != nullptr ? m->value : 0.0;
  };
  const double barrier_frac = gauge_or_zero("delta_intra_barrier_wait_fraction");
  const double imbalance = gauge_or_zero("delta_intra_worker_imbalance_ratio");
  std::printf("prof (4-way intra): pipeline %.1fms stage %.1fms apply %.1fms "
              "reduce %.1fms barrier %.1fms, wait fraction %.3f, imbalance %.2f\n",
              prof_snap.phase_ns(obs::prof::Phase::kPipeline) / 1e6,
              prof_snap.phase_ns(obs::prof::Phase::kStage) / 1e6,
              prof_snap.phase_ns(obs::prof::Phase::kApply) / 1e6,
              prof_snap.phase_ns(obs::prof::Phase::kReduce) / 1e6,
              prof_snap.phase_ns(obs::prof::Phase::kBarrier) / 1e6,
              barrier_frac, imbalance);

  // ---- Engine-health counters (v5): machine-independent scheduler shape
  // of the profiled run.  The registry was reset right before it, so the
  // totals cover exactly that run's epochs.
  const double health_epochs = gauge_or_zero("delta_intra_engine_epochs_total");
  const double health_tasks = gauge_or_zero("delta_intra_tasks_total");
  const double barriers_per_epoch = gauge_or_zero("delta_intra_barriers_per_epoch");
  const double sections_per_epoch =
      health_epochs > 0.0
          ? gauge_or_zero("delta_intra_pool_sections_total") / health_epochs
          : 0.0;
  const double tasks_per_epoch =
      health_epochs > 0.0 ? health_tasks / health_epochs : 0.0;
  const double steal_frac = gauge_or_zero("delta_intra_steal_fraction");
  const double overlap_frac =
      gauge_or_zero("delta_intra_stage_apply_overlap_fraction");
  std::printf("engine health: %.1f barriers/epoch, %.1f tasks/epoch, "
              "steal fraction %.3f, stage/apply overlap %.3f\n",
              barriers_per_epoch, tasks_per_epoch, steal_frac, overlap_frac);

  // ---- BENCH_throughput.json. ----
  std::string j;
  j += "{\n";
  j += "  \"schema\": \"delta-bench-throughput-v5\",\n";
  j += "  \"hw_threads\": " +
       obs::json_num(static_cast<double>(std::thread::hardware_concurrency())) + ",\n";
  j += "  \"jobs\": " + obs::json_num(static_cast<double>(jobs)) + ",\n";
  j += "  \"cache_kernel\": {\n";
  j += std::string("    \"replay_identical\": ") +
       (replay_ok ? "true" : "false") + ",\n";
  j += "    \"hit_heavy\": {\n";
  j += "      \"soa_accesses_per_sec\": " + obs::json_num(soa_hit_rate) + ",\n";
  j += "      \"legacy_accesses_per_sec\": " + obs::json_num(aos_hit_rate) + ",\n";
  j += "      \"new_over_legacy\": " + obs::json_num(hit_ratio) + "\n";
  j += "    },\n";
  j += "    \"thrashing\": {\n";
  j += "      \"soa_accesses_per_sec\": " + obs::json_num(soa_miss_rate) + ",\n";
  j += "      \"legacy_accesses_per_sec\": " + obs::json_num(aos_miss_rate) + ",\n";
  j += "      \"new_over_legacy\": " + obs::json_num(miss_ratio) + "\n";
  j += "    }\n";
  j += "  },\n";
  j += "  \"simulator\": {\n";
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    double ref = 0.0;
    for (const Reference& r : kPrePr)
      if (schemes[i].scheme == r.scheme) ref = r.accesses_per_sec;
    j += "    \"" + obs::json_escape(schemes[i].scheme) + "\": {\n";
    j += "      \"accesses_per_sec\": " + obs::json_num(schemes[i].accesses_per_sec) +
         ",\n";
    j += "      \"pre_pr_reference\": " + obs::json_num(ref) + ",\n";
    j += "      \"speedup_vs_reference\": " +
         obs::json_num(ref > 0.0 ? schemes[i].accesses_per_sec / ref : 0.0) + "\n";
    j += i + 1 < schemes.size() ? "    },\n" : "    }\n";
  }
  j += "  },\n";
  j += "  \"simd\": {\n";
  j += "    \"backend\": \"" + std::string(simd::backend_name()) + "\",\n";
  const auto simd_obj = [](const char* name, const SimdKernelPoint& p,
                           bool last) {
    std::string o = "    \"" + std::string(name) + "\": {\n";
    o += "      \"simd_ops_per_sec\": " + obs::json_num(p.simd_ops_per_sec) + ",\n";
    o += "      \"scalar_ops_per_sec\": " + obs::json_num(p.scalar_ops_per_sec) +
         ",\n";
    o += "      \"simd_over_scalar\": " + obs::json_num(p.ratio) + "\n";
    o += last ? "    }\n" : "    },\n";
    return o;
  };
  j += simd_obj("match_u64", match_pt, false);
  j += simd_obj("find_u64", find_pt, true);
  j += "  },\n";
  j += "  \"irregular\": {\n";
  j += "    \"mix\": \"wi1\",\n";
  j += "    \"scheme\": \"delta\",\n";
  j += "    \"accesses_per_sec\": " + obs::json_num(irr.accesses_per_sec) + "\n";
  j += "  },\n";
  j += "  \"sweep\": {\n";
  j += "    \"runs\": 8,\n";
  j += "    \"serial_seconds\": " + obs::json_num(serial_s) + ",\n";
  j += "    \"parallel_seconds\": " + obs::json_num(par_s) + ",\n";
  j += "    \"speedup\": " + obs::json_num(sweep_speedup) + ",\n";
  j += std::string("    \"byte_identical\": ") + (identical ? "true" : "false") + "\n";
  j += "  },\n";
  j += "  \"intra\": {\n";
  j += "    \"machine\": \"64-tile\",\n";
  j += "    \"scheme\": \"delta\",\n";
  j += "    \"points\": [\n";
  for (std::size_t i = 0; i < intra_points.size(); ++i) {
    const IntraPoint& p = intra_points[i];
    j += "      { \"intra_jobs\": " + obs::json_num(static_cast<double>(p.jobs)) +
         ", \"seconds\": " + obs::json_num(p.seconds) +
         ", \"speedup_vs_serial\": " +
         obs::json_num(p.seconds > 0.0 ? intra_points.front().seconds / p.seconds
                                       : 0.0) +
         " }";
    j += i + 1 < intra_points.size() ? ",\n" : "\n";
  }
  j += "    ],\n";
  j += std::string("    \"byte_identical\": ") +
       (intra_identical ? "true" : "false") + "\n";
  j += "  },\n";
  j += "  \"prof\": {\n";
  j += "    \"intra_jobs\": 4,\n";
  j += "    \"phase_ms\": {\n";
  j += "      \"pipeline\": " +
       obs::json_num(prof_snap.phase_ns(obs::prof::Phase::kPipeline) / 1e6) +
       ",\n";
  j += "      \"stage\": " +
       obs::json_num(prof_snap.phase_ns(obs::prof::Phase::kStage) / 1e6) + ",\n";
  j += "      \"apply\": " +
       obs::json_num(prof_snap.phase_ns(obs::prof::Phase::kApply) / 1e6) + ",\n";
  j += "      \"reduce\": " +
       obs::json_num(prof_snap.phase_ns(obs::prof::Phase::kReduce) / 1e6) + ",\n";
  j += "      \"serial_tail\": " +
       obs::json_num(prof_snap.phase_ns(obs::prof::Phase::kSerialTail) / 1e6) +
       ",\n";
  j += "      \"barrier\": " +
       obs::json_num(prof_snap.phase_ns(obs::prof::Phase::kBarrier) / 1e6) + "\n";
  j += "    },\n";
  j += "    \"barrier_wait_fraction\": " + obs::json_num(barrier_frac) + ",\n";
  j += "    \"worker_imbalance_ratio\": " + obs::json_num(imbalance) + "\n";
  j += "  },\n";
  j += "  \"engine_health\": {\n";
  j += "    \"epochs\": " + obs::json_num(health_epochs) + ",\n";
  j += "    \"barriers_per_epoch\": " + obs::json_num(barriers_per_epoch) + ",\n";
  j += "    \"pool_sections_per_epoch\": " + obs::json_num(sections_per_epoch) +
       ",\n";
  j += "    \"tasks_per_epoch\": " + obs::json_num(tasks_per_epoch) + ",\n";
  j += "    \"steal_fraction\": " + obs::json_num(steal_frac) + ",\n";
  j += "    \"stage_apply_overlap_fraction\": " + obs::json_num(overlap_frac) +
       "\n";
  j += "  }\n";
  j += "}\n";
  if (!obs::write_text_file(out_path, j)) {
    std::perror(("writing " + out_path).c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!replay_ok || !identical || !intra_identical) return 2;
  // Loose regression floor: the SoA kernel falling below 70% of the frozen
  // legacy engine means the hot-path rewrite has been badly regressed (the
  // slack absorbs shared-runner noise; healthy ratios sit well above 1).
  if (hit_ratio < 0.7 || miss_ratio < 0.7) {
    std::fprintf(stderr, "FAIL: cache kernel slower than 0.7x legacy "
                 "(hit-heavy %.2fx, thrashing %.2fx)\n", hit_ratio, miss_ratio);
    return 3;
  }
  return 0;
}
