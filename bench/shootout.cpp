// Scheme shootout: all six partitioning schemes (snuca, private,
// ideal-central, delta, carma, lfoc) on every Table IV mix, at both machine
// sizes.  Not a paper figure — this is the literature-comparison harness
// that pits DELTA against the market-based (CARMA) and fairness-clustering
// (LFOC) allocator families under identical workloads, reporting throughput
// (speedup vs unpartitioned S-NUCA), fairness (ANTT) and throughput-sum
// (STP) vs the private baseline, and the control-plane traffic each scheme
// pays for its decisions.
//
// Usage: shootout [--jobs N] [--quick] [--out FILE]
//   --quick shortens the measured window and drops to a mix subset (the CI
//   protocol); --out writes the same report to FILE for artifact upload.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace delta;

struct SchemeAgg {
  std::vector<double> speedups;     // vs snuca, per mix.
  std::vector<double> antts;        // vs private, per mix.
  std::vector<double> stps;         // vs private, per mix.
  std::uint64_t control = 0;        // Control-plane messages, all mixes.
  std::uint64_t demand = 0;         // Demand messages, all mixes.
};

void shootout_at(const sim::MachineConfig& base, const char* title,
                 const std::vector<std::string>& names, bool quick,
                 unsigned jobs, std::string& report) {
  sim::MachineConfig cfg = base;
  if (quick) {
    cfg.warmup_epochs = 5;
    cfg.measure_epochs = 15;
  }
  std::vector<workload::Mix> mixes;
  for (const std::string& n : names) mixes.push_back(sim::mix_for_config(cfg, n));

  const auto rs =
      sim::run_schemes_sweep(cfg, mixes, sim::kAllSchemeKinds, jobs);

  // Per-mix table: speedup over unpartitioned S-NUCA (snuca == 1.000).
  TextTable table({"mix", "private", "ideal", "delta", "carma", "lfoc"});
  std::vector<SchemeAgg> agg(sim::kAllSchemeKinds.size());
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const std::vector<sim::MixResult>& r = rs[m];
    const sim::MixResult& snuca = r[0];
    const sim::MixResult& priv = r[1];
    std::vector<std::string> row = {names[m]};
    for (std::size_t k = 0; k < r.size(); ++k) {
      agg[k].speedups.push_back(sim::speedup(r[k], snuca));
      agg[k].antts.push_back(sim::antt(r[k], priv));
      agg[k].stps.push_back(sim::stp(r[k], priv));
      agg[k].control += r[k].control.total();
      agg[k].demand += r[k].traffic.demand_messages();
      if (k > 0) row.push_back(fmt(agg[k].speedups.back(), 3));
    }
    table.add_row(row);
  }

  report += "\n== ";
  report += title;
  report += " ==\nSpeedup over unpartitioned S-NUCA (1.000 = parity):\n";
  report += table.str();

  // Per-scheme summary: geomean throughput, fairness, control overhead.
  TextTable sum({"scheme", "speedup", "antt", "stp", "ctl msgs", "ctl/demand"});
  for (std::size_t k = 0; k < sim::kAllSchemeKinds.size(); ++k) {
    std::vector<double> sp = agg[k].speedups, an = agg[k].antts,
                        st = agg[k].stps;
    const double ratio =
        agg[k].demand > 0
            ? 100.0 * static_cast<double>(agg[k].control) /
                  static_cast<double>(agg[k].demand)
            : 0.0;
    sum.add_row({std::string(sim::to_string(sim::kAllSchemeKinds[k])),
                 fmt(geomean(sp), 3), fmt(geomean(an), 3), fmt(geomean(st), 2),
                 std::to_string(agg[k].control), fmt(ratio, 3) + "%"});
  }
  report += "\nPer-scheme summary (ANTT lower / STP higher is better; "
            "geomeans across mixes):\n";
  report += sum.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Scheme shootout — DELTA vs CARMA vs LFOC (+3 baselines)",
                      "literature comparison (docs/schemes.md)");

  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) out_path = argv[++i];
    if (a == "--quick") quick = true;
  }
  const unsigned jobs = bench::parse_jobs(argc, argv);

  // Table IV mixes plus the irregular-access family: the flat-miss-curve
  // kernels are exactly where the allocator families disagree the most.
  std::vector<std::string> names = bench::all_mix_names();
  if (quick) names.resize(names.size() < 6 ? names.size() : 6);
  const std::vector<std::string> irregular = bench::irregular_mix_names();
  names.insert(names.end(), irregular.begin(),
               quick ? irregular.begin() + 1 : irregular.end());

  std::string report;
  shootout_at(sim::config16(), "16 tiles", names, quick, jobs, report);
  shootout_at(sim::config64(), "64 tiles", names, quick, jobs, report);

  std::printf("%s\n", report.c_str());
  if (!out_path.empty()) {
    if (!obs::write_text_file(out_path, report))
      std::perror(("writing " + out_path).c_str());
    else
      std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}
