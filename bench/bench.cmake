# Reproduction harnesses: one binary per paper table/figure plus
# google-benchmark microbenches.  See DESIGN.md Sec. 4 for the experiment
# index.  All binaries land in ${CMAKE_BINARY_DIR}/bench.

function(delta_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    delta_sim delta_core delta_alloc delta_workload delta_umon delta_noc
    delta_mem delta_obs delta_common)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

delta_bench(fig05_mixes16)
delta_bench(fig06_fairness16)
delta_bench(fig07_w2_apps16)
delta_bench(fig08_w3_apps16)
delta_bench(fig09_mixes64)
delta_bench(fig10_w2_apps64)
delta_bench(fig11_w13_apps64)
delta_bench(fig12_splash2)
delta_bench(fig13_reconfig_freq)
delta_bench(table5_sharing)
delta_bench(table6_overheads)
delta_bench(msg_overheads)
delta_bench(ablation_params)
delta_bench(ablation_cbt_bits)
delta_bench(ext_mt_integrated)
delta_bench(ext_underutilized)
delta_bench(ext_irregular)
delta_bench(shootout)
delta_bench(micro_obs_overhead)
delta_bench(micro_prof_overhead)
delta_bench(micro_throughput)

# micro_components provides its own main (ProfScope wrapping, so
# --prof-out/--metrics-out work uniformly) — benchmark::benchmark only,
# no benchmark_main.
add_executable(micro_components ${CMAKE_SOURCE_DIR}/bench/micro_components.cpp)
target_link_libraries(micro_components PRIVATE
  delta_sim delta_core delta_alloc delta_workload delta_umon delta_noc
  delta_mem delta_obs delta_common benchmark::benchmark)
target_include_directories(micro_components PRIVATE ${CMAKE_SOURCE_DIR}/bench)
set_target_properties(micro_components PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
