// Figure 7: per-application performance in w2 on the 16-core CMP — ideal
// centralized and private, normalized to DELTA.
//
// Paper result: most applications perform on par; the farsighted ideal
// scheme beats DELTA by ~45%/~35% on xalancbmk and soplex (miss-curve
// cliffs DELTA's windowed gain cannot see), while DELTA still beats the
// private configuration on those apps (+12%/+36%).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 7 — per-application performance, w2, 16 cores",
                      "Sec. IV-A, Fig. 7");

  const sim::MachineConfig cfg = sim::config16();
  const sim::SchemeComparison c =
      bench::run_comparison(cfg, "w2", bench::parse_jobs(argc, argv));

  TextTable table({"core", "app", "ideal/delta", "private/delta", "ways(ideal)", "ways(delta)"});
  for (std::size_t i = 0; i < c.delta.apps.size(); ++i) {
    const auto& d = c.delta.apps[i];
    table.add_row({std::to_string(i), d.app,
                   fmt(c.ideal.apps[i].ipc / d.ipc, 3),
                   fmt(c.private_llc.apps[i].ipc / d.ipc, 3),
                   fmt(c.ideal.apps[i].avg_ways, 1), fmt(d.avg_ways, 1)});
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf("paper: ideal beats delta by ~45%%/~35%% on xalancbmk/soplex "
              "(farsighted vs nearsighted); delta beats private there.\n");
  return 0;
}
