// google-benchmark microbenches of the hot components: per-access cache
// cost, UMON updates, CBT lookups/rebuilds, pain/gain evaluation, the
// allocation algorithms and the NoC helpers.
//
// Custom main instead of benchmark_main: the run is wrapped in
// bench::ProfScope so --prof-out/--metrics-out/--prof-level work here
// exactly as in every other harness (docs/observability.md).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "alloc/lookahead.hpp"
#include "alloc/peekahead.hpp"
#include "common/rng.hpp"
#include "core/cbt.hpp"
#include "core/pain_gain.hpp"
#include "core/way_partition.hpp"
#include "mem/cache.hpp"
#include "noc/mesh.hpp"
#include "umon/umon.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"

namespace {

using namespace delta;

void BM_CacheAccess(benchmark::State& state) {
  mem::SetAssocCache cache(512, 16);
  Rng rng(1);
  const mem::WayMask all = mem::full_mask(16);
  for (auto _ : state) {
    const BlockAddr b = rng.below(512 * 24);
    benchmark::DoNotOptimize(cache.access(static_cast<std::uint32_t>(b & 511), b, 0, all));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_CacheAccessMasked(benchmark::State& state) {
  mem::SetAssocCache cache(512, 16);
  Rng rng(1);
  const mem::WayMask quarter = 0xF000;
  for (auto _ : state) {
    const BlockAddr b = rng.below(512 * 24);
    benchmark::DoNotOptimize(
        cache.access(static_cast<std::uint32_t>(b & 511), b, 0, quarter));
  }
}
BENCHMARK(BM_CacheAccessMasked);

void BM_UmonAccess(benchmark::State& state) {
  umon::UmonConfig cfg;
  cfg.max_ways = static_cast<int>(state.range(0));
  umon::Umon u(cfg);
  Rng rng(2);
  const BlockAddr lines = static_cast<BlockAddr>(cfg.max_ways) * 512;
  for (auto _ : state) {
    u.access(rng.below(lines));
  }
}
BENCHMARK(BM_UmonAccess)->Arg(192)->Arg(768);

void BM_CbtLookup(benchmark::State& state) {
  core::Cbt cbt(0);
  cbt.rebuild({{0, 16}, {1, 8}, {2, 4}, {5, 4}});
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbt.lookup(rng(), 9));
  }
}
BENCHMARK(BM_CbtLookup);

void BM_CbtRebuild(benchmark::State& state) {
  core::Cbt cbt(0);
  std::vector<std::pair<BankId, int>> alloc{{0, 16}, {1, 8}, {2, 4}, {5, 4}, {9, 2}};
  for (auto _ : state) {
    cbt.rebuild(alloc);
    benchmark::DoNotOptimize(cbt.bank_for_chunk(100));
  }
}
BENCHMARK(BM_CbtRebuild);

void BM_PainGain(benchmark::State& state) {
  umon::UmonConfig cfg;
  cfg.max_ways = 192;
  umon::Umon u(cfg);
  Rng rng(4);
  for (int i = 0; i < 100'000; ++i) u.access(rng.below(512 * 48));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_pain_gain(u, 24, 8, 4, 4, 2.0));
  }
}
BENCHMARK(BM_PainGain);

void BM_WpTransfer(benchmark::State& state) {
  core::WpUnit wp(16, 0);
  for (auto _ : state) {
    wp.transfer(0, 1, 4);
    wp.transfer(1, 0, 4);
  }
}
BENCHMARK(BM_WpTransfer);

alloc::AllocRequest request_for(int cores) {
  Rng rng(5);
  alloc::AllocRequest req;
  const int total = cores * 16;
  for (int a = 0; a < cores; ++a) {
    std::vector<double> m(static_cast<std::size_t>(total) + 1);
    double cur = 1000.0;
    for (int w = 0; w <= total; ++w) {
      m[static_cast<std::size_t>(w)] = cur;
      cur -= rng.uniform() * cur / (total - w + 1);
    }
    req.curves.emplace_back(std::move(m));
  }
  req.total_ways = total;
  req.min_ways = 1;
  return req;
}

void BM_Lookahead(benchmark::State& state) {
  const alloc::AllocRequest req = request_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::lookahead(req));
  }
}
BENCHMARK(BM_Lookahead)->Arg(4)->Arg(16);

void BM_Peekahead(benchmark::State& state) {
  const alloc::AllocRequest req = request_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::peekahead(req));
  }
}
BENCHMARK(BM_Peekahead)->Arg(4)->Arg(16)->Arg(64);

void BM_MeshByDistance(benchmark::State& state) {
  noc::Mesh mesh(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh.by_distance(27));
  }
}
BENCHMARK(BM_MeshByDistance);

void BM_TraceGenNext(benchmark::State& state) {
  const workload::AppProfile& p = workload::spec_profile("mc");
  workload::TraceGen gen(p, 0, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_TraceGenNext);

}  // namespace

int main(int argc, char** argv) {
  // ProfScope reads its own flags before google-benchmark sees argv; the
  // unrecognised-argument check is deliberately skipped since --prof-out &
  // co. legitimately stay behind after benchmark::Initialize.
  const bench::ProfScope prof(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
