// Ablation study of DELTA's tuning knobs (Table II bottom row) on a
// representative 16-core mix.  Not a paper figure — DESIGN.md calls these
// out as the design choices worth isolating:
//   * gainThreshold   — how eager tiles are to challenge;
//   * interDeltaWays  — granularity of inter-bank capacity grants;
//   * intraDeltaWays  — granularity of intra-bank fine-tuning;
//   * i_inter         — challenge frequency;
//   * UMON decay      — monitoring memory horizon (via coarse_ways too).
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace delta;

double delta_speedup(sim::MachineConfig cfg, const workload::Mix& mix) {
  const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
  const sim::MixResult dlt = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);
  return sim::speedup(dlt, snuca);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Ablation — DELTA parameter sensitivity (mix w6, 16 cores)",
                      "DESIGN.md ablation index (not a paper figure)");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  sim::MachineConfig base = sim::config16();
  base.warmup_epochs = 40;
  base.measure_epochs = 150;
  const workload::Mix mix = sim::mix_for_config(base, "w6");

  // Flatten every (knob, value) point into one job list so the sweep can
  // use all hardware threads across sections, then print per section.
  struct Point {
    std::string section;
    std::string label;
    sim::MachineConfig cfg;
  };
  std::vector<Point> points;
  for (double thr : {0.0, 0.25, 0.5, 1.0, 2.0, 8.0}) {
    sim::MachineConfig cfg = base;
    cfg.delta.gain_threshold = thr;
    points.push_back({"gainThreshold", fmt(thr, 2), cfg});
  }
  for (int w : {1, 2, 4, 8}) {
    sim::MachineConfig cfg = base;
    cfg.delta.inter_delta_ways = w;
    points.push_back({"interDeltaWays", std::to_string(w), cfg});
  }
  for (int w : {1, 2, 4}) {
    sim::MachineConfig cfg = base;
    cfg.delta.intra_delta_ways = w;
    points.push_back({"intraDeltaWays", std::to_string(w), cfg});
  }
  for (int epochs : {5, 10, 20, 50, 100}) {
    sim::MachineConfig cfg = base;
    cfg.delta.inter_interval_epochs = epochs;
    points.push_back({"i_inter (ms)", fmt(epochs * 0.1, 1), cfg});
  }
  for (int cw : {1, 2, 4, 8, 16}) {
    sim::MachineConfig cfg = base;
    cfg.umon.coarse_ways = cw;
    points.push_back({"UMON coarse_ways", std::to_string(cw), cfg});
  }

  const std::vector<double> speeds =
      bench::parallel_map(points.size(), jobs, [&](std::size_t i) {
        return delta_speedup(points[i].cfg, mix);
      });

  std::size_t i = 0;
  while (i < points.size()) {
    const std::string& section = points[i].section;
    TextTable t({section, section == "gainThreshold" ? "speedup vs snuca" : "speedup"});
    for (; i < points.size() && points[i].section == section; ++i)
      t.add_row({points[i].label, fmt(speeds[i], 3)});
    std::printf("\n%s", t.str().c_str());
  }
  std::printf("\n(paper Sec. II-B3: the coarse 4-way counters trade counter storage\n"
              "for window resolution; the ablation shows the performance cost.)\n");
  return 0;
}
