// Ablation study of DELTA's tuning knobs (Table II bottom row) on a
// representative 16-core mix.  Not a paper figure — DESIGN.md calls these
// out as the design choices worth isolating:
//   * gainThreshold   — how eager tiles are to challenge;
//   * interDeltaWays  — granularity of inter-bank capacity grants;
//   * intraDeltaWays  — granularity of intra-bank fine-tuning;
//   * i_inter         — challenge frequency;
//   * UMON decay      — monitoring memory horizon (via coarse_ways too).
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace delta;

double delta_speedup(sim::MachineConfig cfg, const workload::Mix& mix) {
  const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
  const sim::MixResult dlt = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);
  return sim::speedup(dlt, snuca);
}

}  // namespace

int main() {
  using namespace delta;
  bench::print_header("Ablation — DELTA parameter sensitivity (mix w6, 16 cores)",
                      "DESIGN.md ablation index (not a paper figure)");

  sim::MachineConfig base = sim::config16();
  base.warmup_epochs = 40;
  base.measure_epochs = 150;
  const workload::Mix mix = sim::mix_for_config(base, "w6");

  {
    TextTable t({"gainThreshold", "speedup vs snuca"});
    for (double thr : {0.0, 0.25, 0.5, 1.0, 2.0, 8.0}) {
      sim::MachineConfig cfg = base;
      cfg.delta.gain_threshold = thr;
      t.add_row({fmt(thr, 2), fmt(delta_speedup(cfg, mix), 3)});
      std::fflush(stdout);
    }
    std::printf("\n%s", t.str().c_str());
  }
  {
    TextTable t({"interDeltaWays", "speedup"});
    for (int w : {1, 2, 4, 8}) {
      sim::MachineConfig cfg = base;
      cfg.delta.inter_delta_ways = w;
      t.add_row({std::to_string(w), fmt(delta_speedup(cfg, mix), 3)});
      std::fflush(stdout);
    }
    std::printf("\n%s", t.str().c_str());
  }
  {
    TextTable t({"intraDeltaWays", "speedup"});
    for (int w : {1, 2, 4}) {
      sim::MachineConfig cfg = base;
      cfg.delta.intra_delta_ways = w;
      t.add_row({std::to_string(w), fmt(delta_speedup(cfg, mix), 3)});
      std::fflush(stdout);
    }
    std::printf("\n%s", t.str().c_str());
  }
  {
    TextTable t({"i_inter (ms)", "speedup"});
    for (int epochs : {5, 10, 20, 50, 100}) {
      sim::MachineConfig cfg = base;
      cfg.delta.inter_interval_epochs = epochs;
      t.add_row({fmt(epochs * 0.1, 1), fmt(delta_speedup(cfg, mix), 3)});
      std::fflush(stdout);
    }
    std::printf("\n%s", t.str().c_str());
  }
  {
    TextTable t({"UMON coarse_ways", "speedup"});
    for (int cw : {1, 2, 4, 8, 16}) {
      sim::MachineConfig cfg = base;
      cfg.umon.coarse_ways = cw;
      t.add_row({std::to_string(cw), fmt(delta_speedup(cfg, mix), 3)});
      std::fflush(stdout);
    }
    std::printf("\n%s", t.str().c_str());
    std::printf("\n(paper Sec. II-B3: the coarse 4-way counters trade counter storage\n"
                "for window resolution; the ablation shows the performance cost.)\n");
  }
  return 0;
}
