// Figure 9: performance of the 15 workload mixes (replicated 4x) on the
// 64-core CMP, normalized to unpartitioned S-NUCA.
//
// Paper result: DELTA +16% geomean (max +28%); ideal centralized +17%
// (max +35%); the DELTA-to-ideal gap narrows relative to 16 cores, and
// DELTA matches or beats ideal on several mixes (w3, w5, w10-w14).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 9 — 64-core multi-programmed mixes",
                      "Sec. IV-B, Fig. 9");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  const sim::MachineConfig cfg = sim::config64();
  TextTable table({"mix", "private", "ideal", "delta"});
  std::vector<double> sp_priv, sp_ideal, sp_delta;
  int delta_wins = 0;

  const std::vector<std::string> names = bench::all_mix_names();
  const std::vector<sim::SchemeComparison> comps =
      bench::run_comparisons(cfg, names, jobs);
  for (std::size_t m = 0; m < names.size(); ++m) {
    const sim::SchemeComparison& c = comps[m];
    const double p = sim::speedup(c.private_llc, c.snuca);
    const double i = sim::speedup(c.ideal, c.snuca);
    const double d = sim::speedup(c.delta, c.snuca);
    sp_priv.push_back(p);
    sp_ideal.push_back(i);
    sp_delta.push_back(d);
    if (d >= i - 0.005) ++delta_wins;
    table.add_row({names[m], fmt(p, 3), fmt(i, 3), fmt(d, 3)});
  }

  std::printf("\nSpeedup over unpartitioned S-NUCA (1.000 = parity):\n%s\n",
              table.str().c_str());
  bench::print_speedup_summary("private", sp_priv);
  bench::print_speedup_summary("ideal-central", sp_ideal);
  bench::print_speedup_summary("delta", sp_delta);
  std::printf("mixes where DELTA is on par/better than ideal: %d (paper: 7)\n",
              delta_wins);
  std::printf("\npaper: delta +16%% (max +28%%) | ideal +17%% (max +35%%)\n");
  return 0;
}
