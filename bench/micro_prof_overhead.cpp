// Self-profiling overhead micro-benchmark: enforces the prof subsystem's
// two-sided overhead contract (docs/observability.md):
//
//   disabled  (< 2%) — level off: every instrumentation site runs one
//     relaxed atomic load + branch and collects nothing.  A single binary
//     cannot carry an uninstrumented twin of the engine, so the bound is
//     computed, not raced: a tight loop prices one disabled site, the
//     per-run site count is read off a full-level snapshot (the off run
//     executes exactly the same sites' disabled branches), and the product
//     is compared against the off run's wall time.
//   full      (< 8%) — spans + per-call site aggregates + sampled merge
//     timing + occupancy, measured end-to-end against the off run with the
//     same interleaved best-of-N protocol as micro_obs_overhead (A/B, A/B,
//     ... so thermal and allocator drift hits both equally; the minimum is
//     the least-noise estimate of true cost).
//
// The binary exits nonzero when either budget is violated so CI can gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "obs/prof/prof.hpp"

namespace {

using namespace delta;
using Clock = std::chrono::steady_clock;

double timed_run(const sim::MachineConfig& cfg, const workload::Mix& mix) {
  const auto t0 = Clock::now();
  const sim::MixResult r = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta, {});
  const auto t1 = Clock::now();
  if (r.geomean_ipc <= 0.0) std::fprintf(stderr, "suspicious run result\n");
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Prices one disabled instrumentation site: the loop body differs from the
/// baseline only by a ScopedSite whose gate check fails, so the per-
/// iteration delta is the relaxed load + branch every disabled site pays.
/// The volatile sink keeps both loops from collapsing.
double disabled_site_cost_ns() {
  constexpr std::uint64_t kIters = 20'000'000;
  volatile std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) sink = sink + 1;
  const auto t1 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    const obs::prof::ScopedSite site(obs::prof::Site::kAccessBatch);
    sink = sink + 1;
  }
  const auto t2 = Clock::now();
  const double base_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  const double site_ns = std::chrono::duration<double, std::nano>(t2 - t1).count();
  return std::max(0.0, (site_ns - base_ns) / static_cast<double>(kIters));
}

}  // namespace

int main(int argc, char** argv) {
  const delta::bench::ProfScope prof(argc, argv);
  bench::print_header("Self-profiling overhead (delta scheme, mix w6, 16 cores)",
                      "prof overhead contract: disabled < 2%, full < 8%");

  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 20;
  cfg.measure_epochs = 120;
  cfg.intra_jobs = 2;  // Engine sections + barrier derivation in the loop.
  const workload::Mix mix = sim::mix_for_config(cfg, "w6");

  obs::prof::set_level(obs::prof::ProfLevel::kOff);
  timed_run(cfg, mix);  // Warm the allocator/caches once before measuring.

  constexpr int kReps = 5;
  std::vector<double> off_ms, full_ms;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::prof::set_level(obs::prof::ProfLevel::kOff);
    off_ms.push_back(timed_run(cfg, mix));
    obs::prof::Profiler::instance().clear();
    obs::prof::set_level(obs::prof::ProfLevel::kFull);
    full_ms.push_back(timed_run(cfg, mix));
  }
  // One full run's snapshot = the exact instrumentation-event count any run
  // of this configuration executes (sites fire per batch/core/bank, spans
  // per phase; the off run takes the disabled branch of each).
  const obs::prof::ProfSnapshot snap = obs::prof::Profiler::instance().snapshot();
  obs::prof::set_level(obs::prof::ProfLevel::kOff);
  std::uint64_t sites_per_run = snap.spans.size() + snap.dropped_spans;
  for (const obs::prof::SiteTotal& s : snap.sites) sites_per_run += s.calls;

  const auto best = [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  };
  const double off = best(off_ms);
  const double full = best(full_ms);
  const double full_pct = (full / off - 1.0) * 100.0;

  const double site_ns = disabled_site_cost_ns();
  const double disabled_pct =
      site_ns * static_cast<double>(sites_per_run) / (off * 1e6) * 100.0;

  std::printf("\n%-32s %10s %10s\n", "configuration", "best ms", "overhead");
  std::printf("%-32s %10.1f %10s\n", "prof level off", off, "-");
  std::printf("%-32s %10.1f %+9.2f%%\n", "prof level full", full, full_pct);
  std::printf("\ndisabled-site cost %.2f ns x %llu sites/run = %+.3f%% of the off run\n",
              site_ns, static_cast<unsigned long long>(sites_per_run),
              disabled_pct);

  constexpr double kDisabledBudgetPct = 2.0;
  constexpr double kFullBudgetPct = 8.0;
  const bool disabled_ok = disabled_pct < kDisabledBudgetPct;
  const bool full_ok = full_pct < kFullBudgetPct;
  std::printf("\ndisabled %+.3f%% vs budget %.1f%% — %s\n", disabled_pct,
              kDisabledBudgetPct, disabled_ok ? "PASS" : "FAIL");
  std::printf("full     %+.2f%% vs budget %.1f%% — %s\n", full_pct,
              kFullBudgetPct, full_ok ? "PASS" : "FAIL");
  return disabled_ok && full_ok ? 0 : 1;
}
