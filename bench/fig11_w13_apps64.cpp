// Figure 11: per-application performance in w13 on the 64-core CMP — the
// mix where DELTA *beats* the ideal centralized scheme.
//
// Paper result: the farsighted centralized allocator gives >250 ways to
// lbm/libquantum (their huge loops fall inside the 24 MB / 768-way 64-core
// allocation cap), starving other applications; DELTA never chases those
// far-away cliffs and wins overall.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 11 — per-application performance, w13, 64 cores",
                      "Sec. IV-B, Fig. 11");

  const sim::MachineConfig cfg = sim::config64();
  const sim::SchemeComparison c =
      bench::run_comparison(cfg, "w13", bench::parse_jobs(argc, argv));

  TextTable table({"slot", "app", "ideal/delta", "ways(ideal)", "ways(delta)"});
  for (int slot = 0; slot < 16; ++slot) {
    std::vector<double> ideal_r;
    double wi = 0.0, wd = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
      const std::size_t core = static_cast<std::size_t>(slot + rep * 16);
      ideal_r.push_back(c.ideal.apps[core].ipc / c.delta.apps[core].ipc);
      wi += c.ideal.apps[core].avg_ways / 4.0;
      wd += c.delta.apps[core].avg_ways / 4.0;
    }
    table.add_row({std::to_string(slot), c.delta.apps[static_cast<std::size_t>(slot)].app,
                   fmt(geomean(ideal_r), 3), fmt(wi, 1), fmt(wd, 1)});
  }
  std::printf("\nPer-slot geomean over the 4 replicas:\n%s\n", table.str().c_str());
  std::printf("workload speedup vs S-NUCA: ideal %.3f, delta %.3f "
              "(paper: delta > ideal on w13)\n",
              sim::speedup(c.ideal, c.snuca), sim::speedup(c.delta, c.snuca));
  return 0;
}
