// Irregular-access mixes (wi1..wi3): all six schemes on the flat-miss-curve
// workload family — gather/scatter (spmv), hash-join build/probe, and
// graph-traversal kernels.  Not a paper figure; this probes the failure mode
// the DELTA gain threshold exists for: capacity buys these kernels nothing,
// so a good allocator must starve them and keep the ways for the cache-
// sensitive co-runners (docs/performance.md, EXPERIMENTS.md "irregular").
//
// Usage: ext_irregular [--jobs N] [--quick] [--out FILE]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace delta;

void irregular_at(const sim::MachineConfig& base, const char* title,
                  const std::vector<std::string>& names, bool quick,
                  unsigned jobs, std::string& report) {
  sim::MachineConfig cfg = base;
  if (quick) {
    cfg.warmup_epochs = 5;
    cfg.measure_epochs = 15;
  }
  std::vector<workload::Mix> mixes;
  for (const std::string& n : names) mixes.push_back(sim::mix_for_config(cfg, n));

  const auto rs = sim::run_schemes_sweep(cfg, mixes, sim::kAllSchemeKinds, jobs);

  TextTable table({"mix", "private", "ideal", "delta", "carma", "lfoc"});
  TextTable fair({"mix", "delta antt", "delta stp", "carma antt", "carma stp",
                  "lfoc antt", "lfoc stp"});
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const std::vector<sim::MixResult>& r = rs[m];
    const sim::MixResult& snuca = r[0];
    const sim::MixResult& priv = r[1];
    std::vector<std::string> row = {names[m]};
    for (std::size_t k = 1; k < r.size(); ++k)
      row.push_back(fmt(sim::speedup(r[k], snuca), 3));
    table.add_row(row);
    std::vector<std::string> frow = {names[m]};
    for (std::size_t k = 3; k < r.size(); ++k) {  // delta, carma, lfoc
      frow.push_back(fmt(sim::antt(r[k], priv), 3));
      frow.push_back(fmt(sim::stp(r[k], priv), 2));
    }
    fair.add_row(frow);
  }

  report += "\n== ";
  report += title;
  report += " ==\nSpeedup over unpartitioned S-NUCA (1.000 = parity):\n";
  report += table.str();
  report += "\nFairness/throughput vs private (ANTT lower / STP higher is "
            "better):\n";
  report += fair.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Irregular-access mixes — six schemes on flat miss curves",
                      "extension experiment (EXPERIMENTS.md, docs/workloads.md)");

  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) out_path = argv[++i];
    if (a == "--quick") quick = true;
  }
  const unsigned jobs = bench::parse_jobs(argc, argv);

  std::vector<std::string> names = bench::irregular_mix_names();
  if (quick && names.size() > 2) names.resize(2);

  std::string report;
  irregular_at(sim::config16(), "16 tiles", names, quick, jobs, report);
  if (!quick) irregular_at(sim::config64(), "64 tiles", names, quick, jobs, report);

  std::printf("%s\n", report.c_str());
  if (!out_path.empty()) {
    if (!obs::write_text_file(out_path, report))
      std::perror(("writing " + out_path).c_str());
    else
      std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}
