// Observability overhead micro-benchmark: proves that compiled-in
// instrumentation is effectively free when disabled.
//
// Three configurations of the same end-to-end simulation are interleaved
// (A/B/C, A/B/C, ...) so thermal and allocator drift hits all of them
// equally, and the per-configuration *minimum* wall time is compared —
// the minimum is the least-noise estimate of true cost:
//
//   baseline — no observer attached (null recorder pointers everywhere);
//   disabled — observer at level `off` attached: every emission site runs
//              its pointer test, nothing is collected;
//   full     — event trace + epoch timeline collected.
//
// Acceptance budget: disabled-vs-baseline overhead < 2%.  The binary exits
// nonzero on violation so CI can enforce the budget.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "obs/observer.hpp"

namespace {

using namespace delta;
using Clock = std::chrono::steady_clock;

double timed_run(const sim::MachineConfig& cfg, const workload::Mix& mix,
                 obs::Observer* obs) {
  const auto t0 = Clock::now();
  const sim::MixResult r =
      sim::run_mix(cfg, mix, sim::SchemeKind::kDelta, {}, obs);
  const auto t1 = Clock::now();
  if (r.geomean_ipc <= 0.0) std::fprintf(stderr, "suspicious run result\n");
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const delta::bench::ProfScope prof(argc, argv);
  bench::print_header("Observability overhead (delta scheme, mix w6, 16 cores)",
                      "ISSUE acceptance: disabled-path overhead < 2%");

  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 20;
  cfg.measure_epochs = 120;
  const workload::Mix mix = sim::mix_for_config(cfg, "w6");

  constexpr int kReps = 5;
  std::vector<double> base_ms, off_ms, full_ms;
  // Warm the allocator/caches once before measuring.
  timed_run(cfg, mix, nullptr);
  for (int rep = 0; rep < kReps; ++rep) {
    base_ms.push_back(timed_run(cfg, mix, nullptr));
    obs::Observer off(obs::ObsLevel::kOff);
    off_ms.push_back(timed_run(cfg, mix, &off));
    obs::Observer full(obs::ObsLevel::kFull);
    full_ms.push_back(timed_run(cfg, mix, &full));
    if (rep == 0)
      std::printf("full trace collected %zu events, %zu timeline rows\n",
                  full.events().size(),
                  full.timeline().cores().size() + full.timeline().mcus().size() +
                      full.timeline().chips().size());
  }

  const auto best = [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  };
  const double base = best(base_ms);
  const double off = best(off_ms);
  const double full = best(full_ms);
  const double off_pct = (off / base - 1.0) * 100.0;
  const double full_pct = (full / base - 1.0) * 100.0;

  std::printf("\n%-28s %10s %10s\n", "configuration", "best ms", "overhead");
  std::printf("%-28s %10.1f %10s\n", "baseline (no observer)", base, "-");
  std::printf("%-28s %10.1f %+9.2f%%\n", "observer attached, level off", off, off_pct);
  std::printf("%-28s %10.1f %+9.2f%%\n", "observer level full", full, full_pct);

  constexpr double kBudgetPct = 2.0;
  const bool ok = off_pct < kBudgetPct;
  std::printf("\ndisabled-path overhead %+.2f%% vs budget %.1f%% — %s\n", off_pct,
              kBudgetPct, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
