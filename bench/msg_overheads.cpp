// Sec. IV-E2: message overheads.  Counts DELTA's control-plane messages
// (challenges, responses, intra-bank feedback, bulk-invalidation commands)
// against demand traffic during a real 16-core run.
//
// Paper result: worst case 352 control messages per 1 ms interval vs ~320 K
// demand messages — ~0.1% overhead.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace delta;
  bench::print_header("Message overheads — DELTA control traffic vs demand",
                      "Sec. IV-E2");

  const sim::MachineConfig cfg = sim::config16();
  TextTable table({"mix", "ctrl/1ms", "demand/1ms", "overhead%"});
  for (const std::string name : {"w2", "w6", "w12"}) {
    const workload::Mix mix = sim::mix_for_config(cfg, name);
    const sim::MixResult r = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);
    const double intervals =
        static_cast<double>(r.measured_epochs) /
        static_cast<double>(cfg.delta.inter_interval_epochs);
    const double ctrl =
        static_cast<double>(r.traffic.control_messages() +
                            r.traffic.invalidation_messages()) /
        intervals;
    const double demand = static_cast<double>(r.traffic.demand_messages()) / intervals;
    table.add_row({name, fmt(ctrl, 1), fmt(demand, 0), fmt(100.0 * ctrl / demand, 4)});
    std::fflush(stdout);
  }
  std::printf("\nPer 1 ms reconfiguration interval:\n%s\n", table.str().c_str());

  // The paper's analytic worst case for a 16-core CMP.
  const int n = 16;
  const int centralized = 2 * n;
  const int delta_worst = 2 * n /*intra*/ + n * 10 * 2 /*inter*/;
  std::printf("analytic worst case (paper): centralized %d msgs, DELTA %d msgs, "
              "~320K L2-miss msgs per interval -> ~0.1%%\n",
              centralized, delta_worst);
  return 0;
}
