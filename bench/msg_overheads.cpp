// Sec. IV-E2: message overheads.  Counts DELTA's control-plane messages
// (challenges, responses, intra-bank feedback, bulk-invalidation commands)
// against demand traffic during a real 16-core run.
//
// Paper result: worst case 352 control messages per 1 ms interval vs ~320 K
// demand messages — ~0.1% overhead.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Message overheads — DELTA control traffic vs demand",
                      "Sec. IV-E2");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  const sim::MachineConfig cfg = sim::config16();
  const std::vector<std::string> names = {"w2", "w6", "w12"};
  std::vector<sim::SweepJob> sweep;
  for (const std::string& name : names)
    sweep.push_back(
        {cfg, sim::mix_for_config(cfg, name), sim::SchemeKind::kDelta, {}});
  const std::vector<sim::MixResult> results = sim::run_sweep(sweep, jobs);

  TextTable table({"mix", "ctrl/1ms", "demand/1ms", "overhead%"});
  for (std::size_t m = 0; m < names.size(); ++m) {
    const sim::MixResult& r = results[m];
    const double intervals =
        static_cast<double>(r.measured_epochs) /
        static_cast<double>(cfg.delta.inter_interval_epochs);
    const double ctrl =
        static_cast<double>(r.traffic.control_messages() +
                            r.traffic.invalidation_messages()) /
        intervals;
    const double demand = static_cast<double>(r.traffic.demand_messages()) / intervals;
    table.add_row(
        {names[m], fmt(ctrl, 1), fmt(demand, 0), fmt(100.0 * ctrl / demand, 4)});
  }
  std::printf("\nPer 1 ms reconfiguration interval:\n%s\n", table.str().c_str());

  // The paper's analytic worst case for a 16-core CMP.
  const int n = 16;
  const int centralized = 2 * n;
  const int delta_worst = 2 * n /*intra*/ + n * 10 * 2 /*inter*/;
  std::printf("analytic worst case (paper): centralized %d msgs, DELTA %d msgs, "
              "~320K L2-miss msgs per interval -> ~0.1%%\n",
              centralized, delta_worst);
  return 0;
}
