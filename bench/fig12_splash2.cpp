// Figure 12: SPLASH2 multithreaded applications on the 16-core CMP — DELTA
// (piecewise estimate) and private LLC, normalized to S-NUCA.
//
// Paper result: over the suite, DELTA averages within 1% of both baselines;
// per-application results track the private/shared ratio — water.nsq
// (~all-private) gains ~6% over S-NUCA, lu.ncont (~all-shared) matches
// S-NUCA while the private configuration loses ~10%.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/splash_estimator.hpp"
#include "workload/splash.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 12 — SPLASH2 on 16 cores (piecewise estimate)",
                      "Sec. IV-C, Fig. 12");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  const sim::MachineConfig cfg = sim::config16();
  sim::SplashConfig scfg;

  TextTable table({"app", "priv-pages%", "delta/snuca", "private/snuca"});
  std::vector<double> delta_sp, priv_sp;
  const auto& profiles = workload::splash_profiles();
  const std::vector<sim::SplashEstimate> estimates =
      bench::parallel_map(profiles.size(), jobs, [&](std::size_t i) {
        return sim::estimate_splash(profiles[i], cfg, scfg);
      });
  for (const sim::SplashEstimate& e : estimates) {
    delta_sp.push_back(e.delta_speedup);
    priv_sp.push_back(e.private_speedup);
    table.add_row({e.app, fmt(e.private_pages_pct, 1), fmt(e.delta_speedup, 3),
                   fmt(e.private_speedup, 3)});
  }
  std::printf("\nSpeedup over S-NUCA:\n%s\n", table.str().c_str());
  std::printf("suite geomean: delta %.3f, private %.3f "
              "(paper: delta within ~1%% of both baselines on average)\n",
              geomean(delta_sp), geomean(priv_sp));
  return 0;
}
