// Figure 10: per-application performance in w2 on the 64-core CMP (ideal
// and private normalized to DELTA).  Each application appears 4x (the mix
// is replicated); we report the per-slot mean over the four replicas.
//
// Paper result: same trend as the 16-core case — the farsighted ideal wins
// on xalancbmk/soplex, DELTA matches or beats it elsewhere.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 10 — per-application performance, w2, 64 cores",
                      "Sec. IV-B, Fig. 10");

  const sim::MachineConfig cfg = sim::config64();
  const sim::SchemeComparison c =
      bench::run_comparison(cfg, "w2", bench::parse_jobs(argc, argv));

  TextTable table({"slot", "app", "ideal/delta", "private/delta"});
  for (int slot = 0; slot < 16; ++slot) {
    std::vector<double> ideal_r, priv_r;
    for (int rep = 0; rep < 4; ++rep) {
      const int core = slot + rep * 16;
      const double d = c.delta.apps[static_cast<std::size_t>(core)].ipc;
      ideal_r.push_back(c.ideal.apps[static_cast<std::size_t>(core)].ipc / d);
      priv_r.push_back(c.private_llc.apps[static_cast<std::size_t>(core)].ipc / d);
    }
    table.add_row({std::to_string(slot), c.delta.apps[static_cast<std::size_t>(slot)].app,
                   fmt(geomean(ideal_r), 3), fmt(geomean(priv_r), 3)});
  }
  std::printf("\nPer-slot geomean over the 4 replicas:\n%s\n", table.str().c_str());
  return 0;
}
