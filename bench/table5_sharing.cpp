// Table V: percentage of private pages and private blocks per SPLASH2
// application, measured by streaming each synthetic generator through the
// sharing instrumentation (the paper's pintool equivalent).
//
// Targets marked '~' are estimates: the block row of Table V is partially
// unreadable in our source text and was gap-filled (see DESIGN.md).
#include <cstdio>

#include "bench_util.hpp"
#include "workload/splash.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Table V — private pages/blocks per SPLASH2 app",
                      "Sec. IV-C, Table V");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  TextTable table({"app", "pages% (meas)", "pages% (paper)", "blocks% (meas)",
                   "blocks% (paper)"});
  const auto& profiles = workload::splash_profiles();
  const std::vector<workload::SharingMeasurement> measured =
      bench::parallel_map(profiles.size(), jobs, [&](std::size_t i) {
        return workload::measure_sharing(profiles[i], 800'000, 7);
      });
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& p = profiles[i];
    const workload::SharingMeasurement& m = measured[i];
    table.add_row({p.name, fmt(m.private_pages_pct, 1),
                   fmt(p.target_private_pages_pct, 1), fmt(m.private_blocks_pct, 1),
                   (p.block_target_estimated ? "~" : "") +
                       fmt(p.target_private_blocks_pct, 1)});
  }
  std::printf("\n%s\n", table.str().c_str());
  return 0;
}
