// Ablation of the CBT indexing design choice (Sec. II-C1): the paper
// reverses the 8 bank-selection bits so the high-entropy low bits become
// the most significant, spreading each application's footprint uniformly
// over its CBT ranges.  This harness measures (a) footprint spread across
// chunk space and (b) end-to-end DELTA performance with and without the
// reversal.
#include <array>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "mem/address.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"

namespace {

using namespace delta;

/// CV over *contiguous 16-chunk ranges* — what actually matters: a CBT
/// range covering 1/16 of chunk space should see 1/16 of the accesses.
double range_spread_cv(const workload::AppProfile& p, bool reverse) {
  workload::TraceGen gen(p, 0, 9);
  double counts[16] = {};
  constexpr int kAccesses = 400'000;
  for (int i = 0; i < kAccesses; ++i)
    counts[mem::chunk_of(gen.next(), 9, reverse) / 16] += 1.0;
  double mean = 0.0;
  for (double c : counts) mean += c / 16.0;
  double var = 0.0;
  for (double c : counts) var += (c - mean) * (c - mean) / 16.0;
  return std::sqrt(var) / mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Ablation — CBT bank-selection bit reversal",
                      "Sec. II-C1 design-choice study (not a paper figure)");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  const std::vector<const char*> spread_apps = {"mc", "om", "xa", "hm", "li", "Ge"};
  const std::vector<std::array<double, 2>> cvs =
      bench::parallel_map(spread_apps.size(), jobs, [&](std::size_t i) {
        const auto& p = workload::spec_profile(spread_apps[i]);
        return std::array<double, 2>{range_spread_cv(p, true),
                                     range_spread_cv(p, false)};
      });
  TextTable spread({"app", "range-CV reversed", "range-CV straight"});
  for (std::size_t i = 0; i < spread_apps.size(); ++i)
    spread.add_row({workload::spec_profile(spread_apps[i]).name, fmt(cvs[i][0], 3),
                    fmt(cvs[i][1], 3)});
  std::printf("\nFootprint spread over contiguous CBT ranges (lower = more even):\n%s\n",
              spread.str().c_str());

  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 40;
  cfg.measure_epochs = 150;
  const workload::Mix mix = sim::mix_for_config(cfg, "w6");
  sim::MachineConfig cfg_straight = cfg;
  cfg_straight.delta.reverse_chunk_bits = false;
  const std::vector<sim::MixResult> runs = sim::run_sweep(
      {{cfg, mix, sim::SchemeKind::kSnuca, {}},
       {cfg, mix, sim::SchemeKind::kDelta, {}},
       {cfg_straight, mix, sim::SchemeKind::kDelta, {}}},
      jobs);
  const sim::MixResult& snuca = runs[0];
  const sim::MixResult& reversed = runs[1];
  const sim::MixResult& straight = runs[2];

  std::printf("DELTA speedup vs S-NUCA on w6:  reversed %.3f   straight %.3f\n",
              sim::speedup(reversed, snuca), sim::speedup(straight, snuca));
  std::printf("(the paper keeps the reversal: straight indexing concentrates a\n"
              "sequential footprint in few ranges, unbalancing bank pressure)\n");
  return 0;
}
