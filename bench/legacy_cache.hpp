// Frozen copy of the array-of-structs SetAssocCache that the simulator
// shipped before the structure-of-arrays rewrite (see docs/performance.md).
// It exists for two jobs:
//   * micro_throughput benchmarks the live SoA engine against it, so the
//     speedup that justified the rewrite is re-measured on every run and
//     recorded in BENCH_throughput.json (machine-independent ratio);
//   * tests/test_sweep.cpp uses it as the behavioural oracle — the SoA
//     cache must report identical hit/evict/victim decisions on any trace.
// Do not "fix" or optimise this copy; its value is that it never changes.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/replacement.hpp"

namespace delta::bench::legacy {

/// The pre-rewrite bank: one struct per line, linear scans over Way
/// records, 32-bit per-set LRU clock.  API mirrors the subset of
/// mem::SetAssocCache the comparisons need; results are reported through
/// the live mem::AccessResult type so callers can compare field by field.
class SetAssocCache {
 public:
  SetAssocCache(std::uint32_t sets, int ways)
      : sets_(sets), ways_(ways), lines_(std::size_t{sets} * ways), clocks_(sets, 0) {}

  std::uint32_t sets() const { return sets_; }
  int ways() const { return ways_; }

  mem::AccessResult access(std::uint32_t set, BlockAddr block, CoreId owner,
                           mem::WayMask insert_mask,
                           CoreId evict_pref = kInvalidCore) {
    Way* w = set_begin(set);
    std::uint32_t& clock = clocks_[set];

    for (int i = 0; i < ways_; ++i) {
      if (w[i].valid && w[i].block == block) {
        w[i].stamp = ++clock;
        ++hits_;
        return mem::AccessResult{.hit = true, .way = i};
      }
    }

    ++misses_;
    mem::AccessResult res{};
    if (insert_mask == 0) return res;  // Bypass: nowhere to allocate.

    int victim = -1;
    int pref_victim = -1;
    std::uint32_t best_stamp = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t pref_stamp = std::numeric_limits<std::uint32_t>::max();
    for (int i = 0; i < ways_; ++i) {
      if (!(insert_mask & (mem::WayMask{1} << i))) continue;
      if (!w[i].valid) {
        victim = i;
        pref_victim = -1;
        break;
      }
      if (w[i].stamp <= best_stamp) {
        best_stamp = w[i].stamp;
        victim = i;
      }
      if (evict_pref != kInvalidCore && w[i].owner == evict_pref &&
          w[i].stamp <= pref_stamp) {
        pref_stamp = w[i].stamp;
        pref_victim = i;
      }
    }
    if (pref_victim >= 0) victim = pref_victim;
    if (victim < 0) return res;

    if (w[victim].valid) {
      res.evicted = true;
      res.victim_block = w[victim].block;
      res.victim_owner = w[victim].owner;
    }
    w[victim].block = block;
    w[victim].owner = owner;
    w[victim].valid = true;
    w[victim].stamp = ++clock;
    res.way = victim;
    return res;
  }

  bool touch(std::uint32_t set, BlockAddr block) {
    Way* w = set_begin(set);
    for (int i = 0; i < ways_; ++i) {
      if (w[i].valid && w[i].block == block) {
        w[i].stamp = ++clocks_[set];
        return true;
      }
    }
    return false;
  }

  bool invalidate(std::uint32_t set, BlockAddr block) {
    Way* w = set_begin(set);
    for (int i = 0; i < ways_; ++i) {
      if (w[i].valid && w[i].block == block) {
        w[i].valid = false;
        return true;
      }
    }
    return false;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Way {
    BlockAddr block = 0;
    std::uint32_t stamp = 0;
    CoreId owner = kInvalidCore;
    bool valid = false;
  };

  Way* set_begin(std::uint32_t set) { return lines_.data() + std::size_t{set} * ways_; }

  std::uint32_t sets_;
  int ways_;
  std::vector<Way> lines_;
  std::vector<std::uint32_t> clocks_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace delta::bench::legacy
