// Extension: under-utilised chips.  The paper argues (Sec. II-B1 and
// IV-B) that private/equal partitioning "cannot handle underutilized
// scenarios" while DELTA's idle-bank fast path hands unused home banks to
// whoever can use them.  This harness scales the number of occupied tiles
// on the 16-core machine and compares the three organisations on the
// *occupied* cores.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Extension — under-utilised chip (idle-bank fast path)",
                      "Sec. II-B1 idle-bank discussion / Sec. IV-B private critique");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 40;
  cfg.measure_epochs = 150;

  // Occupied tiles run cache-hungry LM apps that can exploit spare banks.
  const std::vector<std::string> hungry = {"mc", "om", "so", "xa", "bz", "sp", "de", "gc"};

  const std::vector<int> occupancies = {2, 4, 8, 16};
  std::vector<sim::SweepJob> sweep;
  for (int occupied : occupancies) {
    std::vector<std::string> apps(16, "idle");
    for (int i = 0; i < occupied; ++i)
      apps[(i * 16) / occupied] = hungry[i % hungry.size()];
    workload::Mix mix;
    mix.name = "occ" + std::to_string(occupied);
    mix.apps = apps;
    sweep.push_back({cfg, mix, sim::SchemeKind::kSnuca, {}});
    sweep.push_back({cfg, mix, sim::SchemeKind::kPrivate, {}});
    sweep.push_back({cfg, mix, sim::SchemeKind::kDelta, {}});
  }
  const std::vector<sim::MixResult> results = sim::run_sweep(sweep, jobs);

  TextTable table({"occupied", "snuca", "private", "delta", "delta ways/app"});
  for (std::size_t m = 0; m < occupancies.size(); ++m) {
    const sim::MixResult& snuca = results[m * 3 + 0];
    const sim::MixResult& priv = results[m * 3 + 1];
    const sim::MixResult& dlt = results[m * 3 + 2];

    double ways = 0.0;
    int n = 0;
    for (const auto& a : dlt.apps)
      if (a.llc_accesses > 0) {
        ways += a.avg_ways;
        ++n;
      }
    table.add_row({std::to_string(occupancies[m]), fmt(snuca.geomean_ipc, 3),
                   fmt(priv.geomean_ipc, 3), fmt(dlt.geomean_ipc, 3),
                   fmt(n ? ways / n : 0.0, 1)});
  }
  std::printf("\nGeomean IPC of the occupied cores:\n%s\n", table.str().c_str());
  std::printf("private wastes the idle tiles' capacity (fixed 16 ways/app);\n"
              "DELTA's idle-bank grabs recover much of it (40 ways/app at 2/16\n"
              "occupancy) while keeping data near the occupied tiles.  It stops\n"
              "short of S-NUCA's full 8 MB per app: Eq. 1's (k+1)^-1 fairness\n"
              "damping deliberately brakes unbounded expansion.\n");
  return 0;
}
