// Extension: under-utilised chips.  The paper argues (Sec. II-B1 and
// IV-B) that private/equal partitioning "cannot handle underutilized
// scenarios" while DELTA's idle-bank fast path hands unused home banks to
// whoever can use them.  This harness scales the number of occupied tiles
// on the 16-core machine and compares the three organisations on the
// *occupied* cores.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace delta;
  bench::print_header("Extension — under-utilised chip (idle-bank fast path)",
                      "Sec. II-B1 idle-bank discussion / Sec. IV-B private critique");

  sim::MachineConfig cfg = sim::config16();
  cfg.warmup_epochs = 40;
  cfg.measure_epochs = 150;

  // Occupied tiles run cache-hungry LM apps that can exploit spare banks.
  const std::vector<std::string> hungry = {"mc", "om", "so", "xa", "bz", "sp", "de", "gc"};

  TextTable table({"occupied", "snuca", "private", "delta", "delta ways/app"});
  for (int occupied : {2, 4, 8, 16}) {
    std::vector<std::string> apps(16, "idle");
    for (int i = 0; i < occupied; ++i)
      apps[(i * 16) / occupied] = hungry[i % hungry.size()];
    workload::Mix mix;
    mix.name = "occ" + std::to_string(occupied);
    mix.apps = apps;

    const sim::MixResult snuca = sim::run_mix(cfg, mix, sim::SchemeKind::kSnuca);
    const sim::MixResult priv = sim::run_mix(cfg, mix, sim::SchemeKind::kPrivate);
    const sim::MixResult dlt = sim::run_mix(cfg, mix, sim::SchemeKind::kDelta);

    double ways = 0.0;
    int n = 0;
    for (const auto& a : dlt.apps)
      if (a.llc_accesses > 0) {
        ways += a.avg_ways;
        ++n;
      }
    table.add_row({std::to_string(occupied), fmt(snuca.geomean_ipc, 3),
                   fmt(priv.geomean_ipc, 3), fmt(dlt.geomean_ipc, 3),
                   fmt(n ? ways / n : 0.0, 1)});
    std::fflush(stdout);
  }
  std::printf("\nGeomean IPC of the occupied cores:\n%s\n", table.str().c_str());
  std::printf("private wastes the idle tiles' capacity (fixed 16 ways/app);\n"
              "DELTA's idle-bank grabs recover much of it (40 ways/app at 2/16\n"
              "occupancy) while keeping data near the occupied tiles.  It stops\n"
              "short of S-NUCA's full 8 MB per app: Eq. 1's (k+1)^-1 fairness\n"
              "damping deliberately brakes unbounded expansion.\n");
  return 0;
}
