// Figure 5: performance of the 15 Table IV workload mixes on the 16-core
// CMP, normalized to unpartitioned S-NUCA.
//
// Paper result: DELTA +9% geomean (max +16%); ideal centralized +12%
// (max +22%); private +3%.  Expected reproduction: same ordering
// (S-NUCA < private < DELTA < ideal) with comparable magnitudes.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace delta;
  const bench::ProfScope prof(argc, argv);
  bench::print_header("Fig. 5 — 16-core multi-programmed mixes",
                      "Sec. IV-A, Fig. 5");

  const unsigned jobs = bench::parse_jobs(argc, argv);
  const sim::MachineConfig cfg = sim::config16();
  TextTable table({"mix", "private", "ideal", "delta"});
  std::vector<double> sp_priv, sp_ideal, sp_delta;

  const std::vector<std::string> names = bench::all_mix_names();
  const std::vector<sim::SchemeComparison> comps =
      bench::run_comparisons(cfg, names, jobs);
  for (std::size_t m = 0; m < names.size(); ++m) {
    const sim::SchemeComparison& c = comps[m];
    const double p = sim::speedup(c.private_llc, c.snuca);
    const double i = sim::speedup(c.ideal, c.snuca);
    const double d = sim::speedup(c.delta, c.snuca);
    sp_priv.push_back(p);
    sp_ideal.push_back(i);
    sp_delta.push_back(d);
    table.add_row({names[m], fmt(p, 3), fmt(i, 3), fmt(d, 3)});
  }

  std::printf("\nSpeedup over unpartitioned S-NUCA (1.000 = parity):\n%s\n",
              table.str().c_str());
  bench::print_speedup_summary("private", sp_priv);
  bench::print_speedup_summary("ideal-central", sp_ideal);
  bench::print_speedup_summary("delta", sp_delta);
  std::printf("\npaper: private +3%% | ideal +12%% (max +22%%) | delta +9%% (max +16%%)\n");
  return 0;
}
