// Figure 5: performance of the 15 Table IV workload mixes on the 16-core
// CMP, normalized to unpartitioned S-NUCA.
//
// Paper result: DELTA +9% geomean (max +16%); ideal centralized +12%
// (max +22%); private +3%.  Expected reproduction: same ordering
// (S-NUCA < private < DELTA < ideal) with comparable magnitudes.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace delta;
  bench::print_header("Fig. 5 — 16-core multi-programmed mixes",
                      "Sec. IV-A, Fig. 5");

  const sim::MachineConfig cfg = sim::config16();
  TextTable table({"mix", "private", "ideal", "delta"});
  std::vector<double> sp_priv, sp_ideal, sp_delta;

  for (const std::string& name : bench::all_mix_names()) {
    const sim::SchemeComparison c = bench::run_comparison(cfg, name);
    const double p = sim::speedup(c.private_llc, c.snuca);
    const double i = sim::speedup(c.ideal, c.snuca);
    const double d = sim::speedup(c.delta, c.snuca);
    sp_priv.push_back(p);
    sp_ideal.push_back(i);
    sp_delta.push_back(d);
    table.add_row({name, fmt(p, 3), fmt(i, 3), fmt(d, 3)});
    std::fflush(stdout);
  }

  std::printf("\nSpeedup over unpartitioned S-NUCA (1.000 = parity):\n%s\n",
              table.str().c_str());
  bench::print_speedup_summary("private", sp_priv);
  bench::print_speedup_summary("ideal-central", sp_ideal);
  bench::print_speedup_summary("delta", sp_delta);
  std::printf("\npaper: private +3%% | ideal +12%% (max +22%%) | delta +9%% (max +16%%)\n");
  return 0;
}
